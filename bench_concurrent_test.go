// Wall-clock concurrency benchmarks of the partitioned file backend (see
// internal/loadbench). These live in an external test package because
// loadbench imports turbobp itself. Run with several CPUs to see the
// scaling; on one core the 4- and 8-worker variants measure contention
// honestly rather than speedup.
package turbobp_test

import (
	"testing"

	"turbobp"
	"turbobp/internal/loadbench"
)

func BenchmarkConcurrentGet1(b *testing.B) { loadbench.ConcurrentGet(b, 1) }
func BenchmarkConcurrentGet4(b *testing.B) { loadbench.ConcurrentGet(b, 4) }
func BenchmarkConcurrentGet8(b *testing.B) { loadbench.ConcurrentGet(b, 8) }

func BenchmarkConcurrentUpdateCommit1(b *testing.B) { loadbench.ConcurrentUpdateCommit(b, 1) }
func BenchmarkConcurrentUpdateCommit4(b *testing.B) { loadbench.ConcurrentUpdateCommit(b, 4) }
func BenchmarkConcurrentUpdateCommit8(b *testing.B) { loadbench.ConcurrentUpdateCommit(b, 8) }

func BenchmarkGroupCommitFsync(b *testing.B) {
	loadbench.CommitFsyncs(b, turbobp.CommitSyncGroup)
}
func BenchmarkEachCommitFsync(b *testing.B) {
	loadbench.CommitFsyncs(b, turbobp.CommitSyncEach)
}
