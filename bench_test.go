// Benchmarks regenerating every table and figure of the paper, one
// testing.B benchmark per artifact, at the fast Bench scale (divisor 8192;
// use cmd/bpesim for the higher-fidelity default scale). Custom metrics
// report the paper-comparable quantities — speedups over noSSD, accuracies,
// IOPS — so `go test -bench=. -benchmem` doubles as a reproduction report.
package turbobp

import (
	"strings"
	"testing"

	"turbobp/internal/harness"
	"turbobp/internal/microbench"
	"turbobp/internal/ssd"
	"turbobp/internal/workload"
)

// Hot-path microbenchmarks (see internal/microbench): allocs/op on the
// steady-state read path must stay at ~0.

func BenchmarkGetHit(b *testing.B)       { microbench.GetHit(b) }
func BenchmarkGetMiss(b *testing.B)      { microbench.GetMiss(b) }
func BenchmarkUpdateCommit(b *testing.B) { microbench.UpdateCommit(b) }
func BenchmarkGroupClean(b *testing.B)   { microbench.GroupClean(b) }

// Flat-structure pairs (see internal/microbench/flat.go): the pagetab
// open-addressing table vs the Go map it replaced, and the calendar-queue
// scheduler vs the reference binary heap.

// Cache-policy hot paths (see internal/microbench/policybench.go): Touch
// and the Pop+insert eviction cycle per policy, plus the TinyLFU sketch
// primitives. All run at 0 allocs/op in steady state.

func BenchmarkPolicyTouchLRU2(b *testing.B)    { microbench.PolicyTouchLRU2(b) }
func BenchmarkPolicyTouchARC(b *testing.B)     { microbench.PolicyTouchARC(b) }
func BenchmarkPolicyTouchCFLRU(b *testing.B)   { microbench.PolicyTouchCFLRU(b) }
func BenchmarkPolicyTouchTinyLFU(b *testing.B) { microbench.PolicyTouchTinyLFU(b) }
func BenchmarkPolicyEvictLRU2(b *testing.B)    { microbench.PolicyEvictLRU2(b) }
func BenchmarkPolicyEvictARC(b *testing.B)     { microbench.PolicyEvictARC(b) }
func BenchmarkPolicyEvictCFLRU(b *testing.B)   { microbench.PolicyEvictCFLRU(b) }
func BenchmarkPolicyEvictTinyLFU(b *testing.B) { microbench.PolicyEvictTinyLFU(b) }
func BenchmarkSketchIncrement(b *testing.B)    { microbench.SketchIncrement(b) }
func BenchmarkSketchEstimate(b *testing.B)     { microbench.SketchEstimate(b) }

func BenchmarkTableChurn(b *testing.B)        { microbench.TableChurn(b) }
func BenchmarkMapChurn(b *testing.B)          { microbench.MapChurn(b) }
func BenchmarkSchedulerCalendar(b *testing.B) { microbench.SchedulerCalendar(b) }
func BenchmarkSchedulerHeap(b *testing.B)     { microbench.SchedulerHeap(b) }

var benchScale = harness.Bench

// metricName strips whitespace, which testing.B.ReportMetric rejects.
func metricName(s string) string {
	return strings.NewReplacer(" ", "", "(", "", ")", "").Replace(s)
}

// BenchmarkTable1DeviceIOPS regenerates Table 1: sustainable 8KB IOPS of
// the calibrated device models.
func BenchmarkTable1DeviceIOPS(b *testing.B) {
	var r *harness.Table1Result
	for i := 0; i < b.N; i++ {
		r = harness.RunTable1()
	}
	b.ReportMetric(r.ArrayRandRead, "hdd-rand-read-iops")
	b.ReportMetric(r.ArraySeqRead, "hdd-seq-read-iops")
	b.ReportMetric(r.SSDRandRead, "ssd-rand-read-iops")
	b.ReportMetric(r.SSDRandWrite, "ssd-rand-write-iops")
}

// speedupOf extracts one design's speedup for a database label.
func speedupOf(r *harness.Fig5Result, label string, d ssd.Design) float64 {
	for _, row := range r.Rows {
		if row.Design == d && row.Label == label {
			return row.Speedup
		}
	}
	return 0
}

// BenchmarkFig5TPCC regenerates Figure 5(a–c): TPC-C speedups over noSSD.
func BenchmarkFig5TPCC(b *testing.B) {
	var r *harness.Fig5Result
	for i := 0; i < b.N; i++ {
		var err error
		r, err = harness.Fig5TPCC(benchScale)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(speedupOf(r, "2K warehouse (200GB)", ssd.LC), "LC-2K-speedup")
	b.ReportMetric(speedupOf(r, "2K warehouse (200GB)", ssd.DW), "DW-2K-speedup")
	b.ReportMetric(speedupOf(r, "2K warehouse (200GB)", ssd.TAC), "TAC-2K-speedup")
	b.ReportMetric(speedupOf(r, "4K warehouse (400GB)", ssd.LC), "LC-4K-speedup")
}

// BenchmarkFig5TPCE regenerates Figure 5(d–f): TPC-E speedups over noSSD.
func BenchmarkFig5TPCE(b *testing.B) {
	var r *harness.Fig5Result
	for i := 0; i < b.N; i++ {
		var err error
		r, err = harness.Fig5TPCE(benchScale)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(speedupOf(r, "10K customer (115GB)", ssd.DW), "DW-10K-speedup")
	b.ReportMetric(speedupOf(r, "20K customer (230GB)", ssd.DW), "DW-20K-speedup")
	b.ReportMetric(speedupOf(r, "40K customer (415GB)", ssd.DW), "DW-40K-speedup")
}

// BenchmarkFig5TPCH regenerates Figure 5(g–h): TPC-H QphH speedups.
func BenchmarkFig5TPCH(b *testing.B) {
	var r *harness.Fig5Result
	for i := 0; i < b.N; i++ {
		var err error
		r, err = harness.Fig5TPCH(benchScale)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(speedupOf(r, "30 SF (45GB)", ssd.DW), "DW-30SF-speedup")
	b.ReportMetric(speedupOf(r, "100 SF (160GB)", ssd.DW), "DW-100SF-speedup")
}

// BenchmarkFig6Timelines regenerates Figure 6: the four 10-hour throughput
// timelines. The reported metric is the LC:noSSD ratio of the final bucket
// of the TPC-C 2K chart.
func BenchmarkFig6Timelines(b *testing.B) {
	var rs []*harness.TimelineResult
	for i := 0; i < b.N; i++ {
		var err error
		rs, err = harness.Fig6(benchScale)
		if err != nil {
			b.Fatal(err)
		}
	}
	lc := rs[0].Curves["LC"]
	no := rs[0].Curves["noSSD"]
	if len(lc) > 0 && len(no) > 0 && no[len(no)-1] > 0 {
		b.ReportMetric(lc[len(lc)-1]/no[len(no)-1], "LC/noSSD-final")
	}
	b.ReportMetric(float64(len(rs)), "charts")
}

// BenchmarkFig7LambdaSweep regenerates Figure 7: the LC dirty-fraction
// sweep on TPC-C 4K. Reported: steady-state tx/s per λ.
func BenchmarkFig7LambdaSweep(b *testing.B) {
	var r *harness.TimelineResult
	for i := 0; i < b.N; i++ {
		var err error
		r, err = harness.Fig7(benchScale)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, name := range r.Order {
		c := r.Curves[name]
		if len(c) > 0 {
			b.ReportMetric(c[len(c)-1], metricName(name)+"-tx/s")
		}
	}
}

// BenchmarkFig8IOTraffic regenerates Figure 8: disk and SSD bandwidth over
// a DW run on TPC-E 20K. Reported: final-bucket MB/s per series.
func BenchmarkFig8IOTraffic(b *testing.B) {
	var r *harness.IOTrafficResult
	for i := 0; i < b.N; i++ {
		var err error
		r, err = harness.Fig8(benchScale)
		if err != nil {
			b.Fatal(err)
		}
	}
	last := func(s []float64) float64 {
		if len(s) == 0 {
			return 0
		}
		return s[len(s)-1]
	}
	b.ReportMetric(last(r.DiskReadMB), "disk-read-MBps")
	b.ReportMetric(last(r.SSDReadMB), "ssd-read-MBps")
	b.ReportMetric(last(r.SSDWriteMB), "ssd-write-MBps")
}

// BenchmarkFig9Checkpoint regenerates Figure 9: the checkpoint-interval
// comparison for DW and LC on TPC-E 20K.
func BenchmarkFig9Checkpoint(b *testing.B) {
	var rs []*harness.TimelineResult
	for i := 0; i < b.N; i++ {
		var err error
		rs, err = harness.Fig9(benchScale)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rs {
		for _, name := range r.Order {
			c := r.Curves[name]
			if len(c) > 0 {
				b.ReportMetric(c[len(c)-1], metricName(r.Title+"/"+name))
			}
		}
	}
}

// BenchmarkTable3TPCH regenerates Table 3: TPC-H power, throughput and
// QphH for every design at both scale factors.
func BenchmarkTable3TPCH(b *testing.B) {
	var r *harness.Table3Result
	for i := 0; i < b.N; i++ {
		var err error
		r, err = harness.RunTable3(benchScale, []int{30, 100})
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, row := range r.Rows {
		if row.Design == ssd.LC || row.Design == ssd.NoSSD {
			b.ReportMetric(row.QphH, row.Design.String()+"-QphH")
		}
	}
}

// BenchmarkCWComparison regenerates §4.1.1: CW vs DW and LC on TPC-E 20K.
func BenchmarkCWComparison(b *testing.B) {
	var r *harness.CWResult
	for i := 0; i < b.N; i++ {
		var err error
		r, err = harness.RunCW(benchScale)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.SlowerThanDW*100, "CW-slower-than-DW-%")
	b.ReportMetric(r.SlowerThanLC*100, "CW-slower-than-LC-%")
}

// BenchmarkTACWaste regenerates §2.5: SSD space TAC wastes on invalid
// pages across the TPC-C databases.
func BenchmarkTACWaste(b *testing.B) {
	var rows []harness.TACWasteRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = harness.RunTACWaste(benchScale)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, row := range rows {
		b.ReportMetric(row.WastedGB, metricName(row.Label)+"-wasted-GB")
	}
}

// BenchmarkClassifierAccuracy regenerates §2.2's comparison of the
// read-ahead classifier against the 64-page distance heuristic.
func BenchmarkClassifierAccuracy(b *testing.B) {
	var r *harness.ClassifyResult
	for i := 0; i < b.N; i++ {
		var err error
		r, err = harness.RunClassify(benchScale)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.ReadAheadAccuracy*100, "readahead-accuracy-%")
	b.ReportMetric(r.DistanceAccuracy*100, "distance-accuracy-%")
}

// BenchmarkEngineOps measures raw public-API operation cost over the
// simulated backend (not a paper artifact; a regression canary).
func BenchmarkEngineOps(b *testing.B) {
	db, err := Open(Options{Design: LC, DBPages: 4096, PoolPages: 256, SSDFrames: 1024, PageSize: 64})
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	buf := make([]byte, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pid := int64(i) % 4096
		if i%3 == 0 {
			if err := db.Update(pid, func(pl []byte) { pl[0]++ }); err != nil {
				b.Fatal(err)
			}
		} else if _, err := db.Read(pid, buf); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWarmRestart measures the §6 warm-restart extension: first-hour
// throughput after a crash, cold vs warm.
func BenchmarkWarmRestart(b *testing.B) {
	var r *harness.WarmRestartResult
	for i := 0; i < b.N; i++ {
		var err error
		r, err = harness.RunWarmRestart(benchScale)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.ColdTPS, "cold-tx/s")
	b.ReportMetric(r.WarmTPS, "warm-tx/s")
}

// BenchmarkMidrangeSSD sweeps SSD grades (§6: "mid-range SSDs may provide
// similar performance benefits").
func BenchmarkMidrangeSSD(b *testing.B) {
	var rows []harness.MidrangeRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = harness.RunMidrange(benchScale)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(r.Speedup, metricName(r.Grade)+"-speedup")
	}
}

// BenchmarkAblations sweeps the §3.3 design-choice knobs.
func BenchmarkAblations(b *testing.B) {
	var rows []harness.AblationRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = harness.RunAblations(benchScale)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(r.TPS, metricName(r.Name)+"-tx/s")
	}
}

// BenchmarkIndexMatrix regenerates the traversal-driven index workload
// grid (4 designs × 5 mixes of real B+-tree/heapfile operations) and
// reports the mixed-OLTP buffer-pool hit rate per design — the headline
// number that emerges from structure traversal rather than a synthetic
// access distribution.
func BenchmarkIndexMatrix(b *testing.B) {
	var r *harness.IndexMatrixResult
	for i := 0; i < b.N; i++ {
		var err error
		r, err = harness.RunIndex(benchScale)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, c := range r.Cells {
		if c.Kind == workload.IndexMixed {
			b.ReportMetric(c.PoolHitPct, metricName(c.Design.String())+"-mixed-pool-hit%")
		}
	}
}

// BenchmarkTrimming measures the §3.3.3 multi-page I/O optimization.
func BenchmarkTrimming(b *testing.B) {
	var r *harness.TrimmingResult
	for i := 0; i < b.N; i++ {
		var err error
		r, err = harness.RunTrimming(benchScale)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(r.DiskOpsTrimmed), "trimmed-disk-reads")
	b.ReportMetric(float64(r.DiskOpsNaive), "naive-disk-reads")
}
