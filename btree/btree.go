// Package btree implements a disk-resident B+-tree over a storage.Store —
// the non-clustered index whose lookups are exactly the random page reads
// the paper's SSD admission policy targets, and whose node splits create
// pages on the fly (the access pattern §4.2 notes TAC never caches). Any
// Store works: a turbobp.DB (file-backed or simulated) or the internal
// engine adapters that run the same traversal code inside a
// discrete-event experiment (`bpesim index`).
//
// Keys and values are int64. Node pages use the Store page payload:
//
//	offset  size  field
//	0       1     node type (1 = leaf, 2 = internal)
//	1       2     key count
//	3       8     leaf: right-sibling page id (+1; 0 = none)
//	3+      ...   leaf: {key (8), value (8)} pairs, sorted by key
//	              internal: child0 (8), then {key (8), child (8)} pairs
//
// Deletion removes the key from its leaf without rebalancing (lazy
// deletion, as most production B-trees do); underfull leaves are absorbed
// by later inserts.
//
// # Concurrency
//
// A Tree holds no locks of its own: it must not be used concurrently
// with itself. The Store beneath it may be shared — a turbobp.DB is safe
// for concurrent use, so two Trees over distinct meta pages, each driven
// from its own goroutine, are independent. What a Tree cannot tolerate
// is two goroutines inside the *same* Tree, because multi-page
// operations (splits) are not isolated from each other.
//
// # Crash recovery
//
// Tree methods issue each page write as one atomic Store.Update, ordered
// so that the meta page (root, height, size, splits) is written last.
// Against a turbobp.DB outside an explicit transaction every Update is
// its own committed transaction, so after a crash the WAL replays a
// prefix of the tree's page writes: a torn Insert can leave an allocated
// but unreferenced right-sibling page (leaked, harmless) or a leaf-chain
// link to it, but never a tree whose meta references structure that was
// lost. Committing a batch of inserts (Store.Commit, or turbobp.Tx) makes
// the whole batch durable atomically — the shadow-model crash tests in
// this repo rely on exactly that contract.
package btree

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"

	"turbobp/storage"
)

const (
	typeLeaf     = 1
	typeInternal = 2
	nodeHeader   = 11 // type(1) + nkeys(2) + next/child0(8)
	pairSize     = 16
	metaMagic    = 0x42545245 // "BTRE"
)

// ErrNotFound is returned by Search for absent keys.
var ErrNotFound = errors.New("btree: key not found")

// Tree is an open B+-tree. A Tree must not be used concurrently with
// itself (the underlying Store may be shared; two Trees over distinct
// meta pages are independent).
type Tree struct {
	db       storage.Store
	meta     int64
	cap      int    // max pairs per node
	opSplits uint64 // splits performed by the current Insert
}

// meta page payload: magic(4) root(8) height(8) size(8) splits(8)

// Create allocates an empty tree.
func Create(db storage.Store) (*Tree, error) {
	capacity := (db.PageSize() - nodeHeader) / pairSize
	if capacity < 3 {
		return nil, fmt.Errorf("btree: page size %d holds only %d pairs; need >= 3", db.PageSize(), capacity)
	}
	metaPid, err := db.AllocPage()
	if err != nil {
		return nil, err
	}
	rootPid, err := db.AllocPage()
	if err != nil {
		return nil, err
	}
	if err := db.Update(rootPid, func(pl []byte) {
		pl[0] = typeLeaf
	}); err != nil {
		return nil, err
	}
	if err := db.Update(metaPid, func(pl []byte) {
		binary.LittleEndian.PutUint32(pl[0:4], metaMagic)
		binary.LittleEndian.PutUint64(pl[4:12], uint64(rootPid+1))
		binary.LittleEndian.PutUint64(pl[12:20], 1) // height
	}); err != nil {
		return nil, err
	}
	return &Tree{db: db, meta: metaPid, cap: capacity}, nil
}

// Open reopens a tree by its Meta() page.
func Open(db storage.Store, metaPid int64) (*Tree, error) {
	buf := make([]byte, db.PageSize())
	if _, err := db.Read(metaPid, buf); err != nil {
		return nil, err
	}
	if binary.LittleEndian.Uint32(buf[0:4]) != metaMagic {
		return nil, fmt.Errorf("btree: page %d is not a btree", metaPid)
	}
	return &Tree{db: db, meta: metaPid, cap: (db.PageSize() - nodeHeader) / pairSize}, nil
}

// Meta returns the metadata page id.
func (t *Tree) Meta() int64 { return t.meta }

func (t *Tree) readMeta() (root int64, height, size, splits uint64, err error) {
	buf := make([]byte, t.db.PageSize())
	if _, err = t.db.Read(t.meta, buf); err != nil {
		return
	}
	root = int64(binary.LittleEndian.Uint64(buf[4:12])) - 1
	height = binary.LittleEndian.Uint64(buf[12:20])
	size = binary.LittleEndian.Uint64(buf[20:28])
	splits = binary.LittleEndian.Uint64(buf[28:36])
	return
}

// Size returns the number of keys.
func (t *Tree) Size() (uint64, error) {
	_, _, n, _, err := t.readMeta()
	return n, err
}

// Height returns the tree height (1 = a single leaf).
func (t *Tree) Height() (uint64, error) {
	_, h, _, _, err := t.readMeta()
	return h, err
}

// Splits returns the number of node splits performed — each one created a
// page "on the fly", the pattern §4.2 highlights.
func (t *Tree) Splits() (uint64, error) {
	_, _, _, s, err := t.readMeta()
	return s, err
}

// node is a decoded page.
type node struct {
	pid      int64
	leaf     bool
	keys     []int64
	vals     []int64 // leaf values
	children []int64 // internal children (len = len(keys)+1)
	next     int64   // leaf sibling (-1 = none)
}

func (t *Tree) readNode(pid int64) (*node, error) {
	buf := make([]byte, t.db.PageSize())
	if _, err := t.db.Read(pid, buf); err != nil {
		return nil, err
	}
	return decodeNode(pid, buf)
}

func decodeNode(pid int64, pl []byte) (*node, error) {
	n := &node{pid: pid, next: -1}
	switch pl[0] {
	case typeLeaf:
		n.leaf = true
	case typeInternal:
	default:
		return nil, fmt.Errorf("btree: page %d has node type %d", pid, pl[0])
	}
	nkeys := int(binary.LittleEndian.Uint16(pl[1:3]))
	if n.leaf {
		n.next = int64(binary.LittleEndian.Uint64(pl[3:11])) - 1
		for i := 0; i < nkeys; i++ {
			off := nodeHeader + i*pairSize
			n.keys = append(n.keys, int64(binary.LittleEndian.Uint64(pl[off:])))
			n.vals = append(n.vals, int64(binary.LittleEndian.Uint64(pl[off+8:])))
		}
		return n, nil
	}
	n.children = append(n.children, int64(binary.LittleEndian.Uint64(pl[3:11])))
	for i := 0; i < nkeys; i++ {
		off := nodeHeader + i*pairSize
		n.keys = append(n.keys, int64(binary.LittleEndian.Uint64(pl[off:])))
		n.children = append(n.children, int64(binary.LittleEndian.Uint64(pl[off+8:])))
	}
	return n, nil
}

func (n *node) encode(pl []byte) {
	for i := range pl {
		pl[i] = 0
	}
	if n.leaf {
		pl[0] = typeLeaf
		binary.LittleEndian.PutUint16(pl[1:3], uint16(len(n.keys)))
		binary.LittleEndian.PutUint64(pl[3:11], uint64(n.next+1))
		for i, k := range n.keys {
			off := nodeHeader + i*pairSize
			binary.LittleEndian.PutUint64(pl[off:], uint64(k))
			binary.LittleEndian.PutUint64(pl[off+8:], uint64(n.vals[i]))
		}
		return
	}
	pl[0] = typeInternal
	binary.LittleEndian.PutUint16(pl[1:3], uint16(len(n.keys)))
	binary.LittleEndian.PutUint64(pl[3:11], uint64(n.children[0]))
	for i, k := range n.keys {
		off := nodeHeader + i*pairSize
		binary.LittleEndian.PutUint64(pl[off:], uint64(k))
		binary.LittleEndian.PutUint64(pl[off+8:], uint64(n.children[i+1]))
	}
}

func (t *Tree) writeNode(n *node) error {
	return t.db.Update(n.pid, n.encode)
}

// Search returns the value stored under key.
func (t *Tree) Search(key int64) (int64, error) {
	root, _, _, _, err := t.readMeta()
	if err != nil {
		return 0, err
	}
	n, err := t.readNode(root)
	if err != nil {
		return 0, err
	}
	for !n.leaf {
		n, err = t.readNode(n.childFor(key))
		if err != nil {
			return 0, err
		}
	}
	i := sort.Search(len(n.keys), func(i int) bool { return n.keys[i] >= key })
	if i < len(n.keys) && n.keys[i] == key {
		return n.vals[i], nil
	}
	return 0, fmt.Errorf("%w: %d", ErrNotFound, key)
}

// childFor returns the child page covering key.
func (n *node) childFor(key int64) int64 {
	i := sort.Search(len(n.keys), func(i int) bool { return key < n.keys[i] })
	return n.children[i]
}

// Insert stores value under key, replacing any existing value.
func (t *Tree) Insert(key, value int64) error {
	root, height, size, splits, err := t.readMeta()
	if err != nil {
		return err
	}
	t.opSplits = 0
	sep, rightPid, grew, replaced, err := t.insertInto(root, key, value)
	if err != nil {
		return err
	}
	newSplits := splits + t.opSplits
	if grew {
		// Root split: a new root with two children.
		newRootPid, err := t.db.AllocPage()
		if err != nil {
			return err
		}
		newRoot := &node{
			pid:      newRootPid,
			keys:     []int64{sep},
			children: []int64{root, rightPid},
		}
		if err := t.writeNode(newRoot); err != nil {
			return err
		}
		root = newRootPid
		height++
	}
	if !replaced {
		size++
	}
	return t.db.Update(t.meta, func(pl []byte) {
		binary.LittleEndian.PutUint64(pl[4:12], uint64(root+1))
		binary.LittleEndian.PutUint64(pl[12:20], height)
		binary.LittleEndian.PutUint64(pl[20:28], size)
		binary.LittleEndian.PutUint64(pl[28:36], newSplits)
	})
}

// insertInto descends into pid; on split it returns the separator key and
// new right sibling.
func (t *Tree) insertInto(pid int64, key, value int64) (sep int64, rightPid int64, split, replaced bool, err error) {
	n, err := t.readNode(pid)
	if err != nil {
		return 0, 0, false, false, err
	}
	if n.leaf {
		i := sort.Search(len(n.keys), func(i int) bool { return n.keys[i] >= key })
		if i < len(n.keys) && n.keys[i] == key {
			n.vals[i] = value
			return 0, 0, false, true, t.writeNode(n)
		}
		n.keys = append(n.keys, 0)
		copy(n.keys[i+1:], n.keys[i:])
		n.keys[i] = key
		n.vals = append(n.vals, 0)
		copy(n.vals[i+1:], n.vals[i:])
		n.vals[i] = value
		if len(n.keys) <= t.cap {
			return 0, 0, false, false, t.writeNode(n)
		}
		return t.splitLeaf(n)
	}

	childSep, childRight, childSplit, replaced, err := t.insertInto(n.childFor(key), key, value)
	if err != nil || !childSplit {
		return 0, 0, false, replaced, err
	}
	i := sort.Search(len(n.keys), func(i int) bool { return childSep < n.keys[i] })
	n.keys = append(n.keys, 0)
	copy(n.keys[i+1:], n.keys[i:])
	n.keys[i] = childSep
	n.children = append(n.children, 0)
	copy(n.children[i+2:], n.children[i+1:])
	n.children[i+1] = childRight
	if len(n.keys) <= t.cap {
		return 0, 0, false, replaced, t.writeNode(n)
	}
	sep, rightPid, err = t.splitInternal(n)
	return sep, rightPid, err == nil, replaced, err
}

// splitLeaf splits an over-full leaf, creating the right sibling page.
func (t *Tree) splitLeaf(n *node) (int64, int64, bool, bool, error) {
	mid := len(n.keys) / 2
	rightPid, err := t.db.AllocPage()
	if err != nil {
		return 0, 0, false, false, err
	}
	t.opSplits++
	right := &node{
		pid:  rightPid,
		leaf: true,
		keys: append([]int64(nil), n.keys[mid:]...),
		vals: append([]int64(nil), n.vals[mid:]...),
		next: n.next,
	}
	n.keys = n.keys[:mid]
	n.vals = n.vals[:mid]
	n.next = rightPid
	if err := t.writeNode(right); err != nil {
		return 0, 0, false, false, err
	}
	if err := t.writeNode(n); err != nil {
		return 0, 0, false, false, err
	}
	return right.keys[0], rightPid, true, false, nil
}

// splitInternal splits an over-full internal node; the middle key moves up.
func (t *Tree) splitInternal(n *node) (int64, int64, error) {
	mid := len(n.keys) / 2
	sep := n.keys[mid]
	rightPid, err := t.db.AllocPage()
	if err != nil {
		return 0, 0, err
	}
	t.opSplits++
	right := &node{
		pid:      rightPid,
		keys:     append([]int64(nil), n.keys[mid+1:]...),
		children: append([]int64(nil), n.children[mid+1:]...),
	}
	n.keys = n.keys[:mid]
	n.children = n.children[:mid+1]
	if err := t.writeNode(right); err != nil {
		return 0, 0, err
	}
	if err := t.writeNode(n); err != nil {
		return 0, 0, err
	}
	return sep, rightPid, nil
}

// Delete removes key (lazy: no rebalancing). It returns ErrNotFound when
// the key is absent.
func (t *Tree) Delete(key int64) error {
	root, _, size, _, err := t.readMeta()
	if err != nil {
		return err
	}
	n, err := t.readNode(root)
	if err != nil {
		return err
	}
	for !n.leaf {
		n, err = t.readNode(n.childFor(key))
		if err != nil {
			return err
		}
	}
	i := sort.Search(len(n.keys), func(i int) bool { return n.keys[i] >= key })
	if i >= len(n.keys) || n.keys[i] != key {
		return fmt.Errorf("%w: %d", ErrNotFound, key)
	}
	n.keys = append(n.keys[:i], n.keys[i+1:]...)
	n.vals = append(n.vals[:i], n.vals[i+1:]...)
	if err := t.writeNode(n); err != nil {
		return err
	}
	return t.db.Update(t.meta, func(pl []byte) {
		binary.LittleEndian.PutUint64(pl[20:28], size-1)
	})
}

// Range visits keys in [lo, hi] in ascending order via the leaf chain.
// Returning an error from fn stops the traversal.
func (t *Tree) Range(lo, hi int64, fn func(key, value int64) error) error {
	if hi < lo {
		return nil
	}
	root, _, _, _, err := t.readMeta()
	if err != nil {
		return err
	}
	n, err := t.readNode(root)
	if err != nil {
		return err
	}
	for !n.leaf {
		n, err = t.readNode(n.childFor(lo))
		if err != nil {
			return err
		}
	}
	for {
		for i, k := range n.keys {
			if k < lo {
				continue
			}
			if k > hi {
				return nil
			}
			if err := fn(k, n.vals[i]); err != nil {
				return err
			}
		}
		if n.next < 0 {
			return nil
		}
		n, err = t.readNode(n.next)
		if err != nil {
			return err
		}
	}
}
