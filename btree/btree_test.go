package btree

import (
	"errors"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"turbobp"
)

func openDB(t *testing.T, pages int64) *turbobp.DB {
	t.Helper()
	db, err := turbobp.Open(turbobp.Options{
		Design: turbobp.LC, DBPages: pages, PoolPages: 32, SSDFrames: 128, PageSize: 128,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return db
}

func TestEmptyTree(t *testing.T) {
	tr, err := Create(openDB(t, 256))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Search(7); !errors.Is(err, ErrNotFound) {
		t.Errorf("Search on empty = %v", err)
	}
	n, _ := tr.Size()
	if n != 0 {
		t.Errorf("Size = %d", n)
	}
	h, _ := tr.Height()
	if h != 1 {
		t.Errorf("Height = %d", h)
	}
}

func TestInsertSearch(t *testing.T) {
	tr, _ := Create(openDB(t, 256))
	for k := int64(0); k < 20; k++ {
		if err := tr.Insert(k, k*100); err != nil {
			t.Fatal(err)
		}
	}
	for k := int64(0); k < 20; k++ {
		v, err := tr.Search(k)
		if err != nil || v != k*100 {
			t.Errorf("Search(%d) = %d, %v", k, v, err)
		}
	}
	if _, err := tr.Search(99); !errors.Is(err, ErrNotFound) {
		t.Errorf("absent key: %v", err)
	}
}

func TestInsertReplaces(t *testing.T) {
	tr, _ := Create(openDB(t, 256))
	tr.Insert(5, 1)
	tr.Insert(5, 2)
	v, err := tr.Search(5)
	if err != nil || v != 2 {
		t.Errorf("Search = %d, %v", v, err)
	}
	n, _ := tr.Size()
	if n != 1 {
		t.Errorf("Size = %d after replace", n)
	}
}

func TestSplitsGrowTree(t *testing.T) {
	tr, _ := Create(openDB(t, 4096))
	const n = 2000
	for k := int64(0); k < n; k++ {
		if err := tr.Insert(k, -k); err != nil {
			t.Fatalf("insert %d: %v", k, err)
		}
	}
	h, _ := tr.Height()
	if h < 3 {
		t.Errorf("Height = %d after %d inserts (cap 7/node)", h, n)
	}
	splits, _ := tr.Splits()
	if splits == 0 {
		t.Error("no splits recorded")
	}
	size, _ := tr.Size()
	if size != n {
		t.Errorf("Size = %d, want %d", size, n)
	}
	for _, k := range []int64{0, 1, 999, 1998, 1999} {
		v, err := tr.Search(k)
		if err != nil || v != -k {
			t.Errorf("Search(%d) = %d, %v", k, v, err)
		}
	}
}

func TestDescendingInserts(t *testing.T) {
	tr, _ := Create(openDB(t, 2048))
	for k := int64(500); k > 0; k-- {
		if err := tr.Insert(k, k); err != nil {
			t.Fatal(err)
		}
	}
	for k := int64(1); k <= 500; k++ {
		if v, err := tr.Search(k); err != nil || v != k {
			t.Fatalf("Search(%d) = %d, %v", k, v, err)
		}
	}
}

func TestDelete(t *testing.T) {
	tr, _ := Create(openDB(t, 1024))
	for k := int64(0); k < 100; k++ {
		tr.Insert(k, k)
	}
	for k := int64(0); k < 100; k += 2 {
		if err := tr.Delete(k); err != nil {
			t.Fatal(err)
		}
	}
	for k := int64(0); k < 100; k++ {
		v, err := tr.Search(k)
		if k%2 == 0 {
			if !errors.Is(err, ErrNotFound) {
				t.Errorf("deleted key %d still found", k)
			}
		} else if err != nil || v != k {
			t.Errorf("Search(%d) = %d, %v", k, v, err)
		}
	}
	if err := tr.Delete(0); !errors.Is(err, ErrNotFound) {
		t.Errorf("double delete: %v", err)
	}
	n, _ := tr.Size()
	if n != 50 {
		t.Errorf("Size = %d", n)
	}
}

func TestRange(t *testing.T) {
	tr, _ := Create(openDB(t, 2048))
	for k := int64(0); k < 300; k += 3 {
		tr.Insert(k, k*2)
	}
	var got []int64
	err := tr.Range(10, 50, func(k, v int64) error {
		if v != k*2 {
			t.Errorf("value for %d = %d", k, v)
		}
		got = append(got, k)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []int64{12, 15, 18, 21, 24, 27, 30, 33, 36, 39, 42, 45, 48}
	if len(got) != len(want) {
		t.Fatalf("Range = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Range = %v, want %v", got, want)
		}
	}
	// Empty and inverted ranges.
	if err := tr.Range(1000, 2000, func(int64, int64) error { t.Error("hit"); return nil }); err != nil {
		t.Fatal(err)
	}
	if err := tr.Range(50, 10, func(int64, int64) error { t.Error("hit"); return nil }); err != nil {
		t.Fatal(err)
	}
}

func TestRangeEarlyStop(t *testing.T) {
	tr, _ := Create(openDB(t, 1024))
	for k := int64(0); k < 50; k++ {
		tr.Insert(k, k)
	}
	boom := errors.New("enough")
	n := 0
	err := tr.Range(0, 49, func(int64, int64) error {
		n++
		if n == 5 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) || n != 5 {
		t.Errorf("err=%v n=%d", err, n)
	}
}

func TestOpenExisting(t *testing.T) {
	db := openDB(t, 1024)
	tr, _ := Create(db)
	for k := int64(0); k < 50; k++ {
		tr.Insert(k, k+7)
	}
	tr2, err := Open(db, tr.Meta())
	if err != nil {
		t.Fatal(err)
	}
	v, err := tr2.Search(30)
	if err != nil || v != 37 {
		t.Errorf("Search = %d, %v", v, err)
	}
	if _, err := Open(db, 1); err == nil {
		t.Error("Open on non-meta page succeeded")
	}
}

func TestSurvivesCrashRecovery(t *testing.T) {
	db := openDB(t, 4096)
	tr, _ := Create(db)
	for k := int64(0); k < 800; k++ {
		if err := tr.Insert(k*7%1000, k); err != nil {
			t.Fatal(err)
		}
	}
	want := map[int64]int64{}
	for k := int64(0); k < 800; k++ {
		want[k*7%1000] = k
	}
	alloc := db.Allocated()
	db.Crash()
	if err := db.Recover(); err != nil {
		t.Fatal(err)
	}
	db.SetAllocated(alloc)
	tr2, err := Open(db, tr.Meta())
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range want {
		got, err := tr2.Search(k)
		if err != nil || got != v {
			t.Fatalf("Search(%d) = %d, %v after recovery", k, got, err)
		}
	}
}

// Property: the tree agrees with a shadow map under random interleaved
// inserts, replaces and deletes, and Range(min,max) yields the sorted keys.
func TestShadowMapProperty(t *testing.T) {
	type op struct {
		Key    int16
		Val    int32
		Delete bool
	}
	prop := func(ops []op) bool {
		if len(ops) > 400 {
			ops = ops[:400]
		}
		db, err := turbobp.Open(turbobp.Options{
			Design: turbobp.DW, DBPages: 8192, PoolPages: 24, SSDFrames: 96, PageSize: 128,
		})
		if err != nil {
			return false
		}
		defer db.Close()
		tr, err := Create(db)
		if err != nil {
			return false
		}
		shadow := map[int64]int64{}
		for _, o := range ops {
			k := int64(o.Key % 200)
			if o.Delete {
				_, exists := shadow[k]
				err := tr.Delete(k)
				if exists != (err == nil) {
					return false
				}
				delete(shadow, k)
			} else {
				if tr.Insert(k, int64(o.Val)) != nil {
					return false
				}
				shadow[k] = int64(o.Val)
			}
		}
		if n, err := tr.Size(); err != nil || int(n) != len(shadow) {
			return false
		}
		for k, v := range shadow {
			got, err := tr.Search(k)
			if err != nil || got != v {
				return false
			}
		}
		var keys []int64
		if err := tr.Range(-1000, 1000, func(k, v int64) error {
			if shadow[k] != v {
				return errors.New("bad value")
			}
			keys = append(keys, k)
			return nil
		}); err != nil {
			return false
		}
		if len(keys) != len(shadow) {
			return false
		}
		return sort.SliceIsSorted(keys, func(i, j int) bool { return keys[i] < keys[j] })
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestRandomBulk(t *testing.T) {
	db := openDB(t, 16384)
	tr, _ := Create(db)
	rng := rand.New(rand.NewSource(99))
	want := map[int64]int64{}
	for i := 0; i < 5000; i++ {
		k := rng.Int63n(10000)
		v := rng.Int63()
		if err := tr.Insert(k, v); err != nil {
			t.Fatal(err)
		}
		want[k] = v
	}
	for k, v := range want {
		got, err := tr.Search(k)
		if err != nil || got != v {
			t.Fatalf("Search(%d) = %d, %v", k, got, err)
		}
	}
	n, _ := tr.Size()
	if int(n) != len(want) {
		t.Errorf("Size = %d, want %d", n, len(want))
	}
}
