package btree_test

import (
	"fmt"

	"turbobp"
	"turbobp/btree"
)

// Example builds a small index over a simulated SSD-extended buffer pool,
// then looks keys up and walks a range — the minimal end-to-end use of the
// package through the public turbobp.DB storage backend.
func Example() {
	db, err := turbobp.Open(turbobp.Options{
		Design: turbobp.LC, DBPages: 512, PoolPages: 32, SSDFrames: 128, PageSize: 128,
	})
	if err != nil {
		panic(err)
	}
	defer db.Close()

	tr, err := btree.Create(db)
	if err != nil {
		panic(err)
	}
	for k := int64(0); k < 100; k++ {
		if err := tr.Insert(k, k*10); err != nil {
			panic(err)
		}
	}

	v, err := tr.Search(42)
	if err != nil {
		panic(err)
	}
	fmt.Println("key 42 ->", v)

	sum := int64(0)
	if err := tr.Range(10, 19, func(k, v int64) error {
		sum += v
		return nil
	}); err != nil {
		panic(err)
	}
	fmt.Println("sum of values for keys 10..19:", sum)

	n, _ := tr.Size()
	h, _ := tr.Height()
	fmt.Printf("size=%d height=%d\n", n, h)
	// Output:
	// key 42 -> 420
	// sum of values for keys 10..19: 1450
	// size=100 height=3
}

// ExampleOpen reattaches to an index by its meta page id — the handle a
// catalog would persist — and sees the previously inserted data.
func ExampleOpen() {
	db, err := turbobp.Open(turbobp.Options{
		Design: turbobp.DW, DBPages: 512, PoolPages: 32, SSDFrames: 128, PageSize: 128,
	})
	if err != nil {
		panic(err)
	}
	defer db.Close()

	tr, _ := btree.Create(db)
	meta := tr.Meta()
	_ = tr.Insert(7, 700)

	again, err := btree.Open(db, meta)
	if err != nil {
		panic(err)
	}
	v, _ := again.Search(7)
	fmt.Println(v)
	// Output:
	// 700
}
