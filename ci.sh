#!/usr/bin/env bash
# ci.sh — the checks a change must pass before merging.
#
#   ./ci.sh         # vet + build + race tests + benchmark smoke
#   ./ci.sh -short  # skip the slow full-harness tests
set -euo pipefail
cd "$(dirname "$0")"

short=""
if [[ "${1:-}" == "-short" ]]; then
  short="-short"
fi

echo "== go vet =="
go vet ./...

echo "== package documentation audit =="
# Every package (internal, public, command, example) must carry a doc
# comment immediately above its package clause in at least one file.
missing=0
for dir in $(go list -f '{{.Dir}}' ./...); do
  documented=0
  for f in "$dir"/*.go; do
    if awk 'prev ~ /^\/\// && /^package / {found=1} {prev=$0} END{exit found?0:1}' "$f"; then
      documented=1
      break
    fi
  done
  if [[ $documented -eq 0 ]]; then
    echo "missing package doc comment: ${dir#"$PWD"/}"
    missing=1
  fi
done
if [[ $missing -ne 0 ]]; then
  echo "package documentation audit FAILED"
  exit 1
fi

# The public access-method packages and the policy layer hold a stricter
# bar: every exported top-level declaration (and exported method) must
# carry a doc comment on the line directly above it.
undocumented=0
for f in btree/*.go heapfile/*.go internal/policy/*.go; do
  [[ "$f" == *_test.go ]] && continue
  awk -v file="$f" '
    /^(func|type|var|const) [A-Z]/ || /^func \([^)]*\) [A-Z]/ {
      if (prev !~ /^\/\//) { printf "undocumented exported identifier: %s: %s\n", file, $0; bad=1 }
    }
    { prev=$0 }
    END { exit bad ? 1 : 0 }
  ' "$f" || undocumented=1
done
if [[ $undocumented -ne 0 ]]; then
  echo "exported-identifier doc audit FAILED (btree/heapfile/policy)"
  exit 1
fi

echo "== go build =="
go build ./...

echo "== go test -race =="
go test -race $short ./...

echo "== benchmark smoke (1 iteration each, allocs reported) =="
go test -run '^$' -bench 'BenchmarkGetHit|BenchmarkGetMiss|BenchmarkUpdateCommit|BenchmarkGroupClean|BenchmarkTableChurn|BenchmarkMapChurn|BenchmarkSchedulerCalendar|BenchmarkSchedulerHeap|BenchmarkPolicy|BenchmarkSketch' \
  -benchtime=1x -benchmem .

echo "== sharded kernel race tests (shards=4 widths under the race detector) =="
go test -race -run 'Cluster|Shard' ./internal/sim ./internal/engine ./internal/ssd ./internal/harness

echo "== concurrency race tests (partitioned backend, striped pool, group commit, server) =="
go test -race -run 'Concurrent|CommitSync' .
go test -race -run 'Striped' ./internal/bufpool
go test -race ./internal/policy
go test -race -run 'GroupCommitter' ./internal/wal
go test -race ./internal/netproto ./cmd/bpeserve
go test -race -short ./internal/loadbench

echo "== two-phase commit recovery tests (in-doubt resolution, multi-generation) =="
go test -race -run 'TwoPhase|Reopen|CrossPartition' .

echo "== golden determinism (full suite, serial vs 4 workers) =="
go build -o /tmp/bpesim-ci ./cmd/bpesim
/tmp/bpesim-ci -divisor 8192 -parallel 1 all > /tmp/bpesim-ci-serial.out 2>/dev/null
/tmp/bpesim-ci -divisor 8192 -parallel 4 all > /tmp/bpesim-ci-parallel.out 2>/dev/null
cmp /tmp/bpesim-ci-serial.out /tmp/bpesim-ci-parallel.out

echo "== index experiment determinism (traversal-driven matrix, serial vs 4 workers) =="
/tmp/bpesim-ci -divisor 8192 -parallel 1 index > /tmp/bpesim-ci-index-serial.out 2>/dev/null
/tmp/bpesim-ci -divisor 8192 -parallel 4 index > /tmp/bpesim-ci-index-parallel.out 2>/dev/null
cmp /tmp/bpesim-ci-index-serial.out /tmp/bpesim-ci-index-parallel.out

echo "== policy sweep determinism (4 designs × 4 policies × 4 workloads, serial vs 4 workers) =="
/tmp/bpesim-ci -divisor 8192 -parallel 1 policy > /tmp/bpesim-ci-policy-serial.out 2>/dev/null
/tmp/bpesim-ci -divisor 8192 -parallel 4 policy > /tmp/bpesim-ci-policy-parallel.out 2>/dev/null
cmp /tmp/bpesim-ci-policy-serial.out /tmp/bpesim-ci-policy-parallel.out

echo "== sharded determinism (full suite, shards=4 vs single-kernel-width sharded run) =="
/tmp/bpesim-ci -divisor 8192 -parallel 1 -shards 1 all > /tmp/bpesim-ci-shard1.out 2>/dev/null
/tmp/bpesim-ci -divisor 8192 -parallel 1 -shards 4 all > /tmp/bpesim-ci-shard4.out 2>/dev/null
cmp /tmp/bpesim-ci-shard1.out /tmp/bpesim-ci-shard4.out

echo "== fault matrix (crash/recover, must pass and be byte-stable) =="
/tmp/bpesim-ci -parallel 1 faults > /tmp/bpesim-ci-faults-serial.out 2>/dev/null
/tmp/bpesim-ci -parallel 4 faults > /tmp/bpesim-ci-faults-parallel.out 2>/dev/null
cmp /tmp/bpesim-ci-faults-serial.out /tmp/bpesim-ci-faults-parallel.out

echo "== corruption matrix (silent-corruption defense, must pass and be byte-stable) =="
/tmp/bpesim-ci -parallel 1 corrupt > /tmp/bpesim-ci-corrupt-serial.out 2>/dev/null
/tmp/bpesim-ci -parallel 4 corrupt > /tmp/bpesim-ci-corrupt-parallel.out 2>/dev/null
cmp /tmp/bpesim-ci-corrupt-serial.out /tmp/bpesim-ci-corrupt-parallel.out

echo "== benchmark regression guard (hot paths vs BENCH_harness.json, 25% margin) =="
/tmp/bpesim-ci -benchguard BENCH_harness.json

echo "== scale smoke (fig5-tpcc at divisor 256, 120s budget) =="
timeout 120 /tmp/bpesim-ci -divisor 256 -parallel 1 fig5-tpcc > /tmp/bpesim-ci-scale.out 2>/dev/null
grep -q "== fig5-tpcc" /tmp/bpesim-ci-scale.out

echo "== server smoke (bpeserve + bpeload, ~30s budget) =="
go build -o /tmp/bpeserve-ci ./cmd/bpeserve
go build -o /tmp/bpeload-ci ./cmd/bpeload
smokedir=$(mktemp -d /tmp/bpeserve-ci-dir.XXXXXX)
/tmp/bpeserve-ci -addr 127.0.0.1:7971 -dir "$smokedir" -pages 8192 -pool 1024 -ssd 2048 \
  -duration 25s > /tmp/bpeserve-ci.out 2>&1 &
serve_pid=$!
sleep 1
timeout 20 /tmp/bpeload-ci -addr 127.0.0.1:7971 -readers 2 -writers 2 -pages 8192 \
  -duration 8s > /tmp/bpeload-ci.out 2>&1
# The load driver must report nonzero throughput...
grep -E 'total: [1-9][0-9]* ops' /tmp/bpeload-ci.out
# ...and the server must shut down cleanly with a summary.
wait "$serve_pid"
grep -E 'bpeserve: served [1-9][0-9]* ops' /tmp/bpeserve-ci.out
rm -rf "$smokedir" /tmp/bpeserve-ci.out /tmp/bpeload-ci.out

echo "== kill-9 chaos smoke (3 kill/restart cycles, acked commits re-verified, ~45s budget) =="
chaosdir=$(mktemp -d /tmp/bpechaos-ci-dir.XXXXXX)
timeout 45 /tmp/bpeload-ci -chaos 3 -server-bin /tmp/bpeserve-ci -dir "$chaosdir" \
  -cycle 500ms > /tmp/bpechaos-ci.out 2>&1
# Zero lost acked commits, zero torn pairs, zero stale or corrupt reads.
grep -E 'lost=0 stale=0 corrupt=0 torn-pairs=0 phantom=0 verify-fails=0' /tmp/bpechaos-ci.out | tail -1
rm -rf "$chaosdir" /tmp/bpeserve-ci /tmp/bpeload-ci /tmp/bpechaos-ci.out

rm -f /tmp/bpesim-ci /tmp/bpesim-ci-serial.out /tmp/bpesim-ci-parallel.out \
      /tmp/bpesim-ci-index-serial.out /tmp/bpesim-ci-index-parallel.out \
      /tmp/bpesim-ci-policy-serial.out /tmp/bpesim-ci-policy-parallel.out \
      /tmp/bpesim-ci-shard1.out /tmp/bpesim-ci-shard4.out \
      /tmp/bpesim-ci-faults-serial.out /tmp/bpesim-ci-faults-parallel.out \
      /tmp/bpesim-ci-corrupt-serial.out /tmp/bpesim-ci-corrupt-parallel.out \
      /tmp/bpesim-ci-scale.out

echo "CI OK"
