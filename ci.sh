#!/usr/bin/env bash
# ci.sh — the checks a change must pass before merging.
#
#   ./ci.sh         # vet + build + race tests + benchmark smoke
#   ./ci.sh -short  # skip the slow full-harness tests
set -euo pipefail
cd "$(dirname "$0")"

short=""
if [[ "${1:-}" == "-short" ]]; then
  short="-short"
fi

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test -race =="
go test -race $short ./...

echo "== benchmark smoke (1 iteration each, allocs reported) =="
go test -run '^$' -bench 'BenchmarkGetHit|BenchmarkGetMiss|BenchmarkUpdateCommit|BenchmarkGroupClean|BenchmarkTableChurn|BenchmarkMapChurn|BenchmarkSchedulerCalendar|BenchmarkSchedulerHeap' \
  -benchtime=1x -benchmem .

echo "== golden determinism (full suite, serial vs 4 workers) =="
go build -o /tmp/bpesim-ci ./cmd/bpesim
/tmp/bpesim-ci -divisor 8192 -parallel 1 all > /tmp/bpesim-ci-serial.out 2>/dev/null
/tmp/bpesim-ci -divisor 8192 -parallel 4 all > /tmp/bpesim-ci-parallel.out 2>/dev/null
cmp /tmp/bpesim-ci-serial.out /tmp/bpesim-ci-parallel.out
rm -f /tmp/bpesim-ci /tmp/bpesim-ci-serial.out /tmp/bpesim-ci-parallel.out

echo "CI OK"
