// Command bpeload drives a bpeserve instance with concurrent readers and
// writers over TCP and reports throughput and latency quantiles. Each
// worker owns one connection: readers issue point gets (with an optional
// scan mix), writers issue update+commit pairs that exercise the server's
// WAL group commit. Per-worker latency histograms (internal/metrics) are
// merged at the end; the summary prints ops/s and p50/p95/p99 per class.
//
// Usage:
//
//	bpeload -addr 127.0.0.1:7070 -readers 6 -writers 2 -value-size 64 -duration 10s
//
// Oversubscription is reported honestly: the summary includes the
// effective hardware parallelism (min(workers, GOMAXPROCS), via
// internal/harness.EffectiveWorkers) next to the requested worker count.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"math/rand"
	"net"
	"os"
	"runtime"
	"sync"
	"time"

	"turbobp/internal/harness"
	"turbobp/internal/metrics"
	"turbobp/internal/netproto"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "bpeload:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr      = flag.String("addr", "127.0.0.1:7070", "server address")
		readers   = flag.Int("readers", 4, "reader workers (one connection each)")
		writers   = flag.Int("writers", 4, "writer workers (one connection each)")
		valueSize = flag.Int("value-size", 64, "bytes written per update")
		duration  = flag.Duration("duration", 10*time.Second, "run length")
		pages     = flag.Int64("pages", 65536, "page id space to draw from")
		scanEvery = flag.Int("scan-every", 0, "every Nth read op is a 16-page scan (0 disables)")
		seed      = flag.Int64("seed", 1, "workload RNG seed")
		cachePol  = flag.String("policy", "", "server cache policy label for the summary (informational)")
	)
	flag.Parse()
	if *readers < 0 || *writers < 0 || *readers+*writers == 0 {
		return fmt.Errorf("need at least one worker (readers=%d writers=%d)", *readers, *writers)
	}

	total := *readers + *writers
	results := make([]workerResult, total)
	start := time.Now()
	deadline := start.Add(*duration)
	var wg sync.WaitGroup
	for i := 0; i < total; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			w := worker{
				addr:      *addr,
				writer:    i >= *readers,
				valueSize: *valueSize,
				pages:     *pages,
				scanEvery: *scanEvery,
				deadline:  deadline,
				rng:       rand.New(rand.NewSource(*seed + int64(i))),
			}
			results[i] = w.run()
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)

	var readHist, writeHist metrics.Histogram
	var reads, writes, scans, errs int64
	for i, r := range results {
		if r.err != nil {
			errs++
			fmt.Fprintf(os.Stderr, "bpeload: worker %d: %v\n", i, r.err)
		}
		readHist.Merge(&r.read)
		writeHist.Merge(&r.write)
		reads += r.read.Count()
		writes += r.write.Count()
		scans += r.scans
	}
	ops := reads + writes
	if errs == int64(total) {
		return fmt.Errorf("every worker failed")
	}

	fmt.Printf("bpeload: %d readers + %d writers for %v against %s\n", *readers, *writers, elapsed.Round(time.Millisecond), *addr)
	if *cachePol != "" {
		fmt.Printf("bpeload: server cache policy %s (as labelled by -policy)\n", *cachePol)
	}
	fmt.Printf("bpeload: effective parallelism %d of %d workers (GOMAXPROCS=%d)\n",
		harness.EffectiveWorkers(total), total, runtime.GOMAXPROCS(0))
	secs := elapsed.Seconds()
	fmt.Printf("total: %d ops, %.0f ops/s\n", ops, float64(ops)/secs)
	if reads > 0 {
		fmt.Printf("reads: %d (%.0f ops/s, %d scans) p50=%v p95=%v p99=%v\n",
			reads, float64(reads)/secs, scans,
			readHist.Quantile(0.50).Round(time.Microsecond),
			readHist.Quantile(0.95).Round(time.Microsecond),
			readHist.Quantile(0.99).Round(time.Microsecond))
	}
	if writes > 0 {
		fmt.Printf("writes: %d (%.0f ops/s) p50=%v p95=%v p99=%v\n",
			writes, float64(writes)/secs,
			writeHist.Quantile(0.50).Round(time.Microsecond),
			writeHist.Quantile(0.95).Round(time.Microsecond),
			writeHist.Quantile(0.99).Round(time.Microsecond))
	}
	return nil
}

// workerResult carries one worker's histograms back to the aggregator.
type workerResult struct {
	read  metrics.Histogram // point gets and scans
	write metrics.Histogram // update+commit round trips
	scans int64
	err   error
}

// worker is one load-generating connection.
type worker struct {
	addr      string
	writer    bool
	valueSize int
	pages     int64
	scanEvery int
	deadline  time.Time
	rng       *rand.Rand
}

func (w *worker) run() workerResult {
	var res workerResult
	conn, err := net.Dial("tcp", w.addr)
	if err != nil {
		res.err = err
		return res
	}
	defer conn.Close()
	br := bufio.NewReader(conn)
	bw := bufio.NewWriter(conn)
	var req netproto.Request
	var resp netproto.Response
	value := make([]byte, w.valueSize)

	// roundTrip sends req and reads the reply, failing on StatusErr.
	roundTrip := func() error {
		if err := netproto.WriteRequest(bw, &req); err != nil {
			return err
		}
		if err := bw.Flush(); err != nil {
			return err
		}
		if err := netproto.ReadResponse(br, &resp); err != nil {
			return err
		}
		if resp.Status != netproto.StatusOK {
			return fmt.Errorf("server: %s", resp.Data)
		}
		return nil
	}

	for i := 0; time.Now().Before(w.deadline); i++ {
		pid := w.rng.Int63n(w.pages)
		t0 := time.Now()
		if w.writer {
			w.rng.Read(value)
			req = netproto.Request{Op: netproto.OpUpdate, Page: pid, Data: value}
			if err := roundTrip(); err != nil {
				res.err = err
				return res
			}
			req = netproto.Request{Op: netproto.OpCommit}
			if err := roundTrip(); err != nil {
				res.err = err
				return res
			}
			res.write.Observe(time.Since(t0))
			continue
		}
		if w.scanEvery > 0 && i%w.scanEvery == w.scanEvery-1 {
			n := int64(16)
			if pid+n > w.pages {
				pid = w.pages - n
			}
			req = netproto.Request{Op: netproto.OpScan, Page: pid, N: int32(n)}
			res.scans++
		} else {
			req = netproto.Request{Op: netproto.OpGet, Page: pid}
		}
		if err := roundTrip(); err != nil {
			res.err = err
			return res
		}
		res.read.Observe(time.Since(t0))
	}
	return res
}
