// Command bpeload drives a bpeserve instance with concurrent readers and
// writers over TCP and reports throughput, latency quantiles, and what the
// fault-tolerance machinery did (retries, sheds, deadline misses,
// reconnects). Each worker owns one netproto.Client — per-request
// deadlines, bounded reconnect, jittered backoff — so the benchmark
// survives shedding and restarts instead of dying on the first hiccup.
//
// Correctness is checked, not assumed. Writers own disjoint page ranges
// and stamp every page with a self-describing header (seq, writer id, crc;
// see internal/loadbench); readers classify every page they fetch, and a
// final verification pass re-reads every written page and fails the run —
// nonzero exit — if an acknowledged commit is lost, a page reads back
// corrupt, or a never-sent sequence appears.
//
// Usage:
//
//	bpeload -addr 127.0.0.1:7070 -readers 6 -writers 2 -value-size 64 -duration 10s
//
// Chaos mode wraps the kill -9 harness instead of an external server:
//
//	bpeload -chaos 3 -server-bin ./bpeserve -dir /tmp/chaosdir -cycle 1s
//
// spawns bpeserve itself, kill -9s it mid-load for each cycle, restarts it
// with -open-existing, re-verifies every acked commit, and exits nonzero
// if any violation is found.
//
// Oversubscription is reported honestly: the summary includes the
// effective hardware parallelism (min(workers, GOMAXPROCS), via
// internal/harness.EffectiveWorkers) next to the requested worker count.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"sync"
	"time"

	"turbobp/internal/harness"
	"turbobp/internal/loadbench"
	"turbobp/internal/metrics"
	"turbobp/internal/netproto"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "bpeload:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr      = flag.String("addr", "127.0.0.1:7070", "server address")
		readers   = flag.Int("readers", 4, "reader workers (one connection each)")
		writers   = flag.Int("writers", 4, "writer workers (one connection each)")
		valueSize = flag.Int("value-size", 64, "bytes written per update (>= 16 for the stamp)")
		duration  = flag.Duration("duration", 10*time.Second, "run length")
		pages     = flag.Int64("pages", 65536, "page id space to draw from")
		scanEvery = flag.Int("scan-every", 0, "every Nth read op is a 16-page scan (0 disables)")
		seed      = flag.Int64("seed", 1, "workload RNG seed")
		deadline  = flag.Duration("deadline", 2*time.Second, "per-request deadline (0 disables)")
		cachePol  = flag.String("policy", "", "server cache policy label for the summary (informational)")

		chaos     = flag.Int("chaos", 0, "run N kill-9/restart chaos cycles instead of a plain benchmark")
		serverBin = flag.String("server-bin", "", "bpeserve binary for -chaos mode")
		chaosDir  = flag.String("dir", "", "data directory for -chaos mode (shared across restarts)")
		cycleLen  = flag.Duration("cycle", time.Second, "load duration per -chaos cycle")
	)
	flag.Parse()

	if *chaos > 0 {
		return runChaos(*chaos, *serverBin, *chaosDir, *cycleLen, *seed)
	}
	if *readers < 0 || *writers < 0 || *readers+*writers == 0 {
		return fmt.Errorf("need at least one worker (readers=%d writers=%d)", *readers, *writers)
	}
	if *valueSize < loadbench.StampLen {
		return fmt.Errorf("value-size %d below stamp length %d", *valueSize, loadbench.StampLen)
	}

	// Writers own disjoint page ranges so every page has exactly one legal
	// stamp owner; readers draw from the writer-owned space when there are
	// writers, the whole space otherwise.
	perWriter := int64(0)
	if *writers > 0 {
		perWriter = *pages / int64(*writers)
		if perWriter == 0 {
			return fmt.Errorf("pages %d below writer count %d", *pages, *writers)
		}
	}

	total := *readers + *writers
	results := make([]workerResult, total)
	start := time.Now()
	end := start.Add(*duration)
	var wg sync.WaitGroup
	for i := 0; i < total; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			w := worker{
				cfg: netproto.ClientConfig{
					Addr:     *addr,
					Deadline: *deadline,
					Seed:     uint64(*seed) + uint64(i)*0x9E37,
				},
				valueSize: *valueSize,
				pages:     *pages,
				perWriter: perWriter,
				writers:   *writers,
				scanEvery: *scanEvery,
				end:       end,
				rng:       rand.New(rand.NewSource(*seed + int64(i))),
			}
			if i >= *readers {
				w.writer = i - *readers // writer id 0..writers-1
			} else {
				w.writer = -1
			}
			results[i] = w.run()
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)

	var readHist, writeHist metrics.Histogram
	var reads, writes, scans, errs, verifyFails int64
	var cs netproto.ClientStats
	tracks := make(map[int64]*pageSeq)
	for i, r := range results {
		if r.err != nil {
			errs++
			fmt.Fprintf(os.Stderr, "bpeload: worker %d: %v\n", i, r.err)
		}
		readHist.Merge(&r.read)
		writeHist.Merge(&r.write)
		reads += r.read.Count()
		writes += r.write.Count()
		scans += r.scans
		verifyFails += r.verifyFails
		cs.Retries += r.stats.Retries
		cs.Sheds += r.stats.Sheds
		cs.Deadlines += r.stats.Deadlines
		cs.Busy += r.stats.Busy
		cs.Reconnects += r.stats.Reconnects
		for pid, s := range r.tracks {
			tracks[pid] = s
		}
	}
	ops := reads + writes
	if errs == int64(total) {
		return fmt.Errorf("every worker failed")
	}

	fmt.Printf("bpeload: %d readers + %d writers for %v against %s\n", *readers, *writers, elapsed.Round(time.Millisecond), *addr)
	if *cachePol != "" {
		fmt.Printf("bpeload: server cache policy %s (as labelled by -policy)\n", *cachePol)
	}
	fmt.Printf("bpeload: effective parallelism %d of %d workers (GOMAXPROCS=%d)\n",
		harness.EffectiveWorkers(total), total, runtime.GOMAXPROCS(0))
	secs := elapsed.Seconds()
	fmt.Printf("total: %d ops, %.0f ops/s\n", ops, float64(ops)/secs)
	if reads > 0 {
		fmt.Printf("reads: %d (%.0f ops/s, %d scans) p50=%v p95=%v p99=%v\n",
			reads, float64(reads)/secs, scans,
			readHist.Quantile(0.50).Round(time.Microsecond),
			readHist.Quantile(0.95).Round(time.Microsecond),
			readHist.Quantile(0.99).Round(time.Microsecond))
	}
	if writes > 0 {
		fmt.Printf("writes: %d (%.0f ops/s) p50=%v p95=%v p99=%v\n",
			writes, float64(writes)/secs,
			writeHist.Quantile(0.50).Round(time.Microsecond),
			writeHist.Quantile(0.95).Round(time.Microsecond),
			writeHist.Quantile(0.99).Round(time.Microsecond))
	}
	fmt.Printf("faults: %d retries, %d sheds, %d deadline misses, %d busy, %d reconnects\n",
		cs.Retries, cs.Sheds, cs.Deadlines, cs.Busy, cs.Reconnects)

	// Final verification pass: every page an acked commit touched must read
	// back intact at or above its acked seq, and never above what was sent.
	lost, corrupt, phantom := int64(0), int64(0), int64(0)
	if len(tracks) > 0 {
		cl, err := netproto.Dial(netproto.ClientConfig{Addr: *addr, Deadline: 5 * time.Second, Seed: uint64(*seed) + 77})
		if err != nil {
			return fmt.Errorf("verification dial: %w", err)
		}
		defer cl.Close()
		for pid, s := range tracks {
			data, err := cl.Get(pid)
			if err != nil {
				return fmt.Errorf("verification read page %d: %w", pid, err)
			}
			seq, wr, st := loadbench.CheckPage(data, pid)
			switch st {
			case loadbench.PageCorrupt:
				corrupt++
				fmt.Fprintf(os.Stderr, "bpeload: page %d corrupt\n", pid)
			case loadbench.PageUnwritten:
				if s.acked > 0 {
					lost++
					fmt.Fprintf(os.Stderr, "bpeload: page %d lost acked seq %d (unwritten)\n", pid, s.acked)
				}
			case loadbench.PageOK:
				if wr != s.owner {
					corrupt++
					fmt.Fprintf(os.Stderr, "bpeload: page %d stamped by writer %d, owned by %d\n", pid, wr, s.owner)
				}
				if seq < s.acked {
					lost++
					fmt.Fprintf(os.Stderr, "bpeload: page %d at seq %d below acked %d\n", pid, seq, s.acked)
				}
				if seq > s.maxSent {
					phantom++
					fmt.Fprintf(os.Stderr, "bpeload: page %d at seq %d beyond anything sent (%d)\n", pid, seq, s.maxSent)
				}
			}
		}
		fmt.Printf("verify: %d pages checked, %d lost, %d corrupt, %d phantom, %d inline failures\n",
			len(tracks), lost, corrupt, phantom, verifyFails)
	}
	if bad := lost + corrupt + phantom + verifyFails; bad > 0 {
		return fmt.Errorf("verification failed: %d violations", bad)
	}
	return nil
}

// runChaos is -chaos mode: hand everything to the loadbench harness, which
// owns the server process lifecycle, and mirror its verdict in the exit
// status.
func runChaos(cycles int, serverBin, dir string, cycleLen time.Duration, seed int64) error {
	if serverBin == "" || dir == "" {
		return fmt.Errorf("-chaos needs -server-bin and -dir")
	}
	rep, err := loadbench.RunChaos(loadbench.ChaosConfig{
		ServerBin: serverBin,
		Dir:       dir,
		Cycles:    cycles,
		CycleLen:  cycleLen,
		Seed:      seed,
		Log:       os.Stdout,
	})
	if err != nil {
		return err
	}
	fmt.Println(rep)
	if rep.Failed() {
		return fmt.Errorf("chaos verification failed")
	}
	return nil
}

// pageSeq is one page's durability floor and ceiling as its owning writer
// saw them.
type pageSeq struct {
	owner   uint32
	acked   uint64 // last seq whose commit the server acknowledged
	maxSent uint64 // last seq ever sent
}

// workerResult carries one worker's measurements back to the aggregator.
type workerResult struct {
	read        metrics.Histogram // point gets and scans
	write       metrics.Histogram // stamped tx round trips
	scans       int64
	verifyFails int64 // inline check failures (corrupt reads, RYW misses)
	stats       netproto.ClientStats
	tracks      map[int64]*pageSeq // writer only: owned-page seq state
	err         error
}

// worker is one load-generating client.
type worker struct {
	cfg       netproto.ClientConfig
	writer    int // writer id, or -1 for a reader
	valueSize int
	pages     int64
	perWriter int64
	writers   int
	scanEvery int
	end       time.Time
	rng       *rand.Rand
}

func (w *worker) run() workerResult {
	res := workerResult{tracks: map[int64]*pageSeq{}}
	cl, err := netproto.Dial(w.cfg)
	if err != nil {
		res.err = err
		return res
	}
	defer func() { res.stats = cl.Stats(); cl.Close() }()

	if w.writer >= 0 {
		w.runWriter(cl, &res)
	} else {
		w.runReader(cl, &res)
	}
	return res
}

// runWriter drives stamped single-update transactions over the worker's
// owned page range via loadbench.SendTx, which re-sends the whole sequence
// on a mid-transaction reconnect so an ack always means a complete commit.
func (w *worker) runWriter(cl *netproto.Client, res *workerResult) {
	base := int64(w.writer) * w.perWriter
	value := make([]byte, w.valueSize)
	for i := 0; time.Now().Before(w.end); i++ {
		pid := base + w.rng.Int63n(w.perWriter)
		s := res.tracks[pid]
		if s == nil {
			s = &pageSeq{owner: uint32(w.writer)}
			res.tracks[pid] = s
		}
		seq := s.maxSent + 1
		w.rng.Read(value)
		loadbench.StampPage(value, pid, seq, uint32(w.writer))
		t0 := time.Now()
		s.maxSent = seq
		if err := loadbench.SendTx(cl, []loadbench.Update{{Page: pid, Data: value}}); err != nil {
			res.err = err
			return
		}
		s.acked = seq
		res.write.Observe(time.Since(t0))
		if i%16 == 15 { // read-your-writes spot check
			data, err := cl.Get(pid)
			if err != nil {
				res.err = err
				return
			}
			if got, wr, st := loadbench.CheckPage(data, pid); st != loadbench.PageOK || got != seq || wr != uint32(w.writer) {
				res.verifyFails++
				fmt.Fprintf(os.Stderr, "bpeload: writer %d page %d: read-your-writes got seq=%d st=%d want %d\n",
					w.writer, pid, got, st, seq)
			}
		}
	}
}

// runReader issues point gets (and optional scans) over the writer-owned
// space, classifying every page it sees: corrupt or foreign-stamped pages
// are verification failures even mid-load.
func (w *worker) runReader(cl *netproto.Client, res *workerResult) {
	space := w.pages
	if w.writers > 0 {
		space = w.perWriter * int64(w.writers)
	}
	check := func(data []byte, pid int64) {
		_, wr, st := loadbench.CheckPage(data, pid)
		if st == loadbench.PageCorrupt {
			res.verifyFails++
			fmt.Fprintf(os.Stderr, "bpeload: reader saw page %d corrupt\n", pid)
			return
		}
		if st == loadbench.PageOK && w.writers > 0 && int64(wr) != pid/w.perWriter {
			res.verifyFails++
			fmt.Fprintf(os.Stderr, "bpeload: page %d stamped by non-owner %d\n", pid, wr)
		}
	}
	for i := 0; time.Now().Before(w.end); i++ {
		pid := w.rng.Int63n(space)
		t0 := time.Now()
		if w.scanEvery > 0 && i%w.scanEvery == w.scanEvery-1 {
			n := int64(16)
			if pid+n > space {
				pid = space - n
			}
			if pid < 0 {
				pid, n = 0, space
			}
			resp, err := cl.Do(&netproto.Request{Op: netproto.OpScan, Page: pid, N: int32(n)})
			if err != nil {
				res.err = err
				return
			}
			if resp.Status != netproto.StatusOK {
				res.err = fmt.Errorf("scan: %s", resp.Data)
				return
			}
			if ps := len(resp.Data) / int(n); ps > 0 {
				for k := int64(0); k < n; k++ {
					check(resp.Data[k*int64(ps):(k+1)*int64(ps)], pid+k)
				}
			}
			res.scans++
		} else {
			data, err := cl.Get(pid)
			if err != nil {
				res.err = err
				return
			}
			check(data, pid)
		}
		res.read.Observe(time.Since(t0))
	}
}
