// Command bpeserve exposes a file-backed turbobp database over TCP: the
// netproto get/update/commit/scan operations served from the partitioned
// concurrent backend with WAL group commit. It exists to prove the
// concurrency and fault-tolerance work over a real network hop — drive it
// with cmd/bpeload.
//
// Usage:
//
//	bpeserve -addr :7070 -pages 65536 -concurrency 4 -commit-sync group
//
// The service layer is fault tolerant (see docs/FAILURES.md):
//
//   - Requests carrying a deadline are answered StatusDeadline when the
//     budget expires before execution starts, and the response write is
//     bounded by the same budget via SetWriteDeadline.
//   - Admission control sheds (StatusShed) when concurrent in-flight
//     requests exceed -max-inflight or a connection's buffered transaction
//     or scan would exceed -max-request-bytes.
//   - SIGINT/SIGTERM starts a graceful drain: the listener closes, idle
//     connection reads are interrupted, in-flight requests finish, and any
//     connection still open after -drain is force-closed. The database then
//     closes with a final WAL group flush.
//   - -open-existing reattaches to a previous run's -dir, replaying the
//     per-partition WALs and resolving in-doubt cross-partition commits.
//
// The server prints a summary on exit: operations served, sheds, deadline
// misses, latched-read and group-commit counters.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"runtime"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"turbobp"
	"turbobp/internal/netproto"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "bpeserve:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr         = flag.String("addr", "127.0.0.1:7070", "listen address")
		dir          = flag.String("dir", "", "data directory (default: a fresh temp dir)")
		openExisting = flag.Bool("open-existing", false, "reattach to an existing -dir: recover WALs instead of formatting")
		pages        = flag.Int64("pages", 65536, "database size in pages")
		pool         = flag.Int("pool", 4096, "buffer pool frames")
		ssdFrames    = flag.Int("ssd", 16384, "SSD cache frames (0 disables)")
		pageSize     = flag.Int("page-size", 256, "payload bytes per page")
		design       = flag.String("design", "lc", "SSD design: nossd, cw, dw, lc, tac")
		cachePol     = flag.String("policy", "lru2", "cache policy: lru2, arc, cflru, tinylfu")
		concurrency  = flag.Int("concurrency", runtime.GOMAXPROCS(0), "page-range partitions")
		commitSync   = flag.String("commit-sync", "group", "commit durability: none, each, group")
		gcDelay      = flag.Duration("gc-delay", 500*time.Microsecond, "group-commit max delay")
		gcBatch      = flag.Int("gc-batch", 64, "group-commit max batch")
		duration     = flag.Duration("duration", 0, "exit after this long (0 = until signal)")
		maxInflight  = flag.Int64("max-inflight", 256, "shed when this many requests are in flight (0 = unlimited)")
		maxConnBytes = flag.Int("max-request-bytes", 4<<20, "shed when a connection's buffered tx or scan exceeds this (0 = unlimited)")
		drainBound   = flag.Duration("drain", 5*time.Second, "graceful-drain bound after the stop signal")
	)
	flag.Parse()

	d, err := designOf(*design)
	if err != nil {
		return err
	}
	pol, err := turbobp.ParseCachePolicy(*cachePol)
	if err != nil {
		return err
	}
	mode, err := modeOf(*commitSync)
	if err != nil {
		return err
	}
	if *openExisting && *dir == "" {
		return fmt.Errorf("-open-existing requires -dir")
	}
	dataDir := *dir
	if dataDir == "" {
		dataDir, err = os.MkdirTemp("", "bpeserve-*")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dataDir)
	}
	db, err := turbobp.Open(turbobp.Options{
		Design:              d,
		Policy:              pol,
		DBPages:             *pages,
		PoolPages:           *pool,
		SSDFrames:           *ssdFrames,
		PageSize:            *pageSize,
		Dir:                 dataDir,
		OpenExisting:        *openExisting,
		Concurrency:         *concurrency,
		CommitSync:          mode,
		GroupCommitMaxDelay: *gcDelay,
		GroupCommitMaxBatch: *gcBatch,
	})
	if err != nil {
		return err
	}

	srv := &server{db: db, maxInflight: *maxInflight, maxConnBytes: *maxConnBytes}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		db.Close()
		return err
	}
	fmt.Printf("bpeserve: listening on %s (pages=%d design=%s policy=%s concurrency=%d commit-sync=%s existing=%v)\n",
		ln.Addr(), *pages, *design, pol, *concurrency, *commitSync, *openExisting)

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, syscall.SIGINT, syscall.SIGTERM)
	go func() {
		if *duration > 0 {
			select {
			case <-stop:
			case <-time.After(*duration):
			}
		} else {
			<-stop
		}
		srv.beginDrain()
		ln.Close()
	}()

	for {
		conn, err := ln.Accept()
		if err != nil {
			if srv.draining.Load() {
				break
			}
			return err
		}
		srv.track(conn)
		srv.wg.Add(1)
		go srv.serve(conn)
	}

	// Drain: in-flight requests finish; connections still open past the
	// bound are force-closed so shutdown always terminates.
	done := make(chan struct{})
	go func() { srv.wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(*drainBound):
		n := srv.closeAll()
		fmt.Printf("bpeserve: drain bound %s exceeded; force-closed %d connections\n", *drainBound, n)
		<-done
	}
	cerr := db.Close() // final WAL group flush + checkpoint

	s := db.Stats()
	fmt.Printf("bpeserve: served %d ops (%d reads, %d updates, %d commits, %d scans, %d sheds, %d deadline misses)\n",
		srv.ops.Load(), srv.reads.Load(), srv.updates.Load(), srv.commits.Load(), srv.scans.Load(),
		srv.sheds.Load(), srv.deadlined.Load())
	fmt.Printf("bpeserve: partitions=%d latched-reads=%d pool-hits=%d pool-misses=%d\n",
		s.Partitions, s.LatchedReads, s.PoolHits, s.PoolMisses)
	if s.SyncedCommits > 0 {
		fmt.Printf("bpeserve: group commit: %d fsyncs for %d commits (%.3f fsyncs/commit, max flight %d)\n",
			s.WALSyncs, s.SyncedCommits, float64(s.WALSyncs)/float64(s.SyncedCommits), s.MaxCommitFlight)
	}
	return cerr
}

// server is the shared accept-loop state.
type server struct {
	db           *turbobp.DB
	wg           sync.WaitGroup
	draining     atomic.Bool
	maxInflight  int64         // 0 = unlimited
	maxConnBytes int           // 0 = unlimited
	slow         time.Duration // test hook: artificial delay before the deadline check

	mu    sync.Mutex
	conns map[net.Conn]struct{}

	ops, reads, updates, commits, scans atomic.Int64
	inflight, sheds, deadlined          atomic.Int64
}

func (s *server) track(conn net.Conn) {
	s.mu.Lock()
	if s.conns == nil {
		s.conns = make(map[net.Conn]struct{})
	}
	s.conns[conn] = struct{}{}
	s.mu.Unlock()
}

func (s *server) untrack(conn net.Conn) {
	s.mu.Lock()
	delete(s.conns, conn)
	s.mu.Unlock()
}

// beginDrain flips the server into draining mode and interrupts every
// connection's idle read. Requests already buffered or in flight still get
// answered (with StatusBusy for data ops), so clients see a typed signal
// instead of a dropped connection where possible.
func (s *server) beginDrain() {
	s.draining.Store(true)
	s.mu.Lock()
	for c := range s.conns {
		c.SetReadDeadline(time.Now())
	}
	s.mu.Unlock()
}

// closeAll force-closes every remaining connection and reports how many.
func (s *server) closeAll() int {
	s.mu.Lock()
	n := len(s.conns)
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	return n
}

// serve runs one connection: a request/response loop over the netproto
// framing, with the connection's updates accumulating in one transaction
// until OpCommit. Data ops pass admission control (drain, in-flight limit,
// per-request deadline) before touching the database.
func (s *server) serve(conn net.Conn) {
	defer s.wg.Done()
	defer s.untrack(conn)
	defer conn.Close()
	br := bufio.NewReader(conn)
	bw := bufio.NewWriter(conn)
	var (
		req     netproto.Request
		resp    netproto.Response
		tx      *turbobp.Tx
		txBytes int
		buf     = make([]byte, s.db.PageSize())
	)
	for {
		if err := netproto.ReadRequest(br, &req); err != nil {
			return // EOF, drain interrupt or a framing error; the session is over
		}
		var dl time.Time
		if req.DeadlineMS > 0 {
			dl = time.Now().Add(time.Duration(req.DeadlineMS) * time.Millisecond)
		}
		if s.slow > 0 {
			time.Sleep(s.slow)
		}
		resp.Status = netproto.StatusOK
		resp.Data = resp.Data[:0]

		switch req.Op {
		case netproto.OpHealth:
			s.handleHealth(&resp)
		case netproto.OpStats:
			s.handleStats(&resp)
		default:
			n := s.inflight.Add(1)
			switch {
			case s.draining.Load():
				resp.Status = netproto.StatusBusy
				resp.Data = append(resp.Data, "draining"...)
			case s.maxInflight > 0 && n > s.maxInflight:
				s.sheds.Add(1)
				resp.Status = netproto.StatusShed
				resp.Data = append(resp.Data, "overloaded"...)
			case !dl.IsZero() && time.Now().After(dl):
				// The budget expired while the request sat in socket or
				// scheduler queues; answer honestly instead of doing stale
				// work the client has given up on.
				s.deadlined.Add(1)
				resp.Status = netproto.StatusDeadline
				resp.Data = append(resp.Data, "deadline expired"...)
			default:
				s.exec(&req, &resp, &tx, &txBytes, buf)
			}
			s.inflight.Add(-1)
		}
		s.ops.Add(1)
		if !dl.IsZero() {
			conn.SetWriteDeadline(dl.Add(time.Second))
		}
		if err := netproto.WriteResponse(bw, &resp); err != nil {
			return
		}
		if err := bw.Flush(); err != nil {
			return
		}
		if !dl.IsZero() {
			conn.SetWriteDeadline(time.Time{})
		}
	}
}

// exec runs one admitted data operation.
func (s *server) exec(req *netproto.Request, resp *netproto.Response, tx **turbobp.Tx, txBytes *int, buf []byte) {
	var err error
	switch req.Op {
	case netproto.OpGet:
		s.reads.Add(1)
		var n int
		n, err = s.db.Read(req.Page, buf)
		if err == nil {
			resp.Data = append(resp.Data, buf[:n]...)
		}
	case netproto.OpUpdate:
		s.updates.Add(1)
		if s.maxConnBytes > 0 && *txBytes+len(req.Data) > s.maxConnBytes {
			s.sheds.Add(1)
			resp.Status = netproto.StatusShed
			resp.Data = append(resp.Data, "transaction buffer over budget"...)
			return
		}
		if *tx == nil {
			*tx = s.db.Begin()
		}
		data := append([]byte(nil), req.Data...) // the frame buffer is reused
		*txBytes += len(data)
		err = (*tx).Update(req.Page, func(payload []byte) {
			copy(payload, data)
		})
	case netproto.OpCommit:
		s.commits.Add(1)
		if *tx != nil {
			err = (*tx).Commit()
			*tx = nil
			*txBytes = 0
		}
	case netproto.OpScan:
		s.scans.Add(1)
		if req.N < 0 || req.N > netproto.MaxScanPages {
			err = fmt.Errorf("scan of %d pages (max %d)", req.N, netproto.MaxScanPages)
			break
		}
		if s.maxConnBytes > 0 && int(req.N)*s.db.PageSize() > s.maxConnBytes {
			s.sheds.Add(1)
			resp.Status = netproto.StatusShed
			resp.Data = append(resp.Data, "scan over budget"...)
			return
		}
		err = s.db.Scan(req.Page, int(req.N), func(_ int64, payload []byte) error {
			resp.Data = append(resp.Data, payload...)
			return nil
		})
	default:
		err = fmt.Errorf("unknown op %d", req.Op)
	}
	if err != nil {
		resp.Status = netproto.StatusErr
		resp.Data = append(resp.Data[:0], err.Error()...)
	}
}

// handleHealth answers the liveness probe without touching the database:
// StatusOK while accepting work, a retryable status while draining or
// overloaded.
func (s *server) handleHealth(resp *netproto.Response) {
	switch {
	case s.draining.Load():
		resp.Status = netproto.StatusBusy
		resp.Data = append(resp.Data, "draining"...)
	case s.maxInflight > 0 && s.inflight.Load() >= s.maxInflight:
		resp.Status = netproto.StatusShed
		resp.Data = append(resp.Data, "overloaded"...)
	default:
		resp.Data = append(resp.Data, "ok"...)
	}
}

// handleStats answers with a human-readable counter snapshot.
func (s *server) handleStats(resp *netproto.Response) {
	resp.Data = fmt.Appendf(resp.Data,
		"ops=%d reads=%d updates=%d commits=%d scans=%d sheds=%d deadline_misses=%d inflight=%d draining=%v",
		s.ops.Load(), s.reads.Load(), s.updates.Load(), s.commits.Load(), s.scans.Load(),
		s.sheds.Load(), s.deadlined.Load(), s.inflight.Load(), s.draining.Load())
}

func designOf(s string) (turbobp.Design, error) {
	switch s {
	case "nossd":
		return turbobp.NoSSD, nil
	case "cw":
		return turbobp.CW, nil
	case "dw":
		return turbobp.DW, nil
	case "lc":
		return turbobp.LC, nil
	case "tac":
		return turbobp.TAC, nil
	}
	return 0, fmt.Errorf("unknown design %q", s)
}

func modeOf(s string) (turbobp.CommitSyncMode, error) {
	switch s {
	case "none":
		return turbobp.CommitSyncNone, nil
	case "each":
		return turbobp.CommitSyncEach, nil
	case "group":
		return turbobp.CommitSyncGroup, nil
	}
	return 0, fmt.Errorf("unknown commit-sync mode %q", s)
}
