// Command bpeserve exposes a file-backed turbobp database over TCP: the
// netproto get/update/commit/scan operations served from the partitioned
// concurrent backend with WAL group commit. It exists to prove the
// concurrency work over a real network hop — drive it with cmd/bpeload.
//
// Usage:
//
//	bpeserve -addr :7070 -pages 65536 -concurrency 4 -commit-sync group
//
// The server runs until SIGINT/SIGTERM (or -duration elapses), then drains
// connections, closes the database and prints a summary: operations served,
// latched-read and group-commit counters, and fsyncs per synced commit.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"runtime"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"turbobp"
	"turbobp/internal/netproto"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "bpeserve:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr        = flag.String("addr", "127.0.0.1:7070", "listen address")
		dir         = flag.String("dir", "", "data directory (default: a fresh temp dir)")
		pages       = flag.Int64("pages", 65536, "database size in pages")
		pool        = flag.Int("pool", 4096, "buffer pool frames")
		ssdFrames   = flag.Int("ssd", 16384, "SSD cache frames (0 disables)")
		pageSize    = flag.Int("page-size", 256, "payload bytes per page")
		design      = flag.String("design", "lc", "SSD design: nossd, cw, dw, lc, tac")
		cachePol    = flag.String("policy", "lru2", "cache policy: lru2, arc, cflru, tinylfu")
		concurrency = flag.Int("concurrency", runtime.GOMAXPROCS(0), "page-range partitions")
		commitSync  = flag.String("commit-sync", "group", "commit durability: none, each, group")
		gcDelay     = flag.Duration("gc-delay", 500*time.Microsecond, "group-commit max delay")
		gcBatch     = flag.Int("gc-batch", 64, "group-commit max batch")
		duration    = flag.Duration("duration", 0, "exit after this long (0 = until signal)")
	)
	flag.Parse()

	d, err := designOf(*design)
	if err != nil {
		return err
	}
	pol, err := turbobp.ParseCachePolicy(*cachePol)
	if err != nil {
		return err
	}
	mode, err := modeOf(*commitSync)
	if err != nil {
		return err
	}
	dataDir := *dir
	if dataDir == "" {
		dataDir, err = os.MkdirTemp("", "bpeserve-*")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dataDir)
	}
	db, err := turbobp.Open(turbobp.Options{
		Design:              d,
		Policy:              pol,
		DBPages:             *pages,
		PoolPages:           *pool,
		SSDFrames:           *ssdFrames,
		PageSize:            *pageSize,
		Dir:                 dataDir,
		Concurrency:         *concurrency,
		CommitSync:          mode,
		GroupCommitMaxDelay: *gcDelay,
		GroupCommitMaxBatch: *gcBatch,
	})
	if err != nil {
		return err
	}

	srv := &server{db: db}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		db.Close()
		return err
	}
	fmt.Printf("bpeserve: listening on %s (pages=%d design=%s policy=%s concurrency=%d commit-sync=%s)\n",
		ln.Addr(), *pages, *design, pol, *concurrency, *commitSync)

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, syscall.SIGINT, syscall.SIGTERM)
	go func() {
		if *duration > 0 {
			select {
			case <-stop:
			case <-time.After(*duration):
			}
		} else {
			<-stop
		}
		srv.closing.Store(true)
		ln.Close()
	}()

	for {
		conn, err := ln.Accept()
		if err != nil {
			if srv.closing.Load() {
				break
			}
			return err
		}
		srv.wg.Add(1)
		go srv.serve(conn)
	}
	srv.wg.Wait()
	cerr := db.Close()

	s := db.Stats()
	fmt.Printf("bpeserve: served %d ops (%d reads, %d updates, %d commits, %d scans)\n",
		srv.ops.Load(), srv.reads.Load(), srv.updates.Load(), srv.commits.Load(), srv.scans.Load())
	fmt.Printf("bpeserve: partitions=%d latched-reads=%d pool-hits=%d pool-misses=%d\n",
		s.Partitions, s.LatchedReads, s.PoolHits, s.PoolMisses)
	if s.SyncedCommits > 0 {
		fmt.Printf("bpeserve: group commit: %d fsyncs for %d commits (%.3f fsyncs/commit, max flight %d)\n",
			s.WALSyncs, s.SyncedCommits, float64(s.WALSyncs)/float64(s.SyncedCommits), s.MaxCommitFlight)
	}
	return cerr
}

// server is the shared accept-loop state.
type server struct {
	db      *turbobp.DB
	wg      sync.WaitGroup
	closing atomic.Bool

	ops, reads, updates, commits, scans atomic.Int64
}

// serve runs one connection: a request/response loop over the netproto
// framing, with the connection's updates accumulating in one transaction
// until OpCommit.
func (s *server) serve(conn net.Conn) {
	defer s.wg.Done()
	defer conn.Close()
	br := bufio.NewReader(conn)
	bw := bufio.NewWriter(conn)
	var (
		req  netproto.Request
		resp netproto.Response
		tx   *turbobp.Tx
		buf  = make([]byte, s.db.PageSize())
	)
	for {
		if err := netproto.ReadRequest(br, &req); err != nil {
			return // EOF or a framing error; either way the session is over
		}
		resp.Status = netproto.StatusOK
		resp.Data = resp.Data[:0]
		var err error
		switch req.Op {
		case netproto.OpGet:
			s.reads.Add(1)
			var n int
			n, err = s.db.Read(req.Page, buf)
			if err == nil {
				resp.Data = append(resp.Data, buf[:n]...)
			}
		case netproto.OpUpdate:
			s.updates.Add(1)
			if tx == nil {
				tx = s.db.Begin()
			}
			data := append([]byte(nil), req.Data...) // the frame buffer is reused
			err = tx.Update(req.Page, func(payload []byte) {
				copy(payload, data)
			})
		case netproto.OpCommit:
			s.commits.Add(1)
			if tx != nil {
				err = tx.Commit()
				tx = nil
			}
		case netproto.OpScan:
			s.scans.Add(1)
			if req.N < 0 || req.N > netproto.MaxScanPages {
				err = fmt.Errorf("scan of %d pages (max %d)", req.N, netproto.MaxScanPages)
				break
			}
			err = s.db.Scan(req.Page, int(req.N), func(_ int64, payload []byte) error {
				resp.Data = append(resp.Data, payload...)
				return nil
			})
		default:
			err = fmt.Errorf("unknown op %d", req.Op)
		}
		if err != nil {
			resp.Status = netproto.StatusErr
			resp.Data = append(resp.Data[:0], err.Error()...)
		}
		s.ops.Add(1)
		if err := netproto.WriteResponse(bw, &resp); err != nil {
			return
		}
		if err := bw.Flush(); err != nil {
			return
		}
	}
}

func designOf(s string) (turbobp.Design, error) {
	switch s {
	case "nossd":
		return turbobp.NoSSD, nil
	case "cw":
		return turbobp.CW, nil
	case "dw":
		return turbobp.DW, nil
	case "lc":
		return turbobp.LC, nil
	case "tac":
		return turbobp.TAC, nil
	}
	return 0, fmt.Errorf("unknown design %q", s)
}

func modeOf(s string) (turbobp.CommitSyncMode, error) {
	switch s {
	case "none":
		return turbobp.CommitSyncNone, nil
	case "each":
		return turbobp.CommitSyncEach, nil
	case "group":
		return turbobp.CommitSyncGroup, nil
	}
	return 0, fmt.Errorf("unknown commit-sync mode %q", s)
}
