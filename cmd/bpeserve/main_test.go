package main

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"io"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"turbobp"
	"turbobp/internal/netproto"
)

// startTestServer runs the serve loop on an ephemeral port over a
// partitioned DB and returns its address.
func startTestServer(t *testing.T) string {
	t.Helper()
	addr, _ := startTestServerWith(t, nil)
	return addr
}

// startTestServerWith is startTestServer with a config hook on the server
// before it starts accepting; it also returns the server for direct poking.
func startTestServerWith(t *testing.T, mut func(*server)) (string, *server) {
	t.Helper()
	db, err := turbobp.Open(turbobp.Options{
		Design:      turbobp.LC,
		DBPages:     512,
		PoolPages:   64,
		SSDFrames:   128,
		PageSize:    64,
		Dir:         t.TempDir(),
		Concurrency: 2,
		CommitSync:  turbobp.CommitSyncGroup,
	})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	srv := &server{db: db}
	if mut != nil {
		mut(srv)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			srv.track(conn)
			srv.wg.Add(1)
			go srv.serve(conn)
		}
	}()
	t.Cleanup(func() {
		srv.beginDrain()
		ln.Close()
		srv.closeAll()
		srv.wg.Wait()
		db.Close()
	})
	return ln.Addr().String(), srv
}

type testClient struct {
	conn net.Conn
	br   *bufio.Reader
	bw   *bufio.Writer
	resp netproto.Response
}

func dialTest(t *testing.T, addr string) *testClient {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	t.Cleanup(func() { conn.Close() })
	return &testClient{conn: conn, br: bufio.NewReader(conn), bw: bufio.NewWriter(conn)}
}

func (c *testClient) call(t *testing.T, req netproto.Request) *netproto.Response {
	t.Helper()
	if err := netproto.WriteRequest(c.bw, &req); err != nil {
		t.Fatalf("WriteRequest: %v", err)
	}
	if err := c.bw.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	if err := netproto.ReadResponse(c.br, &c.resp); err != nil {
		t.Fatalf("ReadResponse: %v", err)
	}
	return &c.resp
}

// TestServerRoundTrip drives get/update/commit/scan through the real TCP
// stack and checks the data paths end to end.
func TestServerRoundTrip(t *testing.T) {
	addr := startTestServer(t)
	c := dialTest(t, addr)

	// A fresh page reads back zero-filled.
	resp := c.call(t, netproto.Request{Op: netproto.OpGet, Page: 3})
	if resp.Status != netproto.StatusOK || len(resp.Data) != 64 {
		t.Fatalf("get: status=%d len=%d", resp.Status, len(resp.Data))
	}

	// Update two pages in one transaction (they land in different
	// partitions: 512 pages over 2 partitions splits at 256), commit, read
	// both back.
	want3 := bytes.Repeat([]byte{0xAB}, 8)
	want400 := bytes.Repeat([]byte{0xCD}, 8)
	if resp = c.call(t, netproto.Request{Op: netproto.OpUpdate, Page: 3, Data: want3}); resp.Status != netproto.StatusOK {
		t.Fatalf("update 3: %s", resp.Data)
	}
	if resp = c.call(t, netproto.Request{Op: netproto.OpUpdate, Page: 400, Data: want400}); resp.Status != netproto.StatusOK {
		t.Fatalf("update 400: %s", resp.Data)
	}
	if resp = c.call(t, netproto.Request{Op: netproto.OpCommit}); resp.Status != netproto.StatusOK {
		t.Fatalf("commit: %s", resp.Data)
	}
	if resp = c.call(t, netproto.Request{Op: netproto.OpGet, Page: 3}); !bytes.Equal(resp.Data[:8], want3) {
		t.Fatalf("page 3 = % x", resp.Data[:8])
	}
	if resp = c.call(t, netproto.Request{Op: netproto.OpGet, Page: 400}); !bytes.Equal(resp.Data[:8], want400) {
		t.Fatalf("page 400 = % x", resp.Data[:8])
	}

	// Scan across the partition boundary: 4 pages from 254.
	resp = c.call(t, netproto.Request{Op: netproto.OpScan, Page: 254, N: 4})
	if resp.Status != netproto.StatusOK || len(resp.Data) != 4*64 {
		t.Fatalf("scan: status=%d len=%d", resp.Status, len(resp.Data))
	}

	// Errors come back as StatusErr, not dropped connections.
	if resp = c.call(t, netproto.Request{Op: netproto.OpGet, Page: 1 << 40}); resp.Status != netproto.StatusErr {
		t.Fatal("out-of-range get succeeded")
	}
	if resp = c.call(t, netproto.Request{Op: 99}); resp.Status != netproto.StatusErr {
		t.Fatal("unknown op succeeded")
	}
	// The connection still works after an error.
	if resp = c.call(t, netproto.Request{Op: netproto.OpGet, Page: 0}); resp.Status != netproto.StatusOK {
		t.Fatalf("get after error: %s", resp.Data)
	}
}

// TestServerConcurrentClients hammers the server from several connections
// at once; under -race this covers the full network + partition + group
// commit stack.
func TestServerConcurrentClients(t *testing.T) {
	addr := startTestServer(t)
	const clients = 6
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			conn, err := net.Dial("tcp", addr)
			if err != nil {
				t.Errorf("client %d: %v", i, err)
				return
			}
			defer conn.Close()
			br, bw := bufio.NewReader(conn), bufio.NewWriter(conn)
			var resp netproto.Response
			val := []byte{byte(i), byte(i), byte(i), byte(i)}
			for op := 0; op < 60; op++ {
				pid := int64((i*97 + op*13) % 512)
				var req netproto.Request
				switch op % 3 {
				case 0:
					req = netproto.Request{Op: netproto.OpGet, Page: pid}
				case 1:
					req = netproto.Request{Op: netproto.OpUpdate, Page: pid, Data: val}
				case 2:
					req = netproto.Request{Op: netproto.OpCommit}
				}
				if err := netproto.WriteRequest(bw, &req); err != nil {
					t.Errorf("client %d: %v", i, err)
					return
				}
				if err := bw.Flush(); err != nil {
					t.Errorf("client %d: %v", i, err)
					return
				}
				if err := netproto.ReadResponse(br, &resp); err != nil {
					t.Errorf("client %d: %v", i, err)
					return
				}
				if resp.Status != netproto.StatusOK {
					t.Errorf("client %d op %d: %s", i, op, resp.Data)
					return
				}
			}
		}(i)
	}
	wg.Wait()
}

// TestServerHealthAndStats pins the probe ops: health answers ok without
// touching the database, stats reports the counters.
func TestServerHealthAndStats(t *testing.T) {
	addr := startTestServer(t)
	c := dialTest(t, addr)
	resp := c.call(t, netproto.Request{Op: netproto.OpHealth})
	if resp.Status != netproto.StatusOK || string(resp.Data) != "ok" {
		t.Fatalf("health: status=%d data=%s", resp.Status, resp.Data)
	}
	c.call(t, netproto.Request{Op: netproto.OpGet, Page: 1})
	resp = c.call(t, netproto.Request{Op: netproto.OpStats})
	if resp.Status != netproto.StatusOK || !strings.Contains(string(resp.Data), "reads=1") {
		t.Fatalf("stats: status=%d data=%s", resp.Status, resp.Data)
	}
}

// TestServerDeadlineExpired pins deadline enforcement: a request whose
// budget has already run out by the time the server gets to it is answered
// StatusDeadline without executing.
func TestServerDeadlineExpired(t *testing.T) {
	addr, srv := startTestServerWith(t, func(s *server) { s.slow = 20 * time.Millisecond })
	c := dialTest(t, addr)
	resp := c.call(t, netproto.Request{Op: netproto.OpGet, Page: 1, DeadlineMS: 1})
	if resp.Status != netproto.StatusDeadline {
		t.Fatalf("status = %d (%s), want StatusDeadline", resp.Status, resp.Data)
	}
	if srv.reads.Load() != 0 {
		t.Fatal("expired request was executed anyway")
	}
	// A fresh budget on the same connection succeeds.
	if resp = c.call(t, netproto.Request{Op: netproto.OpGet, Page: 1, DeadlineMS: 5000}); resp.Status != netproto.StatusOK {
		t.Fatalf("after expiry: status=%d %s", resp.Status, resp.Data)
	}
}

// TestServerShedsOverBudgetTx pins per-connection memory admission: updates
// past -max-request-bytes are shed with a retryable status, and a commit
// resets the budget.
func TestServerShedsOverBudgetTx(t *testing.T) {
	addr, srv := startTestServerWith(t, func(s *server) { s.maxConnBytes = 128 })
	c := dialTest(t, addr)
	payload := bytes.Repeat([]byte{0x7E}, 64)
	for i := 0; i < 2; i++ {
		if resp := c.call(t, netproto.Request{Op: netproto.OpUpdate, Page: int64(i), Data: payload}); resp.Status != netproto.StatusOK {
			t.Fatalf("update %d: status=%d %s", i, resp.Status, resp.Data)
		}
	}
	resp := c.call(t, netproto.Request{Op: netproto.OpUpdate, Page: 2, Data: payload})
	if resp.Status != netproto.StatusShed {
		t.Fatalf("over-budget update: status=%d, want StatusShed", resp.Status)
	}
	if !netproto.Retryable(resp.Status) {
		t.Fatal("shed status not retryable")
	}
	if srv.sheds.Load() == 0 {
		t.Fatal("shed not counted")
	}
	if resp = c.call(t, netproto.Request{Op: netproto.OpCommit}); resp.Status != netproto.StatusOK {
		t.Fatalf("commit: %s", resp.Data)
	}
	// Budget reset: the same update now passes.
	if resp = c.call(t, netproto.Request{Op: netproto.OpUpdate, Page: 2, Data: payload}); resp.Status != netproto.StatusOK {
		t.Fatalf("post-commit update: status=%d %s", resp.Status, resp.Data)
	}
	// Oversized scans are shed too.
	if resp = c.call(t, netproto.Request{Op: netproto.OpScan, Page: 0, N: 100}); resp.Status != netproto.StatusShed {
		t.Fatalf("over-budget scan: status=%d, want StatusShed", resp.Status)
	}
}

// TestServerDrainStatus pins the typed drain signal: while draining, data
// ops and health probes answer StatusBusy instead of dropping.
func TestServerDrainStatus(t *testing.T) {
	addr, srv := startTestServerWith(t, nil)
	c := dialTest(t, addr)
	srv.draining.Store(true)
	resp := c.call(t, netproto.Request{Op: netproto.OpGet, Page: 0})
	if resp.Status != netproto.StatusBusy {
		t.Fatalf("get while draining: status=%d, want StatusBusy", resp.Status)
	}
	if resp = c.call(t, netproto.Request{Op: netproto.OpHealth}); resp.Status != netproto.StatusBusy {
		t.Fatalf("health while draining: status=%d, want StatusBusy", resp.Status)
	}
}

// TestServerDrainInterruptsIdle pins the drain bound: connections blocked in
// an idle read wake up and the serve loops exit promptly.
func TestServerDrainInterruptsIdle(t *testing.T) {
	addr, srv := startTestServerWith(t, nil)
	dialTest(t, addr) // idle connection, blocked in ReadRequest
	time.Sleep(20 * time.Millisecond)
	srv.beginDrain()
	done := make(chan struct{})
	go func() { srv.wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("drain did not interrupt the idle connection")
	}
}

// TestServerMalformedFrames pins service-level robustness: garbage and
// oversized frames close that connection with no panic, and the server
// keeps serving new connections.
func TestServerMalformedFrames(t *testing.T) {
	addr := startTestServer(t)

	// Oversized dlen: header claims ~4GB of data.
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	hdr := make([]byte, 21)
	hdr[0] = netproto.OpUpdate
	binary.LittleEndian.PutUint32(hdr[17:21], 0xFFFFFFF0)
	conn.Write(hdr)
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := conn.Read(make([]byte, 1)); err == nil {
		t.Fatal("server answered an oversized frame instead of closing")
	}
	conn.Close()

	// Pure garbage.
	conn, err = net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	conn.Write(bytes.Repeat([]byte{0xFF}, 64))
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	io.Copy(io.Discard, conn) // must terminate: server closes
	conn.Close()

	// The server is still healthy.
	c := dialTest(t, addr)
	if resp := c.call(t, netproto.Request{Op: netproto.OpHealth}); resp.Status != netproto.StatusOK {
		t.Fatalf("health after malformed frames: status=%d", resp.Status)
	}
}

// TestClientAgainstServer drives the reusable netproto.Client end to end:
// deadline stamping, Get, Health and ServerStats against a live server.
func TestClientAgainstServer(t *testing.T) {
	addr := startTestServer(t)
	cl, err := netproto.Dial(netproto.ClientConfig{Addr: addr, Deadline: 2 * time.Second, Seed: 7})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer cl.Close()
	ok, err := cl.Health()
	if err != nil || !ok {
		t.Fatalf("Health = %v, %v", ok, err)
	}
	if _, err := cl.Get(5); err != nil {
		t.Fatalf("Get: %v", err)
	}
	stats, err := cl.ServerStats()
	if err != nil || !strings.Contains(stats, "reads=1") {
		t.Fatalf("ServerStats = %q, %v", stats, err)
	}
	if got := cl.Stats(); got.Ops != 2 || got.Reconnects != 0 {
		t.Fatalf("client stats = %+v", got)
	}
}
