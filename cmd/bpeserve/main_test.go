package main

import (
	"bufio"
	"bytes"
	"net"
	"sync"
	"testing"

	"turbobp"
	"turbobp/internal/netproto"
)

// startTestServer runs the serve loop on an ephemeral port over a
// partitioned DB and returns its address.
func startTestServer(t *testing.T) string {
	t.Helper()
	db, err := turbobp.Open(turbobp.Options{
		Design:      turbobp.LC,
		DBPages:     512,
		PoolPages:   64,
		SSDFrames:   128,
		PageSize:    64,
		Dir:         t.TempDir(),
		Concurrency: 2,
		CommitSync:  turbobp.CommitSyncGroup,
	})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	srv := &server{db: db}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			srv.wg.Add(1)
			go srv.serve(conn)
		}
	}()
	t.Cleanup(func() {
		srv.closing.Store(true)
		ln.Close()
		srv.wg.Wait()
		db.Close()
	})
	return ln.Addr().String()
}

type testClient struct {
	conn net.Conn
	br   *bufio.Reader
	bw   *bufio.Writer
	resp netproto.Response
}

func dialTest(t *testing.T, addr string) *testClient {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	t.Cleanup(func() { conn.Close() })
	return &testClient{conn: conn, br: bufio.NewReader(conn), bw: bufio.NewWriter(conn)}
}

func (c *testClient) call(t *testing.T, req netproto.Request) *netproto.Response {
	t.Helper()
	if err := netproto.WriteRequest(c.bw, &req); err != nil {
		t.Fatalf("WriteRequest: %v", err)
	}
	if err := c.bw.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	if err := netproto.ReadResponse(c.br, &c.resp); err != nil {
		t.Fatalf("ReadResponse: %v", err)
	}
	return &c.resp
}

// TestServerRoundTrip drives get/update/commit/scan through the real TCP
// stack and checks the data paths end to end.
func TestServerRoundTrip(t *testing.T) {
	addr := startTestServer(t)
	c := dialTest(t, addr)

	// A fresh page reads back zero-filled.
	resp := c.call(t, netproto.Request{Op: netproto.OpGet, Page: 3})
	if resp.Status != netproto.StatusOK || len(resp.Data) != 64 {
		t.Fatalf("get: status=%d len=%d", resp.Status, len(resp.Data))
	}

	// Update two pages in one transaction (they land in different
	// partitions: 512 pages over 2 partitions splits at 256), commit, read
	// both back.
	want3 := bytes.Repeat([]byte{0xAB}, 8)
	want400 := bytes.Repeat([]byte{0xCD}, 8)
	if resp = c.call(t, netproto.Request{Op: netproto.OpUpdate, Page: 3, Data: want3}); resp.Status != netproto.StatusOK {
		t.Fatalf("update 3: %s", resp.Data)
	}
	if resp = c.call(t, netproto.Request{Op: netproto.OpUpdate, Page: 400, Data: want400}); resp.Status != netproto.StatusOK {
		t.Fatalf("update 400: %s", resp.Data)
	}
	if resp = c.call(t, netproto.Request{Op: netproto.OpCommit}); resp.Status != netproto.StatusOK {
		t.Fatalf("commit: %s", resp.Data)
	}
	if resp = c.call(t, netproto.Request{Op: netproto.OpGet, Page: 3}); !bytes.Equal(resp.Data[:8], want3) {
		t.Fatalf("page 3 = % x", resp.Data[:8])
	}
	if resp = c.call(t, netproto.Request{Op: netproto.OpGet, Page: 400}); !bytes.Equal(resp.Data[:8], want400) {
		t.Fatalf("page 400 = % x", resp.Data[:8])
	}

	// Scan across the partition boundary: 4 pages from 254.
	resp = c.call(t, netproto.Request{Op: netproto.OpScan, Page: 254, N: 4})
	if resp.Status != netproto.StatusOK || len(resp.Data) != 4*64 {
		t.Fatalf("scan: status=%d len=%d", resp.Status, len(resp.Data))
	}

	// Errors come back as StatusErr, not dropped connections.
	if resp = c.call(t, netproto.Request{Op: netproto.OpGet, Page: 1 << 40}); resp.Status != netproto.StatusErr {
		t.Fatal("out-of-range get succeeded")
	}
	if resp = c.call(t, netproto.Request{Op: 99}); resp.Status != netproto.StatusErr {
		t.Fatal("unknown op succeeded")
	}
	// The connection still works after an error.
	if resp = c.call(t, netproto.Request{Op: netproto.OpGet, Page: 0}); resp.Status != netproto.StatusOK {
		t.Fatalf("get after error: %s", resp.Data)
	}
}

// TestServerConcurrentClients hammers the server from several connections
// at once; under -race this covers the full network + partition + group
// commit stack.
func TestServerConcurrentClients(t *testing.T) {
	addr := startTestServer(t)
	const clients = 6
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			conn, err := net.Dial("tcp", addr)
			if err != nil {
				t.Errorf("client %d: %v", i, err)
				return
			}
			defer conn.Close()
			br, bw := bufio.NewReader(conn), bufio.NewWriter(conn)
			var resp netproto.Response
			val := []byte{byte(i), byte(i), byte(i), byte(i)}
			for op := 0; op < 60; op++ {
				pid := int64((i*97 + op*13) % 512)
				var req netproto.Request
				switch op % 3 {
				case 0:
					req = netproto.Request{Op: netproto.OpGet, Page: pid}
				case 1:
					req = netproto.Request{Op: netproto.OpUpdate, Page: pid, Data: val}
				case 2:
					req = netproto.Request{Op: netproto.OpCommit}
				}
				if err := netproto.WriteRequest(bw, &req); err != nil {
					t.Errorf("client %d: %v", i, err)
					return
				}
				if err := bw.Flush(); err != nil {
					t.Errorf("client %d: %v", i, err)
					return
				}
				if err := netproto.ReadResponse(br, &resp); err != nil {
					t.Errorf("client %d: %v", i, err)
					return
				}
				if resp.Status != netproto.StatusOK {
					t.Errorf("client %d op %d: %s", i, op, resp.Data)
					return
				}
			}
		}(i)
	}
	wg.Wait()
}
