package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"testing"
	"time"

	"turbobp"
	"turbobp/internal/harness"
	"turbobp/internal/loadbench"
	"turbobp/internal/microbench"
)

// microResult is one hot-path microbenchmark measurement.
type microResult struct {
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// serverResult is one wall-clock concurrency measurement of the
// partitioned file backend (internal/loadbench). ns/op is aggregate wall
// time over operations across all workers; EffectiveWorkers records
// min(workers, GOMAXPROCS) so single-core runs read honestly.
type serverResult struct {
	NsPerOp          float64 `json:"ns_per_op"`
	Workers          int     `json:"workers"`
	EffectiveWorkers int     `json:"effective_workers"`
	FsyncsPerCommit  float64 `json:"fsyncs_per_commit,omitempty"`
}

// benchReport is the machine-readable output of -benchjson: wall-clock
// time of the full experiment suite serial vs parallel, plus the
// steady-state allocation profile of the simulator hot paths.
type benchReport struct {
	Divisor           int64                  `json:"divisor"`
	GOMAXPROCS        int                    `json:"gomaxprocs"`
	Workers           int                    `json:"workers"`
	ExperimentSerialS map[string]float64     `json:"experiment_serial_secs"`
	SerialTotalSecs   float64                `json:"serial_total_secs"`
	ParallelTotalSecs float64                `json:"parallel_total_secs"`
	Speedup           float64                `json:"speedup"`
	Microbench        map[string]microResult `json:"microbench"`

	// Server holds the concurrent file-backend measurements: point gets and
	// committed updates at 1/4/8 goroutines plus the group-commit fsync
	// amortization (and its one-fsync-per-commit control).
	Server map[string]serverResult `json:"server"`

	// Sharded-kernel width scaling: the same 8-partition cell at 1, 2, 4
	// and 8 OS threads. ShardsRequested/ShardWidthEffective record the
	// session's -shards setting after the workers × shards GOMAXPROCS cap,
	// so a report shows what the run actually used, not what was asked.
	ShardsRequested     int                       `json:"shards_requested"`
	ShardWidthEffective int                       `json:"shard_width_effective"`
	ShardScaleDivisor   int64                     `json:"shard_scale_divisor"`
	ShardScale          []harness.ShardScalePoint `json:"shard_scale"`
}

// writeBenchJSON times every experiment serially, re-times the whole
// suite through the worker pool, runs the microbenchmarks, and writes the
// combined report to path. Progress goes to stderr.
func writeBenchJSON(path string, scale harness.Scale) error {
	var ids []string
	for _, e := range harness.Experiments() {
		ids = append(ids, e.ID)
	}
	rep := benchReport{
		Divisor:           scale.Divisor,
		GOMAXPROCS:        runtime.GOMAXPROCS(0),
		Workers:           harness.Workers(),
		ExperimentSerialS: map[string]float64{},
		Microbench:        map[string]microResult{},
	}

	harness.SetWorkers(1)
	t0 := time.Now()
	for _, id := range ids {
		exp, _ := harness.FindExperiment(id)
		s := time.Now()
		if err := exp.Run(scale, io.Discard); err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
		d := time.Since(s)
		rep.ExperimentSerialS[id] = d.Seconds()
		fmt.Fprintf(os.Stderr, "benchjson: serial %-12s %8.2fs\n", id, d.Seconds())
	}
	rep.SerialTotalSecs = time.Since(t0).Seconds()

	harness.SetWorkers(rep.Workers)
	t0 = time.Now()
	if err := harness.RunAll(ids, scale, io.Discard, nil); err != nil {
		return err
	}
	rep.ParallelTotalSecs = time.Since(t0).Seconds()
	if rep.ParallelTotalSecs > 0 {
		rep.Speedup = rep.SerialTotalSecs / rep.ParallelTotalSecs
	}
	fmt.Fprintf(os.Stderr, "benchjson: total serial %.2fs, parallel(%d) %.2fs, speedup %.2fx\n",
		rep.SerialTotalSecs, rep.Workers, rep.ParallelTotalSecs, rep.Speedup)

	for name, fn := range map[string]func(*testing.B){
		"GetHit":             microbench.GetHit,
		"GetMiss":            microbench.GetMiss,
		"UpdateCommit":       microbench.UpdateCommit,
		"GroupClean":         microbench.GroupClean,
		"TableChurn":         microbench.TableChurn,
		"MapChurn":           microbench.MapChurn,
		"SchedulerCalendar":  microbench.SchedulerCalendar,
		"SchedulerHeap":      microbench.SchedulerHeap,
		"PolicyTouchLRU2":    microbench.PolicyTouchLRU2,
		"PolicyTouchARC":     microbench.PolicyTouchARC,
		"PolicyTouchCFLRU":   microbench.PolicyTouchCFLRU,
		"PolicyTouchTinyLFU": microbench.PolicyTouchTinyLFU,
		"PolicyEvictLRU2":    microbench.PolicyEvictLRU2,
		"PolicyEvictARC":     microbench.PolicyEvictARC,
		"PolicyEvictCFLRU":   microbench.PolicyEvictCFLRU,
		"PolicyEvictTinyLFU": microbench.PolicyEvictTinyLFU,
		"SketchIncrement":    microbench.SketchIncrement,
		"SketchEstimate":     microbench.SketchEstimate,
	} {
		r := testing.Benchmark(fn)
		rep.Microbench[name] = microResult{
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		}
		fmt.Fprintf(os.Stderr, "benchjson: %-12s %10.0f ns/op %6d allocs/op\n",
			name, rep.Microbench[name].NsPerOp, rep.Microbench[name].AllocsPerOp)
	}

	rep.Server = map[string]serverResult{}
	for _, c := range serverBenches() {
		var ratio float64
		fn := c.fn
		r := testing.Benchmark(func(b *testing.B) { ratio = fn(b) })
		rep.Server[c.name] = serverResult{
			NsPerOp:          float64(r.T.Nanoseconds()) / float64(r.N),
			Workers:          c.workers,
			EffectiveWorkers: harness.EffectiveWorkers(c.workers),
			FsyncsPerCommit:  ratio,
		}
		fmt.Fprintf(os.Stderr, "benchjson: server %-24s %10.0f ns/op (workers %d)\n",
			c.name, rep.Server[c.name].NsPerOp, c.workers)
	}

	rep.ShardsRequested = harness.ShardWidth()
	rep.ShardWidthEffective = harness.EffectiveShardWidth()
	rep.ShardScaleDivisor = harness.ShardScaleDivisor
	pts, err := harness.MeasureShardScale(harness.ShardScaleDivisor, harness.ShardScaleWidths)
	if err != nil {
		return err
	}
	rep.ShardScale = pts
	for _, p := range pts {
		fmt.Fprintf(os.Stderr, "benchjson: shards %d %14.0f events/sec (%.2fx)\n",
			p.Shards, p.EventsPerSec, p.Speedup)
	}

	data, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// guardMargin is how much slower than the recorded baseline a guarded
// microbenchmark may run before the guard fails. Generous enough to absorb
// shared-runner noise, tight enough to catch a real hot-path regression.
const guardMargin = 1.25

// guardedBenches are the hot-path microbenchmarks the regression guard
// re-measures: the engine's three transaction paths.
var guardedBenches = map[string]func(*testing.B){
	"GetHit":       microbench.GetHit,
	"GetMiss":      microbench.GetMiss,
	"UpdateCommit": microbench.UpdateCommit,
}

// runBenchGuard re-runs the guarded microbenchmarks and compares each
// against the ns/op recorded in the benchjson report at path, failing if
// any exceeds its baseline by more than guardMargin.
func runBenchGuard(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var rep benchReport
	if err := json.Unmarshal(data, &rep); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	var failed []string
	for _, name := range []string{"GetHit", "GetMiss", "UpdateCommit"} {
		base, ok := rep.Microbench[name]
		if !ok {
			return fmt.Errorf("%s: no recorded baseline for %s", path, name)
		}
		r := testing.Benchmark(guardedBenches[name])
		got := float64(r.T.Nanoseconds()) / float64(r.N)
		limit := base.NsPerOp * guardMargin
		status := "ok"
		if got > limit {
			status = "FAIL"
			failed = append(failed, name)
		}
		fmt.Fprintf(os.Stderr, "benchguard: %-12s %10.0f ns/op (baseline %.0f, limit %.0f) %s\n",
			name, got, base.NsPerOp, limit, status)
	}
	if len(failed) > 0 {
		return fmt.Errorf("regressed more than %.0f%% over %s: %v", (guardMargin-1)*100, path, failed)
	}
	if err := runShardScaleGuard(); err != nil {
		return err
	}
	return runServerGuard()
}

// shardGuardMin is the minimum events/sec ratio the sharded kernel must
// achieve at width 4 over width 1. The check only means anything with
// real cores behind the widths, so it is skipped below four CPUs.
const shardGuardMin = 2.0

// serverBenches lists the concurrent file-backend measurements recorded in
// the benchjson `server` section. Each fn returns the fsyncs/commit ratio
// (0 for read benches, which have no commits).
func serverBenches() []struct {
	name    string
	workers int
	fn      func(*testing.B) float64
} {
	get := func(w int) func(*testing.B) float64 {
		return func(b *testing.B) float64 { loadbench.ConcurrentGet(b, w); return 0 }
	}
	upd := func(w int) func(*testing.B) float64 {
		return func(b *testing.B) float64 { loadbench.ConcurrentUpdateCommit(b, w); return 0 }
	}
	return []struct {
		name    string
		workers int
		fn      func(*testing.B) float64
	}{
		{"ConcurrentGet1", 1, get(1)},
		{"ConcurrentGet4", 4, get(4)},
		{"ConcurrentGet8", 8, get(8)},
		{"ConcurrentUpdateCommit1", 1, upd(1)},
		{"ConcurrentUpdateCommit4", 4, upd(4)},
		{"ConcurrentUpdateCommit8", 8, upd(8)},
		{"GroupCommitFsync", 8, func(b *testing.B) float64 {
			return loadbench.CommitFsyncs(b, turbobp.CommitSyncGroup)
		}},
		{"EachCommitFsync", 8, func(b *testing.B) float64 {
			return loadbench.CommitFsyncs(b, turbobp.CommitSyncEach)
		}},
	}
}

// groupFsyncMax is the most fsyncs/commit the group committer may spend
// with 8 concurrent committers before the guard calls the amortization
// broken. Even one core batches far below this (commits queue on the
// partition mutexes while a flight is in the air).
const groupFsyncMax = 0.9

// serverScaleMin is the minimum 8-worker-over-1-worker throughput ratio
// for concurrent gets, checked only with >= 4 real CPUs behind the
// workers.
const serverScaleMin = 3.0

// runServerGuard re-measures the two properties of the concurrent backend
// that must not regress: group commit amortizes fsyncs, and reads scale
// with workers (the latter needs real cores, so it is skipped below four
// CPUs like the shard guard).
func runServerGuard() error {
	var ratio float64
	testing.Benchmark(func(b *testing.B) {
		ratio = loadbench.CommitFsyncs(b, turbobp.CommitSyncGroup)
	})
	fmt.Fprintf(os.Stderr, "benchguard: group commit %.3f fsyncs/commit (need <= %.2f)\n", ratio, groupFsyncMax)
	if ratio <= 0 || ratio > groupFsyncMax {
		return fmt.Errorf("group commit amortization: %.3f fsyncs/commit, need (0, %.2f]", ratio, groupFsyncMax)
	}

	cpus := runtime.NumCPU()
	if cpus < 4 || runtime.GOMAXPROCS(0) < 4 {
		fmt.Fprintf(os.Stderr, "benchguard: server read-scaling check skipped (%d CPUs, GOMAXPROCS %d; needs >= 4)\n",
			cpus, runtime.GOMAXPROCS(0))
		return nil
	}
	r1 := testing.Benchmark(func(b *testing.B) { loadbench.ConcurrentGet(b, 1) })
	r8 := testing.Benchmark(func(b *testing.B) { loadbench.ConcurrentGet(b, 8) })
	ops1 := float64(r1.N) / r1.T.Seconds()
	ops8 := float64(r8.N) / r8.T.Seconds()
	scale := ops8 / ops1
	fmt.Fprintf(os.Stderr, "benchguard: concurrent gets 8 vs 1 workers: %.0f vs %.0f ops/sec (%.2fx, need >= %.1fx)\n",
		ops8, ops1, scale, serverScaleMin)
	if scale < serverScaleMin {
		return fmt.Errorf("concurrent read scaling: 8 workers deliver %.2fx the 1-worker rate, need >= %.1fx", scale, serverScaleMin)
	}
	return nil
}

// runShardScaleGuard re-measures the shard-width sweep at widths 1 and 4
// and fails if width 4 does not deliver at least shardGuardMin times the
// width-1 events/sec.
func runShardScaleGuard() error {
	cpus := runtime.NumCPU()
	if cpus < 4 || runtime.GOMAXPROCS(0) < 4 {
		fmt.Fprintf(os.Stderr, "benchguard: shard scaling check skipped (%d CPUs, GOMAXPROCS %d; needs >= 4)\n",
			cpus, runtime.GOMAXPROCS(0))
		return nil
	}
	pts, err := harness.MeasureShardScale(harness.ShardScaleDivisor, []int{1, 4})
	if err != nil {
		return err
	}
	ratio := pts[1].EventsPerSec / pts[0].EventsPerSec
	fmt.Fprintf(os.Stderr, "benchguard: shards 4 vs 1: %.0f vs %.0f events/sec (%.2fx, need >= %.1fx)\n",
		pts[1].EventsPerSec, pts[0].EventsPerSec, ratio, shardGuardMin)
	if ratio < shardGuardMin {
		return fmt.Errorf("sharded kernel scaling: width 4 is %.2fx width 1 events/sec, need >= %.1fx", ratio, shardGuardMin)
	}
	return nil
}
