// Command bpesim runs the paper-reproduction experiments: one id per table
// or figure of "Turbocharging DBMS Buffer Pool Using SSDs" (SIGMOD 2011).
//
// Usage:
//
//	bpesim -list
//	bpesim [-divisor N] [-parallel W] <experiment-id> [<experiment-id>...]
//	bpesim all
//	bpesim scale
//	bpesim -benchjson BENCH_harness.json
//	bpesim -benchguard BENCH_harness.json
//	bpesim -cpuprofile cpu.prof -memprofile mem.prof <experiment-id>
//
// "scale" is a standalone scale sweep: the Figure 5 TPC-C grid at
// successively smaller divisors with events/sec and wall-clock readings
// (nondeterministic output, so it is not part of "all").
//
// The divisor scales the paper's sizes and clock down together (default
// 1024); smaller divisors are slower but closer to paper scale. -parallel
// sets the worker count for independent experiment cells (default
// GOMAXPROCS; 1 forces serial). Rendered output on stdout is
// byte-identical at any worker count: per-experiment wall-clock timings
// go to stderr.
//
// -shards N >= 1 runs every OLTP experiment on the sharded multi-core
// kernel: a fixed 8-way page-range partition of engine, SSD manager, WAL
// and clients, synchronized by conservative epoch barriers, with N OS
// threads driving the partitions inside each run. N selects execution
// width only — the partitioned model is identical at every N, so stdout
// is byte-identical at -shards 1, 2, 4, 8 while wall-clock drops with
// real cores. Without the flag, runs use the original single-kernel
// path. Workers × shards is capped at GOMAXPROCS (the cap, again, only
// affects wall-clock).
//
// The faults experiment (crash/recover matrix) and the corrupt experiment
// (silent-corruption detect/repair matrix) ignore the divisor (their
// configurations are fixed so the tables are reproducible); -faultseed
// varies the injected fault schedules of both. See docs/FAILURES.md for
// the failure model they exercise.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"turbobp/internal/harness"
	"turbobp/internal/policy"
)

func main() {
	divisor := flag.Int64("divisor", harness.Default.Divisor, "scale divisor (1 = paper scale)")
	list := flag.Bool("list", false, "list experiment ids and exit")
	csvOut := flag.Bool("csv", false, "emit figure data as CSV instead of rendered text (figure experiments only)")
	parallel := flag.Int("parallel", 0, "worker count for experiment cells (0 = GOMAXPROCS, 1 = serial)")
	shards := flag.Int("shards", 0, "run OLTP experiments on the 8-way sharded kernel with this many threads per run (0 = single-kernel path; results are identical at any value >= 1)")
	cachePol := flag.String("policy", "", "cache policy for every engine the experiments build: lru2 (default), arc, cflru, tinylfu; the policy experiment sweeps all four regardless")
	benchJSON := flag.String("benchjson", "", "write a machine-readable benchmark report (wall-clock serial vs parallel, allocs/op) to this file and exit")
	benchGuard := flag.String("benchguard", "", "re-run the hot-path microbenchmarks and fail if any regresses more than 25% against this benchjson report")
	faultSeed := flag.Uint64("faultseed", harness.FaultSeed(), "seed for the faults experiment's injected fault schedules")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
	memProfile := flag.String("memprofile", "", "write an allocation profile taken at exit to this file")
	flag.Usage = usage
	flag.Parse()

	if *list {
		printList()
		return
	}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bpesim: cpuprofile: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "bpesim: cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "bpesim: memprofile: %v\n", err)
				os.Exit(1)
			}
			defer f.Close()
			runtime.GC() // material for the profile: live objects, not GC noise
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "bpesim: memprofile: %v\n", err)
				os.Exit(1)
			}
		}()
	}
	harness.SetWorkers(*parallel)
	harness.SetShards(*shards)
	harness.SetFaultSeed(*faultSeed)
	pol, err := policy.ParseKind(*cachePol)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bpesim: %v\n", err)
		os.Exit(2)
	}
	harness.SetPolicy(pol)
	scale := harness.Scale{Divisor: *divisor}
	if *benchJSON != "" {
		if err := writeBenchJSON(*benchJSON, scale); err != nil {
			fmt.Fprintf(os.Stderr, "bpesim: benchjson: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *benchGuard != "" {
		if err := runBenchGuard(*benchGuard); err != nil {
			fmt.Fprintf(os.Stderr, "bpesim: benchguard: %v\n", err)
			os.Exit(1)
		}
		return
	}
	args := flag.Args()
	if len(args) == 0 {
		usage()
		os.Exit(2)
	}
	if len(args) == 1 && args[0] == "scale" {
		if err := harness.RunScaleSweep(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "bpesim: scale: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if len(args) == 1 && args[0] == "all" {
		args = nil
		for _, e := range harness.Experiments() {
			args = append(args, e.ID)
		}
	}
	for _, id := range args {
		if _, ok := harness.FindExperiment(id); !ok {
			fmt.Fprintf(os.Stderr, "bpesim: unknown experiment %q (try -list)\n", id)
			os.Exit(2)
		}
	}
	if *csvOut {
		csvRunners := harness.CSVExperiments()
		for _, id := range args {
			run, ok := csvRunners[id]
			if !ok {
				fmt.Fprintf(os.Stderr, "bpesim: experiment %q has no CSV form\n", id)
				os.Exit(2)
			}
			if err := run(scale, os.Stdout); err != nil {
				fmt.Fprintf(os.Stderr, "bpesim: %s: %v\n", id, err)
				os.Exit(1)
			}
		}
		return
	}
	if err := harness.RunAll(args, scale, os.Stdout, os.Stderr); err != nil {
		fmt.Fprintf(os.Stderr, "bpesim: %v\n", err)
		os.Exit(1)
	}
}

func printList() {
	for _, e := range harness.Experiments() {
		fmt.Printf("%-12s %s\n", e.ID, e.Description)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: bpesim [-divisor N] [-parallel W] [-shards N] [-cpuprofile FILE] [-memprofile FILE] <experiment-id>... | all | scale | -list | -benchjson FILE | -benchguard FILE")
	printList()
}
