// Command bpesim runs the paper-reproduction experiments: one id per table
// or figure of "Turbocharging DBMS Buffer Pool Using SSDs" (SIGMOD 2011).
//
// Usage:
//
//	bpesim -list
//	bpesim [-divisor N] <experiment-id> [<experiment-id>...]
//	bpesim all
//
// The divisor scales the paper's sizes and clock down together (default
// 1024); smaller divisors are slower but closer to paper scale.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"turbobp/internal/harness"
)

func main() {
	divisor := flag.Int64("divisor", harness.Default.Divisor, "scale divisor (1 = paper scale)")
	list := flag.Bool("list", false, "list experiment ids and exit")
	csvOut := flag.Bool("csv", false, "emit figure data as CSV instead of rendered text (figure experiments only)")
	flag.Usage = usage
	flag.Parse()

	if *list {
		printList()
		return
	}
	args := flag.Args()
	if len(args) == 0 {
		usage()
		os.Exit(2)
	}
	if len(args) == 1 && args[0] == "all" {
		args = nil
		for _, e := range harness.Experiments() {
			args = append(args, e.ID)
		}
	}
	scale := harness.Scale{Divisor: *divisor}
	csvRunners := harness.CSVExperiments()
	for _, id := range args {
		if *csvOut {
			run, ok := csvRunners[id]
			if !ok {
				fmt.Fprintf(os.Stderr, "bpesim: experiment %q has no CSV form\n", id)
				os.Exit(2)
			}
			if err := run(scale, os.Stdout); err != nil {
				fmt.Fprintf(os.Stderr, "bpesim: %s: %v\n", id, err)
				os.Exit(1)
			}
			continue
		}
		exp, ok := harness.FindExperiment(id)
		if !ok {
			fmt.Fprintf(os.Stderr, "bpesim: unknown experiment %q (try -list)\n", id)
			os.Exit(2)
		}
		fmt.Printf("== %s — %s (divisor %d) ==\n", exp.ID, exp.Description, scale.Divisor)
		start := time.Now()
		if err := exp.Run(scale, os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "bpesim: %s: %v\n", id, err)
			os.Exit(1)
		}
		fmt.Printf("-- %s done in %v --\n\n", exp.ID, time.Since(start).Round(time.Millisecond))
	}
}

func printList() {
	for _, e := range harness.Experiments() {
		fmt.Printf("%-12s %s\n", e.ID, e.Description)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: bpesim [-divisor N] <experiment-id>... | all | -list")
	printList()
}
