// Command iobench regenerates the paper's Table 1: the maximum sustainable
// IOPS of the simulated device models with page-sized (8 KB) I/Os, the way
// Iometer measured the paper's physical hardware.
package main

import (
	"fmt"
	"os"

	"turbobp/internal/harness"
)

func main() {
	if len(os.Args) > 1 {
		fmt.Fprintln(os.Stderr, "usage: iobench")
		os.Exit(2)
	}
	harness.RunTable1().Print(os.Stdout)
}
