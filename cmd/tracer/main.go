// Command tracer generates, inspects and replays page-access traces —
// the trace-driven-simulation companion to cmd/bpesim.
//
// Usage:
//
//	tracer gen  -profile tpcc|tpce -pages N -txs N -out file.trace
//	tracer info -in file.trace
//	tracer replay -in file.trace [-design noSSD|CW|DW|LC|TAC] [-pool N] [-ssd N]
//
// Replay runs against the simulated paper hardware and reports virtual
// elapsed time and cache behaviour, so the same trace can be compared
// across designs.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"turbobp/internal/engine"
	"turbobp/internal/sim"
	"turbobp/internal/ssd"
	"turbobp/internal/trace"
	"turbobp/internal/workload"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	var err error
	switch os.Args[1] {
	case "gen":
		err = runGen(os.Args[2:])
	case "info":
		err = runInfo(os.Args[2:])
	case "replay":
		err = runReplay(os.Args[2:])
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracer:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  tracer gen  -profile tpcc|tpce -pages N -txs N -out file.trace
  tracer info -in file.trace
  tracer replay -in file.trace [-design DESIGN] [-pool N] [-ssd N]`)
	os.Exit(2)
}

func runGen(args []string) error {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	profile := fs.String("profile", "tpcc", "workload profile: tpcc or tpce")
	pages := fs.Int64("pages", 1<<16, "database size in pages")
	txs := fs.Int("txs", 10000, "transactions to generate")
	seed := fs.Int64("seed", 1, "random seed")
	out := fs.String("out", "workload.trace", "output file")
	fs.Parse(args)

	var wl workload.OLTP
	switch *profile {
	case "tpcc":
		wl = workload.TPCC(*pages)
	case "tpce":
		wl = workload.TPCE(*pages)
	default:
		return fmt.Errorf("unknown profile %q", *profile)
	}
	wl.Seed = *seed
	tr := wl.GenerateTrace(*txs)
	if err := tr.Save(*out); err != nil {
		return err
	}
	s := tr.Stats()
	fmt.Printf("wrote %s: %d events (%d reads, %d updates, %d commits), %d distinct pages\n",
		*out, tr.Len(), s.Reads, s.Updates, s.Commits, s.DistinctPages)
	return nil
}

func runInfo(args []string) error {
	fs := flag.NewFlagSet("info", flag.ExitOnError)
	in := fs.String("in", "", "trace file")
	fs.Parse(args)
	tr, err := trace.Load(*in)
	if err != nil {
		return err
	}
	s := tr.Stats()
	fmt.Printf("events:         %d\n", tr.Len())
	fmt.Printf("reads:          %d\n", s.Reads)
	fmt.Printf("updates:        %d\n", s.Updates)
	fmt.Printf("commits:        %d\n", s.Commits)
	fmt.Printf("scans:          %d (%d pages)\n", s.Scans, s.ScanPages)
	fmt.Printf("distinct pages: %d\n", s.DistinctPages)
	fmt.Printf("max page:       %d\n", s.MaxPage)
	return nil
}

func runReplay(args []string) error {
	fs := flag.NewFlagSet("replay", flag.ExitOnError)
	in := fs.String("in", "", "trace file")
	designName := fs.String("design", "LC", "noSSD, CW, DW, LC or TAC")
	pool := fs.Int("pool", 2560, "memory pool frames")
	ssdFrames := fs.Int("ssd", 17920, "SSD frames")
	fs.Parse(args)

	tr, err := trace.Load(*in)
	if err != nil {
		return err
	}
	design, err := parseDesign(*designName)
	if err != nil {
		return err
	}
	st := tr.Stats()
	env := sim.NewEnv()
	e := engine.New(env, engine.Config{
		Design:    design,
		DBPages:   int64(st.MaxPage) + 1,
		PoolPages: *pool,
		SSDFrames: *ssdFrames,
	})
	if err := e.FormatDB(); err != nil {
		return err
	}
	var res *trace.ReplayResult
	done := false
	env.Go("replay", func(p *sim.Proc) {
		res, err = trace.Replay(p, e, tr)
		done = true
	})
	for !done {
		env.Run(env.Now() + time.Second)
	}
	e.StopBackground()
	env.Run(env.Now() + time.Second)
	env.Shutdown()
	if err != nil {
		return err
	}
	fmt.Printf("design:        %s\n", design)
	fmt.Printf("events:        %d\n", res.Events)
	fmt.Printf("virtual time:  %.3fs\n", res.ElapsedSec)
	fmt.Printf("pool hits:     %d / %d reads\n", res.Engine.PoolHits, res.Engine.Reads)
	fmt.Printf("ssd hits:      %d (misses %d)\n", res.SSDHits, res.SSDMisses)
	fmt.Printf("commits:       %d\n", res.Engine.Commits)
	return nil
}

func parseDesign(s string) (ssd.Design, error) {
	for _, d := range []ssd.Design{ssd.NoSSD, ssd.CW, ssd.DW, ssd.LC, ssd.TAC} {
		if strings.EqualFold(d.String(), s) {
			return d, nil
		}
	}
	return 0, fmt.Errorf("unknown design %q", s)
}
