package turbobp

import (
	"fmt"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"turbobp/internal/device"
	"turbobp/internal/engine"
	"turbobp/internal/fault"
	"turbobp/internal/page"
	"turbobp/internal/sim"
	"turbobp/internal/ssd"
	"turbobp/internal/wal"
)

// This file implements the partitioned concurrent file backend selected by
// Options.Concurrency > 1. The database's page range is split into P
// contiguous partitions; each partition is a complete single-threaded
// engine — its own simulation environment, buffer pool (in striped-latch
// mode), SSD-manager region and WAL slice — serialized by a per-partition
// mutex. Operations on different partitions run genuinely in parallel:
// LRU-2 victim selection, SSD admission/eviction (CW/DW/LC/TAC) and WAL
// appends are all partition-local. Two layers cut across partitions:
//
//   - The latched read path: DB.Read first tries the pool's striped-latch
//     copy-out (bufpool.ReadLatched), which serves resident pages WITHOUT
//     the partition mutex — point reads of hot pages scale with stripes,
//     not with partitions.
//   - Group commit: commit durability requests from all partitions feed one
//     wal.GroupCommitter that coalesces them into single fsyncs of the
//     shared log file (Options.CommitSync / GroupCommitMaxDelay / MaxBatch).
//
// Lock hierarchy (see DESIGN.md "Concurrency & group commit"): DB meta
// mutex and partition mutexes are independent roots; partition mutexes are
// only ever held several-at-once in ascending index order (Crash, Close);
// page-latch stripes are leaves acquired under at most one partition mutex
// (or none, on the latched read path); the group committer's internal lock
// is taken with no other lock held.
//
// Cross-partition transactions are crash-atomic: Tx buffers its mutations
// and Tx.Commit runs presumed-abort two-phase commit over the partitions'
// WALs, coordinated by an append-only decision log — see twophase.go. The
// per-partition WALs persist real record bytes (wal.SetPersist) so a later
// process can reopen the directory (Options.OpenExisting) and recover:
// wal.LoadDurable reloads each partition's durable stream, and
// engine.RecoverDurable redoes committed transactions and rolls back
// uncommitted ones from their logged before-images, resolving in-doubt
// prepared transactions against the coordinator log.
//
// Fault injection composes with partitioning: each partition gets its own
// deterministic injector seeded from Options.FaultSeed and the partition
// index (fault.DeriveSeed), reachable via DB.PartitionFaults.

// CommitSyncMode selects how the file backend makes commits durable on the
// real device. The simulated backend ignores it.
type CommitSyncMode int

const (
	// CommitSyncNone never fsyncs on commit (the pre-concurrency behavior,
	// and the default): commit forces the WAL to the OS, not the platter.
	CommitSyncNone CommitSyncMode = iota
	// CommitSyncEach issues one fsync per commit.
	CommitSyncEach
	// CommitSyncGroup coalesces concurrent commits into shared fsync
	// flights (WAL group commit; see wal.GroupCommitter).
	CommitSyncGroup
)

// poolStripesPerPartition is the page-latch stripe count of each
// partition's buffer pool (rounded up to a power of two by the pool).
const poolStripesPerPartition = 16

// walPagesTotal is the log-file capacity in 8 KB pages, split evenly
// across partitions.
const walPagesTotal = 1 << 20

// partition is one page-range shard of the concurrent backend: a complete
// single-threaded engine serialized by mu.
type partition struct {
	mu   sync.Mutex
	env  *sim.Env
	eng  *engine.Engine
	base int64 // first global page id
	n    int64 // page count
}

// do runs fn as a process on the partition's environment and drives it to
// completion. Callers must hold pt.mu.
func (pt *partition) do(name string, fn func(p *sim.Proc) error) error {
	var err error
	done := false
	pt.env.Go(name, func(p *sim.Proc) {
		err = fn(p)
		done = true
	})
	for !done {
		pt.env.Run(pt.env.Now() + time.Millisecond)
	}
	return err
}

// concurrent is the partitioned backend's shared state.
type concurrent struct {
	parts []*partition
	quot  int64 // partition size floor; partitions [0,rem) hold quot+1
	rem   int64

	mode CommitSyncMode
	gc   *wal.GroupCommitter // nil when mode == CommitSyncNone

	coord   *coordLog     // two-phase-commit decision log (see twophase.go)
	nextGtx atomic.Uint64 // global transaction id counter

	// crash2PC, when set (tests only), is called at the two in-doubt
	// stages of a cross-partition commit — "prepared" (prepares durable,
	// no decision) and "decided" (decision durable, participants not yet
	// committed). A non-nil return abandons the commit mid-protocol, as a
	// kill would, so recovery tests can pin both resolutions.
	crash2PC func(stage string) error

	tick    atomic.Int64 // DB-wide LRU clock (see bufpool.NewStriped)
	latched atomic.Int64 // reads served by the latched fast path
	closed  atomic.Bool
}

// partOf maps a global page id to its partition and partition-local id.
// Callers have validated the range.
func (c *concurrent) partOf(pid int64) (*partition, int64) {
	boundary := c.rem * (c.quot + 1)
	var i int64
	if pid < boundary {
		i = pid / (c.quot + 1)
	} else {
		i = c.rem + (pid-boundary)/c.quot
	}
	pt := c.parts[i]
	return pt, pid - pt.base
}

func (c *concurrent) checkPage(pid int64, dbPages int64) error {
	if pid < 0 || pid >= dbPages {
		return fmt.Errorf("turbobp: page %d out of range [0,%d)", pid, dbPages)
	}
	return nil
}

// syncCommit runs the configured commit-durability step. Called with no
// locks held, after the partition-local commit released the WAL to the OS.
func (c *concurrent) syncCommit() error {
	if c.gc == nil {
		return nil
	}
	return c.gc.Commit()
}

// openConcurrent builds the partitioned backend inside db: the owner files
// are already open in db.files (db.pages, optional ssd.pages, wal.log, in
// that order). cfg is the engine config the legacy path would have used.
// When opts.OpenExisting is set the files hold a previous incarnation's
// state: formatting is skipped and each partition instead reloads its
// persisted WAL and runs commit-aware restart recovery, resolving in-doubt
// two-phase transactions against the reloaded coordinator log.
func openConcurrent(db *DB, cfg engine.Config, dbFile, ssdFile, logFile *device.File) error {
	opts := db.opts
	p := int64(opts.Concurrency)
	if p > opts.DBPages {
		p = opts.DBPages
	}
	c := &concurrent{
		quot: opts.DBPages / p,
		rem:  opts.DBPages % p,
		mode: opts.CommitSync,
	}
	clock := func() time.Duration { return time.Duration(c.tick.Add(1)) }

	div := func(v, n int) int {
		if v <= 0 {
			return v
		}
		if v /= n; v < 1 {
			v = 1
		}
		return v
	}
	poolPer := div(opts.PoolPages, int(p))
	ssdPer := div(opts.SSDFrames, int(p))
	walPer := device.PageNum(walPagesTotal / p)

	var maxGtx uint64
	var base, ssdBase int64
	for i := int64(0); i < p; i++ {
		n := c.quot
		if i < c.rem {
			n++
		}
		dbSlice, err := dbFile.Slice(device.PageNum(base), device.PageNum(n))
		if err != nil {
			return err
		}
		var ssdDev device.Device
		if ssdFile != nil {
			ssdSlice, err := ssdFile.Slice(device.PageNum(ssdBase), device.PageNum(ssdPer))
			if err != nil {
				return err
			}
			ssdDev = ssdSlice
			ssdBase += int64(ssdPer)
		}
		walSlice, err := logFile.Slice(device.PageNum(i)*walPer, walPer)
		if err != nil {
			return err
		}
		pcfg := cfg
		pcfg.DBPages = n
		pcfg.PoolPages = poolPer
		pcfg.SSDFrames = ssdPer
		pcfg.PoolStripes = poolStripesPerPartition
		pcfg.PoolClock = clock
		pcfg.CommitRecords = true
		pcfg.WALPersist = true
		pcfg.WALCapacity = walPer
		if opts.FaultSeed != 0 {
			pcfg.Faults = fault.New(fault.DeriveSeed(opts.FaultSeed, uint64(i)))
		}
		env := sim.NewEnv()
		pt := &partition{
			env:  env,
			eng:  engine.NewWithDevices(env, pcfg, dbSlice, ssdDev, walSlice),
			base: base,
			n:    n,
		}
		if opts.OpenExisting {
			if err := pt.eng.Log().LoadDurable(); err != nil {
				return fmt.Errorf("reload partition %d: %w", i, err)
			}
			if gtx := pt.eng.AdoptDurableTxIDs(); gtx > maxGtx {
				maxGtx = gtx
			}
		} else if err := pt.eng.FormatDB(); err != nil {
			return fmt.Errorf("format partition %d: %w", i, err)
		}
		c.parts = append(c.parts, pt)
		base += n
	}

	coord, err := openCoordLog(filepath.Join(opts.Dir, "txn.log"),
		!opts.OpenExisting, opts.CommitSync != CommitSyncNone)
	if err != nil {
		return err
	}
	c.coord = coord
	if coord.maxGtx > maxGtx {
		maxGtx = coord.maxGtx
	}
	c.nextGtx.Store(maxGtx)

	if opts.OpenExisting {
		for i, pt := range c.parts {
			err := pt.do("recover", func(p *sim.Proc) error {
				return pt.eng.RecoverDurable(p, coord.isCommitted)
			})
			if err != nil {
				coord.close()
				return fmt.Errorf("recover partition %d: %w", i, err)
			}
		}
	}

	switch opts.CommitSync {
	case CommitSyncEach:
		c.gc = wal.NewGroupCommitter(logFile.Sync, 1, 0, true)
	case CommitSyncGroup:
		c.gc = wal.NewGroupCommitter(logFile.Sync,
			opts.GroupCommitMaxBatch, opts.GroupCommitMaxDelay, false)
	}
	db.conc = c
	return nil
}

// ---- DB method implementations for the concurrent backend. Each is called
// from the corresponding public method after the db.conc != nil branch.

func (c *concurrent) read(db *DB, pid int64, buf []byte) (int, error) {
	if c.closed.Load() {
		return 0, ErrClosed
	}
	if err := c.checkPage(pid, db.opts.DBPages); err != nil {
		return 0, err
	}
	pt, local := c.partOf(pid)
	// Fast path: a resident page is copied out under its stripe latch alone.
	if n, ok := pt.eng.Pool().ReadLatched(page.ID(local), buf); ok {
		c.latched.Add(1)
		return n, nil
	}
	pt.mu.Lock()
	defer pt.mu.Unlock()
	n := 0
	err := pt.do("read", func(p *sim.Proc) error {
		f, err := pt.eng.Get(p, page.ID(local))
		if err != nil {
			return err
		}
		n = copy(buf, f.Pg.Payload)
		return nil
	})
	return n, err
}

func (c *concurrent) update(db *DB, pid int64, fn func(payload []byte)) error {
	if c.closed.Load() {
		return ErrClosed
	}
	if err := c.checkPage(pid, db.opts.DBPages); err != nil {
		return err
	}
	pt, local := c.partOf(pid)
	pt.mu.Lock()
	err := pt.do("update", func(p *sim.Proc) error {
		tx := pt.eng.Begin()
		if err := pt.eng.Update(p, tx, page.ID(local), fn); err != nil {
			return err
		}
		return pt.eng.Commit(p, tx)
	})
	pt.mu.Unlock()
	if err != nil {
		return err
	}
	return c.syncCommit()
}

// txUpdate buffers a transactional mutation. Nothing touches the engines
// until Tx.Commit: deferring the writes lets the commit apply, prepare and
// decide the whole transaction under every participant's mutex at once —
// the window two-phase commit needs (see twophase.go). Mutations chain per
// page, so fn runs at commit time against the payload as the transaction's
// earlier mutations left it.
func (c *concurrent) txUpdate(db *DB, tx *Tx, pid int64, fn func(payload []byte)) error {
	if c.closed.Load() {
		return ErrClosed
	}
	if err := c.checkPage(pid, db.opts.DBPages); err != nil {
		return err
	}
	tx.writes[pid] = append(tx.writes[pid], fn)
	return nil
}

func (c *concurrent) scan(db *DB, start int64, n int, fn func(pid int64, payload []byte) error) error {
	if c.closed.Load() {
		return ErrClosed
	}
	if n < 0 {
		return fmt.Errorf("turbobp: negative scan length %d", n)
	}
	if err := c.checkPage(start, db.opts.DBPages); err != nil {
		return err
	}
	if n > 0 {
		if err := c.checkPage(start+int64(n)-1, db.opts.DBPages); err != nil {
			return err
		}
	}
	// Walk the covered partitions in page order; each sub-range runs under
	// its partition's mutex through the engine's read-ahead path.
	for pid := start; pid < start+int64(n); {
		pt, local := c.partOf(pid)
		count := pt.base + pt.n - pid // pages of this scan inside pt
		if rest := start + int64(n) - pid; rest < count {
			count = rest
		}
		pt.mu.Lock()
		err := pt.do("scan", func(p *sim.Proc) error {
			if err := pt.eng.Scan(p, page.ID(local), int(count)); err != nil {
				return err
			}
			if fn == nil {
				return nil
			}
			for i := int64(0); i < count; i++ {
				f, err := pt.eng.Get(p, page.ID(local+i))
				if err != nil {
					return err
				}
				if err := fn(pid+i, f.Pg.Payload); err != nil {
					return err
				}
			}
			return nil
		})
		pt.mu.Unlock()
		if err != nil {
			return err
		}
		pid += count
	}
	return nil
}

func (c *concurrent) checkpoint(db *DB) error {
	if c.closed.Load() {
		return ErrClosed
	}
	for _, pt := range c.parts {
		pt.mu.Lock()
		err := pt.do("checkpoint", func(p *sim.Proc) error {
			return pt.eng.Checkpoint(p)
		})
		pt.mu.Unlock()
		if err != nil {
			return err
		}
	}
	if c.mode != CommitSyncNone {
		for _, f := range db.files {
			if err := f.Sync(); err != nil {
				return err
			}
		}
	}
	return nil
}

func (c *concurrent) idle(d time.Duration) error {
	if c.closed.Load() {
		return ErrClosed
	}
	for _, pt := range c.parts {
		pt.mu.Lock()
		err := pt.do("idle", func(p *sim.Proc) error {
			p.Sleep(d)
			return nil
		})
		pt.mu.Unlock()
		if err != nil {
			return err
		}
	}
	return nil
}

func (c *concurrent) crash() error {
	if c.closed.Load() {
		return ErrClosed
	}
	// All partitions stop at one cut: take every mutex (ascending), then
	// drop volatile state everywhere.
	for _, pt := range c.parts {
		pt.mu.Lock()
	}
	for _, pt := range c.parts {
		pt.eng.Crash()
	}
	for i := len(c.parts) - 1; i >= 0; i-- {
		c.parts[i].mu.Unlock()
	}
	return nil
}

// failSSD arms whole-SSD loss in every partition: each partition's injector
// fails its "ssd" region on the next operation, and each engine detects and
// recovers independently (cache rebuild plus WAL redo under LC).
func (c *concurrent) failSSD(db *DB) error {
	if c.closed.Load() {
		return ErrClosed
	}
	armed := 0
	for _, pt := range c.parts {
		pt.mu.Lock()
		inj := pt.eng.Config().Faults
		if inj != nil && pt.eng.SSDDevice() != nil {
			inj.FailDeviceNow("ssd")
			armed++
		}
		pt.mu.Unlock()
	}
	if armed == 0 {
		return fmt.Errorf("turbobp: fault injection disabled or no SSD (set Options.FaultSeed and an SSD design)")
	}
	return nil
}

func (c *concurrent) recover() error {
	if c.closed.Load() {
		return ErrClosed
	}
	for _, pt := range c.parts {
		pt.mu.Lock()
		err := pt.do("recover", func(p *sim.Proc) error {
			return pt.eng.Recover(p)
		})
		pt.mu.Unlock()
		if err != nil {
			return err
		}
	}
	return nil
}

func (c *concurrent) stats(db *DB) Stats {
	var es engine.Stats
	var ms ssd.Stats
	var s Stats
	var vt time.Duration
	for _, pt := range c.parts {
		pt.mu.Lock()
		es = es.Add(pt.eng.Stats())
		ms = ms.Add(pt.eng.SSD().Stats())
		s.SSDOccupied += pt.eng.SSD().Occupied()
		s.SSDDirty += pt.eng.SSD().DirtyCount()
		s.RetiredSlots += pt.eng.SSD().RetiredSlots()
		s.Quarantined = s.Quarantined || pt.eng.SSD().Quarantined()
		d := pt.eng.DBDevice().Stats().Load()
		s.DiskReads += d.ReadOps
		s.DiskWrites += d.WriteOps
		if dev := pt.eng.SSDDevice(); dev != nil {
			sd := dev.Stats().Load()
			s.SSDReads += sd.ReadOps
			s.SSDWrites += sd.WriteOps
		}
		if now := pt.env.Now(); now > vt {
			vt = now
		}
		pt.mu.Unlock()
	}
	latched := c.latched.Load()
	s.Design = db.opts.Design
	s.Reads = es.Reads + latched
	s.Updates = es.Updates
	s.Commits = es.Commits
	s.PoolHits = es.PoolHits + latched
	s.PoolMisses = es.PoolMisses
	s.SSDHits = ms.Hits
	s.SSDMisses = ms.Misses
	s.Checkpoints = es.Checkpoints
	s.VirtualTime = vt
	s.SSDLosses = es.SSDLosses
	s.SSDRedoRecords = es.SSDLossRedo
	s.SSDReadErrors = ms.ReadErrors
	s.CorruptDetected = ms.CorruptDetected
	s.CorruptRepaired = ms.CorruptRepaired
	s.CorruptRedo = es.CorruptRedo
	s.DiskCorruptions = es.DiskCorruptions
	s.DiskRepairsSSD = es.DiskRepairsSSD
	s.DiskRepairsWAL = es.DiskRepairsWAL
	s.ScrubSweeps = ms.ScrubSweeps
	s.ScrubFrames = ms.ScrubFrames
	s.ScrubRepairs = ms.ScrubRepairs
	s.LatchedReads = latched
	s.Partitions = len(c.parts)
	if c.gc != nil {
		gs := c.gc.Stats()
		s.SyncedCommits = gs.Commits
		s.WALSyncs = gs.Syncs
		s.MaxCommitFlight = gs.MaxFlight
	}
	return s
}

func (c *concurrent) latencySummary() string {
	var l engine.Latencies
	for _, pt := range c.parts {
		pt.mu.Lock()
		pl := pt.eng.Latencies()
		l.PoolHit.Merge(&pl.PoolHit)
		l.SSDHit.Merge(&pl.SSDHit)
		l.DiskRead.Merge(&pl.DiskRead)
		l.Commit.Merge(&pl.Commit)
		pt.mu.Unlock()
	}
	return fmt.Sprintf("pool-hit:  %s\nssd-hit:   %s\ndisk-read: %s\ncommit:    %s",
		l.PoolHit.Summary(), l.SSDHit.Summary(), l.DiskRead.Summary(), l.Commit.Summary())
}

func (c *concurrent) close(db *DB) error {
	if c.closed.Swap(true) {
		return nil
	}
	var err error
	for _, pt := range c.parts {
		pt.mu.Lock()
		cerr := pt.do("close-checkpoint", func(p *sim.Proc) error {
			return pt.eng.Checkpoint(p)
		})
		pt.eng.StopBackground()
		pt.env.Run(pt.env.Now() + time.Second)
		pt.env.Shutdown()
		pt.mu.Unlock()
		if cerr != nil && err == nil {
			err = cerr
		}
	}
	for _, f := range db.files {
		if serr := f.Sync(); serr != nil && err == nil {
			err = serr
		}
		if cerr := f.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	if c.coord != nil {
		if cerr := c.coord.close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	return err
}
