package turbobp

import (
	"encoding/binary"
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"turbobp/internal/fault"
)

// openConcurrentDB opens a file-backed DB in partitioned mode for tests.
func openConcurrentDB(t *testing.T, pages int64, conc int, mode CommitSyncMode) *DB {
	t.Helper()
	db, err := Open(Options{
		Design:      LC,
		DBPages:     pages,
		PoolPages:   64,
		SSDFrames:   128,
		PageSize:    64,
		Dir:         t.TempDir(),
		Concurrency: conc,
		CommitSync:  mode,
	})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return db
}

// counterOf reads the test payload convention: an update counter in the
// first 8 payload bytes.
func counterOf(payload []byte) uint64 { return binary.LittleEndian.Uint64(payload) }

// TestConcurrentOracle drives a randomized mixed workload (get, update,
// cross-partition tx, scan) from N goroutines against the partitioned
// backend and cross-checks it against a serialized oracle: per-page
// counters incremented under the engine's own serialization must end
// exactly equal to the number of committed updates, and no read may ever
// observe a counter above the number of updates started. Run under -race
// this also exercises the latch protocol end to end.
func TestConcurrentOracle(t *testing.T) {
	const (
		pages   = 256
		workers = 8
		ops     = 300
	)
	db := openConcurrentDB(t, pages, 4, CommitSyncGroup)
	defer db.Close()

	var started, applied [pages]atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(1000 + w)))
			buf := make([]byte, db.PageSize())
			for i := 0; i < ops; i++ {
				pid := rng.Int63n(pages)
				switch rng.Intn(10) {
				case 0, 1, 2, 3: // point read
					n, err := db.Read(pid, buf)
					if err != nil {
						t.Errorf("Read(%d): %v", pid, err)
						return
					}
					if n < 8 {
						t.Errorf("Read(%d): %d bytes", pid, n)
						return
					}
					if got, max := counterOf(buf), started[pid].Load(); int64(got) > max {
						t.Errorf("page %d: read counter %d > %d updates started", pid, got, max)
						return
					}
				case 4, 5, 6: // single-page committed update
					started[pid].Add(1)
					if err := db.Update(pid, func(p []byte) {
						binary.LittleEndian.PutUint64(p, counterOf(p)+1)
					}); err != nil {
						t.Errorf("Update(%d): %v", pid, err)
						return
					}
					applied[pid].Add(1)
				case 7, 8: // multi-page transaction, usually cross-partition
					pid2 := rng.Int63n(pages)
					tx := db.Begin()
					started[pid].Add(1)
					started[pid2].Add(1)
					err := tx.Update(pid, func(p []byte) {
						binary.LittleEndian.PutUint64(p, counterOf(p)+1)
					})
					if err == nil {
						err = tx.Update(pid2, func(p []byte) {
							binary.LittleEndian.PutUint64(p, counterOf(p)+1)
						})
					}
					if err == nil {
						err = tx.Commit()
					}
					if err != nil {
						t.Errorf("tx(%d,%d): %v", pid, pid2, err)
						return
					}
					applied[pid].Add(1)
					applied[pid2].Add(1)
				case 9: // short scan
					n := 1 + rng.Intn(16)
					if pid+int64(n) > pages {
						n = int(pages - pid)
					}
					err := db.Scan(pid, n, func(sp int64, payload []byte) error {
						if got, max := counterOf(payload), started[sp].Load(); int64(got) > max {
							t.Errorf("page %d: scanned counter %d > %d started", sp, got, max)
						}
						return nil
					})
					if err != nil {
						t.Errorf("Scan(%d,%d): %v", pid, n, err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if t.Failed() {
		return
	}

	// Quiesced: every page's counter must equal its committed updates.
	buf := make([]byte, db.PageSize())
	for pid := int64(0); pid < pages; pid++ {
		if _, err := db.Read(pid, buf); err != nil {
			t.Fatalf("final Read(%d): %v", pid, err)
		}
		want := applied[pid].Load()
		if got := int64(counterOf(buf)); got != want {
			t.Fatalf("page %d: final counter %d, oracle %d", pid, got, want)
		}
	}

	s := db.Stats()
	if s.Partitions != 4 {
		t.Errorf("Partitions = %d, want 4", s.Partitions)
	}
	if s.WALSyncs == 0 || s.SyncedCommits == 0 {
		t.Errorf("group commit idle: %d syncs for %d synced commits", s.WALSyncs, s.SyncedCommits)
	}
	if s.WALSyncs > s.SyncedCommits {
		t.Errorf("more syncs (%d) than synced commits (%d)", s.WALSyncs, s.SyncedCommits)
	}

	// Crash and recover: every committed update must survive (the in-process
	// crash drops only unforced log records, and every commit forced its own).
	if err := db.Crash(); err != nil {
		t.Fatalf("Crash: %v", err)
	}
	if err := db.Recover(); err != nil {
		t.Fatalf("Recover: %v", err)
	}
	for pid := int64(0); pid < pages; pid++ {
		if _, err := db.Read(pid, buf); err != nil {
			t.Fatalf("post-recovery Read(%d): %v", pid, err)
		}
		if got, want := int64(counterOf(buf)), applied[pid].Load(); got != want {
			t.Fatalf("page %d: post-recovery counter %d, oracle %d", pid, got, want)
		}
	}
}

// TestConcurrentCrashDuringGroupCommit crashes the DB while committers are
// in flight — some parked on group-commit flights — and verifies recovery
// lands every page in a consistent state: at least every update whose
// commit returned before the crash, never more than were started.
func TestConcurrentCrashDuringGroupCommit(t *testing.T) {
	const (
		pages   = 128
		workers = 6
	)
	db := openConcurrentDB(t, pages, 4, CommitSyncGroup)
	defer db.Close()

	var started, applied [pages]atomic.Int64
	var stop atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(77 + w)))
			for !stop.Load() {
				pid := rng.Int63n(pages)
				started[pid].Add(1)
				err := db.Update(pid, func(p []byte) {
					binary.LittleEndian.PutUint64(p, counterOf(p)+1)
				})
				if err != nil {
					// The crash landed mid-operation; the update may or may
					// not have committed, which the bounds below tolerate.
					return
				}
				applied[pid].Add(1)
			}
		}(w)
	}

	time.Sleep(30 * time.Millisecond)
	if err := db.Crash(); err != nil {
		t.Fatalf("Crash: %v", err)
	}
	stop.Store(true)
	wg.Wait()

	if err := db.Recover(); err != nil {
		t.Fatalf("Recover: %v", err)
	}
	buf := make([]byte, db.PageSize())
	for pid := int64(0); pid < pages; pid++ {
		if _, err := db.Read(pid, buf); err != nil {
			t.Fatalf("Read(%d) after recovery: %v", pid, err)
		}
		got := int64(counterOf(buf))
		if lo := applied[pid].Load(); got < lo {
			t.Fatalf("page %d: recovered counter %d < %d committed before crash", pid, got, lo)
		}
		if hi := started[pid].Load(); got > hi {
			t.Fatalf("page %d: recovered counter %d > %d started", pid, got, hi)
		}
	}
}

// TestConcurrentRequiresFileBackend pins the constructor contract.
func TestConcurrentRequiresFileBackend(t *testing.T) {
	_, err := Open(Options{DBPages: 64, Concurrency: 4})
	if err == nil {
		t.Fatal("Open with Concurrency on the simulated backend succeeded")
	}
}

// TestConcurrentFaultSeedPerPartition pins that fault injection composes
// with partitioning: each partition gets its own deterministic injector
// derived from the DB seed and the partition index, instead of the old
// behavior of forcing the whole backend serial.
func TestConcurrentFaultSeedPerPartition(t *testing.T) {
	db, err := Open(Options{
		DBPages: 64, PageSize: 64, Dir: t.TempDir(),
		Concurrency: 4, FaultSeed: 42,
	})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer db.Close()
	if db.conc == nil {
		t.Fatal("FaultSeed downgraded the backend to serial")
	}
	if db.Faults() != nil {
		t.Fatal("shared injector present; partitions must have their own")
	}
	seen := make(map[*fault.Injector]bool)
	for i := 0; i < 4; i++ {
		inj := db.PartitionFaults(i)
		if inj == nil {
			t.Fatalf("partition %d: no injector", i)
		}
		if seen[inj] {
			t.Fatalf("partition %d shares an injector", i)
		}
		seen[inj] = true
	}
	if db.PartitionFaults(4) != nil || db.PartitionFaults(-1) != nil {
		t.Fatal("out-of-range PartitionFaults returned an injector")
	}
	// Distinct partitions draw distinct deterministic streams.
	if a, b := fault.DeriveSeed(42, 0), fault.DeriveSeed(42, 1); a == b {
		t.Fatalf("DeriveSeed collision: %d", a)
	}
	if fault.DeriveSeed(42, 3) != fault.DeriveSeed(42, 3) {
		t.Fatal("DeriveSeed not deterministic")
	}
}

// TestConcurrentPartitionFaultRepair pins the satellite contract: a
// fault-seeded 4-partition DB detects injected SSD read errors, degrades
// them to disk traffic, and serves every page correctly throughout.
func TestConcurrentPartitionFaultRepair(t *testing.T) {
	const pages = 64
	db, err := Open(Options{
		DBPages: pages, PageSize: 64, PoolPages: 8, SSDFrames: 32, Design: LC,
		Dir: t.TempDir(), Concurrency: 4, FaultSeed: 0xC0FFEE,
	})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer db.Close()
	for pid := int64(0); pid < pages; pid++ {
		if err := db.Update(pid, func(p []byte) { p[0] = byte(pid + 1) }); err != nil {
			t.Fatalf("Update(%d): %v", pid, err)
		}
	}
	// Arm read errors on every partition's SSD region, then churn reads so
	// the pool evicts to the SSD and trips the injected errors.
	for i := 0; i < 4; i++ {
		inj := db.PartitionFaults(i)
		for k := 0; k < 4; k++ {
			inj.ErrorRead("ssd", k*6+int(inj.Rand()%4))
		}
	}
	buf := make([]byte, 64)
	for round := 0; round < 30; round++ {
		for pid := int64(0); pid < pages; pid++ {
			if _, err := db.Read(pid, buf); err != nil {
				t.Fatalf("Read(%d) round %d: %v", pid, round, err)
			}
			if buf[0] != byte(pid+1) {
				t.Fatalf("Read(%d) round %d: got %#x, want %#x", pid, round, buf[0], byte(pid+1))
			}
		}
	}
	s := db.Stats()
	if s.SSDReadErrors == 0 {
		t.Fatal("no injected SSD read error was tripped; test is vacuous")
	}
	if s.SSDReads == 0 {
		t.Fatal("SSD saw no traffic; test is vacuous")
	}
}

// TestCommitSyncEach pins solo durability mode: one fsync per commit.
func TestCommitSyncEach(t *testing.T) {
	db := openConcurrentDB(t, 64, 2, CommitSyncEach)
	defer db.Close()
	for i := int64(0); i < 10; i++ {
		if err := db.Update(i, func(p []byte) { p[0] = byte(i) }); err != nil {
			t.Fatalf("Update: %v", err)
		}
	}
	s := db.Stats()
	if s.SyncedCommits != 10 || s.WALSyncs != 10 {
		t.Fatalf("each-mode: %d syncs for %d commits, want 10/10", s.WALSyncs, s.SyncedCommits)
	}
	var errClosedCheck error
	if err := db.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if _, errClosedCheck = db.Read(0, make([]byte, 64)); !errors.Is(errClosedCheck, ErrClosed) {
		t.Fatalf("Read after Close: %v, want ErrClosed", errClosedCheck)
	}
}
