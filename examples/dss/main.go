// DSS admission policy in action: a decision-support mix of table scans
// and random index lookups, showing that the SSD manager caches only the
// randomly-accessed pages — the scans flow past the cache — exactly the
// behaviour §2.2 of the paper designs for.
package main

import (
	"fmt"

	"turbobp"
)

const (
	dbPages   = 8192
	poolPages = 512
	ssdFrames = 2048
)

func main() {
	db, err := turbobp.Open(turbobp.Options{
		Design:    turbobp.DW,
		DBPages:   dbPages,
		PoolPages: poolPages,
		SSDFrames: ssdFrames,
		PageSize:  128,
		// Skip aggressive filling so the admission policy is visible from
		// the first access.
		FillThreshold: 0.01,
	})
	if err != nil {
		panic(err)
	}
	defer db.Close()

	// "LINEITEM" occupies the first 5120 pages; an index region follows.
	const lineitem = 5120

	// Phase 1: a full table scan (sequential, read-ahead driven).
	if err := db.Scan(0, lineitem, nil); err != nil {
		panic(err)
	}
	// Push the scan's pages back out of memory with a second sweep.
	if err := db.Scan(0, lineitem, nil); err != nil {
		panic(err)
	}
	s := db.Stats()
	fmt.Printf("after scans:   %5d pages in SSD (sequential reads are not admitted)\n", s.SSDOccupied)

	// Phase 2: random index lookups into the same table.
	buf := make([]byte, 16)
	for i := 0; i < 4000; i++ {
		pid := int64(i*2654435761) % lineitem
		if pid < 0 {
			pid += lineitem
		}
		if _, err := db.Read(pid, buf); err != nil {
			panic(err)
		}
	}
	s = db.Stats()
	fmt.Printf("after lookups: %5d pages in SSD (random reads are cached)\n", s.SSDOccupied)

	// Phase 3: re-scan — the multi-page read path trims pages now cached
	// in the SSD from its disk requests (§3.3.3), and re-run the lookups,
	// which now hit the SSD.
	before := db.Stats()
	if err := db.Scan(0, lineitem, nil); err != nil {
		panic(err)
	}
	for i := 0; i < 4000; i++ {
		pid := int64(i*2654435761) % lineitem
		if pid < 0 {
			pid += lineitem
		}
		if _, err := db.Read(pid, buf); err != nil {
			panic(err)
		}
	}
	s = db.Stats()
	fmt.Printf("second round:  %5d SSD hits, %5d disk reads (was %d disk reads in round one)\n",
		s.SSDHits-before.SSDHits, s.DiskReads-before.DiskReads, before.DiskReads)
}
