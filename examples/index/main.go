// Index example: a heap file of records with a B+-tree index over a
// turbobp.DB, demonstrating the access-method layer — and the §4.2
// observation that TAC never caches pages created on the fly (B+-tree
// splits), while the eviction-time designs (DW/LC) do.
package main

import (
	"encoding/binary"
	"fmt"
	"log"

	"turbobp"
	"turbobp/btree"
	"turbobp/heapfile"
)

func main() {
	for _, design := range []turbobp.Design{turbobp.DW, turbobp.TAC} {
		run(design)
	}
}

func run(design turbobp.Design) {
	db, err := turbobp.Open(turbobp.Options{
		Design:    design,
		DBPages:   8192,
		PoolPages: 64, // small pool so index pages churn through the SSD tier
		SSDFrames: 4096,
		PageSize:  128,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	table, err := heapfile.Create(db)
	if err != nil {
		log.Fatal(err)
	}
	index, err := btree.Create(db)
	if err != nil {
		log.Fatal(err)
	}

	// Load 3,000 rows: record into the heap file, key into the index.
	firstIndexPage := db.Allocated()
	for key := int64(0); key < 3000; key++ {
		rec := make([]byte, 24)
		binary.LittleEndian.PutUint64(rec, uint64(key))
		copy(rec[8:], fmt.Sprintf("row %d", key))
		rid, err := table.Insert(rec)
		if err != nil {
			log.Fatal(err)
		}
		// Value encodes the RID (page number is enough here).
		if err := index.Insert(key, rid.Page); err != nil {
			log.Fatal(err)
		}
	}
	splits, _ := index.Splits()
	height, _ := index.Height()
	lastPage := db.Allocated()

	// Point lookups through the index: key -> heap page -> record.
	for k := int64(0); k < 3000; k += 7 {
		pageID, err := index.Search(k)
		if err != nil {
			log.Fatal(err)
		}
		if pageID < 0 {
			log.Fatal("bad rid")
		}
	}

	// How many of the pages born from splits made it into the SSD?
	cached := 0
	total := 0
	for pid := firstIndexPage; pid < lastPage; pid++ {
		total++
		if pageInSSD(db, pid) {
			cached++
		}
	}
	s := db.Stats()
	fmt.Printf("%-5s: height %d, %3d splits; %3d/%3d split-born pages in SSD; ssd hits %d\n",
		design, height, splits, cached, total, s.SSDHits)
}

// pageInSSD probes the cache: an SSD-resident page serves the read without
// touching the disks.
func pageInSSD(db *turbobp.DB, pid int64) bool {
	before := db.Stats()
	if _, err := db.Read(pid, make([]byte, 8)); err != nil {
		log.Fatal(err)
	}
	after := db.Stats()
	return after.SSDHits > before.SSDHits
}
