// OLTP design shoot-out: run the same skewed, update-intensive workload
// (the access-pattern essentials of TPC-C) against every SSD design on the
// simulated paper hardware, and compare throughput — a miniature of the
// paper's Figure 5(a-c).
package main

import (
	"fmt"
	"math/rand"

	"turbobp"
)

const (
	dbPages   = 16384 // "200 GB" at toy scale
	poolPages = 1024  // "20 GB"
	ssdFrames = 8192  // "140 GB"
	txCount   = 3000
)

func main() {
	fmt.Println("update-intensive skewed OLTP, identical workload per design")
	fmt.Printf("%-6s %14s %12s %12s %12s\n", "design", "virtual time", "ssd hits", "disk reads", "disk writes")
	var base float64
	for _, design := range []turbobp.Design{turbobp.NoSSD, turbobp.CW, turbobp.DW, turbobp.LC, turbobp.TAC} {
		elapsed, stats := run(design)
		if design == turbobp.NoSSD {
			base = elapsed
		}
		fmt.Printf("%-6s %12.2fs %12d %12d %12d   (%.1fX speedup)\n",
			design, elapsed, stats.SSDHits, stats.DiskReads, stats.DiskWrites, base/elapsed)
	}
}

// run executes the fixed workload under one design and returns the virtual
// time it took (simulated backend: devices are the paper's calibrated
// models, so time measures I/O cost) plus counters.
func run(design turbobp.Design) (float64, turbobp.Stats) {
	db, err := turbobp.Open(turbobp.Options{
		Design:    design,
		DBPages:   dbPages,
		PoolPages: poolPages,
		SSDFrames: ssdFrames,
		PageSize:  128,
	})
	if err != nil {
		panic(err)
	}
	defer db.Close()

	rng := rand.New(rand.NewSource(42))
	hot := int64(dbPages / 5)
	pick := func() int64 {
		if rng.Float64() < 0.75 { // 75% of accesses to 20% of pages
			return rng.Int63n(hot)
		}
		return hot + rng.Int63n(dbPages-hot)
	}

	for t := 0; t < txCount; t++ {
		tx := db.Begin()
		for a := 0; a < 8; a++ {
			pid := pick()
			if rng.Intn(3) == 0 { // one write per two reads
				if err := tx.Update(pid, func(pl []byte) { pl[0]++ }); err != nil {
					panic(err)
				}
			} else if _, err := tx.Read(pid, make([]byte, 8)); err != nil {
				panic(err)
			}
		}
		if err := tx.Commit(); err != nil {
			panic(err)
		}
	}
	s := db.Stats()
	return s.VirtualTime.Seconds(), s
}
