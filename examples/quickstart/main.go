// Quickstart: open a file-backed database with a lazy-cleaning (LC) SSD
// buffer-pool extension, write and read some pages, and look at the cache
// counters.
package main

import (
	"fmt"
	"log"
	"os"

	"turbobp"
)

func main() {
	dir, err := os.MkdirTemp("", "turbobp-quickstart")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	db, err := turbobp.Open(turbobp.Options{
		Design:    turbobp.LC, // write-back SSD caching, the paper's winner
		Dir:       dir,        // file backend: db.pages / ssd.pages / wal.log
		DBPages:   4096,
		PoolPages: 64,  // small on purpose, so the SSD tier matters
		SSDFrames: 512, // the "140 GB SSD" of this toy deployment
		PageSize:  256,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	// Write a few hundred pages through transactions.
	for i := int64(0); i < 400; i++ {
		i := i
		err := db.Update(i, func(payload []byte) {
			copy(payload, fmt.Sprintf("row data for page %d", i))
		})
		if err != nil {
			log.Fatal(err)
		}
	}

	// Read them back twice: the first pass misses to storage, the second
	// finds most pages in the memory pool or the SSD cache.
	buf := make([]byte, 256)
	for pass := 1; pass <= 2; pass++ {
		for i := int64(0); i < 400; i++ {
			if _, err := db.Read(i, buf); err != nil {
				log.Fatal(err)
			}
		}
		s := db.Stats()
		fmt.Printf("pass %d: pool hits %d, SSD hits %d, disk reads %d\n",
			pass, s.PoolHits, s.SSDHits, s.DiskReads)
	}

	s := db.Stats()
	fmt.Printf("\nSSD cache: %d pages cached, %d dirty (write-back pending)\n",
		s.SSDOccupied, s.SSDDirty)
	fmt.Println("checkpointing to flush the write-back cache...")
	if err := db.Checkpoint(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after checkpoint: %d dirty SSD pages\n", db.Stats().SSDDirty)
}
