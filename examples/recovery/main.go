// Write-back crash safety: the lazy-cleaning (LC) design keeps the newest
// version of dirty pages only on the SSD, which is discarded at restart —
// so the checkpoint/recovery protocol (§2.3.3, §3.2) is what makes it
// safe. This example commits work, crashes at the worst moment, recovers
// from the write-ahead log, and verifies nothing was lost. It then goes one
// failure further: the SSD itself dies mid-workload (injected via the fault
// layer, docs/FAILURES.md), and the engine rebuilds the uniquely-dirty SSD
// pages from the WAL without losing a single committed update. Act three is
// quieter but nastier: silent bit rot — wrong bytes with no I/O error — in
// SSD frames, caught by checksum verification and healed proactively by the
// background scrubber (Options.ScrubInterval) before any query reads them.
package main

import (
	"fmt"
	"log"
	"time"

	"turbobp"
)

func main() {
	db, err := turbobp.Open(turbobp.Options{
		Design:        turbobp.LC,
		DBPages:       2048,
		PoolPages:     32, // tiny pool: dirty pages spill to the SSD constantly
		SSDFrames:     512,
		PageSize:      64,
		DirtyFraction: 0.9,      // lazy: dirty pages linger on the SSD
		FaultSeed:     0xBADD15, // arm the fault layer for the failure acts
		ScrubInterval: 50 * time.Millisecond,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	// Commit 500 account updates.
	for i := int64(0); i < 500; i++ {
		i := i
		err := db.Update(i%200, func(pl []byte) {
			pl[0] = byte(i)
			pl[1]++ // per-page update counter
		})
		if err != nil {
			log.Fatal(err)
		}
	}
	s := db.Stats()
	fmt.Printf("before crash: %d committed updates, %d dirty pages on the SSD only\n",
		s.Commits, s.SSDDirty)

	// Take a mid-workload checkpoint (flushes memory AND SSD dirty pages).
	if err := db.Checkpoint(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("checkpoint done: %d dirty SSD pages remain\n", db.Stats().SSDDirty)

	// More committed work after the checkpoint...
	for i := int64(500); i < 700; i++ {
		i := i
		if err := db.Update(i%200, func(pl []byte) { pl[0] = byte(i); pl[1]++ }); err != nil {
			log.Fatal(err)
		}
	}

	// ...and then the power fails: memory and the SSD cache are gone.
	fmt.Println("CRASH (memory and SSD cache lost; disks and log survive)")
	if err := db.Crash(); err != nil {
		log.Fatal(err)
	}
	if err := db.Recover(); err != nil {
		log.Fatal(err)
	}

	// Every committed update must be back: page p was updated by every i
	// with i%200 == p, so its counter is the number of such i in [0,700).
	buf := make([]byte, 2)
	bad := 0
	for p := int64(0); p < 200; p++ {
		if _, err := db.Read(p, buf); err != nil {
			log.Fatal(err)
		}
		want := byte(700 / 200)
		if p < 700%200 {
			want++
		}
		if buf[1] != want {
			bad++
		}
	}
	if bad == 0 {
		fmt.Println("recovery verified: all 700 committed updates intact")
	} else {
		fmt.Printf("DATA LOSS on %d pages\n", bad)
	}

	// Act two: the SSD hardware itself fails while the engine is running.
	// More committed work first, so the SSD again holds uniquely-dirty pages.
	for i := int64(700); i < 900; i++ {
		i := i
		if err := db.Update(i%200, func(pl []byte) { pl[0] = byte(i); pl[1]++ }); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("before SSD loss: %d dirty pages live only on the SSD\n", db.Stats().SSDDirty)
	if err := db.FailSSD(); err != nil {
		log.Fatal(err)
	}
	// Keep working: the engine hits the dead device, swaps in a replacement,
	// and redoes the lost dirty pages from the WAL — all inside these calls.
	for i := int64(900); i < 1000; i++ {
		i := i
		if err := db.Update(i%200, func(pl []byte) { pl[0] = byte(i); pl[1]++ }); err != nil {
			log.Fatal(err)
		}
	}
	s = db.Stats()
	fmt.Printf("SSD LOST and replaced: losses=%d, %d WAL records redone for the lost dirty pages\n",
		s.SSDLosses, s.SSDRedoRecords)

	bad = 0
	for p := int64(0); p < 200; p++ {
		if _, err := db.Read(p, buf); err != nil {
			log.Fatal(err)
		}
		want := byte(1000 / 200)
		if buf[1] != want {
			bad++
		}
	}
	if bad == 0 {
		fmt.Println("SSD-loss recovery verified: all 1000 committed updates intact")
	} else {
		fmt.Printf("DATA LOSS on %d pages after SSD failure\n", bad)
	}

	// Act three: silent bit rot. A wearing cell flips one bit in three SSD
	// frames — the device reports no error, the bytes are simply wrong.
	// Every frame carries a CRC-32C + page-id + LSN header, so the rot
	// cannot be served; and the background scrubber sweeps resident frames
	// between queries, healing clean frames in place from the disk copy and
	// rebuilding dirty ones (the only up-to-date copy) through WAL redo.
	for i := int64(1000); i < 1200; i++ {
		i := i
		if err := db.Update(i%200, func(pl []byte) { pl[0] = byte(i); pl[1]++ }); err != nil {
			log.Fatal(err)
		}
	}
	inj := db.Faults()
	// Decay the cell under the next upcoming SSD read. The scrubber is the
	// only SSD reader during the quiet periods below, so the rot lands on
	// occupied frames mid-sweep. The frames are dirty (LC keeps the newest
	// version only on the SSD), so the page is rebuilt through WAL redo.
	inj.RotOnRead("ssd", inj.Reads("ssd")+1)
	fmt.Println("BIT ROT in a dirty SSD frame (no I/O error — just wrong bytes)")
	if err := db.Idle(2 * time.Second); err != nil { // quiet period: scrubber sweeps
		log.Fatal(err)
	}
	// Checkpoint so the SSD frames turn clean, then rot two more cells: now
	// the disk copy is current and the scrubber rewrites the frames in place.
	if err := db.Checkpoint(); err != nil {
		log.Fatal(err)
	}
	for _, k := range []int{1, 25} {
		inj.RotOnRead("ssd", inj.Reads("ssd")+k)
	}
	fmt.Println("BIT ROT in 2 clean SSD frames")
	if err := db.Idle(2 * time.Second); err != nil {
		log.Fatal(err)
	}
	s = db.Stats()
	fmt.Printf("scrubber: %d sweeps over %d frames — %d corrupt found, %d healed (%d rewritten in place, %d redone from WAL)\n",
		s.ScrubSweeps, s.ScrubFrames, s.CorruptDetected, s.CorruptRepaired, s.ScrubRepairs, s.CorruptRedo)

	bad = 0
	for p := int64(0); p < 200; p++ {
		if _, err := db.Read(p, buf); err != nil {
			log.Fatal(err)
		}
		if buf[1] != byte(1200/200) {
			bad++
		}
	}
	if bad == 0 {
		fmt.Println("bit-rot defense verified: all 1200 committed updates intact")
	} else {
		fmt.Printf("WRONG ANSWERS on %d pages after bit rot\n", bad)
	}
}
