// Write-back crash safety: the lazy-cleaning (LC) design keeps the newest
// version of dirty pages only on the SSD, which is discarded at restart —
// so the checkpoint/recovery protocol (§2.3.3, §3.2) is what makes it
// safe. This example commits work, crashes at the worst moment, recovers
// from the write-ahead log, and verifies nothing was lost.
package main

import (
	"fmt"
	"log"

	"turbobp"
)

func main() {
	db, err := turbobp.Open(turbobp.Options{
		Design:        turbobp.LC,
		DBPages:       2048,
		PoolPages:     32, // tiny pool: dirty pages spill to the SSD constantly
		SSDFrames:     512,
		PageSize:      64,
		DirtyFraction: 0.9, // lazy: dirty pages linger on the SSD
	})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	// Commit 500 account updates.
	for i := int64(0); i < 500; i++ {
		i := i
		err := db.Update(i%200, func(pl []byte) {
			pl[0] = byte(i)
			pl[1]++ // per-page update counter
		})
		if err != nil {
			log.Fatal(err)
		}
	}
	s := db.Stats()
	fmt.Printf("before crash: %d committed updates, %d dirty pages on the SSD only\n",
		s.Commits, s.SSDDirty)

	// Take a mid-workload checkpoint (flushes memory AND SSD dirty pages).
	if err := db.Checkpoint(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("checkpoint done: %d dirty SSD pages remain\n", db.Stats().SSDDirty)

	// More committed work after the checkpoint...
	for i := int64(500); i < 700; i++ {
		i := i
		if err := db.Update(i%200, func(pl []byte) { pl[0] = byte(i); pl[1]++ }); err != nil {
			log.Fatal(err)
		}
	}

	// ...and then the power fails: memory and the SSD cache are gone.
	fmt.Println("CRASH (memory and SSD cache lost; disks and log survive)")
	if err := db.Crash(); err != nil {
		log.Fatal(err)
	}
	if err := db.Recover(); err != nil {
		log.Fatal(err)
	}

	// Every committed update must be back: page p was updated by every i
	// with i%200 == p, so its counter is the number of such i in [0,700).
	buf := make([]byte, 2)
	bad := 0
	for p := int64(0); p < 200; p++ {
		if _, err := db.Read(p, buf); err != nil {
			log.Fatal(err)
		}
		want := byte(700 / 200)
		if p < 700%200 {
			want++
		}
		if buf[1] != want {
			bad++
		}
	}
	if bad == 0 {
		fmt.Println("recovery verified: all 700 committed updates intact")
	} else {
		fmt.Printf("DATA LOSS on %d pages\n", bad)
	}
}
