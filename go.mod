module turbobp

go 1.22
