package heapfile_test

import (
	"fmt"

	"turbobp"
	"turbobp/heapfile"
)

// Example stores a few records in a heapfile backed by the simulated
// SSD-extended buffer pool, reads one back by RID, overwrites it in place,
// and scans the survivors after a delete.
func Example() {
	db, err := turbobp.Open(turbobp.Options{
		Design: turbobp.LC, DBPages: 512, PoolPages: 32, SSDFrames: 128, PageSize: 128,
	})
	if err != nil {
		panic(err)
	}
	defer db.Close()

	hf, err := heapfile.Create(db)
	if err != nil {
		panic(err)
	}

	rids := make([]heapfile.RID, 3)
	for i, rec := range []string{"alpha", "beta", "gamma"} {
		rid, err := hf.Insert([]byte(rec))
		if err != nil {
			panic(err)
		}
		rids[i] = rid
	}

	got, err := hf.Get(rids[1])
	if err != nil {
		panic(err)
	}
	fmt.Println("rid[1] ->", string(got))

	if err := hf.UpdateRecord(rids[1], []byte("BETA")); err != nil {
		panic(err)
	}
	if err := hf.Delete(rids[0]); err != nil {
		panic(err)
	}

	n, _ := hf.Count()
	fmt.Println("live records:", n)
	if err := hf.Scan(func(rid heapfile.RID, rec []byte) error {
		fmt.Println("scan:", string(rec))
		return nil
	}); err != nil {
		panic(err)
	}
	// Output:
	// rid[1] -> beta
	// live records: 2
	// scan: BETA
	// scan: gamma
}

// ExampleOpen reattaches to a heapfile by its meta page id and sees the
// previously inserted records.
func ExampleOpen() {
	db, err := turbobp.Open(turbobp.Options{
		Design: turbobp.DW, DBPages: 512, PoolPages: 32, SSDFrames: 128, PageSize: 128,
	})
	if err != nil {
		panic(err)
	}
	defer db.Close()

	hf, _ := heapfile.Create(db)
	meta := hf.Meta()
	rid, _ := hf.Insert([]byte("persistent"))

	again, err := heapfile.Open(db, meta)
	if err != nil {
		panic(err)
	}
	rec, _ := again.Get(rid)
	fmt.Println(string(rec))
	// Output:
	// persistent
}
