// Package heapfile implements slotted-page record storage over a
// storage.Store: variable-length records addressed by RID (page, slot),
// the classic DBMS heap file that table data lives in. Together with
// package btree it forms the access-method layer above the SSD-extended
// buffer pool. Any Store works: a turbobp.DB (file-backed or simulated)
// or the internal engine adapters that run the same scan and insert code
// inside a discrete-event experiment (`bpesim index`).
//
// Layout. Each heap page's payload is:
//
//	offset  size  field
//	0       8     next heap page id (+1; 0 = none)
//	8       2     slot count
//	10      2     data start (records grow down from the payload end)
//	12      4·n   slot directory: {record offset (2), record length (2)}
//
// Deleted records leave a tombstone slot (length 0); space is reclaimed
// only page-locally when the deleted record was the lowest one.
//
// # Concurrency
//
// A File holds no locks of its own: it must not be used concurrently
// with itself. The Store beneath it may be shared — a turbobp.DB is safe
// for concurrent use, so two Files over distinct meta pages, each driven
// from its own goroutine, are independent. Two goroutines inside the
// same File race on the meta page's last-page/count fields.
//
// # Crash recovery
//
// Every page write is one atomic Store.Update, ordered data page first,
// meta page (last-page pointer, record count) second. Against a
// turbobp.DB outside an explicit transaction each Update is its own
// committed transaction, so a crash replays a prefix: a torn Insert can
// leave the record bytes on their heap page with a stale meta count (the
// record is then invisible to Count but reachable by Scan), or a freshly
// chained page that holds no records yet — never a dangling chain link
// to an unallocated page, because the new page is initialised before the
// chain is extended. Committing a batch (Store.Commit, or turbobp.Tx)
// makes it durable atomically.
package heapfile

import (
	"encoding/binary"
	"errors"
	"fmt"

	"turbobp/storage"
)

const (
	pageHeader = 12
	slotSize   = 4
	metaMagic  = 0x48454150 // "HEAP"
)

// RID addresses one record.
type RID struct {
	Page int64
	Slot int
}

// String formats the RID.
func (r RID) String() string { return fmt.Sprintf("(%d,%d)", r.Page, r.Slot) }

// ErrNotFound is returned for missing or deleted records.
var ErrNotFound = errors.New("heapfile: record not found")

// ErrTooLarge is returned when a record cannot fit in any page.
var ErrTooLarge = errors.New("heapfile: record too large for the page size")

// File is an open heap file.
type File struct {
	db   storage.Store
	meta int64 // metadata page id
}

// meta page payload: magic(4) first(8) last(8) count(8)

// Create allocates a new heap file in db and returns it; Meta() identifies
// it for reopening.
func Create(db storage.Store) (*File, error) {
	if db.PageSize() < pageHeader+slotSize+8 {
		return nil, fmt.Errorf("heapfile: page size %d too small", db.PageSize())
	}
	metaPid, err := db.AllocPage()
	if err != nil {
		return nil, err
	}
	firstPid, err := db.AllocPage()
	if err != nil {
		return nil, err
	}
	if err := db.Update(metaPid, func(pl []byte) {
		binary.LittleEndian.PutUint32(pl[0:4], metaMagic)
		binary.LittleEndian.PutUint64(pl[4:12], uint64(firstPid+1))
		binary.LittleEndian.PutUint64(pl[12:20], uint64(firstPid+1))
		binary.LittleEndian.PutUint64(pl[20:28], 0)
	}); err != nil {
		return nil, err
	}
	if err := db.Update(firstPid, initHeapPage); err != nil {
		return nil, err
	}
	return &File{db: db, meta: metaPid}, nil
}

// Open reopens the heap file whose Meta() is metaPid.
func Open(db storage.Store, metaPid int64) (*File, error) {
	buf := make([]byte, db.PageSize())
	if _, err := db.Read(metaPid, buf); err != nil {
		return nil, err
	}
	if binary.LittleEndian.Uint32(buf[0:4]) != metaMagic {
		return nil, fmt.Errorf("heapfile: page %d is not a heap file", metaPid)
	}
	return &File{db: db, meta: metaPid}, nil
}

// Meta returns the metadata page id used by Open.
func (f *File) Meta() int64 { return f.meta }

func initHeapPage(pl []byte) {
	binary.LittleEndian.PutUint64(pl[0:8], 0)                 // no next
	binary.LittleEndian.PutUint16(pl[8:10], 0)                // no slots
	binary.LittleEndian.PutUint16(pl[10:12], uint16(len(pl))) // data start at end
}

func (f *File) readMeta() (first, last int64, count uint64, err error) {
	buf := make([]byte, f.db.PageSize())
	if _, err = f.db.Read(f.meta, buf); err != nil {
		return
	}
	first = int64(binary.LittleEndian.Uint64(buf[4:12])) - 1
	last = int64(binary.LittleEndian.Uint64(buf[12:20])) - 1
	count = binary.LittleEndian.Uint64(buf[20:28])
	return
}

// Count returns the number of live records.
func (f *File) Count() (uint64, error) {
	_, _, n, err := f.readMeta()
	return n, err
}

// freeIn reports the insertable bytes of an encoded heap page.
func freeIn(pl []byte) int {
	nslots := int(binary.LittleEndian.Uint16(pl[8:10]))
	dataStart := int(binary.LittleEndian.Uint16(pl[10:12]))
	return dataStart - (pageHeader + nslots*slotSize) - slotSize
}

// Insert appends rec and returns its RID.
func (f *File) Insert(rec []byte) (RID, error) {
	maxRec := f.db.PageSize() - pageHeader - slotSize
	if len(rec) > maxRec {
		return RID{}, fmt.Errorf("%w: %d > %d", ErrTooLarge, len(rec), maxRec)
	}
	_, last, count, err := f.readMeta()
	if err != nil {
		return RID{}, err
	}
	// Try the last page; grow the chain if it cannot fit the record.
	buf := make([]byte, f.db.PageSize())
	if _, err := f.db.Read(last, buf); err != nil {
		return RID{}, err
	}
	target := last
	if freeIn(buf) < len(rec) {
		newPid, err := f.db.AllocPage()
		if err != nil {
			return RID{}, err
		}
		if err := f.db.Update(newPid, initHeapPage); err != nil {
			return RID{}, err
		}
		if err := f.db.Update(last, func(pl []byte) {
			binary.LittleEndian.PutUint64(pl[0:8], uint64(newPid+1))
		}); err != nil {
			return RID{}, err
		}
		target = newPid
	}
	var slot int
	if err := f.db.Update(target, func(pl []byte) {
		nslots := int(binary.LittleEndian.Uint16(pl[8:10]))
		dataStart := int(binary.LittleEndian.Uint16(pl[10:12]))
		dataStart -= len(rec)
		copy(pl[dataStart:], rec)
		slotOff := pageHeader + nslots*slotSize
		binary.LittleEndian.PutUint16(pl[slotOff:], uint16(dataStart))
		binary.LittleEndian.PutUint16(pl[slotOff+2:], uint16(len(rec)))
		binary.LittleEndian.PutUint16(pl[8:10], uint16(nslots+1))
		binary.LittleEndian.PutUint16(pl[10:12], uint16(dataStart))
		slot = nslots
	}); err != nil {
		return RID{}, err
	}
	if err := f.db.Update(f.meta, func(pl []byte) {
		binary.LittleEndian.PutUint64(pl[12:20], uint64(target+1))
		binary.LittleEndian.PutUint64(pl[20:28], count+1)
	}); err != nil {
		return RID{}, err
	}
	return RID{Page: target, Slot: slot}, nil
}

// slotAt decodes slot s of an encoded page.
func slotAt(pl []byte, s int) (off, length int, ok bool) {
	nslots := int(binary.LittleEndian.Uint16(pl[8:10]))
	if s < 0 || s >= nslots {
		return 0, 0, false
	}
	base := pageHeader + s*slotSize
	return int(binary.LittleEndian.Uint16(pl[base:])),
		int(binary.LittleEndian.Uint16(pl[base+2:])), true
}

// Get returns a copy of the record at rid.
func (f *File) Get(rid RID) ([]byte, error) {
	buf := make([]byte, f.db.PageSize())
	if _, err := f.db.Read(rid.Page, buf); err != nil {
		return nil, err
	}
	off, length, ok := slotAt(buf, rid.Slot)
	if !ok || length == 0 {
		return nil, fmt.Errorf("%w: %v", ErrNotFound, rid)
	}
	return append([]byte(nil), buf[off:off+length]...), nil
}

// Delete tombstones the record at rid.
func (f *File) Delete(rid RID) error {
	found := false
	if err := f.db.Update(rid.Page, func(pl []byte) {
		base := pageHeader + rid.Slot*slotSize
		nslots := int(binary.LittleEndian.Uint16(pl[8:10]))
		if rid.Slot < 0 || rid.Slot >= nslots {
			return
		}
		if binary.LittleEndian.Uint16(pl[base+2:]) == 0 {
			return
		}
		off := int(binary.LittleEndian.Uint16(pl[base:]))
		length := int(binary.LittleEndian.Uint16(pl[base+2:]))
		binary.LittleEndian.PutUint16(pl[base+2:], 0)
		// Reclaim space when this was the lowest record on the page.
		dataStart := int(binary.LittleEndian.Uint16(pl[10:12]))
		if off == dataStart {
			binary.LittleEndian.PutUint16(pl[10:12], uint16(dataStart+length))
		}
		found = true
	}); err != nil {
		return err
	}
	if !found {
		return fmt.Errorf("%w: %v", ErrNotFound, rid)
	}
	return f.db.Update(f.meta, func(pl []byte) {
		count := binary.LittleEndian.Uint64(pl[20:28])
		binary.LittleEndian.PutUint64(pl[20:28], count-1)
	})
}

// UpdateRecord overwrites the record at rid in place; the new record must
// not be longer than the existing one.
func (f *File) UpdateRecord(rid RID, rec []byte) error {
	var fail error
	found := false
	if err := f.db.Update(rid.Page, func(pl []byte) {
		off, length, ok := slotAt(pl, rid.Slot)
		if !ok || length == 0 {
			return
		}
		if len(rec) > length {
			fail = fmt.Errorf("heapfile: in-place update of %d bytes over a %d-byte record", len(rec), length)
			return
		}
		copy(pl[off:off+length], make([]byte, length))
		copy(pl[off:], rec)
		base := pageHeader + rid.Slot*slotSize
		binary.LittleEndian.PutUint16(pl[base+2:], uint16(len(rec)))
		found = true
	}); err != nil {
		return err
	}
	if fail != nil {
		return fail
	}
	if !found {
		return fmt.Errorf("%w: %v", ErrNotFound, rid)
	}
	return nil
}

// Scan visits every live record in file order. Returning an error from fn
// stops the scan and propagates the error.
func (f *File) Scan(fn func(rid RID, rec []byte) error) error {
	first, _, _, err := f.readMeta()
	if err != nil {
		return err
	}
	buf := make([]byte, f.db.PageSize())
	for pid := first; pid >= 0; {
		if _, err := f.db.Read(pid, buf); err != nil {
			return err
		}
		nslots := int(binary.LittleEndian.Uint16(buf[8:10]))
		for s := 0; s < nslots; s++ {
			off, length, _ := slotAt(buf, s)
			if length == 0 {
				continue
			}
			if err := fn(RID{Page: pid, Slot: s}, buf[off:off+length]); err != nil {
				return err
			}
		}
		pid = int64(binary.LittleEndian.Uint64(buf[0:8])) - 1
	}
	return nil
}
