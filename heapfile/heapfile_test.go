package heapfile

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"turbobp"
)

func openDB(t *testing.T) *turbobp.DB {
	t.Helper()
	db, err := turbobp.Open(turbobp.Options{
		Design: turbobp.LC, DBPages: 1024, PoolPages: 32, SSDFrames: 128, PageSize: 128,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return db
}

func TestCreateInsertGet(t *testing.T) {
	db := openDB(t)
	f, err := Create(db)
	if err != nil {
		t.Fatal(err)
	}
	rid, err := f.Insert([]byte("hello heap"))
	if err != nil {
		t.Fatal(err)
	}
	got, err := f.Get(rid)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "hello heap" {
		t.Errorf("got %q", got)
	}
	n, _ := f.Count()
	if n != 1 {
		t.Errorf("Count = %d", n)
	}
}

func TestInsertSpillsAcrossPages(t *testing.T) {
	db := openDB(t)
	f, err := Create(db)
	if err != nil {
		t.Fatal(err)
	}
	rec := bytes.Repeat([]byte{7}, 100) // ~1 per 128-byte page
	var rids []RID
	for i := 0; i < 20; i++ {
		rid, err := f.Insert(rec)
		if err != nil {
			t.Fatal(err)
		}
		rids = append(rids, rid)
	}
	pages := map[int64]bool{}
	for _, r := range rids {
		pages[r.Page] = true
	}
	if len(pages) < 10 {
		t.Errorf("20 big records landed on %d pages", len(pages))
	}
	for i, r := range rids {
		got, err := f.Get(r)
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if !bytes.Equal(got, rec) {
			t.Fatalf("record %d corrupted", i)
		}
	}
}

func TestRecordTooLarge(t *testing.T) {
	db := openDB(t)
	f, _ := Create(db)
	if _, err := f.Insert(make([]byte, 128)); !errors.Is(err, ErrTooLarge) {
		t.Errorf("err = %v", err)
	}
}

func TestDelete(t *testing.T) {
	db := openDB(t)
	f, _ := Create(db)
	rid, _ := f.Insert([]byte("doomed"))
	keep, _ := f.Insert([]byte("kept"))
	if err := f.Delete(rid); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Get(rid); !errors.Is(err, ErrNotFound) {
		t.Errorf("Get deleted = %v", err)
	}
	if err := f.Delete(rid); !errors.Is(err, ErrNotFound) {
		t.Errorf("double delete = %v", err)
	}
	got, err := f.Get(keep)
	if err != nil || string(got) != "kept" {
		t.Errorf("neighbour damaged: %q %v", got, err)
	}
	n, _ := f.Count()
	if n != 1 {
		t.Errorf("Count = %d", n)
	}
}

func TestUpdateRecordInPlace(t *testing.T) {
	db := openDB(t)
	f, _ := Create(db)
	rid, _ := f.Insert([]byte("0123456789"))
	if err := f.UpdateRecord(rid, []byte("abc")); err != nil {
		t.Fatal(err)
	}
	got, _ := f.Get(rid)
	if string(got) != "abc" {
		t.Errorf("got %q", got)
	}
	if err := f.UpdateRecord(rid, make([]byte, 50)); err == nil {
		t.Error("oversized in-place update accepted")
	}
}

func TestScanOrderAndSkipsDeleted(t *testing.T) {
	db := openDB(t)
	f, _ := Create(db)
	var rids []RID
	for i := 0; i < 30; i++ {
		rid, err := f.Insert([]byte(fmt.Sprintf("rec-%02d", i)))
		if err != nil {
			t.Fatal(err)
		}
		rids = append(rids, rid)
	}
	f.Delete(rids[3])
	f.Delete(rids[17])
	var seen []string
	err := f.Scan(func(_ RID, rec []byte) error {
		seen = append(seen, string(rec))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != 28 {
		t.Fatalf("scanned %d records, want 28", len(seen))
	}
	if seen[0] != "rec-00" || seen[2] != "rec-02" || seen[3] != "rec-04" {
		t.Errorf("scan order wrong: %v", seen[:5])
	}
}

func TestScanEarlyStop(t *testing.T) {
	db := openDB(t)
	f, _ := Create(db)
	for i := 0; i < 10; i++ {
		f.Insert([]byte{byte(i)})
	}
	boom := errors.New("stop")
	n := 0
	err := f.Scan(func(RID, []byte) error {
		n++
		if n == 3 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) || n != 3 {
		t.Errorf("err=%v n=%d", err, n)
	}
}

func TestOpenExisting(t *testing.T) {
	db := openDB(t)
	f, _ := Create(db)
	rid, _ := f.Insert([]byte("persisted"))
	f2, err := Open(db, f.Meta())
	if err != nil {
		t.Fatal(err)
	}
	got, err := f2.Get(rid)
	if err != nil || string(got) != "persisted" {
		t.Errorf("got %q, %v", got, err)
	}
	if _, err := Open(db, rid.Page); err == nil {
		t.Error("Open on a non-meta page succeeded")
	}
}

func TestSurvivesCrashRecovery(t *testing.T) {
	db := openDB(t)
	f, _ := Create(db)
	var rids []RID
	for i := 0; i < 25; i++ {
		rid, err := f.Insert([]byte(fmt.Sprintf("durable-%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		rids = append(rids, rid)
	}
	alloc := db.Allocated()
	if err := db.Crash(); err != nil {
		t.Fatal(err)
	}
	if err := db.Recover(); err != nil {
		t.Fatal(err)
	}
	db.SetAllocated(alloc)
	f2, err := Open(db, f.Meta())
	if err != nil {
		t.Fatal(err)
	}
	for i, rid := range rids {
		got, err := f2.Get(rid)
		if err != nil {
			t.Fatalf("record %d lost: %v", i, err)
		}
		if string(got) != fmt.Sprintf("durable-%d", i) {
			t.Fatalf("record %d corrupted: %q", i, got)
		}
	}
}

// Property: a random interleaving of inserts, deletes and updates matches
// a shadow map exactly (contents, Count and Scan set).
func TestShadowModelProperty(t *testing.T) {
	type op struct {
		Kind uint8
		Idx  uint8
		Len  uint8
	}
	prop := func(ops []op) bool {
		if len(ops) > 120 {
			ops = ops[:120]
		}
		db, err := turbobp.Open(turbobp.Options{
			Design: turbobp.DW, DBPages: 2048, PoolPages: 16, SSDFrames: 64, PageSize: 96,
		})
		if err != nil {
			return false
		}
		defer db.Close()
		f, err := Create(db)
		if err != nil {
			return false
		}
		shadow := map[RID][]byte{}
		var live []RID
		rng := rand.New(rand.NewSource(1))
		for i, o := range ops {
			switch o.Kind % 3 {
			case 0: // insert
				rec := bytes.Repeat([]byte{byte(i + 1)}, int(o.Len%60)+1)
				rid, err := f.Insert(rec)
				if err != nil {
					return false
				}
				shadow[rid] = rec
				live = append(live, rid)
			case 1: // delete
				if len(live) == 0 {
					continue
				}
				k := int(o.Idx) % len(live)
				rid := live[k]
				live = append(live[:k], live[k+1:]...)
				if err := f.Delete(rid); err != nil {
					return false
				}
				delete(shadow, rid)
			case 2: // shrink-update
				if len(live) == 0 {
					continue
				}
				rid := live[int(o.Idx)%len(live)]
				n := len(shadow[rid])
				rec := bytes.Repeat([]byte{byte(rng.Intn(256))}, (n+1)/2)
				if err := f.UpdateRecord(rid, rec); err != nil {
					return false
				}
				shadow[rid] = rec
			}
		}
		// Verify via Get.
		for rid, want := range shadow {
			got, err := f.Get(rid)
			if err != nil || !bytes.Equal(got, want) {
				return false
			}
		}
		// Verify via Scan.
		seen := map[RID][]byte{}
		if err := f.Scan(func(rid RID, rec []byte) error {
			seen[rid] = append([]byte(nil), rec...)
			return nil
		}); err != nil {
			return false
		}
		if len(seen) != len(shadow) {
			return false
		}
		for rid, want := range shadow {
			if !bytes.Equal(seen[rid], want) {
				return false
			}
		}
		n, err := f.Count()
		return err == nil && int(n) == len(shadow)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
