// Package bufpool implements the in-memory buffer pool: a fixed set of page
// frames with a hash table for lookup and LRU-2 victim selection.
//
// The pool is a passive structure — it performs no I/O and charges no time.
// The storage engine (internal/engine) drives the §2.2 data flow: on a miss
// it takes a frame from here, fills it from the SSD manager or the disk, and
// inserts it; on pressure it pops a victim and routes the evicted page
// according to the active SSD design.
package bufpool

import (
	"fmt"
	"time"

	"turbobp/internal/page"
	"turbobp/internal/pagetab"
	"turbobp/internal/policy"
)

// Frame holds one resident page and its bookkeeping bits.
type Frame struct {
	Pg    page.Page
	Dirty bool
	// Seq records how the page came into memory: true if it was fetched by
	// the read-ahead (sequential) path. The SSD admission policy consults it
	// when the page is later evicted.
	Seq bool
	// RecLSN is the LSN of the first update that dirtied the page since it
	// was last clean (used by checkpointing bookkeeping; the page header LSN
	// is the last update).
	RecLSN uint64
}

// Pool is the memory buffer pool. In its default single-latch mode it is
// not safe for wall-clock-concurrent use; under the simulation kernel,
// accesses are naturally serialized. NewStriped builds the pool in
// striped-latch mode instead (see striped.go): residency and payload
// mutations take per-stripe RWMutex latches, and ReadLatched offers a
// copy-out read path that needs no external serialization.
type Pool struct {
	payload int
	frames  []Frame
	table   *pagetab.Table[*Frame] // resident pages, a flat open-addressing directory (single-latch mode)
	kind    policy.Kind
	repl    policy.Policy
	free    []*Frame

	// Striped-latch mode (nil stripes = single-latch mode; see striped.go).
	stripes []stripe
	mask    uint64
	clock   func() time.Duration
}

// New returns a pool of capacity frames holding payloadSize-byte payloads,
// using the default LRU-2 replacement policy.
func New(capacity, payloadSize int) *Pool {
	return NewWithPolicy(capacity, payloadSize, policy.LRU2)
}

// NewWithPolicy returns a pool whose victim selection is driven by the
// given replacement policy. Keys handed to the policy are page ids.
func NewWithPolicy(capacity, payloadSize int, kind policy.Kind) *Pool {
	if capacity < 1 {
		panic(fmt.Sprintf("bufpool: capacity %d", capacity))
	}
	p := &Pool{
		payload: payloadSize,
		frames:  make([]Frame, capacity),
		table:   pagetab.New[*Frame](capacity),
		kind:    kind,
	}
	p.repl = p.newRepl()
	p.free = make([]*Frame, 0, capacity)
	for i := capacity - 1; i >= 0; i-- {
		p.frames[i].Pg.Payload = make([]byte, payloadSize)
		p.free = append(p.free, &p.frames[i])
	}
	return p
}

// newRepl builds a fresh policy instance for this pool, wiring the
// dirty-awareness hook for policies that want it (CFLRU defers dirty
// pages, so its victim scan asks the resident table for dirty state).
func (p *Pool) newRepl() policy.Policy {
	r := policy.New(p.kind, len(p.frames))
	if da, ok := r.(policy.DirtyAware); ok {
		da.SetDirtyFn(func(key int64) bool {
			f, ok := p.get(page.ID(key))
			return ok && f.Dirty
		})
	}
	return r
}

// Policy returns the pool's replacement-policy kind.
func (p *Pool) Policy() policy.Kind { return p.kind }

// PolicyStats returns the replacement policy's decision counters.
func (p *Pool) PolicyStats() policy.Stats { return p.repl.Stats() }

// Capacity returns the total number of frames.
func (p *Pool) Capacity() int { return len(p.frames) }

// Resident returns the number of pages currently in the table.
func (p *Pool) Resident() int {
	if p.stripes != nil {
		n := 0
		for i := range p.stripes {
			n += p.stripes[i].table.Len()
		}
		return n
	}
	return p.table.Len()
}

// FreeFrames returns the number of unused frames.
func (p *Pool) FreeFrames() int { return len(p.free) }

// PayloadSize returns the configured payload size.
func (p *Pool) PayloadSize() int { return p.payload }

// Lookup returns the resident frame for id and records an access at now, or
// nil on a miss.
func (p *Pool) Lookup(id page.ID, now time.Duration) *Frame {
	f, ok := p.get(id)
	if !ok {
		return nil
	}
	p.repl.Touch(int64(id), p.now(now))
	return f
}

// Peek returns the resident frame without touching replacement state.
func (p *Pool) Peek(id page.ID) *Frame {
	f, _ := p.get(id)
	return f
}

// TakeFree removes and returns a free frame, or nil if none remain.
func (p *Pool) TakeFree() *Frame {
	if len(p.free) == 0 {
		return nil
	}
	f := p.free[len(p.free)-1]
	p.free = p.free[:len(p.free)-1]
	return f
}

// PopVictim selects the replacement policy's victim, removes it from the
// table and replacement structures, and returns it. The caller owns the frame: it must
// write out the page if dirty and then either Insert it under a new id or
// Release it. Returns nil if the pool is empty.
func (p *Pool) PopVictim() *Frame {
	if p.stripes != nil {
		p.drainTouches()
	}
	key, ok := p.repl.Pop()
	if !ok {
		return nil
	}
	f, _ := p.get(page.ID(key))
	if f == nil {
		panic(fmt.Sprintf("bufpool: victim %d not in table", key))
	}
	p.del(page.ID(key))
	return f
}

// Insert publishes frame under f.Pg.ID, recording an access at now. If the
// page is already resident (a concurrent fill won the race), Insert returns
// the existing frame and false, and the caller's frame is returned to the
// free list.
func (p *Pool) Insert(f *Frame, now time.Duration) (*Frame, bool) {
	id := f.Pg.ID
	if existing, ok := p.get(id); ok {
		p.Release(f)
		p.repl.Touch(int64(id), p.now(now))
		return existing, false
	}
	p.put(id, f)
	p.repl.Touch(int64(id), p.now(now))
	return f, true
}

// Release returns a frame (not in the table) to the free list.
func (p *Pool) Release(f *Frame) {
	f.Dirty = false
	f.Seq = false
	f.RecLSN = 0
	f.Pg.ID = 0
	f.Pg.LSN = 0
	p.free = append(p.free, f)
}

// Drop removes a resident page and frees its frame without any writeback
// (used by the multi-page read path when a stale disk version must be
// replaced by the SSD version, and by crash simulation).
func (p *Pool) Drop(id page.ID) {
	f, ok := p.get(id)
	if !ok {
		return
	}
	p.del(id)
	p.repl.Remove(int64(id))
	p.Release(f)
}

// DirtyPages returns the ids of all dirty resident pages, in the table's
// deterministic iteration order.
func (p *Pool) DirtyPages() []page.ID {
	var ids []page.ID
	collect := func(id uint64, f *Frame) bool {
		if f.Dirty {
			ids = append(ids, page.ID(id))
		}
		return true
	}
	if p.stripes != nil {
		for i := range p.stripes {
			p.stripes[i].table.Range(collect)
		}
		return ids
	}
	p.table.Range(collect)
	return ids
}

// Pages returns the ids of all resident pages, in the table's
// deterministic iteration order.
func (p *Pool) Pages() []page.ID {
	ids := make([]page.ID, 0, p.Resident())
	collect := func(id uint64, _ *Frame) bool {
		ids = append(ids, page.ID(id))
		return true
	}
	if p.stripes != nil {
		for i := range p.stripes {
			p.stripes[i].table.Range(collect)
		}
		return ids
	}
	p.table.Range(collect)
	return ids
}

// Reset empties the pool (crash simulation): every frame is freed and all
// contents are discarded.
func (p *Pool) Reset() {
	if p.stripes != nil {
		for i := range p.stripes {
			s := &p.stripes[i]
			s.mu.Lock()
			s.table.Reset()
			s.mu.Unlock()
			s.tmu.Lock()
			s.touches = nil
			s.tmu.Unlock()
		}
	} else {
		p.table.Reset()
	}
	p.repl = p.newRepl()
	p.free = p.free[:0]
	for i := len(p.frames) - 1; i >= 0; i-- {
		f := &p.frames[i]
		f.Dirty = false
		f.Seq = false
		f.RecLSN = 0
		f.Pg.ID = 0
		f.Pg.LSN = 0
		p.free = append(p.free, f)
	}
}

// ReplHistory exposes the replacement history of a resident page (test hook).
func (p *Pool) ReplHistory(id page.ID) (last, prev time.Duration, seen bool) {
	return p.repl.History(int64(id))
}
