package bufpool

import (
	"testing"
	"testing/quick"
	"time"

	"turbobp/internal/page"
)

func ms(n int) time.Duration { return time.Duration(n) * time.Millisecond }

func TestNewPoolGeometry(t *testing.T) {
	p := New(8, 32)
	if p.Capacity() != 8 || p.FreeFrames() != 8 || p.Resident() != 0 {
		t.Errorf("cap=%d free=%d resident=%d", p.Capacity(), p.FreeFrames(), p.Resident())
	}
	if p.PayloadSize() != 32 {
		t.Errorf("PayloadSize = %d", p.PayloadSize())
	}
	f := p.TakeFree()
	if len(f.Pg.Payload) != 32 {
		t.Errorf("payload buffer = %d bytes", len(f.Pg.Payload))
	}
}

func TestNewPanicsOnZeroCapacity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic")
		}
	}()
	New(0, 16)
}

func TestInsertLookup(t *testing.T) {
	p := New(4, 16)
	f := p.TakeFree()
	f.Pg.ID = 42
	got, inserted := p.Insert(f, ms(1))
	if !inserted || got != f {
		t.Fatal("insert failed")
	}
	if p.Lookup(42, ms(2)) != f {
		t.Error("lookup missed")
	}
	if p.Lookup(43, ms(2)) != nil {
		t.Error("lookup found absent page")
	}
	if p.Resident() != 1 {
		t.Errorf("Resident = %d", p.Resident())
	}
}

func TestInsertDuplicateReturnsExisting(t *testing.T) {
	p := New(4, 16)
	a := p.TakeFree()
	a.Pg.ID = 7
	p.Insert(a, ms(1))
	b := p.TakeFree()
	b.Pg.ID = 7
	freeBefore := p.FreeFrames()
	got, inserted := p.Insert(b, ms(2))
	if inserted || got != a {
		t.Error("duplicate insert did not return existing frame")
	}
	if p.FreeFrames() != freeBefore+1 {
		t.Error("loser frame not returned to the free list")
	}
}

func TestTakeFreeExhaustion(t *testing.T) {
	p := New(2, 16)
	if p.TakeFree() == nil || p.TakeFree() == nil {
		t.Fatal("free frames missing")
	}
	if p.TakeFree() != nil {
		t.Error("TakeFree on empty free list returned a frame")
	}
}

func TestPopVictimLRU2Order(t *testing.T) {
	p := New(4, 16)
	for i := page.ID(1); i <= 3; i++ {
		f := p.TakeFree()
		f.Pg.ID = i
		p.Insert(f, ms(int(i)))
	}
	p.Lookup(1, ms(10)) // page 1 now has two accesses
	v := p.PopVictim()
	if v.Pg.ID != 2 {
		t.Errorf("victim = %d, want 2 (oldest single-access)", v.Pg.ID)
	}
	if p.Peek(2) != nil {
		t.Error("victim still in table")
	}
}

func TestPopVictimEmpty(t *testing.T) {
	p := New(2, 16)
	if p.PopVictim() != nil {
		t.Error("victim from empty pool")
	}
}

func TestDropReleasesFrame(t *testing.T) {
	p := New(2, 16)
	f := p.TakeFree()
	f.Pg.ID = 5
	f.Dirty = true
	p.Insert(f, ms(1))
	p.Drop(5)
	if p.Peek(5) != nil {
		t.Error("dropped page still resident")
	}
	if p.FreeFrames() != 2 {
		t.Errorf("FreeFrames = %d", p.FreeFrames())
	}
	if f.Dirty {
		t.Error("released frame still dirty")
	}
	p.Drop(99) // no-op
}

func TestDirtyPages(t *testing.T) {
	p := New(4, 16)
	for i := page.ID(1); i <= 3; i++ {
		f := p.TakeFree()
		f.Pg.ID = i
		f.Dirty = i%2 == 1
		p.Insert(f, ms(int(i)))
	}
	d := p.DirtyPages()
	if len(d) != 2 {
		t.Errorf("DirtyPages = %v", d)
	}
}

func TestReset(t *testing.T) {
	p := New(4, 16)
	for i := page.ID(1); i <= 4; i++ {
		f := p.TakeFree()
		f.Pg.ID = i
		f.Dirty = true
		p.Insert(f, ms(int(i)))
	}
	p.Reset()
	if p.Resident() != 0 || p.FreeFrames() != 4 {
		t.Errorf("after reset: resident=%d free=%d", p.Resident(), p.FreeFrames())
	}
	if len(p.DirtyPages()) != 0 {
		t.Error("dirty pages survived reset")
	}
}

// Property: under any interleaving of take/insert/victim/drop, frames are
// conserved: free + resident + held == capacity.
func TestFrameConservationProperty(t *testing.T) {
	type op struct {
		Kind uint8
		Page uint8
	}
	prop := func(ops []op) bool {
		const capacity = 6
		p := New(capacity, 8)
		var held []*Frame
		now := time.Duration(0)
		for _, o := range ops {
			now += time.Millisecond
			switch o.Kind % 4 {
			case 0: // take a free frame
				if f := p.TakeFree(); f != nil {
					held = append(held, f)
				}
			case 1: // insert a held frame
				if len(held) > 0 {
					f := held[len(held)-1]
					held = held[:len(held)-1]
					f.Pg.ID = page.ID(o.Page % 16)
					p.Insert(f, now)
				}
			case 2: // evict
				if f := p.PopVictim(); f != nil {
					p.Release(f)
				}
			case 3: // drop
				p.Drop(page.ID(o.Page % 16))
			}
			if p.FreeFrames()+p.Resident()+len(held) != capacity {
				return false
			}
		}
		// Every resident page must be findable and unique.
		seen := map[page.ID]bool{}
		for _, id := range p.Pages() {
			if seen[id] || p.Peek(id) == nil {
				return false
			}
			seen[id] = true
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
