package bufpool

import (
	"sort"
	"sync"
	"time"

	"turbobp/internal/page"
	"turbobp/internal/pagetab"
	"turbobp/internal/policy"
)

// This file adds the pool's striped-latch mode, used by the partitioned
// concurrent file backend. The single resident table becomes S sub-tables,
// each guarded by its own sync.RWMutex (the page-latch stripes). Ops that
// mutate residency (Insert, PopVictim, Drop, Reset) or a resident page's
// payload (MutateFrame) take the page's stripe latch exclusively; readers
// take it shared. On top of the owner's external serialization (the
// partition mutex) this buys one thing, and it is the profitable one:
// ReadLatched, a copy-out read of a resident page that runs WITHOUT the
// partition mutex — concurrent point reads of resident pages proceed in
// parallel, throttled only by their stripe.
//
// Latch-order rule: stripe latches are leaves. No pool code (and no caller)
// may acquire any other lock while holding one; owners acquire them only
// while already holding their partition mutex (partition -> stripe), and
// ReadLatched holds nothing else. Both orders embed in the same total
// order, so the hierarchy is deadlock-free.
//
// LRU-2 recency for latched reads is buffered: each stripe accumulates
// (id, at) touch records under a side lock, drained into the replacement
// cache by the next PopVictim — the only consumer of recency. A full
// buffer drops further touches (bounded memory beats perfect recency; a
// dropped touch can only make victim choice slightly staler, never
// incorrect).

// stripe is one latch-granule of the striped resident table.
type stripe struct {
	mu    sync.RWMutex
	table *pagetab.Table[*Frame]

	tmu     sync.Mutex
	touches []pendingTouch
}

// pendingTouch is one buffered LRU-2 access record from a latched read.
type pendingTouch struct {
	id int64
	at time.Duration
}

// touchCap bounds each stripe's pending-touch buffer.
const touchCap = 4096

// NewStriped returns a pool in striped-latch mode with the given number of
// stripes (rounded up to a power of two). clock, when non-nil, overrides
// every caller-supplied access time — the concurrent backend passes a
// shared atomic tick so latched reads and engine ops draw recency from one
// scale.
func NewStriped(capacity, payloadSize, stripes int, clock func() time.Duration) *Pool {
	return NewStripedWithPolicy(capacity, payloadSize, stripes, clock, policy.LRU2)
}

// NewStripedWithPolicy is NewStriped with an explicit replacement policy.
func NewStripedWithPolicy(capacity, payloadSize, stripes int, clock func() time.Duration, kind policy.Kind) *Pool {
	p := NewWithPolicy(capacity, payloadSize, kind)
	if stripes < 1 {
		stripes = 1
	}
	n := 1
	for n < stripes {
		n <<= 1
	}
	per := capacity/n + 1
	p.table = nil
	p.stripes = make([]stripe, n)
	for i := range p.stripes {
		p.stripes[i].table = pagetab.New[*Frame](per)
	}
	p.mask = uint64(n - 1)
	p.clock = clock
	return p
}

// Striped reports whether the pool is in striped-latch mode.
func (p *Pool) Striped() bool { return p.stripes != nil }

// stripeOf maps a page id to its latch stripe. Ids within a partition are
// dense, so the low bits spread them evenly.
func (p *Pool) stripeOf(id page.ID) *stripe {
	return &p.stripes[uint64(id)&p.mask]
}

// now substitutes the pool clock for a caller-supplied time when one is set.
func (p *Pool) now(t time.Duration) time.Duration {
	if p.clock != nil {
		return p.clock()
	}
	return t
}

// get looks id up in the resident directory, taking the stripe latch in
// striped mode. Callers in striped mode must not hold the same stripe latch.
func (p *Pool) get(id page.ID) (*Frame, bool) {
	if p.stripes == nil {
		return p.table.Get(uint64(id))
	}
	s := p.stripeOf(id)
	s.mu.RLock()
	f, ok := s.table.Get(uint64(id))
	s.mu.RUnlock()
	return f, ok
}

// put publishes id -> f, exclusively latching the stripe in striped mode.
func (p *Pool) put(id page.ID, f *Frame) {
	if p.stripes == nil {
		p.table.Put(uint64(id), f)
		return
	}
	s := p.stripeOf(id)
	s.mu.Lock()
	s.table.Put(uint64(id), f)
	s.mu.Unlock()
}

// del removes id from the directory, exclusively latching the stripe in
// striped mode. After del returns, no latched reader holds the frame.
func (p *Pool) del(id page.ID) {
	if p.stripes == nil {
		p.table.Delete(uint64(id))
		return
	}
	s := p.stripeOf(id)
	s.mu.Lock()
	s.table.Delete(uint64(id))
	s.mu.Unlock()
}

// ReadLatched copies the payload of a resident page into dst under the
// page's stripe read latch and reports whether the page was resident. It is
// the one pool operation safe to call WITHOUT the owner's serialization:
// the latch orders the copy against Insert/PopVictim/Drop (which delete
// under the exclusive latch before reusing a frame) and against
// MutateFrame's in-place payload writes. The access is recorded in the
// stripe's touch buffer for the next victim-selection drain.
func (p *Pool) ReadLatched(id page.ID, dst []byte) (int, bool) {
	s := p.stripeOf(id)
	s.mu.RLock()
	f, ok := s.table.Get(uint64(id))
	var n int
	if ok {
		n = copy(dst, f.Pg.Payload)
	}
	s.mu.RUnlock()
	if !ok {
		return 0, false
	}
	at := p.now(0)
	s.tmu.Lock()
	if len(s.touches) < touchCap {
		s.touches = append(s.touches, pendingTouch{id: int64(id), at: at})
	}
	s.tmu.Unlock()
	return n, true
}

// MutateFrame applies fn to f's payload. In striped mode the write happens
// under the frame's exclusive stripe latch, so latched readers never see a
// torn payload; in single-latch mode it is a direct call.
func (p *Pool) MutateFrame(f *Frame, fn func(payload []byte)) {
	if p.stripes == nil {
		fn(f.Pg.Payload)
		return
	}
	s := p.stripeOf(f.Pg.ID)
	s.mu.Lock()
	fn(f.Pg.Payload)
	s.mu.Unlock()
}

// drainTouches replays buffered latched-read accesses into the replacement
// cache. Called under the owner's serialization, right before victim
// selection — the only moment recency is consulted. Each stripe's batch is
// sorted by (at, id) before replay: the append order of concurrent
// ReadLatched callers is scheduling-dependent, and policies with admission
// state (TinyLFU's doorkeeper and sketch) observe every Touch, so an
// unsorted replay would leak thread timing into victim choice. Sorting
// makes the replay a pure function of the recorded (id, at) set.
func (p *Pool) drainTouches() {
	for i := range p.stripes {
		s := &p.stripes[i]
		s.tmu.Lock()
		pend := s.touches
		s.touches = nil
		s.tmu.Unlock()
		sort.Slice(pend, func(a, b int) bool {
			if pend[a].at != pend[b].at {
				return pend[a].at < pend[b].at
			}
			return pend[a].id < pend[b].id
		})
		for _, t := range pend {
			if _, ok := s.table.Get(uint64(t.id)); ok {
				p.repl.Touch(t.id, t.at)
			}
		}
	}
}
