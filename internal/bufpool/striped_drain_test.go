package bufpool

import (
	"testing"
	"time"

	"turbobp/internal/page"
	"turbobp/internal/policy"
)

// TestStripedDrainDeterministicOrder pins the drain-order fix: buffered
// latched-read touches must replay into the replacement policy in (at, id)
// order, not in the append order of the concurrent ReadLatched callers
// (which is scheduling-dependent). Two pools observe the same (id, at)
// touch set appended in opposite orders; their victim sequences must
// match. TinyLFU makes append-order leaks visible — its recency list and
// admission sketch observe every replayed Touch in sequence — but the
// property must hold for every policy.
func TestStripedDrainDeterministicOrder(t *testing.T) {
	type touch struct {
		id int64
		at time.Duration
	}
	touches := []touch{
		{5, 30}, {3, 10}, {7, 20}, {1, 40}, {6, 25}, {2, 15}, {0, 35}, {4, 5},
	}
	reversed := make([]touch, len(touches))
	for i, tc := range touches {
		reversed[len(touches)-1-i] = tc
	}

	for _, kind := range policy.Kinds {
		victims := func(order []touch) []page.ID {
			var cur time.Duration
			clock := func() time.Duration { return cur }
			// One stripe, so every touch lands in the same buffer and the
			// append order is exactly the call order.
			p := NewStripedWithPolicy(8, 8, 1, clock, kind)
			for i := 0; i < 8; i++ {
				f := p.TakeFree()
				f.Pg.ID = page.ID(i)
				p.Insert(f, 0)
			}
			buf := make([]byte, 8)
			for _, tc := range order {
				cur = tc.at
				if _, ok := p.ReadLatched(page.ID(tc.id), buf); !ok {
					t.Fatalf("%v: ReadLatched(%d) missed", kind, tc.id)
				}
			}
			var out []page.ID
			for {
				f := p.PopVictim()
				if f == nil {
					break
				}
				out = append(out, f.Pg.ID)
				p.Release(f)
			}
			return out
		}

		fwd := victims(touches)
		rev := victims(reversed)
		if len(fwd) != 8 || len(rev) != 8 {
			t.Fatalf("%v: drained %d and %d victims, want 8", kind, len(fwd), len(rev))
		}
		for i := range fwd {
			if fwd[i] != rev[i] {
				t.Fatalf("%v: victim order depends on touch append order:\n fwd %v\n rev %v", kind, fwd, rev)
			}
		}
	}
}
