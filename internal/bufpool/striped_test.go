package bufpool

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"turbobp/internal/page"
)

// TestStripedBasicOps checks that the striped pool behaves like the plain
// one for the owner-serialized operations.
func TestStripedBasicOps(t *testing.T) {
	var tick atomic.Int64
	clock := func() time.Duration { return time.Duration(tick.Add(1)) }
	p := NewStriped(8, 16, 4, clock)
	if !p.Striped() {
		t.Fatal("not in striped mode")
	}
	for i := 0; i < 8; i++ {
		f := p.TakeFree()
		if f == nil {
			t.Fatalf("TakeFree %d: nil", i)
		}
		f.Pg.ID = page.ID(i)
		f.Pg.Payload[0] = byte(i)
		p.Insert(f, 0)
	}
	if p.Resident() != 8 || p.FreeFrames() != 0 {
		t.Fatalf("resident=%d free=%d", p.Resident(), p.FreeFrames())
	}
	for i := 0; i < 8; i++ {
		if f := p.Lookup(page.ID(i), 0); f == nil || f.Pg.Payload[0] != byte(i) {
			t.Fatalf("Lookup(%d) = %v", i, f)
		}
	}
	if got := len(p.Pages()); got != 8 {
		t.Fatalf("Pages() = %d ids", got)
	}
	v := p.PopVictim()
	if v == nil {
		t.Fatal("PopVictim: nil")
	}
	p.Release(v)
	if p.Resident() != 7 || p.FreeFrames() != 1 {
		t.Fatalf("after pop: resident=%d free=%d", p.Resident(), p.FreeFrames())
	}
	p.Drop(page.ID(7))
	if p.Peek(page.ID(7)) != nil {
		t.Fatal("Drop left page 7 resident")
	}
	p.Reset()
	if p.Resident() != 0 || p.FreeFrames() != 8 {
		t.Fatalf("after reset: resident=%d free=%d", p.Resident(), p.FreeFrames())
	}
}

// TestStripedReadLatched checks the copy-out fast path: hits copy the
// payload, misses report false, and buffered touches influence victim
// selection once drained.
func TestStripedReadLatched(t *testing.T) {
	var tick atomic.Int64
	clock := func() time.Duration { return time.Duration(tick.Add(1)) }
	p := NewStriped(4, 8, 2, clock)
	for i := 0; i < 4; i++ {
		f := p.TakeFree()
		f.Pg.ID = page.ID(i)
		f.Pg.Payload[0] = byte(0xA0 + i)
		p.Insert(f, 0)
	}
	buf := make([]byte, 8)
	if n, ok := p.ReadLatched(page.ID(2), buf); !ok || n != 8 || buf[0] != 0xA2 {
		t.Fatalf("ReadLatched(2) = %d,%v buf=%#x", n, ok, buf[0])
	}
	if _, ok := p.ReadLatched(page.ID(99), buf); ok {
		t.Fatal("ReadLatched(99) hit")
	}
	// Touch pages 1..3 again via the latched path; page 0's single history
	// stays oldest, so after the drain inside PopVictim it must be the
	// LRU-2 victim.
	for i := 1; i < 4; i++ {
		p.ReadLatched(page.ID(i), buf)
		p.ReadLatched(page.ID(i), buf)
	}
	v := p.PopVictim()
	if v.Pg.ID != 0 {
		t.Fatalf("victim = %d, want the untouched page 0", v.Pg.ID)
	}
	p.Release(v)
}

// TestStripedConcurrentReadersWriter runs latched readers against
// MutateFrame and residency churn; under -race this pins the latch
// protocol, and readers must never observe a torn payload (all bytes of a
// page carry the same value by construction).
func TestStripedConcurrentReadersWriter(t *testing.T) {
	var tick atomic.Int64
	clock := func() time.Duration { return time.Duration(tick.Add(1)) }
	const frames = 16
	p := NewStriped(frames, 32, 8, clock)
	for i := 0; i < frames; i++ {
		f := p.TakeFree()
		f.Pg.ID = page.ID(i)
		p.Insert(f, 0)
	}

	var stop atomic.Bool
	var wg sync.WaitGroup
	var torn atomic.Int64
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			buf := make([]byte, 32)
			for i := 0; !stop.Load(); i++ {
				id := page.ID((i * 7) % frames)
				if _, ok := p.ReadLatched(id, buf); !ok {
					continue
				}
				v := buf[0]
				for _, b := range buf {
					if b != v {
						torn.Add(1)
						return
					}
				}
			}
		}(r)
	}

	// The single owner (everything below is what the partition mutex would
	// serialize): payload mutations plus evict/reinsert churn.
	for i := 0; i < 3000; i++ {
		id := page.ID(i % frames)
		if f := p.Peek(id); f != nil {
			val := byte(i)
			p.MutateFrame(f, func(payload []byte) {
				for j := range payload {
					payload[j] = val
				}
			})
		}
		if i%17 == 0 {
			if v := p.PopVictim(); v != nil {
				oldID := v.Pg.ID
				p.Release(v)
				f := p.TakeFree()
				f.Pg.ID = oldID
				p.Insert(f, 0)
			}
		}
	}
	stop.Store(true)
	wg.Wait()
	if torn.Load() != 0 {
		t.Fatalf("%d torn reads observed", torn.Load())
	}
}
