package device

import (
	"fmt"

	"turbobp/internal/sim"
)

// Array is a striped set of disks presenting one flat page space, like the
// paper's eight-HDD file group. Pages are striped in units of StripeUnit
// pages: global pages [k*u, (k+1)*u) live on disk k % len(disks), at local
// pages [(k/len(disks))*u, ...). Requests that span several disks are issued
// to those disks in parallel.
type Array struct {
	env        *sim.Env
	disks      []*HDD
	stripeUnit PageNum
	capacity   PageNum
	stats      Stats
}

// NewArray stripes capacity pages across n fresh disks with the given
// profile. stripeUnit is in pages (the paper's SQL Server file groups use
// 64-page, 512 KB extents-of-extents; anything >= 1 works).
func NewArray(env *sim.Env, profile Profile, n int, stripeUnit, capacity PageNum) *Array {
	if n < 1 || stripeUnit < 1 {
		panic(fmt.Sprintf("device: bad array geometry n=%d unit=%d", n, stripeUnit))
	}
	perDisk := (capacity + PageNum(n) - 1) / PageNum(n)
	// Round per-disk capacity up to whole stripe units.
	perDisk = (perDisk + stripeUnit - 1) / stripeUnit * stripeUnit
	disks := make([]*HDD, n)
	for i := range disks {
		disks[i] = NewHDD(env, profile, perDisk)
	}
	return &Array{env: env, disks: disks, stripeUnit: stripeUnit, capacity: capacity}
}

// Disks exposes the member disks (read-only use: per-disk stats).
func (a *Array) Disks() []*HDD { return a.disks }

// locate maps a global page to (disk index, local page).
func (a *Array) locate(page PageNum) (int, PageNum) {
	unit := page / a.stripeUnit
	disk := int(unit % PageNum(len(a.disks)))
	local := (unit/PageNum(len(a.disks)))*a.stripeUnit + page%a.stripeUnit
	return disk, local
}

// run is one per-disk contiguous piece of a request.
type run struct {
	disk  int
	local PageNum
	bufs  [][]byte
}

// split carves a request into per-disk runs, preserving order.
func (a *Array) split(page PageNum, bufs [][]byte) []run {
	var runs []run
	for len(bufs) > 0 {
		disk, local := a.locate(page)
		// Pages remaining in this stripe unit.
		left := int(a.stripeUnit - page%a.stripeUnit)
		if left > len(bufs) {
			left = len(bufs)
		}
		runs = append(runs, run{disk: disk, local: local, bufs: bufs[:left]})
		page += PageNum(left)
		bufs = bufs[left:]
	}
	return runs
}

func (a *Array) do(p *sim.Proc, page PageNum, bufs [][]byte, write bool) error {
	if err := checkRange(page, len(bufs), a.capacity); err != nil {
		return err
	}
	if len(bufs) == 0 {
		return nil
	}
	if write {
		a.stats.WriteOps.Add(1)
		a.stats.WritePages.Add(int64(len(bufs)))
	} else {
		a.stats.ReadOps.Add(1)
		a.stats.ReadPages.Add(int64(len(bufs)))
	}
	op := func(p *sim.Proc, r run) error {
		d := a.disks[r.disk]
		if write {
			return d.Write(p, r.local, r.bufs)
		}
		return d.Read(p, r.local, r.bufs)
	}
	// Fast path: a request within one stripe unit hits a single disk and
	// needs no run slice (this covers every single-page I/O).
	if int(a.stripeUnit-page%a.stripeUnit) >= len(bufs) {
		disk, local := a.locate(page)
		return op(p, run{disk: disk, local: local, bufs: bufs})
	}
	runs := a.split(page, bufs)
	if len(runs) == 1 {
		return op(p, runs[0])
	}
	// Fan the runs out to their disks in parallel and join.
	var firstErr error
	remaining := len(runs)
	done := sim.NewSignal(p.Env())
	for _, r := range runs {
		r := r
		a.env.Go("array-io", func(child *sim.Proc) {
			if err := op(child, r); err != nil && firstErr == nil {
				firstErr = err
			}
			remaining--
			if remaining == 0 {
				done.Broadcast()
			}
		})
	}
	if remaining > 0 {
		done.Wait(p)
	}
	return firstErr
}

// doTask is the run-to-completion twin of do: the same request splitting,
// stats accounting and multi-disk fan-out, delivered to k. Single-stripe
// requests (every single-page I/O) forward straight to the member disk's
// task path, inheriting its analytic fast path.
func (a *Array) doTask(t *sim.Task, page PageNum, bufs [][]byte, write bool, k func(error)) {
	if err := checkRange(page, len(bufs), a.capacity); err != nil {
		k(err)
		return
	}
	if len(bufs) == 0 {
		k(nil)
		return
	}
	if write {
		a.stats.WriteOps.Add(1)
		a.stats.WritePages.Add(int64(len(bufs)))
	} else {
		a.stats.ReadOps.Add(1)
		a.stats.ReadPages.Add(int64(len(bufs)))
	}
	op := func(t *sim.Task, r run, k func(error)) {
		d := a.disks[r.disk]
		if write {
			d.WriteTask(t, r.local, r.bufs, k)
			return
		}
		d.ReadTask(t, r.local, r.bufs, k)
	}
	if int(a.stripeUnit-page%a.stripeUnit) >= len(bufs) {
		disk, local := a.locate(page)
		op(t, run{disk: disk, local: local, bufs: bufs}, k)
		return
	}
	runs := a.split(page, bufs)
	if len(runs) == 1 {
		op(t, runs[0], k)
		return
	}
	// Fan the runs out to their disks in parallel and join.
	var firstErr error
	remaining := len(runs)
	done := sim.NewSignal(a.env)
	for _, r := range runs {
		r := r
		a.env.Spawn("array-io", func(child *sim.Task) {
			op(child, r, func(err error) {
				if err != nil && firstErr == nil {
					firstErr = err
				}
				remaining--
				if remaining == 0 {
					done.Broadcast()
				}
			})
		})
	}
	if remaining > 0 {
		done.WaitFunc(func() { k(firstErr) })
		return
	}
	k(firstErr)
}

// Read performs a (possibly multi-disk) page-run read.
func (a *Array) Read(p *sim.Proc, page PageNum, bufs [][]byte) error {
	return a.do(p, page, bufs, false)
}

// Write performs a (possibly multi-disk) page-run write.
func (a *Array) Write(p *sim.Proc, page PageNum, bufs [][]byte) error {
	return a.do(p, page, bufs, true)
}

// ReadTask performs a (possibly multi-disk) page-run read in task form.
func (a *Array) ReadTask(t *sim.Task, page PageNum, bufs [][]byte, k func(error)) {
	a.doTask(t, page, bufs, false, k)
}

// WriteTask performs a (possibly multi-disk) page-run write in task form.
func (a *Array) WriteTask(t *sim.Task, page PageNum, bufs [][]byte, k func(error)) {
	a.doTask(t, page, bufs, true, k)
}

// Preload stores data on the owning disk without charging time.
func (a *Array) Preload(page PageNum, data []byte) error {
	if err := checkRange(page, 1, a.capacity); err != nil {
		return err
	}
	disk, local := a.locate(page)
	return a.disks[disk].Preload(local, data)
}

// Pending sums the pending requests of the member disks.
func (a *Array) Pending() int {
	total := 0
	for _, d := range a.disks {
		total += d.Pending()
	}
	return total
}

// Stats returns array-level request counters. Service-time detail lives on
// the member disks' Stats.
func (a *Array) Stats() *Stats { return &a.stats }

// BusySnapshot aggregates member-disk snapshots (busy time, sequentiality).
func (a *Array) BusySnapshot() Snapshot {
	var total Snapshot
	for _, d := range a.disks {
		s := d.Stats().Load()
		total.ReadOps += s.ReadOps
		total.WriteOps += s.WriteOps
		total.ReadPages += s.ReadPages
		total.WritePages += s.WritePages
		total.SeqReads += s.SeqReads
		total.SeqWrites += s.SeqWrites
		total.BusyNanos += s.BusyNanos
	}
	return total
}
