package device

// Calibration constants reproducing the paper's Table 1: maximum sustainable
// IOPS with page-sized (8 KB) I/Os, disk write caching off.
//
//	READ        Ran.    Seq.   WRITE       Ran.    Seq.
//	8 HDDs     1,015  26,370   8 HDDs       895   9,463
//	SSD       12,182  15,980   SSD       12,374  14,965
const (
	// Aggregate IOPS of the paper's eight-disk striped HDD set.
	HDDArrayRandReadIOPS  = 1015
	HDDArraySeqReadIOPS   = 26370
	HDDArrayRandWriteIOPS = 895
	HDDArraySeqWriteIOPS  = 9463

	// IOPS of the paper's 160 GB SLC Fusion ioDrive.
	SSDRandReadIOPS  = 12182
	SSDSeqReadIOPS   = 15980
	SSDRandWriteIOPS = 12374
	SSDSeqWriteIOPS  = 14965

	// PaperArrayDisks is the number of data disks in the paper's stripe set.
	PaperArrayDisks = 8
)

// PaperHDDProfile returns the latency profile of one of the paper's eight
// 7,200 RPM SATA disks: the Table 1 aggregates divided evenly across disks.
func PaperHDDProfile() Profile {
	n := float64(PaperArrayDisks)
	return ProfileFromIOPS(
		HDDArrayRandReadIOPS/n,
		HDDArraySeqReadIOPS/n,
		HDDArrayRandWriteIOPS/n,
		HDDArraySeqWriteIOPS/n,
	)
}

// PaperSSDProfile returns the latency profile of the paper's SSD.
func PaperSSDProfile() Profile {
	return ProfileFromIOPS(SSDRandReadIOPS, SSDSeqReadIOPS, SSDRandWriteIOPS, SSDSeqWriteIOPS)
}
