// Package device models the storage devices of the paper's testbed and the
// I/O interface the storage engine uses to reach them.
//
// Two families of implementation exist behind the same Device interface:
//
//   - Simulated devices (HDD, Array, SSD) that charge virtual time on a
//     sim.Env according to latency models calibrated to the paper's Table 1
//     IOPS measurements, while storing page payloads in memory. These drive
//     every experiment reproduction.
//   - A real-file backend (File) that performs ordinary os.File I/O, used by
//     the runnable examples and by durability tests.
//
// All devices are page-granular: a request names a starting page number and
// a slice of page buffers for a contiguous run, matching the paper's
// multi-page I/O optimization (§3.3.3).
package device

import (
	"errors"
	"fmt"

	"turbobp/internal/sim"
)

// PageNum identifies a page on a device, starting at 0.
type PageNum int64

// ErrOutOfRange is returned for requests beyond a device's capacity.
var ErrOutOfRange = errors.New("device: page out of range")

// ErrLost reports that the device as a whole has failed (e.g. a dead SSD):
// every operation fails until the device is replaced. Callers distinguish
// it (errors.Is) from transient per-request errors, which may be retried or
// routed around; the engine reacts to a lost SSD by rebuilding its cache on
// a replacement device and recovering uniquely-dirty pages from the WAL.
var ErrLost = errors.New("device: device lost")

// Device is a page-granular block device. Read and Write block the calling
// simulation process for the modelled duration of the request; for the
// real-file backend p may be nil and the call blocks the OS thread instead.
// ReadTask and WriteTask are the run-to-completion twins: they perform the
// identical request on behalf of a sim.Task and deliver the result to k
// instead of returning it — inline when the device queue is empty and the
// completion time can be computed analytically, otherwise via the
// scheduler. Callers must treat them as tail calls (no code after).
//
// bufs holds one page-sized buffer per page of a contiguous run starting at
// page: Read fills them, Write persists copies of them. For the task forms
// the bufs remain in the device's hands until k runs.
type Device interface {
	Read(p *sim.Proc, page PageNum, bufs [][]byte) error
	Write(p *sim.Proc, page PageNum, bufs [][]byte) error
	ReadTask(t *sim.Task, page PageNum, bufs [][]byte, k func(error))
	WriteTask(t *sim.Task, page PageNum, bufs [][]byte, k func(error))
	// Pending reports the number of in-flight plus queued requests; the SSD
	// throttle-control optimization (§3.3.2) polls this.
	Pending() int
	// Stats returns the device's cumulative I/O counters.
	Stats() *Stats
}

// Preloader is implemented by devices that can be populated instantly
// (outside of simulated time) when a database is being created.
type Preloader interface {
	Preload(page PageNum, data []byte) error
}

// Counter is a cumulative I/O counter. It is deliberately not atomic: every
// writer and reader runs under the simulation kernel's serialization (procs
// hand off execution one at a time, samplers are simulation processes
// themselves), the same discipline the devices' buffer free lists already
// rely on. Keeping the counters plain keeps the per-request hot path free
// of synchronized memory operations.
type Counter struct{ v int64 }

// Add increments the counter by d.
func (c *Counter) Add(d int64) { c.v += d }

// Load returns the current value.
func (c *Counter) Load() int64 { return c.v }

// Stats holds cumulative I/O counters for one device.
type Stats struct {
	ReadOps    Counter // I/O requests (a multi-page request counts once)
	WriteOps   Counter
	ReadPages  Counter // pages transferred
	WritePages Counter
	SeqReads   Counter // requests served without a seek penalty
	SeqWrites  Counter
	BusyNanos  Counter // total service time charged
}

// Snapshot is a plain-value copy of Stats at one instant.
type Snapshot struct {
	ReadOps, WriteOps     int64
	ReadPages, WritePages int64
	SeqReads, SeqWrites   int64
	BusyNanos             int64
}

// Load returns a point-in-time copy of the counters.
func (s *Stats) Load() Snapshot {
	return Snapshot{
		ReadOps:    s.ReadOps.Load(),
		WriteOps:   s.WriteOps.Load(),
		ReadPages:  s.ReadPages.Load(),
		WritePages: s.WritePages.Load(),
		SeqReads:   s.SeqReads.Load(),
		SeqWrites:  s.SeqWrites.Load(),
		BusyNanos:  s.BusyNanos.Load(),
	}
}

// Sub returns the delta s minus prev, for per-interval bandwidth series.
func (s Snapshot) Sub(prev Snapshot) Snapshot {
	return Snapshot{
		ReadOps:    s.ReadOps - prev.ReadOps,
		WriteOps:   s.WriteOps - prev.WriteOps,
		ReadPages:  s.ReadPages - prev.ReadPages,
		WritePages: s.WritePages - prev.WritePages,
		SeqReads:   s.SeqReads - prev.SeqReads,
		SeqWrites:  s.SeqWrites - prev.SeqWrites,
		BusyNanos:  s.BusyNanos - prev.BusyNanos,
	}
}

func checkRange(page PageNum, n int, capacity PageNum) error {
	if page < 0 || n < 0 || PageNum(int64(page)+int64(n)) > capacity {
		return fmt.Errorf("%w: pages [%d,%d) of %d", ErrOutOfRange, page, int64(page)+int64(n), capacity)
	}
	return nil
}
