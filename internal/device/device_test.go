package device

import (
	"bytes"
	"errors"
	"math"
	"path/filepath"
	"testing"
	"testing/quick"
	"time"

	"turbobp/internal/sim"
)

func onePage(b byte) [][]byte {
	buf := make([]byte, 16)
	for i := range buf {
		buf[i] = b
	}
	return [][]byte{buf}
}

func TestProfileFromIOPS(t *testing.T) {
	p := ProfileFromIOPS(1000, 10000, 500, 5000)
	if p.RandRead != time.Millisecond {
		t.Errorf("RandRead = %v, want 1ms", p.RandRead)
	}
	if p.SeqRead != 100*time.Microsecond {
		t.Errorf("SeqRead = %v, want 100µs", p.SeqRead)
	}
	if p.RandWrite != 2*time.Millisecond {
		t.Errorf("RandWrite = %v, want 2ms", p.RandWrite)
	}
	if p.SeqWrite != 200*time.Microsecond {
		t.Errorf("SeqWrite = %v, want 200µs", p.SeqWrite)
	}
}

func TestHDDReadWriteRoundTrip(t *testing.T) {
	env := sim.NewEnv()
	d := NewHDD(env, PaperHDDProfile(), 100)
	env.Go("t", func(p *sim.Proc) {
		if err := d.Write(p, 7, onePage(0xAB)); err != nil {
			t.Errorf("write: %v", err)
		}
		got := onePage(0)
		if err := d.Read(p, 7, got); err != nil {
			t.Errorf("read: %v", err)
		}
		if !bytes.Equal(got[0], onePage(0xAB)[0]) {
			t.Errorf("read back %x, want all 0xAB", got[0])
		}
	})
	env.Run(-1)
}

func TestUnwrittenPageReadsZero(t *testing.T) {
	env := sim.NewEnv()
	d := NewHDD(env, PaperHDDProfile(), 100)
	env.Go("t", func(p *sim.Proc) {
		got := onePage(0xFF)
		if err := d.Read(p, 3, got); err != nil {
			t.Errorf("read: %v", err)
		}
		if !bytes.Equal(got[0], make([]byte, 16)) {
			t.Errorf("unwritten page read %x, want zeros", got[0])
		}
	})
	env.Run(-1)
}

func TestOutOfRangeRejected(t *testing.T) {
	env := sim.NewEnv()
	d := NewHDD(env, PaperHDDProfile(), 10)
	env.Go("t", func(p *sim.Proc) {
		if err := d.Read(p, 10, onePage(0)); !errors.Is(err, ErrOutOfRange) {
			t.Errorf("read past end: err = %v, want ErrOutOfRange", err)
		}
		if err := d.Write(p, -1, onePage(0)); !errors.Is(err, ErrOutOfRange) {
			t.Errorf("negative page: err = %v, want ErrOutOfRange", err)
		}
		bufs := [][]byte{make([]byte, 16), make([]byte, 16)}
		if err := d.Read(p, 9, bufs); !errors.Is(err, ErrOutOfRange) {
			t.Errorf("run past end: err = %v, want ErrOutOfRange", err)
		}
	})
	env.Run(-1)
}

func TestRandomVsSequentialCost(t *testing.T) {
	prof := Profile{
		RandRead: 10 * time.Millisecond, SeqRead: time.Millisecond,
		RandWrite: 20 * time.Millisecond, SeqWrite: 2 * time.Millisecond,
	}
	env := sim.NewEnv()
	d := NewHDD(env, prof, 1000)
	var t1, t2, t3 time.Duration
	env.Go("t", func(p *sim.Proc) {
		d.Read(p, 0, onePage(0)) // random: head at -1
		t1 = p.Now()
		d.Read(p, 1, onePage(0)) // sequential
		t2 = p.Now()
		d.Read(p, 500, onePage(0)) // random again
		t3 = p.Now()
	})
	env.Run(-1)
	if t1 != 10*time.Millisecond {
		t.Errorf("first random read took %v, want 10ms", t1)
	}
	if t2-t1 != time.Millisecond {
		t.Errorf("sequential read took %v, want 1ms", t2-t1)
	}
	if t3-t2 != 10*time.Millisecond {
		t.Errorf("random read took %v, want 10ms", t3-t2)
	}
}

func TestMultiPageRequestCost(t *testing.T) {
	prof := Profile{RandRead: 10 * time.Millisecond, SeqRead: time.Millisecond,
		RandWrite: 10 * time.Millisecond, SeqWrite: time.Millisecond}
	env := sim.NewEnv()
	d := NewHDD(env, prof, 1000)
	var took time.Duration
	env.Go("t", func(p *sim.Proc) {
		bufs := make([][]byte, 6)
		for i := range bufs {
			bufs[i] = make([]byte, 16)
		}
		d.Read(p, 100, bufs)
		took = p.Now()
	})
	env.Run(-1)
	want := 10*time.Millisecond + 5*time.Millisecond // seek + 5 streamed pages
	if took != want {
		t.Errorf("6-page read took %v, want %v", took, want)
	}
}

func TestStatsCounting(t *testing.T) {
	env := sim.NewEnv()
	d := NewHDD(env, PaperHDDProfile(), 1000)
	env.Go("t", func(p *sim.Proc) {
		bufs := [][]byte{make([]byte, 16), make([]byte, 16)}
		d.Write(p, 0, bufs)
		d.Read(p, 0, onePage(0))
		d.Read(p, 1, onePage(0)) // sequential after reading page 0
	})
	env.Run(-1)
	s := d.Stats().Load()
	if s.WriteOps != 1 || s.WritePages != 2 {
		t.Errorf("writes = %d ops/%d pages, want 1/2", s.WriteOps, s.WritePages)
	}
	if s.ReadOps != 2 || s.ReadPages != 2 {
		t.Errorf("reads = %d ops/%d pages, want 2/2", s.ReadOps, s.ReadPages)
	}
	if s.SeqReads != 1 {
		t.Errorf("SeqReads = %d, want 1", s.SeqReads)
	}
	if s.BusyNanos <= 0 {
		t.Error("BusyNanos not charged")
	}
}

func TestSnapshotSub(t *testing.T) {
	a := Snapshot{ReadOps: 10, WriteOps: 4, ReadPages: 20, WritePages: 8}
	b := Snapshot{ReadOps: 25, WriteOps: 9, ReadPages: 50, WritePages: 16}
	d := b.Sub(a)
	if d.ReadOps != 15 || d.WriteOps != 5 || d.ReadPages != 30 || d.WritePages != 8 {
		t.Errorf("Sub = %+v", d)
	}
}

// measureIOPS drives a device with nWorkers eager workers for the window and
// returns achieved ops/sec.
func measureIOPS(t *testing.T, dev Device, capacity PageNum, write, random bool, nWorkers int, window time.Duration) float64 {
	t.Helper()
	env := sim.NewEnv()
	switch d := dev.(type) {
	case *HDD:
		d.res = sim.NewResource(env, 1)
	case *SSD:
		d.res = sim.NewResource(env, 1)
	}
	ops := 0
	buf := onePage(0)
	for w := 0; w < nWorkers; w++ {
		w := w
		env.Go("worker", func(p *sim.Proc) {
			rng := uint64(12345 + w)
			next := PageNum(w * 1000 % int(capacity))
			for {
				var page PageNum
				if random {
					rng = rng*6364136223846793005 + 1442695040888963407
					page = PageNum(rng>>33) % capacity
				} else {
					page = next
					next = (next + 1) % capacity
				}
				var err error
				if write {
					err = dev.Write(p, page, buf)
				} else {
					err = dev.Read(p, page, buf)
				}
				if err != nil {
					t.Errorf("io: %v", err)
					return
				}
				if p.Now() > window {
					return
				}
				ops++
			}
		})
	}
	env.Run(-1)
	return float64(ops) / window.Seconds()
}

func within(t *testing.T, name string, got, want, tolFrac float64) {
	t.Helper()
	if math.Abs(got-want)/want > tolFrac {
		t.Errorf("%s = %.0f, want %.0f ±%.0f%%", name, got, want, tolFrac*100)
	}
}

// TestTable1SSDCalibration checks the SSD model reproduces Table 1.
func TestTable1SSDCalibration(t *testing.T) {
	mk := func() Device { return NewSSD(sim.NewEnv(), PaperSSDProfile(), 1<<20) }
	within(t, "ssd rand read", measureIOPS(t, mk(), 1<<20, false, true, 4, time.Second), SSDRandReadIOPS, 0.05)
	within(t, "ssd seq read", measureIOPS(t, mk(), 1<<20, false, false, 1, time.Second), SSDSeqReadIOPS, 0.05)
	within(t, "ssd rand write", measureIOPS(t, mk(), 1<<20, true, true, 4, time.Second), SSDRandWriteIOPS, 0.05)
	within(t, "ssd seq write", measureIOPS(t, mk(), 1<<20, true, false, 1, time.Second), SSDSeqWriteIOPS, 0.05)
}

// TestTable1ArrayCalibration checks the 8-disk array reproduces Table 1.
// Sequential workloads use one stream per stripe so each disk streams.
func TestTable1ArrayCalibration(t *testing.T) {
	measure := func(write, random bool) float64 {
		env := sim.NewEnv()
		const capacity = 1 << 20
		arr := NewArray(env, PaperHDDProfile(), PaperArrayDisks, 64, capacity)
		ops := 0
		window := time.Second
		buf := onePage(0)
		workers := PaperArrayDisks * 16
		if !random {
			workers = PaperArrayDisks
		}
		for w := 0; w < workers; w++ {
			w := w
			env.Go("worker", func(p *sim.Proc) {
				rng := uint64(999 + w)
				// Sequential workers each walk their own disk's stripes.
				disk := w % PaperArrayDisks
				unit := PageNum(64)
				pos := PageNum(disk) * unit
				for {
					var page PageNum
					if random {
						rng = rng*6364136223846793005 + 1442695040888963407
						page = PageNum(rng>>33) % capacity
					} else {
						page = pos
						pos++
						if pos%unit == 0 { // jump to this disk's next stripe
							pos += unit * (PaperArrayDisks - 1)
							if pos >= capacity {
								pos = PageNum(disk) * unit
							}
						}
					}
					var err error
					if write {
						err = arr.Write(p, page, buf)
					} else {
						err = arr.Read(p, page, buf)
					}
					if err != nil {
						t.Errorf("io: %v", err)
						return
					}
					if p.Now() > window {
						return
					}
					ops++
				}
			})
		}
		env.Run(-1)
		return float64(ops) / window.Seconds()
	}
	within(t, "array rand read", measure(false, true), HDDArrayRandReadIOPS, 0.05)
	within(t, "array seq read", measure(false, false), HDDArraySeqReadIOPS, 0.05)
	within(t, "array rand write", measure(true, true), HDDArrayRandWriteIOPS, 0.05)
	within(t, "array seq write", measure(true, false), HDDArraySeqWriteIOPS, 0.05)
}

func TestArrayLocate(t *testing.T) {
	env := sim.NewEnv()
	a := NewArray(env, PaperHDDProfile(), 4, 8, 1024)
	cases := []struct {
		page  PageNum
		disk  int
		local PageNum
	}{
		{0, 0, 0}, {7, 0, 7}, {8, 1, 0}, {15, 1, 7},
		{24, 3, 0}, {32, 0, 8}, {33, 0, 9}, {40, 1, 8},
	}
	for _, c := range cases {
		disk, local := a.locate(c.page)
		if disk != c.disk || local != c.local {
			t.Errorf("locate(%d) = (%d,%d), want (%d,%d)", c.page, disk, local, c.disk, c.local)
		}
	}
}

func TestArraySplitPreservesAllPages(t *testing.T) {
	prop := func(startRaw uint16, nRaw uint8) bool {
		env := sim.NewEnv()
		a := NewArray(env, PaperHDDProfile(), 4, 8, 1<<20)
		start := PageNum(startRaw)
		n := int(nRaw%100) + 1
		bufs := make([][]byte, n)
		for i := range bufs {
			bufs[i] = []byte{byte(i)}
		}
		runs := a.split(start, bufs)
		total := 0
		page := start
		for _, r := range runs {
			wantDisk, wantLocal := a.locate(page)
			if r.disk != wantDisk || r.local != wantLocal {
				return false
			}
			for _, b := range r.bufs {
				if b[0] != byte(total) {
					return false
				}
				total++
				page++
			}
		}
		return total == n
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestArrayRoundTripAcrossDisks(t *testing.T) {
	env := sim.NewEnv()
	a := NewArray(env, PaperHDDProfile(), 4, 4, 1024)
	env.Go("t", func(p *sim.Proc) {
		const n = 20 // spans 5 stripe units / 4 disks
		w := make([][]byte, n)
		for i := range w {
			w[i] = []byte{byte(i + 1), byte(i + 2)}
		}
		if err := a.Write(p, 2, w); err != nil {
			t.Errorf("write: %v", err)
		}
		r := make([][]byte, n)
		for i := range r {
			r[i] = make([]byte, 2)
		}
		if err := a.Read(p, 2, r); err != nil {
			t.Errorf("read: %v", err)
		}
		for i := range r {
			if !bytes.Equal(r[i], w[i]) {
				t.Errorf("page %d: got %v want %v", i, r[i], w[i])
			}
		}
	})
	env.Run(-1)
}

func TestArrayParallelismBeatsSingleDisk(t *testing.T) {
	// A 32-page read striped over 4 disks should take roughly 1/4 the time
	// of the same read on one disk (plus one seek).
	prof := Profile{RandRead: 10 * time.Millisecond, SeqRead: time.Millisecond,
		RandWrite: 10 * time.Millisecond, SeqWrite: time.Millisecond}
	timeFor := func(disks int) time.Duration {
		env := sim.NewEnv()
		a := NewArray(env, prof, disks, 8, 1024)
		var took time.Duration
		env.Go("t", func(p *sim.Proc) {
			bufs := make([][]byte, 32)
			for i := range bufs {
				bufs[i] = make([]byte, 4)
			}
			a.Read(p, 0, bufs)
			took = p.Now()
		})
		env.Run(-1)
		return took
	}
	one, four := timeFor(1), timeFor(4)
	if four >= one {
		t.Errorf("4-disk read (%v) not faster than 1-disk (%v)", four, one)
	}
	if four > one/2 {
		t.Errorf("4-disk read (%v) should be well under half of 1-disk (%v)", four, one)
	}
}

func TestPreload(t *testing.T) {
	env := sim.NewEnv()
	a := NewArray(env, PaperHDDProfile(), 2, 4, 64)
	if err := a.Preload(9, []byte{1, 2, 3}); err != nil {
		t.Fatalf("preload: %v", err)
	}
	if got := a.Stats().Load().WriteOps; got != 0 {
		t.Errorf("preload counted as write op (%d)", got)
	}
	env.Go("t", func(p *sim.Proc) {
		buf := [][]byte{make([]byte, 3)}
		a.Read(p, 9, buf)
		if !bytes.Equal(buf[0], []byte{1, 2, 3}) {
			t.Errorf("read back %v", buf[0])
		}
	})
	env.Run(-1)
}

func TestFileDevice(t *testing.T) {
	path := filepath.Join(t.TempDir(), "dev.db")
	d, err := OpenFile(path, 32, 100)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	page := make([]byte, 32)
	for i := range page {
		page[i] = 0x5A
	}
	if err := d.Write(nil, 42, [][]byte{page}); err != nil {
		t.Fatalf("write: %v", err)
	}
	got := [][]byte{make([]byte, 32)}
	if err := d.Read(nil, 42, got); err != nil {
		t.Fatalf("read: %v", err)
	}
	if !bytes.Equal(got[0], page) {
		t.Error("file round trip mismatch")
	}
	if err := d.Read(nil, 100, got); !errors.Is(err, ErrOutOfRange) {
		t.Errorf("out of range err = %v", err)
	}
	if err := d.Write(nil, 0, [][]byte{make([]byte, 31)}); err == nil {
		t.Error("short buffer accepted")
	}
	s := d.Stats().Load()
	if s.ReadOps != 1 || s.WriteOps != 1 {
		t.Errorf("stats = %+v", s)
	}
}

func TestFileDevicePreloadAndSync(t *testing.T) {
	path := filepath.Join(t.TempDir(), "dev.db")
	d, err := OpenFile(path, 16, 10)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	data := bytes.Repeat([]byte{7}, 16)
	if err := d.Preload(3, data); err != nil {
		t.Fatal(err)
	}
	if err := d.Sync(); err != nil {
		t.Fatal(err)
	}
	got := [][]byte{make([]byte, 16)}
	if err := d.Read(nil, 3, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got[0], data) {
		t.Error("preload round trip mismatch")
	}
}

// Property: device contents behave like a map — the latest write to a page
// is what a read returns, regardless of interleaving.
func TestDeviceLinearContentProperty(t *testing.T) {
	prop := func(opsRaw []uint16) bool {
		env := sim.NewEnv()
		d := NewSSD(env, PaperSSDProfile(), 64)
		shadow := map[PageNum]byte{}
		ok := true
		env.Go("t", func(p *sim.Proc) {
			for i, raw := range opsRaw {
				page := PageNum(raw % 64)
				if raw%3 == 0 { // read
					buf := [][]byte{make([]byte, 1)}
					d.Read(p, page, buf)
					want := shadow[page]
					if buf[0][0] != want {
						ok = false
						return
					}
				} else { // write
					v := byte(i + 1)
					d.Write(p, page, [][]byte{{v}})
					shadow[page] = v
				}
			}
		})
		env.Run(-1)
		return ok
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
