package device

import (
	"fmt"
	"os"
	"sync/atomic"

	"turbobp/internal/sim"
)

// File is a Device backed by an ordinary file, for running the engine
// against real storage. The sim.Proc argument of Read/Write is ignored (pass
// nil); calls block the OS thread for the duration of the real I/O.
type File struct {
	f        *os.File
	pageSize int
	capacity PageNum
	pending  atomic.Int64
	stats    Stats
}

// OpenFile creates (or truncates) path as a device of capacity pages of
// pageSize bytes each.
func OpenFile(path string, pageSize int, capacity PageNum) (*File, error) {
	if pageSize <= 0 || capacity < 0 {
		return nil, fmt.Errorf("device: bad file geometry pageSize=%d capacity=%d", pageSize, capacity)
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, err
	}
	if err := f.Truncate(int64(pageSize) * int64(capacity)); err != nil {
		f.Close()
		return nil, err
	}
	return &File{f: f, pageSize: pageSize, capacity: capacity}, nil
}

// Read fills bufs from the file. Each buffer must be exactly one page.
func (d *File) Read(_ *sim.Proc, page PageNum, bufs [][]byte) error {
	if err := d.check(page, bufs); err != nil {
		return err
	}
	d.pending.Add(1)
	defer d.pending.Add(-1)
	for i, buf := range bufs {
		off := (int64(page) + int64(i)) * int64(d.pageSize)
		if _, err := d.f.ReadAt(buf, off); err != nil {
			return fmt.Errorf("device: read page %d: %w", int64(page)+int64(i), err)
		}
	}
	d.stats.ReadOps.Add(1)
	d.stats.ReadPages.Add(int64(len(bufs)))
	return nil
}

// Write persists bufs to the file.
func (d *File) Write(_ *sim.Proc, page PageNum, bufs [][]byte) error {
	if err := d.check(page, bufs); err != nil {
		return err
	}
	d.pending.Add(1)
	defer d.pending.Add(-1)
	for i, buf := range bufs {
		off := (int64(page) + int64(i)) * int64(d.pageSize)
		if _, err := d.f.WriteAt(buf, off); err != nil {
			return fmt.Errorf("device: write page %d: %w", int64(page)+int64(i), err)
		}
	}
	d.stats.WriteOps.Add(1)
	d.stats.WritePages.Add(int64(len(bufs)))
	return nil
}

// ReadTask performs the real read synchronously (file I/O charges no
// virtual time) and continues with its result.
func (d *File) ReadTask(_ *sim.Task, page PageNum, bufs [][]byte, k func(error)) {
	k(d.Read(nil, page, bufs))
}

// WriteTask performs the real write synchronously and continues with its
// result.
func (d *File) WriteTask(_ *sim.Task, page PageNum, bufs [][]byte, k func(error)) {
	k(d.Write(nil, page, bufs))
}

func (d *File) check(page PageNum, bufs [][]byte) error {
	if err := checkRange(page, len(bufs), d.capacity); err != nil {
		return err
	}
	for _, buf := range bufs {
		if len(buf) != d.pageSize {
			return fmt.Errorf("device: buffer size %d != page size %d", len(buf), d.pageSize)
		}
	}
	return nil
}

// Preload writes data to page without counting it in the stats.
func (d *File) Preload(page PageNum, data []byte) error {
	if err := checkRange(page, 1, d.capacity); err != nil {
		return err
	}
	if len(data) != d.pageSize {
		return fmt.Errorf("device: preload size %d != page size %d", len(data), d.pageSize)
	}
	_, err := d.f.WriteAt(data, int64(page)*int64(d.pageSize))
	return err
}

// Sync flushes the file to stable storage.
func (d *File) Sync() error { return d.f.Sync() }

// Close closes the backing file.
func (d *File) Close() error { return d.f.Close() }

// Pending reports in-flight requests.
func (d *File) Pending() int { return int(d.pending.Load()) }

// Stats returns cumulative counters.
func (d *File) Stats() *Stats { return &d.stats }
