package device

import (
	"fmt"
	"os"
	"sync/atomic"

	"turbobp/internal/sim"
)

// File is a Device backed by an ordinary file, for running the engine
// against real storage. The sim.Proc argument of Read/Write is ignored (pass
// nil); calls block the OS thread for the duration of the real I/O.
//
// A File may be carved into Slices: page-range views that share the backing
// os.File but carry their own counters. Slices exist for the partitioned
// concurrent engine, whose device counters are plain (non-atomic) ints
// serialized by a per-partition lock — two partitions may do I/O on the same
// backing file at once, but each increments only its own slice's counters.
type File struct {
	f        *os.File
	pageSize int
	base     PageNum // first backing-file page of this view
	capacity PageNum
	owner    bool // owns (closes, truncates) the backing file
	pending  atomic.Int64
	stats    Stats
}

// OpenFile creates (or truncates) path as a device of capacity pages of
// pageSize bytes each.
func OpenFile(path string, pageSize int, capacity PageNum) (*File, error) {
	return openFile(path, pageSize, capacity, true)
}

// OpenFileExisting opens path as a device of capacity pages, keeping any
// existing contents (the file is extended with zero pages if shorter). This
// is the restart path: a database directory written by a previous process —
// including one that was killed mid-write — reopens with its pages and its
// persisted log intact.
func OpenFileExisting(path string, pageSize int, capacity PageNum) (*File, error) {
	return openFile(path, pageSize, capacity, false)
}

func openFile(path string, pageSize int, capacity PageNum, truncate bool) (*File, error) {
	if pageSize <= 0 || capacity < 0 {
		return nil, fmt.Errorf("device: bad file geometry pageSize=%d capacity=%d", pageSize, capacity)
	}
	flags := os.O_RDWR | os.O_CREATE
	if truncate {
		flags |= os.O_TRUNC
	}
	f, err := os.OpenFile(path, flags, 0o644)
	if err != nil {
		return nil, err
	}
	want := int64(pageSize) * int64(capacity)
	if truncate {
		if err := f.Truncate(want); err != nil {
			f.Close()
			return nil, err
		}
	} else if st, err := f.Stat(); err != nil {
		f.Close()
		return nil, err
	} else if st.Size() < want {
		if err := f.Truncate(want); err != nil {
			f.Close()
			return nil, err
		}
	}
	return &File{f: f, pageSize: pageSize, capacity: capacity, owner: true}, nil
}

// Slice returns a view of pages [base, base+capacity) as an independent
// Device with zeroed counters. The view shares the backing os.File (ReadAt
// and WriteAt are safe for concurrent use at disjoint offsets); Close on a
// slice is a no-op and Sync flushes the whole backing file.
func (d *File) Slice(base, capacity PageNum) (*File, error) {
	if base < 0 || capacity < 0 || base+capacity > d.capacity {
		return nil, fmt.Errorf("device: slice [%d,%d) of %d pages", base, int64(base)+int64(capacity), d.capacity)
	}
	return &File{f: d.f, pageSize: d.pageSize, base: d.base + base, capacity: capacity}, nil
}

// Read fills bufs from the file. Each buffer must be exactly one page.
func (d *File) Read(_ *sim.Proc, page PageNum, bufs [][]byte) error {
	if err := d.check(page, bufs); err != nil {
		return err
	}
	d.pending.Add(1)
	defer d.pending.Add(-1)
	for i, buf := range bufs {
		off := (int64(d.base) + int64(page) + int64(i)) * int64(d.pageSize)
		if _, err := d.f.ReadAt(buf, off); err != nil {
			return fmt.Errorf("device: read page %d: %w", int64(page)+int64(i), err)
		}
	}
	d.stats.ReadOps.Add(1)
	d.stats.ReadPages.Add(int64(len(bufs)))
	return nil
}

// Write persists bufs to the file.
func (d *File) Write(_ *sim.Proc, page PageNum, bufs [][]byte) error {
	if err := d.check(page, bufs); err != nil {
		return err
	}
	d.pending.Add(1)
	defer d.pending.Add(-1)
	for i, buf := range bufs {
		off := (int64(d.base) + int64(page) + int64(i)) * int64(d.pageSize)
		if _, err := d.f.WriteAt(buf, off); err != nil {
			return fmt.Errorf("device: write page %d: %w", int64(page)+int64(i), err)
		}
	}
	d.stats.WriteOps.Add(1)
	d.stats.WritePages.Add(int64(len(bufs)))
	return nil
}

// ReadTask performs the real read synchronously (file I/O charges no
// virtual time) and continues with its result.
func (d *File) ReadTask(_ *sim.Task, page PageNum, bufs [][]byte, k func(error)) {
	k(d.Read(nil, page, bufs))
}

// WriteTask performs the real write synchronously and continues with its
// result.
func (d *File) WriteTask(_ *sim.Task, page PageNum, bufs [][]byte, k func(error)) {
	k(d.Write(nil, page, bufs))
}

func (d *File) check(page PageNum, bufs [][]byte) error {
	if err := checkRange(page, len(bufs), d.capacity); err != nil {
		return err
	}
	for _, buf := range bufs {
		if len(buf) != d.pageSize {
			return fmt.Errorf("device: buffer size %d != page size %d", len(buf), d.pageSize)
		}
	}
	return nil
}

// Preload writes data to page without counting it in the stats.
func (d *File) Preload(page PageNum, data []byte) error {
	if err := checkRange(page, 1, d.capacity); err != nil {
		return err
	}
	if len(data) != d.pageSize {
		return fmt.Errorf("device: preload size %d != page size %d", len(data), d.pageSize)
	}
	_, err := d.f.WriteAt(data, (int64(d.base)+int64(page))*int64(d.pageSize))
	return err
}

// Sync flushes the backing file to stable storage (the whole file, even
// when called on a slice).
func (d *File) Sync() error { return d.f.Sync() }

// Close closes the backing file. On a slice it is a no-op: the owning File
// closes the shared handle.
func (d *File) Close() error {
	if !d.owner {
		return nil
	}
	return d.f.Close()
}

// Pending reports in-flight requests.
func (d *File) Pending() int { return int(d.pending.Load()) }

// Stats returns cumulative counters.
func (d *File) Stats() *Stats { return &d.stats }
