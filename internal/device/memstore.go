package device

// memstore is the persistent content of a simulated device: one payload-copy
// slot per page, directly indexed. The slot array grows geometrically to the
// highest page ever written — FormatDB densifies the database disks anyway,
// so a flat array is both smaller and faster than a sparse table (page
// lookup is an index, not a hash probe), while nominally huge devices that
// are never written (the discarded-content log device) cost nothing. Pages
// never written read back as zero-filled.
type memstore struct {
	pages [][]byte
}

func newMemstore() *memstore {
	return &memstore{}
}

// read copies the stored payload for page into buf (zero-fills if the page
// was never written). Short or long buffers copy min(len).
func (m *memstore) read(page PageNum, buf []byte) {
	var src []byte
	if int64(page) < int64(len(m.pages)) {
		src = m.pages[page]
	}
	n := copy(buf, src)
	for i := n; i < len(buf); i++ {
		buf[i] = 0
	}
}

// write stores a copy of buf as the content of page.
func (m *memstore) write(page PageNum, buf []byte) {
	if int64(page) >= int64(len(m.pages)) {
		n := int64(len(m.pages)) * 2
		if n <= int64(page) {
			n = int64(page) + 1
		}
		grown := make([][]byte, n)
		copy(grown, m.pages)
		m.pages = grown
	}
	dst := m.pages[page]
	if len(dst) != len(buf) {
		dst = make([]byte, len(buf))
		m.pages[page] = dst
	}
	copy(dst, buf)
}
