package device

import "turbobp/internal/pagetab"

// memstore is the persistent content of a simulated device: a sparse table of
// page payload copies. Pages never written read back as zero-filled.
type memstore struct {
	pages pagetab.Table[[]byte]
}

func newMemstore() *memstore {
	return &memstore{}
}

// read copies the stored payload for page into buf (zero-fills if the page
// was never written). Short or long buffers copy min(len).
func (m *memstore) read(page PageNum, buf []byte) {
	src, ok := m.pages.Get(uint64(page))
	if !ok {
		for i := range buf {
			buf[i] = 0
		}
		return
	}
	n := copy(buf, src)
	for i := n; i < len(buf); i++ {
		buf[i] = 0
	}
}

// write stores a copy of buf as the content of page.
func (m *memstore) write(page PageNum, buf []byte) {
	dst, ok := m.pages.Get(uint64(page))
	if !ok || len(dst) != len(buf) {
		dst = make([]byte, len(buf))
		m.pages.Put(uint64(page), dst)
	}
	copy(dst, buf)
}

// len reports the number of pages ever written.
func (m *memstore) len() int { return m.pages.Len() }
