package device

import (
	"errors"
	"time"
)

// RetryPolicy bounds transient-I/O retries on a device path. The ssd
// manager and the engine's HDD reads share one policy so every backend
// degrades the same way: an op gets Attempts tries total, with a simulated
// Backoff wait (scaled linearly by retry number) before each re-issue.
//
// The zero value means "one attempt, no retry"; DefaultRetryPolicy
// preserves the historical manager behavior of exactly one retry.
type RetryPolicy struct {
	Attempts int           // total attempts per operation (<= 0 means 1)
	Backoff  time.Duration // simulated wait before the k-th retry is k*Backoff
}

// DefaultRetryPolicy is the policy engines install when none is given.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{Attempts: 2, Backoff: 100 * time.Microsecond}
}

// Retryable reports whether a failed attempt number `attempt` (1-based)
// should be re-issued. Whole-device loss is never retryable: the latch is
// permanent and recovery, not persistence, is the fix.
func (rp RetryPolicy) Retryable(err error, attempt int) bool {
	if err == nil || errors.Is(err, ErrLost) {
		return false
	}
	max := rp.Attempts
	if max <= 0 {
		max = 1
	}
	return attempt < max
}

// Delay returns the simulated backoff before re-issuing after `attempt`
// failed tries. Linear rather than exponential: the sim models firmware
// retry pacing, not congestion control, and linear keeps virtual-time
// arithmetic obvious in traces.
func (rp RetryPolicy) Delay(attempt int) time.Duration {
	if rp.Backoff <= 0 || attempt <= 0 {
		return 0
	}
	return time.Duration(attempt) * rp.Backoff
}
