package device

import (
	"time"

	"turbobp/internal/sim"
)

// Profile is the latency model of one simulated device, expressed as the
// service time of the first page of a request plus a per-page streaming time
// for the remainder. A request is "sequential" when it starts where the
// previous request on the device ended; sequential requests skip the
// positioning cost of the first page.
type Profile struct {
	RandRead  time.Duration // first page of a non-sequential read
	SeqRead   time.Duration // each subsequent / sequential page read
	RandWrite time.Duration // first page of a non-sequential write
	SeqWrite  time.Duration // each subsequent / sequential page written
}

// ProfileFromIOPS derives a Profile from sustained 1-page IOPS figures, as
// reported in the paper's Table 1: the sequential per-page time is 1/seqIOPS
// and the random first-page time is 1/randIOPS.
func ProfileFromIOPS(randRead, seqRead, randWrite, seqWrite float64) Profile {
	per := func(iops float64) time.Duration {
		return time.Duration(float64(time.Second) / iops)
	}
	return Profile{
		RandRead:  per(randRead),
		SeqRead:   per(seqRead),
		RandWrite: per(randWrite),
		SeqWrite:  per(seqWrite),
	}
}

// simDevice is a single-server queueing model of a storage device: requests
// are served FIFO, one at a time, each charging virtual time according to
// the Profile, with page payloads kept in a memstore.
type simDevice struct {
	res      *sim.Resource
	profile  Profile
	capacity PageNum
	head     PageNum // page following the last request (for sequential detection)
	store    *memstore
	stats    Stats

	// Free list of run-to-completion request states. Requests are taken per
	// ioTask call and returned at completion, so steady-state task I/O
	// allocates nothing; the pre-bound method continuations are created once
	// per state. The simulation kernel serializes access.
	reqFree []*ioReq
}

// ioReq carries one in-flight task-form request through acquire → service →
// complete without per-call closures.
type ioReq struct {
	d     *simDevice
	t     *sim.Task
	page  PageNum
	bufs  [][]byte
	write bool
	dur   time.Duration
	seq   bool
	k     func(error)

	onAcquire func() // bound to (*ioReq).acquired once
	onDone    func() // bound to (*ioReq).done once
}

func (d *simDevice) getReq() *ioReq {
	if n := len(d.reqFree); n > 0 {
		r := d.reqFree[n-1]
		d.reqFree[n-1] = nil
		d.reqFree = d.reqFree[:n-1]
		return r
	}
	r := &ioReq{d: d}
	r.onAcquire = r.acquired
	r.onDone = r.done
	return r
}

// acquired runs when the device grants the request: cost is computed at
// service start (head position matters) and the completion is scheduled.
func (r *ioReq) acquired() {
	r.dur, r.seq = r.d.cost(r.page, len(r.bufs), r.write)
	r.t.Sleep(r.dur, r.onDone)
}

// done applies the request's effects at completion time and recycles the
// state before continuing, so k may immediately issue another request.
func (r *ioReq) done() {
	d := r.d
	d.complete(r.page, r.bufs, r.write, r.dur, r.seq)
	d.res.Release()
	k := r.k
	r.t, r.bufs, r.k = nil, nil, nil
	d.reqFree = append(d.reqFree, r)
	k(nil)
}

func newSimDevice(env *sim.Env, profile Profile, capacity PageNum) *simDevice {
	return &simDevice{
		res:      sim.NewResource(env, 1),
		profile:  profile,
		capacity: capacity,
		head:     -1,
		store:    newMemstore(),
	}
}

// cost returns the service time of an n-page request starting at page given
// the current head position.
func (d *simDevice) cost(page PageNum, n int, write bool) (time.Duration, bool) {
	seq := page == d.head
	first, rest := d.profile.RandRead, d.profile.SeqRead
	if write {
		first, rest = d.profile.RandWrite, d.profile.SeqWrite
	}
	if seq {
		first = rest
	}
	return first + time.Duration(n-1)*rest, seq
}

// complete applies a request's effects at its completion time: payload
// transfer, head movement and stats. It runs after the service time has
// been charged, so queueing semantics and sampler bucket attribution are
// identical for the blocking and task forms.
func (d *simDevice) complete(page PageNum, bufs [][]byte, write bool, dur time.Duration, seq bool) {
	switch {
	case d.store == nil:
		if !write {
			for _, buf := range bufs {
				for i := range buf {
					buf[i] = 0
				}
			}
		}
	case write:
		for i, buf := range bufs {
			d.store.write(page+PageNum(i), buf)
		}
	default:
		for i, buf := range bufs {
			d.store.read(page+PageNum(i), buf)
		}
	}
	d.head = page + PageNum(len(bufs))
	if write {
		d.stats.WriteOps.Add(1)
		d.stats.WritePages.Add(int64(len(bufs)))
	} else {
		d.stats.ReadOps.Add(1)
		d.stats.ReadPages.Add(int64(len(bufs)))
	}
	d.stats.BusyNanos.Add(int64(dur))
	if seq {
		if write {
			d.stats.SeqWrites.Add(1)
		} else {
			d.stats.SeqReads.Add(1)
		}
	}
}

// io serves one request on behalf of a blocking process.
func (d *simDevice) io(p *sim.Proc, page PageNum, bufs [][]byte, write bool) error {
	if err := checkRange(page, len(bufs), d.capacity); err != nil {
		return err
	}
	if len(bufs) == 0 {
		return nil
	}
	d.res.Acquire(p)
	dur, seq := d.cost(page, len(bufs), write)
	p.Sleep(dur)
	d.complete(page, bufs, write, dur, seq)
	d.res.Release()
	return nil
}

// ioTask serves one request in run-to-completion form. When the device is
// idle and the completion is provably the next dispatch, the whole request
// — queue entry, service time, completion — resolves analytically with no
// scheduler round-trip at all: AcquireFunc grants inline and Task.Sleep
// advances the clock inline.
func (d *simDevice) ioTask(t *sim.Task, page PageNum, bufs [][]byte, write bool, k func(error)) {
	if err := checkRange(page, len(bufs), d.capacity); err != nil {
		k(err)
		return
	}
	if len(bufs) == 0 {
		k(nil)
		return
	}
	r := d.getReq()
	r.t, r.page, r.bufs, r.write, r.k = t, page, bufs, write, k
	d.res.AcquireFunc(r.onAcquire)
}

func (d *simDevice) Read(p *sim.Proc, page PageNum, bufs [][]byte) error {
	return d.io(p, page, bufs, false)
}

func (d *simDevice) Write(p *sim.Proc, page PageNum, bufs [][]byte) error {
	return d.io(p, page, bufs, true)
}

func (d *simDevice) ReadTask(t *sim.Task, page PageNum, bufs [][]byte, k func(error)) {
	d.ioTask(t, page, bufs, false, k)
}

func (d *simDevice) WriteTask(t *sim.Task, page PageNum, bufs [][]byte, k func(error)) {
	d.ioTask(t, page, bufs, true, k)
}

func (d *simDevice) Preload(page PageNum, data []byte) error {
	if err := checkRange(page, 1, d.capacity); err != nil {
		return err
	}
	if d.store != nil {
		d.store.write(page, data)
	}
	return nil
}

// DiscardContent switches the device to a timing-only model: writes drop
// their payloads and reads return zero-filled pages. Timing, queueing and
// stats are unchanged. The engine uses it for the log device, whose content
// is never read back (recovery replays the in-memory durable records) but
// whose ever-advancing write position would otherwise make the store retain
// a copy of every log page ever flushed.
func (d *simDevice) DiscardContent() { d.store = nil }

func (d *simDevice) Pending() int  { return d.res.Pending() }
func (d *simDevice) Stats() *Stats { return &d.stats }

// HDD is a simulated single hard disk drive.
type HDD struct{ simDevice }

// NewHDD returns a disk with the given latency profile and capacity.
func NewHDD(env *sim.Env, profile Profile, capacity PageNum) *HDD {
	return &HDD{*newSimDevice(env, profile, capacity)}
}

// SSD is a simulated flash solid-state drive.
type SSD struct{ simDevice }

// NewSSD returns an SSD with the given latency profile and capacity.
func NewSSD(env *sim.Env, profile Profile, capacity PageNum) *SSD {
	return &SSD{*newSimDevice(env, profile, capacity)}
}
