package device

import (
	"time"

	"turbobp/internal/sim"
)

// Profile is the latency model of one simulated device, expressed as the
// service time of the first page of a request plus a per-page streaming time
// for the remainder. A request is "sequential" when it starts where the
// previous request on the device ended; sequential requests skip the
// positioning cost of the first page.
type Profile struct {
	RandRead  time.Duration // first page of a non-sequential read
	SeqRead   time.Duration // each subsequent / sequential page read
	RandWrite time.Duration // first page of a non-sequential write
	SeqWrite  time.Duration // each subsequent / sequential page written
}

// ProfileFromIOPS derives a Profile from sustained 1-page IOPS figures, as
// reported in the paper's Table 1: the sequential per-page time is 1/seqIOPS
// and the random first-page time is 1/randIOPS.
func ProfileFromIOPS(randRead, seqRead, randWrite, seqWrite float64) Profile {
	per := func(iops float64) time.Duration {
		return time.Duration(float64(time.Second) / iops)
	}
	return Profile{
		RandRead:  per(randRead),
		SeqRead:   per(seqRead),
		RandWrite: per(randWrite),
		SeqWrite:  per(seqWrite),
	}
}

// simDevice is a single-server queueing model of a storage device: requests
// are served FIFO, one at a time, each charging virtual time according to
// the Profile, with page payloads kept in a memstore.
type simDevice struct {
	res      *sim.Resource
	profile  Profile
	capacity PageNum
	head     PageNum // page following the last request (for sequential detection)
	store    *memstore
	stats    Stats
}

func newSimDevice(env *sim.Env, profile Profile, capacity PageNum) *simDevice {
	return &simDevice{
		res:      sim.NewResource(env, 1),
		profile:  profile,
		capacity: capacity,
		head:     -1,
		store:    newMemstore(),
	}
}

// cost returns the service time of an n-page request starting at page given
// the current head position.
func (d *simDevice) cost(page PageNum, n int, write bool) (time.Duration, bool) {
	seq := page == d.head
	first, rest := d.profile.RandRead, d.profile.SeqRead
	if write {
		first, rest = d.profile.RandWrite, d.profile.SeqWrite
	}
	if seq {
		first = rest
	}
	return first + time.Duration(n-1)*rest, seq
}

func (d *simDevice) Read(p *sim.Proc, page PageNum, bufs [][]byte) error {
	if err := checkRange(page, len(bufs), d.capacity); err != nil {
		return err
	}
	if len(bufs) == 0 {
		return nil
	}
	d.res.Acquire(p)
	dur, seq := d.cost(page, len(bufs), false)
	p.Sleep(dur)
	for i, buf := range bufs {
		d.store.read(page+PageNum(i), buf)
	}
	d.head = page + PageNum(len(bufs))
	d.stats.ReadOps.Add(1)
	d.stats.ReadPages.Add(int64(len(bufs)))
	d.stats.BusyNanos.Add(int64(dur))
	if seq {
		d.stats.SeqReads.Add(1)
	}
	d.res.Release()
	return nil
}

func (d *simDevice) Write(p *sim.Proc, page PageNum, bufs [][]byte) error {
	if err := checkRange(page, len(bufs), d.capacity); err != nil {
		return err
	}
	if len(bufs) == 0 {
		return nil
	}
	d.res.Acquire(p)
	dur, seq := d.cost(page, len(bufs), true)
	p.Sleep(dur)
	for i, buf := range bufs {
		d.store.write(page+PageNum(i), buf)
	}
	d.head = page + PageNum(len(bufs))
	d.stats.WriteOps.Add(1)
	d.stats.WritePages.Add(int64(len(bufs)))
	d.stats.BusyNanos.Add(int64(dur))
	if seq {
		d.stats.SeqWrites.Add(1)
	}
	d.res.Release()
	return nil
}

func (d *simDevice) Preload(page PageNum, data []byte) error {
	if err := checkRange(page, 1, d.capacity); err != nil {
		return err
	}
	d.store.write(page, data)
	return nil
}

func (d *simDevice) Pending() int  { return d.res.Pending() }
func (d *simDevice) Stats() *Stats { return &d.stats }

// HDD is a simulated single hard disk drive.
type HDD struct{ simDevice }

// NewHDD returns a disk with the given latency profile and capacity.
func NewHDD(env *sim.Env, profile Profile, capacity PageNum) *HDD {
	return &HDD{*newSimDevice(env, profile, capacity)}
}

// SSD is a simulated flash solid-state drive.
type SSD struct{ simDevice }

// NewSSD returns an SSD with the given latency profile and capacity.
func NewSSD(env *sim.Env, profile Profile, capacity PageNum) *SSD {
	return &SSD{*newSimDevice(env, profile, capacity)}
}
