package engine

import (
	"errors"

	"turbobp/internal/device"
	"turbobp/internal/fault"
	"turbobp/internal/page"
	"turbobp/internal/sim"
	"turbobp/internal/ssd"
	"turbobp/internal/wal"
)

// checkpointBatch caps the pages per checkpoint disk write.
const checkpointBatch = 32

// Checkpoint performs a sharp checkpoint (§3.2): every dirty page in the
// memory pool — and, under LC, every dirty page in the SSD — is flushed to
// the disks, then a checkpoint record is logged. Recovery replays only log
// records newer than the flush's starting LSN.
//
// Two crash points bracket the checkpoint record: mid-checkpoint crashes
// after the flushes but before the record is durable (recovery falls back
// to the previous checkpoint — correct, merely slower), post-checkpoint
// crashes right after the record is durable and the log truncated.
func (e *Engine) Checkpoint(p *sim.Proc) error {
	if e.cfg.FuzzyCheckpoints {
		return e.fuzzyCheckpoint(p)
	}
	e.stats.Checkpoints++
	startLSN := e.log.NextLSN() - 1
	e.mgr.SetCheckpointing(true)
	// Resolve e.mgr at defer time: SSD-loss recovery replaces it mid-flush.
	defer func() { e.mgr.SetCheckpointing(false) }()

	// An SSD loss mid-flush replaces the manager and redoes its uniquely-
	// dirty pages into the pool as pool-dirty frames, so the flush must
	// restart to pick them up: truncating the log without re-flushing them
	// would lose those updates at the next crash.
	for attempt := 0; ; attempt++ {
		err := e.checkpointFlush(p)
		if err == nil {
			break
		}
		if !errors.Is(err, device.ErrLost) || attempt >= 2 {
			return err
		}
		if rerr := e.RecoverSSDLoss(p); rerr != nil {
			return rerr
		}
		e.mgr.SetCheckpointing(true)
	}

	if e.cfg.Faults.At(fault.SiteMidCheckpoint) {
		return fault.ErrCrashPoint
	}

	// With warm restart enabled, the checkpoint record carries the SSD
	// buffer table so a restart can reuse the cache (§6).
	var tableBlob []byte
	if e.cfg.WarmRestart {
		tableBlob = e.mgr.SnapshotTable()
	}
	lsn := e.log.Append(wal.Record{Type: wal.TypeCheckpoint, StartLSN: startLSN, Payload: tableBlob})
	e.log.Flush(p, lsn)
	e.log.TruncateThrough(startLSN)
	if e.cfg.Faults.At(fault.SitePostCheckpoint) {
		return fault.ErrCrashPoint
	}
	return nil
}

// checkpointFlush is the flush half of a sharp checkpoint: every dirty pool
// page, then (LC) every dirty SSD page.
func (e *Engine) checkpointFlush(p *sim.Proc) error {
	dirty := e.DirtyPoolPages()
	i := 0
	for i < len(dirty) {
		// Group contiguous page ids into one write, up to checkpointBatch.
		j := i + 1
		for j < len(dirty) && j-i < checkpointBatch && dirty[j] == dirty[j-1]+1 {
			j++
		}
		if err := e.checkpointRun(p, dirty[i:j]); err != nil {
			return err
		}
		i = j
	}
	if e.cfg.Design == ssd.LC {
		return e.mgr.FlushDirty(p)
	}
	return nil
}

// fuzzyCheckpoint records the redo horizon without flushing anything: the
// horizon is just below the oldest update still missing from the disks —
// the minimum RecLSN over dirty pool pages and dirty SSD pages. Recovery
// then redoes everything after it. Restart time grows with the dirty set,
// which is exactly the λ tradeoff §2.3.3 describes.
func (e *Engine) fuzzyCheckpoint(p *sim.Proc) error {
	e.stats.Checkpoints++
	horizon := e.log.NextLSN() - 1
	for _, id := range e.pool.DirtyPages() {
		if f := e.pool.Peek(id); f != nil && f.Dirty && f.RecLSN > 0 && f.RecLSN-1 < horizon {
			horizon = f.RecLSN - 1
		}
	}
	if min, ok := e.mgr.MinDirtyLSN(); ok && min > 0 && min-1 < horizon {
		horizon = min - 1
	}
	var tableBlob []byte
	if e.cfg.WarmRestart {
		tableBlob = e.mgr.SnapshotTable()
	}
	lsn := e.log.Append(wal.Record{Type: wal.TypeCheckpoint, StartLSN: horizon, Payload: tableBlob})
	e.log.Flush(p, lsn)
	e.log.TruncateThrough(horizon)
	return nil
}

// checkpointRun flushes one contiguous group of dirty pool pages.
func (e *Engine) checkpointRun(p *sim.Proc, ids []page.ID) error {
	bufs := make([][]byte, 0, len(ids))
	kept := make([]page.ID, 0, len(ids))
	lsns := make([]uint64, 0, len(ids))
	randoms := make([]bool, 0, len(ids))
	var maxLSN uint64
	start := ids[0]
	for _, id := range ids {
		f := e.pool.Peek(id)
		if f == nil || !f.Dirty {
			// Evicted or cleaned since we listed it. A gap would break the
			// contiguous write; fall back to singles from here.
			return e.checkpointSingles(p, ids)
		}
		buf := make([]byte, e.bufSize())
		if err := page.Encode(&f.Pg, buf); err != nil {
			return err
		}
		bufs = append(bufs, buf)
		kept = append(kept, id)
		lsns = append(lsns, f.Pg.LSN)
		randoms = append(randoms, !f.Seq)
		if f.Pg.LSN > maxLSN {
			maxLSN = f.Pg.LSN
		}
	}
	// WAL: the log must be durable up to the newest page image written.
	e.log.Flush(p, maxLSN)
	if err := e.dbWrite(p, device.PageNum(start), bufs); err != nil {
		return err
	}
	for k, id := range kept {
		if err := e.finishCheckpointPage(p, id, lsns[k], randoms[k]); err != nil {
			return err
		}
	}
	return nil
}

// checkpointSingles flushes pages one at a time (used when a planned
// contiguous run was broken by concurrent activity).
func (e *Engine) checkpointSingles(p *sim.Proc, ids []page.ID) error {
	for _, id := range ids {
		f := e.pool.Peek(id)
		if f == nil || !f.Dirty {
			continue
		}
		buf := make([]byte, e.bufSize())
		if err := page.Encode(&f.Pg, buf); err != nil {
			return err
		}
		lsn := f.Pg.LSN
		random := !f.Seq
		e.log.Flush(p, lsn)
		if err := e.dbWrite(p, device.PageNum(id), [][]byte{buf}); err != nil {
			return err
		}
		if err := e.finishCheckpointPage(p, id, lsn, random); err != nil {
			return err
		}
	}
	return nil
}

// finishCheckpointPage marks a flushed page clean (unless re-dirtied while
// the write was in flight) and lets DW piggyback the flush into the SSD
// (§3.2). An SSD error from the piggyback propagates (the page itself is
// already safely on disk); Checkpoint's retry loop handles a lost device.
func (e *Engine) finishCheckpointPage(p *sim.Proc, id page.ID, writtenLSN uint64, random bool) error {
	f := e.pool.Peek(id)
	if f != nil && f.Dirty && f.Pg.LSN == writtenLSN {
		f.Dirty = false
		f.RecLSN = 0
		return e.mgr.OnCheckpointFlush(p, &f.Pg, random)
	}
	return nil
}

// startCheckpointer spawns the periodic checkpoint process. A generation
// counter retires stale checkpointers across crash/recover cycles.
func (e *Engine) startCheckpointer() {
	e.cpGen++
	gen := e.cpGen
	e.env.Go("checkpointer", func(p *sim.Proc) {
		for {
			p.Sleep(e.cfg.CheckpointInterval)
			if e.checkpointStop || e.crashed || e.cpGen != gen {
				return
			}
			if err := e.Checkpoint(p); err != nil {
				if errors.Is(err, fault.ErrCrashPoint) {
					// An armed crash site fired inside a periodic
					// checkpoint: stop here and let the fault driver
					// (which polls the injector) crash the engine.
					return
				}
				panic("engine: checkpoint: " + err.Error())
			}
		}
	})
}

// StopBackground asks background processes (checkpointer, cleaner,
// scrubber) to exit.
func (e *Engine) StopBackground() {
	e.checkpointStop = true
	e.mgr.StopCleaner()
	e.mgr.StopScrubber()
}
