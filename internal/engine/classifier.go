package engine

import "turbobp/internal/page"

// ClassifierKind selects how disk reads are classified into random vs
// sequential for the SSD admission policy (§2.2).
type ClassifierKind int

const (
	// ClassifyReadAhead leverages the DBMS read-ahead mechanism: a page is
	// sequential iff the read-ahead path issued it. This is the paper's
	// chosen classifier (~82% accurate on a pure sequential scan, since
	// the ramp-up pages of a scan are fetched individually).
	ClassifyReadAhead ClassifierKind = iota
	// ClassifyDistance is the alternative from Narayanan et al. [29]: a
	// read within 64 pages (512 KB) of the preceding read is sequential.
	// Concurrent interleaved streams confuse it (~51% accurate in the
	// paper's measurement).
	ClassifyDistance
)

// distanceWindow is the [29] heuristic's proximity threshold in pages.
const distanceWindow = 64

// classifier labels disk reads. label returns true for "sequential".
// noteDiskRead observes the global disk-read sequence (the distance
// heuristic needs it; interleaving is exactly what breaks it).
type classifier interface {
	label(pid page.ID, viaReadAhead bool) bool
	noteDiskRead(pid page.ID)
}

func newClassifier(kind ClassifierKind) classifier {
	switch kind {
	case ClassifyDistance:
		return &distanceClassifier{last: -1 << 60}
	default:
		return readAheadClassifier{}
	}
}

// readAheadClassifier trusts the read-ahead mechanism.
type readAheadClassifier struct{}

func (readAheadClassifier) label(_ page.ID, viaReadAhead bool) bool { return viaReadAhead }
func (readAheadClassifier) noteDiskRead(page.ID)                    {}

// distanceClassifier implements the 64-page proximity heuristic.
type distanceClassifier struct {
	last page.ID
}

func (c *distanceClassifier) label(pid page.ID, _ bool) bool {
	d := int64(pid - c.last)
	if d < 0 {
		d = -d
	}
	return d <= distanceWindow
}

func (c *distanceClassifier) noteDiskRead(pid page.ID) { c.last = pid }
