package engine

import (
	"math/rand"
	"reflect"
	"testing"
	"time"

	"turbobp/internal/fault"
	"turbobp/internal/page"
	"turbobp/internal/sim"
	"turbobp/internal/ssd"
)

// corruptWorkload runs a deterministic update/read mix over the first 128
// pages and returns the latest committed payload byte per page. The reads
// leave pages clean, which CW and TAC need to cache anything at all.
func corruptWorkload(t *testing.T, p *sim.Proc, e *Engine, seed int64, ops int) map[page.ID]byte {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	want := map[page.ID]byte{}
	for i := 0; i < ops; i++ {
		pid := page.ID(rng.Intn(128))
		if rng.Intn(2) == 0 {
			tx := e.Begin()
			v := byte(rng.Intn(256))
			if err := e.Update(p, tx, pid, func(pl []byte) { pl[0] = v }); err != nil {
				t.Fatal(err)
			}
			if err := e.Commit(p, tx); err != nil {
				t.Fatal(err)
			}
			want[pid] = v
		} else if _, err := e.Get(p, pid); err != nil {
			t.Fatal(err)
		}
		p.Sleep(time.Millisecond)
	}
	return want
}

// verifyWorkload re-reads every page the workload committed and checks the
// engine serves the latest value — the "no silent wrong answers" property.
func verifyWorkload(t *testing.T, p *sim.Proc, e *Engine, want map[page.ID]byte) {
	t.Helper()
	for pid := page.ID(0); pid < 128; pid++ {
		v, ok := want[pid]
		if !ok {
			continue
		}
		f, err := e.Get(p, pid)
		if err != nil {
			t.Fatalf("verify read page %d: %v", pid, err)
		}
		if f.Pg.Payload[0] != v {
			t.Errorf("page %d: payload %#x, want %#x", pid, f.Pg.Payload[0], v)
		}
	}
}

// cleanVictim picks a page with a valid clean SSD copy that is not
// memory-resident, so the next Get must read the (corruptible) SSD frame.
func cleanVictim(t *testing.T, e *Engine) (page.ID, int) {
	t.Helper()
	for _, pid := range e.SSD().CleanPageIDs() {
		if e.Pool().Peek(pid) != nil {
			continue
		}
		if idx, ok := e.SSD().FrameIndexOf(pid); ok {
			return pid, idx
		}
	}
	t.Fatal("no clean non-resident SSD page to corrupt")
	return 0, 0
}

// TestCorruptCleanSSDServedFromDisk: bit rot in a clean SSD frame is caught
// by the checksum, the entry is dropped (that IS the repair — the disk copy
// is identical by definition), and the read is served correctly from disk.
func TestCorruptCleanSSDServedFromDisk(t *testing.T) {
	for _, design := range []ssd.Design{ssd.CW, ssd.DW, ssd.LC, ssd.TAC} {
		t.Run(design.String(), func(t *testing.T) {
			inj := fault.New(1)
			cfg := testConfig(design)
			cfg.Faults = inj
			env, e := start(t, cfg)
			defer finish(env, e)
			drive(t, env, e, func(p *sim.Proc) {
				want := corruptWorkload(t, p, e, 21, 300)
				pid, idx := cleanVictim(t, e)
				inj.RotSlot("ssd", int64(idx), 131)
				f, err := e.Get(p, pid)
				if err != nil {
					t.Fatalf("read of rotted page %d: %v", pid, err)
				}
				if v, ok := want[pid]; ok && f.Pg.Payload[0] != v {
					t.Errorf("rotted page %d served %#x, want %#x", pid, f.Pg.Payload[0], v)
				}
				st := e.SSD().Stats()
				if st.CorruptDetected < 1 || st.CorruptRepaired < 1 {
					t.Errorf("detected=%d repaired=%d, want >= 1 each",
						st.CorruptDetected, st.CorruptRepaired)
				}
				verifyWorkload(t, p, e, want)
			})
		})
	}
}

// TestCorruptDirtySSDRebuiltFromWAL: bit rot in a uniquely-dirty LC frame —
// the only up-to-date copy — must be rebuilt from the WAL's newest
// after-image, never silently served from the stale disk version.
func TestCorruptDirtySSDRebuiltFromWAL(t *testing.T) {
	inj := fault.New(2)
	cfg := testConfig(ssd.LC)
	cfg.DirtyFraction = 0.9
	cfg.Faults = inj
	env, e := start(t, cfg)
	defer finish(env, e)
	drive(t, env, e, func(p *sim.Proc) {
		want := corruptWorkload(t, p, e, 22, 300)
		var pid page.ID
		idx := -1
		for _, cand := range e.SSD().DirtyPageIDs() {
			if e.Pool().Peek(cand) != nil {
				continue
			}
			if i, ok := e.SSD().FrameIndexOf(cand); ok {
				pid, idx = cand, i
				break
			}
		}
		if idx < 0 {
			t.Fatal("no dirty non-resident SSD page to corrupt")
		}
		inj.RotSlot("ssd", int64(idx), 67)
		f, err := e.Get(p, pid)
		if err != nil {
			t.Fatalf("read of rotted dirty page %d: %v", pid, err)
		}
		if v, ok := want[pid]; ok && f.Pg.Payload[0] != v {
			t.Errorf("rotted dirty page %d served %#x, want %#x", pid, f.Pg.Payload[0], v)
		}
		if sst := e.SSD().Stats(); sst.CorruptDirty < 1 {
			t.Errorf("CorruptDirty = %d, want >= 1", sst.CorruptDirty)
		}
		if est := e.Stats(); est.CorruptRedo < 1 {
			t.Errorf("CorruptRedo = %d, want >= 1", est.CorruptRedo)
		}
		verifyWorkload(t, p, e, want)
	})
}

// TestCorruptDiskRebuiltFromWAL: a rotted disk page with no cached copy is
// rebuilt from the WAL's newest full after-image and healed in place.
func TestCorruptDiskRebuiltFromWAL(t *testing.T) {
	for _, design := range []ssd.Design{ssd.CW, ssd.DW, ssd.LC, ssd.TAC} {
		t.Run(design.String(), func(t *testing.T) {
			inj := fault.New(3)
			cfg := testConfig(design)
			cfg.Faults = inj
			env, e := start(t, cfg)
			defer finish(env, e)
			drive(t, env, e, func(p *sim.Proc) {
				want := corruptWorkload(t, p, e, 23, 400)
				var pid page.ID
				found := false
				for cand := page.ID(0); cand < 128; cand++ {
					if _, ok := want[cand]; !ok {
						continue
					}
					if e.Pool().Peek(cand) != nil || e.SSD().Contains(cand) {
						continue
					}
					pid, found = cand, true
					break
				}
				if !found {
					t.Fatal("no updated cold page to corrupt")
				}
				inj.RotSlot("db", int64(pid), 45)
				f, err := e.Get(p, pid)
				if err != nil {
					t.Fatalf("read of rotted disk page %d: %v", pid, err)
				}
				if f.Pg.Payload[0] != want[pid] {
					t.Errorf("rotted disk page %d served %#x, want %#x", pid, f.Pg.Payload[0], want[pid])
				}
				st := e.Stats()
				if st.DiskCorruptions < 1 || st.DiskRepairsWAL < 1 {
					t.Errorf("DiskCorruptions=%d DiskRepairsWAL=%d, want >= 1 each",
						st.DiskCorruptions, st.DiskRepairsWAL)
				}
				// The heal is durable: clear the rot bookkeeping and re-read
				// through a fresh fetch — the disk must hold intact bytes.
				verifyWorkload(t, p, e, want)
			})
		})
	}
}

// TestMisdirectedSSDWriteDetected: a misdirected SSD write leaves the
// intended slot stale and clobbers a neighbour. The self-identifying header
// (id + LSN cross-check) catches both sides on their next read, and no read
// anywhere in the workload observes a wrong payload.
func TestMisdirectedSSDWriteDetected(t *testing.T) {
	for _, design := range []ssd.Design{ssd.CW, ssd.DW, ssd.LC, ssd.TAC} {
		t.Run(design.String(), func(t *testing.T) {
			inj := fault.New(4)
			cfg := testConfig(design)
			cfg.Faults = inj
			env, e := start(t, cfg)
			defer finish(env, e)
			drive(t, env, e, func(p *sim.Proc) {
				want := corruptWorkload(t, p, e, 24, 200)
				for k := 0; k < 3; k++ {
					inj.MisdirectWrite("ssd", inj.Writes("ssd")+2+k*5, +1)
				}
				more := corruptWorkload(t, p, e, 25, 200)
				for pid, v := range more {
					want[pid] = v
				}
				verifyWorkload(t, p, e, want)
			})
		})
	}
}

// TestStickyRotRetiresSlotsAndQuarantines: failing cells re-corrupt every
// rewrite, so their slots retire after RetireAfter failures; enough retired
// slots tip the device into quarantine (pass-through), and the engine keeps
// serving correct data straight from the disks.
func TestStickyRotRetiresSlotsAndQuarantines(t *testing.T) {
	inj := fault.New(5)
	cfg := testConfig(ssd.DW)
	cfg.RetireAfter = 1
	cfg.QuarantineAfter = 2
	cfg.Faults = inj
	env, e := start(t, cfg)
	defer finish(env, e)
	drive(t, env, e, func(p *sim.Proc) {
		want := corruptWorkload(t, p, e, 26, 300)
		chosen := map[int]bool{}
		var pids []page.ID
		for _, pid := range e.SSD().CleanPageIDs() {
			if len(pids) == 2 {
				break
			}
			if e.Pool().Peek(pid) != nil {
				continue
			}
			idx, ok := e.SSD().FrameIndexOf(pid)
			if !ok || chosen[idx] {
				continue
			}
			chosen[idx] = true
			inj.RotSlotSticky("ssd", int64(idx), 19)
			pids = append(pids, pid)
		}
		if len(pids) < 2 {
			t.Fatalf("only %d clean non-resident SSD pages, need 2", len(pids))
		}
		for _, pid := range pids {
			f, err := e.Get(p, pid)
			if err != nil {
				t.Fatalf("read of sticky-rotted page %d: %v", pid, err)
			}
			if v, ok := want[pid]; ok && f.Pg.Payload[0] != v {
				t.Errorf("sticky-rotted page %d served %#x, want %#x", pid, f.Pg.Payload[0], v)
			}
		}
		st := e.SSD().Stats()
		if st.Retired < 2 {
			t.Errorf("Retired = %d, want >= 2", st.Retired)
		}
		if !e.SSD().Quarantined() {
			t.Error("device not quarantined after repeated slot retirements")
		}
		if st.Quarantines != 1 {
			t.Errorf("Quarantines = %d, want 1", st.Quarantines)
		}
		// Quarantined operation: no new admissions, reads stay correct.
		admitsBefore := e.SSD().Stats().Admissions
		more := corruptWorkload(t, p, e, 27, 150)
		if got := e.SSD().Stats().Admissions; got != admitsBefore {
			t.Errorf("quarantined SSD admitted %d new pages", got-admitsBefore)
		}
		for pid, v := range more {
			want[pid] = v
		}
		verifyWorkload(t, p, e, want)
	})
}

// scrubRun drives one scrubber scenario to completion and returns the SSD
// stats and the injector's event trace. Used twice by the determinism test.
func scrubRun(t *testing.T) (ssd.Stats, []string) {
	t.Helper()
	inj := fault.New(6)
	cfg := testConfig(ssd.DW)
	cfg.ScrubPeriod = 10 * time.Millisecond
	cfg.ScrubBatch = 16
	cfg.Faults = inj
	env, e := start(t, cfg)
	defer finish(env, e)
	var st ssd.Stats
	drive(t, env, e, func(p *sim.Proc) {
		want := corruptWorkload(t, p, e, 28, 300)
		pid, idx := cleanVictim(t, e)
		inj.RotSlot("ssd", int64(idx), 77)
		p.Sleep(400 * time.Millisecond) // idle: only the scrubber touches the SSD
		st = e.SSD().Stats()
		if st.ScrubSweeps < 1 || st.ScrubFrames < 1 {
			t.Fatalf("scrubber never ran (sweeps=%d frames=%d)", st.ScrubSweeps, st.ScrubFrames)
		}
		if st.ScrubRepairs < 1 {
			t.Fatalf("scrubber did not repair the rotted frame (repairs=%d)", st.ScrubRepairs)
		}
		// The repair happened before any read touched the frame; the page
		// still serves an SSD hit with correct content.
		f, err := e.Get(p, pid)
		if err != nil {
			t.Fatalf("read of scrub-repaired page %d: %v", pid, err)
		}
		if v, ok := want[pid]; ok && f.Pg.Payload[0] != v {
			t.Errorf("scrub-repaired page %d served %#x, want %#x", pid, f.Pg.Payload[0], v)
		}
		verifyWorkload(t, p, e, want)
	})
	return st, inj.Events()
}

// TestScrubberRepairsRotProactively: the scrubber detects and repairs bit
// rot in the background, from the intact disk copy, without any foreground
// read being involved.
func TestScrubberRepairsRotProactively(t *testing.T) {
	scrubRun(t)
}

// TestScrubberDeterminism: two identical runs of the scrubber scenario make
// identical sweeps, repairs, and fault-event traces — the scrubber is an
// ordinary simulation task, so goldens stay byte-identical with it enabled.
func TestScrubberDeterminism(t *testing.T) {
	st1, ev1 := scrubRun(t)
	st2, ev2 := scrubRun(t)
	if st1 != st2 {
		t.Errorf("scrub stats diverge:\n  run1 %+v\n  run2 %+v", st1, st2)
	}
	if !reflect.DeepEqual(ev1, ev2) {
		t.Errorf("fault event traces diverge:\n  run1 %v\n  run2 %v", ev1, ev2)
	}
}
