package engine

import (
	"errors"
	"testing"
	"time"

	"turbobp/internal/page"
	"turbobp/internal/sim"
	"turbobp/internal/ssd"
)

// TestReadRunSkipsMidRunResidents drives the §3.3.3 path where pages in
// the middle of a read-ahead batch are already resident: their stale disk
// bytes are discarded and the resident copies win.
func TestReadRunSkipsMidRunResidents(t *testing.T) {
	cfg := testConfig(ssd.NoSSD)
	cfg.PoolPages = 16
	cfg.ReadAhead = 8
	cfg.ReadAheadRamp = -1
	env, e := start(t, cfg)
	defer finish(env, e)
	drive(t, env, e, func(p *sim.Proc) {
		// Make pages 103 and 104 resident — and DIRTY, so discarding the
		// disk versions wrongly would lose data.
		tx := e.Begin()
		e.Update(p, tx, 103, func(pl []byte) { pl[0] = 0xA3 })
		e.Update(p, tx, 104, func(pl []byte) { pl[0] = 0xA4 })
		e.Commit(p, tx)
		if err := e.Scan(p, 100, 8); err != nil {
			t.Fatal(err)
		}
		f3 := e.Pool().Peek(103)
		f4 := e.Pool().Peek(104)
		if f3 == nil || f4 == nil {
			t.Fatal("resident pages displaced by the scan")
		}
		if f3.Pg.Payload[0] != 0xA3 || f4.Pg.Payload[0] != 0xA4 {
			t.Error("scan replaced resident dirty pages with stale disk bytes")
		}
		if !f3.Dirty || !f4.Dirty {
			t.Error("dirty flags lost")
		}
	})
}

// TestErrNoFramesUnderFrameExhaustion: with more concurrent fills than
// frames, the engine reports ErrNoFrames rather than corrupting state.
func TestErrNoFramesUnderFrameExhaustion(t *testing.T) {
	cfg := testConfig(ssd.NoSSD)
	cfg.PoolPages = 2
	env, e := start(t, cfg)
	defer finish(env, e)
	sawErr := 0
	okCount := 0
	for i := 0; i < 6; i++ {
		pid := page.ID(i * 10)
		env.Go("reader", func(p *sim.Proc) {
			if _, err := e.Get(p, pid); err != nil {
				if !errors.Is(err, ErrNoFrames) {
					t.Errorf("unexpected error: %v", err)
				}
				sawErr++
				return
			}
			okCount++
		})
	}
	env.Run(time.Minute)
	e.StopBackground()
	if sawErr == 0 {
		t.Error("no ErrNoFrames despite 6 concurrent fills on 2 frames")
	}
	if okCount == 0 {
		t.Error("no fill succeeded")
	}
	// The pool must still be fully functional afterwards.
	done := false
	env.Go("after", func(p *sim.Proc) {
		if _, err := e.Get(p, 1); err != nil {
			t.Errorf("post-exhaustion read: %v", err)
		}
		done = true
	})
	env.Run(env.Now() + time.Minute)
	if !done {
		t.Fatal("post-exhaustion read never completed")
	}
}

// TestCheckpointConcurrentReDirty exercises the finishCheckpointPage LSN
// guard: a page re-dirtied while the checkpoint's write is in flight must
// stay dirty, and its newer update must survive a crash.
func TestCheckpointConcurrentReDirty(t *testing.T) {
	cfg := testConfig(ssd.NoSSD)
	env, e := start(t, cfg)
	defer finish(env, e)
	// Dirty a spread of pages (non-contiguous, forcing several runs).
	setupDone := false
	env.Go("setup", func(p *sim.Proc) {
		tx := e.Begin()
		for i := 0; i < 12; i++ {
			e.Update(p, tx, page.ID(i*5), func(pl []byte) { pl[0] = 1 })
		}
		e.Commit(p, tx)
		setupDone = true
	})
	env.Run(time.Minute)
	if !setupDone {
		t.Fatal("setup stalled")
	}

	cpDone := false
	env.Go("checkpointer", func(p *sim.Proc) {
		if err := e.Checkpoint(p); err != nil {
			t.Error(err)
		}
		cpDone = true
	})
	env.Go("mutator", func(p *sim.Proc) {
		// Interleave with the checkpoint's device writes.
		for i := 0; i < 8; i++ {
			p.Sleep(2 * time.Millisecond)
			tx := e.Begin()
			if err := e.Update(p, tx, page.ID((i%12)*5), func(pl []byte) { pl[0] = 9 }); err != nil {
				t.Error(err)
				return
			}
			e.Commit(p, tx)
		}
	})
	env.Run(env.Now() + time.Minute)
	if !cpDone {
		t.Fatal("checkpoint stalled")
	}
	// Crash and recover: the re-dirtied updates (committed) must survive.
	recovered := false
	env.Go("recover", func(p *sim.Proc) {
		e.Crash()
		if err := e.Recover(p); err != nil {
			t.Error(err)
			return
		}
		f, err := e.Get(p, 0)
		if err != nil {
			t.Error(err)
			return
		}
		if f.Pg.Payload[0] != 9 {
			t.Errorf("page 0 = %d after recovery, want the re-dirtied 9", f.Pg.Payload[0])
		}
		recovered = true
	})
	env.Run(env.Now() + time.Minute)
	if !recovered {
		t.Fatal("recovery stalled")
	}
}

// TestScanWholeDatabase covers scans that span stripe and read-ahead
// boundaries simultaneously.
func TestScanWholeDatabase(t *testing.T) {
	cfg := testConfig(ssd.DW)
	cfg.PoolPages = 64
	env, e := start(t, cfg)
	defer finish(env, e)
	drive(t, env, e, func(p *sim.Proc) {
		if err := e.Scan(p, 0, int(e.Config().DBPages)); err != nil {
			t.Fatal(err)
		}
	})
	if got := e.Stats().ScanPages; got != e.Config().DBPages {
		t.Errorf("ScanPages = %d, want %d", got, e.Config().DBPages)
	}
	d := e.DiskArray().Stats().Load()
	if d.ReadPages != e.Config().DBPages {
		t.Errorf("disk pages read = %d, want %d", d.ReadPages, e.Config().DBPages)
	}
}

// TestReadExpansionWarmup pins the Figure 8 start-up behaviour: while the
// pool has free frames, single-page reads widen to 8 pages.
func TestReadExpansionWarmup(t *testing.T) {
	cfg := testConfig(ssd.NoSSD)
	cfg.PoolPages = 64
	cfg.ReadExpansion = 8
	env, e := start(t, cfg)
	defer finish(env, e)
	drive(t, env, e, func(p *sim.Proc) {
		e.Get(p, 100)
		d := e.DiskArray().Stats().Load()
		if d.ReadOps != 1 || d.ReadPages != 8 {
			t.Errorf("warm-up read = %d ops / %d pages, want 1/8", d.ReadOps, d.ReadPages)
		}
		// The expansion tail is resident and marked sequential.
		f := e.Pool().Peek(104)
		if f == nil || !f.Seq {
			t.Error("expansion tail missing or not marked sequential")
		}
		// Fill the pool; expansion must stop afterwards.
		for pid := page.ID(0); pid < 70; pid++ {
			e.Get(p, pid)
		}
		before := e.DiskArray().Stats().Load()
		e.Get(p, 400)
		delta := e.DiskArray().Stats().Load().Sub(before)
		if delta.ReadPages != 1 {
			t.Errorf("post-warm-up read fetched %d pages, want 1", delta.ReadPages)
		}
	})
}

// TestExpansionNeverOverwritesNewerSSDVersion guards the LC interaction:
// expansion tails must not install stale disk versions of pages whose
// newest copy is on the SSD.
func TestExpansionNeverOverwritesNewerSSDVersion(t *testing.T) {
	cfg := testConfig(ssd.LC)
	cfg.PoolPages = 8
	cfg.DirtyFraction = 1.0
	cfg.ReadExpansion = 8
	env, e := start(t, cfg)
	defer finish(env, e)
	drive(t, env, e, func(p *sim.Proc) {
		tx := e.Begin()
		e.Update(p, tx, 103, func(pl []byte) { pl[0] = 0xEE })
		e.Commit(p, tx)
		// Evict 103 (dirty) to the SSD only.
		for pid := page.ID(200); pid < 210; pid++ {
			e.Get(p, pid)
		}
		if !e.SSD().IsDirty(103) {
			t.Fatal("newest copy not on SSD")
		}
		// Crash-free pool reset so expansion can trigger again.
		for pid := page.ID(300); pid < 308; pid++ {
			e.Get(p, pid)
		}
		// A read of 100 with expansion covers 100..107; 103's stale disk
		// version must not be installed.
		e.Get(p, 100)
		if f := e.Pool().Peek(103); f != nil && f.Pg.Payload[0] != 0xEE {
			t.Error("expansion installed a stale disk version over the SSD copy")
		}
		f, err := e.Get(p, 103)
		if err != nil {
			t.Fatal(err)
		}
		if f.Pg.Payload[0] != 0xEE {
			t.Errorf("page 103 = %#x, want 0xEE", f.Pg.Payload[0])
		}
	})
}

// TestCheckpointWhileCleanerActive regresses a livelock: an LC sharp
// checkpoint's FlushDirty must not spin at a frozen virtual instant while
// the background cleaner holds the oldest dirty frame pinned mid-transfer.
func TestCheckpointWhileCleanerActive(t *testing.T) {
	cfg := testConfig(ssd.LC)
	cfg.PoolPages = 16
	cfg.SSDFrames = 256
	cfg.DirtyFraction = 0.1 // cleaner engages early and often
	env, e := start(t, cfg)
	defer finish(env, e)
	drive(t, env, e, func(p *sim.Proc) {
		// Generate enough dirty SSD pages that the cleaner is running.
		tx := e.Begin()
		for i := 0; i < 400; i++ {
			e.Update(p, tx, page.ID(i%200), func(pl []byte) { pl[0]++ })
			if i%50 == 49 {
				e.Commit(p, tx)
				tx = e.Begin()
			}
		}
		e.Commit(p, tx)
		// Checkpoint immediately, racing the active cleaner. Before the
		// fix this froze the virtual clock forever; drive()'s deadline
		// turns that into a test failure.
		if err := e.Checkpoint(p); err != nil {
			t.Fatal(err)
		}
		if e.SSD().DirtyCount() != 0 {
			t.Errorf("%d dirty SSD pages survived the checkpoint", e.SSD().DirtyCount())
		}
	})
}
