// Package engine implements the DBMS storage engine that hosts the SSD
// buffer-pool extension: the memory buffer pool, the disk manager over a
// striped HDD array, the write-ahead log, sharp checkpointing, crash
// recovery, and the §2.2 data flow between the buffer manager, SSD manager
// and disk manager.
package engine

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"turbobp/internal/bufpool"
	"turbobp/internal/device"
	"turbobp/internal/fault"
	"turbobp/internal/metrics"
	"turbobp/internal/page"
	"turbobp/internal/policy"
	"turbobp/internal/sim"
	"turbobp/internal/ssd"
	"turbobp/internal/wal"
)

// Config describes one engine instance. Zero fields take the paper's
// defaults (Table 2) where one exists.
type Config struct {
	Design ssd.Design

	// Policy selects the cache replacement/admission policy used by both
	// the memory buffer pool and the SSD tier's clean-frame ordering. The
	// zero value is the original LRU-2 behaviour.
	Policy policy.Kind

	DBPages     int64 // database size in pages
	PoolPages   int   // memory buffer pool frames
	SSDFrames   int   // S: SSD buffer pool frames (0 disables)
	PayloadSize int   // page payload bytes

	Disks      int   // HDDs in the database stripe set (8 in the paper)
	StripeUnit int64 // stripe unit in pages

	// Paper knobs (Table 2).
	Partitions    int     // N
	FillThreshold float64 // τ
	Throttle      int     // μ
	GroupClean    int     // α
	DirtyFraction float64 // λ

	CheckpointInterval time.Duration // 0 = checkpointing off
	ReadAhead          int           // read-ahead batch size in pages
	ReadAheadRamp      int           // pages read individually before read-ahead kicks in
	// ReadExpansion widens every single-page read to this many contiguous
	// pages until the buffer pool first fills, mimicking the SQL Server
	// 2008 R2 warm-up feature the paper observes in Figure 8 ("expands
	// every single-page read request to an 8 page request until the
	// buffer pool is filled"). 0 keeps the default of 8; negative
	// disables it.
	ReadExpansion int
	// WarmRestart enables the paper's §6 extension: checkpoints persist
	// the SSD buffer table, and recovery restores the (surviving) SSD
	// cache contents instead of starting cold.
	WarmRestart bool
	// FuzzyCheckpoints switches Checkpoint from the paper's sharp policy
	// (flush everything; fast restart) to a fuzzy one (flush nothing;
	// record the redo horizon as the oldest unflushed update). §2.3.3
	// discusses the tradeoff: fuzzy checkpoints are nearly free but make
	// the restart time grow with λ and the dirty set.
	FuzzyCheckpoints bool
	Classifier       ClassifierKind

	HDDProfile      device.Profile // zero value = paper calibration
	SSDProfile      device.Profile
	AsyncAdmitDelay time.Duration // TAC async admission gap

	// Faults, when set, wraps every device in the injector's fault plans
	// (names "db", "ssd", "wal") and arms the engine's crash points. Nil
	// costs the hot path only nil checks.
	Faults *fault.Injector

	// Retry bounds transient-I/O retries on the database-disk read/write
	// paths (the SSD manager shares the same policy). The zero value is
	// replaced by device.DefaultRetryPolicy.
	Retry device.RetryPolicy
	// ScrubPeriod enables the background SSD scrubber (0, the default,
	// disables it); ScrubBatch caps the frames verified per wake-up.
	ScrubPeriod time.Duration
	ScrubBatch  int
	// RetireAfter / QuarantineAfter forward to the SSD manager's slot-
	// retirement and quarantine thresholds (see ssd.Config).
	RetireAfter     int
	QuarantineAfter int

	// WALPersist makes the log encode its flush batches onto the log device
	// (see wal.Log.SetPersist); WALCapacity overrides the log device's page
	// capacity (0 keeps the simulated default of 1<<30 pages). The file
	// backend sets both so its log survives a process kill and fits its
	// slice of the shared log file; the simulated backend leaves them zero
	// (its goldens depend on the log staying a timing model).
	WALPersist  bool
	WALCapacity device.PageNum
	// CommitRecords makes Commit append a wal.TypeCommit record before
	// forcing the log, so restart recovery (RecoverDurable) can tell
	// committed transactions from uncommitted ones. File backend only: the
	// in-process Recover path ignores commit records, keeping the simulated
	// backend's redo behaviour (and goldens) unchanged.
	CommitRecords bool

	// PoolStripes > 0 builds the buffer pool in striped-latch mode with
	// that many page-latch stripes, and PoolClock (required then) becomes
	// the pool's access-time source; see bufpool.NewStriped. Used by the
	// partitioned concurrent file backend — the engine itself stays
	// single-threaded, but its resident frames gain a latched read path
	// that runs outside the owner's lock. 0 keeps the classic
	// single-latch pool (all simulation paths).
	PoolStripes int
	PoolClock   func() time.Duration

	// CPU model: page accesses consume CPUPerAccess of one of CPUCores
	// hardware contexts (the paper's box is a dual quad-core Nehalem with
	// 16 contexts, saturating around 110k tpmC). Scan pages charge a
	// eighth of the point-access cost. CPUPerAccess < 0 disables the
	// model.
	CPUCores     int
	CPUPerAccess time.Duration

	defaulted bool // setDefaults already ran (it is not idempotent on sentinels)
}

func (c *Config) setDefaults() {
	if c.defaulted {
		return
	}
	c.defaulted = true
	if c.PayloadSize <= 0 {
		c.PayloadSize = 64
	}
	if c.Disks <= 0 {
		c.Disks = device.PaperArrayDisks
	}
	if c.StripeUnit <= 0 {
		c.StripeUnit = 64
	}
	if c.ReadAhead <= 0 {
		c.ReadAhead = 32
	}
	if c.ReadAheadRamp < 0 {
		c.ReadAheadRamp = 0
	} else if c.ReadAheadRamp == 0 {
		c.ReadAheadRamp = 8
	}
	if c.ReadExpansion < 0 {
		c.ReadExpansion = 0
	} else if c.ReadExpansion == 0 {
		c.ReadExpansion = 8
	}
	zero := device.Profile{}
	if c.HDDProfile == zero {
		c.HDDProfile = device.PaperHDDProfile()
	}
	if c.SSDProfile == zero {
		c.SSDProfile = device.PaperSSDProfile()
	}
	if c.PoolPages <= 0 {
		c.PoolPages = 256
	}
	if c.DBPages <= 0 {
		c.DBPages = 4096
	}
	if c.CPUCores <= 0 {
		c.CPUCores = 16
	}
	if c.CPUPerAccess == 0 {
		c.CPUPerAccess = 1200 * time.Microsecond
	}
	if c.Retry.Attempts <= 0 {
		c.Retry = device.DefaultRetryPolicy()
	}
	// A read-ahead batch claims one frame per page; bound it so a single
	// batch can never exhaust the pool.
	if c.ReadAhead > c.PoolPages/2 {
		c.ReadAhead = c.PoolPages / 2
		if c.ReadAhead < 1 {
			c.ReadAhead = 1
		}
	}
}

// logPageSize is the accounted size of one log page (8 KB, like the data
// pages the paper's Table 1 measures); many small records pack per page.
const logPageSize = 8192

// Stats counts engine-level activity. Device- and SSD-manager-level
// counters live on those components.
type Stats struct {
	Reads       int64 // page read requests
	Updates     int64 // page updates
	PoolHits    int64
	PoolMisses  int64
	Commits     int64
	Evictions   int64
	DirtyEvicts int64
	Checkpoints int64
	ScanPages   int64
	RedoApplied int64
	RedoSkipped int64
	SSDLosses   int64 // whole-SSD failures survived (fault injection)
	SSDLossRedo int64 // WAL redo records applied to rebuild lost dirty SSD pages

	// Silent-corruption defense (see docs/FAILURES.md). SSD-side detection
	// counters live on ssd.Stats; these count the engine's repairs.
	DiskCorruptions  int64 // disk pages that failed checksum/id verification
	DiskRepairsSSD   int64 // of which healed from an intact SSD copy
	DiskRepairsWAL   int64 // of which rebuilt from the newest WAL record
	CorruptRedo      int64 // dirty SSD frames reconstructed through WAL redo
	DiskReadRetries  int64 // failed disk read attempts that were re-issued
	DiskWriteRetries int64 // failed disk write attempts that were re-issued
	// Classification accuracy counts for disk reads: Truth<X>Label<Y>
	// counts reads truly of kind X that the classifier labelled Y (truth =
	// whether the read-ahead mechanism issued the read).
	TruthSeqLabelSeq   int64
	TruthSeqLabelRand  int64
	TruthRandLabelSeq  int64
	TruthRandLabelRand int64

	// Cross-shard service counts (sharded kernel; see remote.go).
	RemoteReads  int64 // page reads served for other shards
	RemoteWrites int64 // page writes served for other shards

	// Pool replacement-policy decision counters (policy.Stats mirrored
	// into the engine totals at read time; all zero under default LRU-2).
	PoolGhostHits  int64 // ARC ghost-list hits in the memory pool
	PoolSplitPos   int64 // ARC adaptive T1 target (gauge, not a count)
	PoolCleanFirst int64 // CFLRU evictions that skipped an older dirty page
	PoolAdmitRej   int64 // TinyLFU admissions rejected by the frequency gate
}

// Latencies holds per-tier operation latency histograms: reads broken down
// by the level of the hierarchy that served them, plus update and commit
// latencies. All times are virtual (simulated backend) or wall-clock (file
// backend).
type Latencies struct {
	PoolHit  metrics.Histogram // reads served from the memory pool
	SSDHit   metrics.Histogram // reads served from the SSD cache
	DiskRead metrics.Histogram // reads that went to the disks
	Commit   metrics.Histogram // commit (log force) waits
}

// Latencies returns the engine's latency histograms (live; callers must
// not mutate concurrently with engine use).
func (e *Engine) Latencies() *Latencies { return &e.lat }

// noteClassification records one disk read's truth/label pair.
func (e *Engine) noteClassification(truthSeq, labelSeq bool) {
	switch {
	case truthSeq && labelSeq:
		e.stats.TruthSeqLabelSeq++
	case truthSeq && !labelSeq:
		e.stats.TruthSeqLabelRand++
	case !truthSeq && labelSeq:
		e.stats.TruthRandLabelSeq++
	default:
		e.stats.TruthRandLabelRand++
	}
}

// Engine is one DBMS instance. It normally runs over simulated devices
// (New); NewWithDevices accepts any Device implementations, e.g. real
// files.
type Engine struct {
	env *sim.Env
	cfg Config

	db     device.Device
	dbArr  *device.Array // non-nil when db is a simulated array
	ssdDev device.Device
	logDev device.Device

	pool *bufpool.Pool
	mgr  *ssd.Manager
	log  *wal.Log

	classifier classifier
	cpu        *sim.Resource
	stats      Stats
	lat        Latencies
	nextTx     uint64

	checkpointStop bool
	cpGen          uint64
	crashed        bool
	poolFilled     bool // the buffer pool has filled at least once

	// evicting tracks dirty pages whose eviction writeback is in flight:
	// PopVictim has removed the page from the pool table but the WAL force
	// and SSD/disk write have not finished, so the page is in neither the
	// pool nor durably anywhere — a device read issued in that window would
	// return a stale image. Fetches of such a page wait on the signal, which
	// the evictor broadcasts (and removes) once the writeback settles. At
	// most one eviction of a page can be in flight (the page left the table),
	// so entries never collide. Clean evictions need no entry: a clean
	// frame's content already matches its durable copy.
	evicting map[page.ID]*sim.Signal

	// Free lists for encoded-page scratch buffers (bufSize bytes each) and
	// the [][]byte vectors that carry them through device reads. Per-engine;
	// the simulation kernel serializes all access, so no locking is needed.
	// Buffers must be taken and returned (not shared in place) because a
	// proc sleeps in virtual time mid-I/O while holding them.
	bufFree [][]byte
	vecFree [][][]byte

	// Free list of run-to-completion access states (see task.go). One is
	// taken per GetTask/UpdateTask/CommitTask call and returned when its
	// continuation fires, so steady-state transaction traffic allocates no
	// continuation closures.
	opFree []*txOp

	// Free list of retrying disk-transfer states (diskOp) and a one-element
	// scratch vector for single-buffer blocking reads.
	diskOpFree  []*diskOp
	scratchVec1 [][]byte
}

// New builds an engine (and its simulated devices) inside env.
func New(env *sim.Env, cfg Config) *Engine {
	cfg.setDefaults()
	arr := device.NewArray(env, cfg.HDDProfile, cfg.Disks, device.PageNum(cfg.StripeUnit), device.PageNum(cfg.DBPages))
	var ssdDev device.Device
	if cfg.SSDFrames > 0 && cfg.Design != ssd.NoSSD {
		ssdDev = device.NewSSD(env, cfg.SSDProfile, device.PageNum(cfg.SSDFrames))
	}
	logDev := device.NewHDD(env, cfg.HDDProfile, 1<<30)
	logDev.DiscardContent() // log pages are write-only traffic; keep timing, drop payloads
	e := NewWithDevices(env, cfg, arr, ssdDev, logDev)
	e.dbArr = arr
	return e
}

// NewWithDevices builds an engine over caller-provided devices (the
// real-file backend uses device.File instances). ssdDev may be nil for
// NoSSD configurations.
func NewWithDevices(env *sim.Env, cfg Config, dbDev, ssdDev, logDev device.Device) *Engine {
	cfg.setDefaults()
	if cfg.Faults != nil {
		dbDev = cfg.Faults.Wrap("db", dbDev)
		if ssdDev != nil {
			ssdDev = cfg.Faults.Wrap("ssd", ssdDev)
		}
		logDev = cfg.Faults.Wrap("wal", logDev)
	}
	e := &Engine{env: env, cfg: cfg, db: dbDev, ssdDev: ssdDev, logDev: logDev,
		evicting: make(map[page.ID]*sim.Signal)}
	// The log packs records into full 8 KB pages; the device charges one
	// page-write per log page, so the page size here is the accounted 8 KB
	// regardless of the (small) simulated payloads.
	logCap := cfg.WALCapacity
	if logCap <= 0 {
		logCap = 1 << 30
	}
	e.log = wal.New(env, logDev, logPageSize, logCap)
	if cfg.WALPersist {
		e.log.SetPersist(true)
	}
	if cfg.PoolStripes > 0 {
		e.pool = bufpool.NewStripedWithPolicy(cfg.PoolPages, cfg.PayloadSize, cfg.PoolStripes, cfg.PoolClock, cfg.Policy)
	} else {
		e.pool = bufpool.NewWithPolicy(cfg.PoolPages, cfg.PayloadSize, cfg.Policy)
	}
	e.mgr = e.newManager()
	e.classifier = newClassifier(cfg.Classifier)
	e.cpu = sim.NewResource(env, e.cfg.CPUCores)
	e.mgr.StartCleaner()
	e.mgr.StartScrubber()
	if cfg.CheckpointInterval > 0 {
		e.startCheckpointer()
	}
	return e
}

// newManager builds the SSD manager for the current devices. Temperature
// savings for TAC derive from the device profiles.
func (e *Engine) newManager() *ssd.Manager {
	randSaved := float64(e.cfg.HDDProfile.RandRead-e.cfg.SSDProfile.RandRead) / float64(time.Millisecond)
	seqSaved := float64(e.cfg.HDDProfile.SeqRead-e.cfg.SSDProfile.SeqRead) / float64(time.Millisecond)
	if seqSaved < 0 {
		seqSaved = 0
	}
	dev := e.ssdDev
	frames := e.cfg.SSDFrames
	if dev == nil || e.cfg.Design == ssd.NoSSD {
		dev = device.NewSSD(e.env, e.cfg.SSDProfile, 0)
		frames = 0
	}
	return ssd.NewManager(e.env, dev, (*diskWriter)(e), ssd.Config{
		Design:          e.cfg.Design,
		Policy:          e.cfg.Policy,
		Frames:          frames,
		Partitions:      e.cfg.Partitions,
		FillThreshold:   e.cfg.FillThreshold,
		Throttle:        e.cfg.Throttle,
		GroupClean:      e.cfg.GroupClean,
		DirtyFraction:   e.cfg.DirtyFraction,
		PayloadSize:     e.cfg.PayloadSize,
		RandSavedMs:     randSaved,
		SeqSavedMs:      seqSaved,
		AsyncAdmitDelay: e.cfg.AsyncAdmitDelay,
		Faults:          e.cfg.Faults,
		Retry:           e.cfg.Retry,
		ScrubPeriod:     e.cfg.ScrubPeriod,
		ScrubBatch:      e.cfg.ScrubBatch,
		RetireAfter:     e.cfg.RetireAfter,
		QuarantineAfter: e.cfg.QuarantineAfter,
		Repair:          (*walRepairer)(e),
	})
}

// walRepairer adapts the engine's page-granular WAL redo to the SSD
// manager's Repairer dependency (corrupt dirty frames, scrubber and lazy
// cleaner detections).
type walRepairer Engine

// RepairDirtyPage reconstructs a uniquely-dirty page whose SSD frame was
// condemned.
func (r *walRepairer) RepairDirtyPage(p *sim.Proc, pid page.ID) error {
	return (*Engine)(r).repairDirtySSD(p, pid)
}

// diskWriter adapts the engine's database array to the SSD manager's Disk
// interface (logical page ids map one-to-one onto array pages). It also
// implements ssd.DiskReader so the scrubber can fetch disk copies for
// in-place frame repair. All forms route through the engine's retrying
// disk helpers.
type diskWriter Engine

// WriteEncoded writes a run of encoded pages to the database disks.
func (d *diskWriter) WriteEncoded(p *sim.Proc, start page.ID, bufs [][]byte) error {
	return (*Engine)(d).dbWrite(p, device.PageNum(start), bufs)
}

// WriteEncodedTask is the run-to-completion twin of WriteEncoded.
func (d *diskWriter) WriteEncodedTask(t *sim.Task, start page.ID, bufs [][]byte, k func(error)) {
	(*Engine)(d).dbWriteTask(t, device.PageNum(start), bufs, k)
}

// ReadEncoded reads one encoded page image from the database disks.
func (d *diskWriter) ReadEncoded(p *sim.Proc, pid page.ID, buf []byte) error {
	e := (*Engine)(d)
	e.scratchVec1 = append(e.scratchVec1[:0], buf)
	err := e.dbRead(p, device.PageNum(pid), e.scratchVec1)
	e.scratchVec1[0] = nil
	return err
}

// ReadEncodedTask is the run-to-completion twin of ReadEncoded.
func (d *diskWriter) ReadEncodedTask(t *sim.Task, pid page.ID, buf []byte, k func(error)) {
	e := (*Engine)(d)
	vec := e.getVecShell(1)
	vec = append(vec, buf)
	o := e.getDiskOp()
	o.t, o.start, o.bufs, o.k, o.write, o.attempt = t, device.PageNum(pid), vec, k, false, 1
	o.ownsVec = true
	e.db.ReadTask(t, o.start, vec, o.onDone)
}

// dbRead reads a run of encoded pages from the database disks, retrying
// transient failures under the configured policy.
func (e *Engine) dbRead(p *sim.Proc, start device.PageNum, bufs [][]byte) error {
	for attempt := 1; ; attempt++ {
		err := e.db.Read(p, start, bufs)
		if err == nil {
			return nil
		}
		if !e.cfg.Retry.Retryable(err, attempt) {
			return err
		}
		e.stats.DiskReadRetries++
		p.Sleep(e.cfg.Retry.Delay(attempt))
	}
}

// dbWrite writes a run of encoded pages to the database disks, retrying
// transient failures under the configured policy.
func (e *Engine) dbWrite(p *sim.Proc, start device.PageNum, bufs [][]byte) error {
	for attempt := 1; ; attempt++ {
		err := e.db.Write(p, start, bufs)
		if err == nil {
			return nil
		}
		if !e.cfg.Retry.Retryable(err, attempt) {
			return err
		}
		e.stats.DiskWriteRetries++
		p.Sleep(e.cfg.Retry.Delay(attempt))
	}
}

// diskOp carries one retrying task-form disk transfer (the twin of
// dbRead/dbWrite); pooled so steady-state traffic allocates nothing.
type diskOp struct {
	e       *Engine
	t       *sim.Task
	start   device.PageNum
	bufs    [][]byte
	k       func(error)
	write   bool
	ownsVec bool // return bufs' shell (not the buffers) to the vec pool
	attempt int

	onDone  func(error)
	onRetry func()
}

func (e *Engine) getDiskOp() *diskOp {
	if n := len(e.diskOpFree); n > 0 {
		o := e.diskOpFree[n-1]
		e.diskOpFree[n-1] = nil
		e.diskOpFree = e.diskOpFree[:n-1]
		return o
	}
	o := &diskOp{e: e}
	o.onDone = o.done
	o.onRetry = o.reissue
	return o
}

func (o *diskOp) reissue() {
	if o.write {
		o.e.db.WriteTask(o.t, o.start, o.bufs, o.onDone)
	} else {
		o.e.db.ReadTask(o.t, o.start, o.bufs, o.onDone)
	}
}

func (o *diskOp) done(err error) {
	e := o.e
	if err != nil && e.cfg.Retry.Retryable(err, o.attempt) {
		if o.write {
			e.stats.DiskWriteRetries++
		} else {
			e.stats.DiskReadRetries++
		}
		d := e.cfg.Retry.Delay(o.attempt)
		o.attempt++
		if d > 0 {
			o.t.Sleep(d, o.onRetry)
			return
		}
		o.reissue()
		return
	}
	k := o.k
	if o.ownsVec {
		o.bufs[0] = nil
		e.putVecShell(o.bufs[:0])
	}
	o.t, o.bufs, o.k = nil, nil, nil
	e.diskOpFree = append(e.diskOpFree, o)
	k(err)
}

// dbWriteTask is the run-to-completion twin of dbWrite.
func (e *Engine) dbWriteTask(t *sim.Task, start device.PageNum, bufs [][]byte, k func(error)) {
	o := e.getDiskOp()
	o.t, o.start, o.bufs, o.k, o.write, o.attempt = t, start, bufs, k, true, 1
	o.ownsVec = false
	e.db.WriteTask(t, start, bufs, o.onDone)
}

// Env returns the simulation environment.
func (e *Engine) Env() *sim.Env { return e.env }

// Config returns the effective configuration.
func (e *Engine) Config() Config { return e.cfg }

// Stats returns a copy of the engine counters, with the buffer pool's
// replacement-policy counters folded in.
func (e *Engine) Stats() Stats {
	s := e.stats
	ps := e.pool.PolicyStats()
	s.PoolGhostHits = ps.GhostHits
	s.PoolSplitPos = ps.SplitPos
	s.PoolCleanFirst = ps.CleanFirstEvict
	s.PoolAdmitRej = ps.AdmitRejects
	return s
}

// SSD returns the SSD manager (for stats and tests).
func (e *Engine) SSD() *ssd.Manager { return e.mgr }

// Log returns the write-ahead log.
func (e *Engine) Log() *wal.Log { return e.log }

// Pool returns the memory buffer pool.
func (e *Engine) Pool() *bufpool.Pool { return e.pool }

// DiskArray returns the simulated database disk array, or nil when the
// engine runs over caller-provided devices.
func (e *Engine) DiskArray() *device.Array { return e.dbArr }

// DBDevice returns the database device.
func (e *Engine) DBDevice() device.Device { return e.db }

// SSDDevice returns the SSD device, nil when the design has none.
func (e *Engine) SSDDevice() device.Device { return e.ssdDev }

// LogDevice returns the log device.
func (e *Engine) LogDevice() device.Device { return e.logDev }

// bufSize is the encoded page image size.
func (e *Engine) bufSize() int { return page.HeaderSize + e.cfg.PayloadSize }

// getPageBuf takes an encoded-page scratch buffer from the free list,
// allocating only when the list is empty.
func (e *Engine) getPageBuf() []byte {
	if n := len(e.bufFree); n > 0 {
		b := e.bufFree[n-1]
		e.bufFree[n-1] = nil
		e.bufFree = e.bufFree[:n-1]
		return b
	}
	return make([]byte, e.bufSize())
}

// putPageBuf returns a scratch buffer for reuse. Callers must be done with
// every alias of b: its contents may be overwritten by the next taker.
func (e *Engine) putPageBuf(b []byte) {
	if cap(b) < e.bufSize() {
		return
	}
	e.bufFree = append(e.bufFree, b[:e.bufSize()])
}

// getVec returns an n-element vector of pooled page buffers.
func (e *Engine) getVec(n int) [][]byte {
	var v [][]byte
	if m := len(e.vecFree); m > 0 {
		v = e.vecFree[m-1]
		e.vecFree[m-1] = nil
		e.vecFree = e.vecFree[:m-1]
	}
	if cap(v) < n {
		v = make([][]byte, 0, n)
	}
	v = v[:0]
	for i := 0; i < n; i++ {
		v = append(v, e.getPageBuf())
	}
	return v
}

// putVec returns a vector and all its buffers to the free lists.
func (e *Engine) putVec(v [][]byte) {
	for i, b := range v {
		e.putPageBuf(b)
		v[i] = nil
	}
	e.vecFree = append(e.vecFree, v[:0])
}

// getVecShell returns an empty pooled vector with capacity for n entries;
// the caller provides the buffers (unlike getVec, which fills them).
func (e *Engine) getVecShell(n int) [][]byte {
	if m := len(e.vecFree); m > 0 {
		v := e.vecFree[m-1]
		e.vecFree[m-1] = nil
		e.vecFree = e.vecFree[:m-1]
		if cap(v) >= n {
			return v[:0]
		}
	}
	return make([][]byte, 0, n)
}

// putVecShell returns a vector shell whose buffers the caller owns.
func (e *Engine) putVecShell(v [][]byte) {
	for i := range v {
		v[i] = nil
	}
	e.vecFree = append(e.vecFree, v[:0])
}

// FormatDB initializes every database page (id stamped, LSN 0, zero
// payload) directly on the disks, outside simulated time — the equivalent
// of loading the benchmark database before the measured run.
func (e *Engine) FormatDB() error {
	pre, ok := e.db.(device.Preloader)
	if !ok {
		return errors.New("engine: database device does not support preloading")
	}
	buf := make([]byte, e.bufSize())
	pl := make([]byte, e.cfg.PayloadSize)
	for pid := int64(0); pid < e.cfg.DBPages; pid++ {
		pg := page.Page{ID: page.ID(pid), LSN: 0, Payload: pl}
		if err := page.Encode(&pg, buf); err != nil {
			return err
		}
		if err := pre.Preload(device.PageNum(pid), buf); err != nil {
			return err
		}
	}
	return nil
}

// ErrNoFrames indicates every buffer frame is busy mid-transfer — the pool
// is too small for the offered concurrency.
var ErrNoFrames = errors.New("engine: no reclaimable buffer frames")

// ErrPageRange is returned for accesses beyond the database size.
var ErrPageRange = errors.New("engine: page id out of range")

// checkPage validates a page id against the database size.
func (e *Engine) checkPage(pid page.ID) error {
	if pid < 0 || int64(pid) >= e.cfg.DBPages {
		return fmt.Errorf("%w: %d of %d", ErrPageRange, pid, e.cfg.DBPages)
	}
	return nil
}

// Begin starts a transaction and returns its id.
func (e *Engine) Begin() uint64 {
	e.nextTx++
	return e.nextTx
}

// Commit forces the log for everything the transaction wrote (group
// commit) and counts the commit. Two crash points bracket the log force:
// pre-wal-flush crashes with the transaction's records possibly volatile
// (the commit may be lost), post-wal-flush crashes with the records durable
// but the caller never acknowledged (the classic commit ambiguity).
func (e *Engine) Commit(p *sim.Proc, tx uint64) error {
	if e.cfg.Faults.At(fault.SitePreWALFlush) {
		return fault.ErrCrashPoint
	}
	t0 := e.env.Now()
	if e.cfg.CommitRecords {
		e.log.Append(wal.Record{Type: wal.TypeCommit, TxID: tx})
	}
	e.log.Flush(p, e.log.NextLSN()-1)
	if e.cfg.Faults.At(fault.SitePostWALFlush) {
		return fault.ErrCrashPoint
	}
	e.lat.Commit.Observe(e.env.Now() - t0)
	e.stats.Commits++
	return nil
}

// LogUndo appends a presumed-abort undo record: page pid's before-image,
// captured by the caller immediately before the matching Update. Recovery
// applies undo records of transactions that neither committed nor resolved
// to commit, so a dirty eviction that forced (and wrote back) uncommitted
// state cannot leak an aborted transaction's data into the database.
func (e *Engine) LogUndo(pid page.ID, tx uint64, before []byte) uint64 {
	return e.log.Append(wal.Record{Type: wal.TypeUndo, Page: pid, TxID: tx, Payload: before})
}

// Prepare writes and forces a two-phase-commit prepare record binding local
// transaction tx to the coordinator's global transaction id gtx. After
// Prepare returns, the participant is in-doubt: recovery resolves it by
// asking the coordinator log (commit if a decision was recorded, abort
// otherwise — presumed abort).
func (e *Engine) Prepare(p *sim.Proc, tx, gtx uint64) error {
	lsn := e.log.Append(wal.Record{Type: wal.TypePrepare, TxID: tx, StartLSN: gtx})
	e.log.Flush(p, lsn)
	return nil
}

// AdoptDurableTxIDs floors the engine's transaction-id counter past every
// durable record's TxID — called after wal.LoadDurable on reopen, so a new
// incarnation's transactions can never collide with recovered ones — and
// returns the highest global (prepare) transaction id seen, so the
// coordinator's counter can be floored the same way.
func (e *Engine) AdoptDurableTxIDs() uint64 {
	var maxGtx uint64
	for _, rec := range e.log.Durable() {
		if rec.TxID > e.nextTx {
			e.nextTx = rec.TxID
		}
		if rec.Type == wal.TypePrepare && rec.StartLSN > maxGtx {
			maxGtx = rec.StartLSN
		}
	}
	return maxGtx
}

// chargeCPU occupies one hardware context for d of processing time.
func (e *Engine) chargeCPU(p *sim.Proc, d time.Duration) {
	if d <= 0 {
		return
	}
	e.cpu.Acquire(p)
	p.Sleep(d)
	e.cpu.Release()
}

// Get reads a page with a random (point) access and returns its frame. The
// frame contents are only valid until the caller next yields to the
// simulator.
func (e *Engine) Get(p *sim.Proc, pid page.ID) (*bufpool.Frame, error) {
	if err := e.checkPage(pid); err != nil {
		return nil, err
	}
	t0 := e.env.Now()
	e.chargeCPU(p, e.cfg.CPUPerAccess)
	e.stats.Reads++
	if f := e.pool.Lookup(pid, e.env.Now()); f != nil {
		e.stats.PoolHits++
		e.lat.PoolHit.Observe(e.env.Now() - t0)
		return f, nil
	}
	ssdHitsBefore := e.mgr.Stats().Hits
	f, err := e.fetch(p, pid, false, false)
	if err == nil {
		if e.mgr.Stats().Hits > ssdHitsBefore {
			e.lat.SSDHit.Observe(e.env.Now() - t0)
		} else {
			e.lat.DiskRead.Observe(e.env.Now() - t0)
		}
	}
	return f, err
}

// Update applies mutate to the page's payload under a transaction,
// logging the after-image.
func (e *Engine) Update(p *sim.Proc, tx uint64, pid page.ID, mutate func(payload []byte)) error {
	f, err := e.Get(p, pid)
	if err != nil {
		return err
	}
	if !f.Dirty {
		f.Dirty = true
		f.RecLSN = e.log.NextLSN()
		// A clean page in memory being modified invalidates its SSD copy
		// (§2.2).
		e.mgr.Invalidate(pid)
	}
	// Resident frames may be copied by latched readers when the pool is in
	// striped mode; MutateFrame orders the write against them (a direct call
	// in single-latch mode).
	e.pool.MutateFrame(f, mutate)
	// wal.Append copies the payload into log-owned storage, so the frame's
	// buffer can be handed over directly.
	lsn := e.log.Append(wal.Record{
		Type:    wal.TypeUpdate,
		Page:    pid,
		TxID:    tx,
		Payload: f.Pg.Payload,
	})
	f.Pg.LSN = lsn
	e.stats.Updates++
	return nil
}

// fetch brings pid into the pool on a miss: SSD first, then disk.
// viaReadAhead records whether the read-ahead mechanism issued the read;
// truthScan records whether the read actually belongs to a sequential scan
// (the ground truth for classification accuracy — a scan's ramp-up pages
// are truly sequential yet read individually, which is exactly why the
// paper's read-ahead classifier is ~82% rather than 100% accurate).
func (e *Engine) fetch(p *sim.Proc, pid page.ID, viaReadAhead, truthScan bool) (*bufpool.Frame, error) {
	if sig := e.evicting[pid]; sig != nil {
		// The page's dirty eviction is mid-writeback: reading the device now
		// would return a stale image. Wait for the writeback to settle, then
		// serve from the pool if another process re-installed the page first.
		for sig != nil {
			sig.Wait(p)
			sig = e.evicting[pid]
		}
		if g := e.pool.Lookup(pid, e.env.Now()); g != nil {
			e.stats.PoolHits++
			return g, nil
		}
	}
	e.stats.PoolMisses++
	seqLabel := e.classifier.label(pid, viaReadAhead)
	e.mgr.TACNoteMiss(pid, !seqLabel)

	f, err := e.claimFrame(p)
	if err != nil {
		return nil, err
	}
	f.Pg.ID = pid

	hit, err := e.mgr.Read(p, pid, &f.Pg)
	if err != nil {
		e.pool.Release(f)
		if errors.Is(err, device.ErrLost) {
			// The SSD died. Rebuild the cache on a replacement device and
			// redo uniquely-dirty pages from the WAL, then re-serve the
			// request: recovery may have brought pid into the pool already.
			if rerr := e.RecoverSSDLoss(p); rerr != nil {
				return nil, rerr
			}
			if g := e.pool.Lookup(pid, e.env.Now()); g != nil {
				return g, nil
			}
			e.stats.PoolMisses-- // the retry counts the same miss again
			return e.fetch(p, pid, viaReadAhead, truthScan)
		}
		var dce *ssd.DirtyCorruptError
		if errors.As(err, &dce) {
			// The page's only up-to-date copy failed verification; its frame
			// is condemned. Rebuild it from the WAL, then serve from the pool
			// (repair leaves it resident and dirty).
			if rerr := e.repairDirtySSD(p, dce.PID); rerr != nil {
				return nil, rerr
			}
			if g := e.pool.Lookup(pid, e.env.Now()); g != nil {
				return g, nil
			}
			e.stats.PoolMisses-- // the retry counts the same miss again
			return e.fetch(p, pid, viaReadAhead, truthScan)
		}
		return nil, err
	}
	if hit {
		f.Seq = false // SSD-cached pages were random by admission
		got, _ := e.pool.Insert(f, e.env.Now())
		return got, nil
	}

	if err := e.diskReadInto(p, pid, f, viaReadAhead); err != nil {
		var ce *page.ChecksumError
		if errors.As(err, &ce) {
			// The disk image is corrupt: climb the repair ladder (SSD copy,
			// then WAL) instead of surfacing wrong or no data.
			err = e.repairDiskPage(p, pid, f, err)
		}
		if err != nil {
			e.pool.Release(f)
			return nil, err
		}
	}
	f.Seq = seqLabel
	e.noteClassification(truthScan, seqLabel)
	e.classifier.noteDiskRead(pid)
	got, inserted := e.pool.Insert(f, e.env.Now())
	if inserted && e.cfg.Design == ssd.TAC {
		// Gated on the design so the race-check closure (an allocation) is
		// only built when TAC will actually consider the admission.
		e.mgr.TACOnDiskRead(&got.Pg, !seqLabel, e.stillCleanFn(pid, got))
	}
	return got, nil
}

// stillCleanFn returns TAC's race check: the admission proceeds only if
// the page is still resident in the same frame and has not been dirtied.
func (e *Engine) stillCleanFn(pid page.ID, f *bufpool.Frame) func() bool {
	lsn := f.Pg.LSN
	return func() bool {
		cur := e.pool.Peek(pid)
		return cur == f && !cur.Dirty && cur.Pg.LSN == lsn
	}
}

// diskReadInto reads one page from the database disks into frame f.
// During warm-up (the pool has never filled) single-page random reads are
// widened to ReadExpansion contiguous pages — SQL Server 2008 R2's
// start-up behaviour, visible as the initial read burst of the paper's
// Figure 8. The extra pages land in free frames as sequential arrivals.
func (e *Engine) diskReadInto(p *sim.Proc, pid page.ID, f *bufpool.Frame, viaReadAhead bool) error {
	n := e.readSpan(pid, viaReadAhead)
	bufs := e.getVec(n)
	defer e.putVec(bufs) // decodeInto copies, so nothing aliases them after
	if err := e.dbRead(p, device.PageNum(pid), bufs); err != nil {
		return err
	}
	return e.installRead(pid, bufs, f)
}

// readSpan decides how many contiguous pages a read of pid fetches (the
// warm-up ReadExpansion widening) and latches poolFilled.
func (e *Engine) readSpan(pid page.ID, viaReadAhead bool) int {
	n := 1
	if !viaReadAhead && e.cfg.ReadExpansion > 1 && !e.poolFilled &&
		e.pool.FreeFrames() >= e.cfg.ReadExpansion {
		n = e.cfg.ReadExpansion
		if rest := e.cfg.DBPages - int64(pid); int64(n) > rest {
			n = int(rest)
		}
	}
	if e.pool.FreeFrames() == 0 {
		e.poolFilled = true
	}
	return n
}

// installRead decodes the fetched images: the requested page into f, the
// expansion tail into free frames. Shared by both process forms.
func (e *Engine) installRead(pid page.ID, bufs [][]byte, f *bufpool.Frame) error {
	if err := e.decodeInto(pid, bufs[0], f); err != nil {
		return err
	}
	// Stash the expansion tail into free frames; they arrived as part of
	// one contiguous request, so they count as sequential for admission.
	for i := 1; i < len(bufs); i++ {
		id := pid + page.ID(i)
		if e.pool.Peek(id) != nil || e.mgr.IsDirty(id) || e.evicting[id] != nil {
			continue // resident, SSD-newer, or mid-writeback (image is stale)
		}
		g := e.pool.TakeFree()
		if g == nil {
			e.poolFilled = true
			break
		}
		if err := e.decodeInto(id, bufs[i], g); err != nil {
			e.pool.Release(g)
			var ce *page.ChecksumError
			if errors.As(err, &ce) {
				// A corrupt page in the opportunistic expansion tail is not
				// the page the caller asked for: count the detection and skip
				// it — the repair ladder runs when the page is read directly.
				e.stats.DiskCorruptions++
				continue
			}
			return err
		}
		g.Seq = true
		e.pool.Insert(g, e.env.Now())
	}
	return nil
}

// decodeInto fills frame f from an encoded page image, tolerating blank
// (never-formatted) device space. Verification failures come back as
// *page.ChecksumError annotated with the disk location, so callers can
// route them into the repair ladder (repairDiskPage).
func (e *Engine) decodeInto(pid page.ID, buf []byte, f *bufpool.Frame) error {
	if page.Blank(buf) {
		f.Pg.ID = pid
		f.Pg.LSN = 0
		for i := range f.Pg.Payload {
			f.Pg.Payload[i] = 0
		}
		return nil
	}
	var got page.Page
	if err := page.Decode(buf, &got); err != nil {
		var ce *page.ChecksumError
		if errors.As(err, &ce) {
			ce.ID, ce.Device, ce.Slot = pid, "db", int64(pid)
		}
		return err
	}
	if got.ID != pid {
		return &page.ChecksumError{ID: pid, Device: "db", Slot: int64(pid),
			Reason: "id", Got: uint64(got.ID), Want: uint64(pid)}
	}
	f.Pg.ID = got.ID
	f.Pg.LSN = got.LSN
	copy(f.Pg.Payload, got.Payload)
	return nil
}

// repairDiskPage rebuilds frame f after pid's disk image failed
// verification, climbing the repair ladder: an intact SSD copy first (the
// disk is healed in place by writing it back — safe, the SSD version is
// never older than the disk's), then the newest durable WAL record (a full
// after-image; the rebuilt frame is marked dirty so it reflushes). When
// neither source exists the typed cause is surfaced — never a silently
// wrong page.
func (e *Engine) repairDiskPage(p *sim.Proc, pid page.ID, f *bufpool.Frame, cause error) error {
	e.stats.DiskCorruptions++
	f.Pg.ID = pid
	hit, err := e.mgr.Read(p, pid, &f.Pg)
	if err == nil && hit {
		buf := e.getPageBuf()
		werr := page.Encode(&f.Pg, buf)
		if werr == nil {
			e.scratchVec1 = append(e.scratchVec1[:0], buf)
			werr = e.dbWrite(p, device.PageNum(pid), e.scratchVec1)
			e.scratchVec1[0] = nil
		}
		e.putPageBuf(buf)
		if werr != nil {
			// The heal write failed, but the frame itself is good; keep it
			// dirty so the normal flush machinery retries the disk.
			f.Dirty = true
			f.RecLSN = f.Pg.LSN
		}
		e.stats.DiskRepairsSSD++
		return nil
	}
	if err != nil {
		var dce *ssd.DirtyCorruptError
		if !errors.As(err, &dce) {
			return err
		}
		// The SSD copy was corrupt too (and dirty); fall through to the WAL,
		// which by I1/I2 still holds the page's newest record.
	}
	if rec, ok := e.log.LatestUpdate(pid); ok {
		f.Pg.ID = pid
		copy(f.Pg.Payload, rec.Payload)
		f.Pg.LSN = rec.LSN
		f.Dirty = true
		f.RecLSN = rec.LSN
		e.stats.DiskRepairsWAL++
		return nil
	}
	return fmt.Errorf("engine: page %d unrepairable (no SSD copy, no WAL record): %w", pid, cause)
}

// repairDirtySSD reconstructs a uniquely-dirty page whose SSD frame was
// condemned for corruption — the page-granular variant of RecoverSSDLoss.
// The stale disk version is fetched and the newest durable WAL record (a
// full after-image, guaranteed present by invariant I2) applied on top;
// the page stays dirty in the pool until a checkpoint or eviction reflushes
// it.
func (e *Engine) repairDirtySSD(p *sim.Proc, pid page.ID) error {
	f, err := e.Get(p, pid)
	if err != nil {
		return err
	}
	if rec, ok := e.log.LatestUpdate(pid); ok && rec.LSN > f.Pg.LSN {
		e.pool.MutateFrame(f, func(payload []byte) { copy(payload, rec.Payload) })
		f.Pg.LSN = rec.LSN
		e.stats.CorruptRedo++
	}
	if !f.Dirty {
		f.Dirty = true
		f.RecLSN = f.Pg.LSN
		// Mirror Update's protocol: dirtying the pool copy invalidates any
		// SSD copy (the stale disk version may have been re-admitted by the
		// fetch above, e.g. under TAC).
		e.mgr.Invalidate(pid)
	}
	return nil
}

// claimFrame obtains a frame: the free list, or by evicting the LRU-2
// victim through the active SSD design.
func (e *Engine) claimFrame(p *sim.Proc) (*bufpool.Frame, error) {
	if f := e.pool.TakeFree(); f != nil {
		return f, nil
	}
	v := e.pool.PopVictim()
	if v == nil {
		return nil, ErrNoFrames
	}
	e.stats.Evictions++
	dirty := v.Dirty
	if dirty {
		e.stats.DirtyEvicts++
		// Until the writeback lands the page has no durable up-to-date copy
		// anywhere; publish the eviction so concurrent fetches wait instead
		// of reading a stale device image (see Engine.evicting).
		sig := sim.NewSignal(e.env)
		vpid := v.Pg.ID
		e.evicting[vpid] = sig
		defer func() {
			delete(e.evicting, vpid)
			sig.Broadcast()
		}()
		// WAL protocol: force the log before the page can be written to
		// the SSD or the disk (§2.4).
		e.log.Flush(p, v.Pg.LSN)
	}
	err := e.mgr.OnEvict(p, &v.Pg, dirty, !v.Seq)
	if err != nil && errors.Is(err, device.ErrLost) {
		// The SSD died under the eviction. Recover (replacing the manager),
		// then route the victim through the new manager — for a dirty page
		// this usually becomes a plain disk write, never a lost update (the
		// log was already forced above).
		if rerr := e.RecoverSSDLoss(p); rerr != nil {
			e.pool.Release(v)
			return nil, rerr
		}
		err = e.mgr.OnEvict(p, &v.Pg, dirty, !v.Seq)
	}
	if err != nil {
		// The victim is already out of the table; without this it would
		// leak — neither resident nor free — shrinking the pool.
		e.pool.Release(v)
		return nil, err
	}
	v.Dirty = false
	v.Seq = false
	v.RecLSN = 0
	return v, nil
}

// DirtyPoolPages returns the dirty page ids, sorted (checkpoint order).
func (e *Engine) DirtyPoolPages() []page.ID {
	ids := e.pool.DirtyPages()
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}
