package engine

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"turbobp/internal/device"
	"turbobp/internal/page"
	"turbobp/internal/sim"
	"turbobp/internal/ssd"
	"turbobp/internal/wal"
)

func testConfig(design ssd.Design) Config {
	return Config{
		Design:        design,
		DBPages:       512,
		PoolPages:     32,
		SSDFrames:     64,
		PayloadSize:   32,
		Partitions:    4,
		Throttle:      1 << 30, // effectively off for unit tests
		ReadExpansion: -1,      // exact I/O counts matter in these tests
	}
}

// start builds an engine and formats its database.
func start(t *testing.T, cfg Config) (*sim.Env, *Engine) {
	t.Helper()
	env := sim.NewEnv()
	e := New(env, cfg)
	if err := e.FormatDB(); err != nil {
		t.Fatal(err)
	}
	return env, e
}

// drive runs fn as a process and advances the simulation until it finishes
// (bounded by an hour of virtual time), then stops background processes.
func drive(t *testing.T, env *sim.Env, e *Engine, fn func(p *sim.Proc)) {
	t.Helper()
	done := false
	env.Go("test", func(p *sim.Proc) {
		fn(p)
		done = true
	})
	deadline := env.Now() + time.Hour
	for !done && env.Now() < deadline {
		env.Run(env.Now() + 100*time.Millisecond)
	}
	if !done {
		t.Fatal("test process did not finish within an hour of virtual time")
	}
	e.StopBackground()
}

func finish(env *sim.Env, e *Engine) {
	e.StopBackground()
	env.Run(env.Now() + time.Second)
	env.Shutdown()
}

func TestGetReadsFormattedPage(t *testing.T) {
	env, e := start(t, testConfig(ssd.NoSSD))
	defer finish(env, e)
	drive(t, env, e, func(p *sim.Proc) {
		f, err := e.Get(p, 37)
		if err != nil {
			t.Fatal(err)
		}
		if f.Pg.ID != 37 || f.Pg.LSN != 0 {
			t.Errorf("page = id %d lsn %d", f.Pg.ID, f.Pg.LSN)
		}
		if !page.Blank(f.Pg.Payload) {
			t.Error("fresh page payload not zero")
		}
	})
	s := e.Stats()
	if s.Reads != 1 || s.PoolMisses != 1 || s.PoolHits != 0 {
		t.Errorf("stats = %+v", s)
	}
}

func TestSecondGetIsPoolHit(t *testing.T) {
	env, e := start(t, testConfig(ssd.NoSSD))
	defer finish(env, e)
	drive(t, env, e, func(p *sim.Proc) {
		e.Get(p, 5)
		before := e.DiskArray().Stats().Load().ReadOps
		e.Get(p, 5)
		if got := e.DiskArray().Stats().Load().ReadOps; got != before {
			t.Error("pool hit went to disk")
		}
	})
	if e.Stats().PoolHits != 1 {
		t.Errorf("PoolHits = %d", e.Stats().PoolHits)
	}
}

func TestUpdateCommitDurability(t *testing.T) {
	env, e := start(t, testConfig(ssd.NoSSD))
	defer finish(env, e)
	drive(t, env, e, func(p *sim.Proc) {
		tx := e.Begin()
		if err := e.Update(p, tx, 9, func(pl []byte) { pl[0] = 0xAB }); err != nil {
			t.Fatal(err)
		}
		if e.Log().FlushedLSN() != 0 {
			t.Error("log flushed before commit")
		}
		if err := e.Commit(p, tx); err != nil {
			t.Fatal(err)
		}
		if e.Log().FlushedLSN() == 0 {
			t.Error("commit did not force the log")
		}
	})
	if e.Stats().Updates != 1 || e.Stats().Commits != 1 {
		t.Errorf("stats = %+v", e.Stats())
	}
}

func TestEvictionWritesDirtyPageToDisk(t *testing.T) {
	cfg := testConfig(ssd.NoSSD)
	cfg.PoolPages = 4
	env, e := start(t, cfg)
	defer finish(env, e)
	drive(t, env, e, func(p *sim.Proc) {
		tx := e.Begin()
		e.Update(p, tx, 1, func(pl []byte) { pl[0] = 0x77 })
		e.Commit(p, tx)
		// Push page 1 out with other pages.
		for pid := page.ID(10); pid < 20; pid++ {
			e.Get(p, pid)
		}
		if e.Pool().Peek(1) != nil {
			t.Fatal("page 1 still resident; pool too big for the test")
		}
		// Re-read: the dirty write must have made it to disk.
		f, err := e.Get(p, 1)
		if err != nil {
			t.Fatal(err)
		}
		if f.Pg.Payload[0] != 0x77 {
			t.Error("update lost across eviction")
		}
	})
	if e.Stats().DirtyEvicts != 1 {
		t.Errorf("DirtyEvicts = %d", e.Stats().DirtyEvicts)
	}
}

func TestWALFlushedBeforeDirtyPageWrite(t *testing.T) {
	cfg := testConfig(ssd.LC)
	cfg.PoolPages = 4
	env, e := start(t, cfg)
	defer finish(env, e)
	drive(t, env, e, func(p *sim.Proc) {
		tx := e.Begin()
		e.Update(p, tx, 1, func(pl []byte) { pl[0] = 1 })
		lsn := e.Log().NextLSN() - 1
		// No commit. Evict page 1 by pressure: WAL must be forced first.
		for pid := page.ID(10); pid < 20; pid++ {
			e.Get(p, pid)
		}
		if e.Log().FlushedLSN() < lsn {
			t.Error("dirty page written without forcing its log records")
		}
	})
}

func TestSSDHitAfterEviction(t *testing.T) {
	for _, design := range []ssd.Design{ssd.CW, ssd.DW, ssd.LC} {
		t.Run(design.String(), func(t *testing.T) {
			cfg := testConfig(design)
			cfg.PoolPages = 4
			env, e := start(t, cfg)
			defer finish(env, e)
			drive(t, env, e, func(p *sim.Proc) {
				e.Get(p, 1) // random read; clean
				for pid := page.ID(10); pid < 20; pid++ {
					e.Get(p, pid)
				}
				if !e.SSD().Contains(1) {
					t.Fatal("evicted clean random page not cached in SSD")
				}
				hitsBefore := e.SSD().Stats().Hits
				e.Get(p, 1)
				if e.SSD().Stats().Hits != hitsBefore+1 {
					t.Error("re-read not served from SSD")
				}
			})
		})
	}
}

func TestUpdateInvalidatesSSDCopy(t *testing.T) {
	cfg := testConfig(ssd.DW)
	cfg.PoolPages = 4
	env, e := start(t, cfg)
	defer finish(env, e)
	drive(t, env, e, func(p *sim.Proc) {
		e.Get(p, 1)
		for pid := page.ID(10); pid < 20; pid++ {
			e.Get(p, pid)
		}
		if !e.SSD().Contains(1) {
			t.Fatal("page 1 not in SSD")
		}
		tx := e.Begin()
		e.Update(p, tx, 1, func(pl []byte) { pl[0] = 1 })
		if e.SSD().Contains(1) {
			t.Error("SSD copy survived the update")
		}
	})
}

func TestLCDirtyEvictionAvoidsDisk(t *testing.T) {
	cfg := testConfig(ssd.LC)
	cfg.PoolPages = 4
	cfg.DirtyFraction = 1.0
	env, e := start(t, cfg)
	defer finish(env, e)
	drive(t, env, e, func(p *sim.Proc) {
		tx := e.Begin()
		e.Update(p, tx, 1, func(pl []byte) { pl[0] = 0x5C })
		e.Commit(p, tx)
		writesBefore := e.DiskArray().Stats().Load().WriteOps
		for pid := page.ID(10); pid < 20; pid++ {
			e.Get(p, pid)
		}
		if got := e.DiskArray().Stats().Load().WriteOps; got != writesBefore {
			t.Errorf("LC eviction reached the disks (%d writes)", got-writesBefore)
		}
		if !e.SSD().IsDirty(1) {
			t.Fatal("dirty page not in SSD")
		}
		f, err := e.Get(p, 1) // must come back from the SSD, newest version
		if err != nil {
			t.Fatal(err)
		}
		if f.Pg.Payload[0] != 0x5C {
			t.Error("stale version read back")
		}
	})
}

func TestScanUsesMultiPageIO(t *testing.T) {
	cfg := testConfig(ssd.NoSSD)
	cfg.ReadAhead = 16
	cfg.ReadAheadRamp = 4
	env, e := start(t, cfg)
	defer finish(env, e)
	drive(t, env, e, func(p *sim.Proc) {
		if err := e.Scan(p, 100, 36); err != nil {
			t.Fatal(err)
		}
	})
	s := e.DiskArray().Stats().Load()
	// 4 ramp singles + 2 batches of 16.
	if s.ReadOps != 6 {
		t.Errorf("disk read ops = %d, want 6", s.ReadOps)
	}
	if s.ReadPages != 36 {
		t.Errorf("disk pages read = %d, want 36", s.ReadPages)
	}
	if e.Stats().ScanPages != 36 {
		t.Errorf("ScanPages = %d", e.Stats().ScanPages)
	}
}

func TestScannedPagesNotAdmittedToSSD(t *testing.T) {
	cfg := testConfig(ssd.DW)
	cfg.PoolPages = 8
	cfg.FillThreshold = 0.01 // skip aggressive filling
	cfg.ReadAheadRamp = -1
	env, e := start(t, cfg)
	defer finish(env, e)
	drive(t, env, e, func(p *sim.Proc) {
		e.Scan(p, 100, 32)
		// Push everything out.
		for pid := page.ID(0); pid < 16; pid++ {
			e.Get(p, pid)
		}
		for pid := page.ID(100); pid < 132; pid++ {
			if e.SSD().Contains(pid) {
				t.Fatalf("sequentially-read page %d admitted to SSD", pid)
			}
		}
	})
}

func TestMultiPageReadTrimsSSDPages(t *testing.T) {
	cfg := testConfig(ssd.DW)
	cfg.PoolPages = 16
	cfg.ReadAhead = 8
	cfg.ReadAheadRamp = -1
	env, e := start(t, cfg)
	defer finish(env, e)
	drive(t, env, e, func(p *sim.Proc) {
		// Get pages 100 and 107 (random), evict them into the SSD.
		e.Get(p, 100)
		e.Get(p, 107)
		for pid := page.ID(0); pid < 16; pid++ {
			e.Get(p, pid)
		}
		if !e.SSD().Contains(100) || !e.SSD().Contains(107) {
			t.Fatal("edge pages not in SSD")
		}
		// Flush the pool again so the scan misses everywhere.
		for pid := page.ID(20); pid < 36; pid++ {
			e.Get(p, pid)
		}
		readsBefore := e.DiskArray().Stats().Load()
		if err := e.Scan(p, 100, 8); err != nil {
			t.Fatal(err)
		}
		d := e.DiskArray().Stats().Load().Sub(readsBefore)
		// Pages 100 and 107 are the leading/trailing SSD pages: trimmed.
		// The disk sees one 6-page read (101..106).
		if d.ReadOps != 1 || d.ReadPages != 6 {
			t.Errorf("disk saw %d ops / %d pages, want 1 op / 6 pages", d.ReadOps, d.ReadPages)
		}
	})
}

func TestMiddleDirtySSDPageWinsOverDiskVersion(t *testing.T) {
	cfg := testConfig(ssd.LC)
	cfg.PoolPages = 16
	cfg.ReadAhead = 8
	cfg.ReadAheadRamp = -1
	cfg.DirtyFraction = 1.0
	env, e := start(t, cfg)
	defer finish(env, e)
	drive(t, env, e, func(p *sim.Proc) {
		// Dirty page 103 and evict it into the SSD (newest copy on SSD).
		tx := e.Begin()
		e.Update(p, tx, 103, func(pl []byte) { pl[0] = 0xFE })
		e.Commit(p, tx)
		for pid := page.ID(0); pid < 16; pid++ {
			e.Get(p, pid)
		}
		if !e.SSD().IsDirty(103) {
			t.Fatal("dirty copy not on SSD")
		}
		// Scan across it; middle page read from disk would be stale.
		if err := e.Scan(p, 100, 8); err != nil {
			t.Fatal(err)
		}
		f := e.Pool().Peek(103)
		if f == nil {
			t.Fatal("page 103 not resident after scan")
		}
		if f.Pg.Payload[0] != 0xFE {
			t.Error("scan returned the stale disk version of a dirty SSD page")
		}
	})
}

func TestCheckpointFlushesPoolDirtyPages(t *testing.T) {
	env, e := start(t, testConfig(ssd.NoSSD))
	defer finish(env, e)
	drive(t, env, e, func(p *sim.Proc) {
		tx := e.Begin()
		for pid := page.ID(0); pid < 10; pid++ {
			e.Update(p, tx, pid, func(pl []byte) { pl[0] = byte(pid) })
		}
		e.Commit(p, tx)
		if err := e.Checkpoint(p); err != nil {
			t.Fatal(err)
		}
		if n := len(e.Pool().DirtyPages()); n != 0 {
			t.Errorf("%d dirty pages after checkpoint", n)
		}
		if _, ok := e.Log().LastCheckpoint(); !ok {
			t.Error("no checkpoint record logged")
		}
	})
	// Pages 0..9 are contiguous: the checkpoint should write them in one
	// grouped I/O.
	if w := e.DiskArray().Stats().Load().WriteOps; w != 1 {
		t.Errorf("checkpoint used %d write ops, want 1 grouped write", w)
	}
}

func TestCheckpointLCFlushesSSDDirty(t *testing.T) {
	cfg := testConfig(ssd.LC)
	cfg.PoolPages = 4
	cfg.DirtyFraction = 1.0
	env, e := start(t, cfg)
	defer finish(env, e)
	drive(t, env, e, func(p *sim.Proc) {
		tx := e.Begin()
		e.Update(p, tx, 1, func(pl []byte) { pl[0] = 1 })
		e.Commit(p, tx)
		for pid := page.ID(10); pid < 20; pid++ {
			e.Get(p, pid)
		}
		if e.SSD().DirtyCount() == 0 {
			t.Fatal("no dirty SSD pages before checkpoint")
		}
		if err := e.Checkpoint(p); err != nil {
			t.Fatal(err)
		}
		if e.SSD().DirtyCount() != 0 {
			t.Errorf("LC checkpoint left %d dirty SSD pages", e.SSD().DirtyCount())
		}
	})
}

func TestPeriodicCheckpointer(t *testing.T) {
	cfg := testConfig(ssd.NoSSD)
	cfg.CheckpointInterval = 50 * time.Millisecond
	env, e := start(t, cfg)
	defer finish(env, e)
	drive(t, env, e, func(p *sim.Proc) {
		tx := e.Begin()
		e.Update(p, tx, 3, func(pl []byte) { pl[0] = 3 })
		e.Commit(p, tx)
		p.Sleep(200 * time.Millisecond)
	})
	if e.Stats().Checkpoints < 2 {
		t.Errorf("Checkpoints = %d, want >= 2", e.Stats().Checkpoints)
	}
}

func TestCrashLosesUncommitted(t *testing.T) {
	env, e := start(t, testConfig(ssd.NoSSD))
	defer finish(env, e)
	drive(t, env, e, func(p *sim.Proc) {
		tx := e.Begin()
		e.Update(p, tx, 5, func(pl []byte) { pl[0] = 0x11 })
		e.Commit(p, tx)
		tx2 := e.Begin()
		e.Update(p, tx2, 5, func(pl []byte) { pl[0] = 0x22 }) // never committed
		e.Crash()
		if err := e.Recover(p); err != nil {
			t.Fatal(err)
		}
		f, err := e.Get(p, 5)
		if err != nil {
			t.Fatal(err)
		}
		if f.Pg.Payload[0] != 0x11 {
			t.Errorf("payload = %#x, want committed 0x11", f.Pg.Payload[0])
		}
	})
}

// shadowHistory mirrors the WAL to compute the expected post-recovery state.
type shadowHistory struct {
	recs []shadowRec
}

type shadowRec struct {
	lsn     uint64
	pid     page.ID
	payload []byte
}

func (s *shadowHistory) note(lsn uint64, pid page.ID, payload []byte) {
	s.recs = append(s.recs, shadowRec{lsn, pid, append([]byte(nil), payload...)})
}

// expect returns the expected page payloads after recovery with the durable
// LSN horizon.
func (s *shadowHistory) expect(durable uint64, payloadSize int) map[page.ID][]byte {
	m := map[page.ID][]byte{}
	for _, r := range s.recs {
		if r.lsn <= durable {
			m[r.pid] = r.payload
		}
	}
	for pid, pl := range m {
		if len(pl) != payloadSize {
			t := make([]byte, payloadSize)
			copy(t, pl)
			m[pid] = t
		}
	}
	return m
}

// TestCrashRecoveryShadowModel runs a random committed workload against
// every design, crashes at a random point, recovers, and verifies every
// page byte-for-byte against the durable shadow state.
func TestCrashRecoveryShadowModel(t *testing.T) {
	for _, design := range []ssd.Design{ssd.NoSSD, ssd.CW, ssd.DW, ssd.LC, ssd.TAC} {
		for seed := int64(1); seed <= 3; seed++ {
			t.Run(fmt.Sprintf("%s/seed%d", design, seed), func(t *testing.T) {
				cfg := testConfig(design)
				cfg.PoolPages = 8
				cfg.SSDFrames = 24
				cfg.DirtyFraction = 0.5
				env, e := start(t, cfg)
				defer finish(env, e)
				rng := rand.New(rand.NewSource(seed))
				shadow := &shadowHistory{}
				drive(t, env, e, func(p *sim.Proc) {
					for i := 0; i < 300; i++ {
						tx := e.Begin()
						for j := 0; j < 3; j++ {
							pid := page.ID(rng.Intn(100))
							if rng.Intn(2) == 0 {
								v := byte(rng.Intn(256))
								if err := e.Update(p, tx, pid, func(pl []byte) { pl[0] = v; pl[1]++ }); err != nil {
									t.Fatal(err)
								}
								f := e.Pool().Peek(pid)
								shadow.note(f.Pg.LSN, pid, f.Pg.Payload)
							} else if _, err := e.Get(p, pid); err != nil {
								t.Fatal(err)
							}
						}
						if rng.Intn(4) != 0 { // 75% of transactions commit
							e.Commit(p, tx)
						}
						if i == 150 {
							if err := e.Checkpoint(p); err != nil {
								t.Fatal(err)
							}
						}
					}
					durable := e.Log().FlushedLSN()
					e.Crash()
					if err := e.Recover(p); err != nil {
						t.Fatal(err)
					}
					want := shadow.expect(durable, cfg.PayloadSize)
					for pid := page.ID(0); pid < 100; pid++ {
						f, err := e.Get(p, pid)
						if err != nil {
							t.Fatal(err)
						}
						exp, ok := want[pid]
						if !ok {
							exp = make([]byte, cfg.PayloadSize)
						}
						if !bytes.Equal(f.Pg.Payload, exp) {
							t.Errorf("page %d: got %x..., want %x...", pid, f.Pg.Payload[:4], exp[:4])
						}
					}
				})
			})
		}
	}
}

// TestPageCopyStateInvariants verifies the Figure 3 relationships: clean
// SSD copies always equal the disk version; dirty SSD copies (LC only) are
// strictly newer; CW/DW/TAC never hold dirty SSD copies.
func TestPageCopyStateInvariants(t *testing.T) {
	for _, design := range []ssd.Design{ssd.CW, ssd.DW, ssd.LC, ssd.TAC} {
		t.Run(design.String(), func(t *testing.T) {
			cfg := testConfig(design)
			cfg.PoolPages = 8
			cfg.SSDFrames = 32
			cfg.DirtyFraction = 0.8
			env, e := start(t, cfg)
			defer finish(env, e)
			rng := rand.New(rand.NewSource(7))
			drive(t, env, e, func(p *sim.Proc) {
				for i := 0; i < 500; i++ {
					pid := page.ID(rng.Intn(128))
					tx := e.Begin()
					if rng.Intn(3) == 0 {
						e.Update(p, tx, pid, func(pl []byte) { pl[0]++ })
						e.Commit(p, tx)
					} else {
						e.Get(p, pid)
					}
					if i%50 == 0 {
						checkCopyStates(t, p, e, design)
					}
				}
				checkCopyStates(t, p, e, design)
			})
		})
	}
}

// checkCopyStates compares SSD and disk versions of every SSD-cached page.
func checkCopyStates(t *testing.T, p *sim.Proc, e *Engine, design ssd.Design) {
	t.Helper()
	for pid := page.ID(0); pid < page.ID(e.Config().DBPages); pid++ {
		if !e.SSD().Contains(pid) {
			continue
		}
		ssdPg := page.Page{Payload: make([]byte, e.Config().PayloadSize)}
		hit, err := e.SSD().Read(p, pid, &ssdPg)
		if err != nil {
			t.Fatal(err)
		}
		if !hit {
			continue
		}
		buf := make([]byte, e.bufSize())
		if err := e.DiskArray().Read(p, device.PageNum(pid), [][]byte{buf}); err != nil {
			t.Fatal(err)
		}
		var diskPg page.Page
		if err := page.Decode(buf, &diskPg); err != nil {
			t.Fatal(err)
		}
		dirty := e.SSD().IsDirty(pid)
		switch {
		case dirty && design != ssd.LC:
			t.Errorf("%s: page %d dirty in SSD (cases 4/6 are LC-only)", design, pid)
		case dirty && ssdPg.LSN <= diskPg.LSN:
			t.Errorf("page %d: dirty SSD copy lsn %d not newer than disk %d", pid, ssdPg.LSN, diskPg.LSN)
		case !dirty && ssdPg.LSN != diskPg.LSN:
			t.Errorf("page %d: clean SSD copy lsn %d != disk %d", pid, ssdPg.LSN, diskPg.LSN)
		}
	}
}

func TestRecoveryCountsRedo(t *testing.T) {
	env, e := start(t, testConfig(ssd.NoSSD))
	defer finish(env, e)
	drive(t, env, e, func(p *sim.Proc) {
		tx := e.Begin()
		for pid := page.ID(0); pid < 5; pid++ {
			e.Update(p, tx, pid, func(pl []byte) { pl[0] = 9 })
		}
		e.Commit(p, tx)
		e.Checkpoint(p) // pages on disk; redo should skip them
		tx2 := e.Begin()
		e.Update(p, tx2, 7, func(pl []byte) { pl[0] = 9 })
		e.Commit(p, tx2)
		e.Crash()
		if err := e.Recover(p); err != nil {
			t.Fatal(err)
		}
	})
	s := e.Stats()
	if s.RedoApplied != 1 {
		t.Errorf("RedoApplied = %d, want 1 (only the post-checkpoint update)", s.RedoApplied)
	}
}

func TestDistanceClassifierLabels(t *testing.T) {
	c := newClassifier(ClassifyDistance)
	if c.label(100, false) {
		t.Error("first read labelled sequential")
	}
	c.noteDiskRead(100)
	if !c.label(130, false) {
		t.Error("nearby read not labelled sequential")
	}
	if c.label(100+distanceWindow+1, false) {
		t.Error("far read labelled sequential")
	}
	c.noteDiskRead(5000)
	if c.label(101, false) {
		t.Error("stale proximity")
	}
}

func TestReadAheadClassifierLabels(t *testing.T) {
	c := newClassifier(ClassifyReadAhead)
	if c.label(1, false) {
		t.Error("point read labelled sequential")
	}
	if !c.label(1, true) {
		t.Error("read-ahead read not labelled sequential")
	}
}

func TestTACEngineFlow(t *testing.T) {
	cfg := testConfig(ssd.TAC)
	cfg.PoolPages = 4
	env, e := start(t, cfg)
	defer finish(env, e)
	drive(t, env, e, func(p *sim.Proc) {
		e.Get(p, 1)
		p.Sleep(10 * time.Millisecond) // let the async admission land
		if !e.SSD().Contains(1) {
			t.Fatal("TAC did not admit the page read from disk")
		}
		// Dirty it: logical invalidation (frame stays occupied).
		tx := e.Begin()
		e.Update(p, tx, 1, func(pl []byte) { pl[0] = 1 })
		e.Commit(p, tx)
		if e.SSD().Contains(1) {
			t.Error("invalid copy still visible")
		}
		if e.SSD().InvalidCount() != 1 {
			t.Errorf("InvalidCount = %d", e.SSD().InvalidCount())
		}
		// Evict the dirty page: double-touch fillers so page 1 (whose
		// penultimate access is oldest) becomes the LRU-2 victim.
		for pid := page.ID(10); pid < 20; pid++ {
			e.Get(p, pid)
			e.Get(p, pid)
		}
		if !e.SSD().Contains(1) {
			t.Error("dirty eviction did not revalidate the SSD copy")
		}
	})
}

func TestCommittedWorkSurvivesWALRecordTypes(t *testing.T) {
	env, e := start(t, testConfig(ssd.NoSSD))
	defer finish(env, e)
	drive(t, env, e, func(p *sim.Proc) {
		tx := e.Begin()
		e.Update(p, tx, 0, func(pl []byte) { pl[0] = 1 })
		e.Commit(p, tx)
	})
	recs := e.Log().Durable()
	if len(recs) != 1 || recs[0].Type != wal.TypeUpdate || recs[0].Page != 0 {
		t.Errorf("durable log = %+v", recs)
	}
}

func TestPageBoundsValidation(t *testing.T) {
	env, e := start(t, testConfig(ssd.NoSSD))
	defer finish(env, e)
	drive(t, env, e, func(p *sim.Proc) {
		if _, err := e.Get(p, -1); !errors.Is(err, ErrPageRange) {
			t.Errorf("Get(-1) = %v", err)
		}
		if _, err := e.Get(p, 512); !errors.Is(err, ErrPageRange) {
			t.Errorf("Get(512) = %v", err)
		}
		tx := e.Begin()
		if err := e.Update(p, tx, 9999, func([]byte) {}); !errors.Is(err, ErrPageRange) {
			t.Errorf("Update out of range = %v", err)
		}
		if err := e.Scan(p, 500, 20); !errors.Is(err, ErrPageRange) {
			t.Errorf("Scan past end = %v", err)
		}
		if err := e.Scan(p, 0, -1); !errors.Is(err, ErrPageRange) {
			t.Errorf("negative Scan = %v", err)
		}
		if err := e.Scan(p, 0, 0); err != nil {
			t.Errorf("empty Scan = %v", err)
		}
	})
}
