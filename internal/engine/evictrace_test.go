package engine

import (
	"encoding/binary"
	"fmt"
	"testing"

	"turbobp/btree"
	"turbobp/heapfile"
	"turbobp/internal/sim"
	"turbobp/internal/ssd"
	"turbobp/storage"
)

// These tests pin down the in-flight dirty-eviction race: claimFrame pops
// the victim from the pool table, then the WAL force and SSD/disk writeback
// yield to the simulator — and before Engine.evicting existed, a concurrent
// access of the victim page in that window read the stale device image.
// Eight workers growing private B+-trees and heapfiles over a pool far
// smaller than the working set evict each other's dirty pages constantly,
// which is exactly the trigger; structure traversals then consume the torn
// pages (the original symptom was a slice-bounds panic in heapfile.Insert
// on a zero page). The big-pool variant pins the no-eviction baseline.

func runEvictRace(t *testing.T, task bool, workers, pool int) {
	env := sim.NewEnv()
	e := New(env, Config{Design: ssd.DW, DBPages: 8192, PoolPages: pool, SSDFrames: 256, PayloadSize: 256})
	if err := e.FormatDB(); err != nil {
		t.Fatal(err)
	}
	var alloc int64
	mk := func(p *sim.Proc) storage.Store {
		if task {
			return NewTaskStore(e, p, &alloc)
		}
		return NewProcStore(e, p, &alloc)
	}
	const perWorker = 300
	heapMeta := make([]int64, workers)
	treeMeta := make([]int64, workers)
	ready := sim.NewSignal(env)
	env.Go("load", func(p *sim.Proc) {
		st := mk(p)
		for w := 0; w < workers; w++ {
			f, err := heapfile.Create(st)
			if err != nil {
				t.Error(err)
				return
			}
			tr, err := btree.Create(st)
			if err != nil {
				t.Error(err)
				return
			}
			heapMeta[w] = f.Meta()
			treeMeta[w] = tr.Meta()
		}
		if err := st.Commit(); err != nil {
			t.Error(err)
		}
		ready.Broadcast()
	})
	procs := make([]*sim.Proc, workers)
	for w := 0; w < workers; w++ {
		w := w
		procs[w] = env.Go("worker", func(p *sim.Proc) {
			st := mk(p)
			ready.WaitFired(p)
			f, err := heapfile.Open(st, heapMeta[w])
			if err != nil {
				t.Error(err)
				return
			}
			tr, err := btree.Open(st, treeMeta[w])
			if err != nil {
				t.Error(err)
				return
			}
			rids := make([]heapfile.RID, perWorker)
			rec := make([]byte, 16)
			for i := int64(0); i < perWorker; i++ {
				binary.LittleEndian.PutUint64(rec, uint64(w))
				binary.LittleEndian.PutUint64(rec[8:], uint64(i))
				rid, err := f.Insert(rec)
				if err != nil {
					t.Errorf("w%d insert %d: %v", w, i, err)
					return
				}
				rids[i] = rid
				if err := tr.Insert(i, rid.Page); err != nil {
					t.Errorf("w%d tree insert %d: %v", w, i, err)
					return
				}
				if err := st.Commit(); err != nil {
					t.Errorf("w%d commit %d: %v", w, i, err)
					return
				}
			}
			// Verify every insert survived its neighbours' eviction pressure:
			// the tree resolves each key and the heap record's content is the
			// (worker, i) stamp written above.
			if n, err := tr.Size(); err != nil || n != perWorker {
				t.Errorf("w%d tree size = %d, %v; want %d", w, n, err, perWorker)
				return
			}
			for i := int64(0); i < perWorker; i++ {
				pg, err := tr.Search(i)
				if err != nil {
					t.Errorf("w%d search %d: %v", w, i, err)
					return
				}
				if pg != rids[i].Page {
					t.Errorf("w%d search %d = page %d, want %d", w, i, pg, rids[i].Page)
					return
				}
				got, err := f.Get(rids[i])
				if err != nil {
					t.Errorf("w%d get %v: %v", w, rids[i], err)
					return
				}
				gw := binary.LittleEndian.Uint64(got)
				gi := binary.LittleEndian.Uint64(got[8:])
				if gw != uint64(w) || gi != uint64(i) {
					t.Errorf("w%d record %d = (%d,%d), want (%d,%d)", w, i, gw, gi, w, i)
					return
				}
			}
		})
	}
	env.Go("join", func(p *sim.Proc) {
		for _, wp := range procs {
			wp.Done().WaitFired(p)
		}
		e.StopBackground()
	})
	env.Run(-1)
	env.Shutdown()
	if pool <= 64 && e.Stats().DirtyEvicts == 0 {
		t.Fatal("expected dirty evictions; the scenario no longer exercises the writeback window")
	}
}

func TestEvictRaceProc(t *testing.T)       { runEvictRace(t, false, 8, 32) }
func TestEvictRaceTask(t *testing.T)       { runEvictRace(t, true, 8, 32) }
func TestEvictRaceNoPressure(t *testing.T) { runEvictRace(t, false, 8, 2048) }

// TestEvictRaceDesigns runs the concurrent-eviction scenario under every
// SSD design: the writeback window differs per design (LC lands only on
// the SSD, CW only on disk, DW on both), so each routes the waiting
// readers through a different durable copy.
func TestEvictRaceDesigns(t *testing.T) {
	for _, d := range []ssd.Design{ssd.NoSSD, ssd.CW, ssd.DW, ssd.LC, ssd.TAC} {
		d := d
		t.Run(fmt.Sprint(d), func(t *testing.T) { runEvictRaceDesign(t, d) })
	}
}

func runEvictRaceDesign(t *testing.T, design ssd.Design) {
	env := sim.NewEnv()
	e := New(env, Config{Design: design, DBPages: 8192, PoolPages: 32, SSDFrames: 256, PayloadSize: 256})
	if err := e.FormatDB(); err != nil {
		t.Fatal(err)
	}
	var alloc int64
	const workers, per = 4, 150
	metas := make([]int64, workers)
	ready := sim.NewSignal(env)
	env.Go("load", func(p *sim.Proc) {
		st := NewProcStore(e, p, &alloc)
		for w := 0; w < workers; w++ {
			tr, err := btree.Create(st)
			if err != nil {
				t.Error(err)
				return
			}
			metas[w] = tr.Meta()
		}
		if err := st.Commit(); err != nil {
			t.Error(err)
		}
		ready.Broadcast()
	})
	procs := make([]*sim.Proc, workers)
	for w := 0; w < workers; w++ {
		w := w
		procs[w] = env.Go("worker", func(p *sim.Proc) {
			st := NewProcStore(e, p, &alloc)
			ready.WaitFired(p)
			tr, err := btree.Open(st, metas[w])
			if err != nil {
				t.Error(err)
				return
			}
			for i := int64(0); i < per; i++ {
				if err := tr.Insert(i*7, int64(w)*per+i); err != nil {
					t.Errorf("w%d insert %d: %v", w, i, err)
					return
				}
				if err := st.Commit(); err != nil {
					t.Errorf("w%d commit %d: %v", w, i, err)
					return
				}
			}
			for i := int64(0); i < per; i++ {
				v, err := tr.Search(i * 7)
				if err != nil || v != int64(w)*per+i {
					t.Errorf("w%d search %d = %d, %v; want %d", w, i, v, err, int64(w)*per+i)
					return
				}
			}
		})
	}
	env.Go("join", func(p *sim.Proc) {
		for _, wp := range procs {
			wp.Done().WaitFired(p)
		}
		e.StopBackground()
	})
	env.Run(-1)
	env.Shutdown()
}
