package engine

import (
	"encoding/binary"
	"errors"
	"testing"
	"time"

	"turbobp/internal/fault"
	"turbobp/internal/page"
	"turbobp/internal/sim"
	"turbobp/internal/ssd"
)

// faultTestPages is the hot set the fault tests update. It exceeds the pool
// so evictions (and therefore SSD and disk traffic) happen under fault.
const faultTestPages = 48

// faultRig drives an engine with self-verifying counters under fault
// injection: payload[0:8] is a per-page update counter; applied tracks every
// update, committed only acknowledged ones.
type faultRig struct {
	t         *testing.T
	e         *Engine
	inj       *fault.Injector
	rng       uint64
	applied   []uint64
	committed []uint64
}

func newFaultRig(t *testing.T, design ssd.Design, opts ...func(*Config)) (*sim.Env, *faultRig) {
	cfg := testConfig(design)
	cfg.PoolPages = 16
	cfg.DirtyFraction = 0.9 // keep LC's uniquely-dirty SSD set populated
	inj := fault.New(0xFA17)
	cfg.Faults = inj
	for _, opt := range opts {
		opt(&cfg)
	}
	env, e := start(t, cfg)
	return env, &faultRig{
		t:         t,
		e:         e,
		inj:       inj,
		rng:       0xFA17,
		applied:   make([]uint64, faultTestPages),
		committed: make([]uint64, faultTestPages),
	}
}

func (r *faultRig) rand() uint64 {
	r.rng += 0x9E3779B97F4A7C15
	z := r.rng
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// round updates 8 random hot pages, reads 4 more (the reads leave pages
// clean — CW and TAC need clean pages to cache anything) and commits. It
// returns true if an armed crash point interrupted the commit.
func (r *faultRig) round(p *sim.Proc) bool {
	tx := r.e.Begin()
	for i := 0; i < 12; i++ {
		pid := page.ID(r.rand() % faultTestPages)
		if i%3 == 2 {
			if _, err := r.e.Get(p, pid); err != nil {
				r.t.Fatalf("read: %v", err)
			}
			continue
		}
		err := r.e.Update(p, tx, pid, func(pl []byte) {
			c := binary.LittleEndian.Uint64(pl[0:8]) + 1
			binary.LittleEndian.PutUint64(pl[0:8], c)
			r.applied[pid] = c
		})
		if err != nil {
			r.t.Fatalf("update: %v", err)
		}
	}
	err := r.e.Commit(p, tx)
	if err == nil {
		copy(r.committed, r.applied)
		return false
	}
	if errors.Is(err, fault.ErrCrashPoint) {
		return true
	}
	r.t.Fatalf("commit: %v", err)
	return false
}

// verify checks every hot page's counter lies in [lo, hi] and resyncs the
// model to the observed state.
func (r *faultRig) verify(p *sim.Proc, lo, hi []uint64) {
	for pid := int64(0); pid < faultTestPages; pid++ {
		f, err := r.e.Get(p, page.ID(pid))
		if err != nil {
			r.t.Fatalf("verify read %d: %v", pid, err)
		}
		c := binary.LittleEndian.Uint64(f.Pg.Payload[0:8])
		if c < lo[pid] || c > hi[pid] {
			r.t.Errorf("page %d: counter %d outside [%d, %d]", pid, c, lo[pid], hi[pid])
		}
		r.applied[pid] = c
		r.committed[pid] = c
	}
}

func (r *faultRig) verifyExact(p *sim.Proc) { r.verify(p, r.applied, r.applied) }

func (r *faultRig) crashRecover(p *sim.Proc) {
	r.e.Crash()
	if err := r.e.Recover(p); err != nil {
		r.t.Fatalf("recover: %v", err)
	}
}

// TestCommitCrashPoints: a crash before the commit's log force loses at most
// the unacknowledged transaction; a crash after it loses nothing — for every
// design.
func TestCommitCrashPoints(t *testing.T) {
	cases := []struct {
		site  fault.Site
		exact bool // the crashed round is fully durable
	}{
		{fault.SitePreWALFlush, false},
		{fault.SitePostWALFlush, true},
	}
	for _, design := range []ssd.Design{ssd.CW, ssd.DW, ssd.LC, ssd.TAC} {
		for _, tc := range cases {
			t.Run(design.String()+"/"+string(tc.site), func(t *testing.T) {
				env, r := newFaultRig(t, design)
				defer finish(env, r.e)
				drive(t, env, r.e, func(p *sim.Proc) {
					r.inj.ArmCrash(tc.site, 5)
					crashed := false
					for i := 0; i < 10 && !crashed; i++ {
						crashed = r.round(p)
					}
					if !crashed {
						t.Fatal("crash site never fired")
					}
					r.crashRecover(p)
					if tc.exact {
						// Durable but unacknowledged: the crashed round
						// must be fully recovered.
						r.verify(p, r.applied, r.applied)
					} else {
						// Evictions may have forced part of the crashed
						// round's log; nothing committed may be missing.
						r.verify(p, r.committed, r.applied)
					}
					if r.round(p) {
						t.Fatal("crash point fired twice")
					}
					r.verifyExact(p)
				})
			})
		}
	}
}

// TestCheckpointCrashPoints: a crash mid-checkpoint (pages flushed, record
// unlogged) recovers from the previous checkpoint; a crash after the record
// is durable recovers from the new one. Committed data survives either way.
func TestCheckpointCrashPoints(t *testing.T) {
	for _, design := range []ssd.Design{ssd.CW, ssd.DW, ssd.LC, ssd.TAC} {
		for _, site := range []fault.Site{fault.SiteMidCheckpoint, fault.SitePostCheckpoint} {
			t.Run(design.String()+"/"+string(site), func(t *testing.T) {
				env, r := newFaultRig(t, design)
				defer finish(env, r.e)
				drive(t, env, r.e, func(p *sim.Proc) {
					for i := 0; i < 5; i++ {
						r.round(p)
					}
					if err := r.e.Checkpoint(p); err != nil {
						t.Fatalf("clean checkpoint: %v", err)
					}
					for i := 0; i < 3; i++ {
						r.round(p)
					}
					r.inj.ArmCrash(site, 1)
					if err := r.e.Checkpoint(p); !errors.Is(err, fault.ErrCrashPoint) {
						t.Fatalf("checkpoint err = %v, want ErrCrashPoint", err)
					}
					r.crashRecover(p)
					r.verifyExact(p)
					// The engine must checkpoint normally after recovery.
					if err := r.e.Checkpoint(p); err != nil {
						t.Fatalf("post-recovery checkpoint: %v", err)
					}
					r.round(p)
					r.verifyExact(p)
				})
			})
		}
	}
}

// TestLazyCleanerCrashPoint: crashing the LC cleaner between its SSD reads
// and its disk write leaves the SSD holding the only up-to-date copies;
// WAL-based recovery must still restore every committed update.
func TestLazyCleanerCrashPoint(t *testing.T) {
	env, r := newFaultRig(t, ssd.LC, func(cfg *Config) {
		cfg.DirtyFraction = 0.05 // wake the cleaner early
	})
	defer finish(env, r.e)
	drive(t, env, r.e, func(p *sim.Proc) {
		r.inj.ArmCrash(fault.SiteMidLazyClean, 1)
		for i := 0; i < 60 && !r.inj.Fired(); i++ {
			r.round(p)
			p.Sleep(20 * time.Millisecond) // cleaner airtime
		}
		if !r.inj.Fired() {
			t.Fatal("cleaner crash site never fired")
		}
		r.crashRecover(p)
		r.verifyExact(p)
	})
}

// TestSSDLossLive: a whole-SSD failure during forward processing must lose
// nothing. Only LC has uniquely-dirty SSD pages to rebuild from the WAL.
func TestSSDLossLive(t *testing.T) {
	for _, design := range []ssd.Design{ssd.CW, ssd.DW, ssd.LC, ssd.TAC} {
		t.Run(design.String(), func(t *testing.T) {
			env, r := newFaultRig(t, design)
			defer finish(env, r.e)
			drive(t, env, r.e, func(p *sim.Proc) {
				for i := 0; i < 10; i++ {
					r.round(p)
					p.Sleep(5 * time.Millisecond)
				}
				r.inj.FailDeviceNow("ssd")
				for i := 0; i < 20; i++ {
					r.round(p)
					p.Sleep(5 * time.Millisecond)
				}
				st := r.e.Stats()
				if st.SSDLosses != 1 {
					t.Errorf("SSDLosses = %d, want 1", st.SSDLosses)
				}
				if design != ssd.LC && st.SSDLossRedo != 0 {
					t.Errorf("%s: SSDLossRedo = %d, want 0", design, st.SSDLossRedo)
				}
				r.verifyExact(p)
			})
		})
	}
}

// TestSSDLossRedoLC: with the cleaner off, LC accumulates uniquely-dirty SSD
// pages; losing the SSD then forces WAL redo, and no committed update is
// lost.
func TestSSDLossRedoLC(t *testing.T) {
	env, r := newFaultRig(t, ssd.LC)
	defer finish(env, r.e)
	drive(t, env, r.e, func(p *sim.Proc) {
		r.e.SSD().StopCleaner() // let dirty SSD pages pile up
		for i := 0; i < 20; i++ {
			r.round(p)
		}
		if got := len(r.e.SSD().DirtyPageIDs()); got == 0 {
			t.Fatal("no uniquely-dirty SSD pages to lose; test is vacuous")
		}
		r.inj.FailDeviceNow("ssd")
		for i := 0; i < 10; i++ {
			r.round(p)
		}
		st := r.e.Stats()
		if st.SSDLosses != 1 {
			t.Errorf("SSDLosses = %d, want 1", st.SSDLosses)
		}
		if st.SSDLossRedo == 0 {
			t.Error("SSDLossRedo = 0: dirty SSD pages were not rebuilt from the WAL")
		}
		r.verifyExact(p)
	})
}

// TestSSDIOErrorsAbsorbed: transient injected read/write errors degrade to
// disk traffic without data loss for every design.
func TestSSDIOErrorsAbsorbed(t *testing.T) {
	for _, design := range []ssd.Design{ssd.CW, ssd.DW, ssd.LC, ssd.TAC} {
		t.Run(design.String(), func(t *testing.T) {
			env, r := newFaultRig(t, design)
			defer finish(env, r.e)
			drive(t, env, r.e, func(p *sim.Proc) {
				for k := 0; k < 5; k++ {
					r.inj.ErrorRead("ssd", k*8+int(r.inj.Rand()%6))
					r.inj.ErrorWrite("ssd", int(r.inj.Rand()%40))
				}
				for i := 0; i < 30; i++ {
					r.round(p)
					p.Sleep(2 * time.Millisecond)
				}
				r.verifyExact(p)
			})
		})
	}
}
