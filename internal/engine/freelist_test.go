package engine

import (
	"testing"

	"turbobp/internal/page"
	"turbobp/internal/sim"
	"turbobp/internal/ssd"
)

// driveEngine runs fn to completion inside a simulation process.
func driveEngine(t *testing.T, env *sim.Env, fn func(p *sim.Proc) error) {
	t.Helper()
	done := false
	var err error
	env.Go("driver", func(p *sim.Proc) {
		err = fn(p)
		done = true
	})
	env.Run(-1)
	if !done {
		t.Fatal("driver did not finish")
	}
	if err != nil {
		t.Fatal(err)
	}
}

// TestPageBufFreeList checks the page-buffer free list: returned buffers
// are resold (identity-preserving), undersized buffers are dropped, and
// vectors round-trip with their contents.
func TestPageBufFreeList(t *testing.T) {
	env := sim.NewEnv()
	defer env.Shutdown()
	e := New(env, Config{Design: ssd.NoSSD, DBPages: 16, PoolPages: 4, PayloadSize: 32})

	b1 := e.getPageBuf()
	if len(b1) != e.bufSize() {
		t.Fatalf("getPageBuf returned %d bytes, want %d", len(b1), e.bufSize())
	}
	e.putPageBuf(b1)
	b2 := e.getPageBuf()
	if &b1[0] != &b2[0] {
		t.Error("free list did not reuse the returned buffer")
	}

	// Undersized buffers must never enter the free list.
	e.putPageBuf(make([]byte, e.bufSize()-1))
	b3 := e.getPageBuf()
	if len(b3) != e.bufSize() {
		t.Errorf("free list resold an undersized buffer (%d bytes)", len(b3))
	}

	v := e.getVec(3)
	if len(v) != 3 {
		t.Fatalf("getVec(3) returned %d buffers", len(v))
	}
	for _, b := range v {
		if len(b) != e.bufSize() {
			t.Fatalf("vec buffer is %d bytes, want %d", len(b), e.bufSize())
		}
	}
	first := &v[0][0]
	e.putVec(v)
	v2 := e.getVec(3)
	found := false
	for _, b := range v2 {
		if &b[0] == first {
			found = true
		}
	}
	if !found {
		t.Error("putVec did not recycle the vector's buffers")
	}
}

// TestRecycledBuffersDoNotAlias is the aliasing guard for the zero-alloc
// read/write path: pages stamped with distinct content survive dirty
// eviction, disk write-back and re-fetch through recycled I/O buffers
// with their ID, LSN and payload intact.
func TestRecycledBuffersDoNotAlias(t *testing.T) {
	env := sim.NewEnv()
	defer env.Shutdown()
	cfg := Config{
		Design:        ssd.NoSSD,
		DBPages:       64,
		PoolPages:     8,
		PayloadSize:   32,
		ReadExpansion: -1,
	}
	e := New(env, cfg)
	if err := e.FormatDB(); err != nil {
		t.Fatal(err)
	}
	const stamped = 16
	driveEngine(t, env, func(p *sim.Proc) error {
		for i := 0; i < stamped; i++ {
			tx := e.Begin()
			v := byte(i + 1)
			if err := e.Update(p, tx, page.ID(i), func(pl []byte) { pl[0] = v }); err != nil {
				return err
			}
			if err := e.Commit(p, tx); err != nil {
				return err
			}
		}
		// Cycle the 8-frame pool through the rest of the database several
		// times: every stamped page gets evicted (dirty write-back through
		// a pooled buffer) and its frame re-used for other pages.
		for round := 0; round < 4; round++ {
			for i := stamped; i < int(cfg.DBPages); i++ {
				if _, err := e.Get(p, page.ID(i)); err != nil {
					return err
				}
			}
		}
		for i := 0; i < stamped; i++ {
			f, err := e.Get(p, page.ID(i))
			if err != nil {
				return err
			}
			if f.Pg.ID != page.ID(i) {
				t.Errorf("frame for page %d carries ID %d", i, f.Pg.ID)
			}
			if f.Pg.LSN == 0 {
				t.Errorf("page %d lost its LSN through eviction", i)
			}
			if got := f.Pg.Payload[0]; got != byte(i+1) {
				t.Errorf("page %d payload[0] = %d, want %d — recycled buffer aliased", i, got, i+1)
			}
		}
		return nil
	})
}
