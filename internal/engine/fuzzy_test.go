package engine

import (
	"bytes"
	"math/rand"
	"testing"

	"turbobp/internal/page"
	"turbobp/internal/sim"
	"turbobp/internal/ssd"
)

func TestFuzzyCheckpointFlushesNothing(t *testing.T) {
	cfg := testConfig(ssd.LC)
	cfg.FuzzyCheckpoints = true
	cfg.DirtyFraction = 1.0
	env, e := start(t, cfg)
	defer finish(env, e)
	drive(t, env, e, func(p *sim.Proc) {
		tx := e.Begin()
		for pid := page.ID(0); pid < 10; pid++ {
			e.Update(p, tx, pid, func(pl []byte) { pl[0] = 1 })
		}
		e.Commit(p, tx)
		writes := e.DiskArray().Stats().Load().WriteOps
		if err := e.Checkpoint(p); err != nil {
			t.Fatal(err)
		}
		if got := e.DiskArray().Stats().Load().WriteOps; got != writes {
			t.Errorf("fuzzy checkpoint issued %d disk writes", got-writes)
		}
		if n := len(e.Pool().DirtyPages()); n != 10 {
			t.Errorf("fuzzy checkpoint cleaned pages (%d dirty)", n)
		}
		cp, ok := e.Log().LastCheckpoint()
		if !ok {
			t.Fatal("no checkpoint record")
		}
		// The horizon must cover the oldest dirty update (LSN 1).
		if cp.StartLSN != 0 {
			t.Errorf("horizon = %d, want 0 (all ten updates unflushed)", cp.StartLSN)
		}
	})
}

func TestFuzzyCheckpointHorizonAdvances(t *testing.T) {
	cfg := testConfig(ssd.NoSSD)
	cfg.FuzzyCheckpoints = true
	cfg.PoolPages = 4 // small pool so the eviction loop below flushes page 1
	env, e := start(t, cfg)
	defer finish(env, e)
	drive(t, env, e, func(p *sim.Proc) {
		tx := e.Begin()
		e.Update(p, tx, 1, func(pl []byte) { pl[0] = 1 }) // LSN 1
		e.Commit(p, tx)
		// Clean page 1 by evicting it.
		for pid := page.ID(10); pid < 20; pid++ {
			e.Get(p, pid)
		}
		tx2 := e.Begin()
		e.Update(p, tx2, 2, func(pl []byte) { pl[0] = 2 })
		e.Commit(p, tx2)
		if err := e.Checkpoint(p); err != nil {
			t.Fatal(err)
		}
		cp, _ := e.Log().LastCheckpoint()
		// Only page 2's update (the newest LSN) is unflushed.
		if cp.StartLSN < 1 {
			t.Errorf("horizon = %d; the flushed page 1 update should be excluded", cp.StartLSN)
		}
	})
}

// TestFuzzyCheckpointShadowModel runs the full crash/recovery property
// under fuzzy checkpoints for all designs.
func TestFuzzyCheckpointShadowModel(t *testing.T) {
	for _, design := range []ssd.Design{ssd.NoSSD, ssd.CW, ssd.DW, ssd.LC, ssd.TAC} {
		t.Run(design.String(), func(t *testing.T) {
			cfg := testConfig(design)
			cfg.PoolPages = 8
			cfg.SSDFrames = 24
			cfg.DirtyFraction = 0.9
			cfg.FuzzyCheckpoints = true
			env, e := start(t, cfg)
			defer finish(env, e)
			rng := rand.New(rand.NewSource(21))
			shadow := &shadowHistory{}
			drive(t, env, e, func(p *sim.Proc) {
				for i := 0; i < 250; i++ {
					tx := e.Begin()
					for j := 0; j < 3; j++ {
						pid := page.ID(rng.Intn(80))
						if rng.Intn(2) == 0 {
							v := byte(rng.Intn(256))
							if err := e.Update(p, tx, pid, func(pl []byte) { pl[0] = v; pl[1]++ }); err != nil {
								t.Fatal(err)
							}
							f := e.Pool().Peek(pid)
							shadow.note(f.Pg.LSN, pid, f.Pg.Payload)
						} else if _, err := e.Get(p, pid); err != nil {
							t.Fatal(err)
						}
					}
					e.Commit(p, tx)
					if i%40 == 39 {
						if err := e.Checkpoint(p); err != nil {
							t.Fatal(err)
						}
					}
				}
				durable := e.Log().FlushedLSN()
				e.Crash()
				if err := e.Recover(p); err != nil {
					t.Fatal(err)
				}
				want := shadow.expect(durable, cfg.PayloadSize)
				for pid := page.ID(0); pid < 80; pid++ {
					f, err := e.Get(p, pid)
					if err != nil {
						t.Fatal(err)
					}
					exp, ok := want[pid]
					if !ok {
						exp = make([]byte, cfg.PayloadSize)
					}
					if !bytes.Equal(f.Pg.Payload, exp) {
						t.Errorf("page %d mismatch", pid)
					}
				}
			})
		})
	}
}

// TestFuzzyRestartCostsMoreRedo pins the §2.3.3 tradeoff: after identical
// workloads and one checkpoint, fuzzy recovery replays more records than
// sharp recovery.
func TestFuzzyRestartCostsMoreRedo(t *testing.T) {
	redoWork := func(fuzzy bool) int64 {
		cfg := testConfig(ssd.LC)
		cfg.PoolPages = 8
		cfg.DirtyFraction = 0.9
		cfg.FuzzyCheckpoints = fuzzy
		env, e := start(t, cfg)
		defer finish(env, e)
		var applied int64
		drive(t, env, e, func(p *sim.Proc) {
			rng := rand.New(rand.NewSource(4))
			tx := e.Begin()
			for i := 0; i < 150; i++ {
				e.Update(p, tx, page.ID(rng.Intn(60)), func(pl []byte) { pl[0]++ })
			}
			e.Commit(p, tx)
			if err := e.Checkpoint(p); err != nil {
				t.Fatal(err)
			}
			tx2 := e.Begin()
			for i := 0; i < 20; i++ {
				e.Update(p, tx2, page.ID(rng.Intn(60)), func(pl []byte) { pl[0]++ })
			}
			e.Commit(p, tx2)
			e.Crash()
			if err := e.Recover(p); err != nil {
				t.Fatal(err)
			}
			applied = e.Stats().RedoApplied + e.Stats().RedoSkipped
		})
		return applied
	}
	sharp := redoWork(false)
	fuzzy := redoWork(true)
	if fuzzy <= sharp {
		t.Errorf("fuzzy redo visited %d records, sharp %d; fuzzy must revisit the pre-checkpoint tail", fuzzy, sharp)
	}
}
