package engine

import (
	"turbobp/internal/fault"
	"turbobp/internal/page"
	"turbobp/internal/sim"
	"turbobp/internal/wal"
)

// Crash simulates a power failure: the memory buffer pool and all
// non-durable log records vanish. The SSD's contents physically survive
// but — as in the paper, where no design leverages the SSD across restarts
// (§6) — the SSD buffer pool file is recreated at startup, so the manager
// is rebuilt empty. Only the disks and the durable log carry state across.
func (e *Engine) Crash() {
	e.crashed = true
	e.cpGen++ // retire any running checkpointer
	// In-flight eviction writebacks die with the crash; drop their entries
	// so post-recovery fetches don't wait on a broadcast that never comes.
	clear(e.evicting)
	e.pool.Reset()
	e.log.Crash()
	e.mgr.StopCleaner()
	e.mgr.StopScrubber()
	e.mgr = e.newManager()
}

// RecoverSSDLoss handles a whole-SSD failure during forward processing: the
// cache is rebuilt empty on a replacement device and every page whose only
// up-to-date copy lived on the SSD (LC's uniquely-dirty pages) is rebuilt in
// the memory pool by redoing its durable WAL records against the disk image.
// CW, DW and TAC never have uniquely-dirty SSD pages, so for them this is
// just a cache rebuild — the paper's §2 durability argument, exercised.
//
// The WAL protocol guarantees the redo records exist: a page reaches the SSD
// only after the log is forced through its LSN, and checkpoints (sharp via
// FlushDirty, fuzzy via MinDirtyLSN) never truncate records still needed by
// a dirty SSD page.
func (e *Engine) RecoverSSDLoss(p *sim.Proc) error {
	lost := e.mgr.DirtyPageIDs()
	e.mgr.StopCleaner()
	e.mgr.StopScrubber()
	e.stats.SSDLosses++
	if fd, ok := e.ssdDev.(*fault.Device); ok {
		fd.Replace()
	}
	e.mgr = e.newManager()
	e.mgr.StartCleaner()
	if !e.checkpointStop {
		e.mgr.StartScrubber()
	}
	if len(lost) == 0 {
		return nil
	}
	need := make(map[page.ID]bool, len(lost))
	for _, pid := range lost {
		need[pid] = true
	}
	redo := make(map[page.ID][]wal.Record, len(lost))
	for _, rec := range e.log.Durable() {
		if rec.Type == wal.TypeUpdate && need[rec.Page] {
			redo[rec.Page] = append(redo[rec.Page], rec)
		}
	}
	for _, pid := range lost {
		// Get serves pid from the pool if resident, else from disk (the new
		// SSD is empty) — either way f.Pg.LSN tells which records to apply.
		f, err := e.Get(p, pid)
		if err != nil {
			return err
		}
		for _, rec := range redo[pid] {
			if rec.LSN <= f.Pg.LSN {
				continue
			}
			r := rec
			e.pool.MutateFrame(f, func(payload []byte) { copy(payload, r.Payload) })
			f.Pg.LSN = rec.LSN
			e.stats.SSDLossRedo++
		}
		if !f.Dirty {
			// The disk copy is stale (the page was uniquely dirty), so the
			// rebuilt frame must flush eventually. RecLSN is the oldest
			// durable record for the page — possibly older than the oldest
			// update actually missing from disk, which only makes fuzzy
			// checkpoints keep a little extra log, never lose one.
			f.Dirty = true
			if recs := redo[pid]; len(recs) > 0 {
				f.RecLSN = recs[0].LSN
			} else {
				f.RecLSN = f.Pg.LSN
			}
		}
	}
	return nil
}

// TxResolver decides the fate of an in-doubt (prepared but undecided)
// two-phase-commit participant: given the global transaction id from its
// prepare record, return true to commit, false to abort. A nil resolver
// aborts every in-doubt transaction (presumed abort with no coordinator).
type TxResolver func(gtx uint64) bool

// RecoverDurable is the restart-recovery pass of the file backend: called
// on a freshly-built engine whose log was reloaded from the persisted
// device (wal.LoadDurable), it replays the durable stream commit-aware.
//
// Unlike the in-process Recover — which redoes every update record, exactly
// the right semantics for a log whose commits are implied by the force
// discipline — RecoverDurable must separate transactions a killed process
// had committed from ones it had not, because dirty evictions force the log
// and write pages back regardless of commit status:
//
//   - Update records redo only when their transaction committed: a commit
//     record follows it in the stream, or its prepare record's global id
//     resolves to commit.
//   - Undo records (before-images) of every other transaction apply in
//     reverse log order, rolling back any uncommitted state an eviction
//     leaked to the database device. Reverse order matters when several
//     uncommitted transactions layered writes on one page: a later one's
//     before-image captures an earlier one's uncommitted data, so unwinding
//     newest-first ends on the oldest before-image — the committed state
//     (log forcing is prefix-ordered, so no transaction that committed
//     durably can follow an uncommitted one on the same page).
//
// Pages touched by redo or undo are left dirty in the pool, as a redo pass
// leaves them; the next checkpoint (or Close) writes them back.
func (e *Engine) RecoverDurable(p *sim.Proc, resolve TxResolver) error {
	recs := e.log.Durable()
	committed := make(map[uint64]bool)
	prepared := make(map[uint64]uint64) // local tx id -> global tx id
	for _, rec := range recs {
		switch rec.Type {
		case wal.TypeCommit:
			committed[rec.TxID] = true
		case wal.TypePrepare:
			prepared[rec.TxID] = rec.StartLSN
		}
	}
	txCommitted := func(tx uint64) bool {
		if committed[tx] {
			return true
		}
		if gtx, ok := prepared[tx]; ok {
			return resolve != nil && resolve(gtx)
		}
		return false
	}
	from := uint64(0)
	if cp, ok := e.log.LastCheckpoint(); ok {
		from = cp.StartLSN
	}
	apply := func(rec wal.Record) error {
		f, err := e.Get(p, rec.Page)
		if err != nil {
			return err
		}
		if !f.Dirty {
			f.Dirty = true
			f.RecLSN = rec.LSN
			e.mgr.Invalidate(rec.Page)
		}
		e.pool.MutateFrame(f, func(payload []byte) { copy(payload, rec.Payload) })
		f.Pg.LSN = rec.LSN
		e.stats.RedoApplied++
		return nil
	}
	// Redo pass, forward: committed transactions' after-images. Track the
	// highest committed-update LSN seen per page — whether or not the
	// physical apply was skipped — so the undo pass can tell live aborts
	// from stale ones.
	lastCommitted := make(map[page.ID]uint64)
	for _, rec := range recs {
		if rec.Type != wal.TypeUpdate || rec.LSN <= from {
			continue
		}
		if !txCommitted(rec.TxID) {
			e.stats.RedoSkipped++
			continue
		}
		lastCommitted[rec.Page] = rec.LSN
		f, err := e.Get(p, rec.Page)
		if err != nil {
			return err
		}
		if f.Pg.LSN >= rec.LSN {
			e.stats.RedoSkipped++
			continue // the disk already has this update or a newer one
		}
		if err := apply(rec); err != nil {
			return err
		}
	}
	// Undo pass, backward: uncommitted transactions' before-images,
	// newest-first (see the doc comment for why order matters).
	//
	// An undo is skipped when a committed update to the same page carries a
	// higher LSN. Within one process incarnation that cannot happen — the
	// partition lock is held until commit or crash, so an uncommitted
	// transaction's records are the last for its pages. But an in-doubt
	// transaction aborted by a *previous* recovery leaves its records in
	// the log unresolved: a later incarnation commits new writes to the
	// same page, and on the next restart the stale before-image — captured
	// before those writes — would clobber them. The later committed
	// after-image was taken from post-abort state, so it already
	// incorporates the rollback; the stale undo has nothing left to undo.
	for i := len(recs) - 1; i >= 0; i-- {
		rec := recs[i]
		if rec.Type != wal.TypeUndo || rec.LSN <= from || txCommitted(rec.TxID) {
			continue
		}
		if lastCommitted[rec.Page] > rec.LSN {
			e.stats.RedoSkipped++
			continue // stale abort, superseded by a later committed write
		}
		if err := apply(rec); err != nil {
			return err
		}
	}
	return nil
}

// Recover restarts the engine after a Crash: redo every durable update
// record newer than the last checkpoint's start LSN against the disk
// image. Pages touched by redo are left dirty in the pool, exactly as a
// redo pass leaves them. The time Recover charges is the paper's "restart
// time".
func (e *Engine) Recover(p *sim.Proc) error {
	from := uint64(0)
	if cp, ok := e.log.LastCheckpoint(); ok {
		from = cp.StartLSN
		// Warm restart (§6): rebuild the SSD cache metadata from the
		// buffer table persisted in the checkpoint record. The device
		// contents survived the crash; redo below invalidates any entry
		// it supersedes, and the WAL protocol guarantees no other entry
		// can be stale.
		if e.cfg.WarmRestart && len(cp.Payload) > 0 {
			if err := e.mgr.RestoreTable(cp.Payload); err != nil {
				return err
			}
		}
	}
	for _, rec := range e.log.Durable() {
		if rec.Type != wal.TypeUpdate || rec.LSN <= from {
			continue
		}
		f, err := e.Get(p, rec.Page)
		if err != nil {
			return err
		}
		if f.Pg.LSN >= rec.LSN {
			e.stats.RedoSkipped++
			continue // the disk already has this update or a newer one
		}
		if !f.Dirty {
			f.Dirty = true
			f.RecLSN = rec.LSN
			// Dirtying a page invalidates its SSD copy, during redo as in
			// forward processing — a stale clean copy admitted earlier in
			// this same redo pass must not survive.
			e.mgr.Invalidate(rec.Page)
		}
		r := rec
		e.pool.MutateFrame(f, func(payload []byte) { copy(payload, r.Payload) })
		f.Pg.LSN = rec.LSN
		e.stats.RedoApplied++
	}
	e.crashed = false
	e.mgr.StartCleaner()
	if !e.checkpointStop {
		e.mgr.StartScrubber()
	}
	if e.cfg.CheckpointInterval > 0 && !e.checkpointStop {
		e.startCheckpointer()
	}
	return nil
}
