package engine

import (
	"turbobp/internal/fault"
	"turbobp/internal/page"
	"turbobp/internal/sim"
	"turbobp/internal/wal"
)

// Crash simulates a power failure: the memory buffer pool and all
// non-durable log records vanish. The SSD's contents physically survive
// but — as in the paper, where no design leverages the SSD across restarts
// (§6) — the SSD buffer pool file is recreated at startup, so the manager
// is rebuilt empty. Only the disks and the durable log carry state across.
func (e *Engine) Crash() {
	e.crashed = true
	e.cpGen++ // retire any running checkpointer
	// In-flight eviction writebacks die with the crash; drop their entries
	// so post-recovery fetches don't wait on a broadcast that never comes.
	clear(e.evicting)
	e.pool.Reset()
	e.log.Crash()
	e.mgr.StopCleaner()
	e.mgr.StopScrubber()
	e.mgr = e.newManager()
}

// RecoverSSDLoss handles a whole-SSD failure during forward processing: the
// cache is rebuilt empty on a replacement device and every page whose only
// up-to-date copy lived on the SSD (LC's uniquely-dirty pages) is rebuilt in
// the memory pool by redoing its durable WAL records against the disk image.
// CW, DW and TAC never have uniquely-dirty SSD pages, so for them this is
// just a cache rebuild — the paper's §2 durability argument, exercised.
//
// The WAL protocol guarantees the redo records exist: a page reaches the SSD
// only after the log is forced through its LSN, and checkpoints (sharp via
// FlushDirty, fuzzy via MinDirtyLSN) never truncate records still needed by
// a dirty SSD page.
func (e *Engine) RecoverSSDLoss(p *sim.Proc) error {
	lost := e.mgr.DirtyPageIDs()
	e.mgr.StopCleaner()
	e.mgr.StopScrubber()
	e.stats.SSDLosses++
	if fd, ok := e.ssdDev.(*fault.Device); ok {
		fd.Replace()
	}
	e.mgr = e.newManager()
	e.mgr.StartCleaner()
	if !e.checkpointStop {
		e.mgr.StartScrubber()
	}
	if len(lost) == 0 {
		return nil
	}
	need := make(map[page.ID]bool, len(lost))
	for _, pid := range lost {
		need[pid] = true
	}
	redo := make(map[page.ID][]wal.Record, len(lost))
	for _, rec := range e.log.Durable() {
		if rec.Type == wal.TypeUpdate && need[rec.Page] {
			redo[rec.Page] = append(redo[rec.Page], rec)
		}
	}
	for _, pid := range lost {
		// Get serves pid from the pool if resident, else from disk (the new
		// SSD is empty) — either way f.Pg.LSN tells which records to apply.
		f, err := e.Get(p, pid)
		if err != nil {
			return err
		}
		for _, rec := range redo[pid] {
			if rec.LSN <= f.Pg.LSN {
				continue
			}
			r := rec
			e.pool.MutateFrame(f, func(payload []byte) { copy(payload, r.Payload) })
			f.Pg.LSN = rec.LSN
			e.stats.SSDLossRedo++
		}
		if !f.Dirty {
			// The disk copy is stale (the page was uniquely dirty), so the
			// rebuilt frame must flush eventually. RecLSN is the oldest
			// durable record for the page — possibly older than the oldest
			// update actually missing from disk, which only makes fuzzy
			// checkpoints keep a little extra log, never lose one.
			f.Dirty = true
			if recs := redo[pid]; len(recs) > 0 {
				f.RecLSN = recs[0].LSN
			} else {
				f.RecLSN = f.Pg.LSN
			}
		}
	}
	return nil
}

// Recover restarts the engine after a Crash: redo every durable update
// record newer than the last checkpoint's start LSN against the disk
// image. Pages touched by redo are left dirty in the pool, exactly as a
// redo pass leaves them. The time Recover charges is the paper's "restart
// time".
func (e *Engine) Recover(p *sim.Proc) error {
	from := uint64(0)
	if cp, ok := e.log.LastCheckpoint(); ok {
		from = cp.StartLSN
		// Warm restart (§6): rebuild the SSD cache metadata from the
		// buffer table persisted in the checkpoint record. The device
		// contents survived the crash; redo below invalidates any entry
		// it supersedes, and the WAL protocol guarantees no other entry
		// can be stale.
		if e.cfg.WarmRestart && len(cp.Payload) > 0 {
			if err := e.mgr.RestoreTable(cp.Payload); err != nil {
				return err
			}
		}
	}
	for _, rec := range e.log.Durable() {
		if rec.Type != wal.TypeUpdate || rec.LSN <= from {
			continue
		}
		f, err := e.Get(p, rec.Page)
		if err != nil {
			return err
		}
		if f.Pg.LSN >= rec.LSN {
			e.stats.RedoSkipped++
			continue // the disk already has this update or a newer one
		}
		if !f.Dirty {
			f.Dirty = true
			f.RecLSN = rec.LSN
			// Dirtying a page invalidates its SSD copy, during redo as in
			// forward processing — a stale clean copy admitted earlier in
			// this same redo pass must not survive.
			e.mgr.Invalidate(rec.Page)
		}
		r := rec
		e.pool.MutateFrame(f, func(payload []byte) { copy(payload, r.Payload) })
		f.Pg.LSN = rec.LSN
		e.stats.RedoApplied++
	}
	e.crashed = false
	e.mgr.StartCleaner()
	if !e.checkpointStop {
		e.mgr.StartScrubber()
	}
	if e.cfg.CheckpointInterval > 0 && !e.checkpointStop {
		e.startCheckpointer()
	}
	return nil
}
