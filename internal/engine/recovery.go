package engine

import (
	"turbobp/internal/sim"
	"turbobp/internal/wal"
)

// Crash simulates a power failure: the memory buffer pool and all
// non-durable log records vanish. The SSD's contents physically survive
// but — as in the paper, where no design leverages the SSD across restarts
// (§6) — the SSD buffer pool file is recreated at startup, so the manager
// is rebuilt empty. Only the disks and the durable log carry state across.
func (e *Engine) Crash() {
	e.crashed = true
	e.cpGen++ // retire any running checkpointer
	e.pool.Reset()
	e.log.Crash()
	e.mgr.StopCleaner()
	e.mgr = e.newManager()
}

// Recover restarts the engine after a Crash: redo every durable update
// record newer than the last checkpoint's start LSN against the disk
// image. Pages touched by redo are left dirty in the pool, exactly as a
// redo pass leaves them. The time Recover charges is the paper's "restart
// time".
func (e *Engine) Recover(p *sim.Proc) error {
	from := uint64(0)
	if cp, ok := e.log.LastCheckpoint(); ok {
		from = cp.StartLSN
		// Warm restart (§6): rebuild the SSD cache metadata from the
		// buffer table persisted in the checkpoint record. The device
		// contents survived the crash; redo below invalidates any entry
		// it supersedes, and the WAL protocol guarantees no other entry
		// can be stale.
		if e.cfg.WarmRestart && len(cp.Payload) > 0 {
			if err := e.mgr.RestoreTable(cp.Payload); err != nil {
				return err
			}
		}
	}
	for _, rec := range e.log.Durable() {
		if rec.Type != wal.TypeUpdate || rec.LSN <= from {
			continue
		}
		f, err := e.Get(p, rec.Page)
		if err != nil {
			return err
		}
		if f.Pg.LSN >= rec.LSN {
			e.stats.RedoSkipped++
			continue // the disk already has this update or a newer one
		}
		if !f.Dirty {
			f.Dirty = true
			f.RecLSN = rec.LSN
			// Dirtying a page invalidates its SSD copy, during redo as in
			// forward processing — a stale clean copy admitted earlier in
			// this same redo pass must not survive.
			e.mgr.Invalidate(rec.Page)
		}
		copy(f.Pg.Payload, rec.Payload)
		f.Pg.LSN = rec.LSN
		e.stats.RedoApplied++
	}
	e.crashed = false
	e.mgr.StartCleaner()
	if e.cfg.CheckpointInterval > 0 && !e.checkpointStop {
		e.startCheckpointer()
	}
	return nil
}
