package engine

import (
	"turbobp/internal/bufpool"
	"turbobp/internal/page"
	"turbobp/internal/sim"
)

// Cross-shard service entry points. Under the sharded kernel each engine
// owns one page range; a transaction on another shard that touches a page
// here arrives as a continuation message and is served by one of these.
// The remote branch of a write runs as its own local mini-transaction —
// update plus commit — so the WAL protocol (log force before page write)
// holds per shard without a cross-shard two-phase commit; the originating
// shard treats the reply as the branch's commit acknowledgement. pid is in
// this engine's local page space (the router translates).

// RemoteGetTask serves a page read on behalf of another shard, then runs k.
func (e *Engine) RemoteGetTask(t *sim.Task, pid page.ID, k func(error)) {
	e.stats.RemoteReads++
	e.GetTask(t, pid, func(_ *bufpool.Frame, err error) { k(err) })
}

// RemoteUpdateTask serves a page write on behalf of another shard as a
// local single-update transaction, then runs k after the commit is
// durable.
func (e *Engine) RemoteUpdateTask(t *sim.Task, pid page.ID, v byte, k func(error)) {
	e.stats.RemoteWrites++
	tx := e.Begin()
	e.UpdateTask(t, tx, pid, func(pl []byte) {
		pl[0] = v
		pl[1]++
	}, func(err error) {
		if err != nil {
			k(err)
			return
		}
		e.CommitTask(t, tx, k)
	})
}

// Add returns the fieldwise sum of s and o; the sharded harness uses it
// to aggregate per-shard engines into cluster totals. A reflection test
// keeps it in sync with the struct.
func (s Stats) Add(o Stats) Stats {
	s.Reads += o.Reads
	s.Updates += o.Updates
	s.PoolHits += o.PoolHits
	s.PoolMisses += o.PoolMisses
	s.Commits += o.Commits
	s.Evictions += o.Evictions
	s.DirtyEvicts += o.DirtyEvicts
	s.Checkpoints += o.Checkpoints
	s.ScanPages += o.ScanPages
	s.RedoApplied += o.RedoApplied
	s.RedoSkipped += o.RedoSkipped
	s.SSDLosses += o.SSDLosses
	s.SSDLossRedo += o.SSDLossRedo
	s.DiskCorruptions += o.DiskCorruptions
	s.DiskRepairsSSD += o.DiskRepairsSSD
	s.DiskRepairsWAL += o.DiskRepairsWAL
	s.CorruptRedo += o.CorruptRedo
	s.DiskReadRetries += o.DiskReadRetries
	s.DiskWriteRetries += o.DiskWriteRetries
	s.TruthSeqLabelSeq += o.TruthSeqLabelSeq
	s.TruthSeqLabelRand += o.TruthSeqLabelRand
	s.TruthRandLabelSeq += o.TruthRandLabelSeq
	s.TruthRandLabelRand += o.TruthRandLabelRand
	s.RemoteReads += o.RemoteReads
	s.RemoteWrites += o.RemoteWrites
	s.PoolGhostHits += o.PoolGhostHits
	s.PoolSplitPos += o.PoolSplitPos
	s.PoolCleanFirst += o.PoolCleanFirst
	s.PoolAdmitRej += o.PoolAdmitRej
	return s
}
