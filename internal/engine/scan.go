package engine

import (
	"errors"
	"fmt"
	"time"

	"turbobp/internal/bufpool"
	"turbobp/internal/device"
	"turbobp/internal/page"
	"turbobp/internal/sim"
	"turbobp/internal/ssd"
)

// Scan reads n consecutive pages starting at start, the way a table scan
// would: the first ReadAheadRamp pages are fetched individually (the
// read-ahead mechanism has not triggered yet), after which pages arrive in
// read-ahead batches of up to ReadAhead pages, each batch issued as one
// multi-page disk request with SSD trimming (§3.3.3).
func (e *Engine) Scan(p *sim.Proc, start page.ID, n int) error {
	if n < 0 {
		return fmt.Errorf("%w: negative scan length %d", ErrPageRange, n)
	}
	if n == 0 {
		return nil
	}
	if err := e.checkPage(start); err != nil {
		return err
	}
	if err := e.checkPage(start + page.ID(n) - 1); err != nil {
		return err
	}
	pid := start
	remaining := n
	ramp := e.cfg.ReadAheadRamp
	for remaining > 0 && ramp > 0 {
		if _, err := e.scanPoint(p, pid); err != nil {
			return err
		}
		pid++
		remaining--
		ramp--
	}
	for remaining > 0 {
		batch := e.cfg.ReadAhead
		if batch > remaining {
			batch = remaining
		}
		if err := e.readRun(p, pid, batch); err != nil {
			return err
		}
		pid += page.ID(batch)
		remaining -= batch
	}
	e.stats.ScanPages += int64(n)
	return nil
}

// scanPoint reads one page of a scan before read-ahead has triggered. It is
// a normal random-looking fetch except it is counted as scan work.
func (e *Engine) scanPoint(p *sim.Proc, pid page.ID) (*bufpool.Frame, error) {
	e.chargeCPU(p, e.cfg.CPUPerAccess/8)
	e.stats.Reads++
	if f := e.pool.Lookup(pid, e.env.Now()); f != nil {
		e.stats.PoolHits++
		return f, nil
	}
	return e.fetch(p, pid, false, true)
}

// readRun implements the multi-page I/O optimization: a read-ahead batch of
// count pages from pid. Pages already resident are served from memory.
// Leading and trailing pages whose copies sit in the SSD are trimmed from
// the disk request and read from the SSD; pages in the middle stay in the
// single disk request, except that middle pages with *newer* SSD versions
// are re-read from the SSD afterwards and the stale disk versions dropped.
func (e *Engine) readRun(p *sim.Proc, pid page.ID, count int) error {
	e.chargeCPU(p, e.cfg.CPUPerAccess/8*time.Duration(count))
	// Wait out in-flight dirty evictions of any page in the run: until a
	// writeback lands, the disk holds a stale image and the SSD mapping is
	// unpublished, so both the residency snapshot below and the batch disk
	// read would see the stale state (see Engine.evicting). Re-scan from the
	// start after every wait — a new eviction may start while parked.
	for {
		settled := true
		for i := 0; i < count; i++ {
			if sig := e.evicting[pid+page.ID(i)]; sig != nil {
				sig.Wait(p)
				settled = false
				break
			}
		}
		if settled {
			break
		}
	}
	type slot struct {
		pid     page.ID
		inPool  bool
		inSSD   bool
		dirtera bool // SSD version newer than disk
	}
	slots := make([]slot, count)
	for i := range slots {
		id := pid + page.ID(i)
		slots[i] = slot{
			pid:     id,
			inPool:  e.pool.Peek(id) != nil,
			inSSD:   e.mgr.Contains(id),
			dirtera: e.mgr.IsDirty(id),
		}
	}

	// A slot is "served elsewhere" if resident; leading/trailing SSD pages
	// are trimmed from the disk request.
	lo, hi := 0, count // [lo,hi) remains for the disk request
	for lo < count && (slots[lo].inPool || slots[lo].inSSD) {
		lo++
	}
	for hi > lo && (slots[hi-1].inPool || slots[hi-1].inSSD) {
		hi--
	}

	// Serve the trimmed/resident edges and the middle's resident pages.
	for i := range slots {
		s := &slots[i]
		if lo <= i && i < hi {
			continue // part of the disk run
		}
		if s.inPool {
			e.stats.Reads++
			e.stats.PoolHits++
			e.pool.Lookup(s.pid, e.env.Now())
			continue
		}
		// Trimmed edge: fetch through the normal path (SSD hit expected).
		if _, err := e.fetch(p, s.pid, true, true); err != nil {
			return err
		}
		e.stats.Reads++
	}

	if lo >= hi {
		return nil
	}

	// Claim frames for the whole disk run first (evictions may do I/O),
	// skipping pages that are resident mid-run.
	runLen := hi - lo
	frames := make([]*bufpool.Frame, runLen)
	for i := 0; i < runLen; i++ {
		s := slots[lo+i]
		if s.inPool || e.pool.Peek(s.pid) != nil {
			continue // resident middle page: disk copy will be discarded
		}
		f, err := e.claimFrame(p)
		if err != nil {
			for _, g := range frames {
				if g != nil {
					e.pool.Release(g)
				}
			}
			return err
		}
		frames[i] = f
	}

	// One multi-page disk request for the whole run, into pooled buffers.
	bufs := e.getVec(runLen)
	defer e.putVec(bufs) // decodeInto copies, so nothing aliases them after
	if err := e.dbRead(p, device.PageNum(slots[lo].pid), bufs); err != nil {
		for _, f := range frames {
			if f != nil {
				e.pool.Release(f)
			}
		}
		return err
	}

	for i := 0; i < runLen; i++ {
		s := slots[lo+i]
		e.stats.Reads++
		f := frames[i]
		if f == nil {
			// Mid-run resident page: the stale disk bytes are discarded
			// immediately (§3.3.3); the resident copy wins.
			e.stats.PoolHits++
			continue
		}
		e.stats.PoolMisses++
		seqLabel := e.classifier.label(s.pid, true)
		e.mgr.TACNoteMiss(s.pid, !seqLabel)
		if e.evicting[s.pid] != nil {
			// The page went resident and back into a dirty eviction while the
			// run's claims and disk read were in flight: the image just read
			// predates that writeback. Drop it; the next access of the page
			// re-fetches through the eviction guard.
			e.pool.Release(f)
			continue
		}
		if err := e.decodeInto(s.pid, bufs[i], f); err != nil {
			var ce *page.ChecksumError
			if errors.As(err, &ce) {
				// A rotten disk page in the middle of the run: repair it in
				// place — this is where an SSD-resident copy naturally heals
				// HDD corruption — and keep scanning.
				err = e.repairDiskPage(p, s.pid, f, err)
			}
			if err != nil {
				e.pool.Release(f)
				return err
			}
		}
		f.Seq = seqLabel
		e.noteClassification(true, seqLabel)
		e.classifier.noteDiskRead(s.pid)
		got, inserted := e.pool.Insert(f, e.env.Now())
		if !inserted {
			continue
		}
		if s.dirtera || e.mgr.IsDirty(s.pid) {
			// The SSD holds a newer version (LC) — possibly admitted by an
			// eviction that completed while the run was in flight: re-read it
			// and replace the stale disk image.
			hit, err := e.mgr.Read(p, s.pid, &got.Pg)
			if err != nil {
				if errors.Is(err, device.ErrLost) {
					// Recovery redoes the page's WAL records into the
					// frame just inserted, so the run can continue.
					if rerr := e.RecoverSSDLoss(p); rerr != nil {
						return rerr
					}
					continue
				}
				var dce *ssd.DirtyCorruptError
				if errors.As(err, &dce) {
					// The dirty SSD copy is corrupt; its frame is condemned.
					// Redo the page from the WAL over the stale disk image
					// already resident, then continue the run.
					if rerr := e.repairDirtySSD(p, s.pid); rerr != nil {
						return rerr
					}
					continue
				}
				return err
			}
			_ = hit // if the copy vanished meanwhile, the disk version stands
		} else if e.cfg.Design == ssd.TAC {
			e.mgr.TACOnDiskRead(&got.Pg, !seqLabel, e.stillCleanFn(s.pid, got))
		}
	}
	return nil
}
