package engine

import (
	"reflect"
	"testing"
)

// TestStatsAddCoversAllFields fills every field with a distinct value via
// reflection and checks Add sums each one, so a counter added to Stats
// without a matching line in Add fails here instead of silently vanishing
// from sharded aggregates.
func TestStatsAddCoversAllFields(t *testing.T) {
	var a, b Stats
	av, bv := reflect.ValueOf(&a).Elem(), reflect.ValueOf(&b).Elem()
	for i := 0; i < av.NumField(); i++ {
		av.Field(i).SetInt(int64(i + 1))
		bv.Field(i).SetInt(int64(10 * (i + 1)))
	}
	sum := reflect.ValueOf(a.Add(b))
	for i := 0; i < sum.NumField(); i++ {
		if got, want := sum.Field(i).Int(), int64(11*(i+1)); got != want {
			t.Errorf("Stats.Add drops field %s: got %d, want %d",
				sum.Type().Field(i).Name, got, want)
		}
	}
}
