// Engine-side implementations of storage.Store, so the access-method
// packages (btree, heapfile) can run unmodified inside a discrete-event
// experiment. ProcStore drives the goroutine-backed Proc form; TaskStore
// drives the continuation-based Task form through a Signal bridge. Both
// present the same synchronous copy-in/copy-out interface the access
// methods expect, which is what lets traversal-driven page access
// patterns emerge inside the simulated buffer pool.

package engine

import (
	"turbobp/internal/bufpool"
	"turbobp/internal/page"
	"turbobp/internal/sim"
)

// ProcStore adapts an Engine to storage.Store for code running inside a
// simulated process (Proc form). Updates accumulate in one engine
// transaction that Commit seals; the next Update opens a fresh one.
// A ProcStore must only be used from its own Proc, never concurrently.
type ProcStore struct {
	e     *Engine
	p     *sim.Proc
	tx    uint64 // open transaction id; 0 = none
	alloc *int64 // shared allocation watermark (page id of next free page)
}

// NewProcStore returns a Store over e driven from process p. alloc is the
// allocation watermark, shared so that several Stores (and the harness)
// agree on the allocated prefix of the page space.
func NewProcStore(e *Engine, p *sim.Proc, alloc *int64) *ProcStore {
	return &ProcStore{e: e, p: p, alloc: alloc}
}

// PageSize returns the engine's page payload size.
func (s *ProcStore) PageSize() int { return s.e.cfg.PayloadSize }

// AllocPage advances the shared watermark and returns the new page id.
func (s *ProcStore) AllocPage() (int64, error) {
	if err := s.e.checkPage(page.ID(*s.alloc)); err != nil {
		return 0, err
	}
	pid := *s.alloc
	*s.alloc++
	return pid, nil
}

// Read copies page pid's payload into buf through the buffer pool.
func (s *ProcStore) Read(pid int64, buf []byte) (int, error) {
	f, err := s.e.Get(s.p, page.ID(pid))
	if err != nil {
		return 0, err
	}
	// The frame is only pinned until the next yield; copy before returning.
	return copy(buf, f.Pg.Payload), nil
}

// Update applies fn to page pid inside the current transaction, opening
// one if none is pending.
func (s *ProcStore) Update(pid int64, fn func(payload []byte)) error {
	if s.tx == 0 {
		s.tx = s.e.Begin()
	}
	return s.e.Update(s.p, s.tx, page.ID(pid), fn)
}

// Commit seals the pending transaction (WAL force). With no pending
// updates it is a no-op.
func (s *ProcStore) Commit() error {
	if s.tx == 0 {
		return nil
	}
	tx := s.tx
	s.tx = 0
	return s.e.Commit(s.p, tx)
}

// TaskStore adapts an Engine to storage.Store for the run-to-completion
// Task form. The calling Proc parks on a Signal while each operation runs
// as a spawned task whose continuation records the result and broadcasts;
// the single-threaded kernel makes the handoff race-free (Spawn schedules
// the task event, Wait parks the proc before it dispatches). This keeps
// the access-method code synchronous while the engine work — pool
// lookups, SSD admission, WAL appends — executes through the same pooled
// continuation chains as the Task-form OLTP workers.
type TaskStore struct {
	e     *Engine
	p     *sim.Proc
	sig   *sim.Signal
	tx    uint64
	alloc *int64
}

// NewTaskStore returns a Store over e whose operations run in Task form,
// driven (and awaited) from process p. alloc is the shared allocation
// watermark, as for NewProcStore.
func NewTaskStore(e *Engine, p *sim.Proc, alloc *int64) *TaskStore {
	return &TaskStore{e: e, p: p, sig: sim.NewSignal(e.env), alloc: alloc}
}

// PageSize returns the engine's page payload size.
func (s *TaskStore) PageSize() int { return s.e.cfg.PayloadSize }

// AllocPage advances the shared watermark and returns the new page id.
func (s *TaskStore) AllocPage() (int64, error) {
	if err := s.e.checkPage(page.ID(*s.alloc)); err != nil {
		return 0, err
	}
	pid := *s.alloc
	*s.alloc++
	return pid, nil
}

// Read copies page pid's payload into buf via a spawned GetTask.
func (s *TaskStore) Read(pid int64, buf []byte) (int, error) {
	var n int
	var rerr error
	s.e.env.Spawn("store-get", func(t *sim.Task) {
		s.e.GetTask(t, page.ID(pid), func(f *bufpool.Frame, err error) {
			if err == nil {
				// Copy inside the continuation: the frame is unpinned the
				// moment the task chain ends.
				n = copy(buf, f.Pg.Payload)
			}
			rerr = err
			s.sig.Broadcast()
		})
	})
	s.sig.Wait(s.p)
	return n, rerr
}

// Update applies fn to page pid via a spawned UpdateTask inside the
// current transaction, opening one if none is pending.
func (s *TaskStore) Update(pid int64, fn func(payload []byte)) error {
	if s.tx == 0 {
		s.tx = s.e.Begin()
	}
	var rerr error
	s.e.env.Spawn("store-update", func(t *sim.Task) {
		s.e.UpdateTask(t, s.tx, page.ID(pid), fn, func(err error) {
			rerr = err
			s.sig.Broadcast()
		})
	})
	s.sig.Wait(s.p)
	return rerr
}

// Commit seals the pending transaction via a spawned CommitTask. With no
// pending updates it is a no-op.
func (s *TaskStore) Commit() error {
	if s.tx == 0 {
		return nil
	}
	tx := s.tx
	s.tx = 0
	var rerr error
	s.e.env.Spawn("store-commit", func(t *sim.Task) {
		s.e.CommitTask(t, tx, func(err error) {
			rerr = err
			s.sig.Broadcast()
		})
	})
	s.sig.Wait(s.p)
	return rerr
}
