package engine

import (
	"errors"
	"time"

	"turbobp/internal/bufpool"
	"turbobp/internal/device"
	"turbobp/internal/fault"
	"turbobp/internal/page"
	"turbobp/internal/sim"
	"turbobp/internal/ssd"
	"turbobp/internal/wal"
)

// This file holds the run-to-completion twins of the engine's transaction
// path: GetTask/UpdateTask/CommitTask mirror Get/Update/Commit operation for
// operation, expressing device waits as continuations instead of parking a
// goroutine. The synchronous tails (decode, frame install, classification,
// stats) are shared helpers called by both forms, so either form drives the
// simulation through the identical event sequence.
//
// Continuation state lives in a per-access txOp taken from a free list, with
// method continuations bound once per struct, so the steady-state access
// path allocates no closures.
//
// SSD-loss recovery is the one place a task path re-enters the blocking
// world: RecoverSSDLoss replays the WAL with multi-step blocking I/O, so the
// task spawns a recovery process and continues from it. The golden
// experiments never lose an SSD; only fault runs take that bridge.

// txOp carries one Get/Update access (or one Commit) from CPU charge through
// frame claim, eviction, SSD probe and disk read to the caller's
// continuation.
type txOp struct {
	e   *Engine
	t   *sim.Task
	pid page.ID
	t0  time.Duration

	ssdHitsBefore int64
	viaReadAhead  bool
	truthScan     bool
	seqLabel      bool

	isUpdate bool
	tx       uint64
	mutate   func(payload []byte)
	gk       func(*bufpool.Frame, error) // Get completion
	uk       func(error)                 // Update completion
	ck       func(error)                 // Commit completion

	v         *bufpool.Frame // eviction victim
	dirty     bool           // victim was dirty
	f         *bufpool.Frame // claimed frame
	bufs      [][]byte       // in-flight disk read vector
	dbAttempt int            // disk read attempt number (retry policy)

	evictSig *sim.Signal // in-flight dirty eviction published in e.evicting
	evictPid page.ID     // the victim page the signal is registered under

	onCPUAcquired  func()            // bound: CPU resource granted
	onCPUDone      func()            // bound: CPU slice elapsed
	onEvictFlushed func()            // bound: WAL forced before eviction
	onEvicted      func(error)       // bound: manager routed the victim
	onSSDRead      func(bool, error) // bound: SSD probe finished
	onDbRead       func(error)       // bound: disk read finished
	onDbRetry      func()            // bound: backoff elapsed, re-issue the read
	onCommitFlush  func()            // bound: commit's WAL flush finished
	onEvictWaited  func()            // bound: another access's eviction settled
}

func (e *Engine) getOp() *txOp {
	if n := len(e.opFree); n > 0 {
		o := e.opFree[n-1]
		e.opFree[n-1] = nil
		e.opFree = e.opFree[:n-1]
		return o
	}
	o := &txOp{e: e}
	o.onCPUAcquired = o.cpuAcquired
	o.onCPUDone = o.cpuDone
	o.onEvictFlushed = o.evict
	o.onEvicted = o.evicted
	o.onSSDRead = o.ssdRead
	o.onDbRead = o.dbRead
	o.onDbRetry = o.dbReissue
	o.onCommitFlush = o.commitFlushed
	o.onEvictWaited = o.evictWaited
	return o
}

// recycle returns the op to the free list; callers grab the continuation
// they are about to invoke first, since the next access may reuse the op
// immediately.
func (o *txOp) recycle() {
	e := o.e
	o.t, o.mutate, o.gk, o.uk, o.ck = nil, nil, nil, nil, nil
	o.v, o.f, o.bufs = nil, nil, nil
	e.opFree = append(e.opFree, o)
}

// GetTask is the run-to-completion twin of Get.
func (e *Engine) GetTask(t *sim.Task, pid page.ID, k func(*bufpool.Frame, error)) {
	if err := e.checkPage(pid); err != nil {
		k(nil, err)
		return
	}
	o := e.getOp()
	o.t, o.pid, o.gk = t, pid, k
	o.isUpdate = false
	o.viaReadAhead, o.truthScan = false, false
	o.start()
}

// UpdateTask is the run-to-completion twin of Update.
func (e *Engine) UpdateTask(t *sim.Task, tx uint64, pid page.ID, mutate func(payload []byte), k func(error)) {
	if err := e.checkPage(pid); err != nil {
		k(err)
		return
	}
	o := e.getOp()
	o.t, o.pid, o.uk = t, pid, k
	o.isUpdate = true
	o.tx, o.mutate = tx, mutate
	o.viaReadAhead, o.truthScan = false, false
	o.start()
}

// CommitTask is the run-to-completion twin of Commit.
func (e *Engine) CommitTask(t *sim.Task, tx uint64, k func(error)) {
	if e.cfg.Faults.At(fault.SitePreWALFlush) {
		k(fault.ErrCrashPoint)
		return
	}
	if e.cfg.CommitRecords {
		e.log.Append(wal.Record{Type: wal.TypeCommit, TxID: tx})
	}
	o := e.getOp()
	o.t, o.ck = t, k
	o.t0 = e.env.Now()
	e.log.FlushTask(t, e.log.NextLSN()-1, o.onCommitFlush)
}

func (o *txOp) commitFlushed() {
	e := o.e
	ck, t0 := o.ck, o.t0
	o.recycle()
	if e.cfg.Faults.At(fault.SitePostWALFlush) {
		ck(fault.ErrCrashPoint)
		return
	}
	e.lat.Commit.Observe(e.env.Now() - t0)
	e.stats.Commits++
	ck(nil)
}

// start charges CPU for the access, then resolves it against the pool.
func (o *txOp) start() {
	e := o.e
	o.t0 = e.env.Now()
	if e.cfg.CPUPerAccess <= 0 {
		o.cpuCharged()
		return
	}
	e.cpu.AcquireFunc(o.onCPUAcquired)
}

func (o *txOp) cpuAcquired() { o.t.Sleep(o.e.cfg.CPUPerAccess, o.onCPUDone) }

func (o *txOp) cpuDone() {
	o.e.cpu.Release()
	o.cpuCharged()
}

func (o *txOp) cpuCharged() {
	e := o.e
	e.stats.Reads++
	if f := e.pool.Lookup(o.pid, e.env.Now()); f != nil {
		e.stats.PoolHits++
		e.lat.PoolHit.Observe(e.env.Now() - o.t0)
		o.finish(f, nil)
		return
	}
	o.ssdHitsBefore = e.mgr.Stats().Hits
	o.fetch()
}

// fetch is the run-to-completion twin of the blocking fetch.
func (o *txOp) fetch() {
	if sig := o.e.evicting[o.pid]; sig != nil {
		// The page's dirty eviction is mid-writeback: reading the device now
		// would return a stale image (see Engine.evicting). Continue once the
		// writeback settles.
		sig.WaitFunc(o.onEvictWaited)
		return
	}
	o.fetchMiss()
}

// evictWaited resumes a fetch that waited out an in-flight dirty eviction
// of its page: re-wait if another eviction started, serve from the pool if
// a faster access re-installed the page, else miss normally.
func (o *txOp) evictWaited() {
	e := o.e
	if sig := e.evicting[o.pid]; sig != nil {
		sig.WaitFunc(o.onEvictWaited)
		return
	}
	if g := e.pool.Lookup(o.pid, e.env.Now()); g != nil {
		e.stats.PoolHits++
		o.finishFetch(g, nil)
		return
	}
	o.fetchMiss()
}

// fetchMiss is the body of fetch once no eviction of the page is in flight.
func (o *txOp) fetchMiss() {
	e := o.e
	e.stats.PoolMisses++
	o.seqLabel = e.classifier.label(o.pid, o.viaReadAhead)
	e.mgr.TACNoteMiss(o.pid, !o.seqLabel)
	o.claim()
}

// claim is the run-to-completion twin of claimFrame.
func (o *txOp) claim() {
	e := o.e
	if f := e.pool.TakeFree(); f != nil {
		o.claimed(f, nil)
		return
	}
	v := e.pool.PopVictim()
	if v == nil {
		o.claimed(nil, ErrNoFrames)
		return
	}
	e.stats.Evictions++
	o.v, o.dirty = v, v.Dirty
	if o.dirty {
		e.stats.DirtyEvicts++
		// Until the writeback lands the page has no durable up-to-date copy
		// anywhere; publish the eviction so concurrent fetches wait instead
		// of reading a stale device image (see Engine.evicting). evictSettled
		// resolves it on every completion path.
		o.evictSig = sim.NewSignal(e.env)
		o.evictPid = v.Pg.ID
		e.evicting[o.evictPid] = o.evictSig
		// WAL protocol: force the log before the page can be written to the
		// SSD or the disk (§2.4).
		e.log.FlushTask(o.t, v.Pg.LSN, o.onEvictFlushed)
		return
	}
	o.evict()
}

// evictSettled resolves the in-flight-eviction registration made by claim:
// the victim's writeback reached the device (or definitively failed and the
// victim was released), so waiting fetches can re-resolve the page.
func (o *txOp) evictSettled() {
	if o.evictSig == nil {
		return
	}
	delete(o.e.evicting, o.evictPid)
	o.evictSig.Broadcast()
	o.evictSig = nil
}

func (o *txOp) evict() {
	o.e.mgr.OnEvictTask(o.t, &o.v.Pg, o.dirty, !o.v.Seq, o.onEvicted)
}

func (o *txOp) evicted(err error) {
	e := o.e
	if err != nil && errors.Is(err, device.ErrLost) {
		// The SSD died under the eviction: recover on a process (WAL replay
		// blocks), then route the victim through the new manager — for a
		// dirty page this usually becomes a plain disk write, never a lost
		// update (the log was forced above). Fault-only path; the closures
		// here never allocate in golden runs.
		e.env.Go("ssd-recovery", func(p *sim.Proc) {
			if rerr := e.RecoverSSDLoss(p); rerr != nil {
				o.evictSettled()
				e.pool.Release(o.v)
				o.v = nil
				o.claimed(nil, rerr)
				return
			}
			o.claimFinish(e.mgr.OnEvict(p, &o.v.Pg, o.dirty, !o.v.Seq))
		})
		return
	}
	o.claimFinish(err)
}

func (o *txOp) claimFinish(err error) {
	e := o.e
	o.evictSettled()
	v := o.v
	o.v = nil
	if err != nil {
		// The victim is already out of the table; without this it would
		// leak — neither resident nor free — shrinking the pool.
		e.pool.Release(v)
		o.claimed(nil, err)
		return
	}
	v.Dirty = false
	v.Seq = false
	v.RecLSN = 0
	o.claimed(v, nil)
}

func (o *txOp) claimed(f *bufpool.Frame, err error) {
	if err != nil {
		o.finishFetch(nil, err)
		return
	}
	o.f = f
	f.Pg.ID = o.pid
	o.e.mgr.ReadTask(o.t, o.pid, &f.Pg, o.onSSDRead)
}

func (o *txOp) ssdRead(hit bool, err error) {
	e := o.e
	if err != nil {
		e.pool.Release(o.f)
		o.f = nil
		if errors.Is(err, device.ErrLost) {
			// The SSD died. Recovery replays the WAL with blocking I/O, so
			// bridge to a process, then re-enter the task path: recovery may
			// have brought pid in already. Fault-only path.
			e.env.Go("ssd-recovery", func(p *sim.Proc) {
				if rerr := e.RecoverSSDLoss(p); rerr != nil {
					o.finishFetch(nil, rerr)
					return
				}
				if g := e.pool.Lookup(o.pid, e.env.Now()); g != nil {
					o.finishFetch(g, nil)
					return
				}
				e.stats.PoolMisses-- // the retry counts the same miss again
				o.fetch()
			})
			return
		}
		var dce *ssd.DirtyCorruptError
		if errors.As(err, &dce) {
			// The page's only up-to-date copy failed verification; its
			// frame is condemned. Rebuild it from the WAL on a process
			// (blocking I/O), then serve from the pool. Fault-only path.
			e.env.Go("ssd-corrupt-repair", func(p *sim.Proc) {
				if rerr := e.repairDirtySSD(p, dce.PID); rerr != nil {
					o.finishFetch(nil, rerr)
					return
				}
				if g := e.pool.Lookup(o.pid, e.env.Now()); g != nil {
					o.finishFetch(g, nil)
					return
				}
				e.stats.PoolMisses-- // the retry counts the same miss again
				o.fetch()
			})
			return
		}
		o.finishFetch(nil, err)
		return
	}
	if hit {
		f := o.f
		o.f = nil
		f.Seq = false // SSD-cached pages were random by admission
		got, _ := e.pool.Insert(f, e.env.Now())
		o.finishFetch(got, nil)
		return
	}
	// Miss: read from the database disk (the twin of diskReadInto).
	n := e.readSpan(o.pid, o.viaReadAhead)
	o.bufs = e.getVec(n)
	o.dbAttempt = 1
	e.db.ReadTask(o.t, device.PageNum(o.pid), o.bufs, o.onDbRead)
}

func (o *txOp) dbRead(err error) {
	e := o.e
	if err != nil && e.cfg.Retry.Retryable(err, o.dbAttempt) {
		e.stats.DiskReadRetries++
		d := e.cfg.Retry.Delay(o.dbAttempt)
		o.dbAttempt++
		if d > 0 {
			o.t.Sleep(d, o.onDbRetry)
			return
		}
		o.dbReissue()
		return
	}
	if err == nil {
		err = e.installRead(o.pid, o.bufs, o.f)
	}
	e.putVec(o.bufs) // installRead copies, so nothing aliases them after
	o.bufs = nil
	if err != nil {
		var ce *page.ChecksumError
		if errors.As(err, &ce) {
			// Corrupt disk image: the repair ladder reads the SSD and disk
			// with blocking I/O, so bridge to a process. Fault-only path.
			cause := err
			e.env.Go("disk-repair", func(p *sim.Proc) {
				if rerr := e.repairDiskPage(p, o.pid, o.f, cause); rerr != nil {
					e.pool.Release(o.f)
					o.f = nil
					o.finishFetch(nil, rerr)
					return
				}
				o.installed()
			})
			return
		}
		e.pool.Release(o.f)
		o.f = nil
		o.finishFetch(nil, err)
		return
	}
	o.installed()
}

// dbReissue re-issues the in-flight disk read after a retry backoff.
func (o *txOp) dbReissue() {
	o.e.db.ReadTask(o.t, device.PageNum(o.pid), o.bufs, o.onDbRead)
}

// installed finishes a disk-served fetch once frame o.f holds good bytes.
func (o *txOp) installed() {
	e := o.e
	f := o.f
	o.f = nil
	f.Seq = o.seqLabel
	e.noteClassification(o.truthScan, o.seqLabel)
	e.classifier.noteDiskRead(o.pid)
	got, inserted := e.pool.Insert(f, e.env.Now())
	if inserted && e.cfg.Design == ssd.TAC {
		// Gated on the design so the race-check closure (an allocation) is
		// only built when TAC will actually consider the admission.
		e.mgr.TACOnDiskReadTask(&got.Pg, !o.seqLabel, e.stillCleanFn(o.pid, got))
	}
	o.finishFetch(got, nil)
}

// finishFetch attributes the miss latency (SSD hit vs disk read) and hands
// the frame to the access completion.
func (o *txOp) finishFetch(f *bufpool.Frame, err error) {
	e := o.e
	if err == nil {
		if e.mgr.Stats().Hits > o.ssdHitsBefore {
			e.lat.SSDHit.Observe(e.env.Now() - o.t0)
		} else {
			e.lat.DiskRead.Observe(e.env.Now() - o.t0)
		}
	}
	o.finish(f, err)
}

// finish completes the access: Get hands the frame to the caller; Update
// applies the mutation and logs it first.
func (o *txOp) finish(f *bufpool.Frame, err error) {
	e := o.e
	if !o.isUpdate {
		gk := o.gk
		o.recycle()
		gk(f, err)
		return
	}
	if err != nil {
		uk := o.uk
		o.recycle()
		uk(err)
		return
	}
	if !f.Dirty {
		f.Dirty = true
		f.RecLSN = e.log.NextLSN()
		// A clean page in memory being modified invalidates its SSD copy
		// (§2.2).
		e.mgr.Invalidate(o.pid)
	}
	// See Engine.Update: latched readers may copy resident frames in striped
	// mode, so the write goes through the pool's frame latch.
	e.pool.MutateFrame(f, o.mutate)
	// wal.Append copies the payload into log-owned storage, so the frame's
	// buffer can be handed over directly.
	lsn := e.log.Append(wal.Record{
		Type:    wal.TypeUpdate,
		Page:    o.pid,
		TxID:    o.tx,
		Payload: f.Pg.Payload,
	})
	f.Pg.LSN = lsn
	e.stats.Updates++
	uk := o.uk
	o.recycle()
	uk(nil)
}
