package engine

import (
	"bytes"

	"math/rand"
	"testing"

	"turbobp/internal/page"
	"turbobp/internal/sim"
	"turbobp/internal/ssd"
)

// TestWarmRestartRestoresCache verifies the §6 extension: after a
// checkpoint and crash, recovery rebuilds the SSD cache and re-reads hit
// the SSD instead of the disks.
func TestWarmRestartRestoresCache(t *testing.T) {
	cfg := testConfig(ssd.DW)
	cfg.PoolPages = 4
	cfg.WarmRestart = true
	env, e := start(t, cfg)
	defer finish(env, e)
	drive(t, env, e, func(p *sim.Proc) {
		// Populate the SSD with clean random pages.
		for pid := page.ID(0); pid < 20; pid++ {
			e.Get(p, pid)
		}
		if e.SSD().Occupied() == 0 {
			t.Fatal("SSD never filled")
		}
		occupied := e.SSD().Occupied()
		if err := e.Checkpoint(p); err != nil {
			t.Fatal(err)
		}
		e.Crash()
		if err := e.Recover(p); err != nil {
			t.Fatal(err)
		}
		if got := e.SSD().Occupied(); got < occupied {
			t.Errorf("restored SSD has %d pages, checkpoint had %d", got, occupied)
		}
		hitsBefore := e.SSD().Stats().Hits
		e.Get(p, 0)
		if e.SSD().Stats().Hits == hitsBefore {
			t.Error("post-restart read missed the warm SSD cache")
		}
	})
}

// TestColdRestartStartsEmpty pins the default (paper) behaviour: the SSD
// cache is discarded at restart.
func TestColdRestartStartsEmpty(t *testing.T) {
	cfg := testConfig(ssd.DW)
	cfg.PoolPages = 4
	env, e := start(t, cfg)
	defer finish(env, e)
	drive(t, env, e, func(p *sim.Proc) {
		for pid := page.ID(0); pid < 20; pid++ {
			e.Get(p, pid)
		}
		e.Checkpoint(p)
		e.Crash()
		if err := e.Recover(p); err != nil {
			t.Fatal(err)
		}
		if got := e.SSD().Occupied(); got != 0 {
			t.Errorf("cold restart restored %d pages", got)
		}
	})
}

// TestWarmRestartStaleEntryPurgedByRedo builds the adversarial case: a
// page is checkpointed into the SSD table, then updated and flushed to
// disk before the crash. The restored SSD entry is stale; redo must
// supersede it with the after-image and invalidate the SSD copy.
func TestWarmRestartStaleEntryPurgedByRedo(t *testing.T) {
	cfg := testConfig(ssd.DW)
	cfg.PoolPages = 4
	cfg.WarmRestart = true
	env, e := start(t, cfg)
	defer finish(env, e)
	drive(t, env, e, func(p *sim.Proc) {
		// Page 1 enters the SSD clean (version A), checkpoint records it.
		tx := e.Begin()
		e.Update(p, tx, 1, func(pl []byte) { pl[0] = 0xAA })
		e.Commit(p, tx)
		for pid := page.ID(10); pid < 20; pid++ {
			e.Get(p, pid)
		}
		e.Get(p, 1) // reload clean
		for pid := page.ID(20); pid < 30; pid++ {
			e.Get(p, pid)
		}
		if !e.SSD().Contains(1) {
			t.Fatal("page 1 not cached before checkpoint")
		}
		if err := e.Checkpoint(p); err != nil {
			t.Fatal(err)
		}
		// Now update it past the checkpoint (version B) and force both
		// the log and the disk copy.
		tx2 := e.Begin()
		e.Update(p, tx2, 1, func(pl []byte) { pl[0] = 0xBB })
		e.Commit(p, tx2)
		for pid := page.ID(30); pid < 40; pid++ {
			e.Get(p, pid) // evicts page 1 (dirty) to disk
		}
		e.Crash()
		if err := e.Recover(p); err != nil {
			t.Fatal(err)
		}
		f, err := e.Get(p, 1)
		if err != nil {
			t.Fatal(err)
		}
		if f.Pg.Payload[0] != 0xBB {
			t.Errorf("read %#x after warm restart, want the post-checkpoint 0xBB", f.Pg.Payload[0])
		}
	})
}

// TestWarmRestartShadowModel repeats the crash-recovery shadow property
// with warm restart enabled across designs.
func TestWarmRestartShadowModel(t *testing.T) {
	for _, design := range []ssd.Design{ssd.CW, ssd.DW, ssd.LC, ssd.TAC} {
		t.Run(design.String(), func(t *testing.T) {
			cfg := testConfig(design)
			cfg.PoolPages = 8
			cfg.SSDFrames = 24
			cfg.DirtyFraction = 0.5
			cfg.WarmRestart = true
			env, e := start(t, cfg)
			defer finish(env, e)
			rng := rand.New(rand.NewSource(11))
			shadow := &shadowHistory{}
			drive(t, env, e, func(p *sim.Proc) {
				for i := 0; i < 250; i++ {
					tx := e.Begin()
					for j := 0; j < 3; j++ {
						pid := page.ID(rng.Intn(80))
						if rng.Intn(2) == 0 {
							v := byte(rng.Intn(256))
							if err := e.Update(p, tx, pid, func(pl []byte) { pl[0] = v; pl[1]++ }); err != nil {
								t.Fatal(err)
							}
							f := e.Pool().Peek(pid)
							shadow.note(f.Pg.LSN, pid, f.Pg.Payload)
						} else if _, err := e.Get(p, pid); err != nil {
							t.Fatal(err)
						}
					}
					e.Commit(p, tx)
					if i%60 == 59 {
						if err := e.Checkpoint(p); err != nil {
							t.Fatal(err)
						}
					}
				}
				durable := e.Log().FlushedLSN()
				e.Crash()
				if err := e.Recover(p); err != nil {
					t.Fatal(err)
				}
				want := shadow.expect(durable, cfg.PayloadSize)
				for pid := page.ID(0); pid < 80; pid++ {
					f, err := e.Get(p, pid)
					if err != nil {
						t.Fatal(err)
					}
					exp, ok := want[pid]
					if !ok {
						exp = make([]byte, cfg.PayloadSize)
					}
					if !bytes.Equal(f.Pg.Payload, exp) {
						t.Errorf("page %d: got % x, want % x", pid, f.Pg.Payload[:4], exp[:4])
					}
				}
			})
		})
	}
}

// TestWarmRestartFasterRampUp is the experiment motivation: after a
// restart, the warm engine serves far more reads from the SSD than the
// cold one.
func TestWarmRestartFasterRampUp(t *testing.T) {
	ssdHitsAfterRestart := func(warm bool) int64 {
		cfg := testConfig(ssd.DW)
		cfg.PoolPages = 8
		cfg.SSDFrames = 128
		cfg.WarmRestart = warm
		env, e := start(t, cfg)
		defer finish(env, e)
		var hits int64
		drive(t, env, e, func(p *sim.Proc) {
			rng := rand.New(rand.NewSource(5))
			for i := 0; i < 600; i++ {
				e.Get(p, page.ID(rng.Intn(200)))
			}
			e.Checkpoint(p)
			e.Crash()
			if err := e.Recover(p); err != nil {
				t.Fatal(err)
			}
			// Measure only the first reads after restart, before a cold
			// cache has had a chance to refill.
			base := e.SSD().Stats().Hits
			for i := 0; i < 80; i++ {
				e.Get(p, page.ID(rng.Intn(200)))
			}
			hits = e.SSD().Stats().Hits - base
		})
		return hits
	}
	cold := ssdHitsAfterRestart(false)
	warm := ssdHitsAfterRestart(true)
	if warm <= cold*2 {
		t.Errorf("warm restart hits = %d, cold = %d; want a large improvement", warm, cold)
	}
}
