package fault

import (
	"fmt"

	"turbobp/internal/device"
	"turbobp/internal/sim"
)

// Device wraps a device.Device with the injector's fault plan for one
// device name. It implements device.Device (and forwards device.Preloader
// when the inner device supports it), consulting the plan before every
// operation:
//
//   - whole-device loss: at the scheduled total-operation count the device
//     dies; every operation from then on returns device.ErrLost until
//     Replace installs a fresh device under the same name,
//   - injected I/O errors: the scheduled Nth read/write fails with
//     ErrInjectedIO (transient: the next operation succeeds),
//   - torn writes: the scheduled write persists only a prefix of the
//     request and reports success.
//
// Operation counters live on the shared plan, so the per-name schedule
// keeps counting across Replace.
type Device struct {
	in    *Injector
	name  string
	plan  *devPlan
	inner device.Device
	lost  bool
}

var _ device.Device = (*Device)(nil)
var _ device.Preloader = (*Device)(nil)

// Inner returns the wrapped device.
func (d *Device) Inner() device.Device { return d.inner }

// Lost reports whether the device has failed for good.
func (d *Device) Lost() bool { return d.lost }

// Replace models swapping in a fresh, healthy device at the same mount
// point after a loss: the lost latch clears and operations flow to the
// inner device again. Prior contents of the inner device are irrelevant —
// a rebuilt SSD manager never reads a frame it has not first written.
func (d *Device) Replace() {
	if d.lost {
		d.in.note("device %s replaced after loss", d.name)
	}
	d.lost = false
}

// checkOp advances the per-name counters and returns this operation's
// index on its side of the schedule plus the injected error, if any. write
// selects the write-side schedule; the returned tear (keepBytes, true)
// applies only to writes.
func (d *Device) checkOp(write bool) (idx, tear int, torn bool, err error) {
	pl := d.plan
	op := pl.ops
	pl.ops++
	if write {
		idx = pl.writes
		pl.writes++
	} else {
		idx = pl.reads
		pl.reads++
	}
	if !pl.lossDone && pl.loseAt >= 0 && op >= pl.loseAt {
		pl.lossDone = true
		d.lost = true
		d.in.note("device %s lost at operation %d", d.name, op)
	}
	if d.lost {
		return idx, 0, false, fmt.Errorf("fault: device %s: %w", d.name, device.ErrLost)
	}
	if write {
		if pl.writeErrs[idx] {
			delete(pl.writeErrs, idx)
			d.in.note("device %s write %d failed (injected)", d.name, idx)
			return idx, 0, false, fmt.Errorf("fault: device %s write %d: %w", d.name, idx, ErrInjectedIO)
		}
		if keep, ok := pl.tears[idx]; ok {
			delete(pl.tears, idx)
			d.in.note("device %s write %d torn after %d bytes", d.name, idx, keep)
			return idx, keep, true, nil
		}
	} else if pl.readErrs[idx] {
		delete(pl.readErrs, idx)
		d.in.note("device %s read %d failed (injected)", d.name, idx)
		return idx, 0, false, fmt.Errorf("fault: device %s read %d: %w", d.name, idx, ErrInjectedIO)
	}
	return idx, 0, false, nil
}

// maybePlantRot services a RotOnRead schedule: the read with index idx
// plants decay on the first slot it covers, with the flipped bit drawn
// from the injector's PRNG.
func (d *Device) maybePlantRot(idx int, page device.PageNum, bufs [][]byte) {
	pl := d.plan
	if !pl.rotOnRead[idx] || len(bufs) == 0 || len(bufs[0]) == 0 {
		return
	}
	delete(pl.rotOnRead, idx)
	bit := uint(d.in.Rand() % uint64(8*len(bufs[0])))
	pl.rot[int64(page)] = bit
	d.in.note("device %s read %d decayed slot %d (bit %d)", d.name, idx, int64(page), bit)
}

// applyRot flips the planted bits in freshly-read buffers. The read has
// already reported success; only checksums can see the lie.
func (d *Device) applyRot(page device.PageNum, bufs [][]byte) {
	pl := d.plan
	if len(pl.rot) == 0 {
		return
	}
	for i, b := range bufs {
		if bit, ok := pl.rot[int64(page)+int64(i)]; ok && int(bit/8) < len(b) {
			b[bit/8] ^= 1 << (bit % 8)
		}
	}
}

// settleWrite accounts for fresh data landing on n slots starting at page:
// ordinary rot is overwritten away, sticky rot (a failing cell) re-arms.
func (d *Device) settleWrite(page device.PageNum, n int) {
	pl := d.plan
	if len(pl.rot) == 0 && len(pl.sticky) == 0 {
		return
	}
	for i := 0; i < n; i++ {
		slot := int64(page) + int64(i)
		if bit, ok := pl.sticky[slot]; ok {
			pl.rot[slot] = bit
		} else {
			delete(pl.rot, slot)
		}
	}
}

// redirect services a MisdirectWrite schedule: write idx lands delta slots
// away from where the caller asked.
func (d *Device) redirect(idx int, page device.PageNum) device.PageNum {
	pl := d.plan
	delta, ok := pl.misdirect[idx]
	if !ok {
		return page
	}
	delete(pl.misdirect, idx)
	target := device.PageNum(int64(page) + delta)
	d.in.note("device %s write %d misdirected: slot %d -> %d", d.name, idx, int64(page), int64(target))
	return target
}

// Read serves the request from the inner device unless a fault applies.
// Planted rot is applied to the returned buffers after the inner read.
func (d *Device) Read(p *sim.Proc, page device.PageNum, bufs [][]byte) error {
	idx, _, _, err := d.checkOp(false)
	if err != nil {
		return err
	}
	d.maybePlantRot(idx, page, bufs)
	if err := d.inner.Read(p, page, bufs); err != nil {
		return err
	}
	d.applyRot(page, bufs)
	return nil
}

// Write persists the request to the inner device unless a fault applies. A
// scheduled torn write persists only the first keepBytes bytes: whole pages
// before the tear point are written normally, the torn page is written with
// its unwritten remainder zero-filled, and later pages are dropped. The
// torn write still returns nil — real torn writes are silent.
func (d *Device) Write(p *sim.Proc, page device.PageNum, bufs [][]byte) error {
	idx, keep, torn, err := d.checkOp(true)
	if err != nil {
		return err
	}
	page = d.redirect(idx, page)
	if !torn {
		d.settleWrite(page, len(bufs))
		return d.inner.Write(p, page, bufs)
	}
	out := make([][]byte, 0, len(bufs))
	for _, b := range bufs {
		if keep <= 0 {
			break
		}
		if keep >= len(b) {
			out = append(out, b)
			keep -= len(b)
			continue
		}
		part := make([]byte, len(b)) // zero tail: the tear zero-fills the page
		copy(part, b[:keep])
		out = append(out, part)
		keep = 0
	}
	if len(out) == 0 {
		return nil
	}
	d.settleWrite(page, len(out))
	return d.inner.Write(p, page, out)
}

// ReadTask is the run-to-completion twin of Read: the fault check happens
// at request time, rot is applied when the inner read completes.
func (d *Device) ReadTask(t *sim.Task, page device.PageNum, bufs [][]byte, k func(error)) {
	idx, _, _, err := d.checkOp(false)
	if err != nil {
		k(err)
		return
	}
	d.maybePlantRot(idx, page, bufs)
	if len(d.plan.rot) == 0 {
		// No decay anywhere on this device: hand k through untouched so
		// the fault-free hot path stays allocation-free.
		d.inner.ReadTask(t, page, bufs, k)
		return
	}
	d.inner.ReadTask(t, page, bufs, func(err error) {
		if err == nil {
			d.applyRot(page, bufs)
		}
		k(err)
	})
}

// WriteTask is the run-to-completion twin of Write, with the same torn-write
// semantics: only the prefix before the tear point persists (the torn page
// zero-filled past it) and the write still completes successfully.
func (d *Device) WriteTask(t *sim.Task, page device.PageNum, bufs [][]byte, k func(error)) {
	idx, keep, torn, err := d.checkOp(true)
	if err != nil {
		k(err)
		return
	}
	page = d.redirect(idx, page)
	if !torn {
		d.settleWrite(page, len(bufs))
		d.inner.WriteTask(t, page, bufs, k)
		return
	}
	out := make([][]byte, 0, len(bufs))
	for _, b := range bufs {
		if keep <= 0 {
			break
		}
		if keep >= len(b) {
			out = append(out, b)
			keep -= len(b)
			continue
		}
		part := make([]byte, len(b)) // zero tail: the tear zero-fills the page
		copy(part, b[:keep])
		out = append(out, part)
		keep = 0
	}
	if len(out) == 0 {
		k(nil)
		return
	}
	d.settleWrite(page, len(out))
	d.inner.WriteTask(t, page, out, k)
}

// Preload forwards to the inner device's Preloader. Preloads model loading
// the database before the measured (and faulted) run, so no faults apply.
func (d *Device) Preload(page device.PageNum, data []byte) error {
	pre, ok := d.inner.(device.Preloader)
	if !ok {
		return fmt.Errorf("fault: device %s does not support preloading", d.name)
	}
	return pre.Preload(page, data)
}

// Pending reports the inner device's in-flight requests.
func (d *Device) Pending() int { return d.inner.Pending() }

// Stats returns the inner device's counters, so harness samplers see the
// same numbers with or without the wrapper.
func (d *Device) Stats() *device.Stats { return d.inner.Stats() }
