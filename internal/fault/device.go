package fault

import (
	"fmt"

	"turbobp/internal/device"
	"turbobp/internal/sim"
)

// Device wraps a device.Device with the injector's fault plan for one
// device name. It implements device.Device (and forwards device.Preloader
// when the inner device supports it), consulting the plan before every
// operation:
//
//   - whole-device loss: at the scheduled total-operation count the device
//     dies; every operation from then on returns device.ErrLost until
//     Replace installs a fresh device under the same name,
//   - injected I/O errors: the scheduled Nth read/write fails with
//     ErrInjectedIO (transient: the next operation succeeds),
//   - torn writes: the scheduled write persists only a prefix of the
//     request and reports success.
//
// Operation counters live on the shared plan, so the per-name schedule
// keeps counting across Replace.
type Device struct {
	in    *Injector
	name  string
	plan  *devPlan
	inner device.Device
	lost  bool
}

var _ device.Device = (*Device)(nil)
var _ device.Preloader = (*Device)(nil)

// Inner returns the wrapped device.
func (d *Device) Inner() device.Device { return d.inner }

// Lost reports whether the device has failed for good.
func (d *Device) Lost() bool { return d.lost }

// Replace models swapping in a fresh, healthy device at the same mount
// point after a loss: the lost latch clears and operations flow to the
// inner device again. Prior contents of the inner device are irrelevant —
// a rebuilt SSD manager never reads a frame it has not first written.
func (d *Device) Replace() {
	if d.lost {
		d.in.note("device %s replaced after loss", d.name)
	}
	d.lost = false
}

// checkOp advances the per-name counters and returns the injected error for
// this operation, if any. write selects the write-side schedule; the
// returned tear (keepBytes, true) applies only to writes.
func (d *Device) checkOp(write bool) (tear int, torn bool, err error) {
	pl := d.plan
	op := pl.ops
	pl.ops++
	var idx int
	if write {
		idx = pl.writes
		pl.writes++
	} else {
		idx = pl.reads
		pl.reads++
	}
	if !pl.lossDone && pl.loseAt >= 0 && op >= pl.loseAt {
		pl.lossDone = true
		d.lost = true
		d.in.note("device %s lost at operation %d", d.name, op)
	}
	if d.lost {
		return 0, false, fmt.Errorf("fault: device %s: %w", d.name, device.ErrLost)
	}
	if write {
		if pl.writeErrs[idx] {
			delete(pl.writeErrs, idx)
			d.in.note("device %s write %d failed (injected)", d.name, idx)
			return 0, false, fmt.Errorf("fault: device %s write %d: %w", d.name, idx, ErrInjectedIO)
		}
		if keep, ok := pl.tears[idx]; ok {
			delete(pl.tears, idx)
			d.in.note("device %s write %d torn after %d bytes", d.name, idx, keep)
			return keep, true, nil
		}
	} else if pl.readErrs[idx] {
		delete(pl.readErrs, idx)
		d.in.note("device %s read %d failed (injected)", d.name, idx)
		return 0, false, fmt.Errorf("fault: device %s read %d: %w", d.name, idx, ErrInjectedIO)
	}
	return 0, false, nil
}

// Read serves the request from the inner device unless a fault applies.
func (d *Device) Read(p *sim.Proc, page device.PageNum, bufs [][]byte) error {
	if _, _, err := d.checkOp(false); err != nil {
		return err
	}
	return d.inner.Read(p, page, bufs)
}

// Write persists the request to the inner device unless a fault applies. A
// scheduled torn write persists only the first keepBytes bytes: whole pages
// before the tear point are written normally, the torn page is written with
// its unwritten remainder zero-filled, and later pages are dropped. The
// torn write still returns nil — real torn writes are silent.
func (d *Device) Write(p *sim.Proc, page device.PageNum, bufs [][]byte) error {
	keep, torn, err := d.checkOp(true)
	if err != nil {
		return err
	}
	if !torn {
		return d.inner.Write(p, page, bufs)
	}
	out := make([][]byte, 0, len(bufs))
	for _, b := range bufs {
		if keep <= 0 {
			break
		}
		if keep >= len(b) {
			out = append(out, b)
			keep -= len(b)
			continue
		}
		part := make([]byte, len(b)) // zero tail: the tear zero-fills the page
		copy(part, b[:keep])
		out = append(out, part)
		keep = 0
	}
	if len(out) == 0 {
		return nil
	}
	return d.inner.Write(p, page, out)
}

// ReadTask is the run-to-completion twin of Read: the fault check happens
// at request time, then the inner device serves the request.
func (d *Device) ReadTask(t *sim.Task, page device.PageNum, bufs [][]byte, k func(error)) {
	if _, _, err := d.checkOp(false); err != nil {
		k(err)
		return
	}
	d.inner.ReadTask(t, page, bufs, k)
}

// WriteTask is the run-to-completion twin of Write, with the same torn-write
// semantics: only the prefix before the tear point persists (the torn page
// zero-filled past it) and the write still completes successfully.
func (d *Device) WriteTask(t *sim.Task, page device.PageNum, bufs [][]byte, k func(error)) {
	keep, torn, err := d.checkOp(true)
	if err != nil {
		k(err)
		return
	}
	if !torn {
		d.inner.WriteTask(t, page, bufs, k)
		return
	}
	out := make([][]byte, 0, len(bufs))
	for _, b := range bufs {
		if keep <= 0 {
			break
		}
		if keep >= len(b) {
			out = append(out, b)
			keep -= len(b)
			continue
		}
		part := make([]byte, len(b)) // zero tail: the tear zero-fills the page
		copy(part, b[:keep])
		out = append(out, part)
		keep = 0
	}
	if len(out) == 0 {
		k(nil)
		return
	}
	d.inner.WriteTask(t, page, out, k)
}

// Preload forwards to the inner device's Preloader. Preloads model loading
// the database before the measured (and faulted) run, so no faults apply.
func (d *Device) Preload(page device.PageNum, data []byte) error {
	pre, ok := d.inner.(device.Preloader)
	if !ok {
		return fmt.Errorf("fault: device %s does not support preloading", d.name)
	}
	return pre.Preload(page, data)
}

// Pending reports the inner device's in-flight requests.
func (d *Device) Pending() int { return d.inner.Pending() }

// Stats returns the inner device's counters, so harness samplers see the
// same numbers with or without the wrapper.
func (d *Device) Stats() *device.Stats { return d.inner.Stats() }
