// Package fault is the deterministic fault-injection layer of the storage
// engine: it wraps any device backend (simulated or file) and injects
// read/write I/O errors, torn page writes and whole-device loss, and it
// fires crash points at named sites inside the engine (pre/post WAL flush,
// mid-checkpoint, mid-lazy-clean).
//
// Everything is seed-driven and count-based — a fault fires on the Nth
// operation or the Nth visit to a site, never on wall-clock time or global
// randomness — so a faulted run is exactly reproducible and byte-identical
// across serial and parallel harness executions. The `bpesim faults`
// experiment and the recovery tests build their crash/recover matrices on
// this package; docs/FAILURES.md documents the failure model the injector
// exercises.
//
// An Injector is not safe for concurrent use from OS threads; like the rest
// of the engine it relies on the simulation kernel's serialization (one
// runnable process at a time per Env). Use one Injector per engine.
package fault

import (
	"errors"
	"fmt"

	"turbobp/internal/device"
)

// Site names a crash point inside the engine. The engine calls
// Injector.At(site) at each site; when an armed site fires, the surrounding
// operation returns ErrCrashPoint and the test driver simulates the crash.
type Site string

// The crash-point catalog (see docs/FAILURES.md for the state each site
// leaves behind).
const (
	// SitePreWALFlush fires in Commit before the log force: the committing
	// transaction's records may be entirely lost.
	SitePreWALFlush Site = "pre-wal-flush"
	// SitePostWALFlush fires in Commit after the log force but before the
	// caller observes success: the transaction is durable yet unacknowledged.
	SitePostWALFlush Site = "post-wal-flush"
	// SiteMidCheckpoint fires after a sharp checkpoint has flushed every
	// dirty page but before the checkpoint record is logged: recovery must
	// fall back to the previous checkpoint.
	SiteMidCheckpoint Site = "mid-checkpoint"
	// SitePostCheckpoint fires after the checkpoint record is durable and
	// the log truncated: recovery starts from the brand-new checkpoint.
	SitePostCheckpoint Site = "post-checkpoint"
	// SiteMidLazyClean fires inside the LC cleaner between reading a dirty
	// run from the SSD and writing it to disk: the SSD keeps the only
	// up-to-date copies. The cleaner cannot return an error to a caller, so
	// firing this site stops the cleaner and latches Fired; drivers poll
	// Fired() and crash the engine.
	SiteMidLazyClean Site = "mid-lazy-clean"
)

// ErrCrashPoint is returned by engine operations interrupted by an armed
// crash site. The caller owning the fault schedule is expected to crash and
// recover the engine; every other error path treats it as fatal.
var ErrCrashPoint = errors.New("fault: crash point reached")

// ErrInjectedIO is the transient I/O error injected by ErrorRead/ErrorWrite.
// The engine must degrade (fall back to disk, retry, or drop the optional
// SSD traffic) without losing committed data.
var ErrInjectedIO = errors.New("fault: injected I/O error")

// devPlan is the per-device-name fault schedule. Operation counters live
// here, not on the wrapper, so they keep counting across a device
// replacement (RecoverSSDLoss re-wraps the replacement under the same name).
type devPlan struct {
	name      string
	readErrs  map[int]bool // read index -> inject ErrInjectedIO
	writeErrs map[int]bool // write index -> inject ErrInjectedIO
	tears     map[int]int  // write index -> bytes persisted before the tear
	loseAt    int          // total-op count that kills the device; -1 = never
	lossDone  bool         // the loss already fired (one-shot)
	cur       *Device      // the wrapper currently carrying this name

	// Silent faults: the operation succeeds, the bytes lie.
	rot       map[int64]uint // slot -> flipped bit, applied to every read until the slot is rewritten
	sticky    map[int64]uint // slot -> bit that re-arms after every write (a failing cell)
	rotOnRead map[int]bool   // read index -> plant rot on the first slot that read touches
	misdirect map[int]int64  // write index -> slot delta (payload lands at slot+delta)

	reads, writes, ops int
}

// Injector owns a fault schedule: armed crash sites and per-device fault
// plans. The zero value is unusable; call New. A nil *Injector is valid for
// every method that the engine hot path calls (At, Fired), so engines built
// without fault injection pay only a nil check.
type Injector struct {
	state uint64 // splitmix64 PRNG state

	crashSite Site
	crashNth  int // remaining visits before the site fires
	fired     bool
	firedSite Site
	hits      map[Site]int

	plans  map[string]*devPlan
	events []string
}

// New returns an injector seeded with seed (0 is replaced by 1 so the PRNG
// never sticks at zero).
func New(seed uint64) *Injector {
	if seed == 0 {
		seed = 1
	}
	return &Injector{
		state: seed,
		hits:  make(map[Site]int),
		plans: make(map[string]*devPlan),
	}
}

// DeriveSeed derives a per-partition injector seed from a DB-level seed
// (one splitmix64 step over seed and the partition index), so a partitioned
// run replays deterministically from a single Options.FaultSeed while each
// partition's injector draws an independent stream.
func DeriveSeed(seed, index uint64) uint64 {
	z := seed + (index+1)*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	if z == 0 {
		z = 1
	}
	return z
}

// Rand returns the next value of the injector's deterministic PRNG
// (splitmix64). Fault schedules that want "random" operation indices derive
// them from here so the whole run replays from one seed.
func (in *Injector) Rand() uint64 {
	in.state += 0x9E3779B97F4A7C15
	z := in.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// ArmCrash arms site to fire at its nth upcoming visit (nth >= 1; 1 means
// the very next visit). Arming replaces any previously armed site and
// re-enables firing.
func (in *Injector) ArmCrash(site Site, nth int) {
	if nth < 1 {
		nth = 1
	}
	in.crashSite = site
	in.crashNth = nth
	in.fired = false
}

// At reports whether the crash point at site fires now. Every call counts a
// visit; the armed site fires exactly once, on its nth visit after arming.
// Safe on a nil receiver (never fires).
func (in *Injector) At(site Site) bool {
	if in == nil {
		return false
	}
	in.hits[site]++
	if in.fired || site != in.crashSite || in.crashNth <= 0 {
		return false
	}
	in.crashNth--
	if in.crashNth > 0 {
		return false
	}
	in.fired = true
	in.firedSite = site
	in.events = append(in.events, fmt.Sprintf("crash point %s fired (visit %d)", site, in.hits[site]))
	return true
}

// Fired reports whether the armed crash site has fired. Safe on nil.
func (in *Injector) Fired() bool { return in != nil && in.fired }

// FiredSite returns the site that fired, or "" if none has.
func (in *Injector) FiredSite() Site {
	if in == nil {
		return ""
	}
	return in.firedSite
}

// Hits returns how many times site has been visited.
func (in *Injector) Hits(site Site) int {
	if in == nil {
		return 0
	}
	return in.hits[site]
}

// planFor returns (creating if needed) the fault plan for a device name.
func (in *Injector) planFor(name string) *devPlan {
	pl, ok := in.plans[name]
	if !ok {
		pl = &devPlan{
			name:      name,
			readErrs:  make(map[int]bool),
			writeErrs: make(map[int]bool),
			tears:     make(map[int]int),
			rot:       make(map[int64]uint),
			sticky:    make(map[int64]uint),
			rotOnRead: make(map[int]bool),
			misdirect: make(map[int]int64),
			loseAt:    -1,
		}
		in.plans[name] = pl
	}
	return pl
}

// Wrap returns dev wrapped with this injector's fault plan for name. The
// engine wraps its devices as "db", "ssd" and "wal"; schedules armed for a
// name apply to whichever device currently carries it (a replacement SSD
// wrapped under "ssd" continues the same operation count).
func (in *Injector) Wrap(name string, dev device.Device) *Device {
	pl := in.planFor(name)
	d := &Device{in: in, name: name, plan: pl, inner: dev}
	pl.cur = d
	return d
}

// FailDeviceAfter schedules whole-device loss: once the named device has
// performed ops operations (reads + writes), every subsequent operation
// returns device.ErrLost. The loss is one-shot — after the engine replaces
// the device (Device.Replace), it stays healthy unless re-armed.
func (in *Injector) FailDeviceAfter(name string, ops int) {
	pl := in.planFor(name)
	pl.loseAt = ops
	pl.lossDone = false
}

// FailDeviceNow makes the named device's very next operation (and all that
// follow) return device.ErrLost.
func (in *Injector) FailDeviceNow(name string) { in.FailDeviceAfter(name, 0) }

// ErrorRead injects ErrInjectedIO on the named device's index-th read
// (0-based, counted per name across replacements).
func (in *Injector) ErrorRead(name string, index int) {
	in.planFor(name).readErrs[index] = true
}

// ErrorWrite injects ErrInjectedIO on the named device's index-th write.
func (in *Injector) ErrorWrite(name string, index int) {
	in.planFor(name).writeErrs[index] = true
}

// TearWrite schedules a torn write: the named device's index-th write
// persists only the first keepBytes bytes of the request. The torn page's
// unwritten remainder reads back as zeros (the behaviour of a preallocated,
// zero-filled file or a trimmed flash page) and pages after it are not
// written at all. The write itself reports success — the tear is only
// discoverable later, through checksums, exactly like a real power-cut tear.
func (in *Injector) TearWrite(name string, index, keepBytes int) {
	if keepBytes < 0 {
		keepBytes = 0
	}
	in.planFor(name).tears[index] = keepBytes
}

// RotSlot plants silent bit rot in the named device's slot: every read
// covering the slot returns the stored bytes with bit `bit` of the page
// image flipped. The read reports success — the damage is only visible to
// checksums. Rot persists until the slot is next written (fresh data
// replaces the decayed cell), unless made sticky.
func (in *Injector) RotSlot(name string, slot int64, bit uint) {
	in.planFor(name).rot[slot] = bit
	in.note("device %s slot %d rotted (bit %d)", name, slot, bit)
}

// RotSlotSticky plants rot that survives rewrites — a failing cell: every
// write to the slot is immediately re-corrupted, so the slot never reads
// back clean again. This is the fault that drives slot retirement and,
// past the threshold, SSD quarantine.
func (in *Injector) RotSlotSticky(name string, slot int64, bit uint) {
	pl := in.planFor(name)
	pl.rot[slot] = bit
	pl.sticky[slot] = bit
	in.note("device %s slot %d rotted sticky (bit %d)", name, slot, bit)
}

// RotOnRead schedules wear-driven decay: the named device's index-th read
// (0-based) plants rot on the first slot it touches, with the flipped bit
// drawn from the injector's PRNG. That same read already returns the
// decayed bytes.
func (in *Injector) RotOnRead(name string, index int) {
	in.planFor(name).rotOnRead[index] = true
}

// MisdirectWrite redirects the named device's index-th write (0-based) by
// delta slots: the payload lands at slot+delta, the intended slot keeps its
// stale bytes, and the write reports success — the classic misdirected
// write, detectable only by the self-identifying page header.
func (in *Injector) MisdirectWrite(name string, index int, delta int64) {
	if delta == 0 {
		delta = 1
	}
	in.planFor(name).misdirect[index] = delta
}

// MisdirectNextWrite arms MisdirectWrite for the named device's very next
// write.
func (in *Injector) MisdirectNextWrite(name string, delta int64) {
	pl := in.planFor(name)
	in.MisdirectWrite(name, pl.writes, delta)
}

// Writes returns how many writes the named device has performed, so fault
// schedules can arm count-based faults relative to "now".
func (in *Injector) Writes(name string) int {
	if in == nil {
		return 0
	}
	pl, ok := in.plans[name]
	if !ok {
		return 0
	}
	return pl.writes
}

// Reads returns how many reads the named device has performed, the read-side
// twin of Writes (arming RotOnRead or read errors relative to "now").
func (in *Injector) Reads(name string) int {
	if in == nil {
		return 0
	}
	pl, ok := in.plans[name]
	if !ok {
		return 0
	}
	return pl.reads
}

// Events returns a human-readable trace of the faults that fired, in order.
func (in *Injector) Events() []string {
	if in == nil {
		return nil
	}
	return append([]string(nil), in.events...)
}

// DeviceLost reports whether the named device is currently lost (the loss
// fired and no replacement has been installed).
func (in *Injector) DeviceLost(name string) bool {
	if in == nil {
		return false
	}
	pl, ok := in.plans[name]
	return ok && pl.cur != nil && pl.cur.lost
}

func (in *Injector) note(format string, args ...interface{}) {
	in.events = append(in.events, fmt.Sprintf(format, args...))
}
