package fault

import (
	"bytes"
	"errors"
	"testing"

	"turbobp/internal/device"
	"turbobp/internal/sim"
)

// runOps executes fn inside a one-process simulation so device operations
// can sleep virtual time.
func runOps(t *testing.T, fn func(p *sim.Proc)) {
	t.Helper()
	env := sim.NewEnv()
	env.Go("ops", fn)
	env.Run(-1)
	env.Shutdown()
}

func newWrapped(env *sim.Env, in *Injector, name string) *Device {
	return in.Wrap(name, device.NewSSD(env, device.PaperSSDProfile(), 64))
}

func TestCrashSiteCountsAndFiresOnce(t *testing.T) {
	in := New(7)
	in.ArmCrash(SitePreWALFlush, 3)
	for i := 1; i <= 2; i++ {
		if in.At(SitePreWALFlush) {
			t.Fatalf("site fired on visit %d, armed for 3", i)
		}
	}
	if in.At(SitePostWALFlush) {
		t.Fatal("unarmed site fired")
	}
	if !in.At(SitePreWALFlush) {
		t.Fatal("site did not fire on its 3rd visit")
	}
	if !in.Fired() || in.FiredSite() != SitePreWALFlush {
		t.Errorf("Fired = %v, FiredSite = %q", in.Fired(), in.FiredSite())
	}
	if in.At(SitePreWALFlush) {
		t.Error("site fired twice")
	}
	if got := in.Hits(SitePreWALFlush); got != 4 {
		t.Errorf("Hits = %d, want 4", got)
	}
	// Re-arming re-enables firing.
	in.ArmCrash(SitePreWALFlush, 1)
	if !in.At(SitePreWALFlush) {
		t.Error("re-armed site did not fire")
	}
}

func TestNilInjectorIsInert(t *testing.T) {
	var in *Injector
	if in.At(SitePreWALFlush) || in.Fired() {
		t.Error("nil injector fired")
	}
	if in.Hits(SitePreWALFlush) != 0 || in.FiredSite() != "" || in.DeviceLost("ssd") {
		t.Error("nil injector reported state")
	}
	if in.Events() != nil {
		t.Error("nil injector has events")
	}
}

func TestInjectedIOErrorsAreOneShot(t *testing.T) {
	env := sim.NewEnv()
	in := New(1)
	d := newWrapped(env, in, "ssd")
	in.ErrorRead("ssd", 1)  // second read fails
	in.ErrorWrite("ssd", 0) // first write fails
	runOps(t, func(p *sim.Proc) {
		buf := make([]byte, 16)
		if err := d.Write(p, 0, [][]byte{buf}); !errors.Is(err, ErrInjectedIO) {
			t.Errorf("write 0: err = %v, want ErrInjectedIO", err)
		}
		if err := d.Write(p, 0, [][]byte{buf}); err != nil {
			t.Errorf("write 1: %v (errors must be one-shot)", err)
		}
		if err := d.Read(p, 0, [][]byte{buf}); err != nil {
			t.Errorf("read 0: %v", err)
		}
		if err := d.Read(p, 0, [][]byte{buf}); !errors.Is(err, ErrInjectedIO) {
			t.Errorf("read 1: err = %v, want ErrInjectedIO", err)
		}
		if err := d.Read(p, 0, [][]byte{buf}); err != nil {
			t.Errorf("read 2: %v", err)
		}
	})
}

func TestDeviceLossAndReplace(t *testing.T) {
	env := sim.NewEnv()
	in := New(1)
	d := newWrapped(env, in, "ssd")
	in.FailDeviceAfter("ssd", 2)
	runOps(t, func(p *sim.Proc) {
		buf := make([]byte, 16)
		for i := 0; i < 2; i++ {
			if err := d.Write(p, device.PageNum(i), [][]byte{buf}); err != nil {
				t.Fatalf("op %d before loss: %v", i, err)
			}
		}
		if err := d.Read(p, 0, [][]byte{buf}); !errors.Is(err, device.ErrLost) {
			t.Fatalf("op at loss threshold: err = %v, want ErrLost", err)
		}
		if err := d.Write(p, 0, [][]byte{buf}); !errors.Is(err, device.ErrLost) {
			t.Errorf("op after loss: err = %v, want ErrLost", err)
		}
		if !d.Lost() || !in.DeviceLost("ssd") {
			t.Error("loss not latched")
		}
		// Replacement clears the latch; the loss is one-shot.
		d.Replace()
		if d.Lost() || in.DeviceLost("ssd") {
			t.Error("loss survived Replace")
		}
		for i := 0; i < 8; i++ {
			if err := d.Read(p, 0, [][]byte{buf}); err != nil {
				t.Fatalf("read after replace: %v", err)
			}
		}
	})
}

func TestLossCountsAcrossRewrap(t *testing.T) {
	env := sim.NewEnv()
	in := New(1)
	d1 := newWrapped(env, in, "ssd")
	in.FailDeviceAfter("ssd", 3)
	runOps(t, func(p *sim.Proc) {
		buf := make([]byte, 16)
		if err := d1.Write(p, 0, [][]byte{buf}); err != nil {
			t.Fatal(err)
		}
		// Re-wrapping a new device under the same name continues the count.
		d2 := newWrapped(env, in, "ssd")
		if err := d2.Write(p, 0, [][]byte{buf}); err != nil {
			t.Fatal(err)
		}
		if err := d2.Write(p, 0, [][]byte{buf}); err != nil {
			t.Fatal(err)
		}
		if err := d2.Write(p, 0, [][]byte{buf}); !errors.Is(err, device.ErrLost) {
			t.Errorf("4th op across wrappers: err = %v, want ErrLost", err)
		}
	})
}

func TestTornWriteZeroFillsTail(t *testing.T) {
	env := sim.NewEnv()
	in := New(1)
	d := newWrapped(env, in, "ssd")
	const pageSize = 16
	in.TearWrite("ssd", 0, pageSize+4) // page 0 whole, page 1 keeps 4 bytes, page 2 dropped
	runOps(t, func(p *sim.Proc) {
		pg := func(fill byte) []byte {
			b := make([]byte, pageSize)
			for i := range b {
				b[i] = fill
			}
			return b
		}
		if err := d.Write(p, 0, [][]byte{pg(0xAA), pg(0xBB), pg(0xCC)}); err != nil {
			t.Fatalf("torn write reported failure: %v (tears must be silent)", err)
		}
		got := make([][]byte, 3)
		for i := range got {
			got[i] = make([]byte, pageSize)
		}
		if err := d.Read(p, 0, got); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got[0], pg(0xAA)) {
			t.Error("page before the tear was damaged")
		}
		want1 := append(append([]byte{}, pg(0xBB)[:4]...), make([]byte, pageSize-4)...)
		if !bytes.Equal(got[1], want1) {
			t.Errorf("torn page = %x, want %x", got[1], want1)
		}
		if !bytes.Equal(got[2], make([]byte, pageSize)) {
			t.Error("page after the tear was written")
		}
	})
}

func TestRandDeterministic(t *testing.T) {
	a, b := New(99), New(99)
	for i := 0; i < 100; i++ {
		if a.Rand() != b.Rand() {
			t.Fatal("same-seed injectors diverged")
		}
	}
	if New(1).Rand() == New(2).Rand() {
		t.Error("different seeds produced the same first value")
	}
	// Seed 0 is usable (replaced internally, never sticks).
	z := New(0)
	if z.Rand() == z.Rand() {
		t.Error("zero-seed PRNG stuck")
	}
}
