package harness

import (
	"errors"
	"fmt"
	"io"
	"time"

	"turbobp/internal/engine"
	"turbobp/internal/fault"
	"turbobp/internal/page"
	"turbobp/internal/sim"
	"turbobp/internal/ssd"
)

// This file is the `bpesim corrupt` experiment: a deterministic
// silent-corruption matrix over every SSD design. Where `bpesim faults`
// covers faults a device reports (crashes, I/O errors, whole-device loss),
// this matrix covers the faults a device does NOT report: bit rot in stored
// frames, misdirected writes, and failing cells. Each cell runs the same
// self-verifying counter workload as the fault matrix, plants one corruption
// scenario, and checks that the engine's checksum-verified read paths detect
// the damage and repair it from the right source (disk copy, SSD copy, or
// WAL after-image) — no cell may ever observe a wrong counter. The
// configuration is fixed, so the rendered table is byte-identical across
// runs and across -parallel worker counts; docs/FAILURES.md describes each
// scenario's expected semantics.

// corruptScenarios are the rows of the matrix.
var corruptScenarios = []string{
	"ssd-rot-clean",
	"ssd-rot-dirty",
	"hdd-rot-ssd-copy",
	"hdd-rot-wal",
	"misdirected-write",
	"scrub-repair",
	"quarantine",
}

// CorruptRow is one cell's verdict.
type CorruptRow struct {
	Design   ssd.Design
	Scenario string
	Outcome  string // "pass", optionally annotated, or "FAIL: ..."
	Pass     bool
}

// CorruptMatrixResult is the rendered pass/fail table.
type CorruptMatrixResult struct {
	Seed uint64
	Rows []CorruptRow
}

// Print renders the matrix.
func (r *CorruptMatrixResult) Print(w io.Writer) {
	fmt.Fprintf(w, "Silent-corruption matrix — detect/repair scenarios per design (seed %#x)\n", r.Seed)
	fmt.Fprintf(w, "%-6s %-18s %s\n", "design", "scenario", "outcome")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-6s %-18s %s\n", row.Design, row.Scenario, row.Outcome)
	}
}

// Err returns an error naming the failed cells, or nil if all passed —
// `bpesim corrupt` exits nonzero through it.
func (r *CorruptMatrixResult) Err() error {
	var bad []string
	for _, row := range r.Rows {
		if !row.Pass {
			bad = append(bad, fmt.Sprintf("%s/%s", row.Design, row.Scenario))
		}
	}
	if len(bad) == 0 {
		return nil
	}
	return fmt.Errorf("harness: corruption matrix failed: %v", bad)
}

// RunCorruptMatrix executes every design × scenario cell on the worker pool.
func RunCorruptMatrix() (*CorruptMatrixResult, error) {
	seed := FaultSeed()
	n := len(faultDesigns) * len(corruptScenarios)
	rows, err := RunGrid(n, func(i int) (CorruptRow, error) {
		design := faultDesigns[i/len(corruptScenarios)]
		scenario := corruptScenarios[i%len(corruptScenarios)]
		return runCorruptCell(design, scenario, faultMix(seed, 0xC0+uint64(i))), nil
	})
	if err != nil {
		return nil, err
	}
	return &CorruptMatrixResult{Seed: seed, Rows: rows}, nil
}

// runCorruptCell builds one engine with one corruption schedule and runs one
// scenario to a verdict.
func runCorruptCell(design ssd.Design, scenario string, seed uint64) CorruptRow {
	row := CorruptRow{Design: design, Scenario: scenario}
	inj := fault.New(seed)
	cfg := engine.Config{
		Design:        design,
		DBPages:       512,
		PoolPages:     48,
		SSDFrames:     128,
		PayloadSize:   64,
		DirtyFraction: 0.5,
		Faults:        inj,
	}
	switch scenario {
	case "ssd-rot-dirty":
		cfg.DirtyFraction = 0.9 // keep LC's SSD dirty set large
	case "hdd-rot-ssd-copy":
		cfg.ReadAheadRamp = -1 // scans batch immediately: the repair site is mid-run
	case "scrub-repair":
		cfg.ScrubPeriod = 10 * time.Millisecond
		cfg.ScrubBatch = 16
	case "quarantine":
		cfg.RetireAfter = 1
		cfg.QuarantineAfter = 2
	}
	env := sim.NewEnv()
	e := engine.New(env, cfg)
	if err := e.FormatDB(); err != nil {
		row.Outcome = "FAIL: format: " + err.Error()
		return row
	}
	d := &faultDriver{
		e:         e,
		inj:       inj,
		rng:       seed ^ 0xA5A5A5A5A5A5A5A5,
		applied:   make([]uint64, faultHotPages),
		committed: make([]uint64, faultHotPages),
	}
	var note string
	var scriptErr error
	env.Go("corrupt-driver", func(p *sim.Proc) {
		note, scriptErr = runCorruptScenario(p, d, design, scenario)
		e.StopBackground()
	})
	env.Run(-1)
	env.Shutdown()
	switch {
	case scriptErr != nil:
		row.Outcome = "FAIL: " + scriptErr.Error()
	case len(d.fails) > 0:
		row.Outcome = "FAIL: " + d.fails[0]
		for _, f := range d.fails[1:] {
			row.Outcome += "; " + f
		}
	default:
		row.Outcome = "pass"
		if note != "" {
			row.Outcome += " (" + note + ")"
		}
		row.Pass = true
	}
	return row
}

// pickCleanSSD returns a page with a valid clean SSD copy that is not
// memory-resident (so the next Get must read the SSD frame), together with
// its frame slot. skip slots already chosen lets a scenario pick several
// distinct victims.
func pickCleanSSD(d *faultDriver, skip map[int]bool) (page.ID, int, bool) {
	for _, pid := range d.e.SSD().CleanPageIDs() {
		if d.e.Pool().Peek(pid) != nil {
			continue
		}
		idx, ok := d.e.SSD().FrameIndexOf(pid)
		if !ok || skip[idx] {
			continue
		}
		return pid, idx, true
	}
	return 0, 0, false
}

// pickDirtySSD is pickCleanSSD's twin for uniquely-dirty (LC) frames.
func pickDirtySSD(d *faultDriver) (page.ID, int, bool) {
	for _, pid := range d.e.SSD().DirtyPageIDs() {
		if d.e.Pool().Peek(pid) != nil {
			continue
		}
		if idx, ok := d.e.SSD().FrameIndexOf(pid); ok {
			return pid, idx, true
		}
	}
	return 0, 0, false
}

// runCorruptScenario is the per-scenario script. The returned note annotates
// a passing row (deterministic counters only).
func runCorruptScenario(p *sim.Proc, d *faultDriver, design ssd.Design, scenario string) (string, error) {
	e, inj := d.e, d.inj
	const pause = 5 * time.Millisecond
	if err := d.rounds(p, 20, pause); err != nil {
		return "", err
	}
	switch scenario {
	case "ssd-rot-clean":
		// Bit rot in a clean frame: the checksum catches it, the entry is
		// dropped, and the disk copy — which a clean frame matches by
		// definition — serves the read. Dropping the entry IS the repair.
		pid, idx, ok := pickCleanSSD(d, nil)
		if !ok {
			return "", errors.New("no clean non-resident SSD page to corrupt")
		}
		inj.RotSlot("ssd", int64(idx), 137)
		if _, err := e.Get(p, pid); err != nil {
			return "", fmt.Errorf("read of rotted page %d: %w", pid, err)
		}
		st := e.SSD().Stats()
		if st.CorruptDetected < 1 || st.CorruptRepaired < 1 {
			return "", fmt.Errorf("rot not detected/repaired (detected=%d repaired=%d)",
				st.CorruptDetected, st.CorruptRepaired)
		}
		if err := d.verifyExact(p); err != nil {
			return "", err
		}
		if err := d.rounds(p, 5, pause); err != nil {
			return "", err
		}
		return fmt.Sprintf("detected=%d", st.CorruptDetected), d.verifyExact(p)

	case "ssd-rot-dirty":
		// Bit rot in a uniquely-dirty LC frame: the SSD held the only
		// up-to-date copy, so the repair must come from the WAL's newest
		// after-image, not the (stale) disk. Only LC has such frames.
		pid, idx, ok := pickDirtySSD(d)
		if !ok {
			if design == ssd.LC {
				return "", errors.New("no dirty non-resident SSD page to corrupt")
			}
			return "no dirty SSD frames (by design)", d.verifyExact(p)
		}
		inj.RotSlot("ssd", int64(idx), 201)
		if _, err := e.Get(p, pid); err != nil {
			return "", fmt.Errorf("read of rotted dirty page %d: %w", pid, err)
		}
		sst := e.SSD().Stats()
		est := e.Stats()
		if sst.CorruptDirty < 1 || est.CorruptRedo < 1 {
			return "", fmt.Errorf("dirty rot not routed to WAL redo (corruptDirty=%d redo=%d)",
				sst.CorruptDirty, est.CorruptRedo)
		}
		if err := d.verifyExact(p); err != nil {
			return "", err
		}
		if err := d.rounds(p, 5, pause); err != nil {
			return "", err
		}
		return fmt.Sprintf("redo=%d", est.CorruptRedo), d.verifyExact(p)

	case "hdd-rot-ssd-copy":
		// Bit rot in a disk page whose clean copy also sits on the SSD: a
		// scan's multi-page read hits the rotted disk image mid-run, and the
		// intact SSD copy both serves the read and heals the disk in place.
		var pid page.ID
		var found bool
		for _, cand := range d.e.SSD().CleanPageIDs() {
			if cand < 1 || cand+1 >= page.ID(faultHotPages) {
				continue
			}
			if e.Pool().Peek(cand) != nil ||
				e.Pool().Peek(cand-1) != nil || e.Pool().Peek(cand+1) != nil {
				continue
			}
			if e.SSD().Contains(cand-1) || e.SSD().Contains(cand+1) {
				continue
			}
			pid, found = cand, true
			break
		}
		if !found {
			return "", errors.New("no SSD-cached page with cold neighbours to corrupt")
		}
		inj.RotSlot("db", int64(pid), 99)
		if err := e.Scan(p, pid-1, 3); err != nil {
			return "", fmt.Errorf("scan over rotted disk page %d: %w", pid, err)
		}
		st := e.Stats()
		if st.DiskCorruptions < 1 || st.DiskRepairsSSD < 1 {
			return "", fmt.Errorf("disk rot not healed from SSD (corruptions=%d repairs=%d)",
				st.DiskCorruptions, st.DiskRepairsSSD)
		}
		if err := d.verifyExact(p); err != nil {
			return "", err
		}
		if err := d.rounds(p, 5, pause); err != nil {
			return "", err
		}
		return fmt.Sprintf("ssdheal=%d", st.DiskRepairsSSD), d.verifyExact(p)

	case "hdd-rot-wal":
		// Bit rot in a disk page with no SSD copy: the repair ladder falls
		// through to the WAL's newest full after-image for the page. Extra
		// rounds first: the updated set must outgrow pool + SSD capacity so
		// an updated page with no cached copy exists under every design.
		if err := d.rounds(p, 15, pause); err != nil {
			return "", err
		}
		var pid page.ID
		var found bool
		for cand := page.ID(0); cand < page.ID(faultHotPages); cand++ {
			if d.applied[cand] == 0 || e.Pool().Peek(cand) != nil || e.SSD().Contains(cand) {
				continue
			}
			pid, found = cand, true
			break
		}
		if !found {
			return "", errors.New("no updated cold page to corrupt")
		}
		inj.RotSlot("db", int64(pid), 42)
		if _, err := e.Get(p, pid); err != nil {
			return "", fmt.Errorf("read of rotted disk page %d: %w", pid, err)
		}
		st := e.Stats()
		if st.DiskCorruptions < 1 || st.DiskRepairsWAL < 1 {
			return "", fmt.Errorf("disk rot not rebuilt from WAL (corruptions=%d repairs=%d)",
				st.DiskCorruptions, st.DiskRepairsWAL)
		}
		if err := d.verifyExact(p); err != nil {
			return "", err
		}
		if err := d.rounds(p, 5, pause); err != nil {
			return "", err
		}
		return fmt.Sprintf("walheal=%d", st.DiskRepairsWAL), d.verifyExact(p)

	case "misdirected-write":
		// Misdirected SSD writes: the payload lands one slot off, leaving
		// the intended slot with stale bytes and clobbering a victim slot
		// with a wrong-page image. The self-identifying header (id + LSN
		// cross-check) catches both sides on their next read; the victims
		// repair from disk or WAL like any other corrupt frame.
		base := inj.Writes("ssd")
		for k := 0; k < 4; k++ {
			inj.MisdirectWrite("ssd", base+3+k*7, +1)
		}
		if err := d.rounds(p, 25, pause); err != nil {
			return "", err
		}
		if err := d.verifyExact(p); err != nil {
			return "", err
		}
		st := e.SSD().Stats()
		return fmt.Sprintf("detected=%d", st.CorruptDetected), nil

	case "scrub-repair":
		// The background scrubber finds rot the workload never touches: rot
		// a clean frame, stop issuing reads, and wait. The scrubber must
		// detect the damage on its sweep and rewrite the frame from the
		// intact disk copy — before any read ever sees it.
		pid, idx, ok := pickCleanSSD(d, nil)
		if !ok {
			return "", errors.New("no clean non-resident SSD page to corrupt")
		}
		inj.RotSlot("ssd", int64(idx), 77)
		p.Sleep(400 * time.Millisecond) // several scrub periods of idle time
		st := e.SSD().Stats()
		if st.ScrubSweeps < 1 || st.ScrubRepairs < 1 {
			return "", fmt.Errorf("scrubber did not repair (sweeps=%d frames=%d repairs=%d)",
				st.ScrubSweeps, st.ScrubFrames, st.ScrubRepairs)
		}
		if _, err := e.Get(p, pid); err != nil {
			return "", fmt.Errorf("read of scrubbed page %d: %w", pid, err)
		}
		if err := d.verifyExact(p); err != nil {
			return "", err
		}
		if err := d.rounds(p, 5, pause); err != nil {
			return "", err
		}
		return fmt.Sprintf("repairs=%d", st.ScrubRepairs), d.verifyExact(p)

	case "quarantine":
		// Failing cells: sticky rot survives rewrites, so the affected slots
		// retire after RetireAfter failures, and enough retired slots tip
		// the whole device into quarantine — pass-through mode, no new
		// admissions, correctness preserved straight from the disks.
		chosen := map[int]bool{}
		var pids []page.ID
		for len(pids) < 3 {
			pid, idx, ok := pickCleanSSD(d, chosen)
			if !ok {
				return "", fmt.Errorf("only %d clean non-resident SSD pages to corrupt, need 3", len(pids))
			}
			chosen[idx] = true
			inj.RotSlotSticky("ssd", int64(idx), 55)
			pids = append(pids, pid)
		}
		for _, pid := range pids {
			if _, err := e.Get(p, pid); err != nil {
				return "", fmt.Errorf("read of sticky-rotted page %d: %w", pid, err)
			}
		}
		st := e.SSD().Stats()
		if st.Retired < 2 || !e.SSD().Quarantined() {
			return "", fmt.Errorf("device not quarantined (retired=%d quarantines=%d)",
				st.Retired, st.Quarantines)
		}
		if err := d.verifyExact(p); err != nil {
			return "", err
		}
		// Pass-through operation must stay correct.
		if err := d.rounds(p, 10, pause); err != nil {
			return "", err
		}
		return fmt.Sprintf("retired=%d", st.Retired), d.verifyExact(p)
	}
	return "", fmt.Errorf("unknown scenario %q", scenario)
}
