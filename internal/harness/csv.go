package harness

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// CSV export: each figure-like result can emit machine-readable series so
// the paper's charts can be re-plotted directly from harness output.

// WriteCSV emits one row per (database, design) bar.
func (r *Fig5Result) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"database", "design", "throughput", "speedup"}); err != nil {
		return err
	}
	for _, row := range r.Rows {
		if err := cw.Write([]string{
			row.Label, row.Design.String(),
			strconv.FormatFloat(row.TPS, 'f', 2, 64),
			strconv.FormatFloat(row.Speedup, 'f', 3, 64),
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteCSV emits one row per bucket with a column per curve.
func (t *TimelineResult) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := append([]string{"bucket", "seconds"}, t.Order...)
	if err := cw.Write(header); err != nil {
		return err
	}
	n := 0
	for _, c := range t.Curves {
		if len(c) > n {
			n = len(c)
		}
	}
	for i := 0; i < n; i++ {
		row := []string{
			strconv.Itoa(i),
			strconv.FormatFloat(float64(i)*t.Bucket.Seconds(), 'f', 4, 64),
		}
		for _, name := range t.Order {
			c := t.Curves[name]
			if i < len(c) {
				row = append(row, strconv.FormatFloat(c[i], 'f', 2, 64))
			} else {
				row = append(row, "")
			}
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteCSV emits the four bandwidth series of Figure 8.
func (r *IOTrafficResult) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"bucket", "seconds", "disk_read_MBps", "disk_write_MBps", "ssd_read_MBps", "ssd_write_MBps"}); err != nil {
		return err
	}
	get := func(s []float64, i int) string {
		if i < len(s) {
			return strconv.FormatFloat(s[i], 'f', 3, 64)
		}
		return ""
	}
	for i := 0; i < len(r.DiskReadMB); i++ {
		row := []string{
			strconv.Itoa(i),
			strconv.FormatFloat(float64(i)*r.Bucket.Seconds(), 'f', 4, 64),
			get(r.DiskReadMB, i), get(r.DiskWriteMB, i),
			get(r.SSDReadMB, i), get(r.SSDWriteMB, i),
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteCSV emits the Table 3 grid.
func (r *Table3Result) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"sf", "design", "power", "throughput", "qphh"}); err != nil {
		return err
	}
	for _, row := range r.Rows {
		if err := cw.Write([]string{
			strconv.Itoa(row.SF), row.Design.String(),
			strconv.FormatFloat(row.Power, 'f', 1, 64),
			strconv.FormatFloat(row.Throughput, 'f', 1, 64),
			strconv.FormatFloat(row.QphH, 'f', 1, 64),
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// CSVExperiments maps experiment ids to CSV-producing runners, for the
// experiments whose output is figure data. Ids not listed here have no
// CSV form (their text output is already tabular).
func CSVExperiments() map[string]func(Scale, io.Writer) error {
	return map[string]func(Scale, io.Writer) error{
		"fig5-tpcc": func(s Scale, w io.Writer) error {
			r, err := Fig5TPCC(s)
			if err != nil {
				return err
			}
			return r.WriteCSV(w)
		},
		"fig5-tpce": func(s Scale, w io.Writer) error {
			r, err := Fig5TPCE(s)
			if err != nil {
				return err
			}
			return r.WriteCSV(w)
		},
		"fig5-tpch": func(s Scale, w io.Writer) error {
			r, err := Fig5TPCH(s)
			if err != nil {
				return err
			}
			return r.WriteCSV(w)
		},
		"fig6": func(s Scale, w io.Writer) error {
			rs, err := Fig6(s)
			if err != nil {
				return err
			}
			for i, r := range rs {
				if i > 0 {
					if _, err := fmt.Fprintln(w); err != nil {
						return err
					}
				}
				if _, err := fmt.Fprintf(w, "# %s\n", r.Title); err != nil {
					return err
				}
				if err := r.WriteCSV(w); err != nil {
					return err
				}
			}
			return nil
		},
		"fig7": func(s Scale, w io.Writer) error {
			r, err := Fig7(s)
			if err != nil {
				return err
			}
			return r.WriteCSV(w)
		},
		"fig8": func(s Scale, w io.Writer) error {
			r, err := Fig8(s)
			if err != nil {
				return err
			}
			return r.WriteCSV(w)
		},
		"fig9": func(s Scale, w io.Writer) error {
			rs, err := Fig9(s)
			if err != nil {
				return err
			}
			for i, r := range rs {
				if i > 0 {
					if _, err := fmt.Fprintln(w); err != nil {
						return err
					}
				}
				if _, err := fmt.Fprintf(w, "# %s\n", r.Title); err != nil {
					return err
				}
				if err := r.WriteCSV(w); err != nil {
					return err
				}
			}
			return nil
		},
		"table3": func(s Scale, w io.Writer) error {
			r, err := RunTable3(s, []int{30, 100})
			if err != nil {
				return err
			}
			return r.WriteCSV(w)
		},
	}
}
