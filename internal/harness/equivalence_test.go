package harness

import (
	"math/rand"
	"runtime"
	"testing"
	"time"

	"turbobp/internal/engine"
	"turbobp/internal/sim"
	"turbobp/internal/ssd"
	"turbobp/internal/workload"
)

// dispatch is one observed queue dispatch.
type dispatch struct {
	at  time.Duration
	seq uint64
}

// runTraced runs one small OLTP simulation and returns its dispatch trace
// plus final engine and device statistics. With the inline nesting cap
// raised past the run's event count, both process forms consume sequence
// numbers identically, so their traces must compare equal element by
// element.
func runTraced(t *testing.T, wl workload.OLTP, cfg engine.Config, dur time.Duration) ([]dispatch, engine.Stats, ssd.Stats, int64, int64) {
	t.Helper()
	env := sim.NewEnv()
	env.SetInlineLimit(1 << 30)
	var trace []dispatch
	env.SetDispatchHook(func(at time.Duration, seq uint64) {
		trace = append(trace, dispatch{at, seq})
	})
	e := engine.New(env, cfg)
	if err := e.FormatDB(); err != nil {
		t.Fatal(err)
	}
	wl.Start(env, e, nil)
	env.Run(dur)
	e.StopBackground()
	es, ss := e.Stats(), e.SSD().Stats()
	disk := e.DiskArray().Stats().Load()
	var ssdPages int64
	if dev := e.SSDDevice(); dev != nil {
		s := dev.Stats().Load()
		ssdPages = s.ReadPages + s.WritePages
	}
	env.Shutdown()
	return trace, es, ss, disk.ReadPages + disk.WritePages, ssdPages
}

// TestProcTaskEquivalenceProperty is the simulator's core equivalence
// property: across randomized workload and engine configurations, the
// goroutine-backed (Proc) and run-to-completion (Task) worker forms drive
// the identical (at, seq) dispatch sequence and land on identical engine
// and device statistics.
func TestProcTaskEquivalenceProperty(t *testing.T) {
	designs := []ssd.Design{ssd.NoSSD, ssd.CW, ssd.DW, ssd.LC, ssd.TAC}
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 8; trial++ {
		dbPages := int64(400 + rng.Intn(1200))
		wl := workload.TPCC(dbPages)
		if rng.Intn(2) == 0 {
			wl = workload.TPCE(dbPages)
		}
		wl.Workers = 1 + rng.Intn(8)
		wl.AccessesPerTx = 1 + rng.Intn(8)
		wl.UpdateFrac = rng.Float64() * 0.6
		wl.Seed = rng.Int63()
		cfg := engine.Config{
			Design:      designs[rng.Intn(len(designs))],
			DBPages:     dbPages,
			PoolPages:   32 + rng.Intn(96),
			SSDFrames:   64 + rng.Intn(192),
			PayloadSize: 64,
		}
		dur := time.Duration(50+rng.Intn(200)) * time.Millisecond

		procWL, taskWL := wl, wl
		procWL.ProcWorkers = true
		taskWL.ProcWorkers = false
		procTrace, procES, procSS, procDisk, procSSD := runTraced(t, procWL, cfg, dur)
		taskTrace, taskES, taskSS, taskDisk, taskSSD := runTraced(t, taskWL, cfg, dur)

		if len(procTrace) != len(taskTrace) {
			t.Fatalf("trial %d (%s/%v): trace lengths differ: proc %d, task %d",
				trial, wl.Name, cfg.Design, len(procTrace), len(taskTrace))
		}
		for i := range procTrace {
			if procTrace[i] != taskTrace[i] {
				t.Fatalf("trial %d (%s/%v): dispatch %d differs: proc (%v, %d), task (%v, %d)",
					trial, wl.Name, cfg.Design, i,
					procTrace[i].at, procTrace[i].seq, taskTrace[i].at, taskTrace[i].seq)
			}
		}
		if procES != taskES {
			t.Errorf("trial %d (%s/%v): engine stats differ:\nproc %+v\ntask %+v",
				trial, wl.Name, cfg.Design, procES, taskES)
		}
		if procSS != taskSS {
			t.Errorf("trial %d (%s/%v): ssd stats differ:\nproc %+v\ntask %+v",
				trial, wl.Name, cfg.Design, procSS, taskSS)
		}
		if procDisk != taskDisk || procSSD != taskSSD {
			t.Errorf("trial %d (%s/%v): device page counts differ: disk %d vs %d, ssd %d vs %d",
				trial, wl.Name, cfg.Design, procDisk, taskDisk, procSSD, taskSSD)
		}
	}
}

// TestExperimentLeavesNoGoroutines audits the simulator's goroutine
// hygiene: after a full experiment run (engines, device queues, background
// checkpointer/cleaner processes, Shutdown) the process must be back to
// its baseline goroutine count — nothing parked forever on a channel.
func TestExperimentLeavesNoGoroutines(t *testing.T) {
	SetWorkers(1)
	defer SetWorkers(0)
	baseline := runtime.NumGoroutine()
	RunTable1()
	if _, err := Fig5TPCC(tiny); err != nil {
		t.Fatal(err)
	}
	// Exited goroutines may take a beat to be reaped.
	for i := 0; i < 100; i++ {
		if runtime.NumGoroutine() <= baseline {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines: %d after experiments, baseline %d", runtime.NumGoroutine(), baseline)
}
