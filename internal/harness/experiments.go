package harness

import (
	"fmt"
	"time"

	"turbobp/internal/device"
	"turbobp/internal/engine"
	"turbobp/internal/metrics"
	"turbobp/internal/sim"
	"turbobp/internal/ssd"
)

// Fig5Designs is the design set the paper's Figure 5 compares (CW is
// omitted there, as in the paper's §4.1.1).
var Fig5Designs = []ssd.Design{ssd.NoSSD, ssd.DW, ssd.LC, ssd.TAC}

// SpeedupRow is one bar of a Figure 5 group.
type SpeedupRow struct {
	Label   string // e.g. "2K warehouse (200GB)"
	Design  ssd.Design
	TPS     float64 // absolute committed tx/s (or QphH for TPC-H)
	Speedup float64 // over noSSD
}

// Fig5Result holds one benchmark's speedup bars plus per-run details.
type Fig5Result struct {
	Benchmark string
	Rows      []SpeedupRow
	Details   map[string]*OLTPResult // "label/design"
}

// Fig5TPCC reproduces Figure 5(a–c): DW/LC/TAC speedups over noSSD on the
// 1K/2K/4K-warehouse TPC-C databases (update-intensive, λ=50%,
// checkpointing off), measured over the last hour of a 10-hour run.
func Fig5TPCC(scale Scale) (*Fig5Result, error) {
	return fig5OLTP(scale, "tpcc", []int{1, 2, 4}, TPCCSizesGB, "K warehouse")
}

// Fig5TPCE reproduces Figure 5(d–f): speedups on the 10K/20K/40K-customer
// TPC-E databases (read-intensive, λ=1%, 40-minute checkpoints).
func Fig5TPCE(scale Scale) (*Fig5Result, error) {
	return fig5OLTP(scale, "tpce", []int{10, 20, 40}, TPCESizesGB, "K customer")
}

func fig5OLTP(scale Scale, kind string, sizes []int, gbMap map[int]float64, unit string) (*Fig5Result, error) {
	// Every (size, design) run is independent: fan the whole grid out to
	// the worker pool, then assemble rows in the original order so the
	// noSSD baseline of each size group is in hand before its speedups.
	nd := len(Fig5Designs)
	outs, err := RunGrid(len(sizes)*nd, func(i int) (*OLTPResult, error) {
		return RunOLTP(buildOLTP(scale, Fig5Designs[i%nd], kind, gbMap[sizes[i/nd]], nil))
	})
	if err != nil {
		return nil, err
	}
	res := &Fig5Result{Benchmark: kind, Details: map[string]*OLTPResult{}}
	for si, size := range sizes {
		label := fmt.Sprintf("%d%s (%.0fGB)", size, unit, gbMap[size])
		var base float64
		for di, design := range Fig5Designs {
			out := outs[si*nd+di]
			if design == ssd.NoSSD {
				base = out.FinalTPS
			}
			speedup := 0.0
			if base > 0 {
				speedup = out.FinalTPS / base
			}
			res.Rows = append(res.Rows, SpeedupRow{Label: label, Design: design, TPS: out.FinalTPS, Speedup: speedup})
			res.Details[label+"/"+design.String()] = out
		}
	}
	return res, nil
}

// TimelineResult is one Figure 6/7/9-style chart: throughput over time for
// several curves.
type TimelineResult struct {
	Title  string
	Bucket time.Duration
	Curves map[string][]float64 // curve name -> tx/s per bucket (3-pt moving average)
	Order  []string
}

// Fig6 reproduces Figure 6: 10-hour throughput timelines for TPC-C 2K/4K
// and TPC-E 20K/40K under LC, DW, TAC and noSSD (six-minute buckets,
// three-point moving average).
func Fig6(scale Scale) ([]*TimelineResult, error) {
	specs := []struct {
		kind  string
		size  int
		gbMap map[int]float64
		title string
	}{
		{"tpcc", 2, TPCCSizesGB, "(a) TPC-C 2K warehouses (200GB)"},
		{"tpcc", 4, TPCCSizesGB, "(b) TPC-C 4K warehouses (400GB)"},
		{"tpce", 20, TPCESizesGB, "(c) TPC-E 20K customers (230GB)"},
		{"tpce", 40, TPCESizesGB, "(d) TPC-E 40K customers (415GB)"},
	}
	designs := []ssd.Design{ssd.LC, ssd.DW, ssd.TAC, ssd.NoSSD}
	rs, err := RunGrid(len(specs)*len(designs), func(i int) (*OLTPResult, error) {
		sp := specs[i/len(designs)]
		return RunOLTP(buildOLTP(scale, designs[i%len(designs)], sp.kind, sp.gbMap[sp.size], nil))
	})
	if err != nil {
		return nil, err
	}
	var out []*TimelineResult
	for si, sp := range specs {
		tr := &TimelineResult{Title: sp.title, Curves: map[string][]float64{}}
		for di, design := range designs {
			r := rs[si*len(designs)+di]
			tr.Bucket = r.Bucket
			tr.Curves[design.String()] = metrics.MovingAvg(r.Commits.Rate(), 3)
			tr.Order = append(tr.Order, design.String())
		}
		out = append(out, tr)
	}
	return out, nil
}

// Fig7 reproduces Figure 7: the effect of the LC dirty fraction λ
// (10%/50%/90%) on the TPC-C 4K-warehouse database.
func Fig7(scale Scale) (*TimelineResult, error) {
	tr := &TimelineResult{Title: "LC dirty-fraction sweep, TPC-C 4K warehouses", Curves: map[string][]float64{}}
	lambdas := []float64{0.9, 0.5, 0.1}
	rs, err := RunGrid(len(lambdas), func(i int) (*OLTPResult, error) {
		lambda := lambdas[i]
		return RunOLTP(buildOLTP(scale, ssd.LC, "tpcc", TPCCSizesGB[4], func(c *engine.Config) {
			c.DirtyFraction = lambda
		}))
	})
	if err != nil {
		return nil, err
	}
	for i, r := range rs {
		name := fmt.Sprintf("LC (λ=%.0f%%)", lambdas[i]*100)
		tr.Bucket = r.Bucket
		tr.Curves[name] = metrics.MovingAvg(r.Commits.Rate(), 3)
		tr.Order = append(tr.Order, name)
	}
	return tr, nil
}

// IOTrafficResult is Figure 8: read/write bandwidth over time for the
// disks and the SSD.
type IOTrafficResult struct {
	Bucket                                         time.Duration
	DiskReadMB, DiskWriteMB, SSDReadMB, SSDWriteMB []float64
}

// Fig8 reproduces Figure 8: I/O traffic to the disks and the SSD during a
// DW run on the TPC-E 20K-customer database.
func Fig8(scale Scale) (*IOTrafficResult, error) {
	r, err := RunOLTP(buildOLTP(scale, ssd.DW, "tpce", TPCESizesGB[20], nil))
	if err != nil {
		return nil, err
	}
	return &IOTrafficResult{
		Bucket:      r.Bucket,
		DiskReadMB:  MBps(r.DiskRead),
		DiskWriteMB: MBps(r.DiskWrite),
		SSDReadMB:   MBps(r.SSDRead),
		SSDWriteMB:  MBps(r.SSDWrite),
	}, nil
}

// Fig9 reproduces Figure 9: the effect of the checkpoint interval (40
// minutes vs 5 hours) on DW and LC over the TPC-E 20K-customer database,
// run for 13 hours. For the 5-hour interval LC's λ is raised from 1% to
// 50%, as in the paper.
func Fig9(scale Scale) ([]*TimelineResult, error) {
	designs := []ssd.Design{ssd.DW, ssd.LC}
	intervals := []struct {
		name   string
		mins   float64
		lambda float64
	}{
		{"40 mins", 40, 0.01},
		{"5 hours", 300, 0.5},
	}
	rs, err := RunGrid(len(designs)*len(intervals), func(i int) (*OLTPResult, error) {
		iv := intervals[i%len(intervals)]
		run := buildOLTP(scale, designs[i/len(intervals)], "tpce", TPCESizesGB[20], func(c *engine.Config) {
			c.CheckpointInterval = scale.Minutes(iv.mins)
			c.DirtyFraction = iv.lambda
		})
		run.Duration = scale.Hours(13)
		return RunOLTP(run)
	})
	if err != nil {
		return nil, err
	}
	var out []*TimelineResult
	for di, design := range designs {
		tr := &TimelineResult{Title: fmt.Sprintf("(%s) checkpoint interval", design), Curves: map[string][]float64{}}
		for ii, iv := range intervals {
			r := rs[di*len(intervals)+ii]
			tr.Bucket = r.Bucket
			tr.Curves[iv.name] = metrics.MovingAvg(r.Commits.Rate(), 3)
			tr.Order = append(tr.Order, iv.name)
		}
		out = append(out, tr)
	}
	return out, nil
}

// CWResult quantifies §4.1.1: CW against DW and LC on TPC-E 20K.
type CWResult struct {
	CWTPS, DWTPS, LCTPS        float64
	SlowerThanDW, SlowerThanLC float64 // fractions, paper: 21.6% and 23.3%
}

// RunCW measures the clean-write design the paper drops after §4.1.1.
func RunCW(scale Scale) (*CWResult, error) {
	designs := []ssd.Design{ssd.CW, ssd.DW, ssd.LC}
	rs, err := RunGrid(len(designs), func(i int) (*OLTPResult, error) {
		return RunOLTP(buildOLTP(scale, designs[i], "tpce", TPCESizesGB[20], nil))
	})
	if err != nil {
		return nil, err
	}
	tps := map[ssd.Design]float64{}
	for i, d := range designs {
		tps[d] = rs[i].FinalTPS
	}
	res := &CWResult{CWTPS: tps[ssd.CW], DWTPS: tps[ssd.DW], LCTPS: tps[ssd.LC]}
	if res.DWTPS > 0 {
		res.SlowerThanDW = 1 - res.CWTPS/res.DWTPS
	}
	if res.LCTPS > 0 {
		res.SlowerThanLC = 1 - res.CWTPS/res.LCTPS
	}
	return res, nil
}

// TACWasteRow reports §2.5's wasted-space measurement for one database.
type TACWasteRow struct {
	Label        string
	InvalidPages int
	WastedGB     float64 // scaled back to paper-equivalent GB
}

// RunTACWaste measures the SSD space TAC wastes on logically-invalidated
// pages for the three TPC-C databases (paper: ~7.4/10.4/8.9 GB of 140 GB).
func RunTACWaste(scale Scale) ([]TACWasteRow, error) {
	warehouses := []int{1, 2, 4}
	rs, err := RunGrid(len(warehouses), func(i int) (*OLTPResult, error) {
		return RunOLTP(buildOLTP(scale, ssd.TAC, "tpcc", TPCCSizesGB[warehouses[i]], nil))
	})
	if err != nil {
		return nil, err
	}
	var rows []TACWasteRow
	for i, wh := range warehouses {
		rows = append(rows, TACWasteRow{
			Label:        fmt.Sprintf("%dK warehouses", wh),
			InvalidPages: rs[i].SSDInvalid,
			WastedGB:     float64(rs[i].SSDInvalid) * PageBytes * float64(scale.Divisor) / (1 << 30),
		})
	}
	return rows, nil
}

// ClassifyResult compares the two sequential/random classifiers of §2.2.
type ClassifyResult struct {
	ReadAheadAccuracy float64 // paper: ~82%
	DistanceAccuracy  float64 // paper: ~51%
}

// RunClassify measures how accurately each classifier identifies the truly
// sequential reads of concurrent scan streams interleaved with random
// probes — the interleaving is what breaks the 64-page distance heuristic.
func RunClassify(scale Scale) (*ClassifyResult, error) {
	kinds := []engine.ClassifierKind{engine.ClassifyReadAhead, engine.ClassifyDistance}
	accs, err := RunGrid(len(kinds), func(i int) (float64, error) {
		kind := kinds[i]
		cfg := scale.Config(ssd.DW, 45)
		cfg.Classifier = kind
		// Model per-request interleaving of the paper's multi-user setting:
		// page-granular requests, with each range scan re-triggering the
		// read-ahead ramp.
		cfg.ReadAhead = 1
		cfg.ReadAheadRamp = 8
		cfg.ReadExpansion = -1 // warm-up expansion would distort the sample
		env := sim.NewEnv()
		e := engine.New(env, cfg)
		if err := e.FormatDB(); err != nil {
			return 0, err
		}
		// Two interleaved streams of moderate range scans (44 pages each,
		// so the 8-page ramp is a meaningful share, as in a real system's
		// short range scans)...
		const scanLen = 44
		for sstream := 0; sstream < 2; sstream++ {
			start := int64(sstream) * cfg.DBPages / 2
			limit := start + cfg.DBPages/2 - scanLen
			env.Go("scanner", func(p *sim.Proc) {
				pos := start
				for {
					if err := e.Scan(p, pageID(pos), scanLen); err != nil {
						panic(err.Error())
					}
					pos += scanLen
					if pos >= limit {
						pos = start
					}
				}
			})
		}
		// ...plus random probes.
		for w := 0; w < 8; w++ {
			w := w
			env.Go("prober", func(p *sim.Proc) {
				rng := uint64(77 + w)
				for {
					rng = rng*6364136223846793005 + 1442695040888963407
					if _, err := e.Get(p, pageID(int64(rng>>33)%cfg.DBPages)); err != nil {
						panic(err.Error())
					}
				}
			})
		}
		// Device speeds do not scale with the divisor, so sample for an
		// absolute window long enough for many scans at any scale.
		env.Run(2 * time.Second)
		e.StopBackground()
		s := e.Stats()
		acc := 0.0
		if totalSeq := s.TruthSeqLabelSeq + s.TruthSeqLabelRand; totalSeq > 0 {
			acc = float64(s.TruthSeqLabelSeq) / float64(totalSeq)
		}
		env.Shutdown()
		return acc, nil
	})
	if err != nil {
		return nil, err
	}
	return &ClassifyResult{ReadAheadAccuracy: accs[0], DistanceAccuracy: accs[1]}, nil
}

// Table1Result holds the measured device IOPS (reproducing Table 1).
type Table1Result struct {
	ArrayRandRead, ArraySeqRead, ArrayRandWrite, ArraySeqWrite float64
	SSDRandRead, SSDSeqRead, SSDRandWrite, SSDSeqWrite         float64
}

// RunTable1 measures the device models' sustainable 8KB IOPS, as Iometer
// measured the paper's hardware for Table 1.
func RunTable1() *Table1Result {
	res := &Table1Result{}
	res.ArrayRandRead = measureArrayIOPS(false, true)
	res.ArraySeqRead = measureArrayIOPS(false, false)
	res.ArrayRandWrite = measureArrayIOPS(true, true)
	res.ArraySeqWrite = measureArrayIOPS(true, false)
	res.SSDRandRead = measureSSDIOPS(false, true)
	res.SSDSeqRead = measureSSDIOPS(false, false)
	res.SSDRandWrite = measureSSDIOPS(true, true)
	res.SSDSeqWrite = measureSSDIOPS(true, false)
	return res
}

func measureSSDIOPS(write, random bool) float64 {
	env := sim.NewEnv()
	const capacity = 1 << 18
	dev := device.NewSSD(env, device.PaperSSDProfile(), capacity)
	workers := 4
	if !random {
		workers = 1 // interleaved streams would defeat sequential detection
	}
	return measureDevIOPS(env, dev, capacity, write, random, workers)
}

func measureArrayIOPS(write, random bool) float64 {
	env := sim.NewEnv()
	const capacity = 1 << 18
	arr := device.NewArray(env, device.PaperHDDProfile(), device.PaperArrayDisks, 64, capacity)
	if random {
		return measureDevIOPS(env, arr, capacity, write, true, device.PaperArrayDisks*16)
	}
	// Sequential: one streaming worker per disk, each walking its own
	// stripes.
	window := time.Second
	ops := 0
	buf := [][]byte{make([]byte, 64)}
	for d := 0; d < device.PaperArrayDisks; d++ {
		d := d
		env.Go("seq", func(p *sim.Proc) {
			unit := int64(64)
			pos := int64(d) * unit
			for {
				var err error
				if write {
					err = arr.Write(p, device.PageNum(pos), buf)
				} else {
					err = arr.Read(p, device.PageNum(pos), buf)
				}
				if err != nil {
					panic(err.Error())
				}
				if p.Now() > window {
					return
				}
				ops++
				pos++
				if pos%unit == 0 {
					pos += unit * (device.PaperArrayDisks - 1)
					if pos >= capacity {
						pos = int64(d) * unit
					}
				}
			}
		})
	}
	env.Run(-1)
	return float64(ops) / window.Seconds()
}

func measureDevIOPS(env *sim.Env, dev device.Device, capacity int64, write, random bool, workers int) float64 {
	window := time.Second
	ops := 0
	for w := 0; w < workers; w++ {
		w := w
		env.Go("io", func(p *sim.Proc) {
			rng := uint64(31 + w)
			pos := int64(w) * 911 % capacity
			buf := [][]byte{make([]byte, 64)}
			for {
				var pg int64
				if random {
					rng = rng*6364136223846793005 + 1442695040888963407
					pg = int64(rng>>33) % capacity
				} else {
					pg = pos
					pos = (pos + 1) % capacity
				}
				var err error
				if write {
					err = dev.Write(p, device.PageNum(pg), buf)
				} else {
					err = dev.Read(p, device.PageNum(pg), buf)
				}
				if err != nil {
					panic(err.Error())
				}
				if p.Now() > window {
					return
				}
				ops++
			}
		})
	}
	env.Run(-1)
	return float64(ops) / window.Seconds()
}

// pageID narrows an int64 to the page id type without importing page in
// every call site.
func pageID(v int64) pid { return pid(v) }
