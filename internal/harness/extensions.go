package harness

import (
	"fmt"
	"io"
	"math/rand"
	"time"

	"turbobp/internal/device"
	"turbobp/internal/engine"
	"turbobp/internal/page"
	"turbobp/internal/sim"
	"turbobp/internal/ssd"
)

// This file holds the experiments beyond the paper's published artifacts:
// the two §6 future-work directions (warm restart and mid-range SSDs) and
// ablations of the §3.3 design choices that DESIGN.md calls out.

// MidrangeRow is one SSD-grade data point of the §6 claim that "mid-range
// SSDs may provide similar performance benefits ... if the disk subsystem
// is the bottleneck".
type MidrangeRow struct {
	Grade    string
	IOPSFrac float64 // fraction of the Fusion ioDrive's IOPS
	TPS      float64
	Speedup  float64 // over noSSD
}

// RunMidrange runs TPC-E 20K under DW with progressively slower SSDs.
func RunMidrange(scale Scale) ([]MidrangeRow, error) {
	grades := []MidrangeRow{
		{Grade: "enterprise (ioDrive)", IOPSFrac: 1.0},
		{Grade: "mid-range", IOPSFrac: 0.5},
		{Grade: "entry", IOPSFrac: 0.25},
		{Grade: "low-end", IOPSFrac: 0.125},
	}
	// Cell 0 is the noSSD baseline; cells 1..n are the SSD grades.
	rs, err := RunGrid(1+len(grades), func(i int) (*OLTPResult, error) {
		if i == 0 {
			return RunOLTP(buildOLTP(scale, ssd.NoSSD, "tpce", TPCESizesGB[20], nil))
		}
		frac := grades[i-1].IOPSFrac
		return RunOLTP(buildOLTP(scale, ssd.DW, "tpce", TPCESizesGB[20], func(c *engine.Config) {
			c.SSDProfile = device.ProfileFromIOPS(
				device.SSDRandReadIOPS*frac,
				device.SSDSeqReadIOPS*frac,
				device.SSDRandWriteIOPS*frac,
				device.SSDSeqWriteIOPS*frac,
			)
		}))
	})
	if err != nil {
		return nil, err
	}
	base := rs[0]
	for i := range grades {
		grades[i].TPS = rs[i+1].FinalTPS
		if base.FinalTPS > 0 {
			grades[i].Speedup = rs[i+1].FinalTPS / base.FinalTPS
		}
	}
	return grades, nil
}

// PrintMidrange renders the SSD-grade sweep.
func PrintMidrange(w io.Writer, rows []MidrangeRow) {
	fmt.Fprintln(w, "Mid-range SSD sweep (§6): DW on TPC-E 20K, SSD IOPS scaled down")
	fmt.Fprintf(w, "%-22s %10s %12s %9s\n", "SSD grade", "IOPS", "tx/s", "speedup")
	for _, r := range rows {
		fmt.Fprintf(w, "%-22s %10.0f %12.2f %8.2fX\n",
			r.Grade, device.SSDRandReadIOPS*r.IOPSFrac, r.TPS, r.Speedup)
	}
}

// WarmRestartResult compares post-restart ramp-up with and without the §6
// warm-restart extension.
type WarmRestartResult struct {
	ColdTPS, WarmTPS           float64 // mean tx/s in the first post-restart hour
	ColdSSDHits, WarmSSDHits   int64   // SSD hits in that hour
	ColdRestartS, WarmRestartS float64 // redo pass duration (virtual seconds)
}

// RunWarmRestart runs TPC-E 20K under DW for five hours, checkpoints,
// crashes, recovers (cold vs warm), and measures the first post-restart
// hour.
func RunWarmRestart(scale Scale) (*WarmRestartResult, error) {
	measure := func(warm bool) (tps float64, hits int64, restart float64, err error) {
		run := buildOLTP(scale, ssd.DW, "tpce", TPCESizesGB[20], func(c *engine.Config) {
			c.WarmRestart = warm
		})
		env := sim.NewEnv()
		e := engine.New(env, run.Config)
		if err = e.FormatDB(); err != nil {
			return
		}
		stop := run.Workload.Start(env, e, nil)
		env.Run(scale.Hours(5))
		// Quiesce the clients before crashing: workers exit at their next
		// transaction boundary, so no transaction is in flight when the
		// pool is torn down.
		stop()
		env.Run(env.Now() + scale.Hours(1))
		err = runToCompletion(env, env.Now()+scale.Hours(50), func(p *sim.Proc) error {
			if cerr := e.Checkpoint(p); cerr != nil {
				return cerr
			}
			e.Crash()
			t0 := p.Now()
			if rerr := e.Recover(p); rerr != nil {
				return rerr
			}
			restart = (p.Now() - t0).Seconds()
			return nil
		})
		if err != nil {
			return
		}
		// Fresh client fleet for the post-restart measurement window.
		run.Workload.Seed += 7777
		run.Workload.Start(env, e, nil)
		commitsBefore := e.Stats().Commits
		hitsBefore := e.SSD().Stats().Hits
		start := env.Now()
		env.Run(start + scale.Hours(1))
		e.StopBackground()
		tps = float64(e.Stats().Commits-commitsBefore) / scale.Hours(1).Seconds()
		hits = e.SSD().Stats().Hits - hitsBefore
		env.Shutdown()
		return
	}
	type cell struct {
		tps     float64
		hits    int64
		restart float64
	}
	rs, err := RunGrid(2, func(i int) (cell, error) {
		tps, hits, restart, err := measure(i == 1)
		return cell{tps, hits, restart}, err
	})
	if err != nil {
		return nil, err
	}
	return &WarmRestartResult{
		ColdTPS: rs[0].tps, ColdSSDHits: rs[0].hits, ColdRestartS: rs[0].restart,
		WarmTPS: rs[1].tps, WarmSSDHits: rs[1].hits, WarmRestartS: rs[1].restart,
	}, nil
}

// Print renders the warm-restart comparison.
func (r *WarmRestartResult) Print(w io.Writer) {
	fmt.Fprintln(w, "Warm restart (§6 extension): TPC-E 20K DW, crash after 5 hours + checkpoint")
	fmt.Fprintf(w, "%-14s %14s %14s %16s\n", "restart mode", "tx/s (1st hr)", "SSD hits", "redo time")
	fmt.Fprintf(w, "%-14s %14.2f %14d %15.2fs\n", "cold (paper)", r.ColdTPS, r.ColdSSDHits, r.ColdRestartS)
	fmt.Fprintf(w, "%-14s %14.2f %14d %15.2fs\n", "warm", r.WarmTPS, r.WarmSSDHits, r.WarmRestartS)
	if r.ColdTPS > 0 {
		fmt.Fprintf(w, "warm/cold first-hour throughput: %.2fX\n", r.WarmTPS/r.ColdTPS)
	}
}

// AblationRow is one configuration of an ablation sweep.
type AblationRow struct {
	Name   string
	TPS    float64
	Detail string
}

// RunAblations sweeps the §3.3 optimization knobs one at a time on TPC-C
// 2K under LC (the configuration most sensitive to them) and reports
// final-hour throughput against the paper-default configuration.
func RunAblations(scale Scale) ([]AblationRow, error) {
	type variant struct {
		name   string
		detail string
		mod    func(*engine.Config)
	}
	variants := []variant{
		{"defaults", "Table 2 settings", nil},
		{"no aggressive fill", "τ=0: only random pages ever admitted", func(c *engine.Config) {
			c.FillThreshold = 0.001
		}},
		{"no group cleaning", "α=1: the LC cleaner writes single pages", func(c *engine.Config) {
			c.GroupClean = 1
		}},
		{"tight throttle", "μ=4: SSD queue capped hard", func(c *engine.Config) {
			c.Throttle = 4
		}},
		{"single partition", "N=1: one shard for the whole SSD", func(c *engine.Config) {
			c.Partitions = 1
		}},
		{"no read expansion", "start-up reads stay single-page", func(c *engine.Config) {
			c.ReadExpansion = -1
		}},
		{"distance classifier", "admission fed by the 64-page heuristic", func(c *engine.Config) {
			c.Classifier = engine.ClassifyDistance
		}},
	}
	rs, err := RunGrid(len(variants), func(i int) (*OLTPResult, error) {
		return RunOLTP(buildOLTP(scale, ssd.LC, "tpcc", TPCCSizesGB[2], variants[i].mod))
	})
	if err != nil {
		return nil, err
	}
	rows := make([]AblationRow, len(variants))
	for i, v := range variants {
		rows[i] = AblationRow{Name: v.name, TPS: rs[i].FinalTPS, Detail: v.detail}
	}
	return rows, nil
}

// PrintAblations renders the ablation sweep.
func PrintAblations(w io.Writer, rows []AblationRow) {
	fmt.Fprintln(w, "Design-choice ablations: LC on TPC-C 2K, one knob changed at a time")
	base := 0.0
	if len(rows) > 0 {
		base = rows[0].TPS
	}
	fmt.Fprintf(w, "%-22s %12s %9s  %s\n", "variant", "tx/s", "vs base", "detail")
	for _, r := range rows {
		rel := 0.0
		if base > 0 {
			rel = r.TPS / base
		}
		fmt.Fprintf(w, "%-22s %12.2f %8.2fX  %s\n", r.Name, r.TPS, rel, r.Detail)
	}
}

// trimmingExperiment quantifies the multi-page I/O optimization (§3.3.3):
// a scan over a table whose pages partially live in the SSD, with and
// without the trimming logic. Without trimming stands in the naive
// "split the request into pieces" strategy the paper found slower.
type TrimmingResult struct {
	DiskOpsTrimmed  int64
	DiskOpsNaive    int64
	ScanSecsTrimmed float64
	ScanSecsNaive   float64
}

// RunTrimming measures the §3.3.3 effect directly at the device level.
func RunTrimming(scale Scale) (*TrimmingResult, error) {
	type cell struct {
		ops  int64
		secs float64
	}
	measure := func(naive bool) (cell, error) {
		cfg := scale.Config(ssd.DW, 45)
		cfg.FillThreshold = 0.001
		cfg.ReadAheadRamp = -1
		if naive {
			// Naive splitting ≈ single-page requests for everything.
			cfg.ReadAhead = 1
		}
		env := sim.NewEnv()
		e := engine.New(env, cfg)
		if err := e.FormatDB(); err != nil {
			return cell{}, err
		}
		region := cfg.DBPages / 4
		var elapsed time.Duration
		err := runToCompletion(env, scale.Hours(100), func(p *sim.Proc) error {
			// Seed the SSD with every third page of the region (random
			// lookups), then overflow the pool.
			rng := rand.New(rand.NewSource(3))
			for i := int64(0); i < region; i += 3 {
				if _, err := e.Get(p, page.ID(i)); err != nil {
					return err
				}
			}
			for i := int64(0); i < int64(cfg.PoolPages)+8; i++ {
				if _, err := e.Get(p, page.ID(region+i%region)); err != nil {
					return err
				}
			}
			_ = rng
			t0 := p.Now()
			if err := e.Scan(p, 0, int(region)); err != nil {
				return err
			}
			elapsed = p.Now() - t0
			return nil
		})
		e.StopBackground()
		ops := e.DiskArray().Stats().Load().ReadOps
		env.Shutdown()
		if err != nil {
			return cell{}, err
		}
		return cell{ops: ops, secs: elapsed.Seconds()}, nil
	}
	rs, err := RunGrid(2, func(i int) (cell, error) {
		return measure(i == 1)
	})
	if err != nil {
		return nil, err
	}
	return &TrimmingResult{
		DiskOpsTrimmed: rs[0].ops, ScanSecsTrimmed: rs[0].secs,
		DiskOpsNaive: rs[1].ops, ScanSecsNaive: rs[1].secs,
	}, nil
}

// Print renders the trimming comparison.
func (r *TrimmingResult) Print(w io.Writer) {
	fmt.Fprintln(w, "Multi-page I/O trimming (§3.3.3): scan over a region 1/3-cached in SSD")
	fmt.Fprintf(w, "%-28s %12s %12s\n", "strategy", "disk reads", "scan time")
	fmt.Fprintf(w, "%-28s %12d %11.2fs\n", "trim edges, one disk I/O", r.DiskOpsTrimmed, r.ScanSecsTrimmed)
	fmt.Fprintf(w, "%-28s %12d %11.2fs\n", "naive per-page splitting", r.DiskOpsNaive, r.ScanSecsNaive)
}

// RestartRow is one configuration of the checkpoint-policy / λ sweep.
type RestartRow struct {
	Policy      string
	Lambda      float64
	CheckpointS float64 // duration of the mid-run checkpoint (virtual s)
	RecoveryS   float64 // crash-recovery duration (virtual s)
	RedoRecords int64
}

// RunRestart quantifies §2.3.3's tradeoff between checkpoint cost and
// restart time: sharp checkpoints are expensive but make recovery fast;
// fuzzy checkpoints are nearly free but leave a redo tail that grows with
// λ (the dirty pages parked on the SSD).
func RunRestart(scale Scale) ([]RestartRow, error) {
	measure := func(fuzzy bool, lambda float64) (RestartRow, error) {
		run := buildOLTP(scale, ssd.LC, "tpcc", TPCCSizesGB[2], func(c *engine.Config) {
			c.DirtyFraction = lambda
			c.FuzzyCheckpoints = fuzzy
		})
		env := sim.NewEnv()
		e := engine.New(env, run.Config)
		if err := e.FormatDB(); err != nil {
			return RestartRow{}, err
		}
		stop := run.Workload.Start(env, e, nil)
		env.Run(scale.Hours(3))
		stop()
		env.Run(env.Now() + scale.Hours(0.5))
		row := RestartRow{Policy: "sharp", Lambda: lambda}
		if fuzzy {
			row.Policy = "fuzzy"
		}
		err := runToCompletion(env, env.Now()+scale.Hours(100), func(p *sim.Proc) error {
			t0 := p.Now()
			if err := e.Checkpoint(p); err != nil {
				return err
			}
			row.CheckpointS = (p.Now() - t0).Seconds()
			e.Crash()
			t1 := p.Now()
			if err := e.Recover(p); err != nil {
				return err
			}
			row.RecoveryS = (p.Now() - t1).Seconds()
			row.RedoRecords = e.Stats().RedoApplied + e.Stats().RedoSkipped
			return nil
		})
		e.StopBackground()
		env.Shutdown()
		if err != nil {
			return RestartRow{}, err
		}
		return row, nil
	}
	lambdas := []float64{0.1, 0.9}
	return RunGrid(2*len(lambdas), func(i int) (RestartRow, error) {
		return measure(i/len(lambdas) == 1, lambdas[i%len(lambdas)])
	})
}

// PrintRestart renders the checkpoint/recovery tradeoff.
func PrintRestart(w io.Writer, rows []RestartRow) {
	fmt.Fprintln(w, "Checkpoint policy vs restart time (§2.3.3): LC on TPC-C 2K")
	fmt.Fprintf(w, "%-8s %6s %14s %12s %12s\n", "policy", "λ", "checkpoint", "recovery", "redo recs")
	for _, r := range rows {
		fmt.Fprintf(w, "%-8s %5.0f%% %13.3fs %11.3fs %12d\n",
			r.Policy, r.Lambda*100, r.CheckpointS, r.RecoveryS, r.RedoRecords)
	}
}
