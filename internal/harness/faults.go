package harness

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"turbobp/internal/engine"
	"turbobp/internal/fault"
	"turbobp/internal/page"
	"turbobp/internal/sim"
	"turbobp/internal/ssd"
	"turbobp/internal/wal"
)

// This file is the `bpesim faults` experiment: a deterministic crash/recover
// matrix over every SSD design and every fault scenario the internal/fault
// layer can inject. Each cell runs a small update workload whose page
// payloads are self-verifying (a per-page counter plus a counter-keyed
// hash), injects one fault scenario, recovers, and checks that no committed
// update was lost and no page decodes to a state the model never produced.
// The configuration is fixed — independent of the -divisor scale — so the
// rendered table is byte-identical across runs and across -parallel worker
// counts; docs/FAILURES.md describes each scenario's expected semantics.

var (
	faultSeedMu sync.Mutex
	faultSeed   uint64 = 0x5EEDFA17
)

// SetFaultSeed sets the seed the fault matrix derives every cell's fault
// schedule from (the -faultseed flag).
func SetFaultSeed(s uint64) {
	faultSeedMu.Lock()
	faultSeed = s
	faultSeedMu.Unlock()
}

// FaultSeed returns the current fault-matrix seed.
func FaultSeed() uint64 {
	faultSeedMu.Lock()
	defer faultSeedMu.Unlock()
	return faultSeed
}

// faultDesigns are the columns of the matrix: every SSD design with a cache.
var faultDesigns = []ssd.Design{ssd.CW, ssd.DW, ssd.LC, ssd.TAC}

// faultScenarios are the rows: the crash-point catalog plus the device-level
// fault scenarios.
var faultScenarios = []string{
	"pre-wal-flush",
	"post-wal-flush",
	"mid-checkpoint",
	"post-checkpoint",
	"mid-lazy-clean",
	"ssd-loss-live",
	"ssd-io-errors",
	"torn-log",
}

// FaultRow is one cell's verdict.
type FaultRow struct {
	Design   ssd.Design
	Scenario string
	Outcome  string // "pass", optionally annotated, or "FAIL: ..."
	Pass     bool
}

// FaultMatrixResult is the rendered pass/fail table.
type FaultMatrixResult struct {
	Seed uint64
	Rows []FaultRow
}

// Print renders the matrix.
func (r *FaultMatrixResult) Print(w io.Writer) {
	fmt.Fprintf(w, "Fault matrix — crash/recover scenarios per design (seed %#x)\n", r.Seed)
	fmt.Fprintf(w, "%-6s %-16s %s\n", "design", "scenario", "outcome")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-6s %-16s %s\n", row.Design, row.Scenario, row.Outcome)
	}
}

// Err returns an error naming the failed cells, or nil if all passed —
// `bpesim faults` exits nonzero through it.
func (r *FaultMatrixResult) Err() error {
	var bad []string
	for _, row := range r.Rows {
		if !row.Pass {
			bad = append(bad, fmt.Sprintf("%s/%s", row.Design, row.Scenario))
		}
	}
	if len(bad) == 0 {
		return nil
	}
	return fmt.Errorf("harness: fault matrix failed: %v", bad)
}

// RunFaultMatrix executes every design × scenario cell on the worker pool.
func RunFaultMatrix() (*FaultMatrixResult, error) {
	seed := FaultSeed()
	n := len(faultDesigns) * len(faultScenarios)
	rows, err := RunGrid(n, func(i int) (FaultRow, error) {
		design := faultDesigns[i/len(faultScenarios)]
		scenario := faultScenarios[i%len(faultScenarios)]
		return runFaultCell(design, scenario, faultMix(seed, uint64(i)+1)), nil
	})
	if err != nil {
		return nil, err
	}
	return &FaultMatrixResult{Seed: seed, Rows: rows}, nil
}

// faultMix is a splitmix64-style hash used both to derive per-cell seeds and
// to key the self-verifying page payloads.
func faultMix(a, b uint64) uint64 {
	z := a*0x9E3779B97F4A7C15 + b*0xBF58476D1CE4E5B9 + 0x94D049BB133111EB
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// faultHotPages is the hot set: pages 0..faultHotPages-1 receive all updates.
const faultHotPages = 256

// faultDriver runs one cell's workload and verification inside a simulation
// process. applied is the model's per-page counter after every update;
// committed snapshots it at each acknowledged commit. After a crash, a page
// must hold a counter the model once produced: exactly applied for durable
// states, or within [committed, applied] when the crash raced the log force.
type faultDriver struct {
	e         *engine.Engine
	inj       *fault.Injector
	rng       uint64
	applied   []uint64
	committed []uint64
	fails     []string
}

func (d *faultDriver) rand() uint64 {
	d.rng += 0x9E3779B97F4A7C15
	z := d.rng
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

func (d *faultDriver) failf(format string, args ...interface{}) {
	if len(d.fails) < 4 {
		d.fails = append(d.fails, fmt.Sprintf(format, args...))
	}
}

// update increments one hot page's counter and rewrites its hash.
func (d *faultDriver) update(p *sim.Proc, tx uint64, pid page.ID) error {
	return d.e.Update(p, tx, pid, func(payload []byte) {
		c := binary.LittleEndian.Uint64(payload[0:8]) + 1
		binary.LittleEndian.PutUint64(payload[0:8], c)
		binary.LittleEndian.PutUint64(payload[8:16], faultMix(uint64(pid), c))
		d.applied[pid] = c
	})
}

// round performs 8 updates, 4 read-only accesses and a commit. The reads
// leave pages clean, which CW and TAC need to cache anything at all (their
// admission paths skip or abort on dirty pages). crashed reports that an
// armed crash point fired inside Commit; the updates may or may not be
// durable depending on the site.
func (d *faultDriver) round(p *sim.Proc) (crashed bool, err error) {
	tx := d.e.Begin()
	for i := 0; i < 12; i++ {
		pid := page.ID(d.rand() % faultHotPages)
		if i%3 == 2 {
			if _, err := d.e.Get(p, pid); err != nil {
				return false, err
			}
			continue
		}
		if err := d.update(p, tx, pid); err != nil {
			return false, err
		}
	}
	err = d.e.Commit(p, tx)
	if err == nil {
		copy(d.committed, d.applied)
		return false, nil
	}
	if errors.Is(err, fault.ErrCrashPoint) {
		return true, nil
	}
	return false, err
}

// rounds runs n fault-free rounds (any crash fires a failure).
func (d *faultDriver) rounds(p *sim.Proc, n int, pause time.Duration) error {
	for r := 0; r < n; r++ {
		crashed, err := d.round(p)
		if err != nil {
			return err
		}
		if crashed {
			return errors.New("unexpected crash point")
		}
		p.Sleep(pause)
	}
	return nil
}

// verify reads every hot page and checks its counter against [lo, hi] and
// its hash against the counter. It then resyncs the model to the observed
// state, so post-recovery rounds continue from what actually survived.
func (d *faultDriver) verify(p *sim.Proc, lo, hi []uint64) error {
	for pid := int64(0); pid < faultHotPages; pid++ {
		f, err := d.e.Get(p, page.ID(pid))
		if err != nil {
			return fmt.Errorf("verify read page %d: %w", pid, err)
		}
		c := binary.LittleEndian.Uint64(f.Pg.Payload[0:8])
		h := binary.LittleEndian.Uint64(f.Pg.Payload[8:16])
		if c < lo[pid] || c > hi[pid] {
			d.failf("page %d: counter %d outside [%d, %d]", pid, c, lo[pid], hi[pid])
		}
		if c > 0 && h != faultMix(uint64(pid), c) {
			d.failf("page %d: hash mismatch at counter %d", pid, c)
		}
		if c == 0 && h != 0 {
			d.failf("page %d: nonzero hash on zero counter", pid)
		}
		d.applied[pid] = c
		d.committed[pid] = c
	}
	return nil
}

// verifyExact checks every page holds exactly the model's applied counter.
func (d *faultDriver) verifyExact(p *sim.Proc) error {
	return d.verify(p, d.applied, d.applied)
}

// crashRecover simulates a power failure and restarts the engine.
func (d *faultDriver) crashRecover(p *sim.Proc) error {
	d.e.Crash()
	return d.e.Recover(p)
}

// runFaultCell builds one engine with one fault schedule and runs one
// scenario to a verdict.
func runFaultCell(design ssd.Design, scenario string, seed uint64) FaultRow {
	row := FaultRow{Design: design, Scenario: scenario}
	inj := fault.New(seed)
	lambda := 0.9 // keep LC's SSD dirty set large: the interesting loss case
	if scenario == "mid-lazy-clean" {
		lambda = 0.05 // wake the cleaner early so the crash site is reached
	}
	cfg := engine.Config{
		Design:        design,
		DBPages:       512,
		PoolPages:     48,
		SSDFrames:     128,
		PayloadSize:   64,
		DirtyFraction: lambda,
		Faults:        inj,
	}
	env := sim.NewEnv()
	e := engine.New(env, cfg)
	if err := e.FormatDB(); err != nil {
		row.Outcome = "FAIL: format: " + err.Error()
		return row
	}
	d := &faultDriver{
		e:         e,
		inj:       inj,
		rng:       seed ^ 0xA5A5A5A5A5A5A5A5,
		applied:   make([]uint64, faultHotPages),
		committed: make([]uint64, faultHotPages),
	}
	var note string
	var scriptErr error
	env.Go("fault-driver", func(p *sim.Proc) {
		note, scriptErr = runFaultScenario(p, d, design, scenario)
		e.StopBackground()
	})
	env.Run(-1)
	env.Shutdown()
	switch {
	case scriptErr != nil:
		row.Outcome = "FAIL: " + scriptErr.Error()
	case len(d.fails) > 0:
		row.Outcome = "FAIL: " + d.fails[0]
		for _, f := range d.fails[1:] {
			row.Outcome += "; " + f
		}
	default:
		row.Outcome = "pass"
		if note != "" {
			row.Outcome += " (" + note + ")"
		}
		row.Pass = true
	}
	return row
}

// runFaultScenario is the per-scenario script. The returned note annotates a
// passing row (deterministic counters only).
func runFaultScenario(p *sim.Proc, d *faultDriver, design ssd.Design, scenario string) (string, error) {
	e, inj := d.e, d.inj
	const pause = 5 * time.Millisecond
	switch scenario {
	case "pre-wal-flush", "post-wal-flush":
		site := fault.SitePreWALFlush
		if scenario == "post-wal-flush" {
			site = fault.SitePostWALFlush
		}
		inj.ArmCrash(site, 10)
		for r := 0; r < 20; r++ {
			crashed, err := d.round(p)
			if err != nil {
				return "", err
			}
			if !crashed {
				p.Sleep(pause)
				continue
			}
			if err := d.crashRecover(p); err != nil {
				return "", err
			}
			if site == fault.SitePostWALFlush {
				// The log force completed: every update of the crashed
				// round is durable even though the commit was never
				// acknowledged.
				if err := d.verifyExact(p); err != nil {
					return "", err
				}
			} else {
				// The crash raced the log force: evictions may have made
				// some of the round's updates durable, but nothing beyond
				// the model's applied state may appear and nothing
				// committed may be missing.
				if err := d.verify(p, d.committed, d.applied); err != nil {
					return "", err
				}
			}
			if err := d.rounds(p, 5, pause); err != nil {
				return "", err
			}
			return "", d.verifyExact(p)
		}
		return "", errors.New("commit crash site never fired")

	case "mid-checkpoint", "post-checkpoint":
		site := fault.SiteMidCheckpoint
		if scenario == "post-checkpoint" {
			site = fault.SitePostCheckpoint
		}
		if err := d.rounds(p, 10, pause); err != nil {
			return "", err
		}
		if err := e.Checkpoint(p); err != nil {
			return "", fmt.Errorf("clean checkpoint: %w", err)
		}
		if err := d.rounds(p, 5, pause); err != nil {
			return "", err
		}
		inj.ArmCrash(site, 1)
		if err := e.Checkpoint(p); !errors.Is(err, fault.ErrCrashPoint) {
			return "", fmt.Errorf("checkpoint crash site did not fire (err=%v)", err)
		}
		if err := d.crashRecover(p); err != nil {
			return "", err
		}
		// Every round was committed, so recovery must restore the exact
		// applied state whether it replays from the old checkpoint
		// (mid-checkpoint) or the brand-new one (post-checkpoint).
		if err := d.verifyExact(p); err != nil {
			return "", err
		}
		if err := d.rounds(p, 5, pause); err != nil {
			return "", err
		}
		return "", d.verifyExact(p)

	case "mid-lazy-clean":
		inj.ArmCrash(fault.SiteMidLazyClean, 1)
		fired := false
		for r := 0; r < 40; r++ {
			crashed, err := d.round(p)
			if err != nil {
				return "", err
			}
			if crashed {
				return "", errors.New("commit hit the cleaner crash site")
			}
			p.Sleep(25 * time.Millisecond) // cleaner airtime
			if inj.Fired() {
				fired = true
				break
			}
		}
		if design == ssd.LC && !fired {
			return "", errors.New("LC cleaner crash site never fired")
		}
		// Crash with the SSD holding uniquely-dirty pages mid-clean (LC) or
		// at an ordinary instant (designs without a cleaner).
		if err := d.crashRecover(p); err != nil {
			return "", err
		}
		if err := d.verifyExact(p); err != nil {
			return "", err
		}
		if err := d.rounds(p, 5, pause); err != nil {
			return "", err
		}
		if err := d.verifyExact(p); err != nil {
			return "", err
		}
		if fired {
			return "fired", nil
		}
		return "site unreached: no cleaner", nil

	case "ssd-loss-live":
		// CW and TAC touch the SSD far less often than DW/LC under this
		// update-heavy workload, so the loss must come early to land inside
		// the run for every design.
		inj.FailDeviceAfter("ssd", 30+int(inj.Rand()%20))
		for r := 0; r < 60; r++ {
			crashed, err := d.round(p)
			if err != nil {
				return "", err
			}
			if crashed {
				return "", errors.New("unexpected crash point")
			}
			p.Sleep(pause)
		}
		st := e.Stats()
		if st.SSDLosses != 1 {
			return "", fmt.Errorf("SSDLosses = %d, want 1", st.SSDLosses)
		}
		if design == ssd.LC && st.SSDLossRedo == 0 {
			return "", errors.New("LC lost its SSD without any WAL redo")
		}
		if design != ssd.LC && st.SSDLossRedo != 0 {
			return "", fmt.Errorf("%s redid %d pages after SSD loss, want 0", design, st.SSDLossRedo)
		}
		// The loss happened live: not a single applied update may be lost.
		if err := d.verifyExact(p); err != nil {
			return "", err
		}
		return fmt.Sprintf("redo=%d", st.SSDLossRedo), nil

	case "ssd-io-errors":
		// Read-error indices are spaced apart: the manager retries a failed
		// read exactly once (at the next read index), so back-to-back
		// injected read errors on a dirty LC frame would — correctly —
		// surface as a double device failure rather than be absorbed.
		for k := 0; k < 6; k++ {
			inj.ErrorRead("ssd", k*10+int(inj.Rand()%8))
			inj.ErrorWrite("ssd", int(inj.Rand()%60))
		}
		if err := d.rounds(p, 40, pause); err != nil {
			return "", err
		}
		st := e.SSD().Stats()
		if st.ReadErrors+st.WriteErrors == 0 {
			return "", errors.New("no injected SSD I/O errors were observed")
		}
		if err := d.verifyExact(p); err != nil {
			return "", err
		}
		return fmt.Sprintf("errors=%d", st.ReadErrors+st.WriteErrors), nil

	case "torn-log":
		if err := d.rounds(p, 15, pause); err != nil {
			return "", err
		}
		// Five more updates, never committed: their records are pending
		// (or durable, if an eviction forced the log meanwhile).
		tx := e.Begin()
		for i := 0; i < 5; i++ {
			pid := page.ID(d.rand() % faultHotPages)
			if err := d.update(p, tx, pid); err != nil {
				return "", err
			}
		}
		// Reconstruct the on-device log image and tear its tail mid-record,
		// as a power cut during the last log write would.
		recs := append(append([]wal.Record(nil), e.Log().Durable()...), e.Log().PendingRecords()...)
		stream := wal.EncodeStream(recs)
		if len(stream) < 20 {
			return "", errors.New("log stream too short to tear")
		}
		torn := stream[:len(stream)-10]
		e.Crash()
		if err := e.Log().ReadDurable(bytes.NewReader(torn)); err != nil {
			return "", fmt.Errorf("torn log replay: %w", err)
		}
		if err := e.Recover(p); err != nil {
			return "", err
		}
		// The torn record is dropped cleanly; everything committed must
		// survive, everything recovered must be a state the model produced.
		if err := d.verify(p, d.committed, d.applied); err != nil {
			return "", err
		}
		if err := d.rounds(p, 5, pause); err != nil {
			return "", err
		}
		return "", d.verifyExact(p)
	}
	return "", fmt.Errorf("unknown scenario %q", scenario)
}
