package harness

import (
	"bytes"
	"reflect"
	"testing"
)

// The full matrix must pass at the default seed: every design survives every
// scenario with zero lost committed updates.
func TestFaultMatrixDefaultSeed(t *testing.T) {
	r, err := RunFaultMatrix()
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Err(); err != nil {
		for _, row := range r.Rows {
			if !row.Pass {
				t.Errorf("%s/%s: %s", row.Design, row.Scenario, row.Outcome)
			}
		}
	}
	if want := len(faultDesigns) * len(faultScenarios); len(r.Rows) != want {
		t.Errorf("matrix has %d rows, want %d", len(r.Rows), want)
	}
}

// The matrix is seed-robust: the fault schedules move around, the
// guarantees do not.
func TestFaultMatrixSeedSweep(t *testing.T) {
	defer SetFaultSeed(0x5EEDFA17)
	for _, seed := range []uint64{0, 1, 42, 0xDEADBEEF} {
		SetFaultSeed(seed)
		r, err := RunFaultMatrix()
		if err != nil {
			t.Fatal(err)
		}
		if err := r.Err(); err != nil {
			t.Errorf("seed %#x: %v", seed, err)
		}
	}
}

// Two runs at the same seed render byte-identical tables (the determinism
// contract the CI cmp step relies on).
func TestFaultMatrixDeterministic(t *testing.T) {
	run := func() (*FaultMatrixResult, []byte) {
		r, err := RunFaultMatrix()
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		r.Print(&buf)
		return r, buf.Bytes()
	}
	r1, out1 := run()
	r2, out2 := run()
	if !reflect.DeepEqual(r1.Rows, r2.Rows) {
		t.Error("matrix rows differ between identical runs")
	}
	if !bytes.Equal(out1, out2) {
		t.Error("rendered output differs between identical runs")
	}
}
