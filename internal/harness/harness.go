// Package harness reproduces the paper's evaluation: one experiment per
// table and figure, each producing the rows or series the paper reports.
//
// Everything is scaled by a single divisor (see Scale): database, memory
// pool and SSD sizes shrink together with the wall-clock "hour", so the
// ratios that govern every crossover in the paper — working set : memory
// pool : SSD pool, and fill time : run time — are preserved while a full
// 10-hour experiment completes in seconds of real time.
package harness

import (
	"time"

	"turbobp/internal/device"
	"turbobp/internal/engine"
	"turbobp/internal/metrics"
	"turbobp/internal/sim"
	"turbobp/internal/ssd"
	"turbobp/internal/workload"
)

// PageBytes is the accounted page size (the paper's 8 KB pages).
const PageBytes = 8192

// Scale maps paper-sized quantities onto simulation-sized ones.
type Scale struct {
	// Divisor shrinks bytes and seconds alike: 1 reproduces the paper's
	// full sizes (hours of virtual time, tens of millions of pages), 1024
	// is the default for the command-line harness, 8192 for benchmarks.
	Divisor int64
}

// Common scales.
var (
	Paper   = Scale{Divisor: 1}
	Default = Scale{Divisor: 1024}
	Bench   = Scale{Divisor: 8192}
)

// Pages converts a paper-scale size in GB to scaled pages.
func (s Scale) Pages(gb float64) int64 {
	p := int64(gb * float64(1<<30) / PageBytes / float64(s.Divisor))
	if p < 1 {
		p = 1
	}
	return p
}

// Hours converts paper-scale hours to scaled virtual time.
func (s Scale) Hours(h float64) time.Duration {
	return time.Duration(h * 3600 / float64(s.Divisor) * float64(time.Second))
}

// Minutes converts paper-scale minutes to scaled virtual time.
func (s Scale) Minutes(m float64) time.Duration { return s.Hours(m / 60) }

// Config builds the engine configuration for one design over a database of
// dbGB gigabytes, with the paper's 20 GB DRAM pool and 140 GB SSD pool.
func (s Scale) Config(design ssd.Design, dbGB float64) engine.Config {
	return engine.Config{
		Design:      design,
		Policy:      PolicyKind(),
		DBPages:     s.Pages(dbGB),
		PoolPages:   int(s.Pages(20)),
		SSDFrames:   int(s.Pages(140)),
		PayloadSize: 64,
	}
}

// Database sizes used in the paper's evaluation (§4.1.2).
var (
	// TPCCSizesGB maps warehouses (in thousands) to database GB.
	TPCCSizesGB = map[int]float64{1: 100, 2: 200, 4: 400}
	// TPCESizesGB maps customers (in thousands) to database GB.
	TPCESizesGB = map[int]float64{10: 115, 20: 230, 40: 415}
	// TPCHSizesGB maps scale factor to database GB.
	TPCHSizesGB = map[int]float64{30: 45, 100: 160}
)

// OLTPRun describes one OLTP measurement.
type OLTPRun struct {
	Scale    Scale
	Design   ssd.Design
	Workload workload.OLTP
	Config   engine.Config
	Duration time.Duration // total run length (virtual)
	Bucket   time.Duration // series bucket (the paper uses 6 minutes)
}

// OLTPResult is what one OLTP run yields.
type OLTPResult struct {
	Design    ssd.Design
	Bucket    time.Duration
	Commits   *metrics.Series // committed transactions per bucket
	DiskRead  *metrics.Series // disk pages read per bucket
	DiskWrite *metrics.Series
	SSDRead   *metrics.Series // SSD pages read per bucket
	SSDWrite  *metrics.Series

	FinalTPS   float64 // mean committed tx/s over the final "hour"
	SSDHitRate float64 // SSD hits / (hits+misses)
	Events     uint64  // logical simulation events dispatched during the run
	Engine     engine.Stats
	SSD        ssd.Stats
	SSDInvalid int // occupied-but-invalid frames at end (TAC waste)
	DirtySSD   int
}

// RunOLTP executes one measurement: build the engine, format the database,
// run the workload for Duration, and collect series and counters. With a
// shard width set (SetShards > 0) the run executes on the sharded
// multi-core kernel instead — same measurement, page-partitioned model —
// except for fault-injected configurations, whose device fault plans are
// defined against the single-world device set.
func RunOLTP(run OLTPRun) (*OLTPResult, error) {
	if ShardWidth() > 0 && run.Config.Faults == nil {
		return shardedOLTP(run)
	}
	env := sim.NewEnv()
	e := engine.New(env, run.Config)
	if err := e.FormatDB(); err != nil {
		return nil, err
	}
	res := &OLTPResult{
		Design:    run.Design,
		Bucket:    run.Bucket,
		Commits:   metrics.NewSeries(run.Bucket),
		DiskRead:  metrics.NewSeries(run.Bucket),
		DiskWrite: metrics.NewSeries(run.Bucket),
		SSDRead:   metrics.NewSeries(run.Bucket),
		SSDWrite:  metrics.NewSeries(run.Bucket),
	}
	run.Workload.Start(env, e, func(t time.Duration) {
		res.Commits.Add(t, 1)
	})
	startSampler(env, e, run.Bucket, res)
	env.Run(run.Duration)
	e.StopBackground()

	res.Events = env.Dispatched()
	res.Engine = e.Stats()
	res.SSD = e.SSD().Stats()
	res.SSDInvalid = e.SSD().InvalidCount()
	res.DirtySSD = e.SSD().DirtyCount()
	if total := res.SSD.Hits + res.SSD.Misses; total > 0 {
		res.SSDHitRate = float64(res.SSD.Hits) / float64(total)
	}
	res.FinalTPS = finalRate(res.Commits, run.Scale.Hours(1))
	env.Shutdown()
	return res, nil
}

// finalRate averages a series' per-second rate over its last window (the
// paper's "average throughput achieved over the last hour of execution").
func finalRate(s *metrics.Series, window time.Duration) float64 {
	n := int(window / s.Width())
	if n < 1 {
		n = 1
	}
	return metrics.Mean(metrics.Tail(s.Rate(), n))
}

// startSampler records per-bucket device page transfer deltas.
func startSampler(env *sim.Env, e *engine.Engine, bucket time.Duration, res *OLTPResult) {
	env.Go("sampler", func(p *sim.Proc) {
		prevDisk := e.DiskArray().Stats().Load()
		var prevSSD device.Snapshot
		for {
			p.Sleep(bucket)
			t := p.Now() - 1 // attribute to the bucket that just ended
			d := e.DiskArray().Stats().Load()
			dd := d.Sub(prevDisk)
			prevDisk = d
			res.DiskRead.Add(t, float64(dd.ReadPages))
			res.DiskWrite.Add(t, float64(dd.WritePages))
			if dev := e.SSDDevice(); dev != nil {
				sd := dev.Stats().Load()
				ds := sd.Sub(prevSSD)
				prevSSD = sd
				res.SSDRead.Add(t, float64(ds.ReadPages))
				res.SSDWrite.Add(t, float64(ds.WritePages))
			}
		}
	})
}

// MBps converts a pages-per-bucket series to MB/s (8 KB accounted pages).
func MBps(s *metrics.Series) []float64 {
	rates := s.Rate()
	out := make([]float64, len(rates))
	for i, r := range rates {
		out[i] = r * PageBytes / (1 << 20)
	}
	return out
}

// buildOLTP assembles an OLTPRun for a benchmark kind at a given design.
func buildOLTP(scale Scale, design ssd.Design, kind string, dbGB float64, mod func(*engine.Config)) OLTPRun {
	cfg := scale.Config(design, dbGB)
	var wl workload.OLTP
	switch kind {
	case "tpcc":
		wl = workload.TPCC(cfg.DBPages)
		cfg.DirtyFraction = 0.5 // λ = 50% for TPC-C (Table 2)
		// Checkpointing is effectively turned off for TPC-C (§4.1.2).
	case "tpce":
		wl = workload.TPCE(cfg.DBPages)
		cfg.DirtyFraction = 0.01                   // λ = 1% (Table 2)
		cfg.CheckpointInterval = scale.Minutes(40) // recovery interval (§4.1.2)
	default:
		panic("harness: unknown workload " + kind)
	}
	if mod != nil {
		mod(&cfg)
	}
	return OLTPRun{
		Scale:    scale,
		Design:   design,
		Workload: wl,
		Config:   cfg,
		Duration: scale.Hours(10),
		Bucket:   scale.Minutes(6),
	}
}
