package harness

import (
	"bytes"
	"encoding/csv"
	"io"
	"math"
	"strings"
	"testing"
	"time"

	"turbobp/internal/engine"
	"turbobp/internal/sim"
	"turbobp/internal/ssd"
)

// aliases keep the Table 2 test readable.
var (
	simNewEnv = sim.NewEnv
	engineNew = engine.New
)

// tiny is an aggressive scale for fast harness unit tests.
var tiny = Scale{Divisor: 32768}

func TestScaleConversions(t *testing.T) {
	s := Scale{Divisor: 1024}
	if got := s.Pages(20); got != 2560 {
		t.Errorf("Pages(20GB) = %d, want 2560", got)
	}
	if got := s.Pages(140); got != 17920 {
		t.Errorf("Pages(140GB) = %d, want 17920", got)
	}
	if got := s.Hours(1); got != 3600*time.Second/1024 {
		t.Errorf("Hours(1) = %v", got)
	}
	if got := s.Minutes(60); got != s.Hours(1) {
		t.Errorf("Minutes(60) = %v != Hours(1)", got)
	}
	if Paper.Pages(20) != 2621440 {
		t.Errorf("paper-scale pool pages = %d", Paper.Pages(20))
	}
}

func TestScalePagesNeverZero(t *testing.T) {
	s := Scale{Divisor: 1 << 40}
	if s.Pages(0.001) < 1 {
		t.Error("Pages returned < 1")
	}
}

func TestConfigGeometryRatios(t *testing.T) {
	cfg := Default.Config(ssd.LC, 200)
	if cfg.DBPages != 10*int64(cfg.PoolPages) {
		t.Errorf("200GB DB / 20GB pool ratio broken: %d vs %d", cfg.DBPages, cfg.PoolPages)
	}
	if cfg.SSDFrames != 7*cfg.PoolPages {
		t.Errorf("140GB SSD / 20GB pool ratio broken: %d vs %d", cfg.SSDFrames, cfg.PoolPages)
	}
}

func TestPaperSizeTables(t *testing.T) {
	if TPCCSizesGB[2] != 200 || TPCESizesGB[20] != 230 || TPCHSizesGB[100] != 160 {
		t.Error("paper database sizes drifted")
	}
}

func TestRunOLTPProducesSeries(t *testing.T) {
	run := buildOLTP(tiny, ssd.LC, "tpcc", 100, nil)
	r, err := RunOLTP(run)
	if err != nil {
		t.Fatal(err)
	}
	if r.Engine.Commits == 0 {
		t.Fatal("no commits")
	}
	if r.Commits.Len() == 0 {
		t.Error("empty commit series")
	}
	if r.FinalTPS <= 0 {
		t.Error("no final throughput")
	}
	if r.SSDHitRate < 0 || r.SSDHitRate > 1 {
		t.Errorf("hit rate = %v", r.SSDHitRate)
	}
	var pages float64
	for _, v := range r.DiskRead.Values() {
		pages += v
	}
	if pages == 0 {
		t.Error("sampler recorded no disk reads")
	}
}

func TestBuildOLTPAppliesPaperSettings(t *testing.T) {
	c := buildOLTP(tiny, ssd.LC, "tpcc", 100, nil)
	if c.Config.DirtyFraction != 0.5 {
		t.Errorf("TPC-C λ = %v, want 0.5", c.Config.DirtyFraction)
	}
	if c.Config.CheckpointInterval != 0 {
		t.Error("TPC-C checkpointing should be off")
	}
	e := buildOLTP(tiny, ssd.LC, "tpce", 115, nil)
	if e.Config.DirtyFraction != 0.01 {
		t.Errorf("TPC-E λ = %v, want 0.01", e.Config.DirtyFraction)
	}
	if e.Config.CheckpointInterval != tiny.Minutes(40) {
		t.Errorf("TPC-E checkpoint interval = %v", e.Config.CheckpointInterval)
	}
}

func TestFinalRateUsesTail(t *testing.T) {
	run := buildOLTP(tiny, ssd.NoSSD, "tpcc", 100, nil)
	r, err := RunOLTP(run)
	if err != nil {
		t.Fatal(err)
	}
	// FinalTPS must equal the mean rate of the last hour's buckets.
	n := int(tiny.Hours(1) / r.Bucket)
	if n < 1 {
		n = 1
	}
	rates := r.Commits.Rate()
	if len(rates) < n {
		n = len(rates)
	}
	var sum float64
	for _, v := range rates[len(rates)-n:] {
		sum += v
	}
	want := sum / float64(n)
	if math.Abs(want-r.FinalTPS) > 1e-9 {
		t.Errorf("FinalTPS = %v, want %v", r.FinalTPS, want)
	}
}

func TestRunTable1MatchesCalibration(t *testing.T) {
	r := RunTable1()
	checks := []struct {
		name      string
		got, want float64
	}{
		{"array rand read", r.ArrayRandRead, 1015},
		{"array seq read", r.ArraySeqRead, 26370},
		{"array rand write", r.ArrayRandWrite, 895},
		{"array seq write", r.ArraySeqWrite, 9463},
		{"ssd rand read", r.SSDRandRead, 12182},
		{"ssd seq read", r.SSDSeqRead, 15980},
		{"ssd rand write", r.SSDRandWrite, 12374},
		{"ssd seq write", r.SSDSeqWrite, 14965},
	}
	for _, c := range checks {
		if math.Abs(c.got-c.want)/c.want > 0.05 {
			t.Errorf("%s = %.0f, want %.0f ±5%%", c.name, c.got, c.want)
		}
	}
}

func TestRunTPCHSmoke(t *testing.T) {
	r, err := RunTPCH(tiny, ssd.DW, 30)
	if err != nil {
		t.Fatal(err)
	}
	if r.Power <= 0 || r.Throughput <= 0 || r.QphH <= 0 {
		t.Errorf("result = %+v", r)
	}
	if r.QphH > r.Power && r.QphH > r.Throughput {
		t.Error("QphH must lie between power and throughput")
	}
}

func TestFig5SpeedupsRelativeToNoSSD(t *testing.T) {
	r, err := fig5OLTP(tiny, "tpcc", []int{1}, TPCCSizesGB, "K warehouse")
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != len(Fig5Designs) {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row.Design == ssd.NoSSD && math.Abs(row.Speedup-1) > 1e-9 {
			t.Errorf("noSSD speedup = %v", row.Speedup)
		}
		if row.Design == ssd.LC && row.Speedup <= 1 {
			t.Errorf("LC speedup = %v, want > 1", row.Speedup)
		}
	}
}

func TestExperimentsRegistry(t *testing.T) {
	ids := map[string]bool{}
	for _, e := range Experiments() {
		if e.ID == "" || e.Description == "" || e.Run == nil {
			t.Errorf("incomplete experiment %+v", e)
		}
		if ids[e.ID] {
			t.Errorf("duplicate id %q", e.ID)
		}
		ids[e.ID] = true
	}
	for _, want := range []string{"table1", "fig5-tpcc", "fig5-tpce", "fig5-tpch",
		"fig6", "fig7", "fig8", "fig9", "table3", "cw", "tacwaste", "classify"} {
		if !ids[want] {
			t.Errorf("missing experiment %q", want)
		}
	}
	if _, ok := FindExperiment("table1"); !ok {
		t.Error("FindExperiment(table1) failed")
	}
	if _, ok := FindExperiment("nope"); ok {
		t.Error("FindExperiment(nope) succeeded")
	}
}

func TestRenderersProduceOutput(t *testing.T) {
	var buf bytes.Buffer
	RunTable1().Print(&buf)
	if !strings.Contains(buf.String(), "Table 1") {
		t.Error("table1 render empty")
	}
	buf.Reset()
	(&Fig5Result{Benchmark: "tpcc", Rows: []SpeedupRow{{Label: "x", Design: ssd.LC, TPS: 5, Speedup: 2}}}).Print(&buf)
	if !strings.Contains(buf.String(), "2.00X") {
		t.Errorf("fig5 render: %q", buf.String())
	}
	buf.Reset()
	(&TimelineResult{Title: "tl", Bucket: time.Second,
		Curves: map[string][]float64{"a": {1, 2}}, Order: []string{"a"}}).Print(&buf)
	if !strings.Contains(buf.String(), "tl") {
		t.Error("timeline render empty")
	}
	buf.Reset()
	(&IOTrafficResult{Bucket: time.Second, DiskReadMB: []float64{1}}).Print(&buf)
	if !strings.Contains(buf.String(), "disk-read") {
		t.Error("fig8 render empty")
	}
	buf.Reset()
	(&ClassifyResult{ReadAheadAccuracy: 0.82, DistanceAccuracy: 0.51}).Print(&buf)
	if !strings.Contains(buf.String(), "82.0%") {
		t.Errorf("classify render: %q", buf.String())
	}
	buf.Reset()
	PrintTACWaste(&buf, []TACWasteRow{{Label: "1K", InvalidPages: 10, WastedGB: 1}})
	if !strings.Contains(buf.String(), "1K") {
		t.Error("tacwaste render empty")
	}
	buf.Reset()
	(&CWResult{CWTPS: 1, DWTPS: 2, LCTPS: 2, SlowerThanDW: 0.5, SlowerThanLC: 0.5}).Print(&buf)
	if !strings.Contains(buf.String(), "50.0% slower") {
		t.Errorf("cw render: %q", buf.String())
	}
	buf.Reset()
	(&Table3Result{Rows: []*TPCHResult{{Design: ssd.LC, SF: 30, Power: 1, Throughput: 2, QphH: 1.4}}}).Print(&buf)
	if !strings.Contains(buf.String(), "30SF") {
		t.Error("table3 render empty")
	}
}

func TestMBpsConversion(t *testing.T) {
	run := buildOLTP(tiny, ssd.NoSSD, "tpcc", 100, nil)
	r, err := RunOLTP(run)
	if err != nil {
		t.Fatal(err)
	}
	mb := MBps(r.DiskRead)
	rates := r.DiskRead.Rate()
	for i := range mb {
		want := rates[i] * PageBytes / (1 << 20)
		if math.Abs(mb[i]-want) > 1e-9 {
			t.Fatalf("MBps[%d] = %v, want %v", i, mb[i], want)
		}
	}
}

func TestRunClassifySmoke(t *testing.T) {
	r, err := RunClassify(tiny)
	if err != nil {
		t.Fatal(err)
	}
	if r.ReadAheadAccuracy <= r.DistanceAccuracy {
		t.Errorf("read-ahead (%.2f) should beat distance (%.2f)",
			r.ReadAheadAccuracy, r.DistanceAccuracy)
	}
}

// TestTable2Defaults pins the paper's Table 2 parameter values.
func TestTable2Defaults(t *testing.T) {
	cfg := Default.Config(ssd.LC, 200)
	run := buildOLTP(Default, ssd.LC, "tpcc", 200, nil)
	if run.Config.DirtyFraction != 0.5 {
		t.Errorf("λ (TPC-C) = %v, want 0.5", run.Config.DirtyFraction)
	}
	runE := buildOLTP(Default, ssd.LC, "tpce", 230, nil)
	if runE.Config.DirtyFraction != 0.01 {
		t.Errorf("λ (TPC-E) = %v, want 0.01", runE.Config.DirtyFraction)
	}
	// Engine-level defaults come from the ssd manager's own defaulting;
	// spot-check through a built manager.
	env := simNewEnv()
	e := engineNew(env, cfg)
	m := e.SSD().Config()
	if m.FillThreshold != 0.95 {
		t.Errorf("τ = %v, want 0.95", m.FillThreshold)
	}
	if m.Throttle != 100 {
		t.Errorf("μ = %d, want 100", m.Throttle)
	}
	if m.Partitions != 16 {
		t.Errorf("N = %d, want 16", m.Partitions)
	}
	if m.GroupClean != 32 {
		t.Errorf("α = %d, want 32", m.GroupClean)
	}
	if m.Frames != int(Default.Pages(140)) {
		t.Errorf("S = %d, want %d", m.Frames, Default.Pages(140))
	}
	env.Shutdown()
}

// TestAllExperimentsRunAtTinyScale executes every registered experiment
// end-to-end at an aggressive divisor, covering the full harness surface
// (runners plus renderers) and guarding against bit-rot in any experiment.
func TestAllExperimentsRunAtTinyScale(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every experiment; skipped in -short mode")
	}
	scale := Bench // divisor 8192: every experiment completes in < 1s
	for _, exp := range Experiments() {
		exp := exp
		t.Run(exp.ID, func(t *testing.T) {
			var buf bytes.Buffer
			if err := exp.Run(scale, &buf); err != nil {
				t.Fatalf("%s: %v", exp.ID, err)
			}
			if buf.Len() == 0 {
				t.Errorf("%s produced no output", exp.ID)
			}
		})
	}
}

// TestPaperShapeTPCC2K is the reproduction's headline regression guard:
// on the 2K-warehouse TPC-C configuration the design ordering must be
// LC >> DW > TAC > noSSD, with LC at least 4X over noSSD and at least
// 2X over DW — well inside the margins of the paper's 9.4X / 5.1X.
func TestPaperShapeTPCC2K(t *testing.T) {
	if testing.Short() {
		t.Skip("full 10-hour (scaled) runs")
	}
	tps := map[ssd.Design]float64{}
	for _, d := range Fig5Designs {
		r, err := RunOLTP(buildOLTP(Bench, d, "tpcc", TPCCSizesGB[2], nil))
		if err != nil {
			t.Fatal(err)
		}
		tps[d] = r.FinalTPS
	}
	if !(tps[ssd.LC] > tps[ssd.DW] && tps[ssd.DW] > tps[ssd.TAC] && tps[ssd.TAC] > tps[ssd.NoSSD]) {
		t.Errorf("ordering broken: LC=%.0f DW=%.0f TAC=%.0f noSSD=%.0f",
			tps[ssd.LC], tps[ssd.DW], tps[ssd.TAC], tps[ssd.NoSSD])
	}
	if tps[ssd.LC] < 4*tps[ssd.NoSSD] {
		t.Errorf("LC speedup %.1fX < 4X", tps[ssd.LC]/tps[ssd.NoSSD])
	}
	if tps[ssd.LC] < 2*tps[ssd.DW] {
		t.Errorf("LC/DW ratio %.1fX < 2X", tps[ssd.LC]/tps[ssd.DW])
	}
}

// TestPaperShapeTPCEPeak guards the §4.3 working-set crossover: the TPC-E
// speedup peaks at 20K customers (working set ≈ SSD) and collapses at 40K.
func TestPaperShapeTPCEPeak(t *testing.T) {
	if testing.Short() {
		t.Skip("full 10-hour (scaled) runs")
	}
	speedup := map[int]float64{}
	for _, size := range []int{10, 20, 40} {
		base, err := RunOLTP(buildOLTP(Bench, ssd.NoSSD, "tpce", TPCESizesGB[size], nil))
		if err != nil {
			t.Fatal(err)
		}
		r, err := RunOLTP(buildOLTP(Bench, ssd.DW, "tpce", TPCESizesGB[size], nil))
		if err != nil {
			t.Fatal(err)
		}
		speedup[size] = r.FinalTPS / base.FinalTPS
	}
	if speedup[40] >= speedup[20] || speedup[40] >= speedup[10] {
		t.Errorf("40K speedup (%.1fX) should be the smallest: 10K=%.1fX 20K=%.1fX",
			speedup[40], speedup[10], speedup[20])
	}
	if speedup[20] < 2 {
		t.Errorf("20K speedup %.1fX implausibly low", speedup[20])
	}
}

// TestCSVExportWellFormed checks each CSV exporter produces parseable
// output with consistent column counts.
func TestCSVExportWellFormed(t *testing.T) {
	fig5 := &Fig5Result{Benchmark: "x", Rows: []SpeedupRow{
		{Label: "a", Design: ssd.LC, TPS: 10, Speedup: 2},
		{Label: "a", Design: ssd.NoSSD, TPS: 5, Speedup: 1},
	}}
	tl := &TimelineResult{Bucket: time.Second, Order: []string{"A", "B"},
		Curves: map[string][]float64{"A": {1, 2, 3}, "B": {4, 5}}}
	io8 := &IOTrafficResult{Bucket: time.Second,
		DiskReadMB: []float64{1, 2}, DiskWriteMB: []float64{3},
		SSDReadMB: []float64{4, 5}, SSDWriteMB: []float64{6, 7}}
	t3 := &Table3Result{Rows: []*TPCHResult{{Design: ssd.LC, SF: 30, Power: 1, Throughput: 2, QphH: 1.4}}}

	check := func(name string, write func(io.Writer) error, wantRows, wantCols int) {
		var buf bytes.Buffer
		if err := write(&buf); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		recs, err := csv.NewReader(&buf).ReadAll()
		if err != nil {
			t.Fatalf("%s: parse: %v", name, err)
		}
		if len(recs) != wantRows {
			t.Errorf("%s: %d rows, want %d", name, len(recs), wantRows)
		}
		for i, rec := range recs {
			if len(rec) != wantCols {
				t.Errorf("%s: row %d has %d cols, want %d", name, i, len(rec), wantCols)
			}
		}
	}
	check("fig5", fig5.WriteCSV, 3, 4)
	check("timeline", tl.WriteCSV, 4, 4)
	check("io", io8.WriteCSV, 3, 6)
	check("table3", t3.WriteCSV, 2, 5)
}

// TestCSVExperimentsSubset ensures every CSV id is a registered experiment.
func TestCSVExperimentsSubset(t *testing.T) {
	for id := range CSVExperiments() {
		if _, ok := FindExperiment(id); !ok {
			t.Errorf("CSV id %q is not a registered experiment", id)
		}
	}
}
