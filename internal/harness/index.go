package harness

import (
	"fmt"
	"io"

	"turbobp/internal/device"
	"turbobp/internal/engine"
	"turbobp/internal/policy"
	"turbobp/internal/sim"
	"turbobp/internal/ssd"
	"turbobp/internal/workload"
	"turbobp/storage"
)

// This file is the `bpesim index` experiment: real B+-tree and heapfile
// code driven through the SSD tier, so the page access pattern emerges
// from structure traversal instead of a synthetic distribution (ROADMAP
// item 3; docs/WORKLOADS.md describes each mix). Every cell runs one
// design × one traversal mix through the engine's Task form via the
// storage.Store adapters and reports hit rates, SSD traffic, and the
// per-structure stats (height, splits, pages touched per op) the
// structures themselves produce.

// indexDesigns are the matrix columns: every design with an SSD cache,
// the CW/DW/LC/TAC comparison ROADMAP item 3 asks for.
var indexDesigns = []ssd.Design{ssd.CW, ssd.DW, ssd.LC, ssd.TAC}

// indexKinds are the matrix rows: the five traversal-driven mixes.
var indexKinds = []workload.IndexKind{
	workload.IndexPoint,
	workload.IndexRange,
	workload.IndexInsert,
	workload.IndexHeapScan,
	workload.IndexMixed,
}

// IndexCell is one design × mix measurement.
type IndexCell struct {
	Design ssd.Design
	Kind   workload.IndexKind
	Mix    workload.IndexMix
	Res    *workload.IndexResult

	PoolHitPct float64 // measured-phase buffer-pool hit rate
	SSDHitPct  float64 // measured-phase SSD hit rate (of pool misses)
	SSDReads   int64   // SSD device pages read during the measured phase
	SSDWrites  int64   // SSD device pages written during the measured phase
	PagesPerOp float64 // logical page accesses per completed operation
}

// IndexMatrixResult is the rendered design × mix grid.
type IndexMatrixResult struct {
	Rows  int // rows loaded per shared structure
	Ops   int // operations per worker
	Cells []IndexCell
}

// indexMix builds the mix for one kind at one scale. Sizes shrink with
// the divisor but keep the ratios that make the tier interesting: the
// pool is far smaller than the structures, the SSD covers the hot set.
func indexMix(s Scale, kind workload.IndexKind) workload.IndexMix {
	rows := int(16 << 20 / s.Divisor) // 16384 at the default divisor 1024
	if rows < 1024 {
		rows = 1024
	}
	return workload.IndexMix{
		Kind:         kind,
		Workers:      8,
		Rows:         rows,
		OpsPerWorker: rows / 8,
		Span:         256,
		Seed:         0x1DE5 + int64(kind),
	}
}

// indexConfig sizes the engine for a mix.
func indexConfig(design ssd.Design, m workload.IndexMix, pol policy.Kind) engine.Config {
	return engine.Config{
		Design:        design,
		Policy:        pol,
		DBPages:       int64(m.Rows) * 2,
		PoolPages:     m.Rows / 64,
		SSDFrames:     m.Rows / 8,
		PayloadSize:   256, // B+-tree fan-out 15; ~11 records per heap page
		DirtyFraction: 0.1, // leaf churn wakes LC's cleaner early
	}
}

// runIndexCell executes one cell: build the engine, run the mix through
// Task-form Store adapters, and compute measured-phase rates.
func runIndexCell(s Scale, design ssd.Design, kind workload.IndexKind, pol policy.Kind) (IndexCell, error) {
	mix := indexMix(s, kind)
	cell := IndexCell{Design: design, Kind: kind, Mix: mix}
	env := sim.NewEnv()
	e := engine.New(env, indexConfig(design, mix, pol))
	if err := e.FormatDB(); err != nil {
		return cell, err
	}
	var alloc int64
	newStore := func(p *sim.Proc) storage.Store { return engine.NewTaskStore(e, p, &alloc) }

	var loadEng engine.Stats
	var loadSSD ssd.Stats
	var loadDev device.Snapshot
	res := mix.Start(env, newStore,
		func() { // end of load: snapshot so rates cover the measured phase only
			loadEng = e.Stats()
			loadSSD = e.SSD().Stats()
			loadDev = e.SSDDevice().Stats().Load()
		},
		func() { e.StopBackground() })
	env.Run(-1)
	env.Shutdown()
	if res.Err != nil {
		return cell, fmt.Errorf("%s/%s: %w", design, kind, res.Err)
	}
	cell.Res = res

	eng := e.Stats()
	reads := eng.Reads - loadEng.Reads
	hits := eng.PoolHits - loadEng.PoolHits
	misses := eng.PoolMisses - loadEng.PoolMisses
	if reads > 0 {
		cell.PoolHitPct = 100 * float64(hits) / float64(reads)
	}
	sd := e.SSD().Stats()
	if mh := (sd.Hits - loadSSD.Hits) + (sd.Misses - loadSSD.Misses); mh > 0 {
		cell.SSDHitPct = 100 * float64(sd.Hits-loadSSD.Hits) / float64(mh)
	}
	_ = misses
	dev := e.SSDDevice().Stats().Load()
	cell.SSDReads = dev.ReadPages - loadDev.ReadPages
	cell.SSDWrites = dev.WritePages - loadDev.WritePages
	if res.Ops > 0 {
		cell.PagesPerOp = float64(reads) / float64(res.Ops)
	}
	return cell, nil
}

// RunIndex executes the full design × mix grid on the worker pool.
func RunIndex(s Scale) (*IndexMatrixResult, error) {
	n := len(indexKinds) * len(indexDesigns)
	pol := PolicyKind()
	cells, err := RunGrid(n, func(i int) (IndexCell, error) {
		kind := indexKinds[i/len(indexDesigns)]
		design := indexDesigns[i%len(indexDesigns)]
		return runIndexCell(s, design, kind, pol)
	})
	if err != nil {
		return nil, err
	}
	m := indexMix(s, workload.IndexPoint)
	return &IndexMatrixResult{Rows: m.Rows, Ops: m.OpsPerWorker, Cells: cells}, nil
}

// Print renders the matrix grouped by workload.
func (r *IndexMatrixResult) Print(w io.Writer) {
	fmt.Fprintf(w, "Index & heapfile workloads — traversal-driven matrix (%d rows, %d ops × 8 workers)\n", r.Rows, r.Ops)
	fmt.Fprintf(w, "%-9s %-5s %9s %9s %8s %8s %8s %8s %7s %7s\n",
		"workload", "design", "ops", "pool-hit", "ssd-hit", "ssd-rd", "ssd-wr", "pages/op", "height", "splits")
	last := workload.IndexKind(-1)
	for _, c := range r.Cells {
		if c.Kind != last && last >= 0 {
			fmt.Fprintln(w)
		}
		last = c.Kind
		fmt.Fprintf(w, "%-9s %-5s %9d %8.1f%% %7.1f%% %8d %8d %8.2f %7d %7d\n",
			c.Kind, c.Design, c.Res.Ops, c.PoolHitPct, c.SSDHitPct,
			c.SSDReads, c.SSDWrites, c.PagesPerOp, c.Res.Height, c.Res.Splits)
	}
}
