package harness

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"runtime"
	"sync"
	"time"
)

// This file is the harness's parallel execution layer. Every experiment
// cell (one simulated run: an Env, an engine, a workload) is independent
// of every other, so a grid of cells can run on OS threads concurrently
// while each cell's virtual clock stays perfectly deterministic. Results
// are collected by index, so the rendered output of any experiment is
// byte-identical to a serial run.

var (
	workerMu sync.Mutex
	workerN  int
	// slots holds one token per *extra* goroutine the pool may spawn
	// beyond the callers themselves (capacity Workers()-1). Acquisition
	// never blocks: when no token is free the caller runs the cell
	// inline. That makes nested RunGrid calls (RunAll -> experiment ->
	// fig5OLTP) deadlock-free and bounds total concurrency globally.
	slots chan struct{}
)

func init() { SetWorkers(0) }

// SetWorkers sets the global worker budget shared by all RunGrid and
// RunAll calls and returns the effective budget. n = 1 forces fully serial
// execution; n <= 0 resets to runtime.GOMAXPROCS(0). Requests beyond
// GOMAXPROCS are capped there with a warning: simulation cells are pure
// CPU, so oversubscribing the scheduler only adds contention (measured as
// a parallel-suite slowdown on a single-processor runner).
func SetWorkers(n int) int {
	maxp := runtime.GOMAXPROCS(0)
	switch {
	case n <= 0:
		n = maxp
	case n > maxp:
		fmt.Fprintf(os.Stderr, "harness: %d workers requested but GOMAXPROCS=%d; capping at %d\n", n, maxp, maxp)
		n = maxp
	}
	workerMu.Lock()
	workerN = n
	slots = make(chan struct{}, n-1)
	workerMu.Unlock()
	return n
}

// EffectiveWorkers reports how much hardware parallelism n concurrent
// workers can actually get: min(n, GOMAXPROCS). Unlike SetWorkers it
// neither caps nor warns — network load drivers legitimately oversubscribe
// (their workers spend most of their time blocked on I/O) — it exists so
// reports can print the honest parallelism next to the requested worker
// count, the same discipline EffectiveShardWidth applies to shard widths.
func EffectiveWorkers(n int) int {
	if maxp := runtime.GOMAXPROCS(0); n > maxp {
		return maxp
	}
	if n < 1 {
		return 1
	}
	return n
}

// Workers reports the current worker budget.
func Workers() int {
	workerMu.Lock()
	defer workerMu.Unlock()
	return workerN
}

// grabSlot reserves an extra-goroutine token, without blocking.
func grabSlot() (chan struct{}, bool) {
	workerMu.Lock()
	ch := slots
	workerMu.Unlock()
	if cap(ch) == 0 {
		return nil, false
	}
	select {
	case ch <- struct{}{}:
		return ch, true
	default:
		return nil, false
	}
}

// RunGrid evaluates fn(0) ... fn(n-1) on up to Workers() concurrent
// workers and returns the results in index order. Cells must be
// independent of one another. All cells run to completion even if some
// fail; the returned error is the lowest-index failure (deterministic
// regardless of scheduling), with the corresponding results left at
// their zero value.
func RunGrid[T any](n int, fn func(i int) (T, error)) ([]T, error) {
	results := make([]T, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		if ch, ok := grabSlot(); ok {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				defer func() { <-ch }()
				results[i], errs[i] = fn(i)
			}(i)
		} else {
			// Caller-runs fallback: the submitting goroutine is itself
			// one of the Workers() workers.
			results[i], errs[i] = fn(i)
		}
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return results, err
		}
	}
	return results, nil
}

// RunAll runs the named experiments through the worker pool. Each
// experiment's rendered output (header line included) is buffered and
// written to out in the order given, so stdout is byte-identical to a
// serial run no matter how many workers are active. Per-experiment
// wall-clock timings go to logw (typically stderr; nil discards them).
// An unknown id fails before anything runs.
func RunAll(ids []string, scale Scale, out, logw io.Writer) error {
	exps := make([]Experiment, len(ids))
	for i, id := range ids {
		e, ok := FindExperiment(id)
		if !ok {
			return fmt.Errorf("harness: unknown experiment %q", id)
		}
		exps[i] = e
	}
	type cell struct {
		buf bytes.Buffer
		dur time.Duration
		err error
	}
	cells := make([]*cell, len(exps))
	for i := range cells {
		cells[i] = &cell{}
	}
	if _, err := RunGrid(len(exps), func(i int) (struct{}, error) {
		c := cells[i]
		fmt.Fprintf(&c.buf, "== %s — %s (divisor %d) ==\n",
			exps[i].ID, exps[i].Description, scale.Divisor)
		start := time.Now()
		c.err = exps[i].Run(scale, &c.buf)
		c.dur = time.Since(start)
		if c.err == nil {
			c.buf.WriteByte('\n')
		}
		return struct{}{}, nil
	}); err != nil {
		return err
	}
	for i, c := range cells {
		if c.err != nil {
			return fmt.Errorf("%s: %w", exps[i].ID, c.err)
		}
		if _, err := out.Write(c.buf.Bytes()); err != nil {
			return err
		}
		if logw != nil {
			fmt.Fprintf(logw, "-- %s done in %v --\n", exps[i].ID, c.dur.Round(time.Millisecond))
		}
	}
	return nil
}
