package harness

import (
	"bytes"
	"errors"
	"io"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
)

func TestRunGridOrdersResults(t *testing.T) {
	defer SetWorkers(0)
	SetWorkers(4)
	rs, err := RunGrid(100, func(i int) (int, error) { return i * i, nil })
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range rs {
		if v != i*i {
			t.Fatalf("rs[%d] = %d, want %d", i, v, i*i)
		}
	}
}

func TestRunGridFirstErrorByIndex(t *testing.T) {
	defer SetWorkers(0)
	SetWorkers(4)
	e2, e5 := errors.New("two"), errors.New("five")
	// Every cell runs; the reported error must be the lowest-index one no
	// matter which goroutine finishes first.
	var ran atomic.Int64
	_, err := RunGrid(8, func(i int) (int, error) {
		ran.Add(1)
		switch i {
		case 2:
			return 0, e2
		case 5:
			return 0, e5
		}
		return i, nil
	})
	if !errors.Is(err, e2) {
		t.Fatalf("err = %v, want %v", err, e2)
	}
	if ran.Load() != 8 {
		t.Fatalf("ran %d cells, want 8", ran.Load())
	}
}

func TestRunGridNestedNoDeadlock(t *testing.T) {
	defer SetWorkers(0)
	SetWorkers(3)
	var total atomic.Int64
	rs, err := RunGrid(8, func(i int) (int, error) {
		inner, err := RunGrid(8, func(j int) (int, error) {
			total.Add(1)
			return j, nil
		})
		if err != nil {
			return 0, err
		}
		return len(inner), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if total.Load() != 64 {
		t.Fatalf("ran %d inner cells, want 64", total.Load())
	}
	for i, v := range rs {
		if v != 8 {
			t.Fatalf("rs[%d] = %d, want 8", i, v)
		}
	}
}

func TestRunGridSerialWithOneWorker(t *testing.T) {
	defer SetWorkers(0)
	SetWorkers(1)
	// With one worker every cell caller-runs on this goroutine, in order.
	var order []int
	if _, err := RunGrid(5, func(i int) (int, error) {
		order = append(order, i)
		return i, nil
	}); err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("execution order %v not serial", order)
		}
	}
}

// TestParallelDeterminism is the harness's determinism regression: the
// same experiment must produce identical results at any worker count.
func TestParallelDeterminism(t *testing.T) {
	defer SetWorkers(0)
	SetWorkers(1)
	serial, err := Fig5TPCC(tiny)
	if err != nil {
		t.Fatal(err)
	}
	SetWorkers(4)
	parallel, err := Fig5TPCC(tiny)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Error("Fig5TPCC results differ between 1 and 4 workers")
	}
}

func TestRunAllOutputIdenticalAcrossWorkers(t *testing.T) {
	ids := []string{"table1", "tacwaste"}
	render := func(workers int) string {
		defer SetWorkers(0)
		SetWorkers(workers)
		var buf bytes.Buffer
		if err := RunAll(ids, tiny, &buf, io.Discard); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	a, b := render(1), render(4)
	if a != b {
		t.Errorf("RunAll output differs between 1 and 4 workers:\n--- serial ---\n%s\n--- parallel ---\n%s", a, b)
	}
	if !strings.Contains(a, "== table1") || !strings.Contains(a, "== tacwaste") {
		t.Errorf("missing experiment headers in output:\n%s", a)
	}
}

func TestRunAllUnknownID(t *testing.T) {
	if err := RunAll([]string{"nope"}, tiny, io.Discard, nil); err == nil {
		t.Fatal("RunAll accepted an unknown experiment id")
	}
}
