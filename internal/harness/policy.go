package harness

import (
	"sync"

	"turbobp/internal/policy"
)

var (
	policyMu  sync.Mutex
	policyReq policy.Kind
)

// SetPolicy sets the cache policy applied to every engine the harness
// builds afterwards (Scale.Config wires it into both tiers) and returns
// the stored value. The zero value keeps the original LRU-2 behaviour,
// so default runs stay byte-identical to the pre-policy goldens.
func SetPolicy(k policy.Kind) policy.Kind {
	policyMu.Lock()
	policyReq = k
	policyMu.Unlock()
	return k
}

// PolicyKind reports the harness-wide cache policy.
func PolicyKind() policy.Kind {
	policyMu.Lock()
	defer policyMu.Unlock()
	return policyReq
}
