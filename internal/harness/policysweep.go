package harness

import (
	"fmt"
	"io"
	"time"

	"turbobp/internal/engine"
	"turbobp/internal/policy"
	"turbobp/internal/sim"
	"turbobp/internal/ssd"
	"turbobp/internal/workload"
	"turbobp/storage"
)

// This file is the `bpesim policy` experiment: a cross-workload sweep of
// the pluggable cache policies (internal/policy) over every SSD design.
// Four workloads stress the policies differently — TPC-C is dirty-heavy
// (a third of accesses update, so CFLRU's clean-first eviction pays),
// TPC-E is read-heavy with a skewed hot set (ARC's ghost adaptation and
// TinyLFU's admission gate pay), and the two traversal mixes exercise
// structured access: the B+-tree/heapfile mixed mix and the scan-dominated
// heap-scan mix (scan resistance). Every cell builds its engine directly,
// so results are identical at any -parallel or -shards width; wall-clock
// timing goes to stderr via the standard experiment runner.

// policyWorkloads are the sweep's workload rows.
var policyWorkloads = []string{"tpcc", "tpce", "mixed", "scan"}

// PolicyCell is one workload × design × policy measurement.
type PolicyCell struct {
	Workload string
	Design   ssd.Design
	Policy   policy.Kind

	Ops        int64   // committed transactions (OLTP) or completed ops (index)
	PoolHitPct float64 // buffer-pool hit rate
	SSDHitPct  float64 // SSD hit rate (of pool misses)
	SSDReads   int64   // SSD device pages read
	SSDWrites  int64   // SSD device pages written
	DiskWrites int64   // disk array pages written
	WALWrites  int64   // WAL device pages written

	GhostHits    int64 // ARC ghost-list hits (pool + SSD tier)
	AdmitRejects int64 // TinyLFU admissions rejected (pool + SSD tier)
	CleanFirst   int64 // CFLRU evictions that skipped an older dirty page
}

// PolicySweepResult is the rendered workload × design × policy grid.
type PolicySweepResult struct {
	Rows  int // rows per index structure (index cells)
	Cells []PolicyCell
}

// policyOLTPCell runs one OLTP cell: the standard paper configuration for
// the workload at its mid-size database, shortened to two virtual hours.
func policyOLTPCell(s Scale, design ssd.Design, pol policy.Kind, kind string) (PolicyCell, error) {
	cell := PolicyCell{Workload: kind, Design: design, Policy: pol}
	var run OLTPRun
	switch kind {
	case "tpcc":
		run = buildOLTP(s, design, "tpcc", TPCCSizesGB[2], nil)
	default:
		run = buildOLTP(s, design, "tpce", TPCESizesGB[20], nil)
	}
	cfg := run.Config
	cfg.Policy = pol
	env := sim.NewEnv()
	e := engine.New(env, cfg)
	if err := e.FormatDB(); err != nil {
		return cell, err
	}
	run.Workload.Start(env, e, func(time.Duration) { cell.Ops++ })
	env.Run(s.Hours(2))
	e.StopBackground()
	fillPolicyCell(&cell, e)
	env.Shutdown()
	return cell, nil
}

// policyIndexCell runs one traversal cell, mirroring runIndexCell but
// measuring the policy counters alongside the rates. Rates cover the
// whole run, load phase included — both phases exercise the policy, and
// every policy sees the identical call sequence, so the comparison
// between policies is still apples-to-apples.
func policyIndexCell(s Scale, design ssd.Design, pol policy.Kind, kind workload.IndexKind, name string) (PolicyCell, error) {
	cell := PolicyCell{Workload: name, Design: design, Policy: pol}
	mix := indexMix(s, kind)
	env := sim.NewEnv()
	e := engine.New(env, indexConfig(design, mix, pol))
	if err := e.FormatDB(); err != nil {
		return cell, err
	}
	var alloc int64
	newStore := func(p *sim.Proc) storage.Store { return engine.NewTaskStore(e, p, &alloc) }
	res := mix.Start(env, newStore, nil, func() { e.StopBackground() })
	env.Run(-1)
	env.Shutdown()
	if res.Err != nil {
		return cell, fmt.Errorf("%s/%s/%s: %w", design, kind, pol, res.Err)
	}
	cell.Ops = int64(res.Ops)
	fillPolicyCell(&cell, e)
	return cell, nil
}

// fillPolicyCell computes a cell's rates and policy counters from the
// engine's end-of-run statistics.
func fillPolicyCell(cell *PolicyCell, e *engine.Engine) {
	eng := e.Stats()
	if eng.Reads > 0 {
		cell.PoolHitPct = 100 * float64(eng.PoolHits) / float64(eng.Reads)
	}
	sd := e.SSD().Stats()
	if mh := sd.Hits + sd.Misses; mh > 0 {
		cell.SSDHitPct = 100 * float64(sd.Hits) / float64(mh)
	}
	dev := e.SSDDevice().Stats().Load()
	cell.SSDReads = dev.ReadPages
	cell.SSDWrites = dev.WritePages
	if arr := e.DiskArray(); arr != nil {
		cell.DiskWrites = arr.Stats().Load().WritePages
	}
	cell.WALWrites = e.LogDevice().Stats().Load().WritePages
	cell.GhostHits = eng.PoolGhostHits + sd.PolicyGhostHits
	cell.AdmitRejects = eng.PoolAdmitRej + sd.PolicyAdmitRej
	cell.CleanFirst = eng.PoolCleanFirst + sd.PolicyCleanFirst
}

// RunPolicySweep executes the full workload × design × policy grid on the
// worker pool.
func RunPolicySweep(s Scale) (*PolicySweepResult, error) {
	perWl := len(indexDesigns) * len(policy.Kinds)
	n := len(policyWorkloads) * perWl
	cells, err := RunGrid(n, func(i int) (PolicyCell, error) {
		wl := policyWorkloads[i/perWl]
		design := indexDesigns[i%perWl/len(policy.Kinds)]
		pol := policy.Kinds[i%len(policy.Kinds)]
		switch wl {
		case "tpcc", "tpce":
			return policyOLTPCell(s, design, pol, wl)
		case "mixed":
			return policyIndexCell(s, design, pol, workload.IndexMixed, wl)
		default:
			return policyIndexCell(s, design, pol, workload.IndexHeapScan, wl)
		}
	})
	if err != nil {
		return nil, err
	}
	return &PolicySweepResult{Rows: indexMix(s, workload.IndexMixed).Rows, Cells: cells}, nil
}

// Print renders the sweep grouped by workload and design.
func (r *PolicySweepResult) Print(w io.Writer) {
	fmt.Fprintf(w, "Cache-policy sweep — %d designs × %d policies × %d workloads (2h virtual OLTP; %d-row index mixes)\n",
		len(indexDesigns), len(policy.Kinds), len(policyWorkloads), r.Rows)
	fmt.Fprintf(w, "%-8s %-6s %-8s %9s %9s %8s %9s %9s %9s %8s %7s %8s %7s\n",
		"workload", "design", "policy", "ops", "pool-hit", "ssd-hit",
		"ssd-rd", "ssd-wr", "disk-wr", "wal-wr", "ghost", "adm-rej", "cfirst")
	last := ""
	for _, c := range r.Cells {
		if c.Workload != last && last != "" {
			fmt.Fprintln(w)
		}
		last = c.Workload
		fmt.Fprintf(w, "%-8s %-6s %-8s %9d %8.1f%% %7.1f%% %9d %9d %9d %8d %7d %8d %7d\n",
			c.Workload, c.Design, c.Policy, c.Ops, c.PoolHitPct, c.SSDHitPct,
			c.SSDReads, c.SSDWrites, c.DiskWrites, c.WALWrites, c.GhostHits, c.AdmitRejects, c.CleanFirst)
	}
}
