package harness

import (
	"fmt"
	"io"
	"sort"
)

// Print renders the speedup bars like a Figure 5 group.
func (r *Fig5Result) Print(w io.Writer) {
	fmt.Fprintf(w, "Figure 5 — %s speedups over noSSD\n", r.Benchmark)
	fmt.Fprintf(w, "%-26s %-6s %12s %9s\n", "database", "design", "throughput", "speedup")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-26s %-6s %12.2f %8.2fX\n", row.Label, row.Design, row.TPS, row.Speedup)
	}
}

// Print renders a timeline as aligned columns, one row per bucket.
func (t *TimelineResult) Print(w io.Writer) {
	fmt.Fprintf(w, "%s (bucket = %v, tx/s, 3-pt moving average)\n", t.Title, t.Bucket)
	fmt.Fprintf(w, "%-8s", "bucket")
	for _, name := range t.Order {
		fmt.Fprintf(w, " %12s", name)
	}
	fmt.Fprintln(w)
	n := 0
	for _, c := range t.Curves {
		if len(c) > n {
			n = len(c)
		}
	}
	for i := 0; i < n; i++ {
		fmt.Fprintf(w, "%-8d", i)
		for _, name := range t.Order {
			c := t.Curves[name]
			if i < len(c) {
				fmt.Fprintf(w, " %12.2f", c[i])
			} else {
				fmt.Fprintf(w, " %12s", "-")
			}
		}
		fmt.Fprintln(w)
	}
}

// Print renders the Figure 8 bandwidth series.
func (r *IOTrafficResult) Print(w io.Writer) {
	fmt.Fprintf(w, "Figure 8 — I/O traffic (MB/s, bucket = %v)\n", r.Bucket)
	fmt.Fprintf(w, "%-8s %12s %12s %12s %12s\n", "bucket", "disk-read", "disk-write", "ssd-read", "ssd-write")
	n := len(r.DiskReadMB)
	for i := 0; i < n; i++ {
		get := func(s []float64) float64 {
			if i < len(s) {
				return s[i]
			}
			return 0
		}
		fmt.Fprintf(w, "%-8d %12.2f %12.2f %12.2f %12.2f\n",
			i, get(r.DiskReadMB), get(r.DiskWriteMB), get(r.SSDReadMB), get(r.SSDWriteMB))
	}
}

// Print renders Table 3.
func (r *Table3Result) Print(w io.Writer) {
	sfs := map[int]bool{}
	for _, row := range r.Rows {
		sfs[row.SF] = true
	}
	var order []int
	for sf := range sfs {
		order = append(order, sf)
	}
	sort.Ints(order)
	for _, sf := range order {
		fmt.Fprintf(w, "Table 3 — %dSF TPC-H\n", sf)
		fmt.Fprintf(w, "%-18s", "metric")
		for _, d := range Table3Designs {
			fmt.Fprintf(w, " %10s", d)
		}
		fmt.Fprintln(w)
		printRow := func(name string, pick func(*TPCHResult) float64) {
			fmt.Fprintf(w, "%-18s", name)
			for _, d := range Table3Designs {
				for _, row := range r.Rows {
					if row.SF == sf && row.Design == d {
						fmt.Fprintf(w, " %10.0f", pick(row))
					}
				}
			}
			fmt.Fprintln(w)
		}
		printRow("Power Test", func(t *TPCHResult) float64 { return t.Power })
		printRow("Throughput Test", func(t *TPCHResult) float64 { return t.Throughput })
		printRow(fmt.Sprintf("QphH@%dSF", sf), func(t *TPCHResult) float64 { return t.QphH })
		fmt.Fprintln(w)
	}
}

// Print renders the CW comparison of §4.1.1.
func (r *CWResult) Print(w io.Writer) {
	fmt.Fprintf(w, "CW comparison (TPC-E 20K customers; paper: CW 21.6%%/23.3%% slower than DW/LC)\n")
	fmt.Fprintf(w, "CW  %10.2f tx/s\n", r.CWTPS)
	fmt.Fprintf(w, "DW  %10.2f tx/s  (CW %5.1f%% slower)\n", r.DWTPS, r.SlowerThanDW*100)
	fmt.Fprintf(w, "LC  %10.2f tx/s  (CW %5.1f%% slower)\n", r.LCTPS, r.SlowerThanLC*100)
}

// PrintTACWaste renders the §2.5 wasted-space rows.
func PrintTACWaste(w io.Writer, rows []TACWasteRow) {
	fmt.Fprintln(w, "TAC wasted SSD space on invalid pages (paper: 7.4/10.4/8.9 GB of 140GB)")
	for _, r := range rows {
		fmt.Fprintf(w, "%-16s %8d invalid pages = %6.2f GB (paper scale)\n", r.Label, r.InvalidPages, r.WastedGB)
	}
}

// Print renders the classifier accuracy comparison of §2.2.
func (r *ClassifyResult) Print(w io.Writer) {
	fmt.Fprintln(w, "Sequential-read classification accuracy (paper: read-ahead 82%, distance 51%)")
	fmt.Fprintf(w, "read-ahead mechanism: %5.1f%%\n", r.ReadAheadAccuracy*100)
	fmt.Fprintf(w, "64-page distance [29]: %5.1f%%\n", r.DistanceAccuracy*100)
}

// Print renders Table 1.
func (r *Table1Result) Print(w io.Writer) {
	fmt.Fprintln(w, "Table 1 — maximum sustainable IOPS, 8KB I/Os (paper values in parentheses)")
	fmt.Fprintf(w, "%-8s %18s %18s %18s %18s\n", "device", "rand-read", "seq-read", "rand-write", "seq-write")
	fmt.Fprintf(w, "%-8s %10.0f (1015) %9.0f (26370) %10.0f (895) %10.0f (9463)\n",
		"8 HDDs", r.ArrayRandRead, r.ArraySeqRead, r.ArrayRandWrite, r.ArraySeqWrite)
	fmt.Fprintf(w, "%-8s %9.0f (12182) %9.0f (15980) %9.0f (12374) %9.0f (14965)\n",
		"SSD", r.SSDRandRead, r.SSDSeqRead, r.SSDRandWrite, r.SSDSeqWrite)
}

// Experiment is a runnable reproduction unit addressable by id.
type Experiment struct {
	ID          string
	Description string
	Run         func(scale Scale, w io.Writer) error
}

// Experiments lists every reproduction in the per-experiment index order
// of DESIGN.md.
func Experiments() []Experiment {
	return []Experiment{
		{"table1", "Table 1: device IOPS", func(_ Scale, w io.Writer) error {
			RunTable1().Print(w)
			return nil
		}},
		{"fig5-tpcc", "Figure 5(a-c): TPC-C speedups", func(s Scale, w io.Writer) error {
			r, err := Fig5TPCC(s)
			if err != nil {
				return err
			}
			r.Print(w)
			return nil
		}},
		{"fig5-tpce", "Figure 5(d-f): TPC-E speedups", func(s Scale, w io.Writer) error {
			r, err := Fig5TPCE(s)
			if err != nil {
				return err
			}
			r.Print(w)
			return nil
		}},
		{"fig5-tpch", "Figure 5(g-h): TPC-H speedups", func(s Scale, w io.Writer) error {
			r, err := Fig5TPCH(s)
			if err != nil {
				return err
			}
			r.Print(w)
			return nil
		}},
		{"fig6", "Figure 6: 10-hour throughput timelines", func(s Scale, w io.Writer) error {
			rs, err := Fig6(s)
			if err != nil {
				return err
			}
			for _, r := range rs {
				r.Print(w)
				fmt.Fprintln(w)
			}
			return nil
		}},
		{"fig7", "Figure 7: LC λ sweep on TPC-C 4K", func(s Scale, w io.Writer) error {
			r, err := Fig7(s)
			if err != nil {
				return err
			}
			r.Print(w)
			return nil
		}},
		{"fig8", "Figure 8: I/O traffic, TPC-E 20K DW", func(s Scale, w io.Writer) error {
			r, err := Fig8(s)
			if err != nil {
				return err
			}
			r.Print(w)
			return nil
		}},
		{"fig9", "Figure 9: checkpoint-interval effect", func(s Scale, w io.Writer) error {
			rs, err := Fig9(s)
			if err != nil {
				return err
			}
			for _, r := range rs {
				r.Print(w)
				fmt.Fprintln(w)
			}
			return nil
		}},
		{"table3", "Table 3: TPC-H power/throughput/QphH", func(s Scale, w io.Writer) error {
			r, err := RunTable3(s, []int{30, 100})
			if err != nil {
				return err
			}
			r.Print(w)
			return nil
		}},
		{"cw", "§4.1.1: CW vs DW/LC on TPC-E 20K", func(s Scale, w io.Writer) error {
			r, err := RunCW(s)
			if err != nil {
				return err
			}
			r.Print(w)
			return nil
		}},
		{"tacwaste", "§2.5: TAC wasted SSD space", func(s Scale, w io.Writer) error {
			rows, err := RunTACWaste(s)
			if err != nil {
				return err
			}
			PrintTACWaste(w, rows)
			return nil
		}},
		{"classify", "§2.2: classifier accuracy", func(s Scale, w io.Writer) error {
			r, err := RunClassify(s)
			if err != nil {
				return err
			}
			r.Print(w)
			return nil
		}},
		{"warmrestart", "§6 extension: warm restart vs cold restart", func(s Scale, w io.Writer) error {
			r, err := RunWarmRestart(s)
			if err != nil {
				return err
			}
			r.Print(w)
			return nil
		}},
		{"midrange", "§6: mid-range SSD sweep", func(s Scale, w io.Writer) error {
			rows, err := RunMidrange(s)
			if err != nil {
				return err
			}
			PrintMidrange(w, rows)
			return nil
		}},
		{"ablation", "§3.3 design-choice ablations", func(s Scale, w io.Writer) error {
			rows, err := RunAblations(s)
			if err != nil {
				return err
			}
			PrintAblations(w, rows)
			return nil
		}},
		{"trimming", "§3.3.3: multi-page I/O trimming", func(s Scale, w io.Writer) error {
			r, err := RunTrimming(s)
			if err != nil {
				return err
			}
			r.Print(w)
			return nil
		}},
		{"restart", "§2.3.3: checkpoint policy vs restart time", func(s Scale, w io.Writer) error {
			rows, err := RunRestart(s)
			if err != nil {
				return err
			}
			PrintRestart(w, rows)
			return nil
		}},
		{"faults", "fault-injection crash/recover matrix", func(_ Scale, w io.Writer) error {
			r, err := RunFaultMatrix()
			if err != nil {
				return err
			}
			r.Print(w)
			return r.Err()
		}},
		{"corrupt", "silent-corruption detect/repair matrix", func(_ Scale, w io.Writer) error {
			r, err := RunCorruptMatrix()
			if err != nil {
				return err
			}
			r.Print(w)
			return r.Err()
		}},
		{"sharded", "sharded kernel: distributed-transaction sweep", func(s Scale, w io.Writer) error {
			r, err := RunShardedSweep(s)
			if err != nil {
				return err
			}
			r.Print(w)
			return nil
		}},
		{"index", "index & heapfile traversal workloads: 4 designs × 5 mixes", func(s Scale, w io.Writer) error {
			r, err := RunIndex(s)
			if err != nil {
				return err
			}
			r.Print(w)
			return nil
		}},
		{"policy", "cache-policy sweep: 4 designs × 4 policies × 4 workloads", func(s Scale, w io.Writer) error {
			r, err := RunPolicySweep(s)
			if err != nil {
				return err
			}
			r.Print(w)
			return nil
		}},
	}
}

// FindExperiment returns the experiment with the given id.
func FindExperiment(id string) (Experiment, bool) {
	for _, e := range Experiments() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}
