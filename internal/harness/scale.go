package harness

import (
	"fmt"
	"io"
	"time"

	"turbobp/internal/ssd"
)

// ScaleDivisors is the default scale sweep: each halving doubles the
// database, pool and virtual-clock sizes toward paper scale (divisor 1).
var ScaleDivisors = []int64{2048, 1024, 512, 256, 128}

// ScaleSmokeDivisor sizes the single-cell smoke run appended to the sweep.
const ScaleSmokeDivisor = 64

// RunScaleSweep measures simulator throughput on the approach to paper
// scale: the full Figure 5 TPC-C grid (12 independent runs) at each sweep
// divisor, reporting dispatched simulation events, wall-clock time and
// events/sec, followed by one TAC 1K-warehouse cell at the smoke divisor.
// Wall-clock readings make the output nondeterministic, so the sweep is a
// standalone command rather than a registered experiment.
func RunScaleSweep(out io.Writer) error {
	fmt.Fprintf(out, "fig5-tpcc scale sweep (%d workers)\n", Workers())
	fmt.Fprintf(out, "%8s %6s %14s %10s %14s\n", "divisor", "cells", "events", "wall", "events/sec")
	for _, d := range ScaleDivisors {
		start := time.Now()
		res, err := Fig5TPCC(Scale{Divisor: d})
		if err != nil {
			return err
		}
		wall := time.Since(start)
		var events uint64
		for _, r := range res.Details {
			events += r.Events
		}
		fmt.Fprintf(out, "%8d %6d %14d %9.2fs %14.0f\n",
			d, len(res.Details), events, wall.Seconds(), float64(events)/wall.Seconds())
	}
	start := time.Now()
	r, err := RunOLTP(buildOLTP(Scale{Divisor: ScaleSmokeDivisor}, ssd.TAC, "tpcc", TPCCSizesGB[1], nil))
	if err != nil {
		return err
	}
	wall := time.Since(start)
	fmt.Fprintf(out, "smoke: divisor %d TAC 1K-warehouse cell: %d events in %.2fs (%.0f events/sec, final %.1f tx/s)\n",
		ScaleSmokeDivisor, r.Events, wall.Seconds(), float64(r.Events)/wall.Seconds(), r.FinalTPS)
	return nil
}
