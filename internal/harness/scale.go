package harness

import (
	"fmt"
	"io"
	"runtime"
	"time"

	"turbobp/internal/ssd"
)

// ScaleDivisors is the default scale sweep: each halving doubles the
// database, pool and virtual-clock sizes toward paper scale (divisor 1).
var ScaleDivisors = []int64{2048, 1024, 512, 256, 128}

// ScaleSmokeDivisor sizes the single-cell smoke run appended to the sweep.
const ScaleSmokeDivisor = 64

// RunScaleSweep measures simulator throughput on the approach to paper
// scale: the full Figure 5 TPC-C grid (12 independent runs) at each sweep
// divisor, reporting dispatched simulation events, wall-clock time and
// events/sec, followed by one TAC 1K-warehouse cell at the smoke divisor.
// Wall-clock readings make the output nondeterministic, so the sweep is a
// standalone command rather than a registered experiment.
func RunScaleSweep(out io.Writer) error {
	fmt.Fprintf(out, "fig5-tpcc scale sweep (%d workers)\n", Workers())
	fmt.Fprintf(out, "%8s %6s %14s %10s %14s\n", "divisor", "cells", "events", "wall", "events/sec")
	for _, d := range ScaleDivisors {
		start := time.Now()
		res, err := Fig5TPCC(Scale{Divisor: d})
		if err != nil {
			return err
		}
		wall := time.Since(start)
		var events uint64
		for _, r := range res.Details {
			events += r.Events
		}
		fmt.Fprintf(out, "%8d %6d %14d %9.2fs %14.0f\n",
			d, len(res.Details), events, wall.Seconds(), float64(events)/wall.Seconds())
	}
	start := time.Now()
	r, err := RunOLTP(buildOLTP(Scale{Divisor: ScaleSmokeDivisor}, ssd.TAC, "tpcc", TPCCSizesGB[1], nil))
	if err != nil {
		return err
	}
	wall := time.Since(start)
	fmt.Fprintf(out, "smoke: divisor %d TAC 1K-warehouse cell: %d events in %.2fs (%.0f events/sec, final %.1f tx/s)\n",
		ScaleSmokeDivisor, r.Events, wall.Seconds(), float64(r.Events)/wall.Seconds(), r.FinalTPS)

	fmt.Fprintf(out, "\nsharded kernel width sweep (%d partitions, TAC 1K cell, divisor %d, GOMAXPROCS %d)\n",
		ShardKernels, ShardScaleDivisor, runtime.GOMAXPROCS(0))
	fmt.Fprintf(out, "%8s %14s %10s %14s %8s\n", "shards", "events", "wall", "events/sec", "speedup")
	pts, err := MeasureShardScale(ShardScaleDivisor, ShardScaleWidths)
	if err != nil {
		return err
	}
	for _, p := range pts {
		fmt.Fprintf(out, "%8d %14d %9.2fs %14.0f %7.2fx\n",
			p.Shards, p.Events, p.WallSecs, p.EventsPerSec, p.Speedup)
	}
	return nil
}

// ShardScaleWidths are the execution widths the shard sweep measures.
var ShardScaleWidths = []int{1, 2, 4, 8}

// ShardScaleDivisor sizes the shard sweep's cell: large enough for the
// in-run parallelism to dominate per-epoch barrier costs, small enough to
// keep the sweep a few seconds per width.
const ShardScaleDivisor = 512

// ShardScalePoint is one shard-width measurement: the same TAC
// 1K-warehouse cell on the 8-partition sharded kernel, driven by Shards
// OS threads. Events is identical at every width (that is the
// determinism contract); only wall-clock varies.
type ShardScalePoint struct {
	Shards       int     `json:"shards"`
	Events       uint64  `json:"events"`
	WallSecs     float64 `json:"wall_secs"`
	EventsPerSec float64 `json:"events_per_sec"`
	Speedup      float64 `json:"speedup"` // events/sec over the width-1 run
}

// MeasureShardScale runs the shard-width sweep at the given divisor and
// widths. Wall-clock readings make it nondeterministic; callers are the
// scale sweep and the benchjson report.
func MeasureShardScale(divisor int64, widths []int) ([]ShardScalePoint, error) {
	// One discarded run first: the initial cell otherwise pays heap growth
	// and allocator warmup that would be misread as a width effect.
	warm := buildOLTP(Scale{Divisor: divisor}, ssd.TAC, "tpcc", TPCCSizesGB[1], nil)
	if _, err := RunOLTPSharded(ShardedRun{
		Run: warm, Kernels: ShardKernels, Width: widths[0], RemoteFrac: ShardRemoteFrac,
	}); err != nil {
		return nil, err
	}
	pts := make([]ShardScalePoint, 0, len(widths))
	var base float64
	for _, width := range widths {
		run := buildOLTP(Scale{Divisor: divisor}, ssd.TAC, "tpcc", TPCCSizesGB[1], nil)
		start := time.Now()
		r, err := RunOLTPSharded(ShardedRun{
			Run:        run,
			Kernels:    ShardKernels,
			Width:      width,
			RemoteFrac: ShardRemoteFrac,
		})
		if err != nil {
			return nil, err
		}
		wall := time.Since(start).Seconds()
		eps := float64(r.Events) / wall
		if base == 0 {
			base = eps
		}
		pts = append(pts, ShardScalePoint{
			Shards:       width,
			Events:       r.Events,
			WallSecs:     wall,
			EventsPerSec: eps,
			Speedup:      eps / base,
		})
	}
	return pts, nil
}
