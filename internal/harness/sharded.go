package harness

import (
	"fmt"
	"io"
	"math/rand"
	"os"
	"runtime"
	"sync"
	"time"

	"turbobp/internal/device"
	"turbobp/internal/engine"
	"turbobp/internal/metrics"
	"turbobp/internal/page"
	"turbobp/internal/sim"
	"turbobp/internal/ssd"
	"turbobp/internal/wal"
)

// This file is the sharded multi-core simulation runtime. The world is
// partitioned by page range into a fixed number of logical kernels
// (ShardKernels), each an independent sub-simulation: its own sim.Env,
// engine over one slice of the database/pool/SSD/disk capacity, its own
// WAL and its share of the client population. Kernels interact only
// through the cluster's timestamped continuation messages — here,
// distributed transactions whose final access targets a page owned by
// another shard (request over, remote service, reply back).
//
// The partition count is a MODEL constant; the -shards flag selects only
// the execution width (how many OS threads drive the kernels through
// sim.Cluster.Run). The cluster's (at, shard, seq) barrier merge makes
// the model blind to the width, so every experiment's output is
// byte-identical at -shards 1, 2, 4, ... — the in-run analogue of the
// harness's experiment-level -parallel contract — while wall-clock drops
// with real cores. ShardWidth() == 0 keeps the original single-kernel
// path untouched.

const (
	// ShardKernels is the model's fixed logical partition count.
	ShardKernels = 8
	// ShardRemoteFrac is the distributed-transaction fraction experiments
	// use under -shards: one access in ~0.6% of page traffic crosses
	// shards (5% of transactions), the classic "mostly partitionable
	// OLTP" regime.
	ShardRemoteFrac = 0.05
	// shardEpochs sets the default conservative window: one 4096th of the
	// run, which is also the modelled cross-shard hop latency.
	shardEpochs = 4096
)

var (
	shardMu  sync.Mutex
	shardReq int // requested execution width; 0 = legacy single-kernel path
)

// SetShards sets the sharded-kernel execution width for subsequent OLTP
// runs and returns the stored value. n <= 0 selects the legacy
// single-kernel path; n > ShardKernels is capped (there are only
// ShardKernels kernels to drive). The width never affects results, only
// wall-clock.
func SetShards(n int) int {
	if n < 0 {
		n = 0
	}
	if n > ShardKernels {
		fmt.Fprintf(os.Stderr, "harness: %d shard threads requested but the model has %d kernels; capping at %d\n",
			n, ShardKernels, ShardKernels)
		n = ShardKernels
	}
	shardMu.Lock()
	shardReq = n
	shardMu.Unlock()
	return n
}

// ShardWidth reports the requested execution width (0 = legacy path).
func ShardWidth() int {
	shardMu.Lock()
	defer shardMu.Unlock()
	return shardReq
}

// EffectiveShardWidth caps the requested width so that experiment-level
// workers × per-run shard threads do not oversubscribe GOMAXPROCS: with
// W concurrent experiment cells, each cell gets at most GOMAXPROCS/W
// threads (min 1). The cap changes wall-clock only, never results.
func EffectiveShardWidth() int {
	n := ShardWidth()
	if n == 0 {
		return 0
	}
	if byBudget := runtime.GOMAXPROCS(0) / Workers(); n > byBudget {
		if byBudget < 1 {
			byBudget = 1
		}
		n = byBudget
	}
	return n
}

// ShardedRun describes one sharded OLTP measurement.
type ShardedRun struct {
	Run        OLTPRun
	Kernels    int           // logical partitions (model; >= 2)
	Width      int           // OS threads driving them (execution only)
	RemoteFrac float64       // distributed-transaction fraction (model)
	Window     time.Duration // conservative window = cross-shard hop latency; 0: Duration/shardEpochs
	// Instrument, if set, is called with each kernel's environment before
	// anything is scheduled on it. Test instrumentation (dispatch-trace
	// hooks); nil in production.
	Instrument func(shard int, env *sim.Env)
}

// ShardedResult is a merged OLTPResult plus cluster-level figures.
type ShardedResult struct {
	OLTPResult
	Kernels  int
	Width    int
	Window   time.Duration
	Messages uint64 // cross-kernel messages delivered
	// WALRecords / WALChecksum witness the deterministic (At, shard, LSN)
	// merge of the per-shard durable logs.
	WALRecords  int
	WALChecksum uint64
}

// shardWorld is one kernel's sub-simulation.
type shardWorld struct {
	env *sim.Env
	eng *engine.Engine
	cfg engine.Config
	res *OLTPResult
}

// shardedRuntime carries what the routers need during a run.
type shardedRuntime struct {
	cluster   *sim.Cluster
	worlds    []*shardWorld
	window    time.Duration
	writeFrac float64
}

// shardRouter issues one shard's outbound distributed-transaction
// accesses. All randomness is drawn from the calling worker's RNG on the
// source kernel, so the decision stream is deterministic; the hop each
// way costs one conservative window of virtual latency.
type shardRouter struct {
	rt  *shardedRuntime
	src int
}

func (r *shardRouter) RemoteOp(t *sim.Task, rng *rand.Rand, k func()) {
	rt := r.rt
	dst := r.src + 1 + rng.Intn(len(rt.worlds)-1)
	dst %= len(rt.worlds)
	w := rt.worlds[dst]
	pid := page.ID(rng.Int63n(w.cfg.DBPages))
	write := rng.Float64() < rt.writeFrac
	var v byte
	if write {
		v = byte(rng.Intn(256))
	}
	src := r.src
	done := func(t2 *sim.Task) func(error) {
		return func(err error) {
			if err != nil {
				panic("harness: remote access: " + err.Error())
			}
			// Reply message: resume the originating worker one hop later.
			rt.cluster.Kernel(dst).Send(src, t2.Now()+rt.window, k)
		}
	}
	// Request message: serve the access on the owning kernel one hop from
	// now, then send the reply.
	rt.cluster.Kernel(src).Send(dst, t.Now()+rt.window, func() {
		w.env.Spawn("remote-access", func(t2 *sim.Task) {
			if write {
				w.eng.RemoteUpdateTask(t2, pid, v, done(t2))
			} else {
				w.eng.RemoteGetTask(t2, pid, done(t2))
			}
		})
	})
}

// newOLTPResult allocates the series set for one run description.
func newOLTPResult(run OLTPRun) *OLTPResult {
	return &OLTPResult{
		Design:    run.Design,
		Bucket:    run.Bucket,
		Commits:   metrics.NewSeries(run.Bucket),
		DiskRead:  metrics.NewSeries(run.Bucket),
		DiskWrite: metrics.NewSeries(run.Bucket),
		SSDRead:   metrics.NewSeries(run.Bucket),
		SSDWrite:  metrics.NewSeries(run.Bucket),
	}
}

// splitShardConfig is one kernel's slice of the engine configuration:
// 1/n of the database pages, memory pool, SSD frames, disk spindles and
// CPU cores, so the cluster's aggregate capacity matches the unsharded
// configuration. Fields the harness leaves to engine defaulting are
// materialized first where splitting them matters.
func splitShardConfig(c engine.Config, n int) engine.Config {
	div := func(v int) int {
		if v <= 0 {
			return v
		}
		if v /= n; v < 1 {
			v = 1
		}
		return v
	}
	if c.DBPages /= int64(n); c.DBPages < 1 {
		c.DBPages = 1
	}
	c.PoolPages = div(c.PoolPages)
	c.SSDFrames = div(c.SSDFrames)
	if c.Disks <= 0 {
		c.Disks = device.PaperArrayDisks
	}
	c.Disks = div(c.Disks)
	if c.CPUCores <= 0 {
		c.CPUCores = 16 // engine default
	}
	c.CPUCores = div(c.CPUCores)
	return c
}

// RunOLTPSharded executes one measurement on the sharded kernel: build
// Kernels sub-worlds on a sim.Cluster, run the split workload with
// RemoteFrac distributed transactions for Duration at the given width,
// and merge per-shard results in fixed shard order.
func RunOLTPSharded(sr ShardedRun) (*ShardedResult, error) {
	n := sr.Kernels
	if n < 2 {
		return nil, fmt.Errorf("harness: sharded run needs >= 2 kernels, got %d", n)
	}
	window := sr.Window
	if window <= 0 {
		window = sr.Run.Duration / shardEpochs
		if window <= 0 {
			window = 1
		}
	}
	cluster := sim.NewCluster(n, window)
	rt := &shardedRuntime{
		cluster:   cluster,
		worlds:    make([]*shardWorld, n),
		window:    window,
		writeFrac: sr.Run.Workload.UpdateFrac,
	}
	parts := sr.Run.Workload.Split(n)
	for i := 0; i < n; i++ {
		env := cluster.Kernel(i).Env()
		if sr.Instrument != nil {
			sr.Instrument(i, env)
		}
		cfg := splitShardConfig(sr.Run.Config, n)
		eng := engine.New(env, cfg)
		if err := eng.FormatDB(); err != nil {
			return nil, err
		}
		w := &shardWorld{env: env, eng: eng, cfg: cfg, res: newOLTPResult(sr.Run)}
		rt.worlds[i] = w
		wl := parts[i]
		wl.RemoteFrac = sr.RemoteFrac
		if sr.RemoteFrac > 0 {
			wl.Router = &shardRouter{rt: rt, src: i}
		}
		res := w.res
		wl.Start(env, eng, func(t time.Duration) { res.Commits.Add(t, 1) })
		startSampler(env, eng, sr.Run.Bucket, res)
	}
	cluster.Run(sr.Run.Duration, sr.Width)
	for _, w := range rt.worlds {
		w.eng.StopBackground()
	}

	out := &ShardedResult{
		OLTPResult: *newOLTPResult(sr.Run),
		Kernels:    n,
		Width:      sr.Width,
		Window:     window,
		Messages:   cluster.Messages(),
	}
	logs := make([]*wal.Log, n)
	for i, w := range rt.worlds {
		out.Commits.Merge(w.res.Commits)
		out.DiskRead.Merge(w.res.DiskRead)
		out.DiskWrite.Merge(w.res.DiskWrite)
		out.SSDRead.Merge(w.res.SSDRead)
		out.SSDWrite.Merge(w.res.SSDWrite)
		out.Engine = out.Engine.Add(w.eng.Stats())
		out.SSD = out.SSD.Add(w.eng.SSD().Stats())
		out.SSDInvalid += w.eng.SSD().InvalidCount()
		out.DirtySSD += w.eng.SSD().DirtyCount()
		logs[i] = w.eng.Log()
	}
	out.Events = cluster.Dispatched()
	if total := out.SSD.Hits + out.SSD.Misses; total > 0 {
		out.SSDHitRate = float64(out.SSD.Hits) / float64(total)
	}
	out.FinalTPS = finalRate(out.Commits, sr.Run.Scale.Hours(1))
	out.WALRecords = len(wal.MergeDurable(logs))
	out.WALChecksum = wal.MergeChecksum(logs)
	cluster.Shutdown()
	return out, nil
}

// shardedSweepFracs are the distributed-transaction fractions the
// `sharded` experiment sweeps: fully partitionable, the standard 5%, and
// a hostile 20%.
var shardedSweepFracs = []float64{0, ShardRemoteFrac, 0.20}

// shardedSweepDesigns are the SSD designs the `sharded` experiment runs.
var shardedSweepDesigns = []ssd.Design{ssd.DW, ssd.LC, ssd.TAC}

// ShardedSweep is the `sharded` experiment's result: TPC-C on the
// 8-kernel cluster across designs and distributed-transaction fractions.
type ShardedSweep struct {
	Kernels int
	Window  time.Duration
	Rows    []*ShardedResult
	Fracs   []float64
	Designs []ssd.Design
}

// RunShardedSweep measures how the partitioned model behaves as the
// cross-shard coupling grows: each row is one TPC-C 1K-warehouse run on
// the sharded kernel. The WAL checksum column witnesses that the merged
// global history (not just the aggregates) is deterministic.
func RunShardedSweep(scale Scale) (*ShardedSweep, error) {
	nf := len(shardedSweepFracs)
	rows, err := RunGrid(len(shardedSweepDesigns)*nf, func(i int) (*ShardedResult, error) {
		run := buildOLTP(scale, shardedSweepDesigns[i/nf], "tpcc", TPCCSizesGB[1], nil)
		return RunOLTPSharded(ShardedRun{
			Run:        run,
			Kernels:    ShardKernels,
			Width:      EffectiveShardWidth(),
			RemoteFrac: shardedSweepFracs[i%nf],
		})
	})
	if err != nil {
		return nil, err
	}
	return &ShardedSweep{
		Kernels: ShardKernels,
		Window:  rows[0].Window,
		Rows:    rows,
		Fracs:   shardedSweepFracs,
		Designs: shardedSweepDesigns,
	}, nil
}

// Print renders the sweep. Every column is deterministic at any -shards
// width and any -parallel worker count.
func (r *ShardedSweep) Print(w io.Writer) {
	fmt.Fprintf(w, "TPC-C 1K on the sharded kernel: %d partitions, window %v\n", r.Kernels, r.Window)
	fmt.Fprintf(w, "%-6s %8s %10s %12s %10s %10s  %s\n",
		"design", "remote%", "tx/s", "remote-ops", "messages", "wal-recs", "wal-checksum")
	for i, row := range r.Rows {
		fmt.Fprintf(w, "%-6s %8.0f %10.1f %12d %10d %10d  %016x\n",
			r.Designs[i/len(r.Fracs)], 100*r.Fracs[i%len(r.Fracs)], row.FinalTPS,
			row.Engine.RemoteReads+row.Engine.RemoteWrites,
			row.Messages, row.WALRecords, row.WALChecksum)
	}
}

// shardedOLTP adapts an OLTPRun to the sharded kernel with the standard
// model parameters and the currently effective width.
func shardedOLTP(run OLTPRun) (*OLTPResult, error) {
	r, err := RunOLTPSharded(ShardedRun{
		Run:        run,
		Kernels:    ShardKernels,
		Width:      EffectiveShardWidth(),
		RemoteFrac: ShardRemoteFrac,
	})
	if err != nil {
		return nil, err
	}
	return &r.OLTPResult, nil
}
