package harness

import (
	"math/rand"
	"reflect"
	"runtime"
	"testing"
	"time"

	"turbobp/internal/engine"
	"turbobp/internal/sim"
	"turbobp/internal/ssd"
	"turbobp/internal/workload"
)

// runShardedTraced executes one sharded run at the given width with
// per-kernel dispatch tracing. Each kernel's trace slice is written only
// by whichever goroutine is executing that kernel's epoch, and the
// cluster barriers order those writes, so collection is race-free.
func runShardedTraced(t *testing.T, sr ShardedRun, width int) ([][]dispatch, *ShardedResult) {
	t.Helper()
	traces := make([][]dispatch, sr.Kernels)
	sr.Width = width
	sr.Instrument = func(shard int, env *sim.Env) {
		env.SetDispatchHook(func(at time.Duration, seq uint64) {
			traces[shard] = append(traces[shard], dispatch{at, seq})
		})
	}
	res, err := RunOLTPSharded(sr)
	if err != nil {
		t.Fatal(err)
	}
	return traces, res
}

// TestShardWidthInvarianceProperty is the sharded kernel's core
// determinism property: across randomized mixed OLTP workloads, engine
// configurations and distributed-transaction fractions, execution widths
// 1, 2 and 4 produce identical per-kernel (at, seq) dispatch traces,
// identical merged engine/SSD statistics, identical device-transfer
// series and the same merged-WAL checksum.
func TestShardWidthInvarianceProperty(t *testing.T) {
	designs := []ssd.Design{ssd.NoSSD, ssd.CW, ssd.DW, ssd.LC, ssd.TAC}
	rng := rand.New(rand.NewSource(11))
	var totalCommits, totalMessages uint64
	for trial := 0; trial < 6; trial++ {
		dbPages := int64(600 + rng.Intn(1200))
		wl := workload.TPCC(dbPages)
		if rng.Intn(2) == 0 {
			wl = workload.TPCE(dbPages)
		}
		wl.Workers = 4 + rng.Intn(12)
		wl.AccessesPerTx = 1 + rng.Intn(8)
		wl.UpdateFrac = rng.Float64() * 0.6
		wl.Seed = rng.Int63()
		cfg := engine.Config{
			Design:      designs[rng.Intn(len(designs))],
			DBPages:     dbPages,
			PoolPages:   64 + rng.Intn(128),
			SSDFrames:   64 + rng.Intn(192),
			PayloadSize: 64,
		}
		dur := time.Duration(200+rng.Intn(300)) * time.Millisecond
		sr := ShardedRun{
			Run: OLTPRun{
				Scale:    tiny,
				Design:   cfg.Design,
				Workload: wl,
				Config:   cfg,
				Duration: dur,
				Bucket:   dur / 10,
			},
			Kernels:    4,
			RemoteFrac: float64(trial%3) * 0.1, // 0, 0.1, 0.2 across trials
			Window:     dur / time.Duration(32+rng.Intn(64)),
		}

		refTraces, ref := runShardedTraced(t, sr, 1)
		for _, width := range []int{2, 4} {
			traces, res := runShardedTraced(t, sr, width)
			for s := range refTraces {
				if !reflect.DeepEqual(traces[s], refTraces[s]) {
					t.Fatalf("trial %d (%s/%v, remote %.1f): kernel %d dispatch trace differs at width %d",
						trial, wl.Name, cfg.Design, sr.RemoteFrac, s, width)
				}
			}
			if res.Engine != ref.Engine {
				t.Errorf("trial %d width %d: engine stats differ:\nw1 %+v\nwN %+v",
					trial, width, ref.Engine, res.Engine)
			}
			if res.SSD != ref.SSD {
				t.Errorf("trial %d width %d: ssd stats differ:\nw1 %+v\nwN %+v",
					trial, width, ref.SSD, res.SSD)
			}
			if res.Events != ref.Events || res.Messages != ref.Messages {
				t.Errorf("trial %d width %d: events %d/%d, messages %d/%d",
					trial, width, res.Events, ref.Events, res.Messages, ref.Messages)
			}
			if res.WALChecksum != ref.WALChecksum || res.WALRecords != ref.WALRecords {
				t.Errorf("trial %d width %d: merged WAL differs (%d recs %016x vs %d recs %016x)",
					trial, width, res.WALRecords, res.WALChecksum, ref.WALRecords, ref.WALChecksum)
			}
			for _, s := range []struct {
				name     string
				got, ref []float64
			}{
				{"commits", res.Commits.Values(), ref.Commits.Values()},
				{"disk-read", res.DiskRead.Values(), ref.DiskRead.Values()},
				{"disk-write", res.DiskWrite.Values(), ref.DiskWrite.Values()},
				{"ssd-read", res.SSDRead.Values(), ref.SSDRead.Values()},
				{"ssd-write", res.SSDWrite.Values(), ref.SSDWrite.Values()},
			} {
				if !reflect.DeepEqual(s.got, s.ref) {
					t.Errorf("trial %d width %d: %s series differs", trial, width, s.name)
				}
			}
		}
		totalCommits += uint64(ref.Engine.Commits)
		totalMessages += ref.Messages
	}
	// Vacuity guard in aggregate: slow trials (cold pools on paper-speed
	// disks) may individually commit little, but a sweep that never
	// commits or never crosses shards proves nothing.
	if totalCommits == 0 {
		t.Error("no trial committed anything; property is vacuous")
	}
	if totalMessages == 0 {
		t.Error("no trial exchanged cross-shard messages; property is vacuous")
	}
}

// TestShardWorkerProductCap pins the SetWorkers × shards oversubscription
// rule: with W experiment workers on P procs, each run gets at most
// max(1, P/W) shard threads.
func TestShardWorkerProductCap(t *testing.T) {
	prev := runtime.GOMAXPROCS(8)
	defer func() {
		runtime.GOMAXPROCS(prev)
		SetWorkers(0)
		SetShards(0)
	}()
	SetShards(8)
	for _, tc := range []struct{ workers, want int }{
		{1, 8}, {2, 4}, {4, 2}, {8, 1},
	} {
		SetWorkers(tc.workers)
		if got := EffectiveShardWidth(); got != tc.want {
			t.Errorf("workers %d: effective width %d, want %d", tc.workers, got, tc.want)
		}
	}
	SetWorkers(1)
	if got := SetShards(12); got != ShardKernels {
		t.Errorf("SetShards(12) = %d, want cap at %d", got, ShardKernels)
	}
	SetShards(0)
	if got := EffectiveShardWidth(); got != 0 {
		t.Errorf("legacy path: effective width %d, want 0", got)
	}
}

// TestShardedExperimentLeavesNoGoroutines extends the goroutine-hygiene
// audit to the sharded runtime (8 sub-worlds of background processes per
// run, driven by transient epoch workers).
func TestShardedExperimentLeavesNoGoroutines(t *testing.T) {
	SetWorkers(1)
	defer SetWorkers(0)
	baseline := runtime.NumGoroutine()
	run := buildOLTP(tiny, ssd.LC, "tpcc", TPCCSizesGB[1], nil)
	if _, err := RunOLTPSharded(ShardedRun{
		Run: run, Kernels: ShardKernels, Width: 4, RemoteFrac: ShardRemoteFrac,
	}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if runtime.NumGoroutine() <= baseline {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines: %d after sharded run, baseline %d", runtime.NumGoroutine(), baseline)
}
