package harness

import (
	"fmt"
	"time"

	"turbobp/internal/engine"
	"turbobp/internal/page"
	"turbobp/internal/sim"
	"turbobp/internal/ssd"
	"turbobp/internal/workload"
)

// pid aliases the page id type for harness-internal helpers.
type pid = page.ID

// TPCHResult holds one design's TPC-H metrics at one scale factor.
type TPCHResult struct {
	Design     ssd.Design
	SF         int
	Power      float64
	Throughput float64
	QphH       float64
	PowerSecs  float64 // elapsed wall time of the power test
	ThruSecs   float64 // elapsed wall time of the throughput test
}

// RunTPCH runs the power test followed by the throughput test (§4.4) for
// one design at one scale factor.
func RunTPCH(scale Scale, design ssd.Design, sf int) (*TPCHResult, error) {
	cfg := scale.Config(design, TPCHSizesGB[sf])
	cfg.DirtyFraction = 0.01                   // λ = 1% (Table 2: E, H)
	cfg.CheckpointInterval = scale.Minutes(40) // as for TPC-E (§4.4)
	env := sim.NewEnv()
	e := engine.New(env, cfg)
	if err := e.FormatDB(); err != nil {
		return nil, err
	}
	h := workload.NewTPCH(sf, cfg.DBPages)

	res := &TPCHResult{Design: design, SF: sf}
	err := runToCompletion(env, scale.Hours(200), func(p *sim.Proc) error {
		t0 := p.Now()
		pr, err := h.RunPower(p, e)
		if err != nil {
			return err
		}
		// Scale component times back to paper-equivalent seconds so the
		// Power/Throughput/QphH magnitudes are comparable to Table 3.
		mult := float64(scale.Divisor)
		for i := range pr.QuerySecs {
			pr.QuerySecs[i] *= mult
		}
		for i := range pr.RefreshSecs {
			pr.RefreshSecs[i] *= mult
		}
		res.PowerSecs = (p.Now() - t0).Seconds() * mult
		res.Power = pr.Power(sf)
		elapsed, err := h.RunThroughput(p, e)
		if err != nil {
			return err
		}
		res.ThruSecs = elapsed.Seconds() * mult
		res.Throughput = h.Throughput(time.Duration(float64(elapsed) * mult))
		res.QphH = workload.QphH(res.Power, res.Throughput)
		return nil
	})
	e.StopBackground()
	env.Shutdown()
	if err != nil {
		return nil, err
	}
	return res, nil
}

// runToCompletion drives env until fn's process finishes or the virtual
// deadline passes.
func runToCompletion(env *sim.Env, deadline time.Duration, fn func(p *sim.Proc) error) error {
	done := false
	var err error
	env.Go("driver", func(p *sim.Proc) {
		err = fn(p)
		done = true
	})
	for !done && env.Now() < deadline {
		env.Run(env.Now() + 100*time.Millisecond)
	}
	if !done {
		return fmt.Errorf("harness: run did not complete within %v of virtual time", deadline)
	}
	return err
}

// Table3Result reproduces Table 3: power, throughput and QphH for every
// design at both scale factors.
type Table3Result struct {
	Rows []*TPCHResult
}

// Table3Designs is the paper's Table 3 column order.
var Table3Designs = []ssd.Design{ssd.LC, ssd.DW, ssd.TAC, ssd.NoSSD}

// RunTable3 reproduces Table 3 (and the QphH speedups feed Figure 5(g–h)).
func RunTable3(scale Scale, sfs []int) (*Table3Result, error) {
	nd := len(Table3Designs)
	rows, err := RunGrid(len(sfs)*nd, func(i int) (*TPCHResult, error) {
		return RunTPCH(scale, Table3Designs[i%nd], sfs[i/nd])
	})
	if err != nil {
		return nil, err
	}
	return &Table3Result{Rows: rows}, nil
}

// Fig5TPCH derives Figure 5(g–h) from Table 3: QphH speedups over noSSD.
func Fig5TPCH(scale Scale) (*Fig5Result, error) {
	t3, err := RunTable3(scale, []int{30, 100})
	if err != nil {
		return nil, err
	}
	res := &Fig5Result{Benchmark: "tpch"}
	base := map[int]float64{}
	for _, r := range t3.Rows {
		if r.Design == ssd.NoSSD {
			base[r.SF] = r.QphH
		}
	}
	for _, r := range t3.Rows {
		label := fmt.Sprintf("%d SF (%.0fGB)", r.SF, TPCHSizesGB[r.SF])
		speedup := 0.0
		if base[r.SF] > 0 {
			speedup = r.QphH / base[r.SF]
		}
		res.Rows = append(res.Rows, SpeedupRow{Label: label, Design: r.Design, TPS: r.QphH, Speedup: speedup})
	}
	return res, nil
}
