// Chaos harness: drives a real bpeserve process with committed load while
// repeatedly kill -9ing and restarting it, then checks that every
// acknowledged commit is durable, no page ever reads back torn or stale,
// and cross-partition pair transactions stay atomic across the crashes.
//
// The verification model is self-describing pages. Every tracked page is
// written only by its owning writer, with a stamped header
// (seq, writer, crc over header+pid), so any read can be classified as
// unwritten, intact-at-some-seq, or corrupt without consulting the server.
// Writers keep, per page, the last acknowledged seq (a durability floor)
// and the last sent seq (a ceiling); after each restart the harness rereads
// every tracked page and checks floor <= observed <= ceiling plus
// cross-restart monotonicity. Pair writers stamp two pages in different
// partitions with the same seq inside one transaction, so unequal seqs
// after recovery expose a broken cross-partition commit.
package loadbench

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math/rand"
	"net"
	"os/exec"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"turbobp/internal/netproto"
)

// StampLen is the self-describing page header: seq(8) writer(4) crc(4).
const StampLen = 16

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

func stampCRC(buf []byte, pid int64) uint32 {
	var key [20]byte
	copy(key[:12], buf[:12])
	binary.LittleEndian.PutUint64(key[12:20], uint64(pid))
	return crc32.Checksum(key[:], castagnoli)
}

// StampPage writes the verification header into buf (len >= StampLen).
func StampPage(buf []byte, pid int64, seq uint64, writer uint32) {
	binary.LittleEndian.PutUint64(buf[0:8], seq)
	binary.LittleEndian.PutUint32(buf[8:12], writer)
	binary.LittleEndian.PutUint32(buf[12:16], stampCRC(buf, pid))
}

// PageState classifies a read-back page header.
type PageState int

const (
	// PageUnwritten: the header is all zeroes — the page was never stamped.
	PageUnwritten PageState = iota
	// PageOK: the header checksum matches.
	PageOK
	// PageCorrupt: a nonzero header whose checksum does not match — a torn
	// or foreign write.
	PageCorrupt
)

// CheckPage decodes and classifies a page header read back from pid.
func CheckPage(buf []byte, pid int64) (seq uint64, writer uint32, st PageState) {
	if len(buf) < StampLen {
		return 0, 0, PageCorrupt
	}
	zero := true
	for _, b := range buf[:StampLen] {
		if b != 0 {
			zero = false
			break
		}
	}
	if zero {
		return 0, 0, PageUnwritten
	}
	seq = binary.LittleEndian.Uint64(buf[0:8])
	writer = binary.LittleEndian.Uint32(buf[8:12])
	if binary.LittleEndian.Uint32(buf[12:16]) != stampCRC(buf, pid) {
		return seq, writer, PageCorrupt
	}
	return seq, writer, PageOK
}

// Update is one page write inside a SendTx transaction.
type Update struct {
	Page int64
	Data []byte
}

// SendTx sends the updates and a commit over cl as one transaction, honoring
// the reconnect contract: the server's per-connection transaction dies with
// the connection, so if the client reconnected at any point during the
// sequence the whole thing is re-sent rather than committing a partial
// transaction or trusting a commit ack from a fresh, empty session. The
// redo is idempotent (same pages, same data), so an ambiguous commit — the
// server applied it but the ack was lost — resolves to the same state.
func SendTx(cl *netproto.Client, updates []Update) error {
	for attempt := 0; attempt < 6; attempt++ {
		r0 := cl.Stats().Reconnects
		for i := range updates {
			resp, err := cl.Do(&netproto.Request{Op: netproto.OpUpdate, Page: updates[i].Page, Data: updates[i].Data})
			if err != nil {
				return err
			}
			if resp.Status != netproto.StatusOK {
				return fmt.Errorf("update page %d: %s", updates[i].Page, resp.Data)
			}
		}
		if cl.Stats().Reconnects != r0 {
			continue // tx state lost mid-sequence; redo before committing a partial tx
		}
		resp, err := cl.Do(&netproto.Request{Op: netproto.OpCommit})
		if err != nil {
			return err
		}
		if resp.Status != netproto.StatusOK {
			return fmt.Errorf("commit: %s", resp.Data)
		}
		if cl.Stats().Reconnects != r0 {
			continue // the ack may be from a fresh, empty session; redo
		}
		return nil
	}
	return errors.New("transaction kept losing its connection")
}

// ChaosConfig configures RunChaos. Zero values take defaults.
type ChaosConfig struct {
	// ServerBin is the bpeserve binary to spawn. Required.
	ServerBin string
	// Dir is the data directory shared across server restarts. Required.
	Dir string
	// Addr is the listen address; empty picks a free localhost port.
	Addr string

	Pages       int64 // default 1024
	PageSize    int   // default 64
	Concurrency int   // default 4
	MaxInflight int   // server -max-inflight; default 64

	Cycles   int           // kill-9/restart cycles; default 3
	CycleLen time.Duration // load duration per cycle; default 1s

	Writers        int // single-page writers; default 4
	PagesPerWriter int // tracked pages each; default 16
	PairWriters    int // cross-partition pair writers; default 2
	PairsPerWriter int // tracked pairs each; default 4

	Seed int64     // workload determinism; default 1
	Log  io.Writer // progress lines; nil discards
}

// ChaosReport is the harness verdict. Any nonzero violation counter means
// the durability or atomicity contract broke.
type ChaosReport struct {
	Cycles       int
	Kills        int
	AckedCommits int64 // transactions acknowledged to a writer

	LostAcked   int64 // acked commit read back older after restart
	StaleReads  int64 // page seq moved backwards across restarts
	Corrupt     int64 // torn header or foreign writer id
	TornPairs   int64 // cross-partition pair with unequal seqs
	PhantomSeqs int64 // page seq newer than anything ever sent
	VerifyFails int64 // read-your-writes check failed during load

	Retries    int64
	Sheds      int64
	Deadlines  int64
	Busy       int64
	Reconnects int64
}

// Failed reports whether any correctness violation was observed.
func (r *ChaosReport) Failed() bool {
	return r.LostAcked+r.StaleReads+r.Corrupt+r.TornPairs+r.PhantomSeqs+r.VerifyFails > 0
}

func (r *ChaosReport) String() string {
	return fmt.Sprintf("chaos: %d cycles, %d kills, %d acked commits | lost=%d stale=%d corrupt=%d torn-pairs=%d phantom=%d verify-fails=%d | retries=%d sheds=%d deadline=%d busy=%d reconnects=%d",
		r.Cycles, r.Kills, r.AckedCommits,
		r.LostAcked, r.StaleReads, r.Corrupt, r.TornPairs, r.PhantomSeqs, r.VerifyFails,
		r.Retries, r.Sheds, r.Deadlines, r.Busy, r.Reconnects)
}

// pageTrack is the harness's ground truth for one tracked page.
type pageTrack struct {
	pid      int64
	acked    uint64 // durability floor: last acknowledged seq
	maxSent  uint64 // ceiling: last seq ever sent
	lastSeen uint64 // last seq observed by a verify pass
}

// pairTrack is one cross-partition page pair written atomically.
type pairTrack struct {
	p1, p2   int64
	acked    uint64
	maxSent  uint64
	lastSeen uint64
}

// syncWriter serializes writes to the shared chaos log: the harness and
// the child process's stdout copier write concurrently.
type syncWriter struct {
	mu sync.Mutex
	w  io.Writer
}

func (s *syncWriter) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.w.Write(p)
}

type chaos struct {
	cfg ChaosConfig
	log io.Writer // nil, or a syncWriter around cfg.Log
	cmd *exec.Cmd

	tracks [][]*pageTrack // per writer
	pairs  [][]*pairTrack // per pair writer

	stop atomic.Bool

	acked, lost, stale, corrupt, torn, phantom, verifyFails int64
	retries, sheds, deadlines, busy, reconnects             int64
}

func (h *chaos) logf(format string, args ...any) {
	if h.log != nil {
		fmt.Fprintf(h.log, "chaos: "+format+"\n", args...)
	}
}

// RunChaos runs the kill-9 chaos loop: start the server fresh, then for
// each cycle drive committed load, SIGKILL the server mid-load, restart it
// with -open-existing and re-verify every tracked page. It finishes with a
// graceful SIGTERM shutdown so the drain path is exercised too.
func RunChaos(cfg ChaosConfig) (*ChaosReport, error) {
	if cfg.ServerBin == "" || cfg.Dir == "" {
		return nil, errors.New("chaos: ServerBin and Dir are required")
	}
	if cfg.Pages == 0 {
		cfg.Pages = 1024
	}
	if cfg.PageSize == 0 {
		cfg.PageSize = 64
	}
	if cfg.Concurrency == 0 {
		cfg.Concurrency = 4
	}
	if cfg.MaxInflight == 0 {
		cfg.MaxInflight = 64
	}
	if cfg.Cycles == 0 {
		cfg.Cycles = 3
	}
	if cfg.CycleLen == 0 {
		cfg.CycleLen = time.Second
	}
	if cfg.Writers == 0 {
		cfg.Writers = 4
	}
	if cfg.PagesPerWriter == 0 {
		cfg.PagesPerWriter = 16
	}
	if cfg.PairWriters == 0 {
		cfg.PairWriters = 2
	}
	if cfg.PairsPerWriter == 0 {
		cfg.PairsPerWriter = 4
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.PageSize < StampLen {
		return nil, fmt.Errorf("chaos: page size %d below stamp %d", cfg.PageSize, StampLen)
	}
	if cfg.Addr == "" {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		cfg.Addr = ln.Addr().String()
		ln.Close()
	}

	h := &chaos{cfg: cfg}
	if cfg.Log != nil {
		h.log = &syncWriter{w: cfg.Log}
	}
	// Normal writers own pages in the first half of the id space; pair
	// writers own (p, p + Pages/4) pairs in the second half, which lands the
	// two pages in different partitions for Concurrency >= 4.
	half, quarter := cfg.Pages/2, cfg.Pages/4
	if int64(cfg.Writers*cfg.PagesPerWriter) > half ||
		int64(cfg.PairWriters*cfg.PairsPerWriter) > quarter {
		return nil, errors.New("chaos: too many tracked pages for the id space")
	}
	for w := 0; w < cfg.Writers; w++ {
		var ts []*pageTrack
		for k := 0; k < cfg.PagesPerWriter; k++ {
			ts = append(ts, &pageTrack{pid: int64(w*cfg.PagesPerWriter + k)})
		}
		h.tracks = append(h.tracks, ts)
	}
	for w := 0; w < cfg.PairWriters; w++ {
		var ps []*pairTrack
		for k := 0; k < cfg.PairsPerWriter; k++ {
			p1 := half + int64(w*cfg.PairsPerWriter+k)
			ps = append(ps, &pairTrack{p1: p1, p2: p1 + quarter})
		}
		h.pairs = append(h.pairs, ps)
	}

	if err := h.startServer(false); err != nil {
		return nil, err
	}
	defer func() {
		if h.cmd != nil {
			h.cmd.Process.Kill()
			h.cmd.Wait()
		}
	}()

	for cycle := 1; cycle <= cfg.Cycles; cycle++ {
		h.loadPhase()
		h.logf("cycle %d: killed server mid-load (%d acked commits so far)", cycle, atomic.LoadInt64(&h.acked))
		if err := h.startServer(true); err != nil {
			return nil, fmt.Errorf("cycle %d restart: %w", cycle, err)
		}
		if err := h.verify(cycle); err != nil {
			return nil, fmt.Errorf("cycle %d verify: %w", cycle, err)
		}
	}
	if err := h.shutdown(); err != nil {
		return nil, err
	}

	rep := &ChaosReport{
		Cycles: cfg.Cycles, Kills: cfg.Cycles,
		AckedCommits: h.acked,
		LostAcked:    h.lost, StaleReads: h.stale, Corrupt: h.corrupt,
		TornPairs: h.torn, PhantomSeqs: h.phantom, VerifyFails: h.verifyFails,
		Retries: h.retries, Sheds: h.sheds, Deadlines: h.deadlines,
		Busy: h.busy, Reconnects: h.reconnects,
	}
	h.logf("%s", rep)
	return rep, nil
}

// startServer spawns bpeserve on the shared directory and waits for health.
func (h *chaos) startServer(existing bool) error {
	args := []string{
		"-addr", h.cfg.Addr,
		"-dir", h.cfg.Dir,
		"-pages", fmt.Sprint(h.cfg.Pages),
		"-page-size", fmt.Sprint(h.cfg.PageSize),
		"-pool", fmt.Sprint(h.cfg.Pages / 4),
		"-concurrency", fmt.Sprint(h.cfg.Concurrency),
		"-design", "nossd", "-ssd", "0",
		"-commit-sync", "group",
		"-max-inflight", fmt.Sprint(h.cfg.MaxInflight),
		"-drain", "2s",
	}
	if existing {
		args = append(args, "-open-existing")
	}
	cmd := exec.Command(h.cfg.ServerBin, args...)
	if h.log != nil {
		cmd.Stdout = h.log
		cmd.Stderr = h.log
	}
	if err := cmd.Start(); err != nil {
		return err
	}
	h.cmd = cmd
	if err := waitHealthy(h.cfg.Addr, 10*time.Second); err != nil {
		cmd.Process.Kill()
		cmd.Wait()
		h.cmd = nil
		return err
	}
	return nil
}

// killServer is the fault: SIGKILL, no warning, no flush.
func (h *chaos) killServer() {
	h.cmd.Process.Kill()
	h.cmd.Wait()
	h.cmd = nil
}

// shutdown exercises the graceful path: SIGTERM and a bounded wait.
func (h *chaos) shutdown() error {
	h.cmd.Process.Signal(syscall.SIGTERM)
	done := make(chan error, 1)
	go func() { done <- h.cmd.Wait() }()
	select {
	case err := <-done:
		h.cmd = nil
		return err
	case <-time.After(10 * time.Second):
		h.cmd.Process.Kill()
		<-done
		h.cmd = nil
		return errors.New("chaos: graceful shutdown timed out")
	}
}

// waitHealthy polls the health op until the server answers ok.
func waitHealthy(addr string, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		cl, err := netproto.Dial(netproto.ClientConfig{
			Addr: addr, DialTimeout: 200 * time.Millisecond,
			MaxReconnects: 1, BaseBackoff: time.Millisecond,
		})
		if err == nil {
			ok, herr := cl.Health()
			cl.Close()
			if ok && herr == nil {
				return nil
			}
		}
		time.Sleep(20 * time.Millisecond)
	}
	return fmt.Errorf("chaos: server at %s not healthy within %s", addr, timeout)
}

// loadPhase runs all writers for CycleLen, kills the server mid-load, then
// stops the writers.
func (h *chaos) loadPhase() {
	h.stop.Store(false)
	var wg sync.WaitGroup
	for w := range h.tracks {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h.normalWriter(w)
		}(w)
	}
	for w := range h.pairs {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h.pairWriter(w)
		}(w)
	}
	time.Sleep(h.cfg.CycleLen)
	h.killServer()
	h.stop.Store(true)
	wg.Wait()
}

// dialWorker dials a client for a load worker, retrying until stop.
func (h *chaos) dialWorker(seed uint64) *netproto.Client {
	for !h.stop.Load() {
		cl, err := netproto.Dial(netproto.ClientConfig{
			Addr: h.cfg.Addr, Deadline: 2 * time.Second,
			MaxRetries: 10, MaxReconnects: 8,
			BaseBackoff: 2 * time.Millisecond, MaxBackoff: 50 * time.Millisecond,
			Seed: seed,
		})
		if err == nil {
			return cl
		}
		time.Sleep(20 * time.Millisecond)
	}
	return nil
}

// retire folds a client's retry counters into the report and closes it.
func (h *chaos) retire(cl *netproto.Client) {
	s := cl.Stats()
	atomic.AddInt64(&h.retries, s.Retries)
	atomic.AddInt64(&h.sheds, s.Sheds)
	atomic.AddInt64(&h.deadlines, s.Deadlines)
	atomic.AddInt64(&h.busy, s.Busy)
	atomic.AddInt64(&h.reconnects, s.Reconnects)
	cl.Close()
}

// normalWriter hammers its own tracked pages with stamped update+commit
// transactions, read-verifying its own writes periodically.
func (h *chaos) normalWriter(w int) {
	rng := rand.New(rand.NewSource(h.cfg.Seed + int64(w)*1009))
	cl := h.dialWorker(uint64(h.cfg.Seed) + uint64(w))
	if cl == nil {
		return
	}
	defer func() { h.retire(cl) }()
	value := make([]byte, StampLen)
	tracks := h.tracks[w]
	for !h.stop.Load() {
		tr := tracks[rng.Intn(len(tracks))]
		seq := tr.maxSent + 1
		tr.maxSent = seq
		StampPage(value, tr.pid, seq, uint32(w))
		if err := SendTx(cl, []Update{{Page: tr.pid, Data: value}}); err != nil {
			if h.stop.Load() {
				return
			}
			h.retire(cl)
			if cl = h.dialWorker(uint64(h.cfg.Seed) + uint64(w)); cl == nil {
				return
			}
			continue
		}
		tr.acked = seq
		atomic.AddInt64(&h.acked, 1)
		if seq%8 == 0 {
			// Read-your-writes: the only writer of this page just committed
			// seq, so a read must return exactly seq, intact.
			data, err := cl.Get(tr.pid)
			if err == nil {
				got, wr, st := CheckPage(data, tr.pid)
				if st != PageOK || wr != uint32(w) || got != seq {
					atomic.AddInt64(&h.verifyFails, 1)
					h.logf("writer %d page %d: read-your-writes got seq=%d st=%d want %d", w, tr.pid, got, st, seq)
				}
			}
		}
	}
}

// pairWriter commits (p1, p2) pairs in different partitions with the same
// seq inside one transaction — the cross-partition atomicity probe.
func (h *chaos) pairWriter(w int) {
	rng := rand.New(rand.NewSource(h.cfg.Seed + int64(w)*2003 + 1))
	id := uint32(1000 + w)
	cl := h.dialWorker(uint64(h.cfg.Seed) + uint64(w) + 500)
	if cl == nil {
		return
	}
	defer func() { h.retire(cl) }()
	v1 := make([]byte, StampLen)
	v2 := make([]byte, StampLen)
	pairs := h.pairs[w]
	for !h.stop.Load() {
		pr := pairs[rng.Intn(len(pairs))]
		seq := pr.maxSent + 1
		pr.maxSent = seq
		StampPage(v1, pr.p1, seq, id)
		StampPage(v2, pr.p2, seq, id)
		err := SendTx(cl, []Update{{Page: pr.p1, Data: v1}, {Page: pr.p2, Data: v2}})
		if err != nil {
			if h.stop.Load() {
				return
			}
			h.retire(cl)
			if cl = h.dialWorker(uint64(h.cfg.Seed) + uint64(w) + 500); cl == nil {
				return
			}
			continue
		}
		pr.acked = seq
		atomic.AddInt64(&h.acked, 1)
	}
}

// verify rereads every tracked page after a restart and checks the
// durability floor, the sent ceiling, monotonicity and pair atomicity.
func (h *chaos) verify(cycle int) error {
	cl, err := netproto.Dial(netproto.ClientConfig{
		Addr: h.cfg.Addr, Deadline: 5 * time.Second, Seed: 99,
	})
	if err != nil {
		return err
	}
	defer cl.Close()

	pagesOK := 0
	checkOne := func(pid int64, owner uint32, tr *pageTrack) error {
		data, err := cl.Get(pid)
		if err != nil {
			return err
		}
		seq, wr, st := CheckPage(data, pid)
		switch st {
		case PageCorrupt:
			h.corrupt++
			h.logf("cycle %d: page %d corrupt (seq=%d writer=%d)", cycle, pid, seq, wr)
		case PageUnwritten:
			if tr.acked > 0 {
				h.lost++
				h.logf("cycle %d: page %d lost acked seq %d (unwritten)", cycle, pid, tr.acked)
			}
		case PageOK:
			if wr != owner {
				h.corrupt++
				h.logf("cycle %d: page %d owned by %d but stamped by %d", cycle, pid, owner, wr)
			}
			if seq < tr.acked {
				h.lost++
				h.logf("cycle %d: page %d regressed to seq %d below acked %d", cycle, pid, seq, tr.acked)
			}
			if seq > tr.maxSent {
				h.phantom++
				h.logf("cycle %d: page %d at seq %d beyond anything sent (%d)", cycle, pid, seq, tr.maxSent)
			}
			if seq < tr.lastSeen {
				h.stale++
				h.logf("cycle %d: page %d went backwards %d -> %d", cycle, pid, tr.lastSeen, seq)
			}
			pagesOK++
		}
		if seq > tr.lastSeen {
			tr.lastSeen = seq
		}
		return nil
	}

	for w, ts := range h.tracks {
		for _, tr := range ts {
			if err := checkOne(tr.pid, uint32(w), tr); err != nil {
				return err
			}
		}
	}
	for w, ps := range h.pairs {
		id := uint32(1000 + w)
		for _, pr := range ps {
			// Check both halves with a synthetic pageTrack sharing the
			// pair's floor/ceiling, then pin atomicity: equal seqs.
			t1 := pageTrack{pid: pr.p1, acked: pr.acked, maxSent: pr.maxSent, lastSeen: pr.lastSeen}
			t2 := pageTrack{pid: pr.p2, acked: pr.acked, maxSent: pr.maxSent, lastSeen: pr.lastSeen}
			if err := checkOne(pr.p1, id, &t1); err != nil {
				return err
			}
			if err := checkOne(pr.p2, id, &t2); err != nil {
				return err
			}
			if t1.lastSeen != t2.lastSeen {
				h.torn++
				h.logf("cycle %d: pair (%d,%d) torn: seq %d vs %d", cycle, pr.p1, pr.p2, t1.lastSeen, t2.lastSeen)
			}
			if t1.lastSeen > pr.lastSeen {
				pr.lastSeen = t1.lastSeen
			}
		}
	}
	h.logf("cycle %d: verified %d stamped pages across %d writers + %d pair writers",
		cycle, pagesOK, len(h.tracks), len(h.pairs))
	return nil
}
