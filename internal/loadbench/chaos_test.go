package loadbench

import (
	"bytes"
	"os/exec"
	"path/filepath"
	"testing"
	"time"
)

// TestStampRoundTrip pins the page-stamp format and its classifier.
func TestStampRoundTrip(t *testing.T) {
	buf := make([]byte, 64)
	StampPage(buf, 42, 7, 3)
	seq, wr, st := CheckPage(buf, 42)
	if st != PageOK || seq != 7 || wr != 3 {
		t.Fatalf("CheckPage = (%d, %d, %d)", seq, wr, st)
	}
	// The crc binds the stamp to its page id: the same bytes on another
	// page read as corrupt, not as a valid foreign write.
	if _, _, st := CheckPage(buf, 43); st != PageCorrupt {
		t.Fatalf("stamp valid on wrong page: st=%d", st)
	}
	// A flipped byte is corrupt.
	buf[3] ^= 0x40
	if _, _, st := CheckPage(buf, 42); st != PageCorrupt {
		t.Fatalf("torn stamp not detected: st=%d", st)
	}
	// A zero page is unwritten.
	if _, _, st := CheckPage(make([]byte, 64), 42); st != PageUnwritten {
		t.Fatalf("zero page st=%d", st)
	}
}

// buildServer compiles cmd/bpeserve into dir and returns the binary path.
func buildServer(t *testing.T, dir string) string {
	t.Helper()
	bin := filepath.Join(dir, "bpeserve")
	cmd := exec.Command("go", "build", "-o", bin, "turbobp/cmd/bpeserve")
	cmd.Dir = "../.."
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("build bpeserve: %v\n%s", err, out)
	}
	return bin
}

// TestChaosKill9 is the crash-recovery acceptance test: real bpeserve
// process, committed load, kill -9 mid-load, restart with -open-existing,
// re-verify every acked commit — twice — then a graceful SIGTERM drain.
func TestChaosKill9(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns processes and sleeps; skipped in -short")
	}
	bin := buildServer(t, t.TempDir())
	var log bytes.Buffer
	rep, err := RunChaos(ChaosConfig{
		ServerBin: bin,
		Dir:       t.TempDir(),
		Cycles:    2,
		CycleLen:  400 * time.Millisecond,
		Seed:      42,
		Log:       &log,
	})
	if err != nil {
		t.Fatalf("RunChaos: %v\n%s", err, log.Bytes())
	}
	if rep.Kills != 2 {
		t.Fatalf("kills = %d, want 2", rep.Kills)
	}
	if rep.AckedCommits == 0 {
		t.Fatalf("no commits were acknowledged; harness generated no load\n%s", log.Bytes())
	}
	if rep.Failed() {
		t.Fatalf("chaos found violations: %s\n%s", rep, log.Bytes())
	}
	t.Logf("%s", rep)
}
