// Package loadbench holds the wall-clock concurrency benchmarks of the
// partitioned file backend: point reads and update+commit transactions at
// 1/4/8 worker goroutines, and the group-commit fsync-amortization
// measurement. Unlike internal/microbench (virtual-time, single-threaded)
// these run real goroutines against a real-file turbobp.DB, so ns/op moves
// with the machine's core count; every report should sit next to the
// effective-parallelism numbers (harness.EffectiveWorkers). The same
// functions back the root-package Benchmark wrappers and the `server`
// section of bpesim -benchjson.
package loadbench

import (
	"encoding/binary"
	"math/rand"
	"sync"
	"testing"

	"turbobp"
)

const (
	dbPages  = 1024
	pageSize = 128
)

// openDB builds a partitioned file-backed DB sized so the whole database
// fits in the buffer pool (reads exercise the latched fast path, not the
// disk).
func openDB(b *testing.B, mode turbobp.CommitSyncMode) *turbobp.DB {
	b.Helper()
	db, err := turbobp.Open(turbobp.Options{
		Design:      turbobp.LC,
		DBPages:     dbPages,
		PoolPages:   2 * dbPages,
		SSDFrames:   dbPages,
		PageSize:    pageSize,
		Dir:         b.TempDir(),
		Concurrency: 4,
		CommitSync:  mode,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { db.Close() })
	return db
}

// warm touches every page once so the pool is fully resident.
func warm(b *testing.B, db *turbobp.DB) {
	b.Helper()
	buf := make([]byte, pageSize)
	for pid := int64(0); pid < dbPages; pid++ {
		if _, err := db.Read(pid, buf); err != nil {
			b.Fatal(err)
		}
	}
}

// runWorkers splits b.N operations over the worker goroutines.
func runWorkers(b *testing.B, workers int, fn func(w, ops int)) {
	b.Helper()
	per, extra := b.N/workers, b.N%workers
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		n := per
		if w < extra {
			n++
		}
		wg.Add(1)
		go func(w, n int) {
			defer wg.Done()
			fn(w, n)
		}(w, n)
	}
	wg.Wait()
}

// ConcurrentGet measures point reads of resident pages from the given
// number of concurrent goroutines. ns/op is aggregate: total wall time
// over total operations, so with real cores behind the workers it drops as
// workers rise.
func ConcurrentGet(b *testing.B, workers int) {
	db := openDB(b, turbobp.CommitSyncNone)
	warm(b, db)
	b.ResetTimer()
	runWorkers(b, workers, func(w, ops int) {
		rng := rand.New(rand.NewSource(int64(w + 1)))
		buf := make([]byte, pageSize)
		for i := 0; i < ops; i++ {
			if _, err := db.Read(rng.Int63n(dbPages), buf); err != nil {
				b.Error(err)
				return
			}
		}
	})
}

// ConcurrentUpdateCommit measures single-page committed updates (with
// group-commit durability) from the given number of concurrent goroutines.
func ConcurrentUpdateCommit(b *testing.B, workers int) {
	db := openDB(b, turbobp.CommitSyncGroup)
	warm(b, db)
	b.ResetTimer()
	runWorkers(b, workers, func(w, ops int) {
		rng := rand.New(rand.NewSource(int64(100 + w)))
		for i := 0; i < ops; i++ {
			err := db.Update(rng.Int63n(dbPages), func(p []byte) {
				binary.LittleEndian.PutUint64(p, uint64(i))
			})
			if err != nil {
				b.Error(err)
				return
			}
		}
	})
}

// CommitFsyncs runs committed updates from 8 goroutines under the given
// durability mode and returns the measured fsyncs per commit (1.0 in
// CommitSyncEach mode; well under 1 with group commit once committers
// overlap). The ratio is also reported as a benchmark metric.
func CommitFsyncs(b *testing.B, mode turbobp.CommitSyncMode) float64 {
	const workers = 8
	db := openDB(b, mode)
	warm(b, db)
	before := db.Stats()
	b.ResetTimer()
	runWorkers(b, workers, func(w, ops int) {
		rng := rand.New(rand.NewSource(int64(500 + w)))
		for i := 0; i < ops; i++ {
			err := db.Update(rng.Int63n(dbPages), func(p []byte) {
				binary.LittleEndian.PutUint64(p, uint64(i))
			})
			if err != nil {
				b.Error(err)
				return
			}
		}
	})
	b.StopTimer()
	s := db.Stats()
	commits := s.SyncedCommits - before.SyncedCommits
	syncs := s.WALSyncs - before.WALSyncs
	if commits == 0 {
		return 0
	}
	ratio := float64(syncs) / float64(commits)
	b.ReportMetric(ratio, "fsyncs/commit")
	return ratio
}
