// Package lru2 implements the LRU-2 page-replacement policy (O'Neil, O'Neil
// and Weikum, SIGMOD 1993), which both the paper's SSD manager and this
// repository's memory buffer pool use.
//
// LRU-2 evicts the entry whose second-most-recent access is oldest. Entries
// referenced only once have an infinite backward 2-distance and are
// preferred victims, ordered among themselves by their single access time.
//
// Everything is flat: entries live in a slot arena (recycled through a free
// list, so the steady state allocates nothing), the priority heap is a slice
// of snapshot nodes, and the key index is a pagetab open-addressing table.
//
// The heap is lazy, in the style of the SSD manager's TAC heap: a node
// records the (prev, last) pair its entry had when pushed, and Touch only
// updates the entry, leaving the node stale. Victim and Pop revalidate the
// top — refreshing stale nodes in place and discarding nodes orphaned by
// Remove (detected by a per-slot generation counter) — until the minimum is
// genuine. This makes Touch O(1) instead of O(log n), which is what the
// buffer pool's hit path does on every access. Laziness cannot change any
// victim sequence: the ordering (prev, last, key) is a total order, an
// entry's (prev, last) only grows under Touch, so a validated top is the
// unique true minimum.
package lru2

import (
	"time"

	"turbobp/internal/pagetab"
)

// never is the penultimate-access value of entries seen only once; it sorts
// before every real timestamp, making such entries preferred victims.
const never = time.Duration(-1) << 32

// entry is one tracked key, stored in the cache's slot arena.
type entry struct {
	key  int64
	last time.Duration // most recent access
	prev time.Duration // access before that, or never
	gen  uint32        // bumped on release; orphans outstanding heap nodes
}

// node is one heap element: a slot plus the snapshot it was ordered by.
type node struct {
	slot int32
	gen  uint32
	key  int64 // snapshot copies so comparisons never read a reused slot
	last time.Duration
	prev time.Duration
}

// Cache tracks LRU-2 history for a set of keys. The zero value is not
// usable; call New.
type Cache struct {
	arena []entry
	free  []int32 // recycled arena slots; steady-state insert-after-evict reuses them
	heap  []node  // lazy min-heap of snapshots
	dead  int     // orphaned nodes still in the heap; bounded by compact
	index pagetab.Table[int32]
}

// New returns an empty cache.
func New() *Cache {
	return &Cache{}
}

// less orders the heap by snapshot: the smaller node surfaces first. The
// key tiebreak makes this a total order, so the validated minimum is unique
// and independent of heap arrangement.
func (a *node) less(b *node) bool {
	if a.prev != b.prev {
		return a.prev < b.prev
	}
	if a.last != b.last {
		return a.last < b.last
	}
	return a.key < b.key
}

// alloc returns a blank arena slot, reusing a recycled one when available.
func (c *Cache) alloc() int32 {
	if n := len(c.free); n > 0 {
		slot := c.free[n-1]
		c.free = c.free[:n-1]
		return slot
	}
	c.arena = append(c.arena, entry{})
	return int32(len(c.arena) - 1)
}

// release retires a slot: out of the index, onto the free list, and any
// node still in the heap orphaned by the generation bump.
func (c *Cache) release(slot int32) {
	e := &c.arena[slot]
	c.index.Delete(uint64(e.key))
	*e = entry{gen: e.gen + 1}
	c.free = append(c.free, slot)
}

// up sifts the node at position j toward the root.
func (c *Cache) up(j int) {
	h := c.heap
	for j > 0 {
		i := (j - 1) / 2 // parent
		if !h[j].less(&h[i]) {
			break
		}
		h[i], h[j] = h[j], h[i]
		j = i
	}
}

// down sifts the node at position i toward the leaves.
func (c *Cache) down(i int) {
	h := c.heap
	n := len(h)
	for {
		j := 2*i + 1
		if j >= n {
			break
		}
		if j2 := j + 1; j2 < n && h[j2].less(&h[j]) {
			j = j2
		}
		if !h[j].less(&h[i]) {
			break
		}
		h[i], h[j] = h[j], h[i]
		i = j
	}
}

// push adds a fresh snapshot node for slot.
func (c *Cache) push(slot int32) {
	if c.dead*2 > len(c.heap) && len(c.heap) >= 64 {
		c.compact()
	}
	e := &c.arena[slot]
	c.heap = append(c.heap, node{slot: slot, gen: e.gen, key: e.key, last: e.last, prev: e.prev})
	c.up(len(c.heap) - 1)
}

// compact drops orphaned nodes, refreshes stale ones and re-heapifies,
// bounding the heap at twice the live population. Rearranging the heap
// cannot affect any victim order: the comparison is a total order, so the
// validated minimum is arrangement-independent.
func (c *Cache) compact() {
	h := c.heap[:0]
	for _, n := range c.heap {
		e := &c.arena[n.slot]
		if n.gen != e.gen {
			continue
		}
		n.last, n.prev = e.last, e.prev
		h = append(h, n)
	}
	c.heap = h
	for i := len(h)/2 - 1; i >= 0; i-- {
		c.down(i)
	}
	c.dead = 0
}

// clean revalidates the heap top until it is a live, current node, and
// reports whether one exists. Orphaned nodes (generation mismatch after a
// Remove) are discarded; stale nodes (entry touched since the snapshot) are
// refreshed in place and sifted down — a touched entry only grows, so it
// can only move toward the leaves. Each round removes or freshens a node,
// so the loop's total work is amortized against past Touch and Remove
// calls.
func (c *Cache) clean() bool {
	for len(c.heap) > 0 {
		t := &c.heap[0]
		e := &c.arena[t.slot]
		if t.gen != e.gen {
			n := len(c.heap) - 1
			c.heap[0] = c.heap[n]
			c.heap = c.heap[:n]
			c.dead--
			if n > 0 {
				c.down(0)
			}
			continue
		}
		if t.last != e.last || t.prev != e.prev {
			t.last, t.prev = e.last, e.prev
			c.down(0)
			continue
		}
		return true
	}
	return false
}

// Len returns the number of tracked keys.
func (c *Cache) Len() int { return c.index.Len() }

// Contains reports whether key is tracked.
func (c *Cache) Contains(key int64) bool {
	return c.index.Contains(uint64(key))
}

// Touch records an access to key at time now, inserting it if absent.
func (c *Cache) Touch(key int64, now time.Duration) {
	if slot, ok := c.index.Get(uint64(key)); ok {
		e := &c.arena[slot]
		e.prev = e.last
		e.last = now
		return // the heap node is now stale; clean() refreshes it lazily
	}
	c.insert(key, now, never)
}

// TouchHistory inserts (or resets) key with an explicit access history, used
// to re-insert an entry that was temporarily removed without perturbing its
// replacement priority.
func (c *Cache) TouchHistory(key int64, last, prev time.Duration) {
	if slot, ok := c.index.Get(uint64(key)); ok {
		e := &c.arena[slot]
		if prev > e.prev || (prev == e.prev && last >= e.last) {
			// The history moves forward (or stays put) in the heap's
			// (prev, last) order — the same monotonic growth Touch relies
			// on, so the lazy update applies: the node goes stale and
			// clean() refreshes it by sifting down. This is the hot case
			// (the SSD manager touches a frame on every hit).
			e.last, e.prev = last, prev
			return
		}
		// Backward move, which lazy refreshing cannot handle; orphan the
		// old node and push a fresh one.
		e.last, e.prev = last, prev
		e.gen++
		c.dead++
		c.push(slot)
		return
	}
	c.insert(key, last, prev)
}

// insert adds a new key with the given history.
func (c *Cache) insert(key int64, last, prev time.Duration) {
	slot := c.alloc()
	e := &c.arena[slot]
	e.key, e.last, e.prev = key, last, prev
	c.index.Put(uint64(key), slot)
	c.push(slot)
}

// Remove drops key from the cache; it is a no-op if absent.
func (c *Cache) Remove(key int64) {
	slot, ok := c.index.Get(uint64(key))
	if !ok {
		return
	}
	c.release(slot) // the generation bump orphans the heap node
	c.dead++
}

// Victim returns the current LRU-2 victim without removing it.
func (c *Cache) Victim() (key int64, ok bool) {
	if !c.clean() {
		return 0, false
	}
	return c.heap[0].key, true
}

// Pop removes and returns the current victim.
func (c *Cache) Pop() (key int64, ok bool) {
	if !c.clean() {
		return 0, false
	}
	t := c.heap[0]
	n := len(c.heap) - 1
	c.heap[0] = c.heap[n]
	c.heap = c.heap[:n]
	if n > 0 {
		c.down(0)
	}
	c.release(t.slot)
	return t.key, true
}

// History returns the last and penultimate access times of key, with seen
// reporting presence. A penultimate of Never() means one access so far.
func (c *Cache) History(key int64) (last, prev time.Duration, seen bool) {
	slot, ok := c.index.Get(uint64(key))
	if !ok {
		return 0, 0, false
	}
	e := &c.arena[slot]
	return e.last, e.prev, true
}

// Never returns the sentinel penultimate-access value of once-referenced
// entries.
func Never() time.Duration { return never }
