// Package lru2 implements the LRU-2 page-replacement policy (O'Neil, O'Neil
// and Weikum, SIGMOD 1993), which both the paper's SSD manager and this
// repository's memory buffer pool use.
//
// LRU-2 evicts the entry whose second-most-recent access is oldest. Entries
// referenced only once have an infinite backward 2-distance and are
// preferred victims, ordered among themselves by their single access time.
// The structure is a min-heap with an index map so Touch and Remove are
// O(log n) — the "SSD heap array" of the paper's Figure 4.
package lru2

import (
	"container/heap"
	"time"
)

// never is the penultimate-access value of entries seen only once; it sorts
// before every real timestamp, making such entries preferred victims.
const never = time.Duration(-1) << 32

type entry struct {
	key   int64
	last  time.Duration // most recent access
	prev  time.Duration // access before that, or never
	index int           // heap position
}

// priority orders the heap: smaller evicts first.
func (e *entry) less(o *entry) bool {
	if e.prev != o.prev {
		return e.prev < o.prev
	}
	if e.last != o.last {
		return e.last < o.last
	}
	return e.key < o.key // deterministic tiebreak
}

type entryHeap []*entry

func (h entryHeap) Len() int           { return len(h) }
func (h entryHeap) Less(i, j int) bool { return h[i].less(h[j]) }
func (h entryHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *entryHeap) Push(x interface{}) {
	e := x.(*entry)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *entryHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Cache tracks LRU-2 history for a set of keys. The zero value is not
// usable; call New.
type Cache struct {
	heap    entryHeap
	entries map[int64]*entry
	free    []*entry // recycled entries; steady-state insert-after-evict reuses them
}

// alloc returns a blank entry, reusing a recycled one when available.
func (c *Cache) alloc() *entry {
	if n := len(c.free); n > 0 {
		e := c.free[n-1]
		c.free[n-1] = nil
		c.free = c.free[:n-1]
		return e
	}
	return &entry{}
}

// recycle returns e to the free list once it is off the heap and out of the
// entry map.
func (c *Cache) recycle(e *entry) {
	*e = entry{}
	c.free = append(c.free, e)
}

// New returns an empty cache.
func New() *Cache {
	return &Cache{entries: make(map[int64]*entry)}
}

// Len returns the number of tracked keys.
func (c *Cache) Len() int { return len(c.entries) }

// Contains reports whether key is tracked.
func (c *Cache) Contains(key int64) bool {
	_, ok := c.entries[key]
	return ok
}

// Touch records an access to key at time now, inserting it if absent.
func (c *Cache) Touch(key int64, now time.Duration) {
	if e, ok := c.entries[key]; ok {
		e.prev = e.last
		e.last = now
		heap.Fix(&c.heap, e.index)
		return
	}
	e := c.alloc()
	e.key, e.last, e.prev = key, now, never
	c.entries[key] = e
	heap.Push(&c.heap, e)
}

// TouchHistory inserts (or resets) key with an explicit access history, used
// to re-insert an entry that was temporarily removed without perturbing its
// replacement priority.
func (c *Cache) TouchHistory(key int64, last, prev time.Duration) {
	if e, ok := c.entries[key]; ok {
		e.last, e.prev = last, prev
		heap.Fix(&c.heap, e.index)
		return
	}
	e := c.alloc()
	e.key, e.last, e.prev = key, last, prev
	c.entries[key] = e
	heap.Push(&c.heap, e)
}

// Remove drops key from the cache; it is a no-op if absent.
func (c *Cache) Remove(key int64) {
	e, ok := c.entries[key]
	if !ok {
		return
	}
	heap.Remove(&c.heap, e.index)
	delete(c.entries, key)
	c.recycle(e)
}

// Victim returns the current LRU-2 victim without removing it.
func (c *Cache) Victim() (key int64, ok bool) {
	if len(c.heap) == 0 {
		return 0, false
	}
	return c.heap[0].key, true
}

// Pop removes and returns the current victim.
func (c *Cache) Pop() (key int64, ok bool) {
	if len(c.heap) == 0 {
		return 0, false
	}
	e := heap.Pop(&c.heap).(*entry)
	delete(c.entries, e.key)
	key, ok = e.key, true
	c.recycle(e)
	return key, ok
}

// History returns the last and penultimate access times of key, with seen
// reporting presence. A penultimate of Never() means one access so far.
func (c *Cache) History(key int64) (last, prev time.Duration, seen bool) {
	e, ok := c.entries[key]
	if !ok {
		return 0, 0, false
	}
	return e.last, e.prev, true
}

// Never returns the sentinel penultimate-access value of once-referenced
// entries.
func Never() time.Duration { return never }
