package lru2

import (
	"testing"
	"testing/quick"
	"time"
)

func ms(n int) time.Duration { return time.Duration(n) * time.Millisecond }

func TestEmptyCache(t *testing.T) {
	c := New()
	if c.Len() != 0 {
		t.Errorf("Len = %d", c.Len())
	}
	if _, ok := c.Victim(); ok {
		t.Error("Victim on empty cache")
	}
	if _, ok := c.Pop(); ok {
		t.Error("Pop on empty cache")
	}
}

func TestSingleAccessEvictedFirst(t *testing.T) {
	c := New()
	c.Touch(1, ms(1))
	c.Touch(1, ms(2)) // key 1 referenced twice
	c.Touch(2, ms(3)) // key 2 referenced once, later
	v, ok := c.Victim()
	if !ok || v != 2 {
		t.Errorf("victim = %d, want 2 (single-access pages evict first)", v)
	}
}

func TestLRU2OrdersByPenultimate(t *testing.T) {
	c := New()
	c.Touch(1, ms(1))
	c.Touch(2, ms(2))
	c.Touch(1, ms(10)) // key 1: prev=1, last=10
	c.Touch(2, ms(3))  // key 2: prev=2, last=3
	// Recency of last access says evict 2; LRU-2 says evict 1 (prev 1 < 2).
	v, _ := c.Victim()
	if v != 1 {
		t.Errorf("victim = %d, want 1", v)
	}
}

func TestSingleAccessTieBrokenByLast(t *testing.T) {
	c := New()
	c.Touch(5, ms(5))
	c.Touch(4, ms(4))
	c.Touch(6, ms(6))
	order := []int64{4, 5, 6}
	for _, want := range order {
		got, ok := c.Pop()
		if !ok || got != want {
			t.Fatalf("Pop = %d, want %d", got, want)
		}
	}
}

func TestRemove(t *testing.T) {
	c := New()
	c.Touch(1, ms(1))
	c.Touch(2, ms(2))
	c.Remove(1)
	if c.Contains(1) {
		t.Error("removed key still present")
	}
	if c.Len() != 1 {
		t.Errorf("Len = %d, want 1", c.Len())
	}
	v, _ := c.Victim()
	if v != 2 {
		t.Errorf("victim = %d, want 2", v)
	}
	c.Remove(99) // no-op
}

func TestHistory(t *testing.T) {
	c := New()
	if _, _, seen := c.History(1); seen {
		t.Error("History of absent key")
	}
	c.Touch(1, ms(3))
	last, prev, seen := c.History(1)
	if !seen || last != ms(3) || prev != Never() {
		t.Errorf("History = (%v,%v,%v)", last, prev, seen)
	}
	c.Touch(1, ms(9))
	last, prev, _ = c.History(1)
	if last != ms(9) || prev != ms(3) {
		t.Errorf("History after second touch = (%v,%v)", last, prev)
	}
}

func TestPopDrainsInOrder(t *testing.T) {
	c := New()
	// Keys 0..9 each touched twice; penultimate access times are 0..9.
	for i := 0; i < 10; i++ {
		c.Touch(int64(i), ms(i))
	}
	for i := 0; i < 10; i++ {
		c.Touch(int64(i), ms(100+i))
	}
	for want := int64(0); want < 10; want++ {
		got, ok := c.Pop()
		if !ok || got != want {
			t.Fatalf("Pop = %d, want %d", got, want)
		}
	}
	if c.Len() != 0 {
		t.Errorf("Len = %d after drain", c.Len())
	}
}

func TestTouchExistingUpdatesOrder(t *testing.T) {
	c := New()
	c.Touch(1, ms(1))
	c.Touch(2, ms(2))
	c.Touch(1, ms(3))
	c.Touch(1, ms(4)) // 1: prev=3; 2: prev=never
	v, _ := c.Victim()
	if v != 2 {
		t.Errorf("victim = %d, want 2", v)
	}
}

// Property: Pop yields keys in nondecreasing (prev, last) priority order and
// returns exactly the inserted key set.
func TestHeapOrderProperty(t *testing.T) {
	type touch struct {
		Key uint8
		At  uint16
	}
	prop := func(touches []touch) bool {
		c := New()
		want := map[int64]bool{}
		hist := map[int64][2]time.Duration{}
		for _, tc := range touches {
			k := int64(tc.Key % 32)
			at := time.Duration(tc.At) * time.Microsecond
			prevLast := hist[k]
			if !want[k] {
				hist[k] = [2]time.Duration{at, Never()}
			} else {
				hist[k] = [2]time.Duration{at, prevLast[0]}
			}
			want[k] = true
			c.Touch(k, at)
		}
		if c.Len() != len(want) {
			return false
		}
		type prio struct{ prev, last time.Duration }
		var prior *prio
		for {
			k, ok := c.Pop()
			if !ok {
				break
			}
			if !want[k] {
				return false
			}
			delete(want, k)
			h := hist[k]
			cur := prio{h[1], h[0]}
			if prior != nil {
				if cur.prev < prior.prev ||
					(cur.prev == prior.prev && cur.last < prior.last) {
					return false
				}
			}
			prior = &cur
		}
		return len(want) == 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: interleaved Touch/Remove leaves exactly the non-removed keys.
func TestTouchRemoveConsistencyProperty(t *testing.T) {
	type op struct {
		Key    uint8
		At     uint16
		Remove bool
	}
	prop := func(ops []op) bool {
		c := New()
		want := map[int64]bool{}
		for _, o := range ops {
			k := int64(o.Key % 16)
			if o.Remove {
				c.Remove(k)
				delete(want, k)
			} else {
				c.Touch(k, time.Duration(o.At))
				want[k] = true
			}
		}
		if c.Len() != len(want) {
			return false
		}
		for k := range want {
			if !c.Contains(k) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestHeapStaysBounded pins the lazy heap's compaction: a workload that
// removes far more than it pops (the SSD cleaner's pattern) must not
// accumulate orphaned nodes without bound.
func TestHeapStaysBounded(t *testing.T) {
	c := New()
	for cycle := 0; cycle < 10000; cycle++ {
		for k := int64(0); k < 32; k++ {
			c.TouchHistory(k, ms(cycle), Never())
		}
		if _, ok := c.Victim(); !ok {
			t.Fatal("no victim")
		}
		for k := int64(0); k < 32; k++ {
			c.Remove(k)
		}
	}
	if len(c.heap) > 256 {
		t.Fatalf("heap holds %d nodes for %d live entries; orphans not compacted", len(c.heap), c.Len())
	}
}
