package metrics

import (
	"fmt"
	"io"
	"math/bits"
	"time"
)

// Histogram is a log-scale latency histogram: bucket i counts samples in
// [2^i, 2^(i+1)) microseconds, with an underflow bucket for sub-microsecond
// samples. It supports quantile estimation and is cheap enough to sit on
// every engine operation path.
type Histogram struct {
	buckets [40]int64 // 2^39 µs ≈ 6.4 days: effectively unbounded
	under   int64
	count   int64
	sum     time.Duration
	max     time.Duration
}

// Observe records one sample.
func (h *Histogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.count++
	h.sum += d
	if d > h.max {
		h.max = d
	}
	us := d.Microseconds()
	if us < 1 {
		h.under++
		return
	}
	i := bits.Len64(uint64(us)) - 1 // floor(log2(us)) for us >= 1
	if i >= len(h.buckets) {
		i = len(h.buckets) - 1
	}
	h.buckets[i]++
}

// Count returns the number of samples.
func (h *Histogram) Count() int64 { return h.count }

// Mean returns the average sample.
func (h *Histogram) Mean() time.Duration {
	if h.count == 0 {
		return 0
	}
	return h.sum / time.Duration(h.count)
}

// Max returns the largest sample.
func (h *Histogram) Max() time.Duration { return h.max }

// Quantile estimates the q-quantile (0 < q <= 1) as the upper bound of the
// bucket containing it.
func (h *Histogram) Quantile(q float64) time.Duration {
	if h.count == 0 {
		return 0
	}
	target := int64(q * float64(h.count))
	if target < 1 {
		target = 1
	}
	seen := h.under
	if seen >= target {
		return time.Microsecond
	}
	for i, c := range h.buckets {
		seen += c
		if seen >= target {
			upper := time.Duration(1<<(i+1)) * time.Microsecond
			if upper > h.max && h.max > 0 {
				return h.max
			}
			return upper
		}
	}
	return h.max
}

// Merge adds o's samples into h.
func (h *Histogram) Merge(o *Histogram) {
	for i := range h.buckets {
		h.buckets[i] += o.buckets[i]
	}
	h.under += o.under
	h.count += o.count
	h.sum += o.sum
	if o.max > h.max {
		h.max = o.max
	}
}

// Reset clears the histogram.
func (h *Histogram) Reset() { *h = Histogram{} }

// Summary formats count/mean/p50/p99/max on one line.
func (h *Histogram) Summary() string {
	return fmt.Sprintf("n=%d mean=%v p50=%v p99=%v max=%v",
		h.count, h.Mean().Round(time.Microsecond),
		h.Quantile(0.50).Round(time.Microsecond),
		h.Quantile(0.99).Round(time.Microsecond),
		h.max.Round(time.Microsecond))
}

// WriteTo prints the non-empty buckets as a text histogram.
func (h *Histogram) WriteTo(w io.Writer) (int64, error) {
	var total int64
	n, err := fmt.Fprintf(w, "%s\n", h.Summary())
	total += int64(n)
	if err != nil {
		return total, err
	}
	if h.under > 0 {
		n, err = fmt.Fprintf(w, "  <1µs %d\n", h.under)
		total += int64(n)
		if err != nil {
			return total, err
		}
	}
	for i, c := range h.buckets {
		if c == 0 {
			continue
		}
		lo := time.Duration(1<<i) * time.Microsecond
		n, err = fmt.Fprintf(w, "  %8v %d\n", lo, c)
		total += int64(n)
		if err != nil {
			return total, err
		}
	}
	return total, nil
}
