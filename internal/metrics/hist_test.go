package metrics

import (
	"sort"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	if h.Count() != 0 || h.Mean() != 0 || h.Max() != 0 || h.Quantile(0.99) != 0 {
		t.Errorf("empty histogram: %s", h.Summary())
	}
}

func TestHistogramBasics(t *testing.T) {
	var h Histogram
	h.Observe(time.Millisecond)
	h.Observe(3 * time.Millisecond)
	h.Observe(2 * time.Millisecond)
	if h.Count() != 3 {
		t.Errorf("Count = %d", h.Count())
	}
	if h.Mean() != 2*time.Millisecond {
		t.Errorf("Mean = %v", h.Mean())
	}
	if h.Max() != 3*time.Millisecond {
		t.Errorf("Max = %v", h.Max())
	}
}

func TestHistogramNegativeClamped(t *testing.T) {
	var h Histogram
	h.Observe(-time.Second)
	if h.Max() != 0 || h.Count() != 1 {
		t.Errorf("negative sample mishandled: %s", h.Summary())
	}
}

func TestHistogramQuantileBounds(t *testing.T) {
	var h Histogram
	for i := 0; i < 100; i++ {
		h.Observe(time.Duration(i+1) * time.Millisecond)
	}
	p50 := h.Quantile(0.5)
	p99 := h.Quantile(0.99)
	if p50 < 25*time.Millisecond || p50 > 128*time.Millisecond {
		t.Errorf("p50 = %v", p50)
	}
	if p99 < p50 {
		t.Errorf("p99 (%v) < p50 (%v)", p99, p50)
	}
	if p99 > h.Max() {
		t.Errorf("p99 (%v) > max (%v)", p99, h.Max())
	}
}

func TestHistogramMerge(t *testing.T) {
	var a, b Histogram
	a.Observe(time.Millisecond)
	b.Observe(10 * time.Millisecond)
	b.Observe(20 * time.Millisecond)
	a.Merge(&b)
	if a.Count() != 3 {
		t.Errorf("merged Count = %d", a.Count())
	}
	if a.Max() != 20*time.Millisecond {
		t.Errorf("merged Max = %v", a.Max())
	}
}

func TestHistogramReset(t *testing.T) {
	var h Histogram
	h.Observe(time.Second)
	h.Reset()
	if h.Count() != 0 || h.Max() != 0 {
		t.Error("Reset left state")
	}
}

func TestHistogramWriteTo(t *testing.T) {
	var h Histogram
	h.Observe(500 * time.Nanosecond)
	h.Observe(3 * time.Millisecond)
	var sb strings.Builder
	if _, err := h.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "n=2") || !strings.Contains(out, "<1µs 1") {
		t.Errorf("WriteTo output: %q", out)
	}
}

// Property: quantile estimates bracket the true quantile within one power
// of two (the histogram's resolution guarantee).
func TestHistogramQuantileAccuracyProperty(t *testing.T) {
	prop := func(raw []uint32, qRaw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		if len(raw) > 500 {
			raw = raw[:500]
		}
		q := float64(qRaw%99+1) / 100
		var h Histogram
		vals := make([]time.Duration, len(raw))
		for i, v := range raw {
			vals[i] = time.Duration(v%10_000_000) * time.Microsecond
			h.Observe(vals[i])
		}
		sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
		idx := int(q*float64(len(vals))) - 1
		if idx < 0 {
			idx = 0
		}
		truth := vals[idx]
		est := h.Quantile(q)
		// The estimate is the bucket's upper bound: within 2x above the
		// truth (plus the 1µs floor), never below it.
		if est < truth {
			return false
		}
		if truth > 2*time.Microsecond && est > truth*2+2*time.Microsecond {
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
