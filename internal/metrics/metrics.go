// Package metrics provides small time-series helpers used by the
// experiment harness: bucketed accumulators for throughput curves (the
// paper's six-minute tpmC/tpsE buckets) and the three-point moving average
// its Figure 6 applies for readability.
package metrics

import "time"

// Series accumulates values into fixed-width time buckets.
type Series struct {
	width time.Duration
	vals  []float64
}

// NewSeries returns a series with the given bucket width.
func NewSeries(width time.Duration) *Series {
	if width <= 0 {
		panic("metrics: non-positive bucket width")
	}
	return &Series{width: width}
}

// Width returns the bucket width.
func (s *Series) Width() time.Duration { return s.width }

// Add accumulates v into the bucket containing time t.
func (s *Series) Add(t time.Duration, v float64) {
	if t < 0 {
		t = 0
	}
	i := int(t / s.width)
	for len(s.vals) <= i {
		s.vals = append(s.vals, 0)
	}
	s.vals[i] += v
}

// Len returns the number of buckets.
func (s *Series) Len() int { return len(s.vals) }

// Values returns the bucket totals (shared slice; do not modify).
func (s *Series) Values() []float64 { return s.vals }

// Merge accumulates o's buckets into s. The widths must match; the
// sharded harness uses it to fold per-shard series into cluster totals.
func (s *Series) Merge(o *Series) {
	if o.width != s.width {
		panic("metrics: merging series of different widths")
	}
	for len(s.vals) < len(o.vals) {
		s.vals = append(s.vals, 0)
	}
	for i, v := range o.vals {
		s.vals[i] += v
	}
}

// Rate returns per-second rates: each bucket total divided by the width.
func (s *Series) Rate() []float64 {
	out := make([]float64, len(s.vals))
	secs := s.width.Seconds()
	for i, v := range s.vals {
		out[i] = v / secs
	}
	return out
}

// MovingAvg returns the w-point centered moving average of vals, as the
// paper's Figure 6 uses (w = 3 there). Edges average the available points.
func MovingAvg(vals []float64, w int) []float64 {
	if w < 1 {
		w = 1
	}
	half := w / 2
	out := make([]float64, len(vals))
	for i := range vals {
		lo, hi := i-half, i+half
		if lo < 0 {
			lo = 0
		}
		if hi > len(vals)-1 {
			hi = len(vals) - 1
		}
		sum := 0.0
		for j := lo; j <= hi; j++ {
			sum += vals[j]
		}
		out[i] = sum / float64(hi-lo+1)
	}
	return out
}

// Mean returns the arithmetic mean of vals (0 for empty input).
func Mean(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range vals {
		sum += v
	}
	return sum / float64(len(vals))
}

// Tail returns the last n values (or all, if fewer).
func Tail(vals []float64, n int) []float64 {
	if n >= len(vals) {
		return vals
	}
	return vals[len(vals)-n:]
}
