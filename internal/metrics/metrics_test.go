package metrics

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestSeriesBucketsValues(t *testing.T) {
	s := NewSeries(time.Second)
	s.Add(0, 1)
	s.Add(500*time.Millisecond, 2)
	s.Add(time.Second, 4)
	s.Add(2500*time.Millisecond, 8)
	want := []float64{3, 4, 8}
	got := s.Values()
	if len(got) != len(want) {
		t.Fatalf("Values = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("bucket %d = %v, want %v", i, got[i], want[i])
		}
	}
	if s.Len() != 3 {
		t.Errorf("Len = %d", s.Len())
	}
}

func TestSeriesNegativeTimeClamped(t *testing.T) {
	s := NewSeries(time.Second)
	s.Add(-5*time.Second, 7)
	if s.Values()[0] != 7 {
		t.Errorf("Values = %v", s.Values())
	}
}

func TestSeriesRate(t *testing.T) {
	s := NewSeries(2 * time.Second)
	s.Add(0, 10)
	s.Add(3*time.Second, 4)
	r := s.Rate()
	if r[0] != 5 || r[1] != 2 {
		t.Errorf("Rate = %v", r)
	}
}

func TestNewSeriesPanicsOnZeroWidth(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic")
		}
	}()
	NewSeries(0)
}

func TestMovingAvgCentered(t *testing.T) {
	in := []float64{1, 2, 3, 4, 5}
	out := MovingAvg(in, 3)
	want := []float64{1.5, 2, 3, 4, 4.5}
	for i := range want {
		if math.Abs(out[i]-want[i]) > 1e-9 {
			t.Errorf("out[%d] = %v, want %v", i, out[i], want[i])
		}
	}
}

func TestMovingAvgWindowOne(t *testing.T) {
	in := []float64{3, 1, 4}
	out := MovingAvg(in, 1)
	for i := range in {
		if out[i] != in[i] {
			t.Errorf("window-1 average changed values: %v", out)
		}
	}
	out = MovingAvg(in, 0) // clamped to 1
	for i := range in {
		if out[i] != in[i] {
			t.Errorf("window-0 average changed values: %v", out)
		}
	}
}

func TestMovingAvgEmpty(t *testing.T) {
	if out := MovingAvg(nil, 3); len(out) != 0 {
		t.Errorf("out = %v", out)
	}
}

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("Mean(nil) != 0")
	}
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Errorf("Mean = %v", got)
	}
}

func TestTail(t *testing.T) {
	in := []float64{1, 2, 3, 4}
	if got := Tail(in, 2); len(got) != 2 || got[0] != 3 {
		t.Errorf("Tail = %v", got)
	}
	if got := Tail(in, 10); len(got) != 4 {
		t.Errorf("Tail beyond len = %v", got)
	}
}

// Property: the moving average preserves the overall mean-ish bounds: every
// output value lies within [min(in), max(in)].
func TestMovingAvgBoundsProperty(t *testing.T) {
	prop := func(raw []uint16, wRaw uint8) bool {
		in := make([]float64, len(raw))
		lo, hi := math.Inf(1), math.Inf(-1)
		for i, v := range raw {
			in[i] = float64(v)
			lo = math.Min(lo, in[i])
			hi = math.Max(hi, in[i])
		}
		out := MovingAvg(in, int(wRaw%9)+1)
		for _, v := range out {
			if v < lo-1e-9 || v > hi+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: a series' bucket totals sum to the total of everything added.
func TestSeriesConservationProperty(t *testing.T) {
	type add struct {
		At  uint16
		Val uint8
	}
	prop := func(adds []add) bool {
		s := NewSeries(100 * time.Millisecond)
		var want float64
		for _, a := range adds {
			s.Add(time.Duration(a.At)*time.Millisecond, float64(a.Val))
			want += float64(a.Val)
		}
		var got float64
		for _, v := range s.Values() {
			got += v
		}
		return math.Abs(got-want) < 1e-6
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
