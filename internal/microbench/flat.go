package microbench

import (
	"testing"
	"time"

	"turbobp/internal/pagetab"
	"turbobp/internal/sim"
)

// The flat-structure benchmarks isolate the two data structures the
// simulator hot paths were migrated onto: the pagetab open-addressing table
// (vs the plain Go map it replaced) and the calendar-queue event scheduler
// (vs the reference binary heap). Each pair runs the identical workload so
// the committed BENCH_harness.json documents the ratio directly.

// tableKeys is sized like a busy shard directory: large enough to defeat
// L1 but small enough that both implementations stay cache-resident.
const tableKeys = 4096

// TableChurn measures pagetab steady-state churn: lookup, update, and a
// delete/reinsert pair per iteration, over a resident working set.
func TableChurn(b *testing.B) {
	tab := pagetab.New[int64](tableKeys)
	for i := uint64(0); i < tableKeys; i++ {
		tab.Put(i*64, int64(i))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := uint64(i%tableKeys) * 64
		v, _ := tab.Get(k)
		tab.Put(k, v+1)
		tab.Delete(k)
		tab.Put(k, v)
	}
}

// MapChurn is TableChurn on the plain Go map pagetab replaced.
func MapChurn(b *testing.B) {
	tab := make(map[uint64]int64, tableKeys)
	for i := uint64(0); i < tableKeys; i++ {
		tab[i*64] = int64(i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := uint64(i%tableKeys) * 64
		v := tab[k]
		tab[k] = v + 1
		delete(tab, k)
		tab[k] = v
	}
}

// schedulerPending keeps this many events in flight, on the order of the
// process population of a large experiment cell.
const schedulerPending = 2048

// schedulerQueue measures steady-state push/pop throughput with a standing
// population of pending events whose delays mix the scheduler's regimes:
// same-instant wakeups, sub-bucket jitter and device-scale sleeps.
func schedulerQueue(b *testing.B, calendar bool) {
	q := sim.NewEventQueue(calendar)
	delay := func(i int) time.Duration {
		switch i & 3 {
		case 0:
			return 0 // same-instant handoff
		case 1:
			return time.Duration(i%97) * time.Microsecond
		default:
			return time.Duration(i%11) * time.Millisecond
		}
	}
	for i := 0; i < schedulerPending; i++ {
		q.Push(q.Now() + delay(i))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, ok := q.Pop(); !ok {
			b.Fatal("queue drained")
		}
		q.Push(q.Now() + delay(i))
	}
}

// SchedulerCalendar measures the production calendar-queue scheduler.
func SchedulerCalendar(b *testing.B) { schedulerQueue(b, true) }

// SchedulerHeap measures the reference binary-heap scheduler it replaced.
func SchedulerHeap(b *testing.B) { schedulerQueue(b, false) }
