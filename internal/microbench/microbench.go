// Package microbench holds the steady-state hot-path microbenchmarks of
// the simulator. Each function drives b.N operations inside a simulation
// process, with all setup (engine construction, pool warm-up) done before
// the timer starts, so ns/op and allocs/op measure only the repeated
// operation. The same functions back the root-package Benchmark wrappers
// (`go test -bench`) and bpesim's -benchjson report, via
// testing.Benchmark.
//
// The read path (GetHit, GetMiss) is expected to run at ~0 allocs/op:
// page buffers, LRU-2 entries, WAL records and scheduler events all come
// from free lists. UpdateCommit and GroupClean additionally exercise the
// WAL slab and the SSD manager's pooled cleaning scratch; UpdateCommit
// retains a small residual (the simulated log device stores each freshly
// written log page once).
package microbench

import (
	"testing"

	"turbobp/internal/device"
	"turbobp/internal/engine"
	"turbobp/internal/page"
	"turbobp/internal/sim"
	"turbobp/internal/ssd"
)

const payload = 64

// newEngine builds a formatted engine on a fresh Env.
func newEngine(b *testing.B, cfg engine.Config) (*sim.Env, *engine.Engine) {
	b.Helper()
	env := sim.NewEnv()
	e := engine.New(env, cfg)
	if err := e.FormatDB(); err != nil {
		b.Fatal(err)
	}
	return env, e
}

// drive runs fn to completion inside a simulation process.
func drive(b *testing.B, env *sim.Env, fn func(p *sim.Proc) error) {
	b.Helper()
	var err error
	env.Go("bench", func(p *sim.Proc) {
		err = fn(p)
	})
	env.Run(-1)
	if err != nil {
		b.Fatal(err)
	}
}

// GetHit measures a buffer-pool hit: Get on a page already resident.
func GetHit(b *testing.B) {
	const db = 512
	env, e := newEngine(b, engine.Config{
		Design:      ssd.NoSSD,
		DBPages:     db,
		PoolPages:   db + 64, // whole database stays resident
		PayloadSize: payload,
	})
	defer env.Shutdown()
	drive(b, env, func(p *sim.Proc) error { // warm every page
		for i := int64(0); i < db; i++ {
			if _, err := e.Get(p, page.ID(i)); err != nil {
				return err
			}
		}
		return nil
	})
	b.ReportAllocs()
	b.ResetTimer()
	drive(b, env, func(p *sim.Proc) error {
		for i := 0; i < b.N; i++ {
			if _, err := e.Get(p, page.ID(int64(i)%db)); err != nil {
				return err
			}
		}
		return nil
	})
	b.StopTimer()
	e.StopBackground()
}

// GetMiss measures a buffer-pool miss on the noSSD path: clean eviction,
// disk read into a pooled buffer, decode, LRU-2 insert.
func GetMiss(b *testing.B) {
	const db, pool = 4096, 256
	env, e := newEngine(b, engine.Config{
		Design:        ssd.NoSSD,
		DBPages:       db,
		PoolPages:     pool,
		PayloadSize:   payload,
		ReadExpansion: -1, // keep every miss a single-page read
	})
	defer env.Shutdown()
	drive(b, env, func(p *sim.Proc) error { // fill the pool once
		for i := int64(0); i < pool+16; i++ {
			if _, err := e.Get(p, page.ID(i)); err != nil {
				return err
			}
		}
		return nil
	})
	b.ReportAllocs()
	b.ResetTimer()
	drive(b, env, func(p *sim.Proc) error {
		// A cyclic sweep over a database 16x the pool never re-hits under
		// LRU-2: every Get is a miss with a clean eviction.
		next := int64(pool + 16)
		for i := 0; i < b.N; i++ {
			if _, err := e.Get(p, page.ID(next%db)); err != nil {
				return err
			}
			next++
		}
		return nil
	})
	b.StopTimer()
	e.StopBackground()
}

// UpdateCommit measures an in-pool update plus a commit (WAL append,
// group flush to the simulated log device).
func UpdateCommit(b *testing.B) {
	const db = 512
	env, e := newEngine(b, engine.Config{
		Design:      ssd.NoSSD,
		DBPages:     db,
		PoolPages:   db + 64,
		PayloadSize: payload,
	})
	defer env.Shutdown()
	drive(b, env, func(p *sim.Proc) error {
		for i := int64(0); i < db; i++ {
			if _, err := e.Get(p, page.ID(i)); err != nil {
				return err
			}
		}
		return nil
	})
	b.ReportAllocs()
	b.ResetTimer()
	drive(b, env, func(p *sim.Proc) error {
		for i := 0; i < b.N; i++ {
			tx := e.Begin()
			if err := e.Update(p, tx, page.ID(int64(i)%db), func(pl []byte) {
				pl[0]++
			}); err != nil {
				return err
			}
			if err := e.Commit(p, tx); err != nil {
				return err
			}
		}
		return nil
	})
	b.StopTimer()
	e.StopBackground()
}

// arrayDisk adapts a device.Array to the ssd.Disk sink interface.
type arrayDisk struct{ arr *device.Array }

func (d arrayDisk) WriteEncoded(p *sim.Proc, start page.ID, bufs [][]byte) error {
	return d.arr.Write(p, device.PageNum(start), bufs)
}

func (d arrayDisk) WriteEncodedTask(t *sim.Task, start page.ID, bufs [][]byte, k func(error)) {
	d.arr.WriteTask(t, device.PageNum(start), bufs, k)
}

// GroupClean measures one LC cleaning cycle at the SSD-manager level:
// α dirty admissions followed by a FlushDirty that gathers the
// contiguous run, reads it back from the SSD and writes it to disk as a
// single multi-page I/O.
func GroupClean(b *testing.B) {
	const frames, alpha = 256, 32
	env := sim.NewEnv()
	defer env.Shutdown()
	dev := device.NewSSD(env, device.PaperSSDProfile(), frames)
	arr := device.NewArray(env, device.PaperHDDProfile(), 1, 64, 4096)
	m := ssd.NewManager(env, dev, arrayDisk{arr}, ssd.Config{
		Design:      ssd.LC,
		Frames:      frames,
		GroupClean:  alpha,
		PayloadSize: payload,
	})
	pg := &page.Page{Payload: make([]byte, payload)}
	var lsn uint64
	cycle := func(p *sim.Proc) error {
		for j := int64(0); j < alpha; j++ {
			lsn++
			pg.ID = page.ID(j)
			pg.LSN = lsn
			if err := m.OnEvict(p, pg, true, true); err != nil {
				return err
			}
		}
		return m.FlushDirty(p)
	}
	drive(b, env, cycle) // warm the frame table and free lists
	b.ReportAllocs()
	b.ResetTimer()
	drive(b, env, func(p *sim.Proc) error {
		for i := 0; i < b.N; i++ {
			if err := cycle(p); err != nil {
				return err
			}
		}
		return nil
	})
	b.StopTimer()
}
