package microbench

import (
	"testing"
	"time"

	"turbobp/internal/policy"
)

// The policy microbenchmarks measure the replacement-policy hot paths in
// isolation: Touch (every buffer-pool read goes through it) and the
// eviction cycle Pop + re-insert (every miss under memory pressure), for
// each policy kind, plus the TinyLFU count-min sketch primitives. All
// policies run these paths allocation-free in steady state (entries come
// from per-policy free lists; the sketch is two fixed arrays).

// policyCap is the working-set size the policy benchmarks run at.
const policyCap = 4096

// fillPolicy populates p with policyCap keys.
func fillPolicy(p policy.Policy) {
	for i := int64(0); i < policyCap; i++ {
		p.Touch(i, time.Duration(i))
	}
}

// policyTouch measures Touch on resident keys of a full policy.
func policyTouch(b *testing.B, kind policy.Kind) {
	p := policy.New(kind, policyCap)
	fillPolicy(p)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Touch(int64(i%policyCap), time.Duration(policyCap+i))
	}
}

// policyEvict measures one eviction cycle at capacity: Pop the victim and
// insert a fresh key, the steady-state work of every cache miss.
func policyEvict(b *testing.B, kind policy.Kind) {
	p := policy.New(kind, policyCap)
	fillPolicy(p)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Pop()
		p.Touch(int64(policyCap+i), time.Duration(policyCap+i))
	}
}

// PolicyTouchLRU2 measures Touch under the default LRU-2 policy.
func PolicyTouchLRU2(b *testing.B) { policyTouch(b, policy.LRU2) }

// PolicyTouchARC measures Touch under ARC.
func PolicyTouchARC(b *testing.B) { policyTouch(b, policy.ARC) }

// PolicyTouchCFLRU measures Touch under CFLRU.
func PolicyTouchCFLRU(b *testing.B) { policyTouch(b, policy.CFLRU) }

// PolicyTouchTinyLFU measures Touch under TinyLFU (includes the sketch
// increment each access feeds).
func PolicyTouchTinyLFU(b *testing.B) { policyTouch(b, policy.TinyLFU) }

// PolicyEvictLRU2 measures the Pop+insert cycle under LRU-2.
func PolicyEvictLRU2(b *testing.B) { policyEvict(b, policy.LRU2) }

// PolicyEvictARC measures the Pop+insert cycle under ARC (ghost-list
// maintenance included).
func PolicyEvictARC(b *testing.B) { policyEvict(b, policy.ARC) }

// PolicyEvictCFLRU measures the Pop+insert cycle under CFLRU (clean-first
// window scan included).
func PolicyEvictCFLRU(b *testing.B) { policyEvict(b, policy.CFLRU) }

// PolicyEvictTinyLFU measures the Pop+insert cycle under TinyLFU (coldest
// sampling over the sketch included).
func PolicyEvictTinyLFU(b *testing.B) { policyEvict(b, policy.TinyLFU) }

// SketchIncrement measures one count-min sketch increment.
func SketchIncrement(b *testing.B) {
	s := policy.NewSketch(policyCap)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Increment(int64(i % policyCap))
	}
}

// SketchEstimate measures one count-min sketch frequency estimate.
func SketchEstimate(b *testing.B) {
	s := policy.NewSketch(policyCap)
	for i := int64(0); i < policyCap; i++ {
		s.Increment(i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	acc := uint32(0)
	for i := 0; i < b.N; i++ {
		acc += s.Estimate(int64(i % policyCap))
	}
	sketchSink = acc
}

// sketchSink defeats dead-code elimination in SketchEstimate.
var sketchSink uint32
