package netproto

import (
	"errors"
	"fmt"
	"net"
	"time"
)

// Client is a reusable bpeserve client connection with the fault-tolerance
// policy built in: per-request deadlines, bounded reconnect on connection
// failure, and seed-deterministic jittered exponential backoff that retries
// retryable statuses (shed, deadline, busy) and gives up immediately on
// terminal ones.
//
// A Client drives one connection — one server-side session — and is not
// safe for concurrent use; give each worker its own.
//
// Reconnects are visible in Stats().Reconnects. Callers whose requests form
// a multi-frame sequence with server-side session state (update… commit)
// must check that counter around the sequence: a reconnect mid-sequence
// resets the server's per-connection transaction, so the whole sequence —
// not just the failed frame — needs re-sending.
type Client struct {
	cfg  ClientConfig
	conn net.Conn
	rng  uint64 // splitmix64 state for backoff jitter

	resp  Response // scratch, reused across Do calls
	stats ClientStats
}

// ClientConfig configures a Client. Zero values take defaults.
type ClientConfig struct {
	// Addr is the server's TCP address. Required.
	Addr string
	// Deadline is the per-request server budget stamped into requests that
	// carry none of their own, and the bound on how long the client waits
	// for the response. 0 means no deadline.
	Deadline time.Duration
	// DialTimeout bounds one connection attempt. Default 2s.
	DialTimeout time.Duration
	// MaxRetries bounds how many times one Do re-sends after a retryable
	// status or a connection failure. Default 8.
	MaxRetries int
	// MaxReconnects bounds consecutive failed dials before the client
	// reports the server unreachable. Default 16.
	MaxReconnects int
	// BaseBackoff and MaxBackoff shape the jittered exponential backoff
	// between retries. Defaults 2ms and 250ms.
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// Seed makes the backoff jitter sequence deterministic; 0 becomes 1.
	Seed uint64
}

// ClientStats counts what the retry policy did.
type ClientStats struct {
	Ops        int64 // Do calls that returned a response
	Retries    int64 // re-sends after a retryable status or connection failure
	Sheds      int64 // StatusShed responses seen (including retried ones)
	Deadlines  int64 // StatusDeadline responses seen
	Busy       int64 // StatusBusy responses seen
	Reconnects int64 // connections re-established after a failure
}

func (cfg *ClientConfig) defaults() {
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 2 * time.Second
	}
	if cfg.MaxRetries <= 0 {
		cfg.MaxRetries = 8
	}
	if cfg.MaxReconnects <= 0 {
		cfg.MaxReconnects = 16
	}
	if cfg.BaseBackoff <= 0 {
		cfg.BaseBackoff = 2 * time.Millisecond
	}
	if cfg.MaxBackoff <= 0 {
		cfg.MaxBackoff = 250 * time.Millisecond
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
}

// ErrUnreachable reports that the reconnect budget was exhausted without
// establishing a connection.
var ErrUnreachable = errors.New("netproto: server unreachable (reconnect budget exhausted)")

// ErrRetriesExhausted reports that every retry of a request came back with
// a retryable status; the last status is attached as text.
var ErrRetriesExhausted = errors.New("netproto: retries exhausted")

// Dial connects a new Client, retrying the initial dial within the
// reconnect budget.
func Dial(cfg ClientConfig) (*Client, error) {
	cfg.defaults()
	c := &Client{cfg: cfg, rng: cfg.Seed}
	if err := c.reconnect(); err != nil {
		return nil, err
	}
	return c, nil
}

// rand is one splitmix64 step: the deterministic jitter source.
func (c *Client) rand() uint64 {
	c.rng += 0x9E3779B97F4A7C15
	z := c.rng
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// backoff sleeps the jittered exponential delay for the given attempt:
// uniformly between 50% and 100% of min(MaxBackoff, BaseBackoff<<attempt).
func (c *Client) backoff(attempt int) {
	d := c.cfg.BaseBackoff << uint(attempt)
	if d <= 0 || d > c.cfg.MaxBackoff {
		d = c.cfg.MaxBackoff
	}
	half := d / 2
	jit := time.Duration(c.rand() % uint64(half+1))
	time.Sleep(half + jit)
}

// reconnect re-establishes the connection, retrying with backoff within
// the reconnect budget.
func (c *Client) reconnect() error {
	if c.conn != nil {
		c.conn.Close()
		c.conn = nil
	}
	var lastErr error
	for i := 0; i < c.cfg.MaxReconnects; i++ {
		conn, err := net.DialTimeout("tcp", c.cfg.Addr, c.cfg.DialTimeout)
		if err == nil {
			c.conn = conn
			return nil
		}
		lastErr = err
		c.backoff(i)
	}
	return fmt.Errorf("%w: %v", ErrUnreachable, lastErr)
}

// Do sends req and returns the response. Retryable statuses and connection
// failures are retried with backoff (reconnecting as needed) up to
// MaxRetries; terminal statuses and successes return immediately. The
// returned Response is valid until the next Do call on this client.
func (c *Client) Do(req *Request) (*Response, error) {
	if req.DeadlineMS == 0 && c.cfg.Deadline > 0 {
		req.DeadlineMS = uint32(c.cfg.Deadline / time.Millisecond)
	}
	var lastStatus byte
	for attempt := 0; ; attempt++ {
		resp, err := c.roundTrip(req)
		if err == nil {
			if !Retryable(resp.Status) {
				c.stats.Ops++
				return resp, nil
			}
			lastStatus = resp.Status
			switch resp.Status {
			case StatusShed:
				c.stats.Sheds++
			case StatusDeadline:
				c.stats.Deadlines++
			case StatusBusy:
				c.stats.Busy++
			}
		} else {
			// Connection failure: the server died, dropped us, or the
			// response never arrived in time. Reconnect within budget.
			if rerr := c.reconnect(); rerr != nil {
				return nil, rerr
			}
			c.stats.Reconnects++
		}
		if attempt >= c.cfg.MaxRetries {
			if err != nil {
				return nil, fmt.Errorf("netproto: request failed after %d attempts: %w", attempt+1, err)
			}
			return nil, fmt.Errorf("%w (last status %d)", ErrRetriesExhausted, lastStatus)
		}
		c.stats.Retries++
		c.backoff(attempt)
	}
}

// roundTrip writes one request and reads one response over the current
// connection, arming the socket deadline from the request's budget.
func (c *Client) roundTrip(req *Request) (*Response, error) {
	if c.conn == nil {
		return nil, errors.New("netproto: not connected")
	}
	if req.DeadlineMS > 0 {
		// The socket deadline is the server budget plus slack for the
		// network and scheduling, so a live server gets the full budget
		// to answer StatusDeadline itself before we cut the connection.
		slack := time.Duration(req.DeadlineMS)*time.Millisecond + c.cfg.DialTimeout
		c.conn.SetDeadline(time.Now().Add(slack))
	} else {
		c.conn.SetDeadline(time.Time{})
	}
	if err := WriteRequest(c.conn, req); err != nil {
		return nil, err
	}
	if err := ReadResponse(c.conn, &c.resp); err != nil {
		return nil, err
	}
	return &c.resp, nil
}

// Get reads page pid. The returned payload is valid until the next call.
func (c *Client) Get(pid int64) ([]byte, error) {
	resp, err := c.Do(&Request{Op: OpGet, Page: pid})
	if err != nil {
		return nil, err
	}
	if resp.Status != StatusOK {
		return nil, fmt.Errorf("netproto: get page %d: %s", pid, resp.Data)
	}
	return resp.Data, nil
}

// Health probes the server: true while it accepts work, false (with no
// error) while it is shedding or draining.
func (c *Client) Health() (bool, error) {
	resp, err := c.roundTrip(&Request{Op: OpHealth, DeadlineMS: uint32(c.cfg.DialTimeout / time.Millisecond)})
	if err != nil {
		return false, err
	}
	return resp.Status == StatusOK, nil
}

// ServerStats fetches the server's counter snapshot.
func (c *Client) ServerStats() (string, error) {
	resp, err := c.Do(&Request{Op: OpStats})
	if err != nil {
		return "", err
	}
	if resp.Status != StatusOK {
		return "", fmt.Errorf("netproto: stats: %s", resp.Data)
	}
	return string(resp.Data), nil
}

// Stats returns the retry-policy counters so far.
func (c *Client) Stats() ClientStats { return c.stats }

// Close closes the connection.
func (c *Client) Close() error {
	if c.conn == nil {
		return nil
	}
	err := c.conn.Close()
	c.conn = nil
	return err
}
