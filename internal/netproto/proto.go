// Package netproto is the length-prefixed binary protocol spoken between
// the bpeserve network server and its clients (cmd/bpeload). It is
// deliberately tiny: six operations, fixed little-endian headers, payloads
// bounded by MaxData. A connection is a session: updates accumulate in the
// connection's open transaction until a commit request seals them.
//
// Fault tolerance is part of the wire contract:
//
//   - Every request carries an optional deadline (milliseconds of budget
//     the client grants the server). A server that cannot answer in time
//     replies StatusDeadline instead of leaving the client hanging.
//   - Error statuses are typed. StatusErr is terminal — retrying the same
//     request cannot help. StatusShed, StatusDeadline and StatusBusy are
//     retryable: the failure is about load or timing, not the request, so
//     backing off and retrying (see Client) is the correct response.
//   - OpHealth and OpStats let operators and load balancers probe a server
//     without touching the database.
package netproto

import (
	"encoding/binary"
	"fmt"
	"io"
)

// Operations.
const (
	// OpGet reads one page: Page set, response data = payload.
	OpGet byte = 1
	// OpUpdate writes Data over the head of page Page's payload inside the
	// connection's transaction (opened lazily).
	OpUpdate byte = 2
	// OpCommit commits the connection's transaction; no-op if none open.
	OpCommit byte = 3
	// OpScan reads N consecutive pages from Page through the engine's
	// read-ahead path; response data = concatenated payloads.
	OpScan byte = 4
	// OpHealth probes liveness: the response is StatusOK with data "ok"
	// while the server accepts work, and a retryable status while it is
	// draining or overloaded. Never touches the database.
	OpHealth byte = 5
	// OpStats returns a human-readable snapshot of server counters
	// (in-flight requests, sheds, served ops) as the response data.
	OpStats byte = 6
)

// Response statuses.
const (
	// StatusOK is success.
	StatusOK byte = 0
	// StatusErr is a terminal error: the request itself is wrong (bad page,
	// bad op, oversized data) and retrying it verbatim cannot succeed.
	// Response data = error text.
	StatusErr byte = 1
	// StatusShed means admission control rejected the request: the server
	// is over its in-flight or memory limit. Retry after backoff.
	StatusShed byte = 2
	// StatusDeadline means the request's deadline expired before the server
	// finished (or started) it. The operation may or may not have applied —
	// the classic commit ambiguity. Retry with a fresh deadline.
	StatusDeadline byte = 3
	// StatusBusy means a transient internal condition (partition busy,
	// draining) prevented service. Retry after backoff.
	StatusBusy byte = 4
)

// Retryable reports whether a response status indicates a transient
// condition worth retrying, as opposed to a terminal error.
func Retryable(status byte) bool {
	return status == StatusShed || status == StatusDeadline || status == StatusBusy
}

// MaxData bounds a frame's variable part (a scan of MaxScanPages pages of
// the largest sane payload still fits). ReadRequest and ReadResponse check
// the claimed length against it before allocating, so a malicious or
// corrupt header cannot trigger an unbounded allocation.
const MaxData = 8 << 20

// MaxScanPages bounds one OpScan request.
const MaxScanPages = 1024

// reqHeader is the fixed request header size:
// op(1) page(8) n(4) deadline_ms(4) dlen(4).
const reqHeader = 21

// Request is one client frame.
// Wire: op(1) page(8) n(4) deadline_ms(4) dlen(4) data(dlen).
type Request struct {
	Op   byte
	Page int64
	N    int32 // OpScan page count
	// DeadlineMS is the server-side time budget in milliseconds; 0 means
	// no deadline. The server arms its read/write deadlines from it and
	// answers StatusDeadline when the budget runs out.
	DeadlineMS uint32
	Data       []byte
}

// Response is one server frame.
// Wire: status(1) dlen(4) data(dlen).
type Response struct {
	Status byte
	Data   []byte
}

// WriteRequest encodes r to w.
func WriteRequest(w io.Writer, r *Request) error {
	if len(r.Data) > MaxData {
		return fmt.Errorf("netproto: request data %d exceeds %d", len(r.Data), MaxData)
	}
	var hdr [reqHeader]byte
	hdr[0] = r.Op
	binary.LittleEndian.PutUint64(hdr[1:9], uint64(r.Page))
	binary.LittleEndian.PutUint32(hdr[9:13], uint32(r.N))
	binary.LittleEndian.PutUint32(hdr[13:17], r.DeadlineMS)
	binary.LittleEndian.PutUint32(hdr[17:21], uint32(len(r.Data)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if len(r.Data) > 0 {
		if _, err := w.Write(r.Data); err != nil {
			return err
		}
	}
	return nil
}

// ReadRequest decodes one frame from r into req, reusing req.Data's
// capacity. io.EOF comes back unchanged on a clean end of stream. The
// claimed data length is validated against MaxData before any allocation.
func ReadRequest(r io.Reader, req *Request) error {
	var hdr [reqHeader]byte
	if _, err := io.ReadFull(r, hdr[:1]); err != nil {
		return err // io.EOF = clean close between frames
	}
	if _, err := io.ReadFull(r, hdr[1:]); err != nil {
		return fmt.Errorf("netproto: short request header: %w", err)
	}
	req.Op = hdr[0]
	req.Page = int64(binary.LittleEndian.Uint64(hdr[1:9]))
	req.N = int32(binary.LittleEndian.Uint32(hdr[9:13]))
	req.DeadlineMS = binary.LittleEndian.Uint32(hdr[13:17])
	n := binary.LittleEndian.Uint32(hdr[17:21])
	if n > MaxData {
		return fmt.Errorf("netproto: request data %d exceeds %d", n, MaxData)
	}
	req.Data = grow(req.Data, int(n))
	if n > 0 {
		if _, err := io.ReadFull(r, req.Data); err != nil {
			return fmt.Errorf("netproto: short request data: %w", err)
		}
	}
	return nil
}

// WriteResponse encodes resp to w.
func WriteResponse(w io.Writer, resp *Response) error {
	if len(resp.Data) > MaxData {
		return fmt.Errorf("netproto: response data %d exceeds %d", len(resp.Data), MaxData)
	}
	var hdr [5]byte
	hdr[0] = resp.Status
	binary.LittleEndian.PutUint32(hdr[1:5], uint32(len(resp.Data)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if len(resp.Data) > 0 {
		if _, err := w.Write(resp.Data); err != nil {
			return err
		}
	}
	return nil
}

// ReadResponse decodes one frame from r into resp, reusing resp.Data's
// capacity. The claimed data length is validated against MaxData before
// any allocation.
func ReadResponse(r io.Reader, resp *Response) error {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return fmt.Errorf("netproto: short response header: %w", err)
	}
	resp.Status = hdr[0]
	n := binary.LittleEndian.Uint32(hdr[1:5])
	if n > MaxData {
		return fmt.Errorf("netproto: response data %d exceeds %d", n, MaxData)
	}
	resp.Data = grow(resp.Data, int(n))
	if n > 0 {
		if _, err := io.ReadFull(r, resp.Data); err != nil {
			return fmt.Errorf("netproto: short response data: %w", err)
		}
	}
	return nil
}

// grow resizes b to n bytes, reallocating only when capacity is short.
func grow(b []byte, n int) []byte {
	if cap(b) >= n {
		return b[:n]
	}
	return make([]byte, n)
}
