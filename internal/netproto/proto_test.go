package netproto

import (
	"bytes"
	"io"
	"testing"
)

func TestRequestRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	in := []Request{
		{Op: OpGet, Page: 42},
		{Op: OpUpdate, Page: 7, Data: []byte("hello")},
		{Op: OpCommit},
		{Op: OpScan, Page: 100, N: 16},
	}
	for i := range in {
		if err := WriteRequest(&buf, &in[i]); err != nil {
			t.Fatalf("WriteRequest(%d): %v", i, err)
		}
	}
	var got Request
	for i := range in {
		if err := ReadRequest(&buf, &got); err != nil {
			t.Fatalf("ReadRequest(%d): %v", i, err)
		}
		if got.Op != in[i].Op || got.Page != in[i].Page || got.N != in[i].N || !bytes.Equal(got.Data, in[i].Data) {
			t.Fatalf("frame %d: got %+v, want %+v", i, got, in[i])
		}
	}
	if err := ReadRequest(&buf, &got); err != io.EOF {
		t.Fatalf("trailing read: %v, want io.EOF", err)
	}
}

func TestResponseRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	in := []Response{
		{Status: StatusOK, Data: bytes.Repeat([]byte{0x5A}, 300)},
		{Status: StatusErr, Data: []byte("boom")},
		{Status: StatusOK},
	}
	for i := range in {
		if err := WriteResponse(&buf, &in[i]); err != nil {
			t.Fatalf("WriteResponse(%d): %v", i, err)
		}
	}
	var got Response
	for i := range in {
		if err := ReadResponse(&buf, &got); err != nil {
			t.Fatalf("ReadResponse(%d): %v", i, err)
		}
		if got.Status != in[i].Status || !bytes.Equal(got.Data, in[i].Data) {
			t.Fatalf("frame %d: got %+v, want %+v", i, got, in[i])
		}
	}
}

func TestOversizeRejected(t *testing.T) {
	var buf bytes.Buffer
	big := Request{Op: OpUpdate, Data: make([]byte, MaxData+1)}
	if err := WriteRequest(&buf, &big); err == nil {
		t.Fatal("oversize request encoded")
	}
	// A forged oversize header must be rejected before allocation.
	hdr := []byte{OpUpdate, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0xFF, 0xFF, 0xFF, 0xFF}
	var got Request
	if err := ReadRequest(bytes.NewReader(hdr), &got); err == nil {
		t.Fatal("forged oversize header accepted")
	}
}
