package netproto

import (
	"bytes"
	"encoding/binary"
	"io"
	"testing"
)

// TestDeadlineRoundTrip pins the v2 header: the deadline field survives
// encode/decode alongside everything else.
func TestDeadlineRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	in := Request{Op: OpUpdate, Page: 42, N: 7, DeadlineMS: 1500, Data: []byte("payload")}
	if err := WriteRequest(&buf, &in); err != nil {
		t.Fatalf("WriteRequest: %v", err)
	}
	var out Request
	if err := ReadRequest(&buf, &out); err != nil {
		t.Fatalf("ReadRequest: %v", err)
	}
	if out.Op != in.Op || out.Page != in.Page || out.N != in.N ||
		out.DeadlineMS != in.DeadlineMS || !bytes.Equal(out.Data, in.Data) {
		t.Fatalf("round trip mangled request: %+v -> %+v", in, out)
	}
}

// TestRetryable pins the status taxonomy.
func TestRetryable(t *testing.T) {
	for _, s := range []byte{StatusShed, StatusDeadline, StatusBusy} {
		if !Retryable(s) {
			t.Errorf("status %d should be retryable", s)
		}
	}
	for _, s := range []byte{StatusOK, StatusErr, 99} {
		if Retryable(s) {
			t.Errorf("status %d should not be retryable", s)
		}
	}
}

// oversizedHeader builds a request header claiming far more data than
// MaxData allows.
func oversizedHeader() []byte {
	hdr := make([]byte, reqHeader)
	hdr[0] = OpUpdate
	binary.LittleEndian.PutUint32(hdr[17:21], 0xFFFFFFF0)
	return hdr
}

// TestReadRequestMalformed pins the robustness contract: truncated,
// oversized and garbage frames produce a typed error (or clean io.EOF on
// an empty stream) — never a panic, a hang, or a giant allocation.
func TestReadRequestMalformed(t *testing.T) {
	valid := func() []byte {
		var buf bytes.Buffer
		WriteRequest(&buf, &Request{Op: OpGet, Page: 1, Data: []byte("abc")})
		return buf.Bytes()
	}()

	cases := []struct {
		name    string
		input   []byte
		wantEOF bool // io.EOF unchanged = clean end of stream
	}{
		{"empty", nil, true},
		{"one byte", valid[:1], false},
		{"half header", valid[:reqHeader/2], false},
		{"header only, missing data", valid[:reqHeader], false},
		{"truncated data", valid[:len(valid)-1], false},
		{"oversized dlen", oversizedHeader(), false},
		{"oversized dlen with junk body", append(oversizedHeader(), bytes.Repeat([]byte{0xAB}, 100)...), false},
		{"garbage", bytes.Repeat([]byte{0xFF}, reqHeader-1), false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			req := Request{Data: make([]byte, 0, 64)}
			err := ReadRequest(bytes.NewReader(tc.input), &req)
			if tc.wantEOF {
				if err != io.EOF {
					t.Fatalf("err = %v, want io.EOF", err)
				}
				return
			}
			if err == nil {
				t.Fatal("malformed frame decoded without error")
			}
			if err == io.EOF {
				t.Fatal("mid-frame truncation reported as clean EOF")
			}
			if cap(req.Data) > MaxData {
				t.Fatalf("malformed frame grew the buffer to %d", cap(req.Data))
			}
		})
	}
}

// TestReadResponseMalformed is the client-side mirror.
func TestReadResponseMalformed(t *testing.T) {
	valid := func() []byte {
		var buf bytes.Buffer
		WriteResponse(&buf, &Response{Status: StatusOK, Data: []byte("abc")})
		return buf.Bytes()
	}()
	oversized := make([]byte, 5)
	binary.LittleEndian.PutUint32(oversized[1:5], 0xFFFFFFF0)

	for _, tc := range []struct {
		name  string
		input []byte
	}{
		{"empty", nil},
		{"half header", valid[:2]},
		{"truncated data", valid[:len(valid)-1]},
		{"oversized dlen", oversized},
	} {
		t.Run(tc.name, func(t *testing.T) {
			var resp Response
			if err := ReadResponse(bytes.NewReader(tc.input), &resp); err == nil {
				t.Fatal("malformed frame decoded without error")
			}
			if cap(resp.Data) > MaxData {
				t.Fatalf("malformed frame grew the buffer to %d", cap(resp.Data))
			}
		})
	}
}

// FuzzReadRequest throws arbitrary bytes at the request decoder: any input
// must produce either a decoded request or an error — never a panic — and
// a second read from the remainder must behave the same way.
func FuzzReadRequest(f *testing.F) {
	var seed bytes.Buffer
	WriteRequest(&seed, &Request{Op: OpGet, Page: 3, DeadlineMS: 10, Data: []byte("x")})
	f.Add(seed.Bytes())
	f.Add([]byte{})
	f.Add(oversizedHeader())
	f.Add(bytes.Repeat([]byte{0x00}, 64))
	f.Add(bytes.Repeat([]byte{0xFF}, 64))
	f.Fuzz(func(t *testing.T, data []byte) {
		r := bytes.NewReader(data)
		var req Request
		for i := 0; i < 4; i++ { // drain a few frames; must terminate
			if err := ReadRequest(r, &req); err != nil {
				return
			}
			if len(req.Data) > MaxData {
				t.Fatalf("decoded data %d exceeds MaxData", len(req.Data))
			}
		}
	})
}

// FuzzReadResponse is the client-side mirror.
func FuzzReadResponse(f *testing.F) {
	var seed bytes.Buffer
	WriteResponse(&seed, &Response{Status: StatusShed, Data: []byte("busy")})
	f.Add(seed.Bytes())
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xFF}, 32))
	f.Fuzz(func(t *testing.T, data []byte) {
		r := bytes.NewReader(data)
		var resp Response
		for i := 0; i < 4; i++ {
			if err := ReadResponse(r, &resp); err != nil {
				return
			}
			if len(resp.Data) > MaxData {
				t.Fatalf("decoded data %d exceeds MaxData", len(resp.Data))
			}
		}
	})
}
