// Package page defines the on-device page format shared by the database,
// the SSD buffer-pool file, and the log.
//
// A page is a fixed-size buffer with a small header:
//
//	offset  size  field
//	0       4     magic
//	4       4     checksum (CRC-32C of everything after this field)
//	8       8     page id
//	16      8     LSN of the last update applied
//	24      ...   payload
//
// The engine treats the payload as opaque workload bytes; the LSN in the
// header is what recovery compares against log records.
package page

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// HeaderSize is the number of bytes of page metadata before the payload.
const HeaderSize = 24

// Magic marks a formatted page.
const Magic = 0x42504531 // "BPE1"

// ErrCorrupt is returned when a page fails validation.
var ErrCorrupt = errors.New("page: corrupt")

// ErrChecksum classifies validation failures that indicate the stored
// bytes differ from what was written: a flipped bit, a truncated image, a
// frame holding the wrong page. Every *ChecksumError matches both
// ErrChecksum and the legacy ErrCorrupt sentinel.
var ErrChecksum = errors.New("page: checksum verification failed")

// ErrBlank is returned by Decode for an all-zero buffer: never-written
// device space, the same zero-fill rule the WAL applies to its tail. It is
// deliberately NOT ErrCorrupt — clean unformatted space is not damage.
var ErrBlank = errors.New("page: blank (never written)")

// ChecksumError is the typed failure Decode and the read paths report for
// corrupt page images. Decode fills Reason/Got/Want; callers that know
// where the bytes came from annotate ID, Device, and Slot before
// propagating.
type ChecksumError struct {
	ID     ID     // page id the caller expected, 0 if unknown
	Device string // "db", "ssd", ... — filled by the read path
	Slot   int64  // device page / frame slot — filled by the read path
	Reason string // "short", "magic", "crc", "id", or "lsn"
	Got    uint64 // observed value (checksum, id, or lsn per Reason)
	Want   uint64 // expected value
}

func (e *ChecksumError) Error() string {
	loc := ""
	if e.Device != "" {
		loc = fmt.Sprintf(" on %s slot %d", e.Device, e.Slot)
	}
	return fmt.Sprintf("page %d%s: %s mismatch (got %#x, want %#x)",
		e.ID, loc, e.Reason, e.Got, e.Want)
}

// Is makes errors.Is(err, ErrChecksum) and errors.Is(err, ErrCorrupt)
// both true for any ChecksumError.
func (e *ChecksumError) Is(target error) bool {
	return target == ErrChecksum || target == ErrCorrupt
}

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ID identifies a logical database page.
type ID int64

// Page is the decoded, in-memory form of a page.
type Page struct {
	ID      ID
	LSN     uint64
	Payload []byte
}

// Encode serializes p into buf, which must be at least HeaderSize +
// len(p.Payload) bytes; the remainder of buf is zeroed.
func Encode(p *Page, buf []byte) error {
	need := HeaderSize + len(p.Payload)
	if len(buf) < need {
		return fmt.Errorf("page: buffer %d bytes, need %d", len(buf), need)
	}
	binary.LittleEndian.PutUint32(buf[0:4], Magic)
	binary.LittleEndian.PutUint64(buf[8:16], uint64(p.ID))
	binary.LittleEndian.PutUint64(buf[16:24], p.LSN)
	copy(buf[HeaderSize:], p.Payload)
	for i := need; i < len(buf); i++ {
		buf[i] = 0
	}
	binary.LittleEndian.PutUint32(buf[4:8], crc32.Checksum(buf[8:], castagnoli))
	return nil
}

// Decode parses buf into p, verifying magic and checksum. The payload slice
// aliases buf; callers that retain it must copy.
//
// Failures are typed: an all-zero buffer is ErrBlank (never-written space,
// mirroring the WAL's zero-fill rule), everything else is a *ChecksumError
// matching both ErrChecksum and ErrCorrupt.
func Decode(buf []byte, p *Page) error {
	if len(buf) < HeaderSize {
		return &ChecksumError{Reason: "short", Got: uint64(len(buf)), Want: HeaderSize}
	}
	if magic := binary.LittleEndian.Uint32(buf[0:4]); magic != Magic {
		if magic == 0 && Blank(buf) {
			return ErrBlank
		}
		return &ChecksumError{Reason: "magic", Got: uint64(magic), Want: Magic}
	}
	if got, want := crc32.Checksum(buf[8:], castagnoli), binary.LittleEndian.Uint32(buf[4:8]); got != want {
		return &ChecksumError{Reason: "crc", Got: uint64(got), Want: uint64(want)}
	}
	p.ID = ID(binary.LittleEndian.Uint64(buf[8:16]))
	p.LSN = binary.LittleEndian.Uint64(buf[16:24])
	p.Payload = buf[HeaderSize:]
	return nil
}

// Blank reports whether buf looks like never-written device space (all
// zeros), which reads of unformatted pages return.
func Blank(buf []byte) bool {
	for _, b := range buf {
		if b != 0 {
			return false
		}
	}
	return true
}
