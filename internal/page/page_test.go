package page

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	p := &Page{ID: 1234, LSN: 999, Payload: []byte("hello page")}
	buf := make([]byte, 64)
	if err := Encode(p, buf); err != nil {
		t.Fatal(err)
	}
	var got Page
	if err := Decode(buf, &got); err != nil {
		t.Fatal(err)
	}
	if got.ID != p.ID || got.LSN != p.LSN {
		t.Errorf("got id=%d lsn=%d, want id=%d lsn=%d", got.ID, got.LSN, p.ID, p.LSN)
	}
	if !bytes.Equal(got.Payload[:len(p.Payload)], p.Payload) {
		t.Errorf("payload = %q", got.Payload[:len(p.Payload)])
	}
	// The rest of the decoded payload is the zero padding.
	for _, b := range got.Payload[len(p.Payload):] {
		if b != 0 {
			t.Error("padding not zeroed")
		}
	}
}

func TestEncodeTooSmall(t *testing.T) {
	p := &Page{ID: 1, Payload: make([]byte, 100)}
	if err := Encode(p, make([]byte, 50)); err == nil {
		t.Error("Encode into short buffer succeeded")
	}
}

func TestDecodeRejectsBadMagic(t *testing.T) {
	buf := make([]byte, 64)
	Encode(&Page{ID: 1}, buf)
	buf[0] ^= 0xFF
	var p Page
	if err := Decode(buf, &p); !errors.Is(err, ErrCorrupt) {
		t.Errorf("err = %v, want ErrCorrupt", err)
	}
}

func TestDecodeRejectsBitFlip(t *testing.T) {
	buf := make([]byte, 64)
	Encode(&Page{ID: 7, LSN: 9, Payload: []byte{1, 2, 3}}, buf)
	buf[30] ^= 0x01
	var p Page
	if err := Decode(buf, &p); !errors.Is(err, ErrCorrupt) {
		t.Errorf("err = %v, want ErrCorrupt", err)
	}
}

func TestDecodeRejectsShortBuffer(t *testing.T) {
	var p Page
	if err := Decode(make([]byte, HeaderSize-1), &p); !errors.Is(err, ErrCorrupt) {
		t.Errorf("err = %v, want ErrCorrupt", err)
	}
}

// A flipped bit must surface as a typed checksum failure carrying the
// mismatch, and keep matching the legacy ErrCorrupt sentinel.
func TestChecksumErrorTyped(t *testing.T) {
	buf := make([]byte, 64)
	Encode(&Page{ID: 7, LSN: 9, Payload: []byte{1, 2, 3}}, buf)
	buf[30] ^= 0x01
	var p Page
	err := Decode(buf, &p)
	var ce *ChecksumError
	if !errors.As(err, &ce) {
		t.Fatalf("err = %v, want *ChecksumError", err)
	}
	if ce.Reason != "crc" || ce.Got == ce.Want {
		t.Errorf("unexpected detail: %+v", ce)
	}
	if !errors.Is(err, ErrChecksum) || !errors.Is(err, ErrCorrupt) {
		t.Errorf("err = %v, want ErrChecksum and ErrCorrupt", err)
	}
	if errors.Is(err, ErrBlank) {
		t.Errorf("corrupt page must not read as blank")
	}
}

// All-zero space is never-written, not corrupt: the same disambiguation
// the WAL applies to its zero-filled tail.
func TestDecodeBlankIsNotCorrupt(t *testing.T) {
	var p Page
	err := Decode(make([]byte, 64), &p)
	if !errors.Is(err, ErrBlank) {
		t.Fatalf("err = %v, want ErrBlank", err)
	}
	if errors.Is(err, ErrChecksum) || errors.Is(err, ErrCorrupt) {
		t.Errorf("blank buffer classified as corruption: %v", err)
	}
	// One flipped bit in otherwise-zero space is damage, not blank space.
	buf := make([]byte, 64)
	buf[40] = 0x10
	if err := Decode(buf, &p); !errors.Is(err, ErrChecksum) {
		t.Errorf("err = %v, want ErrChecksum for a rotted zero page", err)
	}
}

func TestBlank(t *testing.T) {
	if !Blank(make([]byte, 32)) {
		t.Error("zero buffer not blank")
	}
	buf := make([]byte, 32)
	buf[31] = 1
	if Blank(buf) {
		t.Error("nonzero buffer blank")
	}
	if !Blank(nil) {
		t.Error("nil not blank")
	}
}

func TestEncodedPageIsNotBlank(t *testing.T) {
	buf := make([]byte, 64)
	Encode(&Page{ID: 0, LSN: 0}, buf)
	if Blank(buf) {
		t.Error("encoded page reads as blank")
	}
}

// Property: encode/decode is the identity on (ID, LSN, payload).
func TestRoundTripProperty(t *testing.T) {
	prop := func(id int64, lsn uint64, payload []byte) bool {
		if len(payload) > 200 {
			payload = payload[:200]
		}
		p := &Page{ID: ID(id), LSN: lsn, Payload: payload}
		buf := make([]byte, HeaderSize+220)
		if err := Encode(p, buf); err != nil {
			return false
		}
		var got Page
		if err := Decode(buf, &got); err != nil {
			return false
		}
		return got.ID == p.ID && got.LSN == p.LSN &&
			bytes.Equal(got.Payload[:len(payload)], payload)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: any single-byte corruption after the magic is detected.
func TestCorruptionDetectedProperty(t *testing.T) {
	prop := func(pos uint8, flip uint8) bool {
		buf := make([]byte, 64)
		Encode(&Page{ID: 42, LSN: 7, Payload: []byte("payload")}, buf)
		i := 4 + int(pos)%(len(buf)-4) // anywhere from checksum onward
		if flip == 0 {
			flip = 1
		}
		buf[i] ^= flip
		var p Page
		return Decode(buf, &p) != nil
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
