// Package pagetab provides the flat open-addressing hash table behind every
// hot page directory in the simulator: the memory buffer pool's frame table,
// the SSD manager's per-shard hash table, the LRU-2 key index and the TAC
// extent temperatures.
//
// The table is keyed by uint64 (page ids, frame indexes and extent numbers
// all fit) and uses robin-hood linear probing over a power-of-two slot
// array. The hash is a Fibonacci multiply taking the top bits, which spreads
// the contiguous page-id runs a database workload produces. Deletion is
// tombstone-free (backward shifting), so lookup cost depends only on load,
// never on deletion history. Iteration visits slots in array order — a
// deterministic order for a deterministic operation history, unlike Go's
// randomized map ranges.
package pagetab

// fibMul is 2^64 / φ, the Fibonacci hashing multiplier. The SSD manager
// uses the same constant to pick shards; both uses take disjoint bit ranges
// of the product, so shard-mates do not collide within a shard's table.
const fibMul = 0x9E3779B97F4A7C15

// minCap is the smallest slot-array size; shrinking stops here.
const minCap = 8

// Table is an open-addressing hash table with uint64 keys. The zero value
// is an empty table ready for use. Tables must not be copied after use.
type Table[V any] struct {
	// dist holds, per slot, 0 for empty or probe distance + 1 (a slot at
	// its home position stores 1). Robin-hood insertion bounds distances
	// tightly at the load factors grow maintains.
	dist []uint8
	keys []uint64
	vals []V
	n    int
	// shift turns a Fibonacci product into a slot index: home = h >> shift
	// with shift = 64 - log2(len(keys)).
	shift uint
}

// New returns a table pre-sized for hint entries.
func New[V any](hint int) *Table[V] {
	t := &Table[V]{}
	capacity := minCap
	// Size so hint entries stay below the grow threshold (13/16 load).
	for capacity*13 < hint*16 {
		capacity *= 2
	}
	t.alloc(capacity)
	return t
}

// alloc installs fresh slot arrays of the given power-of-two capacity.
func (t *Table[V]) alloc(capacity int) {
	t.dist = make([]uint8, capacity)
	t.keys = make([]uint64, capacity)
	t.vals = make([]V, capacity)
	shift := uint(64)
	for c := capacity; c > 1; c >>= 1 {
		shift--
	}
	t.shift = shift
}

// Len returns the number of entries.
func (t *Table[V]) Len() int { return t.n }

// Cap returns the current slot-array size (test hook for grow/shrink).
func (t *Table[V]) Cap() int { return len(t.keys) }

func (t *Table[V]) home(key uint64) int {
	return int((key * fibMul) >> t.shift)
}

// Get returns the value stored for key.
func (t *Table[V]) Get(key uint64) (V, bool) {
	if t.n == 0 {
		var zero V
		return zero, false
	}
	mask := len(t.keys) - 1
	i := t.home(key)
	d := 1
	for {
		sd := int(t.dist[i])
		if sd == 0 || sd < d {
			// Empty slot, or a resident closer to its home than we are to
			// ours: robin-hood order proves key is absent.
			var zero V
			return zero, false
		}
		if sd == d && t.keys[i] == key {
			return t.vals[i], true
		}
		i = (i + 1) & mask
		d++
	}
}

// Contains reports whether key is present.
func (t *Table[V]) Contains(key uint64) bool {
	_, ok := t.Get(key)
	return ok
}

// Put inserts or updates key.
func (t *Table[V]) Put(key uint64, val V) {
	if t.keys == nil {
		t.alloc(minCap)
	}
	if (t.n+1)*16 > len(t.keys)*13 {
		t.rehash(len(t.keys) * 2)
	}
	t.insert(key, val)
}

// insert places (key, val), robbing richer residents along the probe run.
func (t *Table[V]) insert(key uint64, val V) {
	mask := len(t.keys) - 1
	i := t.home(key)
	d := 1
	for {
		sd := int(t.dist[i])
		if sd == 0 {
			t.dist[i] = uint8(d)
			t.keys[i] = key
			t.vals[i] = val
			t.n++
			return
		}
		if sd == d && t.keys[i] == key {
			t.vals[i] = val
			return
		}
		if sd < d {
			// The resident is closer to home than we are; rob it — swap and
			// continue placing the displaced entry further down the run.
			t.keys[i], key = key, t.keys[i]
			t.vals[i], val = val, t.vals[i]
			t.dist[i] = uint8(d)
			d = sd
		}
		if d == int(^uint8(0)) {
			// Probe distance would overflow the byte; rehashing larger
			// shortens every run. Unreachable at the maintained load factor.
			t.rehash(len(t.keys) * 2)
			t.insert(key, val)
			return
		}
		i = (i + 1) & mask
		d++
	}
}

// Delete removes key, reporting whether it was present.
func (t *Table[V]) Delete(key uint64) bool {
	if t.n == 0 {
		return false
	}
	mask := len(t.keys) - 1
	i := t.home(key)
	d := 1
	for {
		sd := int(t.dist[i])
		if sd == 0 || sd < d {
			return false
		}
		if sd == d && t.keys[i] == key {
			break
		}
		i = (i + 1) & mask
		d++
	}
	// Backward-shift deletion: pull successors one slot closer to home
	// until a hole or a home-positioned entry ends the displaced run.
	j := (i + 1) & mask
	for t.dist[j] > 1 {
		t.keys[i] = t.keys[j]
		t.vals[i] = t.vals[j]
		t.dist[i] = t.dist[j] - 1
		i = j
		j = (j + 1) & mask
	}
	var zero V
	t.keys[i] = 0
	t.vals[i] = zero
	t.dist[i] = 0
	t.n--
	if len(t.keys) > minCap && t.n*8 < len(t.keys) {
		t.rehash(len(t.keys) / 2)
	}
	return true
}

// rehash reinserts every entry into arrays of the given capacity.
func (t *Table[V]) rehash(capacity int) {
	dist, keys, vals := t.dist, t.keys, t.vals
	t.alloc(capacity)
	t.n = 0
	for i, sd := range dist {
		if sd != 0 {
			t.insert(keys[i], vals[i])
		}
	}
}

// Range calls fn on every entry in slot order, stopping early if fn returns
// false. The order is deterministic for a deterministic operation history.
// fn must not mutate the table.
func (t *Table[V]) Range(fn func(key uint64, val V) bool) {
	for i, sd := range t.dist {
		if sd != 0 && !fn(t.keys[i], t.vals[i]) {
			return
		}
	}
}

// Reset empties the table, keeping its current capacity.
func (t *Table[V]) Reset() {
	if t.n == 0 {
		return
	}
	clear(t.dist)
	clear(t.keys)
	clear(t.vals)
	t.n = 0
}
