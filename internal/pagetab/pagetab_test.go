package pagetab

import (
	"math/rand"
	"testing"
)

// TestBasic covers the small-table happy path.
func TestBasic(t *testing.T) {
	tab := New[string](0)
	if tab.Len() != 0 {
		t.Fatalf("new table Len = %d", tab.Len())
	}
	if _, ok := tab.Get(7); ok {
		t.Fatal("Get on empty table reported presence")
	}
	tab.Put(7, "seven")
	tab.Put(0, "zero") // key 0 must be a real key, not an empty marker
	tab.Put(7, "SEVEN")
	if tab.Len() != 2 {
		t.Fatalf("Len = %d, want 2", tab.Len())
	}
	if v, ok := tab.Get(7); !ok || v != "SEVEN" {
		t.Fatalf("Get(7) = %q, %v", v, ok)
	}
	if v, ok := tab.Get(0); !ok || v != "zero" {
		t.Fatalf("Get(0) = %q, %v", v, ok)
	}
	if !tab.Delete(7) || tab.Delete(7) {
		t.Fatal("Delete(7) should succeed exactly once")
	}
	if tab.Contains(7) {
		t.Fatal("deleted key still present")
	}
	if v, ok := tab.Get(0); !ok || v != "zero" {
		t.Fatalf("Get(0) after unrelated delete = %q, %v", v, ok)
	}
}

// TestZeroValue checks the zero Table works without New.
func TestZeroValue(t *testing.T) {
	var tab Table[int]
	if _, ok := tab.Get(1); ok {
		t.Fatal("zero table Get reported presence")
	}
	if tab.Delete(1) {
		t.Fatal("zero table Delete reported presence")
	}
	tab.Put(1, 10)
	if v, ok := tab.Get(1); !ok || v != 10 {
		t.Fatalf("Get(1) = %d, %v", v, ok)
	}
}

// TestDifferentialChurn drives a Table and a plain Go map through the same
// randomized insert/update/delete/lookup/iterate workload and requires
// identical observable state throughout, across several key ranges that
// force repeated grow and shrink transitions.
func TestDifferentialChurn(t *testing.T) {
	rng := rand.New(rand.NewSource(0x7ab1e))
	for _, keyRange := range []uint64{16, 300, 5000} {
		tab := New[int64](0)
		ref := make(map[uint64]int64)
		for op := 0; op < 60000; op++ {
			key := rng.Uint64() % keyRange
			switch r := rng.Intn(10); {
			case r < 4: // insert or update
				val := rng.Int63()
				tab.Put(key, val)
				ref[key] = val
			case r < 7: // delete
				got := tab.Delete(key)
				_, want := ref[key]
				if got != want {
					t.Fatalf("range %d op %d: Delete(%d) = %v, want %v", keyRange, op, key, got, want)
				}
				delete(ref, key)
			default: // lookup
				gotV, gotOK := tab.Get(key)
				wantV, wantOK := ref[key]
				if gotOK != wantOK || gotV != wantV {
					t.Fatalf("range %d op %d: Get(%d) = %d,%v want %d,%v",
						keyRange, op, key, gotV, gotOK, wantV, wantOK)
				}
			}
			if tab.Len() != len(ref) {
				t.Fatalf("range %d op %d: Len = %d, map has %d", keyRange, op, tab.Len(), len(ref))
			}
			// Periodically drain most of the table to cross the shrink
			// boundary, then verify a full iteration against the map.
			if op%7919 == 7918 {
				for k := range ref {
					if rng.Intn(4) != 0 {
						if !tab.Delete(k) {
							t.Fatalf("range %d op %d: drain Delete(%d) missed", keyRange, op, k)
						}
						delete(ref, k)
					}
				}
				checkIterationMatches(t, tab, ref)
			}
		}
		checkIterationMatches(t, tab, ref)
	}
}

// checkIterationMatches verifies Range visits exactly the map's entries.
func checkIterationMatches(t *testing.T, tab *Table[int64], ref map[uint64]int64) {
	t.Helper()
	seen := make(map[uint64]int64)
	tab.Range(func(k uint64, v int64) bool {
		if _, dup := seen[k]; dup {
			t.Fatalf("Range visited key %d twice", k)
		}
		seen[k] = v
		return true
	})
	if len(seen) != len(ref) {
		t.Fatalf("Range visited %d entries, map has %d", len(seen), len(ref))
	}
	for k, v := range ref {
		if got, ok := seen[k]; !ok || got != v {
			t.Fatalf("Range missed or mangled key %d: %d,%v want %d", k, got, ok, v)
		}
	}
}

// TestGrowShrinkBoundaries pins the resize thresholds: grow at 13/16 load,
// shrink at 1/8, never below minCap.
func TestGrowShrinkBoundaries(t *testing.T) {
	tab := New[int](0)
	if tab.Cap() != minCap {
		t.Fatalf("initial cap %d, want %d", tab.Cap(), minCap)
	}
	for i := 0; i < 1000; i++ {
		tab.Put(uint64(i), i)
		c := tab.Cap()
		if tab.Len()*16 > c*13 {
			t.Fatalf("after %d inserts: load %d/%d exceeds 13/16", i+1, tab.Len(), c)
		}
	}
	for i := 0; i < 1000; i++ {
		tab.Delete(uint64(i))
		c := tab.Cap()
		if c > minCap && tab.Len()*8 < c {
			t.Fatalf("after deleting %d: load %d/%d below 1/8 without shrink", i+1, tab.Len(), c)
		}
	}
	if tab.Cap() != minCap {
		t.Fatalf("empty table cap %d, want %d", tab.Cap(), minCap)
	}
}

// TestDeterministicIteration requires two tables built by the same
// operation history to iterate in the same order.
func TestDeterministicIteration(t *testing.T) {
	build := func() []uint64 {
		tab := New[int](0)
		rng := rand.New(rand.NewSource(42))
		for op := 0; op < 20000; op++ {
			k := rng.Uint64() % 997
			if rng.Intn(3) == 0 {
				tab.Delete(k)
			} else {
				tab.Put(k, op)
			}
		}
		var order []uint64
		tab.Range(func(k uint64, _ int) bool {
			order = append(order, k)
			return true
		})
		return order
	}
	a, b := build(), build()
	if len(a) != len(b) {
		t.Fatalf("iteration lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("iteration order diverges at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

// TestReset checks Reset empties without losing usability.
func TestReset(t *testing.T) {
	tab := New[int](100)
	for i := 0; i < 100; i++ {
		tab.Put(uint64(i), i)
	}
	tab.Reset()
	if tab.Len() != 0 {
		t.Fatalf("Len after Reset = %d", tab.Len())
	}
	tab.Range(func(k uint64, v int) bool {
		t.Fatalf("Range after Reset visited %d", k)
		return false
	})
	tab.Put(3, 33)
	if v, ok := tab.Get(3); !ok || v != 33 {
		t.Fatalf("Get(3) after Reset = %d, %v", v, ok)
	}
}
