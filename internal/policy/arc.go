package policy

import "time"

// List tags for arc entries.
const (
	arcT1 uint8 = iota + 1 // resident, seen once recently
	arcT2                  // resident, seen at least twice
	arcB1                  // ghost of a T1 eviction
	arcB2                  // ghost of a T2 eviction
)

// arc is the adaptive replacement cache (Megiddo & Modha): two resident
// lists — T1 for recency, T2 for frequency — shadowed by ghost lists B1
// and B2 that remember recently evicted keys. A hit in a ghost list is
// evidence the corresponding resident list is undersized, so it moves
// the adaptive target p. Unlike textbook ARC the cache does not size
// itself: the owner (buffer pool or SSD shard) holds the frames and
// calls Pop when it needs one, so arc only orders the victims and
// maintains the ghosts.
type arc struct {
	cap            int
	p              int // adaptive target size of T1
	t1, t2, b1, b2 elist
	table          map[int64]*entry
	free           *entry
	stats          Stats
}

func newARC(capacity int) *arc {
	if capacity < 1 {
		capacity = 1
	}
	a := &arc{cap: capacity, table: make(map[int64]*entry)}
	a.t1.init()
	a.t2.init()
	a.b1.init()
	a.b2.init()
	return a
}

func (a *arc) list(where uint8) *elist {
	switch where {
	case arcT1:
		return &a.t1
	case arcT2:
		return &a.t2
	case arcB1:
		return &a.b1
	default:
		return &a.b2
	}
}

func (a *arc) alloc(key int64) *entry {
	e := a.free
	if e != nil {
		a.free = e.next
		e.next = nil
	} else {
		e = &entry{}
	}
	e.key = key
	return e
}

func (a *arc) release(e *entry) {
	delete(a.table, e.key)
	e.next = a.free
	a.free = e
}

// promote handles one access: resident entries move to T2's MRU end,
// ghost hits additionally tune p, and unknown keys enter T1.
func (a *arc) promote(key int64, last, old time.Duration) {
	e := a.table[key]
	if e == nil {
		e = a.alloc(key)
		e.where = arcT1
		e.last, e.old = last, old
		a.table[key] = e
		a.t1.pushFront(e)
		a.trimGhosts()
		return
	}
	switch e.where {
	case arcB1:
		// Recency ghost hit: T1 was evicting too eagerly — grow its target.
		a.stats.GhostHits++
		d := 1
		if a.b1.n > 0 && a.b2.n > a.b1.n {
			d = a.b2.n / a.b1.n
		}
		a.p = min(a.cap, a.p+d)
	case arcB2:
		// Frequency ghost hit: shrink T1's target to protect T2.
		a.stats.GhostHits++
		d := 1
		if a.b2.n > 0 && a.b1.n > a.b2.n {
			d = a.b1.n / a.b2.n
		}
		a.p = max(0, a.p-d)
	}
	a.list(e.where).unlink(e)
	e.where = arcT2
	e.last, e.old = last, old
	a.t2.pushFront(e)
}

// trimGhosts enforces |T1|+|B1| <= cap and a 2*cap total footprint.
func (a *arc) trimGhosts() {
	for a.t1.n+a.b1.n > a.cap && a.b1.n > 0 {
		e := a.b1.back()
		a.b1.unlink(e)
		a.release(e)
	}
	for a.t1.n+a.t2.n+a.b1.n+a.b2.n > 2*a.cap && a.b2.n > 0 {
		e := a.b2.back()
		a.b2.unlink(e)
		a.release(e)
	}
}

// victimList picks the resident list the next eviction comes from: T1
// when it exceeds its adaptive target (or T2 is empty), T2 otherwise.
func (a *arc) victimList() *elist {
	if a.t1.n > 0 && (a.t1.n > a.p || a.t2.n == 0) {
		return &a.t1
	}
	if a.t2.n > 0 {
		return &a.t2
	}
	if a.t1.n > 0 {
		return &a.t1
	}
	return nil
}

// Touch records an access at now.
func (a *arc) Touch(key int64, now time.Duration) {
	last := now
	old := never
	if e := a.table[key]; e != nil {
		old = e.last
	}
	a.promote(key, last, old)
}

// TouchHistory (re-)inserts key with an explicit history. Ghost hits
// still adapt p: on the SSD tier a re-admission after eviction arrives
// through this path and is exactly the signal ARC learns from.
func (a *arc) TouchHistory(key int64, last, prev time.Duration) {
	a.promote(key, last, prev)
}

// Remove forgets a resident key, leaving no ghost — an invalidation is
// not an eviction. Ghost entries are left alone: owners call Remove
// defensively while reclaiming a just-popped victim's frame, and that
// must not erase the ghost Pop created.
func (a *arc) Remove(key int64) {
	e := a.table[key]
	if e == nil || (e.where != arcT1 && e.where != arcT2) {
		return
	}
	a.list(e.where).unlink(e)
	a.release(e)
}

// Victim returns the key Pop would evict, without evicting it.
func (a *arc) Victim() (int64, bool) {
	l := a.victimList()
	if l == nil {
		return 0, false
	}
	return l.back().key, true
}

// Pop evicts the victim, moving it to the matching ghost list.
func (a *arc) Pop() (int64, bool) {
	l := a.victimList()
	if l == nil {
		return 0, false
	}
	e := l.back()
	l.unlink(e)
	if l == &a.t1 {
		e.where = arcB1
		a.b1.pushFront(e)
	} else {
		e.where = arcB2
		a.b2.pushFront(e)
	}
	a.trimGhosts()
	return e.key, true
}

// Len reports the resident entry count (ghosts excluded).
func (a *arc) Len() int { return a.t1.n + a.t2.n }

// Contains reports whether key is resident (ghosts excluded).
func (a *arc) Contains(key int64) bool {
	e := a.table[key]
	return e != nil && (e.where == arcT1 || e.where == arcT2)
}

// History returns the recorded access history for a resident key.
func (a *arc) History(key int64) (last, prev time.Duration, seen bool) {
	e := a.table[key]
	if e == nil || (e.where != arcT1 && e.where != arcT2) {
		return 0, 0, false
	}
	return e.last, e.old, true
}

// Admit always accepts: ARC adapts through eviction, not admission.
func (a *arc) Admit(int64, time.Duration) bool { return true }

// Stats reports ghost hits and the current adaptive split target.
func (a *arc) Stats() Stats {
	s := a.stats
	s.SplitPos = int64(a.p)
	return s
}
