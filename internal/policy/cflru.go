package policy

import "time"

// cflru is clean-first LRU (Park et al.): a single recency list whose
// eviction scan walks a window at the cold end and prefers the first
// clean entry, deferring dirty pages so their write-back (WAL flush on
// the pool tier, SSD/disk write on eviction) is delayed and batched.
// Without a dirty callback it degenerates to plain LRU.
type cflru struct {
	window  int // cold-end scan depth
	list    elist
	table   map[int64]*entry
	free    *entry
	dirtyFn func(key int64) bool
	stats   Stats
}

func newCFLRU(capacity int) *cflru {
	if capacity < 1 {
		capacity = 1
	}
	w := capacity / 4
	if w < 1 {
		w = 1
	}
	c := &cflru{window: w, table: make(map[int64]*entry)}
	c.list.init()
	return c
}

// SetDirtyFn installs the dirty-state callback (DirtyAware).
func (c *cflru) SetDirtyFn(fn func(key int64) bool) { c.dirtyFn = fn }

// scan walks up to window entries from the LRU end and returns the
// first clean one, along with whether any older dirty entry was passed
// over. Falls back to the LRU entry when the window is all dirty.
func (c *cflru) scan() (e *entry, skippedDirty bool) {
	tail := c.list.back()
	if tail == nil {
		return nil, false
	}
	if c.dirtyFn == nil {
		return tail, false
	}
	cur := tail
	for i := 0; i < c.window && cur != &c.list.root; i++ {
		if !c.dirtyFn(cur.key) {
			return cur, cur != tail
		}
		cur = cur.prev
	}
	return tail, false
}

// Touch moves key to the MRU end, inserting it if absent.
func (c *cflru) Touch(key int64, now time.Duration) {
	e := c.table[key]
	if e == nil {
		e = c.alloc(key)
		e.last, e.old = now, never
		c.table[key] = e
		c.list.pushFront(e)
		return
	}
	c.list.unlink(e)
	e.old = e.last
	e.last = now
	c.list.pushFront(e)
}

// TouchHistory (re-)inserts key at the MRU end with explicit history.
func (c *cflru) TouchHistory(key int64, last, prev time.Duration) {
	e := c.table[key]
	if e == nil {
		e = c.alloc(key)
		c.table[key] = e
	} else {
		c.list.unlink(e)
	}
	e.last, e.old = last, prev
	c.list.pushFront(e)
}

// Remove forgets key.
func (c *cflru) Remove(key int64) {
	e := c.table[key]
	if e == nil {
		return
	}
	c.list.unlink(e)
	c.release(e)
}

// Victim returns the clean-first choice without removing it.
func (c *cflru) Victim() (int64, bool) {
	e, _ := c.scan()
	if e == nil {
		return 0, false
	}
	return e.key, true
}

// Pop evicts the clean-first choice, counting evictions that passed
// over an older dirty entry.
func (c *cflru) Pop() (int64, bool) {
	e, skipped := c.scan()
	if e == nil {
		return 0, false
	}
	if skipped {
		c.stats.CleanFirstEvict++
	}
	c.list.unlink(e)
	key := e.key
	c.release(e)
	return key, true
}

// Len reports the tracked entry count.
func (c *cflru) Len() int { return c.list.n }

// Contains reports whether key is tracked.
func (c *cflru) Contains(key int64) bool { return c.table[key] != nil }

// History returns the recorded access history for key.
func (c *cflru) History(key int64) (last, prev time.Duration, seen bool) {
	e := c.table[key]
	if e == nil {
		return 0, 0, false
	}
	return e.last, e.old, true
}

// Admit always accepts: CFLRU shapes eviction, not admission.
func (c *cflru) Admit(int64, time.Duration) bool { return true }

// Stats reports clean-first eviction counts.
func (c *cflru) Stats() Stats { return c.stats }

func (c *cflru) alloc(key int64) *entry {
	e := c.free
	if e != nil {
		c.free = e.next
		e.next = nil
	} else {
		e = &entry{}
	}
	e.key = key
	return e
}

func (c *cflru) release(e *entry) {
	delete(c.table, e.key)
	e.next = c.free
	c.free = e
}
