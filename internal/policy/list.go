package policy

import (
	"time"

	"turbobp/internal/lru2"
)

// entry is one tracked key on an intrusive doubly-linked list. The
// adaptive policies share it: where disambiguates which of a policy's
// lists the entry is on, and (last, old) carry the access history the
// History method reports.
type entry struct {
	key        int64
	where      uint8
	prev, next *entry
	last, old  time.Duration
}

// elist is a circular doubly-linked list with a sentinel. Front is the
// MRU end; back is the LRU end. All ordering decisions in the adaptive
// policies come from these links — never from map iteration — which is
// what keeps them deterministic.
type elist struct {
	root entry
	n    int
}

func (l *elist) init() {
	l.root.prev = &l.root
	l.root.next = &l.root
	l.n = 0
}

// pushFront inserts e at the MRU end.
func (l *elist) pushFront(e *entry) {
	e.prev = &l.root
	e.next = l.root.next
	e.prev.next = e
	e.next.prev = e
	l.n++
}

// back returns the LRU entry, or nil when empty.
func (l *elist) back() *entry {
	if l.n == 0 {
		return nil
	}
	return l.root.prev
}

// unlink removes e from whatever list it is on.
func (l *elist) unlink(e *entry) {
	e.prev.next = e.next
	e.next.prev = e.prev
	e.prev, e.next = nil, nil
	l.n--
}

// never is the "no previous access" sentinel, matching lru2's encoding
// so History round-trips between the default and adaptive policies.
var never = lru2.Never()
