package policy

import (
	"time"

	"turbobp/internal/lru2"
)

// lru2Policy is the default policy: a transparent wrapper over the
// arena-backed LRU-2 cache. Every method forwards verbatim, so the call
// sequence — and therefore the victim order, the (at, seq) determinism
// and the zero-allocation hot path — is byte-for-byte the pre-refactor
// behavior.
type lru2Policy struct {
	c *lru2.Cache
}

func newLRU2() *lru2Policy { return &lru2Policy{c: lru2.New()} }

// Touch forwards to lru2.Cache.Touch.
func (p *lru2Policy) Touch(key int64, now time.Duration) { p.c.Touch(key, now) }

// TouchHistory forwards to lru2.Cache.TouchHistory.
func (p *lru2Policy) TouchHistory(key int64, last, prev time.Duration) {
	p.c.TouchHistory(key, last, prev)
}

// Remove forwards to lru2.Cache.Remove.
func (p *lru2Policy) Remove(key int64) { p.c.Remove(key) }

// Victim forwards to lru2.Cache.Victim.
func (p *lru2Policy) Victim() (int64, bool) { return p.c.Victim() }

// Pop forwards to lru2.Cache.Pop.
func (p *lru2Policy) Pop() (int64, bool) { return p.c.Pop() }

// Len forwards to lru2.Cache.Len.
func (p *lru2Policy) Len() int { return p.c.Len() }

// Contains forwards to lru2.Cache.Contains.
func (p *lru2Policy) Contains(key int64) bool { return p.c.Contains(key) }

// History forwards to lru2.Cache.History.
func (p *lru2Policy) History(key int64) (last, prev time.Duration, seen bool) {
	return p.c.History(key)
}

// Admit always accepts: LRU-2 is eviction-only.
func (p *lru2Policy) Admit(int64, time.Duration) bool { return true }

// Stats returns zeroes: the default policy keeps no decision counters.
func (p *lru2Policy) Stats() Stats { return Stats{} }
