// Package policy abstracts the buffer-replacement decision behind one
// interface so the DRAM pool and the SSD tier can swap caching policies
// without touching their frame plumbing. The surface mirrors the
// arena-backed LRU-2 cache (internal/lru2) exactly — Touch, TouchHistory,
// Remove, Victim, Pop, History — plus an Admit hook that admission-gating
// policies (TinyLFU) use to refuse entries, and optional extension
// interfaces for dirty-awareness (CFLRU) and access recording (feeding a
// frequency sketch from lookups that never reach the policy's own lists).
//
// Determinism contract: implementations must derive every decision from
// the call sequence alone — no map-iteration order, no time sources, no
// randomness. Two policies fed the same Touch/Remove/Pop stream must
// produce the same victim sequence on every run, which is what keeps the
// simulation's stdout byte-identical across -parallel and -shards widths.
package policy

import (
	"fmt"
	"time"
)

// Kind selects a replacement policy. The zero value is LRU2, the
// pre-refactor default, so zero-valued configs keep their old behavior.
type Kind uint8

// The built-in policies.
const (
	// LRU2 is the arena-backed LRU-2 default (O'Neil et al.): victims
	// ordered by penultimate-access time, with history kept per entry.
	LRU2 Kind = iota
	// ARC is the adaptive ghost-cache policy: two real lists (recency,
	// frequency) and two ghost lists whose hits tune the split between
	// them.
	ARC
	// CFLRU is clean-first LRU: the eviction scan prefers clean entries
	// inside a window at the cold end, deferring dirty pages to cut
	// write-back traffic.
	CFLRU
	// TinyLFU keeps a count-min frequency sketch with a doorkeeper: the
	// sketch drives admission gating and frequency-informed eviction,
	// with periodic halving so stale frequency ages out.
	TinyLFU
)

// Kinds lists every policy in presentation order.
var Kinds = []Kind{LRU2, ARC, CFLRU, TinyLFU}

// String returns the flag-level name of the policy.
func (k Kind) String() string {
	switch k {
	case LRU2:
		return "lru2"
	case ARC:
		return "arc"
	case CFLRU:
		return "cflru"
	case TinyLFU:
		return "tinylfu"
	}
	return fmt.Sprintf("policy(%d)", uint8(k))
}

// ParseKind maps a flag value to a Kind.
func ParseKind(s string) (Kind, error) {
	switch s {
	case "lru2", "":
		return LRU2, nil
	case "arc":
		return ARC, nil
	case "cflru":
		return CFLRU, nil
	case "tinylfu":
		return TinyLFU, nil
	}
	return LRU2, fmt.Errorf("unknown cache policy %q (want lru2, arc, cflru or tinylfu)", s)
}

// Policy is one replacement policy instance. Keys are opaque int64s: the
// DRAM pool keys by page id; the SSD tier keys its per-shard clean heaps
// by frame index under LRU2 (preserving the legacy tie-break order) and
// by page id under the adaptive policies.
type Policy interface {
	// Touch records an access at virtual time now, inserting the key if
	// it is not tracked.
	Touch(key int64, now time.Duration)
	// TouchHistory (re-)inserts a key with an explicit (last, prev)
	// access history, as when a frame's history is carried across a
	// clean/dirty list move or a busy-victim skip.
	TouchHistory(key int64, last, prev time.Duration)
	// Remove forgets a key entirely (invalidation, not eviction — no
	// ghost is left behind).
	Remove(key int64)
	// Victim returns the key the policy would evict next, without
	// removing it.
	Victim() (int64, bool)
	// Pop removes and returns the eviction victim.
	Pop() (int64, bool)
	// Len reports the number of resident (non-ghost) keys tracked.
	Len() int
	// Contains reports whether key is resident in the policy.
	Contains(key int64) bool
	// History returns the recorded (last, prev) access times for key.
	History(key int64) (last, prev time.Duration, seen bool)
	// Admit reports whether the policy would admit key at time now.
	// Eviction-only policies always return true; admission-gating
	// policies (TinyLFU) consult their frequency filter and count
	// refusals in Stats.AdmitRejects.
	Admit(key int64, now time.Duration) bool
	// Stats returns the policy's decision counters.
	Stats() Stats
}

// DirtyAware is implemented by policies whose victim choice depends on
// dirty state (CFLRU). The owner installs a callback that reports whether
// a key's frame is currently dirty; a nil or absent callback makes the
// policy behave as plain recency LRU.
type DirtyAware interface {
	SetDirtyFn(fn func(key int64) bool)
}

// Recorder is implemented by policies that learn from accesses beyond
// their own resident set (TinyLFU's sketch). Owners call Record on every
// lookup — hit or miss — so the frequency filter sees the full reference
// stream, not just the resident slice of it.
type Recorder interface {
	Record(key int64)
}

// Stats counts policy decisions. Fields are cumulative except SplitPos,
// which is a gauge sampled at read time; summing gauges across shards is
// crude but keeps the fieldwise Stats.Add contract uniform.
type Stats struct {
	GhostHits       int64 // ARC: accesses that hit a ghost list
	SplitPos        int64 // ARC: current adaptive target size of the recency list
	CleanFirstEvict int64 // CFLRU: victims chosen over at least one older dirty entry
	AdmitRejects    int64 // TinyLFU: admissions refused by the doorkeeper/sketch
}

// Add accumulates other into s fieldwise.
func (s *Stats) Add(other Stats) {
	s.GhostHits += other.GhostHits
	s.SplitPos += other.SplitPos
	s.CleanFirstEvict += other.CleanFirstEvict
	s.AdmitRejects += other.AdmitRejects
}

// New builds a policy of the given kind sized for capacity entries.
// Capacity bounds ARC's ghost lists, CFLRU's clean-first window and
// TinyLFU's sketch width; LRU2 grows with its arena and ignores it.
func New(kind Kind, capacity int) Policy {
	switch kind {
	case ARC:
		return newARC(capacity)
	case CFLRU:
		return newCFLRU(capacity)
	case TinyLFU:
		return newTinyLFU(capacity)
	default:
		return newLRU2()
	}
}
