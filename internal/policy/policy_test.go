package policy

import (
	"math/rand"
	"testing"
	"time"

	"turbobp/internal/lru2"
)

// TestDefaultMatchesLRU2 pins the refactored default policy to the
// pre-refactor arena cache: a randomized stream of Touch / TouchHistory
// / Remove / Victim / Pop operations must produce identical victim
// orders and identical membership on both.
func TestDefaultMatchesLRU2(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		rng := rand.New(rand.NewSource(seed))
		p := New(LRU2, 64)
		ref := lru2.New()
		now := time.Duration(0)
		for op := 0; op < 20000; op++ {
			key := int64(rng.Intn(200))
			now += time.Duration(rng.Intn(1000)) * time.Microsecond
			switch rng.Intn(10) {
			case 0, 1, 2, 3:
				p.Touch(key, now)
				ref.Touch(key, now)
			case 4:
				last := now
				prev := now - time.Duration(rng.Intn(1000))*time.Microsecond
				p.TouchHistory(key, last, prev)
				ref.TouchHistory(key, last, prev)
			case 5:
				p.Remove(key)
				ref.Remove(key)
			case 6, 7:
				gk, gok := p.Victim()
				wk, wok := ref.Victim()
				if gk != wk || gok != wok {
					t.Fatalf("seed %d op %d: Victim = (%d,%v), lru2 = (%d,%v)", seed, op, gk, gok, wk, wok)
				}
			case 8:
				gk, gok := p.Pop()
				wk, wok := ref.Pop()
				if gk != wk || gok != wok {
					t.Fatalf("seed %d op %d: Pop = (%d,%v), lru2 = (%d,%v)", seed, op, gk, gok, wk, wok)
				}
			case 9:
				if g, w := p.Contains(key), ref.Contains(key); g != w {
					t.Fatalf("seed %d op %d: Contains(%d) = %v, lru2 = %v", seed, op, key, g, w)
				}
				gl, gp, gs := p.History(key)
				wl, wp, ws := ref.History(key)
				if gl != wl || gp != wp || gs != ws {
					t.Fatalf("seed %d op %d: History(%d) mismatch", seed, op, key)
				}
			}
			if p.Len() != ref.Len() {
				t.Fatalf("seed %d op %d: Len = %d, lru2 = %d", seed, op, p.Len(), ref.Len())
			}
		}
		// Drain both and compare the full remaining victim order.
		for {
			gk, gok := p.Pop()
			wk, wok := ref.Pop()
			if gk != wk || gok != wok {
				t.Fatalf("seed %d drain: Pop = (%d,%v), lru2 = (%d,%v)", seed, gk, gok, wk, wok)
			}
			if !gok {
				break
			}
		}
	}
}

// TestKinds exercises the Kind round-trip and the factory.
func TestKinds(t *testing.T) {
	for _, k := range Kinds {
		got, err := ParseKind(k.String())
		if err != nil || got != k {
			t.Fatalf("ParseKind(%q) = %v, %v", k.String(), got, err)
		}
		if New(k, 16) == nil {
			t.Fatalf("New(%v) = nil", k)
		}
	}
	if k, err := ParseKind(""); err != nil || k != LRU2 {
		t.Fatalf("ParseKind(\"\") = %v, %v; want LRU2 default", k, err)
	}
	if _, err := ParseKind("bogus"); err == nil {
		t.Fatal("ParseKind(bogus) did not error")
	}
	if LRU2 != Kind(0) {
		t.Fatal("zero Kind must be LRU2 so zero-valued configs keep the old default")
	}
}

// TestDeterminism verifies every policy is a pure function of its call
// sequence: two instances fed the same randomized stream must agree on
// every victim.
func TestDeterminism(t *testing.T) {
	for _, k := range Kinds {
		a, b := New(k, 32), New(k, 32)
		rng := rand.New(rand.NewSource(7))
		now := time.Duration(0)
		for op := 0; op < 30000; op++ {
			key := int64(rng.Intn(100))
			now += time.Millisecond
			switch rng.Intn(6) {
			case 0, 1, 2:
				a.Touch(key, now)
				b.Touch(key, now)
			case 3:
				a.Remove(key)
				b.Remove(key)
			case 4:
				ak, aok := a.Victim()
				bk, bok := b.Victim()
				if ak != bk || aok != bok {
					t.Fatalf("%v op %d: Victim diverged (%d,%v) vs (%d,%v)", k, op, ak, aok, bk, bok)
				}
			case 5:
				if a.Len() > 24 {
					ak, aok := a.Pop()
					bk, bok := b.Pop()
					if ak != bk || aok != bok {
						t.Fatalf("%v op %d: Pop diverged (%d,%v) vs (%d,%v)", k, op, ak, aok, bk, bok)
					}
				}
			}
		}
	}
}

// TestARCGhostAdaptation drives a recency-ghost hit and checks that the
// adaptive split moves and the hit is counted.
func TestARCGhostAdaptation(t *testing.T) {
	a := New(ARC, 4)
	now := func(i int) time.Duration { return time.Duration(i) * time.Millisecond }
	for i := 0; i < 4; i++ {
		a.Touch(int64(i), now(i))
	}
	// Evict key 0 (T1 LRU) into the B1 ghost list...
	k, ok := a.Pop()
	if !ok || k != 0 {
		t.Fatalf("Pop = (%d,%v), want key 0", k, ok)
	}
	if a.Contains(0) {
		t.Fatal("evicted key still resident")
	}
	// ...then touch it again: a ghost hit that should raise the split.
	a.Touch(0, now(10))
	s := a.Stats()
	if s.GhostHits != 1 {
		t.Fatalf("GhostHits = %d, want 1", s.GhostHits)
	}
	if s.SplitPos < 1 {
		t.Fatalf("SplitPos = %d, want >= 1 after a B1 hit", s.SplitPos)
	}
	if !a.Contains(0) {
		t.Fatal("ghost-hit key not resident after Touch")
	}
}

// TestARCScanResistance checks the adaptive property the pool relies
// on: with a hot set under steady re-reference plus a one-pass scan,
// ARC keeps more of the hot set than plain recency order would.
func TestARCScanResistance(t *testing.T) {
	const cap = 32
	a := New(ARC, cap)
	now := time.Duration(0)
	tick := func() time.Duration { now += time.Millisecond; return now }
	// Establish a hot set (keys 0..15) with repeated touches.
	for round := 0; round < 4; round++ {
		for k := int64(0); k < 16; k++ {
			a.Touch(k, tick())
		}
	}
	// One-pass scan of 64 cold keys; the cache holds cap entries, so
	// each insert beyond cap evicts one.
	for k := int64(100); k < 164; k++ {
		for a.Len() >= cap {
			a.Pop()
		}
		a.Touch(k, tick())
	}
	survivors := 0
	for k := int64(0); k < 16; k++ {
		if a.Contains(k) {
			survivors++
		}
	}
	if survivors < 12 {
		t.Fatalf("only %d/16 hot keys survived the scan; ARC should protect the frequency list", survivors)
	}
}

// TestCFLRUCleanFirst checks that the eviction scan passes over an
// older dirty entry for a younger clean one and counts it.
func TestCFLRUCleanFirst(t *testing.T) {
	c := New(CFLRU, 8)
	dirty := map[int64]bool{0: true, 1: true}
	c.(DirtyAware).SetDirtyFn(func(k int64) bool { return dirty[k] })
	for i := int64(0); i < 4; i++ {
		c.Touch(i, time.Duration(i)*time.Millisecond)
	}
	// LRU order (oldest first) is 0,1,2,3; 0 and 1 are dirty, the
	// window is 8/4 = 2... widen by touching more entries so the window
	// covers the dirty pair: window is capacity/4 = 2, so make dirty
	// depth 1 to stay inside it.
	dirty = map[int64]bool{0: true}
	c.(DirtyAware).SetDirtyFn(func(k int64) bool { return dirty[k] })
	if k, ok := c.Victim(); !ok || k != 1 {
		t.Fatalf("Victim = (%d,%v), want clean key 1 over dirty key 0", k, ok)
	}
	if k, ok := c.Pop(); !ok || k != 1 {
		t.Fatalf("Pop = (%d,%v), want clean key 1", k, ok)
	}
	if got := c.Stats().CleanFirstEvict; got != 1 {
		t.Fatalf("CleanFirstEvict = %d, want 1", got)
	}
	// With everything dirty the scan falls back to the true LRU entry.
	dirty = map[int64]bool{0: true, 2: true, 3: true}
	if k, ok := c.Pop(); !ok || k != 0 {
		t.Fatalf("all-dirty Pop = (%d,%v), want LRU key 0", k, ok)
	}
}

// TestTinyLFUAdmission checks the doorkeeper/sketch gate: a first-seen
// key is refused, a repeatedly seen key is admitted, and refusals are
// counted.
func TestTinyLFUAdmission(t *testing.T) {
	p := New(TinyLFU, 64)
	r := p.(Recorder)
	if p.Admit(42, 0) {
		t.Fatal("never-seen key admitted")
	}
	if got := p.Stats().AdmitRejects; got != 1 {
		t.Fatalf("AdmitRejects = %d, want 1", got)
	}
	r.Record(42) // doorkeeper
	r.Record(42) // sketch count 1
	if !p.Admit(42, 0) {
		t.Fatal("twice-seen key refused")
	}
}

// TestTinyLFUEviction checks frequency-informed victim choice: a hot
// key that drifted to the cold end survives over a cold neighbor.
func TestTinyLFUEviction(t *testing.T) {
	p := New(TinyLFU, 64)
	now := time.Duration(0)
	tick := func() time.Duration { now += time.Millisecond; return now }
	// Key 1 is hot (many observations), then drifts cold.
	for i := 0; i < 10; i++ {
		p.Touch(1, tick())
	}
	// Colder keys pushed in after it, each seen once.
	for k := int64(2); k <= 5; k++ {
		p.Touch(k, tick())
	}
	// LRU order is 1 (oldest), 2, 3, 4, 5 — but 1 is the hottest, so
	// the sample scan must pick a cold key instead.
	if k, ok := p.Victim(); !ok || k == 1 {
		t.Fatalf("Victim = (%d,%v); hot key 1 should survive the sample scan", k, ok)
	}
}

// TestSketch exercises increment/estimate monotonicity and halving.
func TestSketch(t *testing.T) {
	s := NewSketch(128)
	if got := s.Estimate(7); got != 0 {
		t.Fatalf("fresh Estimate = %d, want 0", got)
	}
	for i := 0; i < 8; i++ {
		s.Increment(7)
	}
	if got := s.Estimate(7); got < 8 {
		t.Fatalf("Estimate = %d, want >= 8 (count-min never undercounts)", got)
	}
	before := s.Estimate(7)
	s.Halve()
	if got := s.Estimate(7); got != before/2 {
		t.Fatalf("post-Halve Estimate = %d, want %d", got, before/2)
	}
	// Saturation: counters cap rather than wrap.
	for i := 0; i < 600; i++ {
		s.Increment(9)
	}
	if got := s.Estimate(9); got != 255 {
		t.Fatalf("saturated Estimate = %d, want 255", got)
	}
}

// TestHistoryRoundTrip checks History on the adaptive policies reports
// what TouchHistory stored.
func TestHistoryRoundTrip(t *testing.T) {
	for _, k := range []Kind{ARC, CFLRU, TinyLFU} {
		p := New(k, 16)
		p.TouchHistory(3, 5*time.Millisecond, 2*time.Millisecond)
		last, prev, seen := p.History(3)
		if !seen || last != 5*time.Millisecond || prev != 2*time.Millisecond {
			t.Fatalf("%v: History = (%v,%v,%v)", k, last, prev, seen)
		}
		p.Remove(3)
		if _, _, seen := p.History(3); seen {
			t.Fatalf("%v: removed key still has history", k)
		}
	}
}
