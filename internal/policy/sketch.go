package policy

// Sketch is a count-min frequency sketch: four rows of 8-bit counters,
// each row probed through an independent mix of the key. Estimates are
// the minimum across rows, so collisions only ever inflate a count.
// Halve ages the whole sketch by shifting every counter right, which
// keeps the frequency view recent (W-TinyLFU's reset operation).
type Sketch struct {
	rows [4][]uint8
	mask uint64
}

// sketchSeeds decorrelate the four rows' probe positions.
var sketchSeeds = [4]uint64{0x9e3779b97f4a7c15, 0xbf58476d1ce4e5b9, 0x94d049bb133111eb, 0xd6e8feb86659fd93}

// NewSketch sizes a sketch for roughly capacity distinct keys (width is
// the next power of two, at least 64).
func NewSketch(capacity int) *Sketch {
	w := 64
	for w < capacity {
		w <<= 1
	}
	s := &Sketch{mask: uint64(w - 1)}
	for i := range s.rows {
		s.rows[i] = make([]uint8, w)
	}
	return s
}

// mix is splitmix64's finalizer: a cheap, well-distributed hash.
func mix(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Increment bumps key's counter in every row, saturating at 255.
func (s *Sketch) Increment(key int64) {
	for i := range s.rows {
		slot := mix(uint64(key)^sketchSeeds[i]) & s.mask
		if s.rows[i][slot] < 255 {
			s.rows[i][slot]++
		}
	}
}

// Estimate returns the minimum counter for key across rows.
func (s *Sketch) Estimate(key int64) uint32 {
	est := uint32(255)
	for i := range s.rows {
		slot := mix(uint64(key)^sketchSeeds[i]) & s.mask
		if v := uint32(s.rows[i][slot]); v < est {
			est = v
		}
	}
	return est
}

// Halve ages the sketch: every counter is shifted right by one.
func (s *Sketch) Halve() {
	for i := range s.rows {
		row := s.rows[i]
		for j := range row {
			row[j] >>= 1
		}
	}
}

// doorkeeper is a small bloom filter in front of the sketch: a key's
// first access in the current window sets bits here instead of
// occupying sketch counters, which filters one-hit wonders cheaply.
type doorkeeper struct {
	bits []uint64
	mask uint64
}

func newDoorkeeper(capacity int) *doorkeeper {
	w := 64
	for w < capacity {
		w <<= 1
	}
	return &doorkeeper{bits: make([]uint64, (2*w)/64), mask: uint64(2*w - 1)}
}

// add sets the key's two probe bits and reports whether both were
// already set (i.e. the key was plausibly seen before).
func (d *doorkeeper) add(key int64) bool {
	h1 := mix(uint64(key) ^ sketchSeeds[0])
	h2 := mix(uint64(key) ^ sketchSeeds[3])
	p1, p2 := h1&d.mask, h2&d.mask
	seen := d.bits[p1>>6]&(1<<(p1&63)) != 0 && d.bits[p2>>6]&(1<<(p2&63)) != 0
	d.bits[p1>>6] |= 1 << (p1 & 63)
	d.bits[p2>>6] |= 1 << (p2 & 63)
	return seen
}

func (d *doorkeeper) has(key int64) bool {
	h1 := mix(uint64(key) ^ sketchSeeds[0])
	h2 := mix(uint64(key) ^ sketchSeeds[3])
	p1, p2 := h1&d.mask, h2&d.mask
	return d.bits[p1>>6]&(1<<(p1&63)) != 0 && d.bits[p2>>6]&(1<<(p2&63)) != 0
}

func (d *doorkeeper) reset() {
	for i := range d.bits {
		d.bits[i] = 0
	}
}
