package policy

import "time"

// tinylfu pairs a recency list with a count-min frequency sketch and a
// doorkeeper (Einziger et al.'s TinyLFU). Admission is the headline: a
// key must have been seen before in the current window — doorkeeper bit
// plus a sketch count — before Admit lets it into the cache, which
// filters one-hit wonders out of the SSD. Eviction samples the coldest
// few entries and evicts the lowest-frequency one, so a hot page that
// drifted to the cold end survives. The sketch halves every sampleMax
// observations to age out stale frequency.
type tinylfu struct {
	list   elist
	table  map[int64]*entry
	free   *entry
	sketch *Sketch
	door   *doorkeeper

	samples   int
	sampleMax int
	stats     Stats
}

// tlfuSample is how many cold-end entries the eviction scan compares.
const tlfuSample = 5

// tlfuAdmitMin is the windowed frequency a key needs to pass Admit:
// doorkeeper bit (1) plus at least one sketch count.
const tlfuAdmitMin = 2

func newTinyLFU(capacity int) *tinylfu {
	if capacity < 1 {
		capacity = 1
	}
	t := &tinylfu{
		table:     make(map[int64]*entry),
		sketch:    NewSketch(capacity),
		door:      newDoorkeeper(capacity),
		sampleMax: capacity * 8,
	}
	t.list.init()
	return t
}

// note feeds one observation of key into the frequency filter.
func (t *tinylfu) note(key int64) {
	if t.door.add(key) {
		t.sketch.Increment(key)
	}
	t.samples++
	if t.samples >= t.sampleMax {
		t.samples = 0
		t.sketch.Halve()
		t.door.reset()
	}
}

// estimate is key's windowed frequency: sketch count plus the
// doorkeeper bit.
func (t *tinylfu) estimate(key int64) uint32 {
	est := t.sketch.Estimate(key)
	if t.door.has(key) {
		est++
	}
	return est
}

// Record feeds an access that does not move the resident list — the
// owner calls it on every lookup, hit or miss, so the sketch sees the
// full reference stream (Recorder).
func (t *tinylfu) Record(key int64) { t.note(key) }

// Touch records an access at now: feeds the filter and moves key to
// the MRU end, inserting it if absent.
func (t *tinylfu) Touch(key int64, now time.Duration) {
	t.note(key)
	e := t.table[key]
	if e == nil {
		e = t.alloc(key)
		e.last, e.old = now, never
		t.table[key] = e
		t.list.pushFront(e)
		return
	}
	t.list.unlink(e)
	e.old = e.last
	e.last = now
	t.list.pushFront(e)
}

// TouchHistory (re-)inserts key at the MRU end with explicit history.
// It also counts as an observation: SSD-tier moves arrive through here.
func (t *tinylfu) TouchHistory(key int64, last, prev time.Duration) {
	t.note(key)
	e := t.table[key]
	if e == nil {
		e = t.alloc(key)
		t.table[key] = e
	} else {
		t.list.unlink(e)
	}
	e.last, e.old = last, prev
	t.list.pushFront(e)
}

// Remove forgets key.
func (t *tinylfu) Remove(key int64) {
	e := t.table[key]
	if e == nil {
		return
	}
	t.list.unlink(e)
	t.release(e)
}

// coldest returns the lowest-frequency entry among the tlfuSample
// entries nearest the LRU end; frequency ties keep the older entry.
func (t *tinylfu) coldest() *entry {
	cur := t.list.back()
	if cur == nil {
		return nil
	}
	best, bestEst := cur, t.estimate(cur.key)
	cur = cur.prev
	for i := 1; i < tlfuSample && cur != &t.list.root; i++ {
		if est := t.estimate(cur.key); est < bestEst {
			best, bestEst = cur, est
		}
		cur = cur.prev
	}
	return best
}

// Victim returns the frequency-informed choice without removing it.
func (t *tinylfu) Victim() (int64, bool) {
	e := t.coldest()
	if e == nil {
		return 0, false
	}
	return e.key, true
}

// Pop evicts the frequency-informed choice.
func (t *tinylfu) Pop() (int64, bool) {
	e := t.coldest()
	if e == nil {
		return 0, false
	}
	t.list.unlink(e)
	key := e.key
	t.release(e)
	return key, true
}

// Len reports the tracked entry count.
func (t *tinylfu) Len() int { return t.list.n }

// Contains reports whether key is tracked.
func (t *tinylfu) Contains(key int64) bool { return t.table[key] != nil }

// History returns the recorded access history for key.
func (t *tinylfu) History(key int64) (last, prev time.Duration, seen bool) {
	e := t.table[key]
	if e == nil {
		return 0, 0, false
	}
	return e.last, e.old, true
}

// Admit consults the frequency filter: keys below the windowed minimum
// are refused (and counted), keeping one-hit wonders out of the cache.
func (t *tinylfu) Admit(key int64, _ time.Duration) bool {
	if t.estimate(key) >= tlfuAdmitMin {
		return true
	}
	t.stats.AdmitRejects++
	return false
}

// Stats reports admission refusals.
func (t *tinylfu) Stats() Stats { return t.stats }

func (t *tinylfu) alloc(key int64) *entry {
	e := t.free
	if e != nil {
		t.free = e.next
		e.next = nil
	} else {
		e = &entry{}
	}
	e.key = key
	return e
}

func (t *tinylfu) release(e *entry) {
	delete(t.table, e.key)
	e.next = t.free
	t.free = e
}
