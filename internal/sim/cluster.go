package sim

import (
	"fmt"
	"sync"
	"time"
)

// This file adds the simulator's multi-kernel form: a Cluster of
// independent event kernels advanced in lockstep epochs, the classic
// conservative parallel-DES scheme. Each kernel owns a private Env — its
// own clock, calendar queue and sequence counter — so within an epoch the
// kernels share nothing and can run on separate OS threads. Cross-kernel
// interaction happens only through timestamped continuation messages
// (Kernel.Send) that are buffered in per-destination outboxes and merged
// into the destination queues at the epoch barrier.
//
// Determinism is the point. The barrier merge delivers messages in the
// total order (at, source kernel, send ordinal): outboxes are gathered in
// source-kernel order and stable-sorted by timestamp, so the sequence
// numbers a destination assigns — and therefore every FIFO tie-break
// downstream — are a pure function of the simulation's own history. How
// many OS threads execute the kernels (the width passed to Run) cannot be
// observed by the model, so results are byte-identical at any width.
//
// Correctness of the conservative window: a message sent while epoch k
// (ending at E_k) executes must carry at >= E_k, i.e. the sender promises
// a minimum latency of one window. The receiver's clock is exactly E_k at
// the barrier, so a delivered event is never in the receiver's past, and
// no kernel ever needs to roll back.

// Cluster is a set of simulation kernels advanced in lockstep epochs.
// Create one with NewCluster; drive it with Run.
type Cluster struct {
	window   time.Duration
	kernels  []*Kernel
	epochEnd time.Duration // end of the epoch currently executing
	running  bool
	messages uint64 // total cross-kernel messages delivered
}

// Kernel is one member of a Cluster: an Env plus outboxes for messages to
// the other kernels. Like an Env, a Kernel may only be touched by the
// goroutine currently executing its epoch (or by setup code before Run).
type Kernel struct {
	cluster *Cluster
	idx     int
	env     *Env
	out     [][]kmsg // per-destination outboxes, written only while this kernel executes
	sent    uint64   // send ordinal: position in this kernel's send history
	inbox   []kmsg   // barrier-time merge scratch, coordinator only
}

// kmsg is one cross-kernel message: run fn on the destination kernel at
// virtual time at. src and ord define its place in the deterministic
// delivery order.
type kmsg struct {
	at  time.Duration
	src int
	ord uint64
	fn  func()
}

// NewCluster returns n kernels coordinated with the given lookahead
// window. Every cross-kernel message must be timestamped at least one
// window into the future (see Kernel.Send), so the window is the model's
// minimum cross-kernel latency; smaller windows mean finer-grained
// synchronization and more barriers.
func NewCluster(n int, window time.Duration) *Cluster {
	if n < 1 {
		panic("sim: cluster needs at least one kernel")
	}
	if window <= 0 {
		panic("sim: cluster window must be positive")
	}
	c := &Cluster{window: window, kernels: make([]*Kernel, n)}
	for i := range c.kernels {
		c.kernels[i] = &Kernel{
			cluster: c,
			idx:     i,
			env:     NewEnv(),
			out:     make([][]kmsg, n),
		}
	}
	return c
}

// Kernels returns the number of kernels.
func (c *Cluster) Kernels() int { return len(c.kernels) }

// Kernel returns kernel i.
func (c *Cluster) Kernel(i int) *Kernel { return c.kernels[i] }

// Window returns the lookahead window.
func (c *Cluster) Window() time.Duration { return c.window }

// Messages returns the number of cross-kernel messages delivered so far.
func (c *Cluster) Messages() uint64 { return c.messages }

// Dispatched sums the kernels' logical event counts.
func (c *Cluster) Dispatched() uint64 {
	var n uint64
	for _, k := range c.kernels {
		n += k.env.Dispatched()
	}
	return n
}

// Index returns the kernel's position in the cluster.
func (k *Kernel) Index() int { return k.idx }

// Env returns the kernel's environment.
func (k *Kernel) Env() *Env { return k.env }

// Send queues fn to run on kernel dst at virtual time at. It must be
// called from code executing on k (a process of k's Env, or setup code
// before Run). The timestamp must respect the conservative window: at may
// not precede the end of the epoch currently executing — senders
// guarantee at least one window of latency, which is what lets the
// kernels run an epoch without hearing from each other. Delivery happens
// at the next barrier in (at, source kernel, send order); ties in all
// three are impossible, so the merged order is total.
func (k *Kernel) Send(dst int, at time.Duration, fn func()) {
	c := k.cluster
	if at < c.epochEnd {
		panic(fmt.Sprintf("sim: cross-kernel message at %v violates the conservative window (epoch ends %v)",
			at, c.epochEnd))
	}
	k.sent++
	k.out[dst] = append(k.out[dst], kmsg{at: at, src: k.idx, ord: k.sent, fn: fn})
}

// deliver merges every pending outbox into the destination queues. For
// each destination the messages are gathered in source-kernel order and
// stable-sorted by timestamp, so the delivery order — and with it the
// sequence number each message receives — is (at, src, ord), independent
// of execution width. Runs on the coordinator between epochs.
func (c *Cluster) deliver() {
	for di, d := range c.kernels {
		in := d.inbox[:0]
		for _, s := range c.kernels {
			box := s.out[di]
			in = append(in, box...)
			for i := range box {
				box[i] = kmsg{} // drop the closure references
			}
			s.out[di] = box[:0]
		}
		if len(in) == 0 {
			d.inbox = in
			continue
		}
		// Insertion sort by timestamp, stable so the (src, ord) gather
		// order breaks ties. Outboxes are time-sorted per source already
		// (sends within an epoch carry non-decreasing clocks per sender is
		// NOT guaranteed — a task may send for t+2W then t+W — so sort
		// properly); message counts per barrier are small.
		for i := 1; i < len(in); i++ {
			for j := i; j > 0 && in[j].at < in[j-1].at; j-- {
				in[j], in[j-1] = in[j-1], in[j]
			}
		}
		for _, m := range in {
			d.env.scheduleFn(m.at, m.fn)
		}
		c.messages += uint64(len(in))
		for i := range in {
			in[i] = kmsg{}
		}
		d.inbox = in[:0]
	}
}

// Run advances every kernel to virtual time until, synchronizing at
// epoch barriers one window apart, using width OS threads (clamped to
// [1, Kernels()]). Kernels are assigned to threads statically (kernel i
// runs on thread i mod width) and the barrier is a full join, so the
// execution is free of data races and — because the model cannot observe
// the thread assignment — the results are identical at every width.
// Messages still undelivered when the horizon is reached are merged into
// the destination queues but not executed, mirroring how Env.Run leaves
// post-horizon events pending. Run may be called again to continue.
func (c *Cluster) Run(until time.Duration, width int) time.Duration {
	if c.running {
		panic("sim: nested cluster Run")
	}
	c.running = true
	defer func() { c.running = false }()
	if width < 1 {
		width = 1
	}
	if width > len(c.kernels) {
		width = len(c.kernels)
	}
	start := c.kernels[0].env.Now()
	for start < until {
		end := start + c.window
		if end > until {
			end = until
		}
		c.deliver() // messages from the previous epoch (or from setup)
		c.epochEnd = end
		if width == 1 {
			for _, k := range c.kernels {
				k.env.Run(end)
			}
		} else {
			var wg sync.WaitGroup
			for w := 0; w < width; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for i := w; i < len(c.kernels); i += width {
						c.kernels[i].env.Run(end)
					}
				}(w)
			}
			wg.Wait()
		}
		start = end
	}
	c.deliver()
	return start
}

// Shutdown shuts down every kernel's environment.
func (c *Cluster) Shutdown() {
	for _, k := range c.kernels {
		k.env.Shutdown()
	}
}
