package sim

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"time"
)

// clusterWorkload populates a cluster with deterministic ping-pong task
// traffic: every kernel runs a few tasks that sleep pseudo-random
// intervals and occasionally message another kernel, which echoes back.
// Returns the per-kernel dispatch traces and a per-kernel activity count.
func clusterWorkload(t *testing.T, width int) ([][][2]int64, []uint64, uint64) {
	t.Helper()
	const (
		kernels = 4
		window  = 10 * time.Millisecond
		horizon = 2 * time.Second
	)
	c := NewCluster(kernels, window)
	traces := make([][][2]int64, kernels)
	counts := make([]uint64, kernels)
	for i := 0; i < kernels; i++ {
		i := i
		env := c.Kernel(i).Env()
		env.SetDispatchHook(func(at time.Duration, seq uint64) {
			traces[i] = append(traces[i], [2]int64{int64(at), int64(seq)})
		})
		for w := 0; w < 3; w++ {
			rng := rand.New(rand.NewSource(int64(i*31 + w)))
			k := c.Kernel(i)
			var loop func(task *Task)
			loop = func(task *Task) {
				counts[i]++
				d := time.Duration(rng.Intn(int(window))) + 1
				if rng.Float64() < 0.2 {
					dst := rng.Intn(kernels - 1)
					if dst >= i {
						dst++
					}
					at := task.Now() + window + d
					k.Send(dst, at, func() {
						counts[dst]++
					})
				}
				task.Sleep(d, func() { loop(task) })
			}
			env.Spawn(fmt.Sprintf("t%d.%d", i, w), func(task *Task) { loop(task) })
		}
	}
	c.Run(horizon, width)
	if got := c.Kernel(0).Env().Now(); got != horizon {
		t.Fatalf("width %d: clock at %v, want %v", width, got, horizon)
	}
	return traces, counts, c.Messages()
}

// TestClusterWidthInvariance is the heart of the deterministic-parallelism
// contract: the execution width is invisible to the model, so dispatch
// traces, activity counts and message counts must be identical at every
// width.
func TestClusterWidthInvariance(t *testing.T) {
	refTraces, refCounts, refMsgs := clusterWorkload(t, 1)
	if refMsgs == 0 {
		t.Fatal("workload sent no cross-kernel messages; test is vacuous")
	}
	for _, width := range []int{2, 3, 4, 8} {
		traces, counts, msgs := clusterWorkload(t, width)
		if msgs != refMsgs {
			t.Errorf("width %d: %d messages, want %d", width, msgs, refMsgs)
		}
		if !reflect.DeepEqual(counts, refCounts) {
			t.Errorf("width %d: activity counts %v, want %v", width, counts, refCounts)
		}
		if !reflect.DeepEqual(traces, refTraces) {
			t.Errorf("width %d: dispatch traces diverge from width 1", width)
		}
	}
}

// TestClusterMergeOrder pins the delivery order rule: messages are merged
// by (at, source kernel, send ordinal), regardless of which kernel's
// epoch happened to emit them first in real time.
func TestClusterMergeOrder(t *testing.T) {
	const window = 10 * time.Millisecond
	c := NewCluster(3, window)
	var got []string
	rec := func(tag string) func() {
		return func() { got = append(got, tag) }
	}
	// Setup-time sends: kernel 2 sends before kernel 1; both target kernel
	// 0 at the same instant. Kernel 1 also sends two messages at one
	// instant (ordinal order) and one earlier message last (time order).
	c.Kernel(2).Send(0, 5*time.Millisecond, rec("k2@5"))
	c.Kernel(1).Send(0, 5*time.Millisecond, rec("k1@5/a"))
	c.Kernel(1).Send(0, 5*time.Millisecond, rec("k1@5/b"))
	c.Kernel(1).Send(0, 2*time.Millisecond, rec("k1@2"))
	c.Run(window, 1)
	want := []string{"k1@2", "k1@5/a", "k1@5/b", "k2@5"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("delivery order %v, want %v", got, want)
	}
}

// TestClusterWindowViolation checks that a message timestamped inside the
// executing epoch panics instead of silently breaking determinism.
func TestClusterWindowViolation(t *testing.T) {
	const window = 10 * time.Millisecond
	c := NewCluster(2, window)
	c.Kernel(0).Env().Spawn("violator", func(task *Task) {
		defer func() {
			if recover() == nil {
				t.Error("Send inside the conservative window did not panic")
			}
		}()
		c.Kernel(0).Send(1, task.Now(), func() {})
	})
	c.Run(window, 1)
}

// TestClusterIdleKernel checks that a kernel with no events still advances
// to the horizon (its clock must not lag the cluster).
func TestClusterIdleKernel(t *testing.T) {
	c := NewCluster(2, time.Millisecond)
	fired := false
	c.Kernel(0).Env().Spawn("lone", func(task *Task) {
		task.Sleep(5*time.Millisecond, func() { fired = true })
	})
	c.Run(10*time.Millisecond, 2)
	if !fired {
		t.Error("task on kernel 0 did not run")
	}
	if got := c.Kernel(1).Env().Now(); got != 10*time.Millisecond {
		t.Errorf("idle kernel clock at %v, want 10ms", got)
	}
}

// TestClusterLateMessages checks that messages timestamped past the
// horizon are merged but not executed, mirroring Env.Run's treatment of
// post-horizon events.
func TestClusterLateMessages(t *testing.T) {
	const window = 10 * time.Millisecond
	c := NewCluster(2, window)
	ran := false
	c.Kernel(0).Send(1, 3*window, func() { ran = true })
	c.Run(2*window, 1)
	if ran {
		t.Error("post-horizon message executed")
	}
	if c.Messages() != 1 {
		t.Errorf("messages = %d, want 1 (merged, pending)", c.Messages())
	}
	if c.Kernel(1).Env().Idle() {
		t.Error("post-horizon message not pending in destination queue")
	}
}
