package sim

import (
	"math/bits"
	"time"
)

// This file holds the scheduler's event queue. The production structure is
// calQueue, a calendar queue (a timing wheel of per-bucket mini-heaps with a
// FIFO ring for same-instant wakeups and a binary-heap overflow for events
// beyond the wheel horizon). schedule and dispatch are O(1) amortized
// instead of the O(log n) of a single binary heap, which matters at the
// millions of events a full experiment cell dispatches. eventHeap, the
// plain binary heap it replaced, remains as the overflow structure and as
// the reference implementation the property tests and benchmarks compare
// against. Both dispatch in exactly (at, seq) order, so swapping them can
// never change simulation output.

// event is a scheduled wakeup: either a process to resume (proc) or a
// run-to-completion continuation to call (fn). Exactly one is set.
type event struct {
	at   time.Duration
	seq  uint64 // tiebreak: FIFO among simultaneous events
	proc *Proc
	fn   func()
}

// before reports whether a dispatches ahead of b: earlier time first,
// FIFO among equals.
func (a event) before(b event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// eventHeap is a hand-rolled binary min-heap of events ordered by (at, seq).
// container/heap would box each event into an interface{} on Push, costing an
// allocation per Sleep; the typed push/pop below keep the hot path
// allocation-free while preserving the exact same ordering.
type eventHeap []event

// push inserts ev, sifting it up to its heap position.
func (h *eventHeap) push(ev event) {
	*h = append(*h, ev)
	s := *h
	i := len(s) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !s[i].before(s[parent]) {
			break
		}
		s[i], s[parent] = s[parent], s[i]
		i = parent
	}
}

// pop removes and returns the minimum event.
func (h *eventHeap) pop() event {
	s := *h
	n := len(s) - 1
	ev := s[0]
	s[0] = s[n]
	s[n] = event{} // release the *Proc reference
	s = s[:n]
	*h = s
	i := 0
	for {
		left := 2*i + 1
		if left >= n {
			break
		}
		child := left
		if right := left + 1; right < n && s[right].before(s[left]) {
			child = right
		}
		if !s[child].before(s[i]) {
			break
		}
		s[i], s[child] = s[child], s[i]
		i = child
	}
	return ev
}

// Calendar-queue geometry. A bucket spans 2^calShift nanoseconds of virtual
// time (≈66µs, on the order of one device service time), and the wheel's
// calBuckets buckets cover ≈67ms ahead of the cursor; anything further goes
// to the overflow heap until the cursor gets close. The occupancy bitmap
// lets the dispatch scan jump over empty buckets a word at a time, so a
// sparse schedule costs a few word tests rather than a walk.
const (
	calShift   = 16
	calBuckets = 1024 // power of two
	calMask    = calBuckets - 1
	calWords   = calBuckets / 64
)

// peek-cache source tags.
const (
	calPeekNone = iota
	calPeekRing
	calPeekWheel
	calPeekOverflow
)

// calQueue is the calendar-queue event scheduler. The zero value is an
// empty queue.
//
// Invariants, maintained by push/pop:
//   - cursor never exceeds the bucket of any pending event, because it only
//     advances to the bucket of an event being dispatched (the minimum).
//   - every wheel event's bucket lies in [cursor, cursor+calBuckets).
//   - every overflow event's bucket lies at or beyond cursor+calBuckets;
//     advancing the cursor migrates newly-due overflow events into the
//     wheel, keeping the wheel minimum the global minimum.
//   - the ring holds events scheduled at the then-current instant; since
//     virtual time and seq are both monotone, it is FIFO-sorted by
//     (at, seq) without any comparisons.
type calQueue struct {
	size int

	// ring is a circular FIFO of same-instant wakeups — the dominant case:
	// process starts, signal broadcasts and resource handoffs all schedule
	// at the current time.
	ring     []event // power-of-two capacity
	ringHead int
	ringLen  int

	cursor     int64 // absolute bucket number the dispatch scan starts at
	wheelCount int
	occ        [calWords]uint64
	bucket     [calBuckets]eventHeap

	overflow eventHeap

	// One-slot peek cache so Run's peek-then-pop pair locates the minimum
	// once. Any push or pop invalidates it.
	peekSrc    int
	peekEv     event
	peekBucket int64
}

// push enqueues ev; now is the current virtual time (events at `now` take
// the ring fast path).
func (q *calQueue) push(ev event, now time.Duration) {
	q.size++
	q.peekSrc = calPeekNone
	if ev.at == now {
		q.ringPush(ev)
		return
	}
	b := int64(ev.at) >> calShift
	if b >= q.cursor+calBuckets {
		q.overflow.push(ev)
		return
	}
	q.bucketPush(b, ev)
}

func (q *calQueue) ringPush(ev event) {
	if q.ringLen == len(q.ring) {
		n := 2 * len(q.ring)
		if n == 0 {
			n = 64
		}
		grown := make([]event, n)
		for i := 0; i < q.ringLen; i++ {
			grown[i] = q.ring[(q.ringHead+i)&(len(q.ring)-1)]
		}
		q.ring = grown
		q.ringHead = 0
	}
	q.ring[(q.ringHead+q.ringLen)&(len(q.ring)-1)] = ev
	q.ringLen++
}

func (q *calQueue) bucketPush(b int64, ev event) {
	slot := int(b & calMask)
	h := &q.bucket[slot]
	if len(*h) == 0 {
		q.occ[slot>>6] |= 1 << uint(slot&63)
	}
	h.push(ev)
	q.wheelCount++
}

// nextOccupied returns the absolute bucket of the first occupied wheel slot
// at or after the cursor. The caller guarantees wheelCount > 0.
func (q *calQueue) nextOccupied() int64 {
	slot := int(q.cursor & calMask)
	w := slot >> 6
	word := q.occ[w] & (^uint64(0) << uint(slot&63))
	for {
		if word != 0 {
			s := w<<6 + bits.TrailingZeros64(word)
			return q.cursor + (int64(s-slot) & calMask)
		}
		w = (w + 1) & (calWords - 1)
		word = q.occ[w]
	}
}

// locate finds the minimum pending event and caches its source. Wheel
// events always precede overflow events (see the invariants), so the
// overflow heap competes only when the wheel is empty; the ring competes
// with either by direct (at, seq) comparison.
func (q *calQueue) locate() {
	src := calPeekNone
	var best event
	if q.ringLen > 0 {
		best = q.ring[q.ringHead]
		src = calPeekRing
	}
	if q.wheelCount > 0 {
		b := q.nextOccupied()
		if ev := q.bucket[b&calMask][0]; src == calPeekNone || ev.before(best) {
			best = ev
			src = calPeekWheel
			q.peekBucket = b
		}
	} else if len(q.overflow) > 0 {
		if ev := q.overflow[0]; src == calPeekNone || ev.before(best) {
			best = ev
			src = calPeekOverflow
		}
	}
	q.peekEv = best
	q.peekSrc = src
}

// peek returns the next event to dispatch without removing it.
func (q *calQueue) peek() (event, bool) {
	if q.size == 0 {
		return event{}, false
	}
	if q.peekSrc == calPeekNone {
		q.locate()
	}
	return q.peekEv, true
}

// pop removes and returns the minimum event. The queue must be non-empty.
func (q *calQueue) pop() event {
	if q.peekSrc == calPeekNone {
		q.locate()
	}
	ev := q.peekEv
	switch q.peekSrc {
	case calPeekRing:
		q.ring[q.ringHead] = event{} // release the *Proc reference
		q.ringHead = (q.ringHead + 1) & (len(q.ring) - 1)
		q.ringLen--
	case calPeekWheel:
		b := q.peekBucket
		slot := int(b & calMask)
		q.bucket[slot].pop()
		if len(q.bucket[slot]) == 0 {
			q.occ[slot>>6] &^= 1 << uint(slot&63)
		}
		q.wheelCount--
		if b > q.cursor {
			q.advance(b)
		}
	case calPeekOverflow:
		q.overflow.pop()
		if b := int64(ev.at) >> calShift; b > q.cursor {
			q.advance(b)
		}
	}
	q.size--
	q.peekSrc = calPeekNone
	return ev
}

// advance moves the cursor to absolute bucket b (that of the event being
// dispatched) and migrates overflow events the grown horizon now covers.
func (q *calQueue) advance(b int64) {
	q.cursor = b
	horizon := (q.cursor + calBuckets) << calShift
	for len(q.overflow) > 0 && int64(q.overflow[0].at) < horizon {
		ev := q.overflow.pop()
		q.bucketPush(int64(ev.at)>>calShift, ev)
	}
}

// reset drops every pending event and all retained storage.
func (q *calQueue) reset() { *q = calQueue{} }

// EventQueue is a standalone handle over the scheduler's event-queue
// implementations, exported for the cross-implementation property tests
// and the microbenchmarks. Calendar selects the production calendar queue;
// otherwise the reference binary heap. Push and Pop mirror how Env.schedule
// and Env.Run's dispatch loop drive the queue: pushed times clamp to the
// virtual clock, which advances to each popped event's time.
type EventQueue struct {
	cal      calQueue
	heap     eventHeap
	calendar bool
	seq      uint64
	now      time.Duration
}

// NewEventQueue returns an empty queue of the chosen implementation.
func NewEventQueue(calendar bool) *EventQueue {
	return &EventQueue{calendar: calendar}
}

// Len returns the number of pending events.
func (q *EventQueue) Len() int {
	if q.calendar {
		return q.cal.size
	}
	return len(q.heap)
}

// Now returns the queue's virtual clock.
func (q *EventQueue) Now() time.Duration { return q.now }

// Push schedules a wakeup at `at` (clamped to the current virtual time).
func (q *EventQueue) Push(at time.Duration) {
	if at < q.now {
		at = q.now
	}
	q.seq++
	ev := event{at: at, seq: q.seq}
	if q.calendar {
		q.cal.push(ev, q.now)
	} else {
		q.heap.push(ev)
	}
}

// Pop dispatches the earliest (at, seq) event, advancing the virtual clock
// to its time, and returns that time and the event's sequence number.
func (q *EventQueue) Pop() (at time.Duration, seq uint64, ok bool) {
	var ev event
	if q.calendar {
		if q.cal.size == 0 {
			return 0, 0, false
		}
		ev = q.cal.pop()
	} else {
		if len(q.heap) == 0 {
			return 0, 0, false
		}
		ev = q.heap.pop()
	}
	q.now = ev.at
	return ev.at, ev.seq, true
}
