package sim

import (
	"math/rand"
	"testing"
	"time"
)

// drainBoth pops every remaining event from both queues, requiring the
// identical (at, seq) dispatch sequence.
func drainBoth(t *testing.T, label string, cal, heap *EventQueue) {
	t.Helper()
	for cal.Len() > 0 || heap.Len() > 0 {
		compareOnePop(t, label, cal, heap)
	}
}

// compareOnePop pops one event from each queue and compares.
func compareOnePop(t *testing.T, label string, cal, heap *EventQueue) {
	t.Helper()
	ca, cs, cok := cal.Pop()
	ha, hs, hok := heap.Pop()
	if cok != hok {
		t.Fatalf("%s: calendar pop ok=%v, heap pop ok=%v", label, cok, hok)
	}
	if !cok {
		return
	}
	if ca != ha || cs != hs {
		t.Fatalf("%s: calendar dispatched (at=%v seq=%d), heap (at=%v seq=%d)",
			label, ca, cs, ha, hs)
	}
}

// TestCalendarMatchesHeapRandom drives the calendar queue and the reference
// binary heap through identical random push/pop workloads and requires
// identical (at, seq) dispatch orders. The delay mix covers same-instant
// ties (FIFO order), sub-bucket jitter, multi-bucket sleeps and far-future
// events that land in the overflow heap.
func TestCalendarMatchesHeapRandom(t *testing.T) {
	delayMixes := []struct {
		name string
		gen  func(rng *rand.Rand) time.Duration
	}{
		{"ties", func(rng *rand.Rand) time.Duration {
			return time.Duration(rng.Intn(3)) * time.Millisecond
		}},
		{"subBucket", func(rng *rand.Rand) time.Duration {
			return time.Duration(rng.Int63n(int64(50 * time.Microsecond)))
		}},
		{"deviceLike", func(rng *rand.Rand) time.Duration {
			return time.Duration(rng.Int63n(int64(20 * time.Millisecond)))
		}},
		{"farFuture", func(rng *rand.Rand) time.Duration {
			// Well past the ~67ms wheel horizon: exercises overflow and
			// its migration back into the wheel as the cursor advances.
			return time.Duration(rng.Int63n(int64(10 * time.Second)))
		}},
		{"mixed", func(rng *rand.Rand) time.Duration {
			switch rng.Intn(4) {
			case 0:
				return 0 // same-instant wakeup (ring fast path)
			case 1:
				return time.Duration(rng.Int63n(int64(time.Millisecond)))
			case 2:
				return time.Duration(rng.Int63n(int64(100 * time.Millisecond)))
			default:
				return time.Duration(rng.Int63n(int64(30 * time.Second)))
			}
		}},
	}
	for _, mix := range delayMixes {
		for seed := int64(0); seed < 5; seed++ {
			rng := rand.New(rand.NewSource(0xca1 + seed))
			cal := NewEventQueue(true)
			heap := NewEventQueue(false)
			for op := 0; op < 20000; op++ {
				if cal.Len() == 0 || rng.Intn(5) < 3 {
					d := mix.gen(rng)
					cal.Push(cal.Now() + d)
					heap.Push(heap.Now() + d)
				} else {
					compareOnePop(t, mix.name, cal, heap)
				}
				if cal.Len() != heap.Len() {
					t.Fatalf("%s: Len diverged: calendar %d, heap %d", mix.name, cal.Len(), heap.Len())
				}
			}
			drainBoth(t, mix.name, cal, heap)
		}
	}
}

// TestCalendarSameInstantFIFO pins the FIFO guarantee directly: many events
// at the same instant dispatch in push order.
func TestCalendarSameInstantFIFO(t *testing.T) {
	cal := NewEventQueue(true)
	heap := NewEventQueue(false)
	for i := 0; i < 1000; i++ {
		cal.Push(5 * time.Millisecond)
		heap.Push(5 * time.Millisecond)
	}
	var prevSeq uint64
	for i := 0; i < 1000; i++ {
		at, seq, ok := cal.Pop()
		if !ok || at != 5*time.Millisecond {
			t.Fatalf("pop %d: at=%v ok=%v", i, at, ok)
		}
		if i > 0 && seq != prevSeq+1 {
			t.Fatalf("pop %d: seq %d after %d, want FIFO", i, seq, prevSeq)
		}
		prevSeq = seq
		if ha, hs, hok := heap.Pop(); !hok || ha != at || hs != seq {
			t.Fatalf("pop %d: heap dispatched (at=%v seq=%d ok=%v), calendar (at=%v seq=%d)",
				i, ha, hs, hok, at, seq)
		}
	}
}

// TestCalendarPastClampsToNow mirrors Env.schedule's clamp: a push earlier
// than the clock dispatches at the clock, after everything already queued
// there.
func TestCalendarPastClampsToNow(t *testing.T) {
	cal := NewEventQueue(true)
	heap := NewEventQueue(false)
	cal.Push(time.Second)
	heap.Push(time.Second)
	cal.Pop() // clock now 1s
	heap.Pop()
	cal.Push(time.Millisecond) // in the past: clamps to 1s
	heap.Push(time.Millisecond)
	cal.Push(time.Second) // same instant, pushed later
	heap.Push(time.Second)
	drainBoth(t, "clamp", cal, heap)
}

// TestCalendarSparseJumps exercises long empty stretches (cursor jumps via
// the occupancy bitmap and overflow-only states) interleaved with bursts.
func TestCalendarSparseJumps(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	cal := NewEventQueue(true)
	heap := NewEventQueue(false)
	for round := 0; round < 200; round++ {
		gap := time.Duration(rng.Int63n(int64(time.Minute)))
		burst := 1 + rng.Intn(8)
		for i := 0; i < burst; i++ {
			jitter := time.Duration(rng.Int63n(int64(time.Millisecond)))
			cal.Push(cal.Now() + gap + jitter)
			heap.Push(heap.Now() + gap + jitter)
		}
		for i := 0; i < burst; i++ {
			compareOnePop(t, "sparse", cal, heap)
		}
	}
	drainBoth(t, "sparse", cal, heap)
}
