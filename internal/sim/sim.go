// Package sim implements a small discrete-event simulation (DES) kernel.
//
// A simulation is driven by an Env, which owns a virtual clock and an event
// queue. Simulated activities run as cooperative processes (Proc), each
// backed by a goroutine. At any instant exactly one goroutine is runnable:
// either the scheduler (inside Env.Run) or a single process. Control is
// handed over explicitly, so simulations are fully deterministic for a fixed
// sequence of process actions.
//
// Processes block by calling Proc.Sleep, by waiting on a Signal, or by
// acquiring a Resource. While a process is blocked, virtual time advances to
// the next scheduled event. Virtual time never advances while a process is
// running: computation is free unless a process explicitly sleeps.
package sim

import (
	"errors"
	"fmt"
	"time"
)

// ErrStopped is the panic value used to unwind processes when the
// environment shuts down. Process bodies should not recover it.
var ErrStopped = errors.New("sim: environment stopped")

// Env is a discrete-event simulation environment. The zero value is not
// usable; create one with NewEnv.
type Env struct {
	now     time.Duration
	seq     uint64
	until   time.Duration // current Run's limit; only meaningful while running
	events  calQueue      // see queue.go
	yield   chan struct{} // handed back by the running process
	live    map[*Proc]struct{}
	stopped bool
	running bool
}

// NewEnv returns an empty environment with the clock at zero.
func NewEnv() *Env {
	return &Env{
		yield: make(chan struct{}),
		live:  make(map[*Proc]struct{}),
	}
}

// Now returns the current virtual time.
func (e *Env) Now() time.Duration { return e.now }

// Proc is a simulated process. A Proc may only be used from within its own
// process function; sharing a Proc across goroutines is a bug.
type Proc struct {
	env    *Env
	resume chan struct{}
	name   string
	done   *Signal
}

// Env returns the environment the process belongs to.
func (p *Proc) Env() *Env { return p.env }

// Name returns the name given to Go.
func (p *Proc) Name() string { return p.name }

// Now returns the current virtual time.
func (p *Proc) Now() time.Duration { return p.env.now }

// Done returns a Signal that is broadcast when the process function returns.
func (p *Proc) Done() *Signal { return p.done }

// schedule enqueues a wakeup for p at time at.
func (e *Env) schedule(at time.Duration, p *Proc) {
	if at < e.now {
		at = e.now
	}
	e.seq++
	e.events.push(event{at: at, seq: e.seq, proc: p}, e.now)
}

// Go starts a new process running fn. It may be called before Run, or from
// inside a running process. The new process is scheduled to start at the
// current virtual time, after already-queued events for the same instant.
func (e *Env) Go(name string, fn func(p *Proc)) *Proc {
	if e.stopped {
		panic("sim: Go after environment stopped")
	}
	p := &Proc{env: e, resume: make(chan struct{}), name: name}
	p.done = NewSignal(e)
	e.live[p] = struct{}{}
	go func() {
		<-p.resume
		// The cleanup is deferred so the scheduler gets its handoff even if
		// fn unwinds via runtime.Goexit (e.g. t.Fatal inside a process).
		defer func() {
			delete(e.live, p)
			if !e.stopped {
				p.done.Broadcast()
			}
			e.yield <- struct{}{}
		}()
		if !e.stopped {
			func() {
				defer func() {
					if r := recover(); r != nil && r != ErrStopped { //nolint:errorlint
						panic(fmt.Sprintf("sim: process %q panicked: %v", p.name, r))
					}
				}()
				fn(p)
			}()
		}
	}()
	e.schedule(e.now, p)
	return p
}

// park blocks the calling process until the scheduler resumes it. The caller
// must have already arranged for a wakeup (a scheduled event, or membership
// in some wait list that another process will signal).
func (p *Proc) park() {
	p.env.yield <- struct{}{}
	<-p.resume
	if p.env.stopped {
		panic(ErrStopped)
	}
}

// Sleep blocks the process for d of virtual time. Negative durations sleep
// for zero time (yielding to other events scheduled at the same instant).
func (p *Proc) Sleep(d time.Duration) {
	if d < 0 {
		d = 0
	}
	e := p.env
	at := e.now + d
	// Fast path: if this wakeup would be the very next dispatch — it strictly
	// precedes every pending event (a tie loses, FIFO) and the Run limit does
	// not cut it off — no other process can run in between, so advance the
	// clock and keep going, skipping the park and its two scheduler handoffs.
	// Dispatch order is identical either way.
	if e.running && (e.until < 0 || at <= e.until) {
		if ev, ok := e.events.peek(); !ok || at < ev.at {
			e.now = at
			return
		}
	}
	e.schedule(at, p)
	p.park()
}

// Yield gives up the processor until all other events at the current instant
// have run.
func (p *Proc) Yield() { p.Sleep(0) }

// Run dispatches events until the event queue is empty or until the virtual
// clock would pass until (use a negative until to run to exhaustion). It
// returns the virtual time at which it stopped. Run may be called again to
// continue a paused simulation.
func (e *Env) Run(until time.Duration) time.Duration {
	if e.running {
		panic("sim: nested Run")
	}
	e.running = true
	e.until = until
	defer func() { e.running = false }()
	for e.events.size > 0 {
		ev, _ := e.events.peek()
		if until >= 0 && ev.at > until {
			e.now = until
			return e.now
		}
		e.events.pop()
		e.now = ev.at
		ev.proc.resume <- struct{}{}
		<-e.yield
	}
	if until > e.now {
		e.now = until
	}
	return e.now
}

// Idle reports whether no events are pending.
func (e *Env) Idle() bool { return e.events.size == 0 }

// Live returns the number of processes that have been started and have not
// yet returned.
func (e *Env) Live() int { return len(e.live) }

// Shutdown terminates every live process by unwinding it with ErrStopped the
// next time it would run, then drains the goroutines. After Shutdown the
// environment cannot be reused. It is safe to call Shutdown on an
// environment with no live processes.
func (e *Env) Shutdown() {
	if e.stopped {
		return
	}
	e.stopped = true
	e.events.reset()
	for p := range e.live {
		p.resume <- struct{}{}
		<-e.yield
	}
	if len(e.live) != 0 {
		panic("sim: processes survived shutdown")
	}
}

// A Signal is a broadcast condition: processes wait on it and a later
// Broadcast wakes all current waiters at the current virtual time.
type Signal struct {
	env     *Env
	waiters []*Proc
	fired   bool
}

// NewSignal returns a Signal bound to env.
func NewSignal(env *Env) *Signal { return &Signal{env: env} }

// Fired reports whether Broadcast has ever been called.
func (s *Signal) Fired() bool { return s.fired }

// Wait blocks p until the next Broadcast. If the signal has already fired,
// Wait still blocks until the *next* Broadcast, except via WaitFired.
func (s *Signal) Wait(p *Proc) {
	s.waiters = append(s.waiters, p)
	p.park()
}

// WaitFired blocks p until the signal has fired at least once; it returns
// immediately if it already has.
func (s *Signal) WaitFired(p *Proc) {
	if s.fired {
		return
	}
	s.Wait(p)
}

// Broadcast wakes all current waiters. The wakeups are scheduled at the
// current virtual time in FIFO order. Broadcast may be called from a process
// or from outside Run.
func (s *Signal) Broadcast() {
	s.fired = true
	for i, w := range s.waiters {
		s.env.schedule(s.env.now, w)
		s.waiters[i] = nil // drop the *Proc reference from the backing array
	}
	s.waiters = s.waiters[:0] // keep the storage for the next wait cycle
}

// A Resource is a counted FIFO semaphore: at most Cap processes hold it at
// once and waiters acquire it in arrival order. The wait queue is a slice
// plus a head index: popped slots are zeroed (no retained *Proc references)
// and the storage is reused once the queue drains.
type Resource struct {
	env     *Env
	cap     int
	inUse   int
	waiters []*Proc
	head    int // index of the oldest waiter in waiters
}

// NewResource returns a resource with the given capacity (cap >= 1).
func NewResource(env *Env, capacity int) *Resource {
	if capacity < 1 {
		panic("sim: resource capacity must be >= 1")
	}
	return &Resource{env: env, cap: capacity}
}

// Acquire blocks p until a unit of the resource is available and takes it.
func (r *Resource) Acquire(p *Proc) {
	if r.inUse < r.cap && r.Queued() == 0 {
		r.inUse++
		return
	}
	r.waiters = append(r.waiters, p)
	p.park()
	// Ownership was transferred by Release; inUse already accounts for us.
}

// TryAcquire takes a unit if one is free without blocking and reports
// whether it succeeded.
func (r *Resource) TryAcquire() bool {
	if r.inUse < r.cap && r.Queued() == 0 {
		r.inUse++
		return true
	}
	return false
}

// Release returns a unit of the resource, waking the oldest waiter if any.
func (r *Resource) Release() {
	if r.inUse <= 0 {
		panic("sim: Release of idle resource")
	}
	if r.head < len(r.waiters) {
		w := r.waiters[r.head]
		r.waiters[r.head] = nil // drop the reference from the backing array
		r.head++
		if r.head == len(r.waiters) {
			r.waiters = r.waiters[:0] // drained: rewind and reuse the storage
			r.head = 0
		}
		// The unit passes directly to w: inUse stays unchanged.
		r.env.schedule(r.env.now, w)
		return
	}
	r.inUse--
}

// InUse returns the number of held units.
func (r *Resource) InUse() int { return r.inUse }

// Queued returns the number of processes waiting to acquire.
func (r *Resource) Queued() int { return len(r.waiters) - r.head }

// Pending returns held units plus waiters; for a device modelled as a
// resource this is the "number of pending I/Os" used by throttle control.
func (r *Resource) Pending() int { return r.inUse + r.Queued() }
