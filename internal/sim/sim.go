// Package sim implements a small discrete-event simulation (DES) kernel.
//
// A simulation is driven by an Env, which owns a virtual clock and an event
// queue. Simulated activities run as cooperative processes (Proc), each
// backed by a goroutine. At any instant exactly one goroutine is runnable:
// either the scheduler (inside Env.Run) or a single process. Control is
// handed over explicitly, so simulations are fully deterministic for a fixed
// sequence of process actions.
//
// Processes block by calling Proc.Sleep, by waiting on a Signal, or by
// acquiring a Resource. While a process is blocked, virtual time advances to
// the next scheduled event. Virtual time never advances while a process is
// running: computation is free unless a process explicitly sleeps.
//
// A second, run-to-completion process form (Task, see task.go) expresses
// the same blocking points as explicit continuations executed on the
// scheduler's goroutine, eliminating the per-wakeup goroutine handoffs.
// The two forms schedule events identically and may be mixed freely.
package sim

import (
	"errors"
	"fmt"
	"time"
)

// ErrStopped is the panic value used to unwind processes when the
// environment shuts down. Process bodies should not recover it.
var ErrStopped = errors.New("sim: environment stopped")

// Env is a discrete-event simulation environment. The zero value is not
// usable; create one with NewEnv.
type Env struct {
	now     time.Duration
	seq     uint64
	until   time.Duration // current Run's limit; only meaningful while running
	events  calQueue      // see queue.go
	yield   chan struct{} // handed back by the running process
	live    map[*Proc]struct{}
	stopped bool
	running bool

	dispatched  uint64                             // logical events processed (queue pops + inline sleeps)
	inlineDepth int                                // current nesting of inline Task.Sleep continuations
	inlineLimit int                                // nesting cap before falling back to the queue
	onDispatch  func(at time.Duration, seq uint64) // test hook, nil in production
}

// defaultInlineLimit bounds how deeply Task.Sleep continuations nest on the
// native stack before a wakeup is routed through the event queue instead.
// Routing preserves dispatch order exactly (the wakeup is strictly earlier
// than every pending event), so the cap only trades a queue round-trip for
// bounded stack growth.
const defaultInlineLimit = 256

// NewEnv returns an empty environment with the clock at zero.
func NewEnv() *Env {
	return &Env{
		yield:       make(chan struct{}),
		live:        make(map[*Proc]struct{}),
		inlineLimit: defaultInlineLimit,
	}
}

// Dispatched returns the number of logical events processed so far: queue
// dispatches plus sleeps completed inline by the fast paths. It is the
// natural "simulator events" figure for throughput reporting.
func (e *Env) Dispatched() uint64 { return e.dispatched }

// SetDispatchHook installs fn to observe every queue dispatch as (at, seq).
// Test instrumentation: the equivalence property tests record dispatch
// traces with it. Pass nil to remove.
func (e *Env) SetDispatchHook(fn func(at time.Duration, seq uint64)) { e.onDispatch = fn }

// SetInlineLimit overrides the inline-continuation nesting cap. Test
// instrumentation: raising it past any workload's event count makes the
// task form consume sequence numbers exactly like the blocking form, so
// dispatch traces compare equal. n <= 0 restores the default.
func (e *Env) SetInlineLimit(n int) {
	if n <= 0 {
		n = defaultInlineLimit
	}
	e.inlineLimit = n
}

// Now returns the current virtual time.
func (e *Env) Now() time.Duration { return e.now }

// Proc is a simulated process. A Proc may only be used from within its own
// process function; sharing a Proc across goroutines is a bug.
type Proc struct {
	env    *Env
	resume chan struct{}
	name   string
	done   *Signal
}

// Env returns the environment the process belongs to.
func (p *Proc) Env() *Env { return p.env }

// Name returns the name given to Go.
func (p *Proc) Name() string { return p.name }

// Now returns the current virtual time.
func (p *Proc) Now() time.Duration { return p.env.now }

// Done returns a Signal that is broadcast when the process function returns.
func (p *Proc) Done() *Signal { return p.done }

// schedule enqueues a wakeup for p at time at.
func (e *Env) schedule(at time.Duration, p *Proc) {
	if at < e.now {
		at = e.now
	}
	e.seq++
	e.events.push(event{at: at, seq: e.seq, proc: p}, e.now)
}

// Go starts a new process running fn. It may be called before Run, or from
// inside a running process. The new process is scheduled to start at the
// current virtual time, after already-queued events for the same instant.
func (e *Env) Go(name string, fn func(p *Proc)) *Proc {
	if e.stopped {
		panic("sim: Go after environment stopped")
	}
	p := &Proc{env: e, resume: make(chan struct{}), name: name}
	p.done = NewSignal(e)
	e.live[p] = struct{}{}
	go func() {
		<-p.resume
		// The cleanup is deferred so the scheduler gets its handoff even if
		// fn unwinds via runtime.Goexit (e.g. t.Fatal inside a process).
		defer func() {
			delete(e.live, p)
			if !e.stopped {
				p.done.Broadcast()
			}
			e.yield <- struct{}{}
		}()
		if !e.stopped {
			func() {
				defer func() {
					if r := recover(); r != nil && r != ErrStopped { //nolint:errorlint
						panic(fmt.Sprintf("sim: process %q panicked: %v", p.name, r))
					}
				}()
				fn(p)
			}()
		}
	}()
	e.schedule(e.now, p)
	return p
}

// park blocks the calling process until the scheduler resumes it. The caller
// must have already arranged for a wakeup (a scheduled event, or membership
// in some wait list that another process will signal).
func (p *Proc) park() {
	p.env.yield <- struct{}{}
	<-p.resume
	if p.env.stopped {
		panic(ErrStopped)
	}
}

// Sleep blocks the process for d of virtual time. Negative durations sleep
// for zero time (yielding to other events scheduled at the same instant).
func (p *Proc) Sleep(d time.Duration) {
	if d < 0 {
		d = 0
	}
	e := p.env
	at := e.now + d
	// Fast path: if this wakeup would be the very next dispatch — it strictly
	// precedes every pending event (a tie loses, FIFO) and the Run limit does
	// not cut it off — no other process can run in between, so advance the
	// clock and keep going, skipping the park and its two scheduler handoffs.
	// Dispatch order is identical either way.
	if e.running && (e.until < 0 || at <= e.until) {
		if ev, ok := e.events.peek(); !ok || at < ev.at {
			e.now = at
			e.dispatched++
			return
		}
	}
	e.schedule(at, p)
	p.park()
}

// Yield gives up the processor until all other events at the current instant
// have run.
func (p *Proc) Yield() { p.Sleep(0) }

// Run dispatches events until the event queue is empty or until the virtual
// clock would pass until (use a negative until to run to exhaustion). It
// returns the virtual time at which it stopped. Run may be called again to
// continue a paused simulation.
func (e *Env) Run(until time.Duration) time.Duration {
	if e.running {
		panic("sim: nested Run")
	}
	e.running = true
	e.until = until
	defer func() { e.running = false }()
	for e.events.size > 0 {
		ev, _ := e.events.peek()
		if until >= 0 && ev.at > until {
			e.now = until
			return e.now
		}
		e.events.pop()
		e.now = ev.at
		e.dispatched++
		if e.onDispatch != nil {
			e.onDispatch(ev.at, ev.seq)
		}
		if ev.fn != nil {
			// Run-to-completion continuation: a direct call on this
			// goroutine, no handoff.
			ev.fn()
			continue
		}
		ev.proc.resume <- struct{}{}
		<-e.yield
	}
	if until > e.now {
		e.now = until
	}
	return e.now
}

// Idle reports whether no events are pending.
func (e *Env) Idle() bool { return e.events.size == 0 }

// Live returns the number of processes that have been started and have not
// yet returned.
func (e *Env) Live() int { return len(e.live) }

// Shutdown terminates every live process by unwinding it with ErrStopped the
// next time it would run, then drains the goroutines. After Shutdown the
// environment cannot be reused. It is safe to call Shutdown on an
// environment with no live processes.
func (e *Env) Shutdown() {
	if e.stopped {
		return
	}
	e.stopped = true
	e.events.reset()
	for p := range e.live {
		p.resume <- struct{}{}
		<-e.yield
	}
	if len(e.live) != 0 {
		panic("sim: processes survived shutdown")
	}
}

// waiter is one entry of a Signal or Resource wait queue: a blocked process
// or a task continuation. Exactly one field is set; both kinds are woken by
// scheduling an event at the current instant, so they interleave FIFO.
type waiter struct {
	p  *Proc
	fn func()
}

// wake schedules the wakeup of w at the current virtual time.
func (e *Env) wake(w waiter) {
	if w.fn != nil {
		e.scheduleFn(e.now, w.fn)
		return
	}
	e.schedule(e.now, w.p)
}

// A Signal is a broadcast condition: processes wait on it and a later
// Broadcast wakes all current waiters at the current virtual time.
type Signal struct {
	env     *Env
	waiters []waiter
	fired   bool
}

// NewSignal returns a Signal bound to env.
func NewSignal(env *Env) *Signal { return &Signal{env: env} }

// Fired reports whether Broadcast has ever been called.
func (s *Signal) Fired() bool { return s.fired }

// Wait blocks p until the next Broadcast. If the signal has already fired,
// Wait still blocks until the *next* Broadcast, except via WaitFired.
func (s *Signal) Wait(p *Proc) {
	s.waiters = append(s.waiters, waiter{p: p})
	p.park()
}

// WaitFired blocks p until the signal has fired at least once; it returns
// immediately if it already has.
func (s *Signal) WaitFired(p *Proc) {
	if s.fired {
		return
	}
	s.Wait(p)
}

// Reset clears the fired flag so the Signal can be reused for another wait
// cycle. It must only be called when no waiters are queued (e.g. by an
// owner recycling a join signal after all parties have continued).
func (s *Signal) Reset() {
	if len(s.waiters) != 0 {
		panic("sim: Signal.Reset with queued waiters")
	}
	s.fired = false
}

// Broadcast wakes all current waiters. The wakeups are scheduled at the
// current virtual time in FIFO order. Broadcast may be called from a process
// or from outside Run.
func (s *Signal) Broadcast() {
	s.fired = true
	for i, w := range s.waiters {
		s.env.wake(w)
		s.waiters[i] = waiter{} // drop the references from the backing array
	}
	s.waiters = s.waiters[:0] // keep the storage for the next wait cycle
}

// A Resource is a counted FIFO semaphore: at most Cap processes hold it at
// once and waiters acquire it in arrival order. The wait queue is a slice
// plus a head index: popped slots are zeroed (no retained *Proc references)
// and the storage is reused once the queue drains.
type Resource struct {
	env     *Env
	cap     int
	inUse   int
	waiters []waiter
	head    int // index of the oldest waiter in waiters
}

// NewResource returns a resource with the given capacity (cap >= 1).
func NewResource(env *Env, capacity int) *Resource {
	if capacity < 1 {
		panic("sim: resource capacity must be >= 1")
	}
	return &Resource{env: env, cap: capacity}
}

// enqueue appends a waiter, first compacting popped head slots when they
// dominate the backing array. Without compaction a queue that never fully
// drains (a saturated device) grows its storage without bound.
func (r *Resource) enqueue(w waiter) {
	if r.head > 0 && len(r.waiters) == cap(r.waiters) {
		n := copy(r.waiters, r.waiters[r.head:])
		tail := r.waiters[n:]
		for i := range tail {
			tail[i] = waiter{}
		}
		r.waiters = r.waiters[:n]
		r.head = 0
	}
	r.waiters = append(r.waiters, w)
}

// Acquire blocks p until a unit of the resource is available and takes it.
func (r *Resource) Acquire(p *Proc) {
	if r.inUse < r.cap && r.Queued() == 0 {
		r.inUse++
		return
	}
	r.enqueue(waiter{p: p})
	p.park()
	// Ownership was transferred by Release; inUse already accounts for us.
}

// TryAcquire takes a unit if one is free without blocking and reports
// whether it succeeded.
func (r *Resource) TryAcquire() bool {
	if r.inUse < r.cap && r.Queued() == 0 {
		r.inUse++
		return true
	}
	return false
}

// Release returns a unit of the resource, waking the oldest waiter if any.
func (r *Resource) Release() {
	if r.inUse <= 0 {
		panic("sim: Release of idle resource")
	}
	if r.head < len(r.waiters) {
		w := r.waiters[r.head]
		r.waiters[r.head] = waiter{} // drop the references from the backing array
		r.head++
		if r.head == len(r.waiters) {
			r.waiters = r.waiters[:0] // drained: rewind and reuse the storage
			r.head = 0
		}
		// The unit passes directly to w: inUse stays unchanged.
		r.env.wake(w)
		return
	}
	r.inUse--
}

// InUse returns the number of held units.
func (r *Resource) InUse() int { return r.inUse }

// Queued returns the number of processes waiting to acquire.
func (r *Resource) Queued() int { return len(r.waiters) - r.head }

// Pending returns held units plus waiters; for a device modelled as a
// resource this is the "number of pending I/Os" used by throttle control.
func (r *Resource) Pending() int { return r.inUse + r.Queued() }
