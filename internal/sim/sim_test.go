package sim

import (
	"testing"
	"testing/quick"
	"time"
)

func TestClockStartsAtZero(t *testing.T) {
	env := NewEnv()
	if env.Now() != 0 {
		t.Fatalf("Now() = %v, want 0", env.Now())
	}
}

func TestSleepAdvancesClock(t *testing.T) {
	env := NewEnv()
	var woke time.Duration
	env.Go("sleeper", func(p *Proc) {
		p.Sleep(42 * time.Millisecond)
		woke = p.Now()
	})
	env.Run(-1)
	if woke != 42*time.Millisecond {
		t.Fatalf("woke at %v, want 42ms", woke)
	}
	if env.Now() != 42*time.Millisecond {
		t.Fatalf("env.Now() = %v, want 42ms", env.Now())
	}
}

func TestSleepNegativeIsZero(t *testing.T) {
	env := NewEnv()
	env.Go("p", func(p *Proc) {
		p.Sleep(-time.Second)
		if p.Now() != 0 {
			t.Errorf("negative sleep advanced time to %v", p.Now())
		}
	})
	env.Run(-1)
}

func TestSequentialSleeps(t *testing.T) {
	env := NewEnv()
	var times []time.Duration
	env.Go("p", func(p *Proc) {
		for i := 0; i < 3; i++ {
			p.Sleep(10 * time.Millisecond)
			times = append(times, p.Now())
		}
	})
	env.Run(-1)
	want := []time.Duration{10 * time.Millisecond, 20 * time.Millisecond, 30 * time.Millisecond}
	for i := range want {
		if times[i] != want[i] {
			t.Errorf("wake %d at %v, want %v", i, times[i], want[i])
		}
	}
}

func TestInterleavedProcesses(t *testing.T) {
	env := NewEnv()
	var order []string
	env.Go("a", func(p *Proc) {
		p.Sleep(10 * time.Millisecond)
		order = append(order, "a10")
		p.Sleep(20 * time.Millisecond)
		order = append(order, "a30")
	})
	env.Go("b", func(p *Proc) {
		p.Sleep(15 * time.Millisecond)
		order = append(order, "b15")
		p.Sleep(10 * time.Millisecond)
		order = append(order, "b25")
	})
	env.Run(-1)
	want := []string{"a10", "b15", "b25", "a30"}
	if len(order) != len(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestSimultaneousEventsAreFIFO(t *testing.T) {
	env := NewEnv()
	var order []string
	for _, name := range []string{"first", "second", "third"} {
		name := name
		env.Go(name, func(p *Proc) {
			p.Sleep(time.Millisecond)
			order = append(order, name)
		})
	}
	env.Run(-1)
	want := []string{"first", "second", "third"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestRunUntilPausesClock(t *testing.T) {
	env := NewEnv()
	hits := 0
	env.Go("ticker", func(p *Proc) {
		for i := 0; i < 10; i++ {
			p.Sleep(10 * time.Millisecond)
			hits++
		}
	})
	got := env.Run(35 * time.Millisecond)
	if got != 35*time.Millisecond {
		t.Fatalf("Run returned %v, want 35ms", got)
	}
	if hits != 3 {
		t.Fatalf("hits = %d, want 3", hits)
	}
	env.Run(-1)
	if hits != 10 {
		t.Fatalf("after resume hits = %d, want 10", hits)
	}
	env.Shutdown()
}

func TestRunAdvancesToUntilWhenIdle(t *testing.T) {
	env := NewEnv()
	got := env.Run(time.Second)
	if got != time.Second {
		t.Fatalf("Run on idle env returned %v, want 1s", got)
	}
}

func TestGoFromInsideProcess(t *testing.T) {
	env := NewEnv()
	var childRan bool
	env.Go("parent", func(p *Proc) {
		p.Sleep(5 * time.Millisecond)
		env.Go("child", func(c *Proc) {
			c.Sleep(5 * time.Millisecond)
			childRan = true
			if c.Now() != 10*time.Millisecond {
				t.Errorf("child woke at %v, want 10ms", c.Now())
			}
		})
	})
	env.Run(-1)
	if !childRan {
		t.Fatal("child never ran")
	}
}

func TestDoneSignal(t *testing.T) {
	env := NewEnv()
	var joinedAt time.Duration
	worker := env.Go("worker", func(p *Proc) {
		p.Sleep(30 * time.Millisecond)
	})
	env.Go("joiner", func(p *Proc) {
		worker.Done().WaitFired(p)
		joinedAt = p.Now()
	})
	env.Run(-1)
	if joinedAt != 30*time.Millisecond {
		t.Fatalf("joined at %v, want 30ms", joinedAt)
	}
}

func TestDoneWaitFiredAfterExit(t *testing.T) {
	env := NewEnv()
	worker := env.Go("worker", func(p *Proc) {})
	env.Run(-1)
	joined := false
	env.Go("late", func(p *Proc) {
		worker.Done().WaitFired(p)
		joined = true
	})
	env.Run(-1)
	if !joined {
		t.Fatal("WaitFired blocked on already-done process")
	}
}

func TestSignalBroadcastWakesAllWaiters(t *testing.T) {
	env := NewEnv()
	sig := NewSignal(env)
	woke := 0
	for i := 0; i < 5; i++ {
		env.Go("waiter", func(p *Proc) {
			sig.Wait(p)
			woke++
		})
	}
	env.Go("caster", func(p *Proc) {
		p.Sleep(time.Millisecond)
		sig.Broadcast()
	})
	env.Run(-1)
	if woke != 5 {
		t.Fatalf("woke = %d, want 5", woke)
	}
}

func TestSignalWaitBlocksUntilNextBroadcast(t *testing.T) {
	env := NewEnv()
	sig := NewSignal(env)
	sig.Broadcast() // fire before anyone waits
	var wokeAt time.Duration
	env.Go("waiter", func(p *Proc) {
		sig.Wait(p) // plain Wait ignores past broadcasts
		wokeAt = p.Now()
	})
	env.Go("caster", func(p *Proc) {
		p.Sleep(7 * time.Millisecond)
		sig.Broadcast()
	})
	env.Run(-1)
	if wokeAt != 7*time.Millisecond {
		t.Fatalf("woke at %v, want 7ms", wokeAt)
	}
}

func TestResourceSerializes(t *testing.T) {
	env := NewEnv()
	res := NewResource(env, 1)
	var finish []time.Duration
	for i := 0; i < 3; i++ {
		env.Go("user", func(p *Proc) {
			res.Acquire(p)
			p.Sleep(10 * time.Millisecond)
			res.Release()
			finish = append(finish, p.Now())
		})
	}
	env.Run(-1)
	want := []time.Duration{10 * time.Millisecond, 20 * time.Millisecond, 30 * time.Millisecond}
	for i := range want {
		if finish[i] != want[i] {
			t.Fatalf("finish = %v, want %v", finish, want)
		}
	}
}

func TestResourceCapacityTwo(t *testing.T) {
	env := NewEnv()
	res := NewResource(env, 2)
	var finish []time.Duration
	for i := 0; i < 4; i++ {
		env.Go("user", func(p *Proc) {
			res.Acquire(p)
			p.Sleep(10 * time.Millisecond)
			res.Release()
			finish = append(finish, p.Now())
		})
	}
	env.Run(-1)
	// Two run 0-10ms, two run 10-20ms.
	want := []time.Duration{10 * time.Millisecond, 10 * time.Millisecond, 20 * time.Millisecond, 20 * time.Millisecond}
	for i := range want {
		if finish[i] != want[i] {
			t.Fatalf("finish = %v, want %v", finish, want)
		}
	}
}

func TestResourceFIFO(t *testing.T) {
	env := NewEnv()
	res := NewResource(env, 1)
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		env.Go("user", func(p *Proc) {
			res.Acquire(p)
			p.Sleep(time.Millisecond)
			order = append(order, i)
			res.Release()
		})
	}
	env.Run(-1)
	for i := range order {
		if order[i] != i {
			t.Fatalf("order = %v, want FIFO", order)
		}
	}
}

func TestResourcePendingCountsHoldersAndWaiters(t *testing.T) {
	env := NewEnv()
	res := NewResource(env, 1)
	var snapshot int
	for i := 0; i < 3; i++ {
		env.Go("user", func(p *Proc) {
			res.Acquire(p)
			p.Sleep(10 * time.Millisecond)
			res.Release()
		})
	}
	env.Go("observer", func(p *Proc) {
		p.Sleep(5 * time.Millisecond)
		snapshot = res.Pending()
	})
	env.Run(-1)
	if snapshot != 3 {
		t.Fatalf("Pending = %d at t=5ms, want 3", snapshot)
	}
}

func TestTryAcquire(t *testing.T) {
	env := NewEnv()
	res := NewResource(env, 1)
	env.Go("p", func(p *Proc) {
		if !res.TryAcquire() {
			t.Error("TryAcquire failed on free resource")
		}
		if res.TryAcquire() {
			t.Error("TryAcquire succeeded on held resource")
		}
		res.Release()
		if !res.TryAcquire() {
			t.Error("TryAcquire failed after release")
		}
		res.Release()
	})
	env.Run(-1)
}

func TestShutdownUnwindsBlockedProcesses(t *testing.T) {
	env := NewEnv()
	res := NewResource(env, 1)
	cleaned := 0
	for i := 0; i < 3; i++ {
		env.Go("user", func(p *Proc) {
			defer func() {
				cleaned++
				if r := recover(); r != nil {
					panic(r) // re-panic ErrStopped so the kernel sees it
				}
			}()
			res.Acquire(p)
			p.Sleep(time.Hour)
			res.Release()
		})
	}
	env.Run(time.Minute)
	if env.Live() != 3 {
		t.Fatalf("Live = %d, want 3", env.Live())
	}
	env.Shutdown()
	if env.Live() != 0 {
		t.Fatalf("Live = %d after Shutdown, want 0", env.Live())
	}
	if cleaned != 3 {
		t.Fatalf("cleaned = %d, want 3 (defers must run)", cleaned)
	}
}

func TestShutdownIdempotent(t *testing.T) {
	env := NewEnv()
	env.Shutdown()
	env.Shutdown()
}

func TestYieldRunsOtherSameInstantEvents(t *testing.T) {
	env := NewEnv()
	var order []string
	env.Go("a", func(p *Proc) {
		order = append(order, "a1")
		p.Yield()
		order = append(order, "a2")
	})
	env.Go("b", func(p *Proc) {
		order = append(order, "b")
	})
	env.Run(-1)
	want := []string{"a1", "b", "a2"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestManyProcessesDeterministic(t *testing.T) {
	run := func() []time.Duration {
		env := NewEnv()
		res := NewResource(env, 3)
		var out []time.Duration
		for i := 0; i < 50; i++ {
			i := i
			env.Go("w", func(p *Proc) {
				p.Sleep(time.Duration(i%7) * time.Millisecond)
				res.Acquire(p)
				p.Sleep(time.Duration(1+i%3) * time.Millisecond)
				res.Release()
				out = append(out, p.Now())
			})
		}
		env.Run(-1)
		return out
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatal("nondeterministic length")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

// Property: for a single-server resource with fixed service time s and n
// eager customers, the i-th completion happens at (i+1)*s — i.e. the
// resource behaves as an exact FIFO queue.
func TestResourceQueueProperty(t *testing.T) {
	prop := func(nRaw uint8, sRaw uint8) bool {
		n := int(nRaw%20) + 1
		s := time.Duration(int(sRaw%50)+1) * time.Millisecond
		env := NewEnv()
		res := NewResource(env, 1)
		var finish []time.Duration
		for i := 0; i < n; i++ {
			env.Go("c", func(p *Proc) {
				res.Acquire(p)
				p.Sleep(s)
				res.Release()
				finish = append(finish, p.Now())
			})
		}
		env.Run(-1)
		if len(finish) != n {
			return false
		}
		for i, f := range finish {
			if f != time.Duration(i+1)*s {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: completion times of independent sleepers sort to the multiset of
// their durations — the clock never reorders or loses events.
func TestSleepCompletionProperty(t *testing.T) {
	prop := func(ds []uint16) bool {
		if len(ds) > 64 {
			ds = ds[:64]
		}
		env := NewEnv()
		got := map[time.Duration]int{}
		for _, d := range ds {
			d := time.Duration(d) * time.Microsecond
			env.Go("s", func(p *Proc) {
				p.Sleep(d)
				got[p.Now()]++
			})
		}
		env.Run(-1)
		want := map[time.Duration]int{}
		for _, d := range ds {
			want[time.Duration(d)*time.Microsecond]++
		}
		if len(got) != len(want) {
			return false
		}
		for k, v := range want {
			if got[k] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSleepDispatch(b *testing.B) {
	env := NewEnv()
	env.Go("p", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Sleep(time.Microsecond)
		}
	})
	b.ResetTimer()
	env.Run(-1)
}
