package sim

import "time"

// This file adds the simulator's second process form: run-to-completion
// tasks. A Task never blocks — where a Proc would park its goroutine, a
// Task passes an explicit continuation that the scheduler later calls
// directly on its own goroutine. That removes the two channel handoffs a
// Proc pays per wakeup, which dominate the cost of simulating an I/O-bound
// workload.
//
// The two forms are interchangeable event-for-event. Every task primitive
// consumes scheduler sequence numbers exactly as its blocking twin does
// (Spawn like Go, the Sleep slow path like Sleep's schedule+park, resource
// and signal waits like their blocking counterparts), and the inline fast
// paths of both forms fire under the identical "provably next" condition —
// so a simulation produces the same dispatch order, and therefore the same
// results, whichever form its processes use. The one asymmetry is the
// inline nesting cap: past inlineLimit, Task.Sleep routes a wakeup through
// the queue that Proc.Sleep would have taken inline. The wakeup is strictly
// earlier than every pending event, so it still dispatches next and order
// is preserved; only the sequence numbering shifts (uniformly, which FIFO
// tie-breaking cannot observe).
//
// Discipline for code written in task form: calling a continuation-taking
// primitive must be the last thing a function does (tail call). The
// primitive either completes inline — running the continuation before
// returning — or schedules it and returns immediately; either way, code
// after the call would run at an undefined virtual time.

// Task is a run-to-completion simulated process. Like a Proc it may only be
// used from within the simulation (its continuations run serially on the
// scheduler goroutine); unlike a Proc it has no goroutine of its own.
type Task struct {
	env  *Env
	name string
}

// Env returns the environment the task belongs to.
func (t *Task) Env() *Env { return t.env }

// Name returns the name given to Spawn.
func (t *Task) Name() string { return t.name }

// Now returns the current virtual time.
func (t *Task) Now() time.Duration { return t.env.now }

// scheduleFn enqueues a continuation at time at.
func (e *Env) scheduleFn(at time.Duration, fn func()) {
	if at < e.now {
		at = e.now
	}
	e.seq++
	e.events.push(event{at: at, seq: e.seq, fn: fn}, e.now)
}

// Spawn starts a new run-to-completion task executing fn. Like Go it may be
// called before Run or from inside a running process of either form, and
// the task starts at the current virtual time after already-queued events
// for the same instant.
func (e *Env) Spawn(name string, fn func(t *Task)) *Task {
	if e.stopped {
		panic("sim: Spawn after environment stopped")
	}
	t := &Task{env: e, name: name}
	e.scheduleFn(e.now, func() { fn(t) })
	return t
}

// Sleep advances the task d of virtual time, then runs k. Negative
// durations sleep for zero time (yielding to other events scheduled at the
// same instant). When the wakeup is provably the next dispatch it happens
// inline — same condition as Proc.Sleep's fast path — up to the
// environment's inline nesting cap.
func (t *Task) Sleep(d time.Duration, k func()) {
	if d < 0 {
		d = 0
	}
	e := t.env
	at := e.now + d
	if e.running && (e.until < 0 || at <= e.until) {
		if ev, ok := e.events.peek(); !ok || at < ev.at {
			if e.inlineDepth < e.inlineLimit {
				e.now = at
				e.dispatched++
				e.inlineDepth++
				k()
				e.inlineDepth--
				return
			}
			// Nesting cap reached: unwind the stack through the queue. The
			// event is strictly earlier than everything pending, so it is
			// dispatched next regardless of its sequence number.
		}
	}
	e.scheduleFn(at, k)
}

// Yield runs k after all other events at the current instant.
func (t *Task) Yield(k func()) { t.Sleep(0, k) }

// AcquireFunc takes a unit of the resource and then runs k: inline when a
// unit is free (as a blocking Acquire would return immediately), otherwise
// k joins the FIFO wait queue alongside any blocked processes.
func (r *Resource) AcquireFunc(k func()) {
	if r.inUse < r.cap && r.Queued() == 0 {
		r.inUse++
		k()
		return
	}
	r.enqueue(waiter{fn: k})
}

// WaitFunc runs k at the signal's next Broadcast.
func (s *Signal) WaitFunc(k func()) {
	s.waiters = append(s.waiters, waiter{fn: k})
}

// WaitFiredFunc runs k once the signal has fired at least once: inline if
// it already has, otherwise at the next Broadcast.
func (s *Signal) WaitFiredFunc(k func()) {
	if s.fired {
		k()
		return
	}
	s.WaitFunc(k)
}
