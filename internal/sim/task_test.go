package sim

import (
	"testing"
	"time"
)

func TestSpawnRunsLikeGo(t *testing.T) {
	env := NewEnv()
	var order []string
	env.Go("p", func(p *Proc) { order = append(order, "proc") })
	env.Spawn("t", func(task *Task) { order = append(order, "task") })
	env.Run(-1)
	if len(order) != 2 || order[0] != "proc" || order[1] != "task" {
		t.Fatalf("order = %v, want [proc task]", order)
	}
}

func TestTaskSleepAdvancesClock(t *testing.T) {
	env := NewEnv()
	var woke time.Duration
	env.Spawn("t", func(task *Task) {
		task.Sleep(5*time.Millisecond, func() {
			woke = task.Now()
			task.Sleep(3*time.Millisecond, func() {
				woke = task.Now()
			})
		})
	})
	env.Run(-1)
	if woke != 8*time.Millisecond {
		t.Fatalf("woke at %v, want 8ms", woke)
	}
}

func TestTaskSleepNegativeIsZero(t *testing.T) {
	env := NewEnv()
	var woke time.Duration = -1
	env.Spawn("t", func(task *Task) {
		task.Sleep(-time.Second, func() { woke = task.Now() })
	})
	env.Run(-1)
	if woke != 0 {
		t.Fatalf("woke at %v, want 0", woke)
	}
}

// TestTaskProcSameInstantFIFO pins the FIFO tie-break across forms: events
// scheduled for the same instant run in scheduling order regardless of
// which process form scheduled them.
func TestTaskProcSameInstantFIFO(t *testing.T) {
	env := NewEnv()
	var order []int
	env.Go("p1", func(p *Proc) {
		p.Sleep(time.Millisecond)
		order = append(order, 1)
	})
	env.Spawn("t2", func(task *Task) {
		task.Sleep(time.Millisecond, func() { order = append(order, 2) })
	})
	env.Go("p3", func(p *Proc) {
		p.Sleep(time.Millisecond)
		order = append(order, 3)
	})
	env.Run(-1)
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v, want [1 2 3]", order)
	}
}

// TestTaskInlineCapPreservesOrder forces the inline nesting cap to its
// minimum and checks that routing wakeups through the queue instead of the
// stack leaves completion times and ordering untouched.
func TestTaskInlineCapPreservesOrder(t *testing.T) {
	run := func(limit int) []time.Duration {
		env := NewEnv()
		env.SetInlineLimit(limit)
		var wakes []time.Duration
		env.Spawn("t", func(task *Task) {
			var step func()
			n := 0
			step = func() {
				wakes = append(wakes, task.Now())
				if n++; n < 600 { // beyond the default cap of 256
					task.Sleep(time.Microsecond, step)
				}
			}
			task.Sleep(time.Microsecond, step)
		})
		env.Run(-1)
		return wakes
	}
	deep, shallow := run(1<<30), run(1)
	if len(deep) != len(shallow) {
		t.Fatalf("wake counts differ: %d vs %d", len(deep), len(shallow))
	}
	for i := range deep {
		if deep[i] != shallow[i] {
			t.Fatalf("wake %d differs: %v vs %v", i, deep[i], shallow[i])
		}
	}
}

func TestAcquireFuncInlineWhenFree(t *testing.T) {
	env := NewEnv()
	r := NewResource(env, 1)
	ran := false
	env.Spawn("t", func(task *Task) {
		r.AcquireFunc(func() { ran = true })
	})
	env.Run(-1)
	if !ran {
		t.Fatal("AcquireFunc with a free unit did not run its continuation")
	}
	if r.Pending() != 1 {
		t.Fatalf("pending = %d, want 1 (held unit)", r.Pending())
	}
}

// TestAcquireFuncFIFOWithProcs interleaves blocking and continuation
// waiters on one resource and checks strict FIFO grant order.
func TestAcquireFuncFIFOWithProcs(t *testing.T) {
	env := NewEnv()
	r := NewResource(env, 1)
	var order []int
	env.Go("holder", func(p *Proc) {
		r.Acquire(p)
		p.Sleep(time.Millisecond)
		order = append(order, 0)
		r.Release()
	})
	env.Go("w1", func(p *Proc) {
		p.Sleep(time.Microsecond) // queue after the holder owns the unit
		r.Acquire(p)
		order = append(order, 1)
		r.Release()
	})
	env.Spawn("w2", func(task *Task) {
		task.Sleep(2*time.Microsecond, func() {
			r.AcquireFunc(func() {
				order = append(order, 2)
				r.Release()
			})
		})
	})
	env.Go("w3", func(p *Proc) {
		p.Sleep(3 * time.Microsecond)
		r.Acquire(p)
		order = append(order, 3)
		r.Release()
	})
	env.Run(-1)
	if len(order) != 4 {
		t.Fatalf("order = %v, want 4 grants", order)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("grant order = %v, want [0 1 2 3]", order)
		}
	}
}

func TestSignalWaitFunc(t *testing.T) {
	env := NewEnv()
	s := NewSignal(env)
	ran := 0
	env.Spawn("w", func(task *Task) {
		s.WaitFunc(func() { ran++ })
	})
	env.Go("b", func(p *Proc) {
		p.Sleep(time.Millisecond)
		s.Broadcast()
		p.Sleep(time.Millisecond)
		s.Broadcast() // second broadcast must not re-run the waiter
	})
	env.Run(-1)
	if ran != 1 {
		t.Fatalf("waiter ran %d times, want 1", ran)
	}
}

func TestSignalWaitFiredFuncInline(t *testing.T) {
	env := NewEnv()
	s := NewSignal(env)
	var at time.Duration = -1
	env.Go("b", func(p *Proc) {
		p.Sleep(time.Millisecond)
		s.Broadcast()
	})
	env.Spawn("w", func(task *Task) {
		task.Sleep(2*time.Millisecond, func() {
			s.WaitFiredFunc(func() { at = task.Now() })
		})
	})
	env.Run(-1)
	if at != 2*time.Millisecond {
		t.Fatalf("fired waiter ran at %v, want inline at 2ms", at)
	}
}

// TestDispatchedCountsInlineSleeps checks that the events/sec figure the
// scale sweep reports counts inline fast-path sleeps as logical events.
func TestDispatchedCountsInlineSleeps(t *testing.T) {
	env := NewEnv()
	env.Spawn("t", func(task *Task) {
		task.Sleep(time.Millisecond, func() {
			task.Sleep(time.Millisecond, func() {})
		})
	})
	env.Run(-1)
	// One queue dispatch for the spawn, two logical sleep completions.
	if got := env.Dispatched(); got != 3 {
		t.Fatalf("Dispatched() = %d, want 3", got)
	}
}
