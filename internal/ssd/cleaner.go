package ssd

import (
	"time"

	"turbobp/internal/device"
	"turbobp/internal/fault"
	"turbobp/internal/page"
	"turbobp/internal/sim"
)

// cleanTargetSlack returns how far below the λ threshold the cleaner drives
// the dirty count: "about 0.01% of the SSD space below the threshold"
// (§2.3.3), at least one page.
func (m *Manager) cleanTargetSlack() int {
	slack := m.cfg.Frames / 10000
	if slack < 1 {
		slack = 1
	}
	return slack
}

// dirtyThreshold returns λ·S, the dirty-page count that wakes the cleaner.
func (m *Manager) dirtyThreshold() int {
	return int(m.cfg.DirtyFraction * float64(m.cfg.Frames))
}

// StartCleaner spawns the background lazy-cleaning thread (LC only). It
// polls the dirty count and, when it exceeds λ·S, copies dirty SSD pages
// back to the disk in group-cleaned batches until slightly below the
// threshold. Returns nil for non-LC designs.
func (m *Manager) StartCleaner() *sim.Proc {
	if m.cfg.Design != LC || !m.Enabled() {
		return nil
	}
	return m.env.Go("lc-cleaner", func(p *sim.Proc) {
		for !m.cleanerStop {
			thresh := m.dirtyThreshold()
			target := thresh - m.cleanTargetSlack()
			if m.quarantined {
				// Drain: a quarantined SSD takes no new admissions, but its
				// dirty frames are still the only up-to-date copies. Clean
				// them all so the device can go fully pass-through.
				target = 0
				thresh = 0
			}
			if m.dirtyCount > thresh {
				m.stats.CleanerRuns++
				for m.dirtyCount > target && !m.cleanerStop {
					if !m.cleanOnce(p) {
						break
					}
				}
			}
			p.Sleep(m.cfg.CleanerPoll)
		}
	})
}

// StopCleaner asks the cleaner process to exit at its next wakeup.
func (m *Manager) StopCleaner() { m.cleanerStop = true }

// oldestDirty returns the frame index of the globally oldest dirty page
// (the dirty heap root across shards), or -1.
func (m *Manager) oldestDirty() int {
	best := -1
	var bestLast, bestPrev int64
	for i := range m.shards {
		key, ok := m.shards[i].dirty.Victim()
		if !ok {
			continue
		}
		rec := &m.frames[key]
		if best < 0 || int64(rec.prev) < bestPrev ||
			(int64(rec.prev) == bestPrev && int64(rec.last) < bestLast) {
			best = int(key)
			bestLast, bestPrev = int64(rec.last), int64(rec.prev)
		}
	}
	return best
}

// gatherRun collects up to α dirty SSD pages with consecutive disk
// addresses around seed's page (§3.3.5), extending backward then forward.
// Only idle (io == 0) frames join the run. The run is written into dst
// (reused scratch) and returned.
func (m *Manager) gatherRun(seed int, dst []int) (start page.ID, frames []int) {
	pid := m.frames[seed].pid
	start = pid
	// Probe backward first; dirtyIdleFrame only reads, so re-resolving the
	// back range when filling below sees identical state.
	count := 1
	for count < m.cfg.GroupClean {
		if _, ok := m.dirtyIdleFrame(start - 1); !ok {
			break
		}
		start--
		count++
	}
	frames = dst[:0]
	for id := start; id < pid; id++ {
		idx, _ := m.dirtyIdleFrame(id)
		frames = append(frames, idx)
	}
	frames = append(frames, seed)
	// Extend forward.
	next := pid + 1
	for len(frames) < m.cfg.GroupClean {
		idx, ok := m.dirtyIdleFrame(next)
		if !ok {
			break
		}
		frames = append(frames, idx)
		next++
	}
	return start, frames
}

// dirtyIdleFrame returns the frame caching pid if it is valid, dirty and
// idle.
func (m *Manager) dirtyIdleFrame(pid page.ID) (int, bool) {
	s := m.shardOf(pid)
	idx, ok := s.lookup(pid)
	if !ok {
		return 0, false
	}
	rec := &m.frames[idx]
	if !rec.valid || !rec.dirty || rec.io > 0 {
		return 0, false
	}
	return idx, true
}

// cleanScratch is the per-call working state of cleanOnce, pooled on the
// manager. Each concurrent cleaning call (background cleaner, FlushDirty)
// takes its own instance for the duration of its device transfers.
type cleanScratch struct {
	frames []int
	lsn    []uint64
	pid    []page.ID
	bufs   [][]byte
	rvec   [][]byte // 1-element vector reused across the per-frame SSD reads
}

func (m *Manager) getScratch() *cleanScratch {
	if n := len(m.scratchFree); n > 0 {
		sc := m.scratchFree[n-1]
		m.scratchFree[n-1] = nil
		m.scratchFree = m.scratchFree[:n-1]
		return sc
	}
	return &cleanScratch{}
}

func (m *Manager) putScratch(sc *cleanScratch) {
	for i := range sc.bufs {
		m.putBuf(sc.bufs[i])
		sc.bufs[i] = nil
	}
	sc.bufs = sc.bufs[:0]
	for i := range sc.rvec {
		sc.rvec[i] = nil
	}
	sc.rvec = sc.rvec[:0]
	sc.frames = sc.frames[:0]
	sc.lsn = sc.lsn[:0]
	sc.pid = sc.pid[:0]
	m.scratchFree = append(m.scratchFree, sc)
}

// cleanOnce performs one cleaning cycle: pick the oldest dirty page, gather
// its contiguous dirty neighbours, read them from the SSD (pages cannot
// move device-to-device directly, §2.4), and write the run to disk with a
// single I/O. Returns false when there was nothing cleanable.
func (m *Manager) cleanOnce(p *sim.Proc) bool {
	seed := m.oldestDirty()
	if seed < 0 || m.frames[seed].io > 0 {
		return false
	}
	sc := m.getScratch()
	defer m.putScratch(sc)
	start, frames := m.gatherRun(seed, sc.frames)
	sc.frames = frames
	// Pin every frame in the run before the first device operation so no
	// concurrent path reclaims or re-gathers them. Record each frame's
	// version: a page re-admitted (with a newer LSN) into a pinned frame
	// while the clean is in flight must stay dirty afterwards.
	pinnedLSN := sc.lsn[:0]
	pinnedPID := sc.pid[:0]
	for _, idx := range frames {
		m.frames[idx].io++
		pinnedLSN = append(pinnedLSN, m.frames[idx].lsn)
		pinnedPID = append(pinnedPID, m.frames[idx].pid)
	}
	sc.lsn, sc.pid = pinnedLSN, pinnedPID
	bufs := sc.bufs[:0]
	for range frames {
		bufs = append(bufs, m.getBuf())
	}
	sc.bufs = bufs
	readErr := false
	for i, idx := range frames {
		sc.rvec = append(sc.rvec[:0], bufs[i])
		var err error
		for attempt := 1; ; attempt++ {
			err = m.dev.Read(p, device.PageNum(idx), sc.rvec)
			if err == nil {
				break
			}
			m.stats.ReadErrors++
			m.noteDeviceErr(err)
			if !m.cfg.Retry.Retryable(err, attempt) {
				break
			}
			m.stats.ReadRetries++
			p.Sleep(m.cfg.Retry.Delay(attempt))
		}
		if err != nil {
			readErr = true
			break
		}
	}
	// Verify every frame before the bytes can reach the disk: a decayed
	// dirty frame must never overwrite the (stale but intact) disk copy.
	// Frames up to the first corrupt one form the writable prefix; corrupt
	// frames are condemned and their pages routed to WAL reconstruction.
	good := len(frames)
	var corruptPIDs []page.ID
	if !readErr {
		for i, idx := range frames {
			err := m.verifyFrameBuf(bufs[i], pinnedPID[i], pinnedLSN[i], &m.frames[idx])
			if err == nil {
				continue
			}
			if i < good {
				good = i
			}
			m.stats.CorruptDirty++
			m.noteCorrupt(idx)
			corruptPIDs = append(corruptPIDs, pinnedPID[i])
		}
		bufs = bufs[:good]
	}
	// Crash point: the dirty run has been read off the SSD but not yet
	// written to disk — the SSD still holds the only up-to-date copies. No
	// state has been mutated; unwind the pins and stop the cleaner so the
	// driver can crash the engine with the pages still uniquely dirty.
	crashed := false
	if !readErr && m.cfg.Faults.At(fault.SiteMidLazyClean) {
		crashed = true
		m.cleanerStop = true
	}
	if !readErr && !crashed && good > 0 {
		if err := m.disk.WriteEncoded(p, start, bufs); err != nil {
			readErr = true
		}
	}
	for i, idx := range frames {
		rec := &m.frames[idx]
		rec.io--
		if !readErr && !crashed && i < good && rec.occupied && rec.dirty &&
			rec.pid == pinnedPID[i] && rec.lsn == pinnedLSN[i] {
			rec.dirty = false
			m.dirtyCount--
			s := &m.shards[rec.shard]
			s.dirty.Remove(int64(idx))
			if rec.valid {
				s.clean.TouchHistory(m.cleanKey(idx), rec.last, rec.prev)
			}
		}
		m.frameIdle(idx)
	}
	// Reconstruct the condemned pages now that their frames are unpinned:
	// the WAL holds their latest committed images (invariants I1/I2).
	for _, pid := range corruptPIDs {
		if m.cfg.Repair != nil {
			if err := m.cfg.Repair.RepairDirtyPage(p, pid); err == nil {
				m.stats.CorruptRepaired++
			}
		}
	}
	if readErr || crashed {
		return false
	}
	m.stats.CleanerPages += int64(good)
	if good > 0 {
		m.stats.CleanerWrites++
	}
	return good > 0 || len(corruptPIDs) > 0
}

// verifyFrameBuf decodes a frame image read back during cleaning and
// cross-checks it against the identity pinned when the run was gathered.
// Returns nil when the bytes are fit to write to disk. A stored LSN newer
// than the pinned one is a racing re-admission, not corruption; an older
// one means the slot holds stale bytes (a misdirected write's victim).
func (m *Manager) verifyFrameBuf(buf []byte, pid page.ID, lsn uint64, rec *frameRec) error {
	var got page.Page
	if err := page.Decode(buf, &got); err != nil {
		return err
	}
	if got.ID != pid {
		return &page.ChecksumError{ID: pid, Reason: "id", Got: uint64(got.ID), Want: uint64(pid)}
	}
	if !rec.restored && got.LSN < lsn {
		return &page.ChecksumError{ID: pid, Reason: "lsn", Got: got.LSN, Want: lsn}
	}
	return nil
}

// FlushDirty copies every dirty SSD page to disk, as LC's modified sharp
// checkpoint requires (§3.2). The count of pages flushed is recorded in
// Stats.CheckpointPgs.
func (m *Manager) FlushDirty(p *sim.Proc) error {
	before := m.stats.CleanerPages
	for m.dirtyCount > 0 {
		if m.lost {
			return device.ErrLost
		}
		if !m.cleanOnce(p) {
			// The remaining dirty frames are pinned by in-flight
			// transfers (typically the background cleaner's own run).
			// Sleep — never spin at the same instant, which would freeze
			// the virtual clock and livelock the simulation — so those
			// transfers can complete, then retry.
			p.Sleep(time.Millisecond)
			if m.dirtyCount > 0 && m.oldestDirty() < 0 {
				break
			}
		}
	}
	m.stats.CheckpointPgs += m.stats.CleanerPages - before
	return nil
}
