package ssd

import (
	"turbobp/internal/page"
	"turbobp/internal/sim"
)

// writeDisk pushes pg's encoded image to the database disk subsystem.
func (m *Manager) writeDisk(p *sim.Proc, pg *page.Page) error {
	buf := m.getBuf()
	if err := page.Encode(pg, buf); err != nil {
		m.putBuf(buf)
		return err
	}
	vec := append(m.getVec(1), buf)
	err := m.disk.WriteEncoded(p, pg.ID, vec)
	m.putVec(vec)
	m.putBuf(buf)
	return err
}

// OnEvict routes a page evicted from the memory buffer pool according to
// the active design (§2.3). random records how the page originally came
// into memory (the admission policy's random/sequential classification).
// The caller must already have forced the log up to pg.LSN (WAL protocol).
func (m *Manager) OnEvict(p *sim.Proc, pg *page.Page, dirty, random bool) error {
	if !dirty {
		return m.evictClean(p, pg, random)
	}
	switch m.cfg.Design {
	case NoSSD, CW:
		// Clean-write never sends dirty pages to the SSD (§2.3.1).
		return m.writeDisk(p, pg)

	case DW:
		// Dual-write sends the page to the SSD and the disk
		// "simultaneously" (§2.3.2): both writes are issued concurrently
		// and the eviction completes when both have. The SSD copy equals
		// the disk copy, so it is cached clean.
		if !m.admits(pg.ID, random) {
			return m.writeDisk(p, pg)
		}
		if m.throttled() {
			m.stats.ThrottleWrites++
			return m.writeDisk(p, pg)
		}
		// Snapshot the page for the concurrent SSD write. The copy lives in
		// a pooled buffer; the write joins before OnEvict returns, so the
		// buffer can go back to the free list on the way out.
		snapBuf := m.getBuf()
		snap := &page.Page{ID: pg.ID, LSN: pg.LSN, Payload: append(snapBuf[:0], pg.Payload...)}
		done := sim.NewSignal(m.env)
		var ssdErr error
		m.env.Go("dw-ssd-write", func(child *sim.Proc) {
			_, ssdErr = m.admit(child, snap, false)
			done.Broadcast()
		})
		diskErr := m.writeDisk(p, pg)
		done.WaitFired(p)
		m.putBuf(snapBuf)
		if diskErr != nil {
			return diskErr
		}
		return ssdErr

	case LC:
		// Lazy-cleaning writes the dirty page only to the SSD (§2.3.3);
		// the cleaner thread copies it to disk later. During a sharp
		// checkpoint LC stops caching new dirty pages (§3.2), and when the
		// SSD cannot take the page (throttled, unqualified, or no clean
		// frame reclaimable) the eviction falls back to a disk write.
		if m.checkpointing || !m.admits(pg.ID, random) {
			return m.writeDisk(p, pg)
		}
		if m.throttled() {
			m.stats.ThrottleWrites++
			return m.writeDisk(p, pg)
		}
		ok, err := m.admit(p, pg, true)
		if err != nil {
			return err
		}
		if !ok {
			return m.writeDisk(p, pg)
		}
		return nil

	case TAC:
		// TAC is write-through: the dirty page goes to disk, and if an
		// invalidated version sits in the SSD it is refreshed too (§2.5).
		if err := m.writeDisk(p, pg); err != nil {
			return err
		}
		return m.tacRevalidate(p, pg)
	}
	return m.writeDisk(p, pg)
}

// evictClean handles a clean page leaving the memory pool: CW, DW and LC
// consider caching it now (§2.5: "clean pages are written to the SSD only
// after they have been evicted"); TAC already wrote it at read time and
// does nothing; noSSD discards it.
func (m *Manager) evictClean(p *sim.Proc, pg *page.Page, random bool) error {
	switch m.cfg.Design {
	case CW, DW, LC:
		if !m.admits(pg.ID, random) {
			return nil
		}
		if m.throttled() {
			m.stats.ThrottleWrites++
			return nil
		}
		_, err := m.admit(p, pg, false)
		return err
	default:
		return nil
	}
}

// OnCheckpointFlush lets a design piggyback on a sharp checkpoint's page
// flushes: DW also writes checkpointed dirty random pages to the SSD
// (§3.2), filling it with useful data faster. The engine has already
// written the page to disk.
func (m *Manager) OnCheckpointFlush(p *sim.Proc, pg *page.Page, random bool) error {
	if m.cfg.Design != DW || !random || !m.admits(pg.ID, random) || m.throttled() {
		return nil
	}
	_, err := m.admit(p, pg, false)
	return err
}
