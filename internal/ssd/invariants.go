package ssd

import (
	"fmt"

	"turbobp/internal/page"
)

// CheckInvariants walks the manager's five data structures and verifies
// their mutual consistency. It is exercised by the randomized property
// tests and is cheap enough to call inside long-running integration tests.
//
// Invariants checked:
//
//  1. Frame accounting: free + occupied frames == total frames, and the
//     occupied counter matches the per-frame flags.
//  2. Hash-table bijection: every table entry points at an occupied frame
//     with the same page id and the frame's home shard; every occupied
//     frame is in its shard's table.
//  3. Free-list validity: free frames are unoccupied and appear exactly
//     once across all shards.
//  4. Heap membership (CW/DW/LC): every idle clean valid frame is in its
//     shard's clean heap, every dirty frame is in the dirty heap, and the
//     heaps contain nothing else.
//  5. Dirty accounting: the dirty counter equals the number of dirty
//     frames; non-LC designs have no dirty frames.
func (m *Manager) CheckInvariants() error {
	if !m.Enabled() {
		return nil
	}
	freeSeen := make(map[int]int)
	freeCount := 0
	for si := range m.shards {
		s := &m.shards[si]
		for _, idx := range s.free {
			if idx < 0 || idx >= len(m.frames) {
				return fmt.Errorf("ssd: shard %d free list has frame %d out of range", si, idx)
			}
			freeSeen[idx]++
			if freeSeen[idx] > 1 {
				return fmt.Errorf("ssd: frame %d appears %d times in free lists", idx, freeSeen[idx])
			}
			rec := &m.frames[idx]
			if rec.occupied {
				return fmt.Errorf("ssd: occupied frame %d (page %d) on the free list", idx, rec.pid)
			}
			if rec.shard != si {
				return fmt.Errorf("ssd: frame %d on shard %d's free list, home is %d", idx, si, rec.shard)
			}
			freeCount++
		}
		var tableErr error
		s.table.Range(func(key uint64, fidx int32) bool {
			pid, idx := page.ID(key), int(fidx)
			if idx < 0 || idx >= len(m.frames) {
				tableErr = fmt.Errorf("ssd: table entry %d -> frame %d out of range", pid, idx)
				return false
			}
			rec := &m.frames[idx]
			if !rec.occupied {
				tableErr = fmt.Errorf("ssd: table entry %d -> unoccupied frame %d", pid, idx)
				return false
			}
			if rec.pid != pid {
				tableErr = fmt.Errorf("ssd: table entry %d -> frame %d holding page %d", pid, idx, rec.pid)
				return false
			}
			if rec.shard != si {
				tableErr = fmt.Errorf("ssd: page %d in shard %d's table, frame home is %d", pid, si, rec.shard)
				return false
			}
			return true
		})
		if tableErr != nil {
			return tableErr
		}
	}

	occupied, dirty := 0, 0
	for idx := range m.frames {
		rec := &m.frames[idx]
		if !rec.occupied {
			if m.retired[idx] {
				if freeSeen[idx] > 0 {
					return fmt.Errorf("ssd: retired frame %d on a free list", idx)
				}
				continue // retired slots sit out of service permanently
			}
			if freeSeen[idx] == 0 && rec.io == 0 {
				return fmt.Errorf("ssd: idle unoccupied frame %d not on any free list", idx)
			}
			continue
		}
		occupied++
		if rec.dirty {
			dirty++
		}
		s := &m.shards[rec.shard]
		if got, ok := s.lookup(rec.pid); !ok || got != idx {
			return fmt.Errorf("ssd: occupied frame %d (page %d) missing from its shard table", idx, rec.pid)
		}
		if m.cfg.Design == TAC {
			continue // TAC's lazy heap may legitimately hold stale entries
		}
		inClean := s.clean.Contains(m.cleanKey(idx))
		inDirty := s.dirty.Contains(int64(idx))
		switch {
		case rec.dirty && !inDirty:
			return fmt.Errorf("ssd: dirty frame %d not in the dirty heap", idx)
		case rec.dirty && inClean:
			return fmt.Errorf("ssd: dirty frame %d also in the clean heap", idx)
		case !rec.dirty && rec.valid && rec.io == 0 && !inClean:
			return fmt.Errorf("ssd: idle clean frame %d not in the clean heap", idx)
		case !rec.dirty && inDirty:
			return fmt.Errorf("ssd: clean frame %d in the dirty heap", idx)
		}
	}
	if occupied != m.occupied {
		return fmt.Errorf("ssd: occupied counter %d, actual %d", m.occupied, occupied)
	}
	if dirty != m.dirtyCount {
		return fmt.Errorf("ssd: dirty counter %d, actual %d", m.dirtyCount, dirty)
	}
	if m.cfg.Design != LC && dirty != 0 {
		return fmt.Errorf("ssd: %d dirty frames under %v (only LC caches dirty pages)", dirty, m.cfg.Design)
	}
	if freeCount+occupied != len(m.frames) {
		// Frames mid-transfer (io > 0) that were invalidated are neither
		// free nor occupied yet; retired slots have left service for good.
		pending, retired := 0, 0
		for idx := range m.frames {
			if m.frames[idx].occupied || freeSeen[idx] > 0 {
				continue
			}
			if m.retired[idx] {
				retired++
			} else {
				pending++
			}
		}
		if freeCount+occupied+pending+retired != len(m.frames) {
			return fmt.Errorf("ssd: %d free + %d occupied + %d pending + %d retired != %d frames",
				freeCount, occupied, pending, retired, len(m.frames))
		}
	}
	return nil
}
