package ssd

import (
	"math/rand"
	"testing"
	"time"

	"turbobp/internal/page"
	"turbobp/internal/sim"
)

// TestInvariantsUnderRandomOps drives every design with a randomized mix
// of evictions, reads, invalidations, cleaner activity and checkpoints,
// checking structural invariants after every batch.
func TestInvariantsUnderRandomOps(t *testing.T) {
	for _, design := range []Design{CW, DW, LC, TAC} {
		for seed := int64(1); seed <= 4; seed++ {
			design, seed := design, seed
			t.Run(design.String(), func(t *testing.T) {
				f := newFixture(design, 24, func(c *Config) {
					c.Partitions = 4
					c.DirtyFraction = 0.4
					c.FillThreshold = 0.8
					c.CleanerPoll = 2 * time.Millisecond
				})
				f.m.StartCleaner()
				rng := rand.New(rand.NewSource(seed))
				dirtied := map[page.ID]bool{} // memory-side dirty shadow
				f.run(t, func(p *sim.Proc) {
					for i := 0; i < 400; i++ {
						pid := page.ID(rng.Intn(60))
						switch rng.Intn(5) {
						case 0, 1: // clean eviction
							if !dirtied[pid] {
								if err := f.m.OnEvict(p, mkPage(pid, uint64(i), byte(i)), false, rng.Intn(4) != 0); err != nil {
									t.Fatal(err)
								}
							}
						case 2: // dirty eviction
							if err := f.m.OnEvict(p, mkPage(pid, uint64(i), byte(i)), true, true); err != nil {
								t.Fatal(err)
							}
							dirtied[pid] = false
						case 3: // read
							buf := mkPage(0, 0, 0)
							if _, err := f.m.Read(p, pid, buf); err != nil {
								t.Fatal(err)
							}
						case 4: // the page gets dirtied in memory
							f.m.Invalidate(pid)
							dirtied[pid] = true
						}
						if i%25 == 24 {
							p.Sleep(5 * time.Millisecond) // let the cleaner run
							if err := f.m.CheckInvariants(); err != nil {
								t.Fatalf("after op %d: %v", i, err)
							}
						}
						if i%150 == 149 && design == LC {
							f.m.SetCheckpointing(true)
							if err := f.m.FlushDirty(p); err != nil {
								t.Fatal(err)
							}
							f.m.SetCheckpointing(false)
							if f.m.DirtyCount() != 0 {
								t.Fatalf("dirty pages survived FlushDirty")
							}
						}
					}
					f.m.StopCleaner()
					if err := f.m.CheckInvariants(); err != nil {
						t.Fatal(err)
					}
				})
			})
		}
	}
}

// TestInvariantsAfterRestore covers the warm-restart path.
func TestInvariantsAfterRestore(t *testing.T) {
	f := newFixture(DW, 16, func(c *Config) { c.Partitions = 4 })
	f.run(t, func(p *sim.Proc) {
		for i := 0; i < 12; i++ {
			f.m.OnEvict(p, mkPage(page.ID(i), 1, 1), false, true)
		}
	})
	blob := f.m.SnapshotTable()
	m2 := NewManager(f.env, f.dev, f.disk, f.m.cfg)
	if err := m2.RestoreTable(blob); err != nil {
		t.Fatal(err)
	}
	if err := m2.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestInvariantsCatchCorruption(t *testing.T) {
	f := newFixture(DW, 8, nil)
	f.run(t, func(p *sim.Proc) {
		f.m.OnEvict(p, mkPage(1, 1, 1), false, true)
	})
	// Corrupt: flip the occupied counter.
	f.m.occupied++
	if err := f.m.CheckInvariants(); err == nil {
		t.Error("corrupted occupied counter not detected")
	}
	f.m.occupied--
	// Corrupt: orphan the hash entry.
	s := f.m.shardOf(1)
	idx, _ := s.table.Get(1)
	s.table.Delete(1)
	if err := f.m.CheckInvariants(); err == nil {
		t.Error("orphaned frame not detected")
	}
	s.table.Put(1, idx)
	if err := f.m.CheckInvariants(); err != nil {
		t.Errorf("restored state flagged: %v", err)
	}
}
