package ssd

// The background scrubber: a run-to-completion sim task that periodically
// sweeps SSD-resident frames, re-reads their bytes and verifies checksum,
// page id and LSN before the engine ever trips over a decayed cell.
//
// A corrupt clean frame is repaired in place from the disk copy (read it
// back, verify it, rewrite the frame); a corrupt dirty frame — the only
// up-to-date copy — is condemned and its page reconstructed through the
// configured Repairer (WAL redo). Slots that keep failing are retired via
// the same noteBadSlot accounting as the foreground read path, so a wearing
// device drifts toward quarantine instead of serving wrong answers.
//
// The scrubber is disabled by default (Config.ScrubPeriod == 0): fault-free
// golden runs schedule no scrub events and stay byte-identical.

import (
	"turbobp/internal/device"
	"turbobp/internal/page"
	"turbobp/internal/sim"
)

// DiskReader is the optional read side of the Disk dependency: the scrubber
// uses it to fetch a page's disk copy when repairing a frame in place. A
// Disk that does not implement it limits the scrubber to detect-and-drop.
type DiskReader interface {
	ReadEncoded(p *sim.Proc, pid page.ID, buf []byte) error
	ReadEncodedTask(t *sim.Task, pid page.ID, buf []byte, k func(error))
}

// scrubOp is the scrubber's run-to-completion state: one long-lived
// instance per manager, its continuations bound once at start so the
// steady-state sweep allocates nothing.
type scrubOp struct {
	m      *Manager
	t      *sim.Task
	cursor int // next frame slot to examine (wraps)
	left   int // frames still to verify in this sweep
	lap    int // slots examined this wake-up (stop after one full lap)

	// Identity of the frame under verification, captured at issue time so a
	// frame reclaimed or re-admitted mid-read is recognized as stale rather
	// than corrupt.
	idx int
	pid page.ID
	lsn uint64
	buf []byte
	vec [][]byte

	onWake       func()
	onRead       func(error)
	onRepairRead func(error)
	onRewrite    func(error)
}

// StartScrubber spawns the background scrub task when Config.ScrubPeriod is
// positive. Returns nil when scrubbing is disabled or the SSD is absent.
func (m *Manager) StartScrubber() *sim.Task {
	if m.cfg.ScrubPeriod <= 0 || !m.Enabled() {
		return nil
	}
	o := &scrubOp{m: m}
	o.onWake = o.wake
	o.onRead = o.read
	o.onRepairRead = o.repairRead
	o.onRewrite = o.rewritten
	return m.env.Spawn("ssd-scrub", func(t *sim.Task) {
		o.t = t
		o.idle()
	})
}

// StopScrubber asks the scrubber to exit at its next wake-up.
func (m *Manager) StopScrubber() { m.scrubStop = true }

// idle parks the task until the next scrub period.
func (o *scrubOp) idle() {
	if o.m.scrubStop {
		return
	}
	o.t.Sleep(o.m.cfg.ScrubPeriod, o.onWake)
}

// wake starts one sweep of up to ScrubBatch resident frames.
func (o *scrubOp) wake() {
	m := o.m
	if m.scrubStop {
		return
	}
	m.stats.ScrubSweeps++
	o.left = m.cfg.ScrubBatch
	o.lap = 0
	o.step()
}

// step scans forward from the cursor for the next verifiable frame and
// issues its SSD read, or parks until the next period once the batch (or a
// full lap) is done. Restored frames are skipped: their recorded LSN does
// not describe the stored bytes until the first foreground read validates
// them.
func (o *scrubOp) step() {
	m := o.m
	for {
		if m.scrubStop {
			return
		}
		if o.left <= 0 || o.lap >= len(m.frames) || m.lost || m.quarantined {
			o.idle()
			return
		}
		idx := o.cursor
		o.cursor++
		if o.cursor >= len(m.frames) {
			o.cursor = 0
		}
		o.lap++
		rec := &m.frames[idx]
		if !rec.occupied || !rec.valid || rec.io > 0 || rec.restored {
			continue
		}
		o.left--
		o.idx = idx
		o.pid, o.lsn = rec.pid, rec.lsn
		rec.io++
		o.buf = m.getBuf()
		vec := m.getVec(1)
		vec = append(vec, o.buf)
		o.vec = vec
		m.dev.ReadTask(o.t, device.PageNum(idx), vec, o.onRead)
		return
	}
}

// finish releases the frame pin and scratch buffer, then continues the
// sweep.
func (o *scrubOp) finish() {
	m := o.m
	m.putBuf(o.buf)
	o.buf = nil
	m.frames[o.idx].io--
	m.frameIdle(o.idx)
	o.step()
}

// read handles the SSD read completing: verify the bytes and dispatch the
// matching repair path.
func (o *scrubOp) read(err error) {
	m := o.m
	m.putVec(o.vec)
	o.vec = nil
	m.stats.ScrubFrames++
	rec := &m.frames[o.idx]
	if err != nil {
		m.stats.ReadErrors++
		m.noteDeviceErr(err)
		o.finish()
		return
	}
	if !rec.occupied || rec.pid != o.pid || !rec.valid || rec.lsn != o.lsn {
		o.finish() // frame moved under us: nothing to verify
		return
	}
	var got page.Page
	verr := page.Decode(o.buf, &got)
	if verr == nil && got.ID != o.pid {
		verr = &page.ChecksumError{ID: o.pid, Device: "ssd", Slot: int64(o.idx),
			Reason: "id", Got: uint64(got.ID), Want: uint64(o.pid)}
	}
	if verr == nil && got.LSN != o.lsn {
		verr = &page.ChecksumError{ID: o.pid, Device: "ssd", Slot: int64(o.idx),
			Reason: "lsn", Got: got.LSN, Want: o.lsn}
	}
	if verr == nil {
		o.finish()
		return
	}
	if rec.dirty {
		// The only up-to-date copy of the page failed verification: condemn
		// the frame and reconstruct the page from the WAL (invariants I1/I2
		// guarantee the redo records are still there).
		m.stats.CorruptDirty++
		m.noteCorrupt(o.idx)
		if m.cfg.Repair != nil {
			pid := o.pid
			m.env.Go("scrub-repair", func(p *sim.Proc) {
				if rerr := m.cfg.Repair.RepairDirtyPage(p, pid); rerr == nil {
					m.stats.CorruptRepaired++
				}
			})
		}
		o.finish()
		return
	}
	// Clean frame: the disk still holds an intact copy. Count the bad
	// slot; a slot that just retired (or a disk without a read side) is
	// dropped — the drop is the repair, reads fall through to disk —
	// otherwise rewrite the frame in place from the disk copy.
	retired := m.noteBadSlot(o.idx)
	dr, ok := m.disk.(DiskReader)
	if retired || !ok || m.quarantined {
		m.condemnFrame(o.idx)
		m.stats.CorruptRepaired++
		o.finish()
		return
	}
	dr.ReadEncodedTask(o.t, o.pid, o.buf, o.onRepairRead)
}

// repairRead handles the disk copy arriving for an in-place repair: verify
// it really is the version the frame claimed to cache before rewriting.
func (o *scrubOp) repairRead(err error) {
	m := o.m
	rec := &m.frames[o.idx]
	if !rec.occupied || rec.pid != o.pid || !rec.valid || rec.lsn != o.lsn {
		// The frame was invalidated or re-admitted while the disk read was
		// in flight; whatever lives there now is not ours to rewrite.
		o.finish()
		return
	}
	var got page.Page
	if err == nil {
		err = page.Decode(o.buf, &got)
	}
	if err == nil && got.ID != o.pid {
		err = &page.ChecksumError{ID: o.pid, Device: "db", Slot: int64(o.pid),
			Reason: "id", Got: uint64(got.ID), Want: uint64(o.pid)}
	}
	if err == nil && got.LSN != o.lsn {
		err = &page.ChecksumError{ID: o.pid, Device: "db", Slot: int64(o.pid),
			Reason: "lsn", Got: got.LSN, Want: o.lsn}
	}
	if err != nil {
		// The disk copy cannot prove itself either. Drop the frame — the
		// engine's foreground read repairs the disk page through its own
		// ladder (SSD copy is gone, so WAL or error) on next access.
		m.condemnFrame(o.idx)
		o.finish()
		return
	}
	vec := m.getVec(1)
	vec = append(vec, o.buf)
	o.vec = vec
	m.dev.WriteTask(o.t, device.PageNum(o.idx), vec, o.onRewrite)
}

// rewritten handles the repair write completing.
func (o *scrubOp) rewritten(err error) {
	m := o.m
	m.putVec(o.vec)
	o.vec = nil
	if err != nil {
		m.stats.WriteErrors++
		m.noteDeviceErr(err)
		m.condemnFrame(o.idx) // frame contents now unknown
	} else {
		m.stats.ScrubRepairs++
		m.stats.CorruptRepaired++
	}
	o.finish()
}
