package ssd

import (
	"encoding/binary"
	"fmt"

	"turbobp/internal/lru2"
	"turbobp/internal/page"
)

// This file implements the paper's §6 future-work direction: "No design
// to-date leverages the data in the SSD during system restart, and as a
// result, it takes a very long time to warm-up the SSD". The fix the
// paper sketches in §4.1.2 is to add the SSD buffer table to the
// checkpoint record; restart can then reuse every clean SSD page.
//
// SnapshotTable serializes the buffer table's valid clean entries (taken
// at the end of a sharp checkpoint, when no dirty SSD pages remain) and
// RestoreTable rebuilds a fresh manager's metadata over the surviving SSD
// device contents. Correctness rests on the WAL protocol: any page whose
// SSD copy could be stale after the checkpoint has durable log records
// (pages are never written below a forced log), and redo invalidates the
// SSD copy of every page it touches — so stale entries are purged during
// recovery exactly like stale memory pages.

// TableEntry is one persisted SSD buffer table record.
type TableEntry struct {
	Frame int
	Pid   page.ID
}

// entrySize is the serialized size of a TableEntry.
const entrySize = 12

// SnapshotTable returns the serialized buffer table: every valid, clean,
// occupied frame. Call it after FlushDirty during a checkpoint.
func (m *Manager) SnapshotTable() []byte {
	if !m.Enabled() {
		return nil
	}
	var out []byte
	var buf [entrySize]byte
	for i := range m.frames {
		rec := &m.frames[i]
		if !rec.occupied || !rec.valid || rec.dirty {
			continue
		}
		binary.LittleEndian.PutUint32(buf[0:4], uint32(i))
		binary.LittleEndian.PutUint64(buf[4:12], uint64(rec.pid))
		out = append(out, buf[:]...)
	}
	return out
}

// RestoreTable rebuilds the manager's metadata from a SnapshotTable blob,
// assuming the SSD device contents survived the restart. It must be
// called on a freshly-constructed manager. Entries that no longer fit
// (frame out of range after a reconfiguration) are skipped.
func (m *Manager) RestoreTable(blob []byte) error {
	if !m.Enabled() || len(blob) == 0 {
		return nil
	}
	if len(blob)%entrySize != 0 {
		return fmt.Errorf("ssd: snapshot blob of %d bytes is not a whole number of entries", len(blob))
	}
	if m.occupied != 0 {
		return fmt.Errorf("ssd: RestoreTable on a non-empty manager (%d occupied)", m.occupied)
	}
	now := m.env.Now()
	for off := 0; off < len(blob); off += entrySize {
		idx := int(binary.LittleEndian.Uint32(blob[off : off+4]))
		pid := page.ID(binary.LittleEndian.Uint64(blob[off+4 : off+12]))
		if idx < 0 || idx >= len(m.frames) {
			continue
		}
		rec := &m.frames[idx]
		if rec.occupied {
			continue // duplicate frame in a corrupt blob
		}
		s := &m.shards[rec.shard]
		if _, dup := s.lookup(pid); dup {
			continue
		}
		// Remove idx from the shard free list.
		for i, free := range s.free {
			if free == idx {
				s.free = append(s.free[:i], s.free[i+1:]...)
				break
			}
		}
		rec.pid = pid
		rec.occupied = true
		rec.valid = true
		rec.dirty = false
		rec.restored = true // hint only: content is validated at first read
		rec.last = now
		rec.prev = lru2.Never()
		s.table.Put(uint64(pid), int32(idx))
		m.occupied++
		if m.cfg.Design == TAC {
			m.pushTac(idx)
		} else {
			s.clean.TouchHistory(m.cleanKey(idx), rec.last, rec.prev)
		}
	}
	return nil
}
