package ssd

import (
	"testing"

	"turbobp/internal/device"
	"turbobp/internal/page"
	"turbobp/internal/sim"
)

func TestSnapshotRoundTrip(t *testing.T) {
	f := newFixture(DW, 16, nil)
	f.run(t, func(p *sim.Proc) {
		for i := 1; i <= 5; i++ {
			f.m.OnEvict(p, mkPage(page.ID(i*10), uint64(i), byte(i)), false, true)
		}
	})
	blob := f.m.SnapshotTable()
	if len(blob)%12 != 0 || len(blob)/12 != 5 {
		t.Fatalf("blob = %d bytes, want 5 entries", len(blob))
	}

	// A fresh manager over the same device restores the cache.
	m2 := NewManager(f.env, f.dev, f.disk, f.m.cfg)
	if err := m2.RestoreTable(blob); err != nil {
		t.Fatal(err)
	}
	if m2.Occupied() != 5 {
		t.Fatalf("Occupied = %d after restore", m2.Occupied())
	}
	f.env.Go("verify", func(p *sim.Proc) {
		for i := 1; i <= 5; i++ {
			got := mkPage(0, 0, 0)
			hit, err := m2.Read(p, page.ID(i*10), got)
			if err != nil || !hit {
				t.Errorf("page %d: hit=%v err=%v", i*10, hit, err)
				continue
			}
			if got.LSN != uint64(i) || got.Payload[0] != byte(i) {
				t.Errorf("page %d: lsn=%d fill=%d", i*10, got.LSN, got.Payload[0])
			}
		}
	})
	f.env.Run(-1)
}

func TestSnapshotSkipsDirtyAndInvalid(t *testing.T) {
	f := newFixture(LC, 16, func(c *Config) { c.DirtyFraction = 1.0 })
	f.run(t, func(p *sim.Proc) {
		f.m.OnEvict(p, mkPage(1, 1, 1), false, true) // clean
		f.m.OnEvict(p, mkPage(2, 1, 1), true, true)  // dirty
		f.m.OnEvict(p, mkPage(3, 1, 1), false, true) // clean, then invalidated
		f.m.Invalidate(3)
	})
	blob := f.m.SnapshotTable()
	if len(blob)/12 != 1 {
		t.Fatalf("snapshot has %d entries, want only the clean valid one", len(blob)/12)
	}
}

func TestRestoreRejectsGarbage(t *testing.T) {
	f := newFixture(DW, 8, nil)
	if err := f.m.RestoreTable(make([]byte, 13)); err == nil {
		t.Error("odd-size blob accepted")
	}
}

func TestRestoreRejectsNonEmptyManager(t *testing.T) {
	f := newFixture(DW, 8, nil)
	f.run(t, func(p *sim.Proc) {
		f.m.OnEvict(p, mkPage(1, 1, 1), false, true)
	})
	blob := f.m.SnapshotTable()
	if err := f.m.RestoreTable(blob); err == nil {
		t.Error("restore into occupied manager accepted")
	}
}

func TestRestoreSkipsOutOfRangeFrames(t *testing.T) {
	f := newFixture(DW, 16, nil)
	f.run(t, func(p *sim.Proc) {
		for i := 1; i <= 8; i++ {
			f.m.OnEvict(p, mkPage(page.ID(i), 1, 1), false, true)
		}
	})
	blob := f.m.SnapshotTable()
	// Restore into a SMALLER manager: entries beyond its frame count are
	// skipped, the rest restored.
	env := sim.NewEnv()
	dev := device.NewSSD(env, device.PaperSSDProfile(), 4)
	cfg := f.m.cfg
	cfg.Frames = 4
	m2 := NewManager(env, dev, &recordingDisk{}, cfg)
	if err := m2.RestoreTable(blob); err != nil {
		t.Fatal(err)
	}
	if m2.Occupied() > 4 {
		t.Errorf("Occupied = %d > frames", m2.Occupied())
	}
}

func TestRestoredFramesParticipateInReplacement(t *testing.T) {
	f := newFixture(DW, 4, func(c *Config) { c.FillThreshold = 1.0 })
	f.run(t, func(p *sim.Proc) {
		for i := 1; i <= 4; i++ {
			f.m.OnEvict(p, mkPage(page.ID(i), 1, 1), false, true)
		}
	})
	blob := f.m.SnapshotTable()
	m2 := NewManager(f.env, f.dev, f.disk, f.m.cfg)
	if err := m2.RestoreTable(blob); err != nil {
		t.Fatal(err)
	}
	f.env.Go("evict", func(p *sim.Proc) {
		// The restored cache is full; a new admission must evict a
		// restored frame, not fail.
		f_, err := m2.admit(p, mkPage(99, 1, 1), false)
		if err != nil || !f_ {
			t.Errorf("admit = (%v,%v)", f_, err)
		}
		if !m2.Contains(99) {
			t.Error("new page not admitted over restored cache")
		}
		if m2.Occupied() != 4 {
			t.Errorf("Occupied = %d", m2.Occupied())
		}
	})
	f.env.Run(-1)
}
