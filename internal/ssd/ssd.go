// Package ssd implements the paper's SSD manager: the storage-module
// component that uses a flash SSD as a second-level extension of the DBMS
// buffer pool (§2–§3 of "Turbocharging DBMS Buffer Pool Using SSDs",
// SIGMOD 2011).
//
// The manager maintains the five data structures of the paper's Figure 4 —
// the SSD buffer pool (a frame array on the SSD device), the SSD buffer
// table (per-frame records with page id, dirty bit and the last two access
// times), the SSD hash table, the SSD free list, and the clean/dirty heap
// pair used for LRU-2 replacement and lazy cleaning. The buffer pool is
// partitioned into N shards (§3.3.4); all shards share the page-id hash.
//
// Three dirty-page designs (CW, DW, LC — §2.3) and the re-implemented TAC
// comparison point (§2.5) are personalities over this one frame store.
package ssd

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"turbobp/internal/device"
	"turbobp/internal/fault"
	"turbobp/internal/lru2"
	"turbobp/internal/page"
	"turbobp/internal/pagetab"
	"turbobp/internal/policy"
	"turbobp/internal/sim"
)

// Design selects how the manager handles pages evicted from the memory
// buffer pool.
type Design int

// The caching designs evaluated in the paper.
const (
	NoSSD Design = iota // baseline: no SSD cache at all
	CW                  // clean-write: dirty evictions go only to disk
	DW                  // dual-write: dirty evictions go to SSD and disk
	LC                  // lazy-cleaning: dirty evictions go only to SSD
	TAC                 // temperature-aware caching (Canim et al.)
)

// String returns the paper's abbreviation for the design.
func (d Design) String() string {
	switch d {
	case NoSSD:
		return "noSSD"
	case CW:
		return "CW"
	case DW:
		return "DW"
	case LC:
		return "LC"
	case TAC:
		return "TAC"
	}
	return fmt.Sprintf("Design(%d)", int(d))
}

// Disk is the view of the database disk subsystem the SSD manager needs:
// the lazy cleaner and dual writes push encoded page runs to it.
// WriteEncodedTask is the run-to-completion twin of WriteEncoded.
type Disk interface {
	WriteEncoded(p *sim.Proc, start page.ID, bufs [][]byte) error
	WriteEncodedTask(t *sim.Task, start page.ID, bufs [][]byte, k func(error))
}

// Config parameterizes the manager. The defaults mirror the paper's
// Table 2.
type Config struct {
	Design Design
	// Policy selects the replacement policy of the per-shard clean heaps
	// and, for admission-gating policies (TinyLFU), the admission filter.
	// The zero value is the paper's LRU-2.
	Policy        policy.Kind
	Frames        int           // S: SSD buffer-pool frames
	Partitions    int           // N: shards (§3.3.4)
	FillThreshold float64       // τ: aggressive-filling fraction (§3.3.1)
	Throttle      int           // μ: max pending SSD I/Os (§3.3.2)
	GroupClean    int           // α: max pages per LC cleaning write (§3.3.5)
	DirtyFraction float64       // λ: dirty fraction that wakes the cleaner (§2.3.3)
	PayloadSize   int           // page payload bytes (buffers are header+payload)
	CleanerPoll   time.Duration // cleaner wake-up period
	// Per-access milliseconds saved by an SSD hit, used for TAC extent
	// temperatures: disk minus SSD cost for random and sequential reads.
	RandSavedMs float64
	SeqSavedMs  float64
	// ExtentPages is the TAC temperature granularity (32 in the paper).
	ExtentPages int
	// AsyncAdmitDelay models the gap between a disk read completing and
	// TAC's asynchronous SSD write starting — the window in which forward
	// processing can dirty the page and abort the admission (§4.2).
	AsyncAdmitDelay time.Duration
	// Faults, when set, fires crash points inside the manager (the LC
	// cleaner's mid-lazy-clean site). Device-level faults are injected by
	// wrapping the SSD device itself; see internal/fault.
	Faults *fault.Injector
	// Retry bounds transient-I/O retries on the SSD read/write paths. The
	// zero value is replaced by device.DefaultRetryPolicy.
	Retry device.RetryPolicy
	// ScrubPeriod is the background scrubber's wake-up interval; 0 (the
	// default) disables scrubbing. Each wake-up verifies up to ScrubBatch
	// resident frames (default 8) against their checksums and expected
	// page id/LSN, repairing what it can.
	ScrubPeriod time.Duration
	ScrubBatch  int
	// RetireAfter is the number of verification failures that permanently
	// retires an SSD slot (default 3). QuarantineAfter is the number of
	// retired slots that demotes the whole SSD to pass-through (default 8):
	// no new admissions, clean frames served from disk, dirty frames
	// drained. Degrade, don't die.
	RetireAfter     int
	QuarantineAfter int
	// Repair, when set, reconstructs a dirty page whose only copy was
	// corrupt (the engine wires its WAL-redo machinery here). Without it
	// the manager can only drop the frame and count the loss.
	Repair Repairer
}

// Repairer reconstructs a uniquely-dirty page after its SSD frame was
// condemned: the engine implements it with page-granular WAL redo over the
// stale disk version.
type Repairer interface {
	RepairDirtyPage(p *sim.Proc, pid page.ID) error
}

func (c *Config) setDefaults() {
	if c.Partitions <= 0 {
		c.Partitions = 16
	}
	if c.Partitions > c.Frames && c.Frames > 0 {
		c.Partitions = c.Frames
	}
	if c.FillThreshold <= 0 || c.FillThreshold > 1 {
		c.FillThreshold = 0.95
	}
	if c.Throttle <= 0 {
		c.Throttle = 100
	}
	if c.GroupClean <= 0 {
		c.GroupClean = 32
	}
	if c.DirtyFraction <= 0 || c.DirtyFraction > 1 {
		c.DirtyFraction = 0.5
	}
	if c.CleanerPoll <= 0 {
		c.CleanerPoll = 20 * time.Millisecond
	}
	if c.ExtentPages <= 0 {
		c.ExtentPages = 32
	}
	if c.AsyncAdmitDelay <= 0 {
		c.AsyncAdmitDelay = 500 * time.Microsecond
	}
	if c.RandSavedMs <= 0 {
		c.RandSavedMs = 7.8
	}
	if c.SeqSavedMs < 0 {
		c.SeqSavedMs = 0
	}
	if c.Retry.Attempts <= 0 {
		c.Retry = device.DefaultRetryPolicy()
	}
	if c.ScrubBatch <= 0 {
		c.ScrubBatch = 8
	}
	if c.RetireAfter <= 0 {
		c.RetireAfter = 3
	}
	if c.QuarantineAfter <= 0 {
		c.QuarantineAfter = 8
	}
}

// frameRec is one SSD buffer table record (the paper's 88-byte record:
// page id, dirty bit, last two access times, latch and list pointers — the
// pointers are implicit in Go's maps/heaps).
type frameRec struct {
	pid       page.ID
	occupied  bool
	valid     bool // false while occupied = TAC's logical invalidation
	dirty     bool
	io        int    // in-flight device transfers referencing this frame
	lsn       uint64 // LSN of the cached version (guards cleaner races)
	restored  bool   // entry came from a warm-restart table; validate on read
	condemned bool   // contents proven corrupt; free as soon as idle (any design)
	gen       uint64
	last      time.Duration
	prev      time.Duration
	shard     int
}

// shard is one partition of the SSD buffer pool (§3.3.4): its own segment
// of the buffer table, free list and heaps.
type shard struct {
	table pagetab.Table[int32] // SSD hash table entries owned by this shard
	free  []int                // SSD free list
	clean policy.Policy        // clean heap: replacement policy over clean valid frames
	dirty *lru2.Cache          // dirty heap: LRU-2 over dirty frames (LC only)
	tac   tacHeap              // TAC replacement heap (temperature order)
}

// lookup returns the frame index caching pid, if any.
func (s *shard) lookup(pid page.ID) (int, bool) {
	idx, ok := s.table.Get(uint64(pid))
	return int(idx), ok
}

// Stats counts manager activity.
type Stats struct {
	Hits           int64 // lookups served from the SSD
	Misses         int64 // lookups that fell through to disk
	ThrottleReads  int64 // clean hits skipped because of throttle control
	ThrottleWrites int64 // admissions skipped because of throttle control
	Admissions     int64 // pages written into SSD frames
	DirtyAdmits    int64 // of which were dirty (LC)
	Evictions      int64 // frames reclaimed by replacement
	Invalidations  int64 // copies invalidated after a memory-side update
	Revalidations  int64 // TAC: invalid copies refreshed at dirty eviction
	CleanerRuns    int64 // LC cleaner activations
	CleanerPages   int64 // dirty SSD pages copied back to disk by the cleaner
	CleanerWrites  int64 // disk write I/Os issued by the cleaner
	CheckpointPgs  int64 // dirty SSD pages flushed by sharp checkpoints
	TACAborts      int64 // TAC async admissions dropped (page dirtied first)
	ReadErrors     int64 // SSD read attempts that failed
	WriteErrors    int64 // SSD write attempts that failed
	ReadRetries    int64 // failed read attempts that were re-issued
	WriteRetries   int64 // failed write attempts that were re-issued

	// Silent-corruption defense (see docs/FAILURES.md).
	CorruptDetected int64 // frames whose bytes failed checksum/id/LSN verification
	CorruptRepaired int64 // of which repaired transparently (disk re-read or scrub rewrite)
	CorruptDirty    int64 // of which were uniquely-dirty (routed to WAL reconstruction)
	ScrubSweeps     int64 // scrubber wake-ups
	ScrubFrames     int64 // frames verified by the scrubber
	ScrubRepairs    int64 // frames the scrubber rewrote in place from the disk copy
	Retired         int64 // slots permanently retired after repeated failures
	Quarantines     int64 // quarantine transitions (0 or 1): SSD demoted to pass-through

	// Per-policy counters, merged from the shard clean policies at read
	// time (see docs: DESIGN.md "Policy layer").
	PolicyGhostHits  int64 // ARC: accesses that hit a ghost list
	PolicySplitPos   int64 // ARC: adaptive-split target, summed over shards (gauge)
	PolicyCleanFirst int64 // CFLRU: victims chosen over an older dirty entry
	PolicyAdmitRej   int64 // TinyLFU: admissions refused by the frequency filter
}

// Add returns the fieldwise sum of s and o; the sharded harness uses it
// to aggregate per-shard SSD managers into cluster totals. A reflection
// test keeps it in sync with the struct.
func (s Stats) Add(o Stats) Stats {
	s.Hits += o.Hits
	s.Misses += o.Misses
	s.ThrottleReads += o.ThrottleReads
	s.ThrottleWrites += o.ThrottleWrites
	s.Admissions += o.Admissions
	s.DirtyAdmits += o.DirtyAdmits
	s.Evictions += o.Evictions
	s.Invalidations += o.Invalidations
	s.Revalidations += o.Revalidations
	s.CleanerRuns += o.CleanerRuns
	s.CleanerPages += o.CleanerPages
	s.CleanerWrites += o.CleanerWrites
	s.CheckpointPgs += o.CheckpointPgs
	s.TACAborts += o.TACAborts
	s.ReadErrors += o.ReadErrors
	s.WriteErrors += o.WriteErrors
	s.ReadRetries += o.ReadRetries
	s.WriteRetries += o.WriteRetries
	s.CorruptDetected += o.CorruptDetected
	s.CorruptRepaired += o.CorruptRepaired
	s.CorruptDirty += o.CorruptDirty
	s.ScrubSweeps += o.ScrubSweeps
	s.ScrubFrames += o.ScrubFrames
	s.ScrubRepairs += o.ScrubRepairs
	s.Retired += o.Retired
	s.Quarantines += o.Quarantines
	s.PolicyGhostHits += o.PolicyGhostHits
	s.PolicySplitPos += o.PolicySplitPos
	s.PolicyCleanFirst += o.PolicyCleanFirst
	s.PolicyAdmitRej += o.PolicyAdmitRej
	return s
}

// Manager is the SSD manager.
type Manager struct {
	env    *sim.Env
	dev    device.Device
	disk   Disk
	cfg    Config
	shards []shard
	frames []frameRec

	occupied      int
	dirtyCount    int
	fillTarget    int
	checkpointing bool
	cleanerStop   bool
	scrubStop     bool
	lost          bool // the SSD device failed wholesale (device.ErrLost)
	quarantined   bool // too many retired slots: pass-through mode
	stats         Stats

	// Per-slot verification-failure counters and the retired set. These
	// live outside frameRec so they survive freeFrame: a bad cell keeps
	// its history across reuse by different pages.
	slotBad []uint8
	retired []bool

	temps pagetab.Table[float64] // TAC extent temperatures (absent = 0)

	// Free lists for encoded-page scratch buffers, the small [][]byte
	// vectors that carry them through device transfers, and the group-clean
	// scratch state. All access is serialized by the simulation kernel, but
	// holders sleep in virtual time mid-transfer, so these are take/return
	// lists rather than shared scratch space.
	bufFree     [][]byte
	vecFree     [][][]byte
	scratchFree []*cleanScratch

	// Free lists of run-to-completion operation states (see task.go). Taken
	// per call and returned at completion, so steady-state task-form traffic
	// allocates no continuation closures.
	readFree  []*readOp
	wfFree    []*wfOp
	wdFree    []*wdOp
	evictFree []*evictOp
	taFree    []*tacAdmitOp
}

// getBuf takes an encoded-page buffer from the free list.
func (m *Manager) getBuf() []byte {
	if n := len(m.bufFree); n > 0 {
		b := m.bufFree[n-1]
		m.bufFree[n-1] = nil
		m.bufFree = m.bufFree[:n-1]
		return b
	}
	return make([]byte, m.bufSize())
}

// putBuf returns a buffer for reuse; callers must hold no aliases.
func (m *Manager) putBuf(b []byte) {
	if cap(b) < m.bufSize() {
		return
	}
	m.bufFree = append(m.bufFree, b[:m.bufSize()])
}

// getVec returns an empty buffer vector with capacity for n entries.
func (m *Manager) getVec(n int) [][]byte {
	if l := len(m.vecFree); l > 0 {
		v := m.vecFree[l-1]
		m.vecFree[l-1] = nil
		m.vecFree = m.vecFree[:l-1]
		if cap(v) >= n {
			return v[:0]
		}
	}
	return make([][]byte, 0, n)
}

// putVec returns a vector to the free list (buffers are returned separately).
func (m *Manager) putVec(v [][]byte) {
	for i := range v {
		v[i] = nil
	}
	m.vecFree = append(m.vecFree, v[:0])
}

// NewManager creates a manager over dev (the SSD device, one device page
// per frame) and disk (the database disk subsystem, for write-back paths).
func NewManager(env *sim.Env, dev device.Device, disk Disk, cfg Config) *Manager {
	cfg.setDefaults()
	m := &Manager{
		env:     env,
		dev:     dev,
		disk:    disk,
		cfg:     cfg,
		frames:  make([]frameRec, cfg.Frames),
		slotBad: make([]uint8, cfg.Frames),
		retired: make([]bool, cfg.Frames),
	}
	m.fillTarget = int(cfg.FillThreshold * float64(cfg.Frames))
	n := cfg.Partitions
	if cfg.Frames == 0 {
		n = 1
	}
	m.shards = make([]shard, n)
	perShard := cfg.Frames/n + 1
	for i := range m.shards {
		m.shards[i] = shard{
			clean: policy.New(cfg.Policy, perShard),
			dirty: lru2.New(),
		}
	}
	// Deal frames to shards round-robin so shard capacities differ by at
	// most one.
	for i := range m.frames {
		s := i % n
		m.frames[i].shard = s
		m.shards[s].free = append(m.shards[s].free, i)
	}
	return m
}

// Config returns the effective configuration (defaults applied).
func (m *Manager) Config() Config { return m.cfg }

// Stats returns a copy of the counters, with the per-shard clean
// policies' decision counters merged in.
func (m *Manager) Stats() Stats {
	s := m.stats
	for i := range m.shards {
		ps := m.shards[i].clean.Stats()
		s.PolicyGhostHits += ps.GhostHits
		s.PolicySplitPos += ps.SplitPos
		s.PolicyCleanFirst += ps.CleanFirstEvict
		s.PolicyAdmitRej += ps.AdmitRejects
	}
	return s
}

// cleanKey is the clean-policy key for frame idx: the frame index under
// LRU2 — preserving the legacy (prev, last, key) tie-break order exactly
// — and the page id under the adaptive policies, so ARC's ghost lists
// and TinyLFU's sketch track pages across frame reuse.
func (m *Manager) cleanKey(idx int) int64 {
	if m.cfg.Policy == policy.LRU2 {
		return int64(idx)
	}
	return int64(m.frames[idx].pid)
}

// victimFrame resolves a clean-policy victim key back to a frame index.
func (m *Manager) victimFrame(s *shard, key int64) (int, bool) {
	if m.cfg.Policy == policy.LRU2 {
		return int(key), true
	}
	return s.lookup(page.ID(key))
}

// recordAccess feeds one lookup (hit or miss) to the shard policy's
// frequency filter, when it keeps one (TinyLFU). Everything else is a
// no-op: the type assertion fails for the list-based policies.
func (m *Manager) recordAccess(s *shard, pid page.ID) {
	if r, ok := s.clean.(policy.Recorder); ok {
		r.Record(int64(pid))
	}
}

// freqAdmit applies the replacement policy's admission gate (TinyLFU's
// doorkeeper/sketch) to pid. Non-gating policies always pass, as does
// the aggressive-filling phase — below τ the SSD wants bytes, not
// selectivity.
func (m *Manager) freqAdmit(s *shard, pid page.ID) bool {
	if m.cfg.Policy == policy.LRU2 || m.aggressiveFill() {
		return true
	}
	return s.clean.Admit(int64(pid), m.env.Now())
}

// admits combines the §3.3.1 admission policy (Qualifies) with the
// replacement policy's frequency gate for pid.
func (m *Manager) admits(pid page.ID, random bool) bool {
	return m.Qualifies(random) && m.freqAdmit(m.shardOf(pid), pid)
}

// Enabled reports whether the manager caches anything.
func (m *Manager) Enabled() bool {
	return m.cfg.Design != NoSSD && m.cfg.Frames > 0
}

func (m *Manager) shardOf(pid page.ID) *shard {
	// Fibonacci hashing over the page id spreads contiguous extents.
	h := uint64(pid) * 0x9E3779B97F4A7C15
	return &m.shards[h%uint64(len(m.shards))]
}

func (m *Manager) bufSize() int { return page.HeaderSize + m.cfg.PayloadSize }

// Occupied returns the number of occupied frames (valid or TAC-invalid).
func (m *Manager) Occupied() int { return m.occupied }

// DirtyCount returns the number of dirty SSD frames.
func (m *Manager) DirtyCount() int { return m.dirtyCount }

// InvalidCount returns the number of occupied-but-invalid frames (TAC's
// wasted space, §2.5).
func (m *Manager) InvalidCount() int {
	n := 0
	for i := range m.frames {
		if m.frames[i].occupied && !m.frames[i].valid {
			n++
		}
	}
	return n
}

// Contains reports whether a valid copy of pid is cached.
func (m *Manager) Contains(pid page.ID) bool {
	if !m.Enabled() {
		return false
	}
	s := m.shardOf(pid)
	idx, ok := s.lookup(pid)
	return ok && m.frames[idx].valid
}

// Lost reports whether the SSD device failed wholesale. A lost manager
// rejects every operation with device.ErrLost; the engine replaces it via
// RecoverSSDLoss.
func (m *Manager) Lost() bool { return m.lost }

// noteDeviceErr latches the lost state when err is a whole-device loss. The
// cleaner is stopped too: it could only spin against a dead device.
func (m *Manager) noteDeviceErr(err error) {
	if errors.Is(err, device.ErrLost) {
		m.lost = true
		m.cleanerStop = true
		m.scrubStop = true
	}
}

// DirtyCorruptError reports that the only up-to-date copy of a page — a
// dirty SSD frame — failed verification and was condemned. The engine
// catches it and reconstructs the page from the WAL (RepairDirtyPage).
type DirtyCorruptError struct {
	PID page.ID
	Err error
}

func (e *DirtyCorruptError) Error() string {
	return fmt.Sprintf("ssd: dirty frame for page %d corrupt: %v", e.PID, e.Err)
}

func (e *DirtyCorruptError) Unwrap() error { return e.Err }

// Quarantined reports whether the SSD has been demoted to pass-through
// after too many retired slots.
func (m *Manager) Quarantined() bool { return m.quarantined }

// RetiredSlots returns the number of permanently retired frame slots.
func (m *Manager) RetiredSlots() int {
	n := 0
	for _, r := range m.retired {
		if r {
			n++
		}
	}
	return n
}

// FrameIndexOf returns the frame slot holding a valid copy of pid, if any.
// Fault schedules use it to aim slot-level corruption at a chosen page.
func (m *Manager) FrameIndexOf(pid page.ID) (int, bool) {
	if !m.Enabled() {
		return 0, false
	}
	s := m.shardOf(pid)
	idx, ok := s.lookup(pid)
	if !ok || !m.frames[idx].valid {
		return 0, false
	}
	return idx, true
}

// CleanPageIDs returns, sorted, the ids of pages with valid clean cached
// copies — the complement of DirtyPageIDs over the valid entries.
func (m *Manager) CleanPageIDs() []page.ID {
	var ids []page.ID
	for i := range m.frames {
		rec := &m.frames[i]
		if rec.occupied && rec.valid && !rec.dirty {
			ids = append(ids, rec.pid)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// condemnFrame drops a frame whose device slot returned bytes that failed
// verification: the entry must never serve a hit again, under any design —
// even TAC frees it (an occupied-invalid TAC frame could be revalidated in
// place, which a proven-bad slot must not be).
func (m *Manager) condemnFrame(idx int) {
	rec := &m.frames[idx]
	if !rec.occupied {
		return
	}
	s := &m.shards[rec.shard]
	if rec.dirty {
		rec.dirty = false
		m.dirtyCount--
		s.dirty.Remove(int64(idx))
	}
	s.clean.Remove(m.cleanKey(idx))
	rec.valid = false
	rec.condemned = true
	if rec.io == 0 {
		m.freeFrame(idx)
	}
	// else: freed by frameIdle when the in-flight transfer completes.
}

// noteCorrupt records a verification failure on slot idx: the frame is
// condemned, the slot's failure count advances, and past the configured
// thresholds the slot retires and the SSD quarantines.
func (m *Manager) noteCorrupt(idx int) {
	m.noteBadSlot(idx)
	m.condemnFrame(idx)
}

// noteBadSlot advances slot idx's verification-failure count, retiring the
// slot and quarantining the device past the configured thresholds. It
// reports whether the slot is (now) retired. Unlike noteCorrupt it leaves
// the frame itself alone, so the scrubber can repair it in place.
func (m *Manager) noteBadSlot(idx int) bool {
	m.stats.CorruptDetected++
	if m.slotBad[idx] < 0xFF {
		m.slotBad[idx]++
	}
	if !m.retired[idx] && int(m.slotBad[idx]) >= m.cfg.RetireAfter {
		m.retired[idx] = true
		m.stats.Retired++
		if !m.quarantined && m.RetiredSlots() >= m.cfg.QuarantineAfter {
			m.quarantined = true
			m.stats.Quarantines++
		}
	}
	return m.retired[idx]
}

// DirtyPageIDs returns, sorted, the ids of pages whose only up-to-date copy
// lives on the SSD (valid dirty frames — possible only under LC). After an
// SSD loss this is exactly the set recovery must rebuild from the WAL.
func (m *Manager) DirtyPageIDs() []page.ID {
	var ids []page.ID
	for i := range m.frames {
		rec := &m.frames[i]
		if rec.occupied && rec.valid && rec.dirty {
			ids = append(ids, rec.pid)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// dropFrame invalidates frame idx after a failed device write: the frame's
// on-device contents are unknown, so the entry must never serve a hit (and
// a dirty entry must never be "cleaned" from garbage). Non-TAC designs free
// the frame as soon as it is idle; TAC leaves it occupied-invalid, like a
// logical invalidation.
func (m *Manager) dropFrame(idx int) {
	rec := &m.frames[idx]
	if !rec.occupied {
		return
	}
	s := &m.shards[rec.shard]
	if rec.dirty {
		rec.dirty = false
		m.dirtyCount--
		s.dirty.Remove(int64(idx))
	}
	s.clean.Remove(m.cleanKey(idx))
	rec.valid = false
	m.frameIdle(idx)
}

// IsDirty reports whether the cached copy of pid is newer than the disk
// version (possible only under LC).
func (m *Manager) IsDirty(pid page.ID) bool {
	if !m.Enabled() {
		return false
	}
	s := m.shardOf(pid)
	idx, ok := s.lookup(pid)
	return ok && m.frames[idx].valid && m.frames[idx].dirty
}

// throttled reports whether throttle control (§3.3.2) is suppressing
// optional SSD traffic.
func (m *Manager) throttled() bool {
	return m.dev.Pending() >= m.cfg.Throttle
}

// aggressiveFill reports whether the SSD is still below the filling
// threshold τ, during which every evicted page is cached (§3.3.1).
func (m *Manager) aggressiveFill() bool { return m.occupied < m.fillTarget }

// Qualifies applies the admission policy: pages fetched with random I/O
// always qualify; sequential pages qualify only during aggressive filling.
func (m *Manager) Qualifies(random bool) bool {
	if !m.Enabled() || m.quarantined {
		return false
	}
	if m.aggressiveFill() {
		return true
	}
	return random
}

// Read attempts to serve pid from the SSD into pg (whose Payload must be a
// PayloadSize buffer). It returns true on an SSD hit. When the cached copy
// is dirty (newer than disk) the read bypasses throttle control, as
// correctness requires (§3.3.2).
func (m *Manager) Read(p *sim.Proc, pid page.ID, pg *page.Page) (bool, error) {
	if !m.Enabled() {
		return false, nil
	}
	if m.lost {
		return false, device.ErrLost
	}
	s := m.shardOf(pid)
	m.recordAccess(s, pid)
	idx, ok := s.lookup(pid)
	if !ok || !m.frames[idx].valid {
		m.stats.Misses++
		return false, nil
	}
	rec := &m.frames[idx]
	if m.quarantined && !rec.dirty {
		// Pass-through mode: the clean copy is no longer trusted capacity.
		// Drop it and serve from disk; dirty frames must still be read
		// (their SSD copy is the only up-to-date one) until drained.
		m.dropFrame(idx)
		m.stats.Misses++
		return false, nil
	}
	if !rec.dirty && m.throttled() {
		m.stats.ThrottleReads++
		m.stats.Misses++
		return false, nil
	}
	wantLSN := rec.lsn
	restored := rec.restored
	rec.io++
	buf := m.getBuf()
	var err error
	for attempt := 1; ; attempt++ {
		vec := append(m.getVec(1), buf)
		err = m.dev.Read(p, device.PageNum(idx), vec)
		m.putVec(vec)
		if err == nil {
			break
		}
		m.stats.ReadErrors++
		m.noteDeviceErr(err)
		// Bounded retries, the standard storage response — and necessary
		// for dirty LC frames, whose copy is the only up-to-date one. The
		// frame's in-flight count stays held across the backoff so it
		// cannot be reclaimed mid-retry.
		if !m.cfg.Retry.Retryable(err, attempt) {
			break
		}
		m.stats.ReadRetries++
		if d := m.cfg.Retry.Delay(attempt); d > 0 {
			p.Sleep(d)
		}
	}
	rec.io--
	return m.readOutcome(pid, idx, wantLSN, restored, buf, pg, err)
}

// readOutcome resolves a frame read once the device transfers (including
// retries) are done: error triage, reclaimed-frame check, decode and
// verification, hit accounting, and corruption routing. wantLSN and
// restored are the frame's state when the read was issued — if the frame
// was re-admitted mid-flight the stored bytes are stale, not corrupt.
// Shared by the blocking and task forms; buf is consumed (returned to the
// free list) on every path.
func (m *Manager) readOutcome(pid page.ID, idx int, wantLSN uint64, restored bool, buf []byte, pg *page.Page, err error) (bool, error) {
	rec := &m.frames[idx]
	if err != nil {
		m.putBuf(buf)
		if m.lost {
			m.frameIdle(idx)
			return false, device.ErrLost
		}
		if rec.dirty {
			// The only up-to-date copy is unreadable and the device is not
			// (yet) declared lost. Surface the error rather than silently
			// serving the stale disk version.
			m.frameIdle(idx)
			return false, err
		}
		// Clean frame: degrade to a miss served from disk, dropping the
		// entry so it cannot keep failing.
		m.dropFrame(idx)
		m.stats.Misses++
		return false, nil
	}
	if !rec.occupied || rec.pid != pid || !rec.valid || rec.lsn != wantLSN {
		// The frame was reclaimed, invalidated, or re-admitted with a newer
		// version while we slept in the device queue; the bytes we read are
		// stale, not wrong. Treat as a miss (the pool handles residency).
		m.putBuf(buf)
		m.frameIdle(idx)
		m.stats.Misses++
		return false, nil
	}
	var got page.Page
	decodeErr := page.Decode(buf, &got)
	if decodeErr == nil && got.ID != pid {
		decodeErr = &page.ChecksumError{
			ID: pid, Device: "ssd", Slot: int64(idx),
			Reason: "id", Got: uint64(got.ID), Want: uint64(pid),
		}
	}
	if decodeErr == nil && !restored && got.LSN != wantLSN {
		// The self-identifying header names the right page but the wrong
		// version: the slot missed a write (misdirected or lost). Restored
		// warm-restart entries skip this check — their expected LSN is not
		// tracked; the checksum and id still vouch for them.
		decodeErr = &page.ChecksumError{
			ID: pid, Device: "ssd", Slot: int64(idx),
			Reason: "lsn", Got: got.LSN, Want: wantLSN,
		}
	}
	if decodeErr != nil {
		m.putBuf(buf)
		if rec.restored {
			// Warm-restart entries are hints: the frame was reused for a
			// different page between the checkpoint that recorded the
			// table and the crash. Drop the stale entry and miss.
			rec.valid = false
			m.frameIdle(idx)
			m.stats.Misses++
			return false, nil
		}
		if ce := (*page.ChecksumError)(nil); errors.As(decodeErr, &ce) {
			ce.ID, ce.Device, ce.Slot = pid, "ssd", int64(idx)
		}
		wasDirty := rec.dirty
		m.noteCorrupt(idx)
		if !wasDirty {
			// A clean frame's truth lives on disk: dropping the entry IS
			// the repair — the caller falls through to the disk read.
			m.stats.CorruptRepaired++
			m.stats.Misses++
			return false, nil
		}
		// The only up-to-date copy was corrupt. Hand the engine a typed
		// error so it can reconstruct the page from the WAL.
		m.stats.CorruptDirty++
		return false, &DirtyCorruptError{PID: pid, Err: decodeErr}
	}
	if rec.restored {
		// A restored entry's expected LSN was unknown until now; adopt the
		// verified stored LSN so later reads can cross-check it.
		rec.lsn = got.LSN
	}
	rec.restored = false // content verified against the hash table entry
	pg.ID = got.ID
	pg.LSN = got.LSN
	copy(pg.Payload, got.Payload)
	m.putBuf(buf) // got.Payload aliased buf; the copy above ends its use
	m.touch(idx)
	m.frameIdle(idx)
	m.stats.Hits++
	return true, nil
}

// touch records an SSD access for replacement (LRU-2).
func (m *Manager) touch(idx int) {
	rec := &m.frames[idx]
	rec.prev = rec.last
	rec.last = m.env.Now()
	s := &m.shards[rec.shard]
	if m.cfg.Design == TAC {
		return // TAC replaces by temperature, not recency
	}
	if rec.dirty {
		s.dirty.TouchHistory(int64(idx), rec.last, rec.prev)
	} else {
		s.clean.TouchHistory(m.cleanKey(idx), rec.last, rec.prev)
	}
}

// frameIdle finishes deferred reclamation: a frame invalidated while a
// device transfer was in flight is freed once the last transfer completes.
// Condemned frames are freed under every design, including TAC.
func (m *Manager) frameIdle(idx int) {
	rec := &m.frames[idx]
	if rec.io == 0 && rec.occupied && !rec.valid && (m.cfg.Design != TAC || rec.condemned) {
		m.freeFrame(idx)
	}
}

// freeFrame returns an occupied frame to its shard's free list — unless the
// slot has been retired, in which case the frame is emptied but stays out
// of service permanently.
func (m *Manager) freeFrame(idx int) {
	rec := &m.frames[idx]
	if !rec.occupied {
		panic("ssd: freeing unoccupied frame")
	}
	s := &m.shards[rec.shard]
	s.table.Delete(uint64(rec.pid))
	s.clean.Remove(m.cleanKey(idx))
	s.dirty.Remove(int64(idx))
	if rec.dirty {
		m.dirtyCount--
	}
	rec.occupied = false
	rec.valid = false
	rec.dirty = false
	rec.restored = false
	rec.condemned = false
	rec.pid = 0
	rec.gen++ // invalidates stale TAC heap entries for this frame
	m.occupied--
	if m.retired[idx] {
		return
	}
	s.free = append(s.free, idx)
}

// Invalidate removes the cached copy of pid after the memory copy was
// dirtied. CW/DW/LC reclaim the frame physically; TAC only marks it invalid
// (§2.5), wasting the space until temperature replacement reaches it.
func (m *Manager) Invalidate(pid page.ID) {
	if !m.Enabled() {
		return
	}
	s := m.shardOf(pid)
	idx, ok := s.lookup(pid)
	if !ok {
		return
	}
	rec := &m.frames[idx]
	if !rec.valid {
		return
	}
	m.stats.Invalidations++
	if m.cfg.Design == TAC {
		rec.valid = false // logical invalidation: frame stays occupied
		return
	}
	rec.valid = false
	if rec.io == 0 {
		m.freeFrame(idx)
	}
	// else: freed by frameIdle when the in-flight transfer completes.
}

// allocFrame finds a frame in pid's shard: the free list first, then a
// clean-heap victim (replacement). It returns -1 if nothing is reclaimable
// (every clean frame busy, rest dirty). The returned frame is occupied and
// published in the hash table immediately so that concurrent readers queue
// behind the admission write in the device FIFO rather than reading a stale
// disk version.
func (m *Manager) allocFrame(pid page.ID, dirty bool) int {
	s := m.shardOf(pid)
	var idx int
	switch {
	case len(s.free) > 0:
		idx = s.free[len(s.free)-1]
		s.free = s.free[:len(s.free)-1]
	default:
		idx = m.popCleanVictim(s)
		if idx < 0 {
			return -1
		}
		m.stats.Evictions++
		m.freeFrame(idx)
		s.free = s.free[:len(s.free)-1]
	}
	rec := &m.frames[idx]
	rec.pid = pid
	rec.occupied = true
	rec.valid = true
	rec.dirty = dirty
	rec.last = m.env.Now()
	rec.prev = lru2.Never()
	s.table.Put(uint64(pid), int32(idx))
	m.occupied++
	if dirty {
		m.dirtyCount++
		s.dirty.TouchHistory(int64(idx), rec.last, rec.prev)
	} else {
		s.clean.TouchHistory(m.cleanKey(idx), rec.last, rec.prev)
	}
	return idx
}

// popCleanVictim pops the clean-heap LRU-2 victim whose frame is idle,
// re-inserting any busy frames it skipped. Returns -1 if none.
func (m *Manager) popCleanVictim(s *shard) int {
	var busy []int
	victim := -1
	for {
		key, ok := s.clean.Pop()
		if !ok {
			break
		}
		idx, ok := m.victimFrame(s, key)
		if !ok {
			continue // pid-keyed policy invariant breach; drop the stale key
		}
		if m.frames[idx].io > 0 {
			busy = append(busy, idx)
			continue
		}
		victim = idx
		break
	}
	for _, idx := range busy {
		rec := &m.frames[idx]
		s.clean.TouchHistory(m.cleanKey(idx), rec.last, rec.prev)
	}
	return victim
}

// writeFrame encodes pg and writes it to frame idx, maintaining the
// in-flight count and deferred reclamation. Failed attempts are counted
// and retried under the shared retry policy; the in-flight count is held
// across the backoff so the frame cannot be reclaimed mid-retry.
func (m *Manager) writeFrame(p *sim.Proc, idx int, pg *page.Page) error {
	rec := &m.frames[idx]
	rec.io++
	buf := m.getBuf()
	if err := page.Encode(pg, buf); err != nil {
		m.putBuf(buf)
		rec.io--
		return err
	}
	var err error
	for attempt := 1; ; attempt++ {
		vec := append(m.getVec(1), buf)
		err = m.dev.Write(p, device.PageNum(idx), vec)
		m.putVec(vec)
		if err == nil {
			break
		}
		m.stats.WriteErrors++
		m.noteDeviceErr(err)
		if !m.cfg.Retry.Retryable(err, attempt) {
			break
		}
		m.stats.WriteRetries++
		if d := m.cfg.Retry.Delay(attempt); d > 0 {
			p.Sleep(d)
		}
	}
	m.putBuf(buf)
	rec.io--
	m.frameIdle(idx)
	return err
}

// admit caches pg in the SSD (already qualified and not throttled),
// returning false if no frame could be claimed.
func (m *Manager) admit(p *sim.Proc, pg *page.Page, dirty bool) (bool, error) {
	if m.lost {
		return false, device.ErrLost
	}
	if m.quarantined {
		return false, nil // pass-through: no new admissions
	}
	s := m.shardOf(pg.ID)
	if idx, ok := s.lookup(pg.ID); ok {
		rec := &m.frames[idx]
		if rec.valid && !dirty {
			return true, nil // identical clean copy already cached
		}
		// Overwrite in place (e.g. LC re-admitting a page whose frame is
		// still around). Publish the new state before the device write.
		if dirty && !rec.dirty {
			m.dirtyCount++
			s.clean.Remove(m.cleanKey(idx))
		}
		rec.valid = true
		rec.dirty = rec.dirty || dirty
		rec.lsn = pg.LSN
		m.touch(idx)
		m.stats.Admissions++
		if dirty {
			m.stats.DirtyAdmits++
		}
		return m.finishAdmit(idx, m.writeFrame(p, idx, pg))
	}
	idx := m.allocFrame(pg.ID, dirty)
	if idx < 0 {
		return false, nil
	}
	m.frames[idx].lsn = pg.LSN
	m.stats.Admissions++
	if dirty {
		m.stats.DirtyAdmits++
	}
	return m.finishAdmit(idx, m.writeFrame(p, idx, pg))
}

// finishAdmit resolves a writeFrame outcome: on failure the frame's contents
// are unknown, so the entry is dropped and the admission reported as not
// taken — callers fall back to the disk write path for dirty pages, which is
// exactly the no-SSD behaviour. Only whole-device loss propagates as an
// error.
func (m *Manager) finishAdmit(idx int, err error) (bool, error) {
	if err == nil {
		return true, nil
	}
	// Failed attempts were already counted by the write path itself.
	m.noteDeviceErr(err)
	m.dropFrame(idx)
	if m.lost {
		return false, device.ErrLost
	}
	return false, nil
}

// SetCheckpointing tells the manager a sharp checkpoint is in progress; LC
// stops caching new dirty evictions for its duration (§3.2).
func (m *Manager) SetCheckpointing(v bool) { m.checkpointing = v }

// MinDirtyLSN returns the smallest LSN among dirty SSD pages, and whether
// any exist — the SSD side of a fuzzy checkpoint's redo horizon.
func (m *Manager) MinDirtyLSN() (uint64, bool) {
	var min uint64
	found := false
	for i := range m.frames {
		rec := &m.frames[i]
		if !rec.occupied || !rec.dirty {
			continue
		}
		if !found || rec.lsn < min {
			min = rec.lsn
			found = true
		}
	}
	return min, found
}
