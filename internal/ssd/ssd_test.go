package ssd

import (
	"testing"
	"time"

	"turbobp/internal/device"
	"turbobp/internal/page"
	"turbobp/internal/sim"
)

const testPayload = 40

// recordingDisk implements Disk, recording write runs without charging time.
type recordingDisk struct {
	writes []diskWrite
}

type diskWrite struct {
	start page.ID
	n     int
}

func (d *recordingDisk) WriteEncoded(_ *sim.Proc, start page.ID, bufs [][]byte) error {
	d.writes = append(d.writes, diskWrite{start: start, n: len(bufs)})
	return nil
}

func (d *recordingDisk) WriteEncodedTask(_ *sim.Task, start page.ID, bufs [][]byte, k func(error)) {
	k(d.WriteEncoded(nil, start, bufs))
}

func (d *recordingDisk) pagesWritten() int {
	n := 0
	for _, w := range d.writes {
		n += w.n
	}
	return n
}

type fixture struct {
	env  *sim.Env
	dev  *device.SSD
	disk *recordingDisk
	m    *Manager
}

func newFixture(design Design, frames int, mod func(*Config)) *fixture {
	env := sim.NewEnv()
	dev := device.NewSSD(env, device.PaperSSDProfile(), device.PageNum(frames))
	disk := &recordingDisk{}
	cfg := Config{
		Design:      design,
		Frames:      frames,
		Partitions:  1,
		PayloadSize: testPayload,
	}
	if mod != nil {
		mod(&cfg)
	}
	return &fixture{env: env, dev: dev, disk: disk, m: NewManager(env, dev, disk, cfg)}
}

func mkPage(id page.ID, lsn uint64, fill byte) *page.Page {
	pl := make([]byte, testPayload)
	for i := range pl {
		pl[i] = fill
	}
	return &page.Page{ID: id, LSN: lsn, Payload: pl}
}

// run executes fn as a simulation process and drains the environment.
func (f *fixture) run(t *testing.T, fn func(p *sim.Proc)) {
	t.Helper()
	f.env.Go("test", fn)
	f.env.Run(-1)
}

func TestReadMissOnEmpty(t *testing.T) {
	f := newFixture(DW, 8, nil)
	f.run(t, func(p *sim.Proc) {
		pg := mkPage(0, 0, 0)
		hit, err := f.m.Read(p, 5, pg)
		if err != nil || hit {
			t.Errorf("Read = (%v,%v), want miss", hit, err)
		}
	})
	if f.m.Stats().Misses != 1 {
		t.Errorf("Misses = %d", f.m.Stats().Misses)
	}
}

func TestCleanEvictionCachesAndHits(t *testing.T) {
	f := newFixture(DW, 8, nil)
	f.run(t, func(p *sim.Proc) {
		src := mkPage(7, 42, 0xEE)
		if err := f.m.OnEvict(p, src, false, true); err != nil {
			t.Fatalf("OnEvict: %v", err)
		}
		if !f.m.Contains(7) {
			t.Fatal("page not cached after clean eviction")
		}
		got := mkPage(0, 0, 0)
		hit, err := f.m.Read(p, 7, got)
		if err != nil || !hit {
			t.Fatalf("Read = (%v,%v), want hit", hit, err)
		}
		if got.LSN != 42 || got.Payload[0] != 0xEE {
			t.Errorf("read back lsn=%d fill=%x", got.LSN, got.Payload[0])
		}
	})
	if len(f.disk.writes) != 0 {
		t.Errorf("clean eviction wrote to disk: %v", f.disk.writes)
	}
}

func TestSequentialNotAdmittedAfterFill(t *testing.T) {
	f := newFixture(DW, 10, func(c *Config) { c.FillThreshold = 0.2 }) // target = 2
	f.run(t, func(p *sim.Proc) {
		// Two admissions fill to τ, even though sequential.
		f.m.OnEvict(p, mkPage(1, 1, 1), false, false)
		f.m.OnEvict(p, mkPage(2, 1, 1), false, false)
		if !f.m.Contains(1) || !f.m.Contains(2) {
			t.Fatal("aggressive filling did not admit sequential pages")
		}
		// Above τ, sequential pages are rejected but random ones accepted.
		f.m.OnEvict(p, mkPage(3, 1, 1), false, false)
		if f.m.Contains(3) {
			t.Error("sequential page admitted past the filling threshold")
		}
		f.m.OnEvict(p, mkPage(4, 1, 1), false, true)
		if !f.m.Contains(4) {
			t.Error("random page rejected")
		}
	})
}

func TestCWDirtyEvictionGoesOnlyToDisk(t *testing.T) {
	f := newFixture(CW, 8, nil)
	f.run(t, func(p *sim.Proc) {
		f.m.OnEvict(p, mkPage(3, 9, 1), true, true)
	})
	if f.m.Contains(3) {
		t.Error("CW cached a dirty page")
	}
	if len(f.disk.writes) != 1 || f.disk.writes[0].start != 3 {
		t.Errorf("disk writes = %v", f.disk.writes)
	}
}

func TestDWDirtyEvictionGoesToBoth(t *testing.T) {
	f := newFixture(DW, 8, nil)
	f.run(t, func(p *sim.Proc) {
		f.m.OnEvict(p, mkPage(3, 9, 1), true, true)
	})
	if !f.m.Contains(3) {
		t.Error("DW did not cache the dirty page")
	}
	if f.m.IsDirty(3) {
		t.Error("DW cached the page as dirty; the SSD copy equals disk and must be clean")
	}
	if len(f.disk.writes) != 1 {
		t.Errorf("disk writes = %v", f.disk.writes)
	}
	if f.dev.Stats().Load().WriteOps != 1 {
		t.Errorf("ssd writes = %d", f.dev.Stats().Load().WriteOps)
	}
}

func TestDWWritesAreConcurrent(t *testing.T) {
	// The dual write completes in max(disk, ssd) time, not the sum: with a
	// slow recording disk replaced by a timed one this is visible. Here we
	// use the SSD device plus a disk that charges 10ms via a sim sleep.
	env := sim.NewEnv()
	dev := device.NewSSD(env, device.Profile{RandWrite: 4 * time.Millisecond, SeqWrite: 4 * time.Millisecond, RandRead: time.Millisecond, SeqRead: time.Millisecond}, 8)
	slow := &slowDisk{d: 10 * time.Millisecond}
	m := NewManager(env, dev, slow, Config{Design: DW, Frames: 8, Partitions: 1, PayloadSize: testPayload})
	var took time.Duration
	env.Go("t", func(p *sim.Proc) {
		m.OnEvict(p, mkPage(1, 1, 1), true, true)
		took = p.Now()
	})
	env.Run(-1)
	if took != 10*time.Millisecond {
		t.Errorf("dual write took %v, want 10ms (max of 10ms disk, 4ms ssd)", took)
	}
}

type slowDisk struct{ d time.Duration }

func (s *slowDisk) WriteEncoded(p *sim.Proc, _ page.ID, _ [][]byte) error {
	p.Sleep(s.d)
	return nil
}

func (s *slowDisk) WriteEncodedTask(t *sim.Task, _ page.ID, _ [][]byte, k func(error)) {
	t.Sleep(s.d, func() { k(nil) })
}

func TestLCDirtyEvictionGoesOnlyToSSD(t *testing.T) {
	f := newFixture(LC, 8, nil)
	f.run(t, func(p *sim.Proc) {
		f.m.OnEvict(p, mkPage(3, 9, 0xCD), true, true)
		if !f.m.IsDirty(3) {
			t.Fatal("LC page not cached dirty")
		}
		got := mkPage(0, 0, 0)
		hit, _ := f.m.Read(p, 3, got)
		if !hit || got.LSN != 9 || got.Payload[0] != 0xCD {
			t.Errorf("hit=%v lsn=%d", hit, got.LSN)
		}
	})
	if len(f.disk.writes) != 0 {
		t.Errorf("LC wrote to disk at eviction: %v", f.disk.writes)
	}
	if f.m.DirtyCount() != 1 {
		t.Errorf("DirtyCount = %d", f.m.DirtyCount())
	}
}

func TestLCStopsCachingDirtyDuringCheckpoint(t *testing.T) {
	f := newFixture(LC, 8, nil)
	f.run(t, func(p *sim.Proc) {
		f.m.SetCheckpointing(true)
		f.m.OnEvict(p, mkPage(3, 9, 1), true, true)
		if f.m.Contains(3) {
			t.Error("LC cached a dirty page during checkpoint")
		}
		f.m.SetCheckpointing(false)
		f.m.OnEvict(p, mkPage(4, 9, 1), true, true)
		if !f.m.IsDirty(4) {
			t.Error("LC did not resume caching after checkpoint")
		}
	})
	if len(f.disk.writes) != 1 || f.disk.writes[0].start != 3 {
		t.Errorf("disk writes = %v", f.disk.writes)
	}
}

func TestInvalidatePhysicallyReclaims(t *testing.T) {
	f := newFixture(DW, 8, nil)
	f.run(t, func(p *sim.Proc) {
		f.m.OnEvict(p, mkPage(5, 1, 1), false, true)
		if f.m.Occupied() != 1 {
			t.Fatalf("Occupied = %d", f.m.Occupied())
		}
		f.m.Invalidate(5)
		if f.m.Contains(5) {
			t.Error("page still cached after invalidation")
		}
		if f.m.Occupied() != 0 {
			t.Errorf("Occupied = %d; CW/DW/LC invalidation must free the frame", f.m.Occupied())
		}
	})
	if f.m.Stats().Invalidations != 1 {
		t.Errorf("Invalidations = %d", f.m.Stats().Invalidations)
	}
}

func TestLRU2ReplacementOrder(t *testing.T) {
	f := newFixture(DW, 3, func(c *Config) { c.FillThreshold = 1.0 })
	f.run(t, func(p *sim.Proc) {
		f.m.OnEvict(p, mkPage(1, 1, 1), false, true)
		p.Sleep(time.Millisecond)
		f.m.OnEvict(p, mkPage(2, 1, 1), false, true)
		p.Sleep(time.Millisecond)
		f.m.OnEvict(p, mkPage(3, 1, 1), false, true)
		p.Sleep(time.Millisecond)
		// Touch 1 twice via reads; 2 once; 3 never.
		buf := mkPage(0, 0, 0)
		f.m.Read(p, 1, buf)
		p.Sleep(time.Millisecond)
		f.m.Read(p, 1, buf)
		p.Sleep(time.Millisecond)
		f.m.Read(p, 2, buf)
		p.Sleep(time.Millisecond)
		// SSD full: admitting 4 must evict the LRU-2 victim. Pages 2 and 3
		// have an infinite backward 2-distance (one access since load
		// counts the load itself... load + one read for 2). Page 3 has
		// only its load access => victim.
		f.m.OnEvict(p, mkPage(4, 1, 1), false, true)
		if f.m.Contains(3) {
			t.Error("page 3 (oldest penultimate access) survived")
		}
		if !f.m.Contains(1) || !f.m.Contains(2) || !f.m.Contains(4) {
			t.Error("wrong pages evicted")
		}
	})
	if f.m.Stats().Evictions != 1 {
		t.Errorf("Evictions = %d", f.m.Stats().Evictions)
	}
}

func TestDirtyFramesNotReplacementVictims(t *testing.T) {
	f := newFixture(LC, 2, func(c *Config) { c.FillThreshold = 1.0; c.DirtyFraction = 1.0 })
	f.run(t, func(p *sim.Proc) {
		f.m.OnEvict(p, mkPage(1, 1, 1), true, true) // dirty
		p.Sleep(time.Millisecond)
		f.m.OnEvict(p, mkPage(2, 1, 1), true, true) // dirty
		p.Sleep(time.Millisecond)
		// SSD full of dirty pages: a clean admission finds no victim and
		// is dropped; a dirty eviction falls back to disk.
		f.m.OnEvict(p, mkPage(3, 1, 1), false, true)
		if f.m.Contains(3) {
			t.Error("clean page displaced a dirty frame")
		}
		f.m.OnEvict(p, mkPage(4, 1, 1), true, true)
		if f.m.Contains(4) {
			t.Error("dirty page displaced a dirty frame")
		}
		if !f.m.IsDirty(1) || !f.m.IsDirty(2) {
			t.Error("dirty frames lost")
		}
	})
	// Page 4's eviction must have fallen back to a disk write.
	if len(f.disk.writes) != 1 || f.disk.writes[0].start != 4 {
		t.Errorf("disk writes = %v", f.disk.writes)
	}
}

func TestCleanerDrivesDirtyBelowThreshold(t *testing.T) {
	f := newFixture(LC, 10, func(c *Config) {
		c.DirtyFraction = 0.5
		c.CleanerPoll = time.Millisecond
		c.GroupClean = 4
	})
	f.m.StartCleaner()
	f.run(t, func(p *sim.Proc) {
		for i := 1; i <= 8; i++ {
			f.m.OnEvict(p, mkPage(page.ID(i), 1, byte(i)), true, true)
		}
		if f.m.DirtyCount() != 8 {
			t.Fatalf("DirtyCount = %d", f.m.DirtyCount())
		}
		p.Sleep(100 * time.Millisecond) // let the cleaner run
		f.m.StopCleaner()
		if got := f.m.DirtyCount(); got > 5-1 {
			t.Errorf("DirtyCount = %d after cleaning, want < threshold (5)", got)
		}
		// Cleaned pages are still cached, now clean.
		for i := 1; i <= 8; i++ {
			if !f.m.Contains(page.ID(i)) {
				t.Errorf("page %d lost by cleaning", i)
			}
		}
	})
	if f.disk.pagesWritten() == 0 {
		t.Error("cleaner wrote nothing to disk")
	}
}

func TestGroupCleaningWritesContiguousRuns(t *testing.T) {
	f := newFixture(LC, 32, func(c *Config) {
		c.DirtyFraction = 0.05 // cleaner target ~1
		c.CleanerPoll = time.Millisecond
		c.GroupClean = 8
	})
	f.m.StartCleaner()
	f.run(t, func(p *sim.Proc) {
		// Dirty pages 10..19 (consecutive disk addresses).
		for i := 10; i < 20; i++ {
			f.m.OnEvict(p, mkPage(page.ID(i), 1, 1), true, true)
		}
		p.Sleep(200 * time.Millisecond)
		f.m.StopCleaner()
	})
	if len(f.disk.writes) == 0 {
		t.Fatal("no cleaning writes")
	}
	multi := 0
	for _, w := range f.disk.writes {
		if w.n > 1 {
			multi++
		}
		if w.n > 8 {
			t.Errorf("cleaning run of %d pages exceeds α=8", w.n)
		}
	}
	if multi == 0 {
		t.Errorf("no multi-page cleaning writes despite contiguous dirty pages: %v", f.disk.writes)
	}
}

func TestFlushDirtyCleansEverything(t *testing.T) {
	f := newFixture(LC, 16, func(c *Config) { c.DirtyFraction = 1.0 })
	f.run(t, func(p *sim.Proc) {
		for i := 0; i < 10; i += 2 { // non-contiguous
			f.m.OnEvict(p, mkPage(page.ID(i), 1, 1), true, true)
		}
		if err := f.m.FlushDirty(p); err != nil {
			t.Fatal(err)
		}
		if f.m.DirtyCount() != 0 {
			t.Errorf("DirtyCount = %d after FlushDirty", f.m.DirtyCount())
		}
	})
	if f.disk.pagesWritten() != 5 {
		t.Errorf("flushed %d pages, want 5", f.disk.pagesWritten())
	}
	if f.m.Stats().CheckpointPgs != 5 {
		t.Errorf("CheckpointPgs = %d", f.m.Stats().CheckpointPgs)
	}
}

func TestThrottleSkipsCleanReadsNotDirty(t *testing.T) {
	f := newFixture(LC, 8, func(c *Config) { c.Throttle = 1 })
	f.run(t, func(p *sim.Proc) {
		f.m.OnEvict(p, mkPage(1, 1, 1), false, true) // clean copy
		f.m.OnEvict(p, mkPage(2, 2, 2), true, true)  // dirty copy
		// Saturate the SSD queue with background readers.
		for i := 0; i < 3; i++ {
			f.env.Go("noise", func(q *sim.Proc) {
				buf := [][]byte{make([]byte, page.HeaderSize+testPayload)}
				for j := 0; j < 50; j++ {
					f.dev.Read(q, 0, buf)
				}
			})
		}
		p.Yield() // let the noise queue up
		if f.dev.Pending() < 1 {
			t.Fatal("queue not saturated")
		}
		got := mkPage(0, 0, 0)
		hit, _ := f.m.Read(p, 1, got)
		if hit {
			t.Error("clean read served despite throttle")
		}
		hit, err := f.m.Read(p, 2, got)
		if err != nil || !hit {
			t.Errorf("dirty read = (%v,%v); must bypass throttle for correctness", hit, err)
		}
	})
	if f.m.Stats().ThrottleReads != 1 {
		t.Errorf("ThrottleReads = %d", f.m.Stats().ThrottleReads)
	}
}

func TestThrottleSkipsAdmissions(t *testing.T) {
	f := newFixture(DW, 8, func(c *Config) { c.Throttle = 1 })
	f.run(t, func(p *sim.Proc) {
		for i := 0; i < 3; i++ {
			f.env.Go("noise", func(q *sim.Proc) {
				buf := [][]byte{make([]byte, page.HeaderSize+testPayload)}
				for j := 0; j < 50; j++ {
					f.dev.Read(q, 0, buf)
				}
			})
		}
		p.Yield()
		f.m.OnEvict(p, mkPage(1, 1, 1), false, true)
		if f.m.Contains(1) {
			t.Error("admission proceeded despite throttle")
		}
	})
	if f.m.Stats().ThrottleWrites == 0 {
		t.Error("ThrottleWrites not counted")
	}
}

func TestTACLogicalInvalidationWastesSpace(t *testing.T) {
	f := newFixture(TAC, 8, nil)
	f.run(t, func(p *sim.Proc) {
		clean := true
		f.m.TACOnDiskRead(mkPage(5, 1, 1), true, func() bool { return clean })
		p.Sleep(10 * time.Millisecond)
		if !f.m.Contains(5) {
			t.Fatal("TAC did not admit on disk read")
		}
		f.m.Invalidate(5)
		if f.m.Contains(5) {
			t.Error("invalid page still reported cached")
		}
		if f.m.Occupied() != 1 {
			t.Errorf("Occupied = %d; TAC must keep the frame occupied", f.m.Occupied())
		}
		if f.m.InvalidCount() != 1 {
			t.Errorf("InvalidCount = %d", f.m.InvalidCount())
		}
	})
}

func TestTACAbortsAdmissionWhenDirtiedFirst(t *testing.T) {
	f := newFixture(TAC, 8, nil)
	f.run(t, func(p *sim.Proc) {
		clean := true
		f.m.TACOnDiskRead(mkPage(5, 1, 1), true, func() bool { return clean })
		clean = false // forward processing dirties the page immediately
		p.Sleep(10 * time.Millisecond)
		if f.m.Contains(5) {
			t.Error("TAC admitted a page that was dirtied before the async write")
		}
	})
	if f.m.Stats().TACAborts != 1 {
		t.Errorf("TACAborts = %d", f.m.Stats().TACAborts)
	}
}

func TestTACRevalidatesOnDirtyEviction(t *testing.T) {
	f := newFixture(TAC, 8, nil)
	f.run(t, func(p *sim.Proc) {
		clean := true
		f.m.TACOnDiskRead(mkPage(5, 1, 0xAA), true, func() bool { return clean })
		p.Sleep(10 * time.Millisecond)
		f.m.Invalidate(5)
		// Dirty eviction: disk write plus refresh of the invalid frame.
		f.m.OnEvict(p, mkPage(5, 2, 0xBB), true, true)
		if !f.m.Contains(5) {
			t.Fatal("invalid frame not revalidated")
		}
		got := mkPage(0, 0, 0)
		hit, _ := f.m.Read(p, 5, got)
		if !hit || got.LSN != 2 || got.Payload[0] != 0xBB {
			t.Errorf("revalidated copy: hit=%v lsn=%d fill=%x", hit, got.LSN, got.Payload[0])
		}
	})
	if len(f.disk.writes) != 1 {
		t.Errorf("disk writes = %v (TAC is write-through)", f.disk.writes)
	}
	if f.m.Stats().Revalidations != 1 {
		t.Errorf("Revalidations = %d", f.m.Stats().Revalidations)
	}
}

func TestTACDirtyEvictionWithoutInvalidCopyNotCached(t *testing.T) {
	f := newFixture(TAC, 8, nil)
	f.run(t, func(p *sim.Proc) {
		// Page never admitted (e.g. dirtied before the async write, or
		// created on the fly): its dirty eviction goes only to disk.
		f.m.OnEvict(p, mkPage(9, 1, 1), true, true)
		if f.m.Contains(9) {
			t.Error("TAC cached a dirty eviction with no invalid version present")
		}
	})
	if len(f.disk.writes) != 1 {
		t.Errorf("disk writes = %v", f.disk.writes)
	}
}

func TestTACTemperatureAdmission(t *testing.T) {
	f := newFixture(TAC, 2, func(c *Config) {
		c.FillThreshold = 1.0
		c.ExtentPages = 1 // one extent per page for direct control
	})
	f.run(t, func(p *sim.Proc) {
		still := func() bool { return true }
		// Heat up pages 1 and 2, admit them (SSD now full).
		f.m.TACNoteMiss(1, true)
		f.m.TACNoteMiss(2, true)
		f.m.TACOnDiskRead(mkPage(1, 1, 1), true, still)
		f.m.TACOnDiskRead(mkPage(2, 1, 1), true, still)
		p.Sleep(10 * time.Millisecond)
		if f.m.Occupied() != 2 {
			t.Fatalf("Occupied = %d", f.m.Occupied())
		}
		// Page 3 is colder (no misses recorded): must be rejected.
		f.m.TACOnDiskRead(mkPage(3, 1, 1), true, still)
		p.Sleep(10 * time.Millisecond)
		if f.m.Contains(3) {
			t.Error("cold page displaced a hot one")
		}
		// Now make page 3's extent the hottest: admitted, evicting the
		// coldest cached page.
		for i := 0; i < 5; i++ {
			f.m.TACNoteMiss(3, true)
		}
		f.m.TACOnDiskRead(mkPage(3, 1, 1), true, still)
		p.Sleep(10 * time.Millisecond)
		if !f.m.Contains(3) {
			t.Error("hot page rejected")
		}
		if f.m.Occupied() != 2 {
			t.Errorf("Occupied = %d after replacement", f.m.Occupied())
		}
	})
}

func TestTACNoteMissAccumulates(t *testing.T) {
	f := newFixture(TAC, 8, func(c *Config) {
		c.ExtentPages = 4
		c.RandSavedMs = 7.0
		c.SeqSavedMs = 0.5
	})
	f.m.TACNoteMiss(0, true)
	f.m.TACNoteMiss(1, true) // same extent as 0
	f.m.TACNoteMiss(2, false)
	if got := f.m.ExtentTemperature(0); got != 14.5 {
		t.Errorf("extent 0 temp = %v, want 14.5", got)
	}
	if got := f.m.ExtentTemperature(4); got != 0 {
		t.Errorf("extent 1 temp = %v, want 0", got)
	}
}

func TestShardingDistributesFrames(t *testing.T) {
	f := newFixture(DW, 64, func(c *Config) { c.Partitions = 16 })
	if len(f.m.shards) != 16 {
		t.Fatalf("shards = %d", len(f.m.shards))
	}
	for i, s := range f.m.shards {
		if len(s.free) != 4 {
			t.Errorf("shard %d has %d frames, want 4", i, len(s.free))
		}
	}
}

func TestAdmissionsAcrossShards(t *testing.T) {
	f := newFixture(DW, 64, func(c *Config) { c.Partitions = 8 })
	f.run(t, func(p *sim.Proc) {
		for i := 0; i < 48; i++ {
			f.m.OnEvict(p, mkPage(page.ID(i), 1, 1), false, true)
		}
		for i := 0; i < 48; i++ {
			if !f.m.Contains(page.ID(i)) {
				t.Errorf("page %d missing", i)
			}
		}
	})
	if f.m.Occupied() != 48 {
		t.Errorf("Occupied = %d", f.m.Occupied())
	}
}

func TestNoSSDManagerIsInert(t *testing.T) {
	f := newFixture(NoSSD, 0, nil)
	f.run(t, func(p *sim.Proc) {
		pg := mkPage(1, 1, 1)
		hit, err := f.m.Read(p, 1, pg)
		if hit || err != nil {
			t.Errorf("Read = (%v,%v)", hit, err)
		}
		if err := f.m.OnEvict(p, pg, true, true); err != nil {
			t.Fatal(err)
		}
		if err := f.m.OnEvict(p, pg, false, true); err != nil {
			t.Fatal(err)
		}
		f.m.Invalidate(1)
	})
	if len(f.disk.writes) != 1 {
		t.Errorf("disk writes = %v, want just the dirty eviction", f.disk.writes)
	}
}

func TestDesignString(t *testing.T) {
	cases := map[Design]string{NoSSD: "noSSD", CW: "CW", DW: "DW", LC: "LC", TAC: "TAC", Design(99): "Design(99)"}
	for d, want := range cases {
		if d.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(d), d.String(), want)
		}
	}
}

func TestReadAfterOverwriteReturnsLatest(t *testing.T) {
	f := newFixture(LC, 8, nil)
	f.run(t, func(p *sim.Proc) {
		f.m.OnEvict(p, mkPage(1, 1, 0x11), true, true)
		// Re-eviction of a newer version overwrites in place.
		f.m.OnEvict(p, mkPage(1, 2, 0x22), true, true)
		got := mkPage(0, 0, 0)
		hit, _ := f.m.Read(p, 1, got)
		if !hit || got.LSN != 2 || got.Payload[0] != 0x22 {
			t.Errorf("hit=%v lsn=%d fill=%x, want latest version", hit, got.LSN, got.Payload[0])
		}
	})
	if f.m.DirtyCount() != 1 {
		t.Errorf("DirtyCount = %d", f.m.DirtyCount())
	}
}

func TestOccupiedNeverExceedsFrames(t *testing.T) {
	f := newFixture(DW, 4, func(c *Config) { c.FillThreshold = 1.0 })
	f.run(t, func(p *sim.Proc) {
		for i := 0; i < 40; i++ {
			f.m.OnEvict(p, mkPage(page.ID(i), 1, 1), false, true)
			p.Sleep(time.Millisecond)
			if f.m.Occupied() > 4 {
				t.Fatalf("Occupied = %d > frames", f.m.Occupied())
			}
		}
	})
	if f.m.Occupied() != 4 {
		t.Errorf("Occupied = %d, want 4", f.m.Occupied())
	}
}
