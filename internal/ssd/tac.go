package ssd

import (
	"container/heap"
	"errors"

	"turbobp/internal/device"
	"turbobp/internal/lru2"
	"turbobp/internal/page"
	"turbobp/internal/sim"
)

// This file implements Temperature-Aware Caching (TAC, Canim et al., VLDB
// 2010) as re-implemented and compared against in §2.5 and §4 of the paper.
// TAC differs from CW/DW/LC in three ways:
//
//   - Admission happens immediately after a page is read from disk (an
//     asynchronous write to the SSD), not at memory-pool eviction time.
//   - Admission and replacement are governed by per-extent "temperatures":
//     every buffer-pool miss adds the milliseconds an SSD hit would have
//     saved to the 32-page extent containing the page.
//   - Invalidation is logical: when the memory copy is dirtied the SSD
//     frame is only marked invalid, wasting its space until temperature
//     replacement happens to evict it.

// tacEntry is one replacement-heap entry. temp is the extent temperature at
// push time; entries with stale temperatures or stale generations are fixed
// or discarded lazily at pop time.
type tacEntry struct {
	idx  int
	gen  uint64
	temp float64
}

// tacHeap is a min-heap on temperature: the root is the coldest SSD page.
type tacHeap []tacEntry

func (h tacHeap) Len() int            { return len(h) }
func (h tacHeap) Less(i, j int) bool  { return h[i].temp < h[j].temp }
func (h tacHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *tacHeap) Push(x interface{}) { *h = append(*h, x.(tacEntry)) }
func (h *tacHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// extentOf maps a page to its temperature extent.
func (m *Manager) extentOf(pid page.ID) int64 {
	return int64(pid) / int64(m.cfg.ExtentPages)
}

// ExtentTemperature returns the current temperature of pid's extent.
func (m *Manager) ExtentTemperature(pid page.ID) float64 {
	t, _ := m.temps.Get(uint64(m.extentOf(pid)))
	return t
}

// TACNoteMiss records a memory-pool miss for temperature tracking: the
// extent gains the milliseconds that an SSD hit would have saved.
func (m *Manager) TACNoteMiss(pid page.ID, random bool) {
	if m.cfg.Design != TAC || !m.Enabled() {
		return
	}
	saved := m.cfg.RandSavedMs
	if !random {
		saved = m.cfg.SeqSavedMs
	}
	ext := uint64(m.extentOf(pid))
	t, _ := m.temps.Get(ext)
	m.temps.Put(ext, t+saved)
}

// TACOnDiskRead schedules TAC's asynchronous admission of a page that was
// just read from disk into the memory pool. stillClean is consulted right
// before the SSD write begins; if forward processing dirtied the page in
// the meantime the write is abandoned (the latch race of §4.2), which is
// precisely why TAC under-caches on update-intensive workloads.
func (m *Manager) TACOnDiskRead(pg *page.Page, random bool, stillClean func() bool) {
	if m.cfg.Design != TAC || !m.Enabled() {
		return
	}
	snap := &page.Page{ID: pg.ID, LSN: pg.LSN, Payload: append([]byte(nil), pg.Payload...)}
	m.env.Go("tac-admit", func(p *sim.Proc) {
		p.Sleep(m.cfg.AsyncAdmitDelay)
		if !stillClean() {
			m.stats.TACAborts++
			return
		}
		if m.throttled() {
			m.stats.ThrottleWrites++
			return
		}
		if err := m.tacAdmit(p, snap); err != nil {
			if errors.Is(err, device.ErrLost) {
				// The SSD died under the async admission. The write was
				// optional traffic; the engine notices the loss on its next
				// synchronous SSD operation.
				return
			}
			panic("ssd: tac admit: " + err.Error())
		}
	})
}

// tacAdmit writes snap into the SSD if TAC's policy allows: always while
// below the filling threshold, otherwise only when its extent is hotter
// than the coldest cached page (which is then replaced).
func (m *Manager) tacAdmit(p *sim.Proc, snap *page.Page) error {
	if m.lost {
		return device.ErrLost
	}
	if m.quarantined {
		return nil // pass-through: no new admissions
	}
	s := m.shardOf(snap.ID)
	if idx, ok := s.lookup(snap.ID); ok {
		rec := &m.frames[idx]
		if rec.valid {
			return nil // already cached
		}
		rec.valid = true
		rec.lsn = snap.LSN
		m.stats.Admissions++
		_, err := m.finishAdmit(idx, m.writeFrame(p, idx, snap))
		return err
	}
	if !m.freqAdmit(s, snap.ID) {
		return nil // frequency gate (TinyLFU) refused the extent-path admit
	}
	idx := m.tacAllocFrame(snap.ID)
	if idx < 0 {
		return nil
	}
	m.frames[idx].lsn = snap.LSN
	m.stats.Admissions++
	_, err := m.finishAdmit(idx, m.writeFrame(p, idx, snap))
	return err
}

// tacAllocFrame claims a frame for pid: the free list first, then — when
// the SSD is full — the coldest frame, and only if pid's extent is hotter.
func (m *Manager) tacAllocFrame(pid page.ID) int {
	s := m.shardOf(pid)
	if len(s.free) == 0 {
		victim := m.popTacVictim(s)
		if victim < 0 {
			return -1
		}
		vrec := &m.frames[victim]
		if m.ExtentTemperature(pid) <= m.ExtentTemperature(vrec.pid) {
			m.pushTac(victim) // not hot enough; victim stays
			return -1
		}
		m.stats.Evictions++
		m.freeFrame(victim)
	}
	idx := s.free[len(s.free)-1]
	s.free = s.free[:len(s.free)-1]
	rec := &m.frames[idx]
	rec.pid = pid
	rec.occupied = true
	rec.valid = true
	rec.dirty = false
	rec.last = m.env.Now()
	rec.prev = lru2.Never()
	s.table.Put(uint64(pid), int32(idx))
	m.occupied++
	m.pushTac(idx)
	return idx
}

// pushTac (re)inserts frame idx into its shard's temperature heap with the
// extent's current temperature.
func (m *Manager) pushTac(idx int) {
	rec := &m.frames[idx]
	s := &m.shards[rec.shard]
	heap.Push(&s.tac, tacEntry{idx: idx, gen: rec.gen, temp: m.ExtentTemperature(rec.pid)})
}

// popTacVictim removes and returns the coldest idle frame of the shard,
// fixing stale heap entries lazily. Returns -1 if nothing is reclaimable.
// The caller must either free the frame or pushTac it back.
func (m *Manager) popTacVictim(s *shard) int {
	var busy []tacEntry
	defer func() {
		for _, b := range busy {
			heap.Push(&s.tac, b)
		}
	}()
	for len(s.tac) > 0 {
		e := heap.Pop(&s.tac).(tacEntry)
		rec := &m.frames[e.idx]
		if !rec.occupied || rec.gen != e.gen {
			continue // stale: frame was freed (and possibly reused)
		}
		if cur := m.ExtentTemperature(rec.pid); cur != e.temp {
			heap.Push(&s.tac, tacEntry{idx: e.idx, gen: e.gen, temp: cur})
			continue
		}
		if rec.io > 0 {
			busy = append(busy, e)
			continue
		}
		return e.idx
	}
	return -1
}

// tacRevalidate refreshes a logically-invalidated SSD copy at dirty
// eviction time: TAC writes the page to the SSD alongside the disk write
// only when an invalid version already occupies a frame (§2.5).
func (m *Manager) tacRevalidate(p *sim.Proc, pg *page.Page) error {
	if !m.Enabled() {
		return nil
	}
	if m.lost {
		return device.ErrLost
	}
	if m.quarantined {
		return nil
	}
	s := m.shardOf(pg.ID)
	idx, ok := s.lookup(pg.ID)
	if !ok {
		return nil
	}
	rec := &m.frames[idx]
	if rec.valid {
		return nil
	}
	if m.throttled() {
		m.stats.ThrottleWrites++
		return nil
	}
	rec.valid = true
	rec.lsn = pg.LSN
	m.stats.Revalidations++
	_, err := m.finishAdmit(idx, m.writeFrame(p, idx, pg))
	return err
}
