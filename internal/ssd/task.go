package ssd

import (
	"errors"

	"turbobp/internal/device"
	"turbobp/internal/page"
	"turbobp/internal/sim"
)

// This file holds the run-to-completion twins of the manager's blocking
// entry points. Each twin mirrors its blocking counterpart operation for
// operation — same policy checks in the same order, same stats, same
// buffer-pool discipline — with device waits expressed as continuations, so
// a simulation using either form dispatches the identical event sequence.
// The shared synchronous tails (readOutcome, finishAdmit, allocFrame, the
// policy predicates) live in ssd.go/tac.go and are called by both forms.
//
// Continuation state lives in per-operation structs taken from free lists
// on the Manager, with method continuations bound once per struct, so the
// steady-state task path allocates no closures.

// readOp carries one ReadTask through the device read and its bounded,
// policy-driven retries.
type readOp struct {
	m        *Manager
	t        *sim.Task
	pid      page.ID
	idx      int
	attempt  int
	wantLSN  uint64
	restored bool
	buf      []byte
	vec      [][]byte
	pg       *page.Page
	k        func(bool, error)

	onRead  func(error) // bound to (*readOp).read once
	onRetry func()      // bound to (*readOp).retry once
}

func (m *Manager) getReadOp() *readOp {
	if n := len(m.readFree); n > 0 {
		o := m.readFree[n-1]
		m.readFree[n-1] = nil
		m.readFree = m.readFree[:n-1]
		return o
	}
	o := &readOp{m: m}
	o.onRead = o.read
	o.onRetry = o.retry
	return o
}

func (o *readOp) retry() {
	m := o.m
	o.vec = append(m.getVec(1), o.buf)
	m.dev.ReadTask(o.t, device.PageNum(o.idx), o.vec, o.onRead)
}

func (o *readOp) read(err error) {
	m := o.m
	m.putVec(o.vec)
	o.vec = nil
	rec := &m.frames[o.idx]
	if err != nil {
		m.stats.ReadErrors++
		m.noteDeviceErr(err)
		if m.cfg.Retry.Retryable(err, o.attempt) {
			// Bounded retry, as the blocking form does. The frame's
			// in-flight count stays held across the backoff.
			m.stats.ReadRetries++
			d := m.cfg.Retry.Delay(o.attempt)
			o.attempt++
			if d > 0 {
				o.t.Sleep(d, o.onRetry)
				return
			}
			o.retry()
			return
		}
	}
	rec.io--
	pid, idx, wantLSN, restored, buf, pg, k := o.pid, o.idx, o.wantLSN, o.restored, o.buf, o.pg, o.k
	o.t, o.buf, o.pg, o.k = nil, nil, nil, nil
	m.readFree = append(m.readFree, o)
	k(m.readOutcome(pid, idx, wantLSN, restored, buf, pg, err))
}

// ReadTask is the run-to-completion twin of Read.
func (m *Manager) ReadTask(t *sim.Task, pid page.ID, pg *page.Page, k func(bool, error)) {
	if !m.Enabled() {
		k(false, nil)
		return
	}
	if m.lost {
		k(false, device.ErrLost)
		return
	}
	s := m.shardOf(pid)
	m.recordAccess(s, pid)
	idx, ok := s.lookup(pid)
	if !ok || !m.frames[idx].valid {
		m.stats.Misses++
		k(false, nil)
		return
	}
	rec := &m.frames[idx]
	if m.quarantined && !rec.dirty {
		// Pass-through mode, as in the blocking form.
		m.dropFrame(idx)
		m.stats.Misses++
		k(false, nil)
		return
	}
	if !rec.dirty && m.throttled() {
		m.stats.ThrottleReads++
		m.stats.Misses++
		k(false, nil)
		return
	}
	rec.io++
	o := m.getReadOp()
	o.t, o.pid, o.idx, o.pg, o.k, o.attempt = t, pid, idx, pg, k, 1
	o.wantLSN, o.restored = rec.lsn, rec.restored
	o.buf = m.getBuf()
	o.vec = append(m.getVec(1), o.buf)
	m.dev.ReadTask(t, device.PageNum(idx), o.vec, o.onRead)
}

// wfOp carries one frame write (writeFrameTask or the admit variants)
// through the SSD device write and its bounded retries.
type wfOp struct {
	m       *Manager
	t       *sim.Task
	idx     int
	attempt int
	buf     []byte
	vec     [][]byte
	k       func(error)       // plain completion
	ka      func(bool, error) // admit completion: k(finishAdmit(idx, err))
	kae     func(error)       // admit completion dropping the bool (TAC paths)

	onWritten func(error) // bound to (*wfOp).written once
	onRetry   func()      // bound to (*wfOp).retry once
}

func (m *Manager) getWfOp() *wfOp {
	if n := len(m.wfFree); n > 0 {
		o := m.wfFree[n-1]
		m.wfFree[n-1] = nil
		m.wfFree = m.wfFree[:n-1]
		return o
	}
	o := &wfOp{m: m}
	o.onWritten = o.written
	o.onRetry = o.retry
	return o
}

func (o *wfOp) retry() {
	m := o.m
	o.vec = append(m.getVec(1), o.buf)
	m.dev.WriteTask(o.t, device.PageNum(o.idx), o.vec, o.onWritten)
}

func (o *wfOp) written(err error) {
	m := o.m
	m.putVec(o.vec)
	o.vec = nil
	if err != nil {
		m.stats.WriteErrors++
		m.noteDeviceErr(err)
		if m.cfg.Retry.Retryable(err, o.attempt) {
			m.stats.WriteRetries++
			d := m.cfg.Retry.Delay(o.attempt)
			o.attempt++
			if d > 0 {
				o.t.Sleep(d, o.onRetry)
				return
			}
			o.retry()
			return
		}
	}
	m.putBuf(o.buf)
	m.frames[o.idx].io--
	m.frameIdle(o.idx)
	idx, k, ka, kae := o.idx, o.k, o.ka, o.kae
	o.t, o.buf, o.k, o.ka, o.kae = nil, nil, nil, nil, nil
	m.wfFree = append(m.wfFree, o)
	switch {
	case ka != nil:
		ka(m.finishAdmit(idx, err))
	case kae != nil:
		_, err = m.finishAdmit(idx, err)
		kae(err)
	default:
		k(err)
	}
}

// frameWrite starts the device write for one of the three completion modes;
// exactly one of k, ka, kae is non-nil. The encode-error path takes the
// same completion as the device-write path, as in the blocking forms.
func (m *Manager) frameWrite(t *sim.Task, idx int, pg *page.Page, k func(error), ka func(bool, error), kae func(error)) {
	rec := &m.frames[idx]
	rec.io++
	buf := m.getBuf()
	if err := page.Encode(pg, buf); err != nil {
		m.putBuf(buf)
		rec.io--
		switch {
		case ka != nil:
			ka(m.finishAdmit(idx, err))
		case kae != nil:
			_, err = m.finishAdmit(idx, err)
			kae(err)
		default:
			k(err)
		}
		return
	}
	o := m.getWfOp()
	o.t, o.idx, o.buf, o.k, o.ka, o.kae, o.attempt = t, idx, buf, k, ka, kae, 1
	o.vec = append(m.getVec(1), buf)
	m.dev.WriteTask(t, device.PageNum(idx), o.vec, o.onWritten)
}

// writeFrameTask is the run-to-completion twin of writeFrame.
func (m *Manager) writeFrameTask(t *sim.Task, idx int, pg *page.Page, k func(error)) {
	m.frameWrite(t, idx, pg, k, nil, nil)
}

// wdOp carries one writeDiskTask through the database-disk write.
type wdOp struct {
	m   *Manager
	buf []byte
	vec [][]byte
	k   func(error)

	onWritten func(error) // bound to (*wdOp).written once
}

func (m *Manager) getWdOp() *wdOp {
	if n := len(m.wdFree); n > 0 {
		o := m.wdFree[n-1]
		m.wdFree[n-1] = nil
		m.wdFree = m.wdFree[:n-1]
		return o
	}
	o := &wdOp{m: m}
	o.onWritten = o.written
	return o
}

func (o *wdOp) written(err error) {
	m := o.m
	m.putVec(o.vec)
	m.putBuf(o.buf)
	k := o.k
	o.buf, o.vec, o.k = nil, nil, nil
	m.wdFree = append(m.wdFree, o)
	k(err)
}

// writeDiskTask is the run-to-completion twin of writeDisk.
func (m *Manager) writeDiskTask(t *sim.Task, pg *page.Page, k func(error)) {
	buf := m.getBuf()
	if err := page.Encode(pg, buf); err != nil {
		m.putBuf(buf)
		k(err)
		return
	}
	o := m.getWdOp()
	o.buf, o.k = buf, k
	o.vec = append(m.getVec(1), buf)
	m.disk.WriteEncodedTask(t, pg.ID, o.vec, o.onWritten)
}

// admitTask is the run-to-completion twin of admit.
func (m *Manager) admitTask(t *sim.Task, pg *page.Page, dirty bool, k func(bool, error)) {
	if m.lost {
		k(false, device.ErrLost)
		return
	}
	if m.quarantined {
		k(false, nil) // pass-through: no new admissions
		return
	}
	s := m.shardOf(pg.ID)
	if idx, ok := s.lookup(pg.ID); ok {
		rec := &m.frames[idx]
		if rec.valid && !dirty {
			k(true, nil) // identical clean copy already cached
			return
		}
		// Overwrite in place; publish the new state before the device write.
		if dirty && !rec.dirty {
			m.dirtyCount++
			s.clean.Remove(m.cleanKey(idx))
		}
		rec.valid = true
		rec.dirty = rec.dirty || dirty
		rec.lsn = pg.LSN
		m.touch(idx)
		m.stats.Admissions++
		if dirty {
			m.stats.DirtyAdmits++
		}
		m.frameWrite(t, idx, pg, nil, k, nil)
		return
	}
	idx := m.allocFrame(pg.ID, dirty)
	if idx < 0 {
		k(false, nil)
		return
	}
	m.frames[idx].lsn = pg.LSN
	m.stats.Admissions++
	if dirty {
		m.stats.DirtyAdmits++
	}
	m.frameWrite(t, idx, pg, nil, k, nil)
}

// evictOp carries one OnEvictTask through its per-design routing: the disk
// write-back, the SSD admission and (for DW) the concurrent dual-write join.
type evictOp struct {
	m  *Manager
	t  *sim.Task
	pg *page.Page
	k  func(error)

	// DW dual-write state.
	snapBuf []byte
	snap    page.Page
	done    *sim.Signal
	ssdErr  error
	diskErr error

	spawnDW      func(*sim.Task)   // bound: the dw-ssd-write child body
	onDWAdmit    func(bool, error) // bound: SSD leg completion
	onDWDisk     func(error)       // bound: disk leg completion
	onDWJoin     func()            // bound: both legs done
	onCleanAdmit func(bool, error) // bound: clean-eviction admit completion
	onLCAdmit    func(bool, error) // bound: LC dirty-admit completion
	onTACDisk    func(error)       // bound: TAC disk write-back completion
	finishF      func(error)       // bound to (*evictOp).finish once
}

func (m *Manager) getEvictOp() *evictOp {
	if n := len(m.evictFree); n > 0 {
		o := m.evictFree[n-1]
		m.evictFree[n-1] = nil
		m.evictFree = m.evictFree[:n-1]
		return o
	}
	o := &evictOp{m: m, done: sim.NewSignal(m.env)}
	o.spawnDW = func(child *sim.Task) { o.m.admitTask(child, &o.snap, false, o.onDWAdmit) }
	o.onDWAdmit = func(_ bool, err error) {
		o.ssdErr = err
		o.done.Broadcast()
	}
	o.onDWDisk = func(err error) {
		o.diskErr = err
		o.done.WaitFiredFunc(o.onDWJoin)
	}
	o.onDWJoin = o.dwJoin
	o.onCleanAdmit = func(_ bool, err error) { o.finish(err) }
	o.onLCAdmit = o.lcAdmit
	o.onTACDisk = o.tacDisk
	o.finishF = o.finish
	return o
}

// finish recycles the op before continuing, so k may immediately evict again.
func (o *evictOp) finish(err error) {
	m, k := o.m, o.k
	o.t, o.pg, o.k = nil, nil, nil
	m.evictFree = append(m.evictFree, o)
	k(err)
}

func (o *evictOp) dwJoin() {
	m := o.m
	m.putBuf(o.snapBuf)
	o.snapBuf = nil
	o.snap = page.Page{}
	err := o.diskErr
	if err == nil {
		err = o.ssdErr
	}
	o.finish(err)
}

func (o *evictOp) lcAdmit(ok bool, err error) {
	if err != nil {
		o.finish(err)
		return
	}
	if !ok {
		o.m.writeDiskTask(o.t, o.pg, o.finishF)
		return
	}
	o.finish(nil)
}

func (o *evictOp) tacDisk(err error) {
	if err != nil {
		o.finish(err)
		return
	}
	o.m.tacRevalidateTask(o.t, o.pg, o.finishF)
}

// OnEvictTask is the run-to-completion twin of OnEvict: the same per-design
// routing of a page evicted from the memory buffer pool.
func (m *Manager) OnEvictTask(t *sim.Task, pg *page.Page, dirty, random bool, k func(error)) {
	o := m.getEvictOp()
	o.t, o.pg, o.k = t, pg, k

	if !dirty {
		// evictClean: admit qualifying clean evictions (CW/DW/LC).
		switch m.cfg.Design {
		case CW, DW, LC:
			if !m.admits(pg.ID, random) {
				o.finish(nil)
				return
			}
			if m.throttled() {
				m.stats.ThrottleWrites++
				o.finish(nil)
				return
			}
			m.admitTask(t, pg, false, o.onCleanAdmit)
		default:
			o.finish(nil)
		}
		return
	}
	switch m.cfg.Design {
	case NoSSD, CW:
		m.writeDiskTask(t, pg, o.finishF)
		return

	case DW:
		// Dual-write: SSD and disk writes issued concurrently, the eviction
		// completes when both have (§2.3.2).
		if !m.admits(pg.ID, random) {
			m.writeDiskTask(t, pg, o.finishF)
			return
		}
		if m.throttled() {
			m.stats.ThrottleWrites++
			m.writeDiskTask(t, pg, o.finishF)
			return
		}
		o.snapBuf = m.getBuf()
		o.snap = page.Page{ID: pg.ID, LSN: pg.LSN, Payload: append(o.snapBuf[:0], pg.Payload...)}
		o.ssdErr, o.diskErr = nil, nil
		o.done.Reset()
		m.env.Spawn("dw-ssd-write", o.spawnDW)
		m.writeDiskTask(t, pg, o.onDWDisk)
		return

	case LC:
		if m.checkpointing || !m.admits(pg.ID, random) {
			m.writeDiskTask(t, pg, o.finishF)
			return
		}
		if m.throttled() {
			m.stats.ThrottleWrites++
			m.writeDiskTask(t, pg, o.finishF)
			return
		}
		m.admitTask(t, pg, true, o.onLCAdmit)
		return

	case TAC:
		m.writeDiskTask(t, pg, o.onTACDisk)
		return
	}
	m.writeDiskTask(t, pg, o.finishF)
}

// tacRevalidateTask is the run-to-completion twin of tacRevalidate.
func (m *Manager) tacRevalidateTask(t *sim.Task, pg *page.Page, k func(error)) {
	if !m.Enabled() {
		k(nil)
		return
	}
	if m.lost {
		k(device.ErrLost)
		return
	}
	if m.quarantined {
		k(nil)
		return
	}
	s := m.shardOf(pg.ID)
	idx, ok := s.lookup(pg.ID)
	if !ok {
		k(nil)
		return
	}
	rec := &m.frames[idx]
	if rec.valid {
		k(nil)
		return
	}
	if m.throttled() {
		m.stats.ThrottleWrites++
		k(nil)
		return
	}
	rec.valid = true
	rec.lsn = pg.LSN
	m.stats.Revalidations++
	m.frameWrite(t, idx, pg, nil, nil, k)
}

// tacAdmitOp carries one asynchronous TAC admission (TACOnDiskReadTask)
// through its delay, race check and SSD write.
type tacAdmitOp struct {
	m          *Manager
	child      *sim.Task
	snapBuf    []byte
	snap       page.Page
	stillClean func() bool

	spawnF  func(*sim.Task) // bound: child body (sleeps AsyncAdmitDelay)
	onAwake func()          // bound: delay elapsed
	onAdmit func(error)     // bound: admission finished
}

func (m *Manager) getTacAdmitOp() *tacAdmitOp {
	if n := len(m.taFree); n > 0 {
		o := m.taFree[n-1]
		m.taFree[n-1] = nil
		m.taFree = m.taFree[:n-1]
		return o
	}
	o := &tacAdmitOp{m: m}
	o.spawnF = func(child *sim.Task) {
		o.child = child
		child.Sleep(o.m.cfg.AsyncAdmitDelay, o.onAwake)
	}
	o.onAwake = o.awake
	o.onAdmit = o.admitted
	return o
}

func (o *tacAdmitOp) recycle() {
	m := o.m
	if o.snapBuf != nil {
		m.putBuf(o.snapBuf)
	}
	o.child, o.snapBuf, o.stillClean = nil, nil, nil
	o.snap = page.Page{}
	m.taFree = append(m.taFree, o)
}

func (o *tacAdmitOp) awake() {
	m := o.m
	if !o.stillClean() {
		m.stats.TACAborts++
		o.recycle()
		return
	}
	if m.throttled() {
		m.stats.ThrottleWrites++
		o.recycle()
		return
	}
	m.tacAdmitTask(o.child, &o.snap, o.onAdmit)
}

func (o *tacAdmitOp) admitted(err error) {
	if err != nil && !errors.Is(err, device.ErrLost) {
		panic("ssd: tac admit: " + err.Error())
	}
	// An ErrLost admission is swallowed: the write was optional traffic; the
	// engine notices the loss on its next synchronous SSD operation.
	o.recycle()
}

// TACOnDiskReadTask is the run-to-completion twin of TACOnDiskRead: it
// spawns the same asynchronous admission as a child task instead of a
// goroutine-backed process.
func (m *Manager) TACOnDiskReadTask(pg *page.Page, random bool, stillClean func() bool) {
	if m.cfg.Design != TAC || !m.Enabled() {
		return
	}
	_ = random
	o := m.getTacAdmitOp()
	o.snapBuf = m.getBuf()
	o.snap = page.Page{ID: pg.ID, LSN: pg.LSN, Payload: append(o.snapBuf[:0], pg.Payload...)}
	o.stillClean = stillClean
	m.env.Spawn("tac-admit", o.spawnF)
}

// tacAdmitTask is the run-to-completion twin of tacAdmit.
func (m *Manager) tacAdmitTask(t *sim.Task, snap *page.Page, k func(error)) {
	if m.lost {
		k(device.ErrLost)
		return
	}
	if m.quarantined {
		k(nil) // pass-through: no new admissions
		return
	}
	s := m.shardOf(snap.ID)
	if idx, ok := s.lookup(snap.ID); ok {
		rec := &m.frames[idx]
		if rec.valid {
			k(nil) // already cached
			return
		}
		rec.valid = true
		rec.lsn = snap.LSN
		m.stats.Admissions++
		m.frameWrite(t, idx, snap, nil, nil, k)
		return
	}
	if !m.freqAdmit(s, snap.ID) {
		k(nil) // frequency gate (TinyLFU) refused the extent-path admit
		return
	}
	idx := m.tacAllocFrame(snap.ID)
	if idx < 0 {
		k(nil)
		return
	}
	m.frames[idx].lsn = snap.LSN
	m.stats.Admissions++
	m.frameWrite(t, idx, snap, nil, nil, k)
}
