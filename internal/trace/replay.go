package trace

import (
	"fmt"

	"turbobp/internal/engine"
	"turbobp/internal/sim"
)

// ReplayResult summarizes one replay.
type ReplayResult struct {
	Events     int
	ElapsedSec float64 // virtual seconds consumed
	Engine     engine.Stats
	SSDHits    int64
	SSDMisses  int64
}

// Replay executes a trace against e from within process p, serially.
// Updates write a deterministic function of the event index so two replays
// of the same trace leave identical database contents regardless of the
// SSD design — which is the property that makes trace-driven comparisons
// across designs sound.
func Replay(p *sim.Proc, e *engine.Engine, t *Trace) (*ReplayResult, error) {
	start := p.Now()
	tx := e.Begin()
	open := false
	for i, ev := range t.Events {
		switch ev.Op {
		case OpRead:
			if _, err := e.Get(p, ev.Page); err != nil {
				return nil, fmt.Errorf("trace: event %d: %w", i, err)
			}
		case OpUpdate:
			if !open {
				tx = e.Begin()
				open = true
			}
			stamp := byte(i)
			if err := e.Update(p, tx, ev.Page, func(pl []byte) {
				pl[0] = stamp
				pl[1]++
			}); err != nil {
				return nil, fmt.Errorf("trace: event %d: %w", i, err)
			}
		case OpCommit:
			if err := e.Commit(p, tx); err != nil {
				return nil, fmt.Errorf("trace: event %d: %w", i, err)
			}
			open = false
		case OpScan:
			if err := e.Scan(p, ev.Page, int(ev.Len)); err != nil {
				return nil, fmt.Errorf("trace: event %d: %w", i, err)
			}
		default:
			return nil, fmt.Errorf("trace: event %d has unknown op %d", i, ev.Op)
		}
	}
	if open {
		if err := e.Commit(p, tx); err != nil {
			return nil, err
		}
	}
	ms := e.SSD().Stats()
	return &ReplayResult{
		Events:     len(t.Events),
		ElapsedSec: (p.Now() - start).Seconds(),
		Engine:     e.Stats(),
		SSDHits:    ms.Hits,
		SSDMisses:  ms.Misses,
	}, nil
}
