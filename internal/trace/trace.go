// Package trace provides page-access trace recording, serialization and
// replay. Traces decouple workload capture from cache evaluation: a trace
// generated once (from the synthetic drivers, or by instrumenting a real
// system) can be replayed deterministically against every SSD design, the
// standard methodology in cache studies (the TAC paper itself was
// evaluated partly through trace-driven simulation).
package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"

	"turbobp/internal/page"
)

// Op is a trace event kind.
type Op uint8

// Trace event kinds.
const (
	OpRead   Op = iota + 1 // random point read
	OpUpdate               // point update
	OpCommit               // transaction boundary
	OpScan                 // sequential scan of Len pages from Page
)

// Event is one trace entry.
type Event struct {
	Op   Op
	Page page.ID
	Len  int32 // scan length (OpScan only)
}

// Trace is an ordered sequence of events.
type Trace struct {
	Events []Event
}

// Append adds an event.
func (t *Trace) Append(e Event) { t.Events = append(t.Events, e) }

// Read records a point read of pid.
func (t *Trace) Read(pid page.ID) { t.Append(Event{Op: OpRead, Page: pid}) }

// Update records a point update of pid.
func (t *Trace) Update(pid page.ID) { t.Append(Event{Op: OpUpdate, Page: pid}) }

// Commit records a transaction boundary.
func (t *Trace) Commit() { t.Append(Event{Op: OpCommit}) }

// Scan records a sequential scan.
func (t *Trace) Scan(start page.ID, n int32) {
	t.Append(Event{Op: OpScan, Page: start, Len: n})
}

// Len returns the number of events.
func (t *Trace) Len() int { return len(t.Events) }

// Stats summarizes a trace.
type Stats struct {
	Reads, Updates, Commits, Scans int
	ScanPages                      int64
	DistinctPages                  int
	MaxPage                        page.ID
}

// Stats computes summary counts.
func (t *Trace) Stats() Stats {
	var s Stats
	seen := map[page.ID]bool{}
	note := func(p page.ID) {
		seen[p] = true
		if p > s.MaxPage {
			s.MaxPage = p
		}
	}
	for _, e := range t.Events {
		switch e.Op {
		case OpRead:
			s.Reads++
			note(e.Page)
		case OpUpdate:
			s.Updates++
			note(e.Page)
		case OpCommit:
			s.Commits++
		case OpScan:
			s.Scans++
			s.ScanPages += int64(e.Len)
			note(e.Page)
			if last := e.Page + page.ID(e.Len) - 1; last > s.MaxPage {
				s.MaxPage = last
			}
		}
	}
	s.DistinctPages = len(seen)
	return s
}

// Serialization: a magic header, an event count, then 13 bytes per event.

const (
	magic     = "BPTRACE1"
	eventSize = 13
)

// ErrBadTrace reports a malformed trace stream.
var ErrBadTrace = errors.New("trace: malformed stream")

// WriteTo serializes the trace.
func (t *Trace) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	n := int64(0)
	k, err := bw.WriteString(magic)
	n += int64(k)
	if err != nil {
		return n, err
	}
	var hdr [8]byte
	binary.LittleEndian.PutUint64(hdr[:], uint64(len(t.Events)))
	k, err = bw.Write(hdr[:])
	n += int64(k)
	if err != nil {
		return n, err
	}
	var buf [eventSize]byte
	for _, e := range t.Events {
		buf[0] = byte(e.Op)
		binary.LittleEndian.PutUint64(buf[1:9], uint64(e.Page))
		binary.LittleEndian.PutUint32(buf[9:13], uint32(e.Len))
		k, err = bw.Write(buf[:])
		n += int64(k)
		if err != nil {
			return n, err
		}
	}
	return n, bw.Flush()
}

// ReadFrom parses a serialized trace, replacing t's events.
func (t *Trace) ReadFrom(r io.Reader) (int64, error) {
	br := bufio.NewReader(r)
	n := int64(0)
	head := make([]byte, len(magic)+8)
	k, err := io.ReadFull(br, head)
	n += int64(k)
	if err != nil {
		return n, fmt.Errorf("%w: %v", ErrBadTrace, err)
	}
	if string(head[:len(magic)]) != magic {
		return n, fmt.Errorf("%w: bad magic %q", ErrBadTrace, head[:len(magic)])
	}
	count := binary.LittleEndian.Uint64(head[len(magic):])
	const maxEvents = 1 << 30
	if count > maxEvents {
		return n, fmt.Errorf("%w: %d events", ErrBadTrace, count)
	}
	t.Events = make([]Event, 0, count)
	var buf [eventSize]byte
	for i := uint64(0); i < count; i++ {
		k, err := io.ReadFull(br, buf[:])
		n += int64(k)
		if err != nil {
			return n, fmt.Errorf("%w: event %d: %v", ErrBadTrace, i, err)
		}
		op := Op(buf[0])
		if op < OpRead || op > OpScan {
			return n, fmt.Errorf("%w: event %d has op %d", ErrBadTrace, i, op)
		}
		t.Events = append(t.Events, Event{
			Op:   op,
			Page: page.ID(binary.LittleEndian.Uint64(buf[1:9])),
			Len:  int32(binary.LittleEndian.Uint32(buf[9:13])),
		})
	}
	return n, nil
}

// Save writes the trace to a file.
func (t *Trace) Save(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := t.WriteTo(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Load reads a trace from a file.
func Load(path string) (*Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	t := &Trace{}
	if _, err := t.ReadFrom(f); err != nil {
		return nil, err
	}
	return t, nil
}
