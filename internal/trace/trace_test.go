package trace

import (
	"bytes"
	"errors"
	"path/filepath"
	"reflect"
	"testing"
	"testing/quick"
	"time"

	"turbobp/internal/engine"
	"turbobp/internal/page"
	"turbobp/internal/sim"
	"turbobp/internal/ssd"
)

func sampleTrace() *Trace {
	t := &Trace{}
	t.Read(10)
	t.Update(20)
	t.Commit()
	t.Scan(100, 32)
	t.Read(10)
	return t
}

func TestStats(t *testing.T) {
	tr := sampleTrace()
	s := tr.Stats()
	if s.Reads != 2 || s.Updates != 1 || s.Commits != 1 || s.Scans != 1 {
		t.Errorf("stats = %+v", s)
	}
	if s.ScanPages != 32 {
		t.Errorf("ScanPages = %d", s.ScanPages)
	}
	if s.DistinctPages != 3 {
		t.Errorf("DistinctPages = %d", s.DistinctPages)
	}
	if s.MaxPage != 131 {
		t.Errorf("MaxPage = %d", s.MaxPage)
	}
}

func TestSerializationRoundTrip(t *testing.T) {
	tr := sampleTrace()
	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	var got Trace
	if _, err := got.ReadFrom(&buf); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tr.Events, got.Events) {
		t.Errorf("round trip mismatch")
	}
}

func TestSaveLoad(t *testing.T) {
	path := filepath.Join(t.TempDir(), "x.trace")
	tr := sampleTrace()
	if err := tr.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tr.Events, got.Events) {
		t.Error("file round trip mismatch")
	}
}

func TestReadFromRejectsGarbage(t *testing.T) {
	var tr Trace
	if _, err := tr.ReadFrom(bytes.NewReader([]byte("not a trace file....."))); !errors.Is(err, ErrBadTrace) {
		t.Errorf("err = %v", err)
	}
	// Truncated body.
	var buf bytes.Buffer
	sampleTrace().WriteTo(&buf)
	b := buf.Bytes()
	if _, err := tr.ReadFrom(bytes.NewReader(b[:len(b)-3])); !errors.Is(err, ErrBadTrace) {
		t.Errorf("truncated err = %v", err)
	}
	// Bad op byte.
	b2 := append([]byte(nil), b...)
	b2[len(magic)+8] = 99
	if _, err := tr.ReadFrom(bytes.NewReader(b2)); !errors.Is(err, ErrBadTrace) {
		t.Errorf("bad-op err = %v", err)
	}
}

func TestSerializationProperty(t *testing.T) {
	prop := func(raw []uint32) bool {
		tr := &Trace{}
		for i, v := range raw {
			switch v % 4 {
			case 0:
				tr.Read(page.ID(v))
			case 1:
				tr.Update(page.ID(v))
			case 2:
				tr.Commit()
			case 3:
				tr.Scan(page.ID(v), int32(i%100+1))
			}
		}
		var buf bytes.Buffer
		if _, err := tr.WriteTo(&buf); err != nil {
			return false
		}
		var got Trace
		if _, err := got.ReadFrom(&buf); err != nil {
			return false
		}
		if len(tr.Events) == 0 {
			return len(got.Events) == 0
		}
		return reflect.DeepEqual(tr.Events, got.Events)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func replayOn(t *testing.T, design ssd.Design, tr *Trace) (*ReplayResult, map[page.ID][]byte) {
	t.Helper()
	env := sim.NewEnv()
	e := engine.New(env, engine.Config{
		Design: design, DBPages: 256, PoolPages: 16, SSDFrames: 64,
		PayloadSize: 16, CPUPerAccess: -1,
	})
	if err := e.FormatDB(); err != nil {
		t.Fatal(err)
	}
	var res *ReplayResult
	done := false
	env.Go("replay", func(p *sim.Proc) {
		var err error
		res, err = Replay(p, e, tr)
		if err != nil {
			t.Error(err)
		}
		done = true
	})
	for !done {
		env.Run(env.Now() + time.Second)
	}
	// Capture final contents.
	final := map[page.ID][]byte{}
	done2 := false
	env.Go("capture", func(p *sim.Proc) {
		for pid := page.ID(0); pid < 256; pid++ {
			f, err := e.Get(p, pid)
			if err != nil {
				t.Error(err)
				break
			}
			final[pid] = append([]byte(nil), f.Pg.Payload...)
		}
		done2 = true
	})
	for !done2 {
		env.Run(env.Now() + time.Second)
	}
	e.StopBackground()
	env.Run(env.Now() + time.Second)
	env.Shutdown()
	return res, final
}

func mixedTrace() *Trace {
	tr := &Trace{}
	for i := 0; i < 200; i++ {
		pid := page.ID((i * 37) % 200)
		if i%3 == 0 {
			tr.Update(pid)
		} else {
			tr.Read(pid)
		}
		if i%5 == 4 {
			tr.Commit()
		}
	}
	tr.Scan(0, 64)
	tr.Commit()
	return tr
}

func TestReplayExecutesAllEvents(t *testing.T) {
	tr := mixedTrace()
	res, _ := replayOn(t, ssd.LC, tr)
	if res.Events != tr.Len() {
		t.Errorf("Events = %d, want %d", res.Events, tr.Len())
	}
	if res.Engine.Updates == 0 || res.Engine.Commits == 0 || res.Engine.ScanPages != 64 {
		t.Errorf("engine stats = %+v", res.Engine)
	}
}

// TestReplayDesignIndependentContents is the soundness property of
// trace-driven comparison: the same trace leaves byte-identical database
// state under every design.
func TestReplayDesignIndependentContents(t *testing.T) {
	tr := mixedTrace()
	_, base := replayOn(t, ssd.NoSSD, tr)
	for _, d := range []ssd.Design{ssd.CW, ssd.DW, ssd.LC, ssd.TAC} {
		_, got := replayOn(t, d, tr)
		for pid, want := range base {
			if !bytes.Equal(got[pid], want) {
				t.Errorf("%s: page %d contents diverge", d, pid)
				break
			}
		}
	}
}

func TestReplayAutoCommitsTail(t *testing.T) {
	tr := &Trace{}
	tr.Update(1) // no explicit commit
	res, _ := replayOn(t, ssd.NoSSD, tr)
	if res.Engine.Commits != 1 {
		t.Errorf("Commits = %d; a trailing open transaction must be committed", res.Engine.Commits)
	}
}
