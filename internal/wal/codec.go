package wal

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"time"

	"turbobp/internal/page"
)

// Binary log record codec. The in-memory Log keeps decoded records for the
// simulated backend; this codec serializes them for file-backed logs and
// for exporting/importing recovery state. Each record is framed as:
//
//	offset  size  field
//	0       4     length of everything after this field
//	4       4     CRC-32C of everything after this field
//	8       8     LSN
//	16      1     type
//	17      8     page id
//	25      8     tx id
//	33      8     start LSN (checkpoints)
//	41      8     append time (virtual, nanoseconds)
//	49      4     payload length
//	53      ...   payload
//
// A stream is a concatenation of frames; Decode detects truncation and
// corruption, so replay stops cleanly at the first torn record — the
// classic write-ahead log recovery contract.

const frameHeader = 53

var codecTable = crc32.MakeTable(crc32.Castagnoli)

// ErrCorruptRecord reports a framing or checksum failure.
var ErrCorruptRecord = errors.New("wal: corrupt record")

// ErrTruncated reports a partial record at the end of a stream (a torn
// write); everything before it is valid.
var ErrTruncated = errors.New("wal: truncated record")

// EncodeRecord appends the serialized form of r to dst and returns the
// extended slice. The frame is built in place, so the only allocation is
// dst's own amortized growth.
func EncodeRecord(dst []byte, r Record) []byte {
	bodyLen := frameHeader - 8 + len(r.Payload)
	start := len(dst)
	need := 8 + bodyLen
	if cap(dst)-len(dst) < need {
		grown := make([]byte, len(dst), 2*cap(dst)+need)
		copy(grown, dst)
		dst = grown
	}
	dst = dst[:start+need]
	body := dst[start+8:]
	binary.LittleEndian.PutUint64(body[0:8], r.LSN)
	body[8] = byte(r.Type)
	binary.LittleEndian.PutUint64(body[9:17], uint64(r.Page))
	binary.LittleEndian.PutUint64(body[17:25], r.TxID)
	binary.LittleEndian.PutUint64(body[25:33], r.StartLSN)
	binary.LittleEndian.PutUint64(body[33:41], uint64(r.At))
	binary.LittleEndian.PutUint32(body[41:45], uint32(len(r.Payload)))
	copy(body[45:], r.Payload)
	binary.LittleEndian.PutUint32(dst[start:start+4], uint32(bodyLen))
	binary.LittleEndian.PutUint32(dst[start+4:start+8], crc32.Checksum(body, codecTable))
	return dst
}

// DecodeRecord parses one record from buf, returning it and the number of
// bytes consumed. It returns ErrTruncated when buf holds only part of a
// record and ErrCorruptRecord when the frame fails validation.
func DecodeRecord(buf []byte) (Record, int, error) {
	if len(buf) < 8 {
		return Record{}, 0, ErrTruncated
	}
	n := int(binary.LittleEndian.Uint32(buf[0:4]))
	if n == 0 && binary.LittleEndian.Uint32(buf[4:8]) == 0 {
		// An all-zero frame header is the clean end of a zero-filled
		// (preallocated or torn-then-zero-padded) log region, not
		// corruption: replay stops here.
		return Record{}, 0, ErrTruncated
	}
	if n < frameHeader-8 {
		return Record{}, 0, fmt.Errorf("%w: impossible body length %d", ErrCorruptRecord, n)
	}
	if len(buf) < 8+n {
		return Record{}, 0, ErrTruncated
	}
	body := buf[8 : 8+n]
	if got, want := crc32.Checksum(body, codecTable), binary.LittleEndian.Uint32(buf[4:8]); got != want {
		return Record{}, 0, fmt.Errorf("%w: checksum %#x, want %#x", ErrCorruptRecord, got, want)
	}
	r := Record{
		LSN:      binary.LittleEndian.Uint64(body[0:8]),
		Type:     Type(body[8]),
		Page:     page.ID(binary.LittleEndian.Uint64(body[9:17])),
		TxID:     binary.LittleEndian.Uint64(body[17:25]),
		StartLSN: binary.LittleEndian.Uint64(body[25:33]),
		At:       time.Duration(binary.LittleEndian.Uint64(body[33:41])),
	}
	plen := int(binary.LittleEndian.Uint32(body[41:45]))
	if plen != len(body)-45 {
		return Record{}, 0, fmt.Errorf("%w: payload length %d in a %d-byte body", ErrCorruptRecord, plen, len(body))
	}
	if plen > 0 {
		r.Payload = append([]byte(nil), body[45:]...)
	}
	return r, 8 + n, nil
}

// EncodeStream serializes records into one byte stream.
func EncodeStream(records []Record) []byte {
	var out []byte
	for _, r := range records {
		out = EncodeRecord(out, r)
	}
	return out
}

// DecodeStream parses records until the stream ends. A trailing torn
// record is tolerated (the records before it are returned with a nil
// error), matching recovery semantics; mid-stream corruption returns
// ErrCorruptRecord with the records decoded so far.
func DecodeStream(buf []byte) ([]Record, error) {
	var out []Record
	for len(buf) > 0 {
		r, n, err := DecodeRecord(buf)
		if errors.Is(err, ErrTruncated) {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, r)
		buf = buf[n:]
	}
	return out, nil
}

// WriteTo serializes the log's durable records to w (an export of exactly
// the state recovery may rely on).
func (l *Log) WriteTo(w io.Writer) (int64, error) {
	var buf []byte
	for _, b := range l.durable.blocks {
		for _, r := range b {
			buf = EncodeRecord(buf, r)
		}
	}
	n, err := w.Write(buf)
	return int64(n), err
}

// ReadDurable replaces the log's durable records with the stream read from
// r, as an import after process restart would. The next LSN advances past
// the highest imported record.
func (l *Log) ReadDurable(r io.Reader) error {
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(r); err != nil {
		return err
	}
	recs, err := DecodeStream(buf.Bytes())
	if err != nil {
		return err
	}
	l.durable.reset(recs)
	l.pending = nil
	l.pendingB = 0
	for _, rec := range recs {
		if rec.LSN >= l.nextLSN {
			l.nextLSN = rec.LSN + 1
		}
		if rec.LSN > l.flushedLSN {
			l.flushedLSN = rec.LSN
		}
	}
	return nil
}
