package wal

import (
	"bytes"
	"errors"
	"reflect"
	"testing"
	"testing/quick"

	"turbobp/internal/device"
	"turbobp/internal/page"
	"turbobp/internal/sim"
)

func sampleRecords() []Record {
	return []Record{
		{LSN: 1, Type: TypeUpdate, Page: 42, TxID: 7, Payload: []byte("abc")},
		{LSN: 2, Type: TypeCommit, TxID: 7},
		{LSN: 3, Type: TypeCheckpoint, StartLSN: 2, Payload: []byte{1, 2, 3, 4}},
		{LSN: 4, Type: TypeUpdate, Page: 1 << 40, TxID: 9, Payload: nil},
	}
}

func TestCodecRoundTrip(t *testing.T) {
	in := sampleRecords()
	out, err := DecodeStream(EncodeStream(in))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Errorf("round trip mismatch:\n in=%+v\nout=%+v", in, out)
	}
}

func TestDecodeTornTailTolerated(t *testing.T) {
	buf := EncodeStream(sampleRecords())
	// Chop mid-way through the final record: recovery keeps the prefix.
	out, err := DecodeStream(buf[:len(buf)-5])
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 3 {
		t.Errorf("decoded %d records from torn stream, want 3", len(out))
	}
}

func TestDecodeCorruptionDetected(t *testing.T) {
	buf := EncodeStream(sampleRecords())
	buf[20] ^= 0xFF // inside the first record's body
	out, err := DecodeStream(buf)
	if !errors.Is(err, ErrCorruptRecord) {
		t.Errorf("err = %v, want ErrCorruptRecord", err)
	}
	if len(out) != 0 {
		t.Errorf("decoded %d records before corruption, want 0", len(out))
	}
}

func TestDecodeImpossibleLength(t *testing.T) {
	var buf [8]byte // length 0 body but a nonzero checksum: not zero-fill
	buf[4] = 1
	if _, _, err := DecodeRecord(buf[:]); !errors.Is(err, ErrCorruptRecord) {
		t.Errorf("err = %v", err)
	}
}

func TestDecodeZeroFillIsTruncation(t *testing.T) {
	// An all-zero header is the clean end of a zero-filled log region.
	var buf [8]byte
	if _, _, err := DecodeRecord(buf[:]); !errors.Is(err, ErrTruncated) {
		t.Errorf("err = %v, want ErrTruncated", err)
	}
}

func TestCodecRoundTripProperty(t *testing.T) {
	prop := func(lsn uint64, typ uint8, pg int64, tx uint64, start uint64, payload []byte) bool {
		if len(payload) > 1000 {
			payload = payload[:1000]
		}
		in := Record{
			LSN: lsn, Type: Type(typ%3 + 1), Page: pageIDOf(pg), TxID: tx,
			StartLSN: start,
		}
		if len(payload) > 0 {
			in.Payload = payload
		}
		got, n, err := DecodeRecord(EncodeRecord(nil, in))
		if err != nil || n == 0 {
			return false
		}
		return reflect.DeepEqual(in, got)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: any single bit flip anywhere in an encoded record is detected
// (as corruption or truncation), never silently accepted as different data.
func TestCodecBitFlipProperty(t *testing.T) {
	base := EncodeRecord(nil, Record{LSN: 9, Type: TypeUpdate, Page: 5, Payload: []byte("payload!")})
	orig, _, _ := DecodeRecord(base)
	prop := func(pos uint16, bit uint8) bool {
		buf := append([]byte(nil), base...)
		buf[int(pos)%len(buf)] ^= 1 << (bit % 8)
		got, _, err := DecodeRecord(buf)
		if err != nil {
			return true // detected
		}
		// A flip in the length field can still decode if... it cannot:
		// the checksum covers the body and the length selects the body.
		return reflect.DeepEqual(got, orig)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestLogExportImport(t *testing.T) {
	env := sim.NewEnv()
	dev := device.NewHDD(env, device.PaperHDDProfile(), 1<<20)
	l := New(env, dev, 8192, 1<<20)
	env.Go("t", func(p *sim.Proc) {
		for i := 0; i < 5; i++ {
			lsn := l.Append(Record{Type: TypeUpdate, Page: 1, Payload: []byte{byte(i)}})
			l.Flush(p, lsn)
		}
		l.Append(Record{Type: TypeUpdate, Page: 2}) // pending: not exported
	})
	env.Run(-1)

	var buf bytes.Buffer
	if _, err := l.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}

	l2 := New(sim.NewEnv(), dev, 8192, 1<<20)
	if err := l2.ReadDurable(&buf); err != nil {
		t.Fatal(err)
	}
	if len(l2.Durable()) != 5 {
		t.Fatalf("imported %d records, want 5", len(l2.Durable()))
	}
	if l2.NextLSN() != 6 {
		t.Errorf("NextLSN = %d, want 6", l2.NextLSN())
	}
	if l2.FlushedLSN() != 5 {
		t.Errorf("FlushedLSN = %d, want 5", l2.FlushedLSN())
	}
	if !reflect.DeepEqual(l.Durable(), l2.Durable()) {
		t.Error("imported records differ")
	}
}

// pageIDOf converts a raw int64 to a page id for the property test.
func pageIDOf(v int64) page.ID { return page.ID(v) }
