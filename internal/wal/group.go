package wal

import (
	"sync"
	"time"
)

// GroupCommitter coalesces concurrent commit-durability requests into
// flights, turning N committers' N fsyncs into ~1. It is a wall-clock
// concurrency primitive for the file-backed engine — the simulated WAL's
// virtual-time flush machinery (Flush/FlushTask) is untouched.
//
// Protocol (classic leader/follower handoff): a committer whose log data is
// already written to the OS file calls Commit. The first arrival with no
// flight forming becomes the leader: it opens a flight, waits up to MaxDelay
// for followers to join (or until MaxBatch of them have), then performs one
// sync covering everyone aboard and releases them. Followers park on the
// flight's done channel. Arrivals that find a full flight wait for it to
// depart and then retry, usually becoming the next leader.
//
// Correctness: a committer joins a flight only after its own appends are in
// the file, joins happen under the committer lock, and the leader snapshots
// membership before syncing — so the single fsync is ordered after every
// member's writes.
type GroupCommitter struct {
	sync     func() error
	maxBatch int
	maxDelay time.Duration
	solo     bool

	mu     sync.Mutex
	flight *gcFlight
	stats  GroupStats
}

// gcFlight is one in-flight fsync batch.
type gcFlight struct {
	done chan struct{} // closed after the leader's sync; err is then readable
	full chan struct{} // closed by the follower that fills the flight
	n    int
	err  error
}

// GroupStats counts the coalescer's work. Syncs/Commits is the amortization
// the group-commit benchmark reports.
type GroupStats struct {
	Commits   int64 // Commit calls completed or aboard a departed flight
	Syncs     int64 // fsyncs issued
	MaxFlight int   // largest flight observed
}

// NewGroupCommitter returns a coalescer issuing durability via sync.
// maxBatch bounds a flight's size (minimum 1); maxDelay is how long a
// leader holds the door for followers (0 = depart immediately, which
// degrades to near-solo behavior). solo disables coalescing entirely —
// every Commit performs its own sync — and exists so benchmarks can
// measure the amortization honestly.
func NewGroupCommitter(sync func() error, maxBatch int, maxDelay time.Duration, solo bool) *GroupCommitter {
	if maxBatch < 1 {
		maxBatch = 1
	}
	return &GroupCommitter{sync: sync, maxBatch: maxBatch, maxDelay: maxDelay, solo: solo}
}

// Commit makes the caller's already-written log data durable, batching with
// concurrent committers. Safe for concurrent use; blocks until a sync
// covering the caller has completed and returns that sync's error.
func (g *GroupCommitter) Commit() error {
	if g.solo {
		g.mu.Lock()
		g.stats.Commits++
		g.stats.Syncs++
		if g.stats.MaxFlight < 1 {
			g.stats.MaxFlight = 1
		}
		g.mu.Unlock()
		return g.sync()
	}
	g.mu.Lock()
	for {
		f := g.flight
		if f == nil {
			// Leader: open a flight, hold the door, sync for everyone.
			f = &gcFlight{done: make(chan struct{}), full: make(chan struct{}), n: 1}
			g.flight = f
			g.mu.Unlock()
			if g.maxDelay > 0 {
				t := time.NewTimer(g.maxDelay)
				select {
				case <-f.full:
					t.Stop()
				case <-t.C:
				}
			}
			g.mu.Lock()
			g.flight = nil // membership sealed; next arrival starts a new flight
			g.stats.Commits += int64(f.n)
			g.stats.Syncs++
			if f.n > g.stats.MaxFlight {
				g.stats.MaxFlight = f.n
			}
			g.mu.Unlock()
			f.err = g.sync()
			close(f.done)
			return f.err
		}
		if f.n < g.maxBatch {
			// Follower: hop aboard and park.
			f.n++
			filled := f.n == g.maxBatch
			g.mu.Unlock()
			if filled {
				close(f.full)
			}
			<-f.done
			return f.err
		}
		// Flight full but not yet departed: wait it out, then retry.
		g.mu.Unlock()
		<-f.done
		g.mu.Lock()
	}
}

// Stats returns a snapshot of the coalescer's counters.
func (g *GroupCommitter) Stats() GroupStats {
	g.mu.Lock()
	s := g.stats
	g.mu.Unlock()
	return s
}
