package wal

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestGroupCommitterAmortizes checks that concurrent committers share
// fsyncs: with a generous hold-the-door delay, syncs must come out well
// under one per commit, and every commit must be covered by a sync that
// started after it joined.
func TestGroupCommitterAmortizes(t *testing.T) {
	var syncs atomic.Int64
	g := NewGroupCommitter(func() error {
		syncs.Add(1)
		time.Sleep(200 * time.Microsecond) // a realistic fsync is not free
		return nil
	}, 64, 2*time.Millisecond, false)

	const commits = 200
	var wg sync.WaitGroup
	for i := 0; i < commits; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := g.Commit(); err != nil {
				t.Errorf("Commit: %v", err)
			}
		}()
	}
	wg.Wait()

	s := g.Stats()
	if s.Commits != commits {
		t.Fatalf("Commits = %d, want %d", s.Commits, commits)
	}
	if s.Syncs != syncs.Load() {
		t.Fatalf("Stats.Syncs = %d but sync ran %d times", s.Syncs, syncs.Load())
	}
	if s.Syncs >= commits {
		t.Fatalf("no amortization: %d syncs for %d commits", s.Syncs, commits)
	}
	if s.MaxFlight < 2 {
		t.Fatalf("MaxFlight = %d, want >= 2", s.MaxFlight)
	}
}

// TestGroupCommitterSolo pins the comparison mode: one sync per commit.
func TestGroupCommitterSolo(t *testing.T) {
	var syncs atomic.Int64
	g := NewGroupCommitter(func() error { syncs.Add(1); return nil }, 64, time.Millisecond, true)
	var wg sync.WaitGroup
	for i := 0; i < 50; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := g.Commit(); err != nil {
				t.Errorf("Commit: %v", err)
			}
		}()
	}
	wg.Wait()
	if got := syncs.Load(); got != 50 {
		t.Fatalf("solo mode ran %d syncs for 50 commits", got)
	}
	if s := g.Stats(); s.Commits != 50 || s.Syncs != 50 || s.MaxFlight != 1 {
		t.Fatalf("solo stats = %+v", s)
	}
}

// TestGroupCommitterMaxBatch seals flights at the bound: every flight the
// stats observed must be <= maxBatch.
func TestGroupCommitterMaxBatch(t *testing.T) {
	g := NewGroupCommitter(func() error {
		time.Sleep(100 * time.Microsecond)
		return nil
	}, 4, 5*time.Millisecond, false)
	var wg sync.WaitGroup
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			g.Commit()
		}()
	}
	wg.Wait()
	s := g.Stats()
	if s.Commits != 64 {
		t.Fatalf("Commits = %d, want 64", s.Commits)
	}
	if s.MaxFlight > 4 {
		t.Fatalf("MaxFlight = %d exceeds maxBatch 4", s.MaxFlight)
	}
	// 64 commits at <= 4 per flight needs >= 16 syncs.
	if s.Syncs < 16 {
		t.Fatalf("Syncs = %d, impossible with maxBatch 4 and 64 commits", s.Syncs)
	}
}

// TestGroupCommitterError propagates the leader's sync error to every
// member of the flight.
func TestGroupCommitterError(t *testing.T) {
	boom := errors.New("device on fire")
	g := NewGroupCommitter(func() error {
		time.Sleep(200 * time.Microsecond)
		return boom
	}, 64, 2*time.Millisecond, false)
	var wg sync.WaitGroup
	var bad atomic.Int64
	for i := 0; i < 20; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := g.Commit(); !errors.Is(err, boom) {
				bad.Add(1)
			}
		}()
	}
	wg.Wait()
	if bad.Load() != 0 {
		t.Fatalf("%d commits did not see the sync error", bad.Load())
	}
}
