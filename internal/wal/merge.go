package wal

import (
	"hash/fnv"
	"sort"
)

// This file defines the deterministic global order over the logs of a
// sharded engine. Each shard appends to its own Log (so group commit and
// log-device modelling stay per-shard and contention-free); the cluster's
// single serial history is recovered after the fact by merging the durable
// streams on the total order (At, shard, LSN). At ties between shards are
// real — two shards commit in the same virtual instant — and the shard
// index breaks them the same way the cluster's barrier merge breaks
// message ties by source kernel, so the merged stream is a pure function
// of the simulation and identical at every execution width.

// MergedRecord is one entry of a cross-shard merged log stream.
type MergedRecord struct {
	Shard int
	Record
}

// MergeDurable merges the durable streams of the given per-shard logs
// into one sequence ordered by (At, shard, LSN). Within a shard LSN order
// and At order coincide, so the result is also a legal interleaving of
// the per-shard histories.
func MergeDurable(logs []*Log) []MergedRecord {
	total := 0
	for _, l := range logs {
		total += l.durable.count
	}
	out := make([]MergedRecord, 0, total)
	for s, l := range logs {
		for _, r := range l.Durable() {
			out = append(out, MergedRecord{Shard: s, Record: r})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := &out[i], &out[j]
		if a.At != b.At {
			return a.At < b.At
		}
		if a.Shard != b.Shard {
			return a.Shard < b.Shard
		}
		return a.LSN < b.LSN
	})
	return out
}

// MergeChecksum folds the merged stream's identifying fields (At, shard,
// LSN, type, page, txid) into one FNV-1a hash. Experiments print it as a
// compact witness that the merged global history — not just aggregate
// counters — is identical across execution widths.
func MergeChecksum(logs []*Log) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	put := func(v uint64) {
		for i := 0; i < 8; i++ {
			buf[i] = byte(v >> (8 * i))
		}
		h.Write(buf[:])
	}
	for _, m := range MergeDurable(logs) {
		put(uint64(m.At))
		put(uint64(m.Shard))
		put(m.LSN)
		put(uint64(m.Type))
		put(uint64(m.Page))
		put(m.TxID)
	}
	return h.Sum64()
}
