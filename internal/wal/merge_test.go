package wal

import (
	"testing"
	"time"

	"turbobp/internal/page"
	"turbobp/internal/sim"
)

// mergeFixture builds three logs whose durable streams interleave in
// virtual time, including an exact At tie across shards.
func mergeFixture(t *testing.T) []*Log {
	t.Helper()
	logs := make([]*Log, 3)
	envs := make([]*sim.Env, 3)
	for i := range logs {
		env := sim.NewEnv()
		l, _ := newTestLog(env)
		logs[i] = l
		envs[i] = env
	}
	// shard 0: records at t=1ms and t=3ms; shard 1: t=2ms and t=3ms (an
	// exact tie with shard 0's second); shard 2: both at t=0.
	app := func(s int, at time.Duration, pid int64) {
		envs[s].Run(at) // empty queue: advances the clock to at
		logs[s].Append(Record{Type: TypeUpdate, Page: page.ID(pid)})
	}
	app(2, 0, 20)
	app(2, 0, 21)
	app(0, 1*time.Millisecond, 1)
	app(1, 2*time.Millisecond, 10)
	app(0, 3*time.Millisecond, 2)
	app(1, 3*time.Millisecond, 11)
	for s, l := range logs {
		l := l
		envs[s].Go("flusher", func(p *sim.Proc) {
			l.Flush(p, l.NextLSN()-1)
		})
		envs[s].Run(-1)
	}
	return logs
}

func TestMergeDurableOrder(t *testing.T) {
	logs := mergeFixture(t)
	m := MergeDurable(logs)
	if len(m) != 6 {
		t.Fatalf("merged %d records, want 6", len(m))
	}
	wantShard := []int{2, 2, 0, 1, 0, 1}
	wantPage := []int64{20, 21, 1, 10, 2, 11}
	for i, r := range m {
		if r.Shard != wantShard[i] || int64(r.Page) != wantPage[i] {
			t.Errorf("merged[%d] = shard %d page %d, want shard %d page %d",
				i, r.Shard, r.Page, wantShard[i], wantPage[i])
		}
	}
}

func TestMergeChecksumStable(t *testing.T) {
	a := MergeChecksum(mergeFixture(t))
	b := MergeChecksum(mergeFixture(t))
	if a != b {
		t.Errorf("checksum not reproducible: %#x vs %#x", a, b)
	}
	if a == MergeChecksum(nil) {
		t.Error("checksum of non-empty stream equals empty checksum")
	}
}

func TestAppendStampsVirtualTime(t *testing.T) {
	env := sim.NewEnv()
	l, _ := newTestLog(env)
	env.Run(7 * time.Millisecond)
	l.Append(Record{Type: TypeUpdate, Page: 1})
	env.Go("flusher", func(p *sim.Proc) { l.Flush(p, 1) })
	env.Run(-1)
	d := l.Durable()
	if len(d) != 1 || d[0].At != 7*time.Millisecond {
		t.Fatalf("durable = %+v, want one record stamped at 7ms", d)
	}
}
