package wal

import (
	"encoding/binary"
	"errors"
	"fmt"

	"turbobp/internal/device"
)

// This file is the restart half of the persisted log (SetPersist): reading
// the record stream a previous process — possibly one killed mid-write —
// left on the log device, and re-establishing the in-memory durable set,
// LSN counters and write position from it.
//
// On-device layout: every flush batch starts at a page boundary, records
// may straddle pages within a batch, and the batch's tail page is
// zero-padded. Replay therefore walks pages from the start of the device,
// decoding records and skipping pad regions at page boundaries, and stops
// at the first page-aligned position holding no record. Two hazards make
// the stop condition stricter than "decode failed":
//
//   - A torn tail: the process died mid-batch, leaving a prefix of the
//     batch's pages. The partial record (or garbage) ends replay; every
//     record before it is intact (each frame is CRC-protected).
//   - Stale bytes: pages written by an earlier incarnation beyond the
//     current end of log. A record there decodes fine but its LSN does not
//     continue the stream, so the LSN-continuity check rejects it. As a
//     belt-and-braces measure LoadDurable also zeroes the region between
//     the recovered end of log and the first already-zero page, so stale
//     bytes never survive a reopen at all.

// maxRecordBody bounds a persisted record's claimed body length; anything
// larger in a header is treated as a torn tail rather than trusted (a torn
// header could otherwise send replay scanning gigabytes of zeros).
const maxRecordBody = 1 << 26

// LoadDurable rebuilds the log's durable record set from the persisted log
// device after a reopen (device.OpenFileExisting). It replaces the durable
// records, clears pending state, advances NextLSN/FlushedLSN past the
// highest recovered record, positions the next flush after the recovered
// end of log, and scrubs any torn or stale tail bytes. Call it once,
// before the first Append, on a log whose device holds a previous
// incarnation's stream; a fresh (all-zero) device yields an empty log.
func (l *Log) LoadDurable() error {
	if !l.persist {
		return errors.New("wal: LoadDurable requires persist mode (SetPersist)")
	}
	pg := make([]byte, l.pageSize)
	data := make([]byte, 0, 16*l.pageSize)
	var pagesRead device.PageNum
	var readErr error
	readPage := func() bool {
		if pagesRead >= l.capacity {
			return false
		}
		if err := l.dev.Read(nil, pagesRead, [][]byte{pg}); err != nil {
			readErr = fmt.Errorf("wal: load durable: page %d: %w", pagesRead, err)
			return false
		}
		pagesRead++
		data = append(data, pg...)
		return true
	}

	var recs []Record
	off := 0 // decode position in data
	end := 0 // byte offset just past the last accepted record
	expect := uint64(0)
scan:
	for {
		for len(data)-off < 8 {
			if !readPage() {
				break scan
			}
		}
		hdr := data[off : off+8]
		if binary.LittleEndian.Uint64(hdr) == 0 {
			if off%l.pageSize == 0 {
				break // a batch never starts with padding: end of log
			}
			off = (off/l.pageSize + 1) * l.pageSize // skip the batch's pad
			continue
		}
		n := int(binary.LittleEndian.Uint32(hdr[0:4]))
		if n < frameHeader-8 || n > maxRecordBody {
			break // garbage header: torn tail
		}
		for len(data)-off < 8+n {
			if !readPage() {
				break scan // record runs past the written region: torn tail
			}
		}
		r, sz, err := DecodeRecord(data[off:])
		if err != nil {
			break // CRC or framing failure: torn tail
		}
		if expect != 0 && r.LSN != expect {
			break // stale bytes from an earlier incarnation
		}
		recs = append(recs, r)
		expect = r.LSN + 1
		off += sz
		end = off
	}
	if readErr != nil {
		return readErr
	}

	l.durable.reset(recs)
	l.pending = nil
	l.pendingB = 0
	for _, rec := range recs {
		if rec.LSN >= l.nextLSN {
			l.nextLSN = rec.LSN + 1
		}
		if rec.LSN > l.flushedLSN {
			l.flushedLSN = rec.LSN
		}
	}
	l.writePos = device.PageNum((end + l.pageSize - 1) / l.pageSize)
	return l.scrubTail()
}

// scrubTail zeroes device pages from the write position to the first
// already-zero page, erasing torn-tail and stale bytes so the next reopen's
// replay cannot mistake them for live records.
func (l *Log) scrubTail() error {
	pg := make([]byte, l.pageSize)
	var zero []byte
	for p := l.writePos; p < l.capacity; p++ {
		if err := l.dev.Read(nil, p, [][]byte{pg}); err != nil {
			return fmt.Errorf("wal: scrub tail: read page %d: %w", p, err)
		}
		allZero := true
		for _, b := range pg {
			if b != 0 {
				allZero = false
				break
			}
		}
		if allZero {
			return nil
		}
		if zero == nil {
			zero = make([]byte, l.pageSize)
		}
		if err := l.dev.Write(nil, p, [][]byte{zero}); err != nil {
			return fmt.Errorf("wal: scrub tail: zero page %d: %w", p, err)
		}
	}
	return nil
}
