package wal

import (
	"os"
	"path/filepath"
	"testing"

	"turbobp/internal/device"
	"turbobp/internal/page"
	"turbobp/internal/sim"
)

const persistPageSize = 8192

func newPersistLog(t *testing.T, path string, existing bool) (*Log, *device.File) {
	t.Helper()
	open := device.OpenFile
	if existing {
		open = device.OpenFileExisting
	}
	dev, err := open(path, persistPageSize, 256)
	if err != nil {
		t.Fatalf("open log device: %v", err)
	}
	t.Cleanup(func() { dev.Close() })
	l := New(sim.NewEnv(), dev, persistPageSize, 256)
	l.SetPersist(true)
	return l, dev
}

// flushOne appends a record and flushes it in its own batch.
func flushOne(t *testing.T, l *Log, r Record) uint64 {
	t.Helper()
	env := sim.NewEnv()
	var lsn uint64
	env.Go("flush", func(p *sim.Proc) {
		lsn = l.Append(r)
		l.Flush(p, lsn)
	})
	env.Run(-1)
	return lsn
}

// TestPersistRoundTrip pins the reopen contract: records flushed by one log
// incarnation are reloaded by the next, LSN assignment continues where it
// left off, and a third incarnation sees both generations.
func TestPersistRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l1, _ := newPersistLog(t, path, false)
	for i := 0; i < 5; i++ {
		flushOne(t, l1, Record{Type: TypeUpdate, Page: page.ID(i), TxID: uint64(i + 1),
			Payload: []byte{byte('a' + i), byte(i)}})
	}
	flushOne(t, l1, Record{Type: TypeCommit, TxID: 5})

	l2, _ := newPersistLog(t, path, true)
	if err := l2.LoadDurable(); err != nil {
		t.Fatalf("LoadDurable: %v", err)
	}
	recs := l2.Durable()
	if len(recs) != 6 {
		t.Fatalf("reloaded %d records, want 6", len(recs))
	}
	for i := 0; i < 5; i++ {
		r := recs[i]
		if r.Type != TypeUpdate || r.Page != page.ID(i) || r.TxID != uint64(i+1) ||
			len(r.Payload) != 2 || r.Payload[0] != byte('a'+i) {
			t.Fatalf("record %d reloaded wrong: %+v", i, r)
		}
		if r.LSN != uint64(i+1) {
			t.Fatalf("record %d LSN = %d, want %d", i, r.LSN, i+1)
		}
	}
	if recs[5].Type != TypeCommit || recs[5].TxID != 5 {
		t.Fatalf("commit record reloaded wrong: %+v", recs[5])
	}
	if l2.NextLSN() != 7 {
		t.Fatalf("NextLSN after reload = %d, want 7", l2.NextLSN())
	}

	// The next incarnation's appends continue the stream.
	lsn := flushOne(t, l2, Record{Type: TypeUpdate, Page: 99, Payload: []byte("new")})
	if lsn != 7 {
		t.Fatalf("first post-reload LSN = %d, want 7", lsn)
	}
	l3, _ := newPersistLog(t, path, true)
	if err := l3.LoadDurable(); err != nil {
		t.Fatalf("LoadDurable (2nd reopen): %v", err)
	}
	if got := l3.Durable(); len(got) != 7 || got[6].Page != 99 {
		t.Fatalf("2nd reopen: %d records (last %+v), want 7 ending on page 99", len(got), got[len(got)-1])
	}
}

// TestPersistStraddlingRecords pins the pad-skip logic: a batch whose
// records straddle page boundaries reloads intact, and replay steps over
// the batch's zero-padded tail into the next batch.
func TestPersistStraddlingRecords(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l1, _ := newPersistLog(t, path, false)
	env := sim.NewEnv()
	env.Go("flush", func(p *sim.Proc) {
		var last uint64
		big := make([]byte, persistPageSize+300) // straddles at least two pages
		for i := range big {
			big[i] = byte(i)
		}
		l1.Append(Record{Type: TypeUpdate, Page: 1, Payload: big})
		last = l1.Append(Record{Type: TypeUpdate, Page: 2, Payload: []byte("tail")})
		l1.Flush(p, last) // one batch, zero-padded tail page
		last = l1.Append(Record{Type: TypeUpdate, Page: 3, Payload: []byte("next")})
		l1.Flush(p, last) // second batch starts on a fresh page
	})
	env.Run(-1)

	l2, _ := newPersistLog(t, path, true)
	if err := l2.LoadDurable(); err != nil {
		t.Fatalf("LoadDurable: %v", err)
	}
	recs := l2.Durable()
	if len(recs) != 3 {
		t.Fatalf("reloaded %d records, want 3", len(recs))
	}
	if len(recs[0].Payload) != persistPageSize+300 || recs[0].Payload[persistPageSize] != byte(persistPageSize%256) {
		t.Fatalf("straddling payload reloaded wrong (len %d)", len(recs[0].Payload))
	}
	if string(recs[2].Payload) != "next" {
		t.Fatalf("record after pad = %+v", recs[2])
	}
}

// TestPersistTornTail pins torn-write handling: corrupting the last written
// page (as a mid-batch kill would) loses only that batch's records, replay
// keeps everything before it, and the scrubber zeroes the torn page so it
// cannot confuse a later reopen.
func TestPersistTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l1, _ := newPersistLog(t, path, false)
	for i := 0; i < 4; i++ {
		flushOne(t, l1, Record{Type: TypeUpdate, Page: page.ID(i), Payload: []byte{byte(i)}})
	}

	// Flip a payload byte in the last non-zero page: its record's CRC fails.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lastPg := -1
	for p := 0; p+persistPageSize <= len(data); p += persistPageSize {
		for _, b := range data[p : p+persistPageSize] {
			if b != 0 {
				lastPg = p
				break
			}
		}
	}
	if lastPg < persistPageSize {
		t.Fatalf("expected at least 2 written pages, last non-zero at %d", lastPg)
	}
	data[lastPg+20] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	l2, _ := newPersistLog(t, path, true)
	if err := l2.LoadDurable(); err != nil {
		t.Fatalf("LoadDurable: %v", err)
	}
	if got := len(l2.Durable()); got != 3 {
		t.Fatalf("reloaded %d records after torn tail, want 3", got)
	}

	// The torn page must have been scrubbed to zero.
	data, err = os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for i, b := range data[lastPg : lastPg+persistPageSize] {
		if b != 0 {
			t.Fatalf("torn page byte %d not scrubbed (=%#x)", i, b)
		}
	}

	// New appends land where the torn batch was and survive another reopen.
	flushOne(t, l2, Record{Type: TypeUpdate, Page: 7, Payload: []byte("replacement")})
	l3, _ := newPersistLog(t, path, true)
	if err := l3.LoadDurable(); err != nil {
		t.Fatalf("LoadDurable (after rewrite): %v", err)
	}
	recs := l3.Durable()
	if len(recs) != 4 || string(recs[3].Payload) != "replacement" {
		t.Fatalf("after rewrite: %d records, want 4 ending in replacement", len(recs))
	}
}

// TestPersistCapacityPanics pins that the persisted log refuses to wrap:
// overwriting the oldest pages would destroy the recovery stream, so
// exhausting the capacity is a hard failure, not silent data loss.
func TestPersistCapacityPanics(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	dev, err := device.OpenFile(path, persistPageSize, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer dev.Close()
	l := New(sim.NewEnv(), dev, persistPageSize, 2)
	l.SetPersist(true)
	panicked := false
	env := sim.NewEnv()
	env.Go("fill", func(p *sim.Proc) {
		defer func() { panicked = recover() != nil }()
		for i := 0; i < 3; i++ {
			lsn := l.Append(Record{Type: TypeUpdate, Page: 1, Payload: make([]byte, persistPageSize/2)})
			l.Flush(p, lsn)
		}
	})
	env.Run(-1)
	if !panicked {
		t.Fatal("no panic when the persisted log wrapped")
	}
}
