package wal

import (
	"bytes"
	"testing"

	"turbobp/internal/sim"
)

// flushAll drives a flush of every pending record to completion.
func flushAll(t *testing.T, env *sim.Env, l *Log, upTo uint64) {
	t.Helper()
	done := false
	env.Go("flush", func(p *sim.Proc) {
		l.Flush(p, upTo)
		done = true
	})
	env.Run(-1)
	if !done {
		t.Fatal("flush did not complete")
	}
}

// TestAppendCopiesPayload pins the copy-on-append contract: the caller may
// reuse its payload buffer the moment Append returns.
func TestAppendCopiesPayload(t *testing.T) {
	env := sim.NewEnv()
	defer env.Shutdown()
	l, _ := newTestLog(env)
	buf := []byte("after-image")
	lsn := l.Append(Record{Type: TypeUpdate, Page: 9, Payload: buf})
	// Clobber the caller's buffer immediately, as the engine's page-buffer
	// free list does.
	for i := range buf {
		buf[i] = 'X'
	}
	flushAll(t, env, l, lsn)
	recs := l.Durable()
	if len(recs) != 1 {
		t.Fatalf("durable records = %d, want 1", len(recs))
	}
	if !bytes.Equal(recs[0].Payload, []byte("after-image")) {
		t.Errorf("durable payload = %q — Append did not copy", recs[0].Payload)
	}
}

// TestSlabPayloadsDoNotAlias checks that successive appends get disjoint
// slab regions and survive clobbering of each caller buffer.
func TestSlabPayloadsDoNotAlias(t *testing.T) {
	env := sim.NewEnv()
	defer env.Shutdown()
	l, _ := newTestLog(env)
	scratch := make([]byte, 8)
	var last uint64
	const n = 200
	for i := 0; i < n; i++ {
		for j := range scratch {
			scratch[j] = byte(i)
		}
		last = l.Append(Record{Type: TypeUpdate, Page: 1, Payload: scratch})
	}
	flushAll(t, env, l, last)
	recs := l.Durable()
	if len(recs) != n {
		t.Fatalf("durable records = %d, want %d", len(recs), n)
	}
	for i, r := range recs {
		for _, b := range r.Payload {
			if b != byte(i) {
				t.Fatalf("record %d payload byte = %d, want %d — slab regions alias", i, b, i)
			}
		}
	}
}

// TestSlabLargePayloadCopied covers the slab's dedicated-allocation path
// for payloads too large to bump-allocate.
func TestSlabLargePayloadCopied(t *testing.T) {
	env := sim.NewEnv()
	defer env.Shutdown()
	l, _ := newTestLog(env)
	big := make([]byte, slabChunkBytes/8+1)
	for i := range big {
		big[i] = 7
	}
	lsn := l.Append(Record{Type: TypeUpdate, Page: 2, Payload: big})
	for i := range big {
		big[i] = 0
	}
	flushAll(t, env, l, lsn)
	recs := l.Durable()
	if len(recs) != 1 {
		t.Fatalf("durable records = %d, want 1", len(recs))
	}
	for _, b := range recs[0].Payload {
		if b != 7 {
			t.Fatal("large payload was not copied on append")
		}
	}
}
